// Package repro's root benchmark suite regenerates every table and figure
// of the paper's evaluation as a testing.B benchmark (deliverable d): run
//
//	go test -bench=. -benchmem
//
// Each BenchmarkFigN/BenchmarkTableN executes the corresponding experiment
// (reduced grids where the full sweep would dominate the run) and reports
// the headline quantity (speedups, error percentages) via b.ReportMetric,
// so the paper-vs-measured comparison in EXPERIMENTS.md can be refreshed
// from one command. Ablation benchmarks beyond the paper's own figures
// cover the design choices DESIGN.md calls out: signaling granularity,
// search-space pruning, swizzle size, and the SM reservation.
package repro

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sort"
	"sync"
	"testing"
	"time"

	"repro/internal/baselines"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/expt"
	"repro/internal/gemm"
	"repro/internal/hw"
	"repro/internal/serve"
	"repro/internal/shard"
	"repro/internal/stats"
	"repro/internal/tuner"
	"repro/internal/workload"
)

func BenchmarkFig3WavePattern(b *testing.B) {
	var spread float64
	for i := 0; i < b.N; i++ {
		r, err := expt.Fig3()
		if err != nil {
			b.Fatal(err)
		}
		spread = r.IntraWaveSpreadPct
	}
	b.ReportMetric(spread, "intra-wave-spread-%")
}

func BenchmarkFig4Breakdown(b *testing.B) {
	var arShare float64
	for i := 0; i < b.N; i++ {
		rows, err := expt.Fig4()
		if err != nil {
			b.Fatal(err)
		}
		arShare = rows[0].Fractions["GEMM+AR"] * 100
	}
	b.ReportMetric(arShare, "llama3-GEMM+AR-%")
}

func BenchmarkFig8BandwidthCurve(b *testing.B) {
	var knee float64
	for i := 0; i < b.N; i++ {
		series := expt.Fig8()
		knee = series[0].Knee / 1e6
	}
	b.ReportMetric(knee, "4090-knee-MB")
}

func BenchmarkFig10OperatorSpeedup(b *testing.B) {
	var mean float64
	for i := 0; i < b.N; i++ {
		groups, _, err := expt.Fig10(context.Background(), true)
		if err != nil {
			b.Fatal(err)
		}
		var xs []float64
		for _, g := range groups {
			xs = append(xs, g.PerM[expt.MethodFlashOverlap].Mean)
		}
		mean = stats.Summarize(xs).Mean
	}
	b.ReportMetric(mean, "flashoverlap-mean-speedup")
}

func BenchmarkFig11TypicalShapes(b *testing.B) {
	var best float64
	for i := 0; i < b.N; i++ {
		cases, err := expt.Fig11(context.Background(), true)
		if err != nil {
			b.Fatal(err)
		}
		for _, c := range cases {
			if s := c.Speedups[expt.MethodFlashOverlap]; s > best {
				best = s
			}
		}
	}
	b.ReportMetric(best, "max-speedup")
}

func BenchmarkFig12EndToEnd(b *testing.B) {
	var sp float64
	for i := 0; i < b.N; i++ {
		results, err := expt.Fig12(context.Background(), 64)
		if err != nil {
			b.Fatal(err)
		}
		sp = results[0].Speedup
	}
	b.ReportMetric(sp, "llama3-e2e-speedup")
}

func BenchmarkFig13Heatmap(b *testing.B) {
	var worst float64 = 1
	for i := 0; i < b.N; i++ {
		panels, err := expt.Fig13(context.Background(), true)
		if err != nil {
			b.Fatal(err)
		}
		for _, p := range panels {
			for _, row := range p.Cells {
				for _, c := range row {
					if c.TheoryRatio < worst {
						worst = c.TheoryRatio
					}
				}
			}
		}
	}
	b.ReportMetric(worst, "min-theory-ratio")
}

func BenchmarkFig14Ablation(b *testing.B) {
	var tuned float64
	for i := 0; i < b.N; i++ {
		cases, err := expt.Fig14(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		tuned = cases[0].Bars[expt.MethodFlashOverlap]
	}
	b.ReportMetric(tuned, "tuned-speedup")
}

func BenchmarkFig15PredictionError(b *testing.B) {
	var mean float64
	for i := 0; i < b.N; i++ {
		results, err := expt.Fig15(context.Background(), false)
		if err != nil {
			b.Fatal(err)
		}
		mean = (results[0].MeanPct + results[1].MeanPct) / 2
	}
	b.ReportMetric(mean, "mean-error-%")
}

func BenchmarkFig16Ascend(b *testing.B) {
	var best float64
	for i := 0; i < b.N; i++ {
		cases, err := expt.Fig16(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		for _, c := range cases {
			if s := c.Speedups[expt.MethodFlashOverlap]; s > best {
				best = s
			}
		}
	}
	b.ReportMetric(best, "max-speedup")
}

func BenchmarkTable5Overhead(b *testing.B) {
	var rms float64
	for i := 0; i < b.N; i++ {
		rows, err := expt.Table5()
		if err != nil {
			b.Fatal(err)
		}
		rms = rows[0].OverheadPct
	}
	b.ReportMetric(rms, "rmsnorm-tile-overhead-%")
}

func BenchmarkCorrectnessE1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cases, err := expt.Correctness(context.Background(), 6)
		if err != nil {
			b.Fatal(err)
		}
		for _, c := range cases {
			if !c.AllClose {
				b.Fatalf("correctness failure: %+v", c)
			}
		}
	}
}

// --- Ablation benchmarks for DESIGN.md's design choices -------------------

// Signaling granularity: per-tile signaling fragments communication into
// tiny messages; per-wave fixes bandwidth; tuned grouping wins (§3.2.3).
func BenchmarkAblationSignalGranularity(b *testing.B) {
	plat := hw.RTX4090PCIe()
	shape := gemm.Shape{M: 4096, N: 8192, K: 8192}
	plan, err := gemm.NewPlan(shape, gemm.DefaultConfig(shape))
	if err != nil {
		b.Fatal(err)
	}
	waves := plan.Waves(plat.GPU.SMs - plat.CommSMs)
	cases := map[string]gemm.Partition{
		"per-wave": gemm.PerWave(waves),
		"grouped3": gemm.EqualSized(waves, 3),
		"single":   gemm.SingleGroup(waves),
	}
	for name, part := range cases {
		part := part
		b.Run(name, func(b *testing.B) {
			var last float64
			for i := 0; i < b.N; i++ {
				res, err := engine.Default().Exec(context.Background(), core.Options{Plat: plat, NGPUs: 2, Shape: shape, Prim: hw.AllReduce, Partition: part.Clone()})
				if err != nil {
					b.Fatal(err)
				}
				last = res.Latency.Millis()
			}
			b.ReportMetric(last, "latency-ms")
		})
	}
}

// Pruning: the |G1|/|GP| constraints shrink the candidate set without
// hurting the searched quality (§4.1.4).
func BenchmarkAblationPruning(b *testing.B) {
	plat := hw.RTX4090PCIe()
	shape := gemm.Shape{M: 2048, N: 8192, K: 8192}
	curve := tuner.SampleBandwidthCurve(plat, 4, hw.AllReduce, nil)
	pred, err := tuner.NewPredictor(plat, shape, gemm.Config{}, curve, 1)
	if err != nil {
		b.Fatal(err)
	}
	for name, bound := range map[string][2]int{
		"pruned":   {tuner.DefaultS1, tuner.DefaultSP},
		"unpruned": {pred.Waves, pred.Waves},
	} {
		bound := bound
		b.Run(name, func(b *testing.B) {
			var nCands int
			for i := 0; i < b.N; i++ {
				cands := tuner.Candidates(pred.Waves, bound[0], bound[1], 1<<14)
				if _, err := tuner.PredictiveSearch(context.Background(), pred, cands); err != nil {
					b.Fatal(err)
				}
				nCands = len(cands)
			}
			b.ReportMetric(float64(nCands), "candidates")
		})
	}
}

// Swizzle size changes the execution order but — thanks to the reordering —
// not the overlap latency structure.
func BenchmarkAblationSwizzle(b *testing.B) {
	plat := hw.RTX4090PCIe()
	shape := gemm.Shape{M: 4096, N: 8192, K: 4096}
	for _, sw := range []int{1, 2, 3, 8} {
		sw := sw
		b.Run(fmt.Sprintf("swizzle%d", sw), func(b *testing.B) {
			var last float64
			for i := 0; i < b.N; i++ {
				cfg := gemm.DefaultConfig(shape)
				cfg.Swizzle = sw
				res, err := engine.Default().Exec(context.Background(), core.Options{Plat: plat, NGPUs: 4, Shape: shape, Cfg: cfg, Prim: hw.AllReduce})
				if err != nil {
					b.Fatal(err)
				}
				last = res.Latency.Millis()
			}
			b.ReportMetric(last, "latency-ms")
		})
	}
}

// SM reservation: how many SMs the collective library holds changes the
// compute/communication balance (Alg. 1 line 3).
func BenchmarkAblationCommSMs(b *testing.B) {
	shape := gemm.Shape{M: 8192, N: 8192, K: 4096}
	for _, smCount := range []int{2, 6, 16, 32} {
		smCount := smCount
		b.Run(fmt.Sprintf("sms%d", smCount), func(b *testing.B) {
			plat := hw.A800NVLink()
			plat.CommSMs = smCount
			var last float64
			for i := 0; i < b.N; i++ {
				res, err := engine.Default().Exec(context.Background(), core.Options{Plat: plat, NGPUs: 4, Shape: shape, Prim: hw.ReduceScatter})
				if err != nil {
					b.Fatal(err)
				}
				last = res.Latency.Millis()
			}
			b.ReportMetric(last, "latency-ms")
		})
	}
}

// Cold compile-every-run core.Run versus cached-plan engine.Exec over the
// quick Table 3 grid — the headline quantity of the Plan/Exec split. The
// reported plan-cache-speedup metric is coldNsPerRun / cachedNsPerRun.
func BenchmarkEnginePlanCacheSpeedup(b *testing.B) {
	var runs []core.Options
	for _, grid := range expt.Table3Grids(true) {
		for _, shape := range grid.Shapes {
			runs = append(runs, core.Options{Plat: grid.Plat, NGPUs: 4, Shape: shape, Prim: grid.Prim, Imbalance: imbalanceFor(grid.Prim)})
		}
	}
	eng := engine.New(1, 0)  // one worker: isolate caching from parallelism
	for _, o := range runs { // warm the plan cache
		if _, err := eng.Exec(context.Background(), o); err != nil {
			b.Fatal(err)
		}
	}
	var coldNs, cachedNs int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		start := time.Now()
		for _, o := range runs {
			if _, err := core.Run(context.Background(), o); err != nil {
				b.Fatal(err)
			}
		}
		coldNs += time.Since(start).Nanoseconds()
		start = time.Now()
		for _, o := range runs {
			if _, err := eng.Exec(context.Background(), o); err != nil {
				b.Fatal(err)
			}
		}
		cachedNs += time.Since(start).Nanoseconds()
	}
	perRun := float64(b.N) * float64(len(runs))
	b.ReportMetric(float64(coldNs)/float64(cachedNs), "plan-cache-speedup")
	b.ReportMetric(float64(coldNs)/perRun, "cold-ns/run")
	b.ReportMetric(float64(cachedNs)/perRun, "cached-ns/run")
	b.Logf("quick Table 3 grid (%d runs): cold core.Run vs cached engine.Exec speedup %.2fx",
		len(runs), float64(coldNs)/float64(cachedNs))
}

// imbalanceFor mirrors the operator evaluation's A2A routing skew.
func imbalanceFor(p hw.Primitive) float64 {
	if p == hw.AllToAll {
		return 1.2
	}
	return 0
}

// Raw simulator throughput: one overlapped run end to end.
func BenchmarkOverlapRunDES(b *testing.B) {
	opts := core.Options{Plat: hw.RTX4090PCIe(), NGPUs: 4, Shape: gemm.Shape{M: 4096, N: 8192, K: 8192}, Prim: hw.AllReduce}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := core.Run(context.Background(), opts); err != nil {
			b.Fatal(err)
		}
	}
}

// Baseline DES throughput for comparison.
func BenchmarkNonOverlapDES(b *testing.B) {
	opts := baselines.Options{Plat: hw.RTX4090PCIe(), NGPUs: 4, Shape: gemm.Shape{M: 4096, N: 8192, K: 8192}, Prim: hw.AllReduce}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := baselines.NonOverlap(opts); err != nil {
			b.Fatal(err)
		}
	}
}

// Predictor throughput: one Alg. 1 evaluation (the quantity that replaces a
// ~5 ms online profiling run, §4.1.2).
func BenchmarkPredictorEvaluate(b *testing.B) {
	plat := hw.RTX4090PCIe()
	curve := tuner.SampleBandwidthCurve(plat, 4, hw.AllReduce, nil)
	pred, err := tuner.NewPredictor(plat, gemm.Shape{M: 4096, N: 8192, K: 8192}, gemm.Config{}, curve, 1)
	if err != nil {
		b.Fatal(err)
	}
	part := gemm.EqualSized(pred.Waves, 3)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pred.Predict(part); err != nil {
			b.Fatal(err)
		}
	}
}

// Analytic fast-path throughput: one Algorithm 1 evaluation through the
// engine's plan and bandwidth-curve caches — the per-item cost of a sweep's
// analytic tier, and the quantity that makes mixed-fidelity sweeps cheap.
// Caches are warmed before timing (curve sampling runs ~20 DES probes; that
// is one-time setup, not per-item cost), and the headline analytic-ns/item
// is a fastest-batch measurement so it stays stable at -benchtime 1x.
func BenchmarkEngineAnalyticExec(b *testing.B) {
	var runs []core.Options
	for _, grid := range expt.Table3Grids(true) {
		for _, shape := range grid.Shapes {
			runs = append(runs, core.Options{Plat: grid.Plat, NGPUs: 4, Shape: shape, Prim: grid.Prim, Imbalance: imbalanceFor(grid.Prim), Fidelity: core.FidelityAnalytic})
		}
	}
	eng := engine.New(1, 0)
	for _, o := range runs {
		if r, err := eng.Exec(context.Background(), o); err != nil {
			b.Fatal(err)
		} else if r.Fidelity != core.FidelityAnalytic {
			b.Fatalf("analytic run came back labeled %q", r.Fidelity)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	best := int64(1<<63 - 1)
	for i := 0; i < b.N; i++ {
		const batches = 16
		for batch := 0; batch < batches; batch++ {
			start := time.Now()
			for _, o := range runs {
				if _, err := eng.Exec(context.Background(), o); err != nil {
					b.Fatal(err)
				}
			}
			if ns := time.Since(start).Nanoseconds(); ns < best {
				best = ns
			}
		}
	}
	b.ReportMetric(float64(best)/float64(len(runs)), "analytic-ns/item")
}

// Mixed-fidelity sweep throughput: the quick Table 3 shapes crossed with
// AR/RS/A2A, swept through the sharded mixed pipeline (whole grid analytic,
// DES only for the top-k per rank cell) and, for comparison, at full DES
// fidelity. The headline mixed-sweep-ns/item is a fastest-batch measurement
// over warm caches; mixed-speedup-vs-des is the quantity the mixed mode
// exists for and must stay well above 1.
func BenchmarkMixedFidelitySweep(b *testing.B) {
	seen := map[gemm.Shape]bool{}
	var shapes []gemm.Shape
	for _, grid := range expt.Table3Grids(true) {
		for _, s := range grid.Shapes {
			if !seen[s] {
				seen[s] = true
				shapes = append(shapes, s)
			}
		}
	}
	var runs []core.Options
	for _, s := range shapes {
		for _, p := range []hw.Primitive{hw.AllReduce, hw.ReduceScatter, hw.AllToAll} {
			runs = append(runs, core.Options{Plat: hw.RTX4090PCIe(), NGPUs: 2, Shape: s, Prim: p, Imbalance: imbalanceFor(p)})
		}
	}
	const shards = 4
	part := shard.NewPartitioner(shards)
	engines := shard.Engines(shards, 0, 0)
	desRuns := make([]core.Options, len(runs))
	for i, o := range runs {
		o.Fidelity = core.FidelityDES
		desRuns[i] = o
	}
	// Warm both tiers' plan caches and the analytic curve caches.
	if _, _, err := shard.SweepBatchMixed(context.Background(), part, engines, runs, 0, 0); err != nil {
		b.Fatal(err)
	}
	if _, err := shard.SweepBatch(context.Background(), part, engines, desRuns); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	bestMixed := int64(1<<63 - 1)
	bestDES := int64(1<<63 - 1)
	refinedItems := 0
	for i := 0; i < b.N; i++ {
		const batches = 4
		for batch := 0; batch < batches; batch++ {
			start := time.Now()
			results, refined, err := shard.SweepBatchMixed(context.Background(), part, engines, runs, 0, 0)
			if err != nil {
				b.Fatal(err)
			}
			if ns := time.Since(start).Nanoseconds(); ns < bestMixed {
				bestMixed = ns
			}
			refinedItems = len(refined)
			for j, r := range results {
				if r.Fidelity == "" {
					b.Fatalf("result %d carries no fidelity label", j)
				}
			}
			start = time.Now()
			if _, err := shard.SweepBatch(context.Background(), part, engines, desRuns); err != nil {
				b.Fatal(err)
			}
			if ns := time.Since(start).Nanoseconds(); ns < bestDES {
				bestDES = ns
			}
		}
	}
	b.ReportMetric(float64(bestMixed)/float64(len(runs)), "mixed-sweep-ns/item")
	b.ReportMetric(float64(bestDES)/float64(len(runs)), "fulldes-sweep-ns/item")
	b.ReportMetric(float64(bestDES)/float64(bestMixed), "mixed-speedup-vs-des")
	b.ReportMetric(float64(refinedItems), "des-refined-items")
}

// Serving-path throughput: a warm Service.Query must answer from the
// concurrent shape cache without searching or compiling. The reported
// hit-rate metric doubles as a regression guard — it must stay at 100%.
func BenchmarkServeWarmQuery(b *testing.B) {
	svc, err := serve.New(serve.Config{Plat: hw.RTX4090PCIe(), NGPUs: 2, CandidateLimit: 128})
	if err != nil {
		b.Fatal(err)
	}
	shapes := []gemm.Shape{
		{M: 2048, N: 8192, K: 4096},
		{M: 4096, N: 8192, K: 4096},
		{M: 4096, N: 8192, K: 8192},
	}
	if err := svc.Warm(context.Background(), []hw.Primitive{hw.AllReduce}, shapes, 0); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ans, err := svc.Query(context.Background(), serve.Query{Shape: shapes[i%len(shapes)], Prim: hw.AllReduce})
		if err != nil {
			b.Fatal(err)
		}
		if ans.Source != serve.SourceCache {
			b.Fatalf("warm query missed the cache (source %q)", ans.Source)
		}
	}
	b.StopTimer()
	st := svc.Stats()
	b.ReportMetric(100*float64(st.Hits)/float64(st.Hits+st.Misses), "warm-hit-%")
	// warm-ns/query is the serve-latency headline the CI bench-diff gate
	// tracks. It must be stable at -benchtime 1x, where a single-shot
	// ns/op swings far more than the gate's regression threshold: probe in
	// fixed-size batches and report the fastest batch, which measures the
	// code path rather than whatever else the machine was doing.
	const batches, perBatch = 16, 512
	best := int64(1<<63 - 1)
	for batch := 0; batch < batches; batch++ {
		start := time.Now()
		for i := 0; i < perBatch; i++ {
			if _, err := svc.Query(context.Background(), serve.Query{Shape: shapes[i%len(shapes)], Prim: hw.AllReduce}); err != nil {
				b.Fatal(err)
			}
		}
		if ns := time.Since(start).Nanoseconds(); ns < best {
			best = ns
		}
	}
	b.ReportMetric(float64(best)/perBatch, "warm-ns/query")
}

// Sharded sweep throughput: the quick Table 3 grid split across shard-local
// engines must merge back to the unsharded batch results (the router layer's
// scaling primitive). The benchmark reports per-run cost at fleet width 4 so
// the perf record tracks the sharding overhead, not just raw DES speed.
func BenchmarkShardSweepBatch(b *testing.B) {
	var runs []core.Options
	for _, grid := range expt.Table3Grids(true) {
		for _, shape := range grid.Shapes {
			runs = append(runs, core.Options{Plat: grid.Plat, NGPUs: 4, Shape: shape, Prim: grid.Prim, Imbalance: imbalanceFor(grid.Prim)})
		}
	}
	const shards = 4
	part := shard.NewPartitioner(shards)
	b.ResetTimer()
	var sweepNs int64
	for i := 0; i < b.N; i++ {
		start := time.Now()
		results, err := shard.SweepBatch(context.Background(), part, shard.Engines(shards, 0, 0), runs)
		if err != nil {
			b.Fatal(err)
		}
		sweepNs += time.Since(start).Nanoseconds()
		if len(results) != len(runs) {
			b.Fatalf("%d results for %d runs", len(results), len(runs))
		}
	}
	b.ReportMetric(float64(sweepNs)/(float64(b.N)*float64(len(runs))), "sweep-ns/run")
	b.ReportMetric(shards, "shards")
}

// Concurrent serving throughput: the RWMutex-guarded cache must scale warm
// queries across goroutines (the old slice cache serialized or raced here).
func BenchmarkServeConcurrentQuery(b *testing.B) {
	svc, err := serve.New(serve.Config{Plat: hw.RTX4090PCIe(), NGPUs: 2, CandidateLimit: 128})
	if err != nil {
		b.Fatal(err)
	}
	shapes := []gemm.Shape{
		{M: 2048, N: 8192, K: 4096},
		{M: 4096, N: 8192, K: 4096},
		{M: 4096, N: 8192, K: 8192},
	}
	if err := svc.Warm(context.Background(), []hw.Primitive{hw.AllReduce}, shapes, 0); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			if _, err := svc.Query(context.Background(), serve.Query{Shape: shapes[i%len(shapes)], Prim: hw.AllReduce}); err != nil {
				// FailNow/Fatal must not run on a RunParallel worker.
				b.Error(err)
				return
			}
			i++
		}
	})
}

// Distributed-sweep coordinator throughput: the quick Table 3 AR shapes
// dispatched in chunks across an in-process fleet (LocalClients, no
// network), so the number isolates the coordinator's partition/chunk/merge
// machinery plus the replicas' sweep execution rather than HTTP transport.
// The reported sweep-ns/item is the multi-host analogue of
// BenchmarkShardSweepBatch's sweep-ns/run.
func BenchmarkCoordinatorSweep(b *testing.B) {
	const shards = 4
	curve := tuner.SampleBandwidthCurve(hw.RTX4090PCIe(), 2, hw.AllReduce, nil)
	clients := make([]shard.Client, shards)
	for k := range clients {
		a := shard.Assignment{Index: k, Count: shards}
		svc, err := serve.New(serve.Config{
			Plat:           hw.RTX4090PCIe(),
			NGPUs:          2,
			CandidateLimit: 128,
			Owns:           a.Owns,
			Shard:          a.String(),
			Curves:         map[hw.Primitive]*stats.Curve{hw.AllReduce: curve},
		})
		if err != nil {
			b.Fatal(err)
		}
		clients[k] = &shard.LocalClient{Svc: svc}
	}
	router, err := shard.NewRouter(clients)
	if err != nil {
		b.Fatal(err)
	}
	co := shard.NewCoordinator(router)
	co.Spec.Chunk = 4
	var items []serve.SweepItem
	for _, grid := range expt.Table3Grids(true) {
		if grid.Prim != hw.AllReduce {
			continue
		}
		for _, s := range grid.Shapes {
			items = append(items, serve.SweepItem{M: s.M, N: s.N, K: s.K, Prim: "AR"})
		}
	}
	if len(items) == 0 {
		b.Fatal("quick Table 3 grid has no AllReduce shapes")
	}
	b.ResetTimer()
	var sweepNs int64
	for i := 0; i < b.N; i++ {
		start := time.Now()
		results, err := co.Sweep(context.Background(), items)
		if err != nil {
			b.Fatal(err)
		}
		sweepNs += time.Since(start).Nanoseconds()
		if len(results) != len(items) {
			b.Fatalf("%d results for %d items", len(results), len(items))
		}
	}
	if co.Redispatches() != 0 {
		b.Fatalf("%d re-dispatches on a healthy in-process fleet", co.Redispatches())
	}
	b.ReportMetric(float64(sweepNs)/(float64(b.N)*float64(len(items))), "sweep-ns/item")
	b.ReportMetric(shards, "shards")
}

// Streaming sweep cost: the v2 iterator path (Coordinator.Stream emitting
// each item as its chunk completes) over an in-process fleet at the analytic
// fast path, where per-item work is small enough that the streaming
// machinery's own cost shows. stream-sweep-ns/item is the latency headline;
// stream-sweep-bytes/item (TotalAlloc delta per item) pins the bounded-
// memory claim — the coordinator must allocate O(chunk) per item in flight,
// not O(grid), so the figure may not grow with the grid.
func BenchmarkStreamingSweep(b *testing.B) {
	const shards = 4
	curve := tuner.SampleBandwidthCurve(hw.RTX4090PCIe(), 2, hw.AllReduce, nil)
	clients := make([]shard.Client, shards)
	for k := range clients {
		a := shard.Assignment{Index: k, Count: shards}
		svc, err := serve.New(serve.Config{
			Plat:           hw.RTX4090PCIe(),
			NGPUs:          2,
			CandidateLimit: 128,
			Owns:           a.Owns,
			Shard:          a.String(),
			Curves:         map[hw.Primitive]*stats.Curve{hw.AllReduce: curve},
		})
		if err != nil {
			b.Fatal(err)
		}
		clients[k] = &shard.LocalClient{Svc: svc}
	}
	router, err := shard.NewRouter(clients)
	if err != nil {
		b.Fatal(err)
	}
	co := shard.NewCoordinator(router)
	co.Spec.Chunk = 4
	co.Spec.Fidelity = serve.FidelityAnalytic
	var items []serve.SweepItem
	for _, grid := range expt.Table3Grids(true) {
		if grid.Prim != hw.AllReduce {
			continue
		}
		for _, s := range grid.Shapes {
			items = append(items, serve.SweepItem{M: s.M, N: s.N, K: s.K, Prim: "AR"})
		}
	}
	// Warm the replicas' analytic predictor caches so the steady-state
	// streaming path is what gets measured.
	if _, err := co.Sweep(context.Background(), items); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	bestNs := int64(1<<63 - 1)
	var allocBytes, sweeps uint64
	for i := 0; i < b.N; i++ {
		// Min-of-batches for the latency (stable at -benchtime 1x), mean
		// for the allocation (TotalAlloc is monotonic and deterministic).
		const batches = 4
		for batch := 0; batch < batches; batch++ {
			var before, after runtime.MemStats
			runtime.ReadMemStats(&before)
			start := time.Now()
			n := 0
			seen := make([]bool, len(items))
			err := co.Stream(context.Background(), items, func(idx int, res shard.SweepResult) error {
				// Emissions interleave across shards by completion; each
				// index must still arrive exactly once.
				if seen[idx] {
					b.Errorf("index %d emitted twice", idx)
				}
				seen[idx] = true
				n++
				return nil
			})
			elapsed := time.Since(start).Nanoseconds()
			runtime.ReadMemStats(&after)
			if err != nil {
				b.Fatal(err)
			}
			if n != len(items) {
				b.Fatalf("%d emissions for %d items", n, len(items))
			}
			if elapsed < bestNs {
				bestNs = elapsed
			}
			allocBytes += after.TotalAlloc - before.TotalAlloc
			sweeps++
		}
	}
	b.ReportMetric(float64(bestNs)/float64(len(items)), "stream-sweep-ns/item")
	b.ReportMetric(float64(allocBytes)/float64(sweeps)/float64(len(items)), "stream-sweep-bytes/item")
	b.ReportMetric(shards, "shards")
}

// deadClient refuses every request instantly: the degraded-fleet
// benchmark's pre-dead replica.
type deadClient struct{}

var errDeadReplica = errors.New("bench: replica is down")

func (deadClient) Query(context.Context, serve.Query) (serve.Answer, error) {
	return serve.Answer{}, errDeadReplica
}
func (deadClient) Sweep(context.Context, serve.SweepRequest, serve.SweepSink) error {
	return errDeadReplica
}
func (deadClient) Stats(context.Context) (serve.Stats, error) { return serve.Stats{}, errDeadReplica }
func (deadClient) Healthz(context.Context) error              { return errDeadReplica }

// BenchmarkCoordinatorSweepDegraded sweeps the same grid with one replica
// of the fleet dead from the start: the health plane must absorb the loss
// in ~one failed probe, so degraded-ns/item stays within sight of the
// healthy sweep-ns/item instead of scaling with chunks x timeout.
func BenchmarkCoordinatorSweepDegraded(b *testing.B) {
	const shards = 4
	const dead = 0
	curve := tuner.SampleBandwidthCurve(hw.RTX4090PCIe(), 2, hw.AllReduce, nil)
	clients := make([]shard.Client, shards)
	for k := range clients {
		if k == dead {
			clients[k] = deadClient{}
			continue
		}
		a := shard.Assignment{Index: k, Count: shards}
		svc, err := serve.New(serve.Config{
			Plat:           hw.RTX4090PCIe(),
			NGPUs:          2,
			CandidateLimit: 128,
			Owns:           a.Owns,
			Shard:          a.String(),
			Curves:         map[hw.Primitive]*stats.Curve{hw.AllReduce: curve},
		})
		if err != nil {
			b.Fatal(err)
		}
		clients[k] = &shard.LocalClient{Svc: svc}
	}
	var items []serve.SweepItem
	for _, grid := range expt.Table3Grids(true) {
		if grid.Prim != hw.AllReduce {
			continue
		}
		for _, s := range grid.Shapes {
			items = append(items, serve.SweepItem{M: s.M, N: s.N, K: s.K, Prim: "AR"})
		}
	}
	if len(items) == 0 {
		b.Fatal("quick Table 3 grid has no AllReduce shapes")
	}
	b.ResetTimer()
	var sweepNs int64
	var skips uint64
	for i := 0; i < b.N; i++ {
		// A fresh router/health plane per iteration: every iteration
		// discovers the dead replica from scratch (one failed probe),
		// so the metric is comparable at any -benchtime.
		router, err := shard.NewRouter(clients)
		if err != nil {
			b.Fatal(err)
		}
		co := shard.NewCoordinator(router)
		co.Spec.Chunk = 1 // chunk per item: every dead-owned item is a chance to stall
		start := time.Now()
		results, err := co.Sweep(context.Background(), items)
		if err != nil {
			b.Fatal(err)
		}
		sweepNs += time.Since(start).Nanoseconds()
		if len(results) != len(items) {
			b.Fatalf("%d results for %d items", len(results), len(items))
		}
		if co.Redispatches() == 0 {
			b.Fatal("no chunk left the dead replica; is the dead shard empty?")
		}
		skips += router.Health().Skips()
	}
	b.ReportMetric(float64(sweepNs)/(float64(b.N)*float64(len(items))), "degraded-ns/item")
	b.ReportMetric(float64(skips)/float64(b.N), "skipped-attempts")
}

// Zero-alloc warm path: a query whose reply was pre-encoded at tune time is
// answered by handing out cached bytes — no JSON rendering, no predictor
// call, and (the headline) no allocations. warm-allocs/query must stay at 0;
// the paired latency metric tracks the fast path against warm-ns/query's
// slow-path rendering above.
func BenchmarkServeWarmQueryEncoded(b *testing.B) {
	svc, err := serve.New(serve.Config{Plat: hw.RTX4090PCIe(), NGPUs: 2, CandidateLimit: 128})
	if err != nil {
		b.Fatal(err)
	}
	shapes := []gemm.Shape{
		{M: 2048, N: 8192, K: 4096},
		{M: 4096, N: 8192, K: 4096},
		{M: 4096, N: 8192, K: 8192},
	}
	if err := svc.Warm(context.Background(), []hw.Primitive{hw.AllReduce}, shapes, 0); err != nil {
		b.Fatal(err)
	}
	queries := make([]serve.Query, len(shapes))
	for i, s := range shapes {
		queries[i] = serve.Query{Shape: s, Prim: hw.AllReduce}
		if _, ok := svc.QueryEncoded(queries[i]); !ok {
			b.Fatalf("warmed shape %v missed the encoded fast path", s)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := svc.QueryEncoded(queries[i%len(queries)]); !ok {
			b.Fatal("encoded fast path went cold mid-benchmark")
		}
	}
	b.StopTimer()
	// Pre-create the tenant so the alloc probe below measures the steady
	// state: the first labeled request registers the tenant's instruments
	// (allocates, once per tenant), every later one takes the read-locked
	// map hit.
	svc.ObserveQuery("bench-tenant", time.Microsecond, true)
	// Measured after ResetTimer: ResetTimer deletes user-reported metrics.
	// The closure covers the full warm answer path as http.go runs it —
	// cached-bytes lookup plus latency recording, both unlabeled and
	// per-tenant. warm-allocs/query staying 0 is the gate that metrics
	// recording never bought observability with warm-path allocations.
	allocs := testing.AllocsPerRun(512, func() {
		for _, q := range queries {
			if _, ok := svc.QueryEncoded(q); !ok {
				b.Fatal("encoded fast path went cold mid-benchmark")
			}
			svc.ObserveQuery("", time.Microsecond, true)
			svc.ObserveQuery("bench-tenant", time.Microsecond, true)
		}
	})
	b.ReportMetric(allocs/float64(len(queries)), "warm-allocs/query")
	// Same min-of-batches discipline as warm-ns/query: stable at -benchtime 1x.
	const batches, perBatch = 16, 4096
	best := int64(1<<63 - 1)
	for batch := 0; batch < batches; batch++ {
		start := time.Now()
		for i := 0; i < perBatch; i++ {
			if _, ok := svc.QueryEncoded(queries[i%len(queries)]); !ok {
				b.Fatal("encoded fast path went cold mid-benchmark")
			}
		}
		if ns := time.Since(start).Nanoseconds(); ns < best {
			best = ns
		}
	}
	b.ReportMetric(float64(best)/perBatch, "warm-encoded-ns/query")
}

// Restart economics: booting a replica from a warm-state snapshot versus
// re-tuning its working set from scratch. cold-restart-to-warm-ms is the
// headline (snapshot boot: New + LoadSnapshotFile, after which every
// snapshotted query answers warm on the fast path); retune-restart-to-warm-ms
// is the same working set rebuilt with Warm, the cost a replica without a
// snapshot pays on every restart.
func BenchmarkSnapshotRestart(b *testing.B) {
	cfg := serve.Config{Plat: hw.RTX4090PCIe(), NGPUs: 2, CandidateLimit: 128}
	shapes := []gemm.Shape{
		{M: 2048, N: 8192, K: 4096},
		{M: 2048, N: 8192, K: 8192},
		{M: 4096, N: 8192, K: 4096},
		{M: 4096, N: 8192, K: 8192},
		{M: 8192, N: 8192, K: 4096},
		{M: 8192, N: 8192, K: 8192},
	}
	prims := []hw.Primitive{hw.AllReduce, hw.AllToAll}
	src, err := serve.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	if err := src.Warm(context.Background(), prims, shapes, 0); err != nil {
		b.Fatal(err)
	}
	path := b.TempDir() + "/warm.json"
	if err := src.SaveSnapshotFile(path); err != nil {
		b.Fatal(err)
	}
	wantWarm := src.Stats().ShapesCached

	const reps = 5
	bestSnap, bestTune := int64(1<<63-1), int64(1<<63-1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for rep := 0; rep < reps; rep++ {
			start := time.Now()
			svc, err := serve.New(cfg)
			if err != nil {
				b.Fatal(err)
			}
			n, err := svc.LoadSnapshotFile(path)
			if err != nil {
				b.Fatal(err)
			}
			if ns := time.Since(start).Nanoseconds(); ns < bestSnap {
				bestSnap = ns
			}
			if n != wantWarm || svc.Stats().WarmEncoded != wantWarm {
				b.Fatalf("snapshot boot restored %d entries (%d encoded), want %d", n, svc.Stats().WarmEncoded, wantWarm)
			}

			start = time.Now()
			retuned, err := serve.New(cfg)
			if err != nil {
				b.Fatal(err)
			}
			if err := retuned.Warm(context.Background(), prims, shapes, 0); err != nil {
				b.Fatal(err)
			}
			if ns := time.Since(start).Nanoseconds(); ns < bestTune {
				bestTune = ns
			}
		}
	}
	b.ReportMetric(float64(bestSnap)/1e6, "cold-restart-to-warm-ms")
	b.ReportMetric(float64(bestTune)/1e6, "retune-restart-to-warm-ms")
	b.ReportMetric(float64(bestTune)/float64(bestSnap), "restart-speedup-vs-retune")
}

// inprocTransport serves requests straight into the handler — no TCP, no
// real connection — so BenchmarkLoadgenReplay measures the loadgen pipeline
// and the serving path, not a loopback network stack. With record set it
// times every request; the gate computes the exact (sort-based, not
// bucket-quantized) p99 from the samples, because a log-bucketed quantile
// moves in sqrt(2) steps — larger than the bench gate's 25% threshold.
type inprocTransport struct {
	handler http.Handler

	mu      sync.Mutex
	record  bool
	samples []time.Duration
}

func (t *inprocTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	rec := httptest.NewRecorder()
	start := time.Now()
	t.handler.ServeHTTP(rec, req)
	if t.record {
		d := time.Since(start)
		t.mu.Lock()
		t.samples = append(t.samples, d)
		t.mu.Unlock()
	}
	return rec.Result(), nil
}

// p99 drains the recorded samples and returns their exact 99th percentile.
func (t *inprocTransport) p99() time.Duration {
	t.mu.Lock()
	samples := t.samples
	t.samples = nil
	t.mu.Unlock()
	if len(samples) == 0 {
		return 0
	}
	sort.Slice(samples, func(a, b int) bool { return samples[a] < samples[b] })
	return samples[len(samples)*99/100]
}

// Trace-driven replay throughput: the cmd/loadgen pipeline (synthesized
// 3-tenant bursty trace, open-loop unpaced replay, per-tenant accounting)
// against a warm single-process service over an in-process transport.
// loadgen-p99-ms is the client-observed p99 of a warm replay — the
// multi-tenant serving tail, headline because the per-tenant percentile
// plane exists to watch exactly this number. loadgen-qps is the offered
// throughput the replay sustained.
func BenchmarkLoadgenReplay(b *testing.B) {
	svc, err := serve.New(serve.Config{Plat: hw.RTX4090PCIe(), NGPUs: 2, CandidateLimit: 128})
	if err != nil {
		b.Fatal(err)
	}
	trace := workload.Synth(workload.SynthConfig{Seed: 1, Duration: 2 * time.Second, QPS: 100})
	if len(trace.Events) == 0 {
		b.Fatal("synth produced an empty trace")
	}
	transport := &inprocTransport{handler: serve.Handler(svc)}
	opts := workload.ReplayOptions{
		Target: "http://inproc",
		Client: &http.Client{Transport: transport},
		// Speedup 0: no pacing — measure how fast the pipeline moves the
		// trace, not how patiently it can wait.
	}
	ctx := context.Background()
	// First replay tunes every distinct (shape, prim, imbalance) in the
	// trace; everything after answers warm.
	if rep, err := workload.Replay(ctx, opts, trace); err != nil {
		b.Fatal(err)
	} else if rep.Errors > 0 {
		b.Fatalf("warmup replay: %d errors", rep.Errors)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := workload.Replay(ctx, opts, trace); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	// Min-of-batches for the tail, max for throughput: both stable at
	// -benchtime 1x, same discipline as warm-encoded-ns/query.
	const batches = 8
	bestP99 := time.Duration(1<<63 - 1)
	bestQPS := 0.0
	transport.record = true
	for batch := 0; batch < batches; batch++ {
		rep, err := workload.Replay(ctx, opts, trace)
		if err != nil {
			b.Fatal(err)
		}
		if rep.Errors > 0 {
			b.Fatalf("replay batch %d: %d errors", batch, rep.Errors)
		}
		if rep.Sent != uint64(len(trace.Events)) {
			b.Fatalf("replay batch %d sent %d of %d events", batch, rep.Sent, len(trace.Events))
		}
		if p99 := transport.p99(); p99 < bestP99 {
			bestP99 = p99
		}
		if qps := float64(rep.Sent) / rep.Elapsed.Seconds(); qps > bestQPS {
			bestQPS = qps
		}
	}
	transport.record = false
	b.ReportMetric(float64(bestP99)/1e6, "loadgen-p99-ms")
	b.ReportMetric(bestQPS, "loadgen-qps")
}
