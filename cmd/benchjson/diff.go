package main

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"sort"
	"strings"
)

// headline is one gated metric of the perf trajectory. Non-headline metrics
// are reported in the delta table but never fail the gate: absolute ns/op of
// a figure regeneration varies with the runner, while the headlines are
// either ratios (machine-robust) or min-of-batches latencies built to be
// stable at -benchtime 1x.
type headline struct {
	Bench  string
	Metric string
	// HigherBetter: a speedup regresses downward, a latency upward.
	HigherBetter bool
	Label        string
}

// headlines are the metrics the ROADMAP's perf trajectory is judged on: the
// engine's plan-cache speedup, the serving layer's warm-query latency, the
// sweep plane's analytic and mixed-fidelity per-item costs, and the v2
// streaming sweep's per-item latency and allocation. All are ratios,
// min-of-batches latencies, or deterministic allocation counts, stable at
// -benchtime 1x.
var headlines = []headline{
	{Bench: "BenchmarkEnginePlanCacheSpeedup", Metric: "plan-cache-speedup", HigherBetter: true, Label: "plan-cache speedup"},
	{Bench: "BenchmarkServeWarmQuery", Metric: "warm-ns/query", HigherBetter: false, Label: "serve warm-query latency"},
	{Bench: "BenchmarkEngineAnalyticExec", Metric: "analytic-ns/item", HigherBetter: false, Label: "analytic fast-path latency"},
	{Bench: "BenchmarkMixedFidelitySweep", Metric: "mixed-sweep-ns/item", HigherBetter: false, Label: "mixed-fidelity sweep latency"},
	{Bench: "BenchmarkStreamingSweep", Metric: "stream-sweep-ns/item", HigherBetter: false, Label: "streaming sweep latency"},
	{Bench: "BenchmarkStreamingSweep", Metric: "stream-sweep-bytes/item", HigherBetter: false, Label: "streaming sweep allocation"},
	{Bench: "BenchmarkServeWarmQueryEncoded", Metric: "warm-allocs/query", HigherBetter: false, Label: "warm encoded-query allocations"},
	{Bench: "BenchmarkSnapshotRestart", Metric: "cold-restart-to-warm-ms", HigherBetter: false, Label: "snapshot restart-to-warm time"},
	{Bench: "BenchmarkLoadgenReplay", Metric: "loadgen-p99-ms", HigherBetter: false, Label: "loadgen replay p99 latency"},
	{Bench: "BenchmarkLoadgenReplay", Metric: "loadgen-qps", HigherBetter: true, Label: "loadgen replay throughput"},
}

func loadReport(path string) (Report, error) {
	f, err := os.Open(path)
	if err != nil {
		return Report{}, err
	}
	defer f.Close()
	var rep Report
	if err := json.NewDecoder(f).Decode(&rep); err != nil {
		return Report{}, fmt.Errorf("%s: %w", path, err)
	}
	return rep, nil
}

func byName(rep Report) map[string]Benchmark {
	out := make(map[string]Benchmark, len(rep.Benchmarks))
	for _, b := range rep.Benchmarks {
		out[b.Name] = b
	}
	return out
}

// diffReports prints the Markdown delta table and headline-gate verdicts to
// stdout and returns an error when the gate fails: a benchmark recorded in
// the old report is missing from the new one (a silently shrunk perf
// trajectory), or a headline metric regressed past threshold.
func diffReports(oldPath, newPath string, threshold float64) error {
	oldRep, err := loadReport(oldPath)
	if err != nil {
		return err
	}
	newRep, err := loadReport(newPath)
	if err != nil {
		return err
	}
	oldBy, newBy := byName(oldRep), byName(newRep)

	var missing []string
	for name := range oldBy {
		if _, ok := newBy[name]; !ok {
			missing = append(missing, name)
		}
	}
	sort.Strings(missing)

	fmt.Printf("### Benchmark diff: %s (%s) vs %s (%s)\n\n", oldRep.Tag, oldPath, newRep.Tag, newPath)
	printDeltaTable(oldBy, newBy)

	fmt.Printf("\n### Headline gate (threshold %.0f%%)\n\n", threshold*100)
	fmt.Println("| headline | old | new | delta | verdict |")
	fmt.Println("|---|---:|---:|---:|---|")
	var regressions []string
	for _, h := range headlines {
		oldVal, oldOK := metricOf(oldBy, h.Bench, h.Metric)
		newVal, newOK := metricOf(newBy, h.Bench, h.Metric)
		switch {
		case !newOK:
			// A headline the new record no longer reports is a gate
			// failure unless the old record never had it either.
			if oldOK {
				regressions = append(regressions, fmt.Sprintf("%s: metric %s/%s missing from new record", h.Label, h.Bench, h.Metric))
				fmt.Printf("| %s | %s | — | — | MISSING |\n", h.Label, num(oldVal))
			} else {
				fmt.Printf("| %s | — | — | — | not recorded |\n", h.Label)
			}
		case !oldOK:
			fmt.Printf("| %s | — | %s | — | new metric, no baseline |\n", h.Label, num(newVal))
		default:
			delta := (newVal - oldVal) / oldVal
			worse := delta
			if h.HigherBetter {
				worse = -delta
			}
			verdict := "ok"
			if worse > threshold {
				verdict = "REGRESSED"
				regressions = append(regressions, fmt.Sprintf("%s: %s -> %s (%+.1f%%, limit %.0f%%)",
					h.Label, num(oldVal), num(newVal), delta*100, threshold*100))
			}
			fmt.Printf("| %s | %s | %s | %+.1f%% | %s |\n", h.Label, num(oldVal), num(newVal), delta*100, verdict)
		}
	}

	if len(missing) > 0 {
		fmt.Printf("\n**%d benchmark(s) missing from the new record:** %s\n", len(missing), strings.Join(missing, ", "))
		return fmt.Errorf("%d benchmark(s) disappeared from the perf record: %s", len(missing), strings.Join(missing, ", "))
	}
	if len(regressions) > 0 {
		return fmt.Errorf("headline regression:\n  %s", strings.Join(regressions, "\n  "))
	}
	fmt.Printf("\nGate passed: %d benchmarks compared, no headline regression.\n", len(oldBy))
	return nil
}

func printDeltaTable(oldBy, newBy map[string]Benchmark) {
	names := make([]string, 0, len(newBy))
	for name := range newBy {
		names = append(names, name)
	}
	sort.Strings(names)

	fmt.Println("| benchmark | metric | old | new | delta |")
	fmt.Println("|---|---|---:|---:|---:|")
	for _, name := range names {
		nb := newBy[name]
		ob, hasOld := oldBy[name]
		metrics := make([]string, 0, len(nb.Metrics))
		for m := range nb.Metrics {
			metrics = append(metrics, m)
		}
		sort.Strings(metrics)
		for _, m := range metrics {
			newVal := nb.Metrics[m]
			oldVal, hasMetric := ob.Metrics[m]
			switch {
			case !hasOld || !hasMetric:
				fmt.Printf("| %s | %s | — | %s | new |\n", name, m, num(newVal))
			case oldVal == 0:
				fmt.Printf("| %s | %s | %s | %s | — |\n", name, m, num(oldVal), num(newVal))
			default:
				fmt.Printf("| %s | %s | %s | %s | %+.1f%% |\n", name, m, num(oldVal), num(newVal), (newVal-oldVal)/oldVal*100)
			}
		}
	}
}

func metricOf(by map[string]Benchmark, bench, metric string) (float64, bool) {
	b, ok := by[bench]
	if !ok {
		return 0, false
	}
	v, ok := b.Metrics[metric]
	return v, ok
}

// num renders a metric compactly: integers without noise, ratios with
// precision.
func num(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%.0f", v)
	}
	return fmt.Sprintf("%.4g", v)
}
