package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeReport(t *testing.T, name string, rep Report) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	data, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func baseReport(tag string) Report {
	return Report{Tag: tag, Benchmarks: []Benchmark{
		{Name: "BenchmarkEnginePlanCacheSpeedup", Iterations: 1, Metrics: map[string]float64{
			"plan-cache-speedup": 1.15, "ns/op": 2e7,
		}},
		{Name: "BenchmarkServeWarmQuery", Iterations: 1, Metrics: map[string]float64{
			"warm-ns/query": 12000, "ns/op": 13000,
		}},
		{Name: "BenchmarkFig3WavePattern", Iterations: 1, Metrics: map[string]float64{"ns/op": 1e5}},
	}}
}

func TestDiffPassesWithinThreshold(t *testing.T) {
	oldRep, newRep := baseReport("OLD"), baseReport("NEW")
	// 10% slower warm query, 5% lower speedup: inside a 25% gate. Absolute
	// ns/op moves of non-headline benchmarks never fail the gate.
	newRep.Benchmarks[0].Metrics["plan-cache-speedup"] = 1.09
	newRep.Benchmarks[1].Metrics["warm-ns/query"] = 13200
	newRep.Benchmarks[2].Metrics["ns/op"] = 9e5
	err := diffReports(writeReport(t, "old.json", oldRep), writeReport(t, "new.json", newRep), 0.25)
	if err != nil {
		t.Fatalf("in-threshold diff failed: %v", err)
	}
}

func TestDiffFailsOnHeadlineRegression(t *testing.T) {
	for _, tc := range []struct {
		name   string
		mutate func(*Report)
	}{
		{"speedup drop", func(r *Report) { r.Benchmarks[0].Metrics["plan-cache-speedup"] = 0.8 }},
		{"latency spike", func(r *Report) { r.Benchmarks[1].Metrics["warm-ns/query"] = 16000 }},
		{"headline metric vanished", func(r *Report) { delete(r.Benchmarks[1].Metrics, "warm-ns/query") }},
	} {
		newRep := baseReport("NEW")
		tc.mutate(&newRep)
		err := diffReports(writeReport(t, "old.json", baseReport("OLD")), writeReport(t, "new.json", newRep), 0.25)
		if err == nil {
			t.Errorf("%s: gate passed", tc.name)
		}
	}
}

// An improvement past the threshold in the good direction must not fail:
// the gate is one-sided.
func TestDiffAllowsImprovement(t *testing.T) {
	newRep := baseReport("NEW")
	newRep.Benchmarks[0].Metrics["plan-cache-speedup"] = 2.0
	newRep.Benchmarks[1].Metrics["warm-ns/query"] = 6000
	err := diffReports(writeReport(t, "old.json", baseReport("OLD")), writeReport(t, "new.json", newRep), 0.25)
	if err != nil {
		t.Fatalf("improvement failed the gate: %v", err)
	}
}

func TestDiffFailsOnMissingBenchmark(t *testing.T) {
	newRep := baseReport("NEW")
	newRep.Benchmarks = newRep.Benchmarks[:2] // drop Fig3
	err := diffReports(writeReport(t, "old.json", baseReport("OLD")), writeReport(t, "new.json", newRep), 0.25)
	if err == nil || !strings.Contains(err.Error(), "BenchmarkFig3WavePattern") {
		t.Fatalf("missing benchmark not reported: %v", err)
	}
}

// A headline metric absent from the OLD record (introduced this PR) must not
// fail the gate — the trajectory picks it up from the first record that has
// it.
func TestDiffToleratesNewHeadlineMetric(t *testing.T) {
	oldRep := baseReport("OLD")
	delete(oldRep.Benchmarks[1].Metrics, "warm-ns/query")
	err := diffReports(writeReport(t, "old.json", oldRep), writeReport(t, "new.json", baseReport("NEW")), 0.25)
	if err != nil {
		t.Fatalf("new headline metric failed the gate: %v", err)
	}
}

func TestParseLine(t *testing.T) {
	b, err := parseLine("BenchmarkServeWarmQuery-8 \t 1 \t 12525 ns/op \t 100.0 warm-hit-% \t 12389 warm-ns/query")
	if err != nil {
		t.Fatal(err)
	}
	if b.Name != "BenchmarkServeWarmQuery" {
		t.Errorf("GOMAXPROCS suffix not stripped: %q", b.Name)
	}
	if b.Metrics["warm-ns/query"] != 12389 || b.Metrics["ns/op"] != 12525 {
		t.Errorf("metrics = %v", b.Metrics)
	}
}
