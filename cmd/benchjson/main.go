// Command benchjson converts `go test -bench` text output on stdin into the
// JSON benchmark record the CI perf-tracking pipeline stores per PR
// (BENCH_<tag>.json). Keeping the converter in-repo means the schema is
// versioned with the benchmarks themselves: every benchmark line becomes one
// record holding ns/op plus every custom metric the suite reports via
// b.ReportMetric (speedups, error percentages, cache-hit gains).
//
// Usage:
//
//	go test -bench . -benchtime 1x -run '^$' . | go run ./cmd/benchjson -tag PR3 > BENCH_PR3.json
//
// With -diff the command is CI's perf-regression gate instead of a
// converter: it compares two records, prints a per-benchmark delta table in
// Markdown (pasteable into a job summary), and exits non-zero when a
// benchmark disappeared or a headline metric regressed past -threshold:
//
//	go run ./cmd/benchjson -diff BENCH_PR2.json BENCH_PR3.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Benchmark is one parsed benchmark result line.
type Benchmark struct {
	// Name is the benchmark with the -N GOMAXPROCS suffix stripped, so
	// records diff cleanly across runner core counts.
	Name       string `json:"name"`
	Iterations int64  `json:"iterations"`
	// Metrics holds every reported unit, ns/op included; custom units
	// like "flashoverlap-mean-speedup" carry the headline quantities.
	Metrics map[string]float64 `json:"metrics"`
}

// Report is the top-level JSON document.
type Report struct {
	Tag        string      `json:"tag"`
	Goos       string      `json:"goos,omitempty"`
	Goarch     string      `json:"goarch,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Package    string      `json:"pkg,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	tag := flag.String("tag", "local", "record tag, e.g. PR3")
	diff := flag.Bool("diff", false, "compare two records (old.json new.json) instead of converting; exit non-zero on headline regression")
	threshold := flag.Float64("threshold", 0.25, "relative headline regression that fails -diff (0.25 = 25%)")
	flag.Parse()

	if *diff {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "benchjson: -diff wants exactly two arguments: old.json new.json")
			os.Exit(2)
		}
		if err := diffReports(flag.Arg(0), flag.Arg(1), *threshold); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		return
	}

	rep := Report{Tag: *tag}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			rep.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			rep.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "cpu:"):
			rep.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "pkg:"):
			rep.Package = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "Benchmark"):
			b, err := parseLine(line)
			if err != nil {
				fmt.Fprintf(os.Stderr, "benchjson: skipping %q: %v\n", line, err)
				continue
			}
			rep.Benchmarks = append(rep.Benchmarks, b)
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if len(rep.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// parseLine parses one result line: name, iteration count, then
// (value, unit) pairs — `BenchmarkX-8  1  123 ns/op  4.2 speedup`.
func parseLine(line string) (Benchmark, error) {
	fields := strings.Fields(line)
	if len(fields) < 4 || len(fields)%2 != 0 {
		return Benchmark{}, fmt.Errorf("want name, iterations, and (value, unit) pairs, got %d fields", len(fields))
	}
	name := fields[0]
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, fmt.Errorf("iterations %q: %w", fields[1], err)
	}
	b := Benchmark{Name: name, Iterations: iters, Metrics: make(map[string]float64)}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Benchmark{}, fmt.Errorf("value %q: %w", fields[i], err)
		}
		b.Metrics[fields[i+1]] = v
	}
	return b, nil
}
