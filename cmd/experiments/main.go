// Command experiments regenerates every table and figure of the paper's
// evaluation section on the simulated substrate. Each experiment has a
// subcommand; "all" runs the full battery.
//
// Usage:
//
//	experiments [-quick] [-full] <fig3|fig4|fig8|fig10|fig11|fig12|fig13|fig14|fig15|fig16|table5|correctness|all>
//
// -quick shrinks the sweep grids (for smoke runs); -full enables the
// paper-scale Fig. 15 study (>250 combinations per platform).
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/expt"
)

func main() {
	quick := flag.Bool("quick", false, "shrink sweep grids for a fast run")
	full := flag.Bool("full", false, "run the paper-scale Fig. 15 study")
	csvDir := flag.String("csv", "", "also write raw data as CSV files into this directory")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: experiments [-quick] [-full] <experiment>\n\nexperiments:\n")
		for _, n := range names() {
			fmt.Fprintf(os.Stderr, "  %s\n", n)
		}
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	name := flag.Arg(0)
	if name == "all" {
		for _, n := range names() {
			fmt.Printf("==== %s ====\n", n)
			if err := run(n, *quick, *full, *csvDir); err != nil {
				fmt.Fprintf(os.Stderr, "%s: %v\n", n, err)
				os.Exit(1)
			}
		}
		return
	}
	if err := run(name, *quick, *full, *csvDir); err != nil {
		fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
		os.Exit(1)
	}
}

func names() []string {
	return []string{
		"correctness", "fig3", "fig4", "fig8", "fig10", "fig11",
		"fig12", "fig13", "fig14", "fig15", "fig16", "table5",
	}
}

// writeCSV writes one experiment's raw data when -csv is set.
func writeCSV(dir, name string, fn func(w *os.File) error) error {
	if dir == "" {
		return nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(dir, name+".csv"))
	if err != nil {
		return err
	}
	if err := fn(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func run(name string, quick, full bool, csvDir string) error {
	ctx := context.Background()
	switch name {
	case "fig3":
		r, err := expt.Fig3()
		if err != nil {
			return err
		}
		fmt.Println(r.Format())
		return writeCSV(csvDir, "fig3", func(w *os.File) error { return expt.WriteFig3CSV(w, r) })
	case "fig4":
		rows, err := expt.Fig4()
		if err != nil {
			return err
		}
		fmt.Println(expt.FormatFig4(rows))
	case "fig8":
		series := expt.Fig8()
		fmt.Println(expt.FormatFig8(series))
		return writeCSV(csvDir, "fig8", func(w *os.File) error { return expt.WriteFig8CSV(w, series) })
	case "fig10":
		groups, cases, err := expt.Fig10(ctx, quick)
		if err != nil {
			return err
		}
		fmt.Println(expt.FormatFig10(groups))
		return writeCSV(csvDir, "fig10", func(w *os.File) error { return expt.WriteOperatorCSV(w, cases) })
	case "fig11":
		cases, err := expt.Fig11(ctx, quick)
		if err != nil {
			return err
		}
		fmt.Println(expt.FormatFig11(cases))
		return writeCSV(csvDir, "fig11", func(w *os.File) error { return expt.WriteOperatorCSV(w, cases) })
	case "fig12":
		limit := 512
		if quick {
			limit = 96
		}
		results, err := expt.Fig12(ctx, limit)
		if err != nil {
			return err
		}
		fmt.Println(expt.FormatFig12(results))
		return writeCSV(csvDir, "fig12", func(w *os.File) error { return expt.WriteFig12CSV(w, results) })
	case "fig13":
		panels, err := expt.Fig13(ctx, quick)
		if err != nil {
			return err
		}
		fmt.Println(expt.FormatFig13(panels))
		return writeCSV(csvDir, "fig13", func(w *os.File) error { return expt.WriteFig13CSV(w, panels) })
	case "fig14":
		cases, err := expt.Fig14(ctx)
		if err != nil {
			return err
		}
		fmt.Println(expt.FormatFig14(cases))
	case "fig15":
		results, err := expt.Fig15(ctx, full)
		if err != nil {
			return err
		}
		fmt.Println(expt.FormatFig15(results))
		return writeCSV(csvDir, "fig15", func(w *os.File) error { return expt.WriteFig15CSV(w, results) })
	case "fig16":
		cases, err := expt.Fig16(ctx)
		if err != nil {
			return err
		}
		fmt.Println(expt.FormatFig16(cases))
		return writeCSV(csvDir, "fig16", func(w *os.File) error { return expt.WriteOperatorCSV(w, cases) })
	case "table5":
		rows, err := expt.Table5()
		if err != nil {
			return err
		}
		fmt.Println(expt.FormatTable5(rows))
	case "correctness":
		cases, err := expt.Correctness(ctx, 10)
		if err != nil {
			return err
		}
		fmt.Println(expt.FormatCorrectness(cases))
	default:
		return fmt.Errorf("unknown experiment %q", name)
	}
	return nil
}
