// Command flashoverlap runs a single overlapped GEMM+collective on the
// simulated cluster and prints its timeline: per-group signal and
// communication times, the comparison against the sequential baseline, and
// the theoretical bound.
//
// Example:
//
//	flashoverlap -platform 4090 -gpus 4 -prim AR -m 4096 -n 8192 -k 8192 -tune
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"repro/internal/baselines"
	"repro/internal/core"
	"repro/internal/gemm"
	"repro/internal/hw"
	"repro/internal/trace"
	"repro/internal/tuner"
)

func main() {
	var (
		platName  = flag.String("platform", "4090", "hardware profile: 4090, a800, ascend")
		gpus      = flag.Int("gpus", 4, "parallel group size")
		primName  = flag.String("prim", "AR", "communication primitive: AR, RS, A2A")
		m         = flag.Int("m", 4096, "GEMM M (per GPU)")
		n         = flag.Int("n", 8192, "GEMM N")
		k         = flag.Int("k", 8192, "GEMM K")
		part      = flag.String("partition", "", "wave-group sizes, e.g. 1,2,2 (default: one wave per group)")
		tune      = flag.Bool("tune", false, "run the predictive search for the partition")
		imb       = flag.Float64("imbalance", 0, "A2A load imbalance factor (>= 1)")
		showTrace = flag.Bool("trace", false, "render an ASCII timeline of device 0")
		traceJSON = flag.String("tracejson", "", "write a Chrome trace-event file")
	)
	flag.Parse()

	plat, err := hw.ByName(*platName)
	fatal(err)
	prim, err := parsePrim(*primName)
	fatal(err)
	shape := gemm.Shape{M: *m, N: *n, K: *k}

	opts := core.Options{Plat: plat, NGPUs: *gpus, Shape: shape, Prim: prim, Imbalance: *imb,
		Trace: *showTrace || *traceJSON != ""}
	switch {
	case *tune:
		tn := tuner.NewTuner(plat, *gpus, prim)
		p, err := tn.Tune(context.Background(), shape, *imb)
		fatal(err)
		opts.Partition = p
		fmt.Printf("tuned partition: %v\n", p)
	case *part != "":
		p, err := parsePartition(*part)
		fatal(err)
		opts.Partition = p
	}

	res, err := core.Run(context.Background(), opts)
	fatal(err)
	base, err := baselines.NonOverlap(baselines.Options{Plat: plat, NGPUs: *gpus, Shape: shape, Prim: prim, Imbalance: *imb})
	fatal(err)
	bound, err := core.TheoreticalBound(opts)
	fatal(err)

	fmt.Printf("\n%s  %v  GEMM+%s  %d GPUs\n", plat.Name, shape, prim.Short(), *gpus)
	fmt.Printf("partition %v over %d waves (wave size %d tiles)\n\n", res.Partition, res.Waves, res.WaveSize)
	fmt.Printf("%-8s %-7s %-7s %-12s %-12s %s\n", "group", "waves", "tiles", "bytes", "signal", "comm end")
	for _, g := range res.Groups {
		fmt.Printf("G%-7d %-7d %-7d %-12s %-12v %v\n",
			g.Group+1, g.Waves, g.Tiles, fmt.Sprintf("%.1f MB", float64(g.Bytes)/1e6), g.SignalAt, g.CommEnd)
	}
	fmt.Printf("\nGEMM end:          %v\n", res.GEMMEnd)
	fmt.Printf("overlap latency:   %v\n", res.Latency)
	fmt.Printf("non-overlap:       %v\n", base)
	fmt.Printf("theoretical bound: %v\n", bound)
	fmt.Printf("speedup:           %.3fx (achieves %.1f%% of the perfect-overlap bound)\n",
		res.Speedup(base), 100*float64(bound)/float64(res.Latency))

	if *showTrace {
		fmt.Printf("\ntimeline (#=compute, ==communication):\n%s", trace.FromSpans(res.Trace).Render(76))
	}
	if *traceJSON != "" {
		f, err := os.Create(*traceJSON)
		fatal(err)
		fatal(trace.FromSpans(res.Trace).WriteChromeTrace(f))
		fatal(f.Close())
		fmt.Printf("\nChrome trace written to %s\n", *traceJSON)
	}
}

func parsePrim(s string) (hw.Primitive, error) {
	switch s {
	case "AR", "allreduce", "AllReduce":
		return hw.AllReduce, nil
	case "RS", "reducescatter", "ReduceScatter":
		return hw.ReduceScatter, nil
	case "A2A", "alltoall", "AllToAll":
		return hw.AllToAll, nil
	}
	return 0, fmt.Errorf("unknown primitive %q (want AR, RS, or A2A)", s)
}

func parsePartition(s string) (gemm.Partition, error) {
	var p gemm.Partition
	for _, f := range splitComma(s) {
		var v int
		if _, err := fmt.Sscanf(f, "%d", &v); err != nil {
			return nil, fmt.Errorf("bad partition element %q", f)
		}
		p = append(p, v)
	}
	return p, nil
}

func splitComma(s string) []string {
	var out []string
	start := 0
	for i := 0; i <= len(s); i++ {
		if i == len(s) || s[i] == ',' {
			if i > start {
				out = append(out, s[start:i])
			}
			start = i + 1
		}
	}
	return out
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "flashoverlap:", err)
		os.Exit(1)
	}
}
