// Command loadgen replays a multi-tenant workload trace against a cmd/serve
// replica or a cmd/route fleet and reports what the server-side metrics
// plane measured for each tenant: queries, hit rate, and p50/p95/p99
// latency, read off /stats after the replay (and therefore merged across
// every replica when the target is a router).
//
// The workload comes from a v1 NDJSON trace file (-trace, see
// docs/OPERATIONS.md for the format) or from the deterministic synthesizer
// (-synth): three tenant archetypes — AllReduce over small decode shapes,
// ReduceScatter over large prefill shapes, AllToAll with a 1.5 hot-expert
// imbalance — arriving as independent bursty on/off streams. -write saves
// the synthesized trace so a CI run or a colleague can replay the exact
// same workload.
//
// Replay is open-loop: events fire at their trace offsets (scaled by
// -speedup, or replaced by a fixed -rate) whether or not earlier requests
// have answered, bounded by -max-inflight. The exit status is the check:
// non-zero if any trace tenant is missing from /stats or has an empty
// latency histogram — the signal CI uses to catch a metrics-plane
// regression.
//
// Examples:
//
//	loadgen -synth -duration 5s -qps 200 -target http://localhost:8080
//	loadgen -synth -seed 7 -write trace.ndjson           # generate only
//	loadgen -trace trace.ndjson -speedup 10 -target http://localhost:8080
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"sort"
	"time"

	"repro/internal/serve"
	"repro/internal/workload"
)

func main() {
	var (
		target      = flag.String("target", "", "base URL of a serve replica or route fleet (empty with -write: just generate the trace)")
		tracePath   = flag.String("trace", "", "v1 NDJSON trace file to replay (\"-\" reads stdin; mutually exclusive with -synth)")
		synth       = flag.Bool("synth", false, "synthesize a deterministic bursty multi-tenant trace instead of reading one")
		tenants     = flag.Int("tenants", 3, "synthetic tenant count (tenant i cycles through the AR/RS/A2A archetypes)")
		duration    = flag.Duration("duration", 10*time.Second, "synthetic trace length in trace time")
		qps         = flag.Float64("qps", 50, "synthetic aggregate mean arrival rate during on-phases")
		burst       = flag.Float64("burst", 4, "synthetic on/off burstiness factor (1 = steady arrivals)")
		seed        = flag.Int64("seed", 1, "synthesizer seed; equal seeds give byte-identical traces")
		write       = flag.String("write", "", "write the trace (synthesized or loaded) to this file before replaying")
		speedup     = flag.Float64("speedup", 1, "trace-time compression: 10 replays a 10s trace in 1s; 0 disables pacing entirely")
		rate        = flag.Float64("rate", 0, "fixed open-loop request rate overriding trace timing (0 = use trace offsets)")
		maxInflight = flag.Int("max-inflight", 16, "bound on concurrent in-flight requests")
		timeout     = flag.Duration("timeout", 30*time.Second, "per-request timeout (covers a cold-shape tune)")
		jsonOut     = flag.Bool("json", false, "emit the final report as JSON instead of the table")
	)
	flag.Parse()

	tr, err := loadTrace(*tracePath, *synth, workload.SynthConfig{
		Tenants: *tenants, Duration: *duration, QPS: *qps, Burst: *burst, Seed: *seed,
	})
	if err != nil {
		log.Fatal(err)
	}
	if len(tr.Events) == 0 {
		log.Fatal("loadgen: trace has no events")
	}
	if *write != "" {
		f, err := os.Create(*write)
		if err != nil {
			log.Fatal(err)
		}
		if err := workload.WriteTrace(f, tr); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "loadgen: wrote %d events (%s of trace time) to %s\n", len(tr.Events), tr.Duration().Round(time.Millisecond), *write)
	}
	if *target == "" {
		if *write != "" {
			return // generate-only invocation
		}
		log.Fatal("loadgen: -target is required (or -write to only generate a trace)")
	}

	client := &http.Client{Timeout: *timeout}
	ctx := context.Background()
	rep, err := workload.Replay(ctx, workload.ReplayOptions{
		Target:      *target,
		Client:      client,
		Speedup:     *speedup,
		Rate:        *rate,
		MaxInflight: *maxInflight,
	}, tr)
	if err != nil {
		log.Fatal(err)
	}

	merged, err := fetchStats(ctx, client, *target)
	if err != nil {
		log.Fatal(err)
	}
	report, ok := buildReport(tr, rep, merged)
	report.Target = *target
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(report); err != nil {
			log.Fatal(err)
		}
	} else {
		printReport(report)
	}
	if !ok {
		log.Fatal("loadgen: FAIL: at least one trace tenant has no latency histogram in /stats")
	}
}

func loadTrace(path string, synth bool, cfg workload.SynthConfig) (workload.Trace, error) {
	switch {
	case synth && path != "":
		return workload.Trace{}, fmt.Errorf("loadgen: -trace and -synth are mutually exclusive")
	case synth:
		return workload.Synth(cfg), nil
	case path == "-":
		return workload.ReadTrace(os.Stdin)
	case path != "":
		f, err := os.Open(path)
		if err != nil {
			return workload.Trace{}, err
		}
		defer f.Close()
		return workload.ReadTrace(f)
	default:
		return workload.Trace{}, fmt.Errorf("loadgen: need -trace FILE or -synth")
	}
}

// fetchStats reads the target's /stats and returns the fleet-wide
// serve.Stats view: a router's body carries it under "merged" (with the
// per-replica breakdown alongside), a single replica's body is the stats
// object itself. Probing for the key keeps loadgen agnostic to which kind
// of target it was pointed at.
func fetchStats(ctx context.Context, client *http.Client, target string) (serve.Stats, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, target+"/stats", nil)
	if err != nil {
		return serve.Stats{}, err
	}
	resp, err := client.Do(req)
	if err != nil {
		return serve.Stats{}, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return serve.Stats{}, err
	}
	if resp.StatusCode != http.StatusOK {
		return serve.Stats{}, fmt.Errorf("loadgen: /stats status %d: %s", resp.StatusCode, body)
	}
	var probe struct {
		Merged *serve.Stats `json:"merged"`
	}
	if err := json.Unmarshal(body, &probe); err != nil {
		return serve.Stats{}, fmt.Errorf("loadgen: /stats body: %w", err)
	}
	if probe.Merged != nil {
		return *probe.Merged, nil
	}
	var st serve.Stats
	if err := json.Unmarshal(body, &st); err != nil {
		return serve.Stats{}, fmt.Errorf("loadgen: /stats body: %w", err)
	}
	return st, nil
}

// TenantReport is one tenant's line of the final report: the client-side
// offered load plus the server-side measurement.
type TenantReport struct {
	Tenant  string  `json:"tenant"`
	Sent    uint64  `json:"sent"`
	Errors  uint64  `json:"errors"`
	Queries uint64  `json:"queries"`
	HitRate float64 `json:"hit_rate"`
	P50Ms   float64 `json:"p50_ms"`
	P95Ms   float64 `json:"p95_ms"`
	P99Ms   float64 `json:"p99_ms"`
	// Measured is false when /stats had no latency histogram for the
	// tenant — the condition that fails the run.
	Measured bool `json:"measured"`
}

// LoadgenReport is the -json output schema.
type LoadgenReport struct {
	Target    string         `json:"target"`
	Events    int            `json:"events"`
	Sent      uint64         `json:"sent"`
	Errors    uint64         `json:"errors"`
	ElapsedMs float64        `json:"elapsed_ms"`
	QPS       float64        `json:"qps"`
	Tenants   []TenantReport `json:"tenants"`
}

func buildReport(tr workload.Trace, rep workload.Report, st serve.Stats) (LoadgenReport, bool) {
	out := LoadgenReport{
		Events:    len(tr.Events),
		Sent:      rep.Sent,
		Errors:    rep.Errors,
		ElapsedMs: float64(rep.Elapsed) / float64(time.Millisecond),
	}
	if rep.Elapsed > 0 {
		out.QPS = float64(rep.Sent) / rep.Elapsed.Seconds()
	}
	ok := true
	names := tr.Tenants()
	sort.Strings(names)
	for _, name := range names {
		line := TenantReport{
			Tenant: name,
			Sent:   rep.PerTenant[name].Sent,
			Errors: rep.PerTenant[name].Errors,
		}
		if ts, found := st.Tenants[name]; found && ts.Latency.Count > 0 {
			line.Measured = true
			line.Queries = ts.Queries
			if ts.Queries > 0 {
				line.HitRate = float64(ts.Hits) / float64(ts.Queries)
			}
			line.P50Ms = ms(ts.Latency.Quantile(0.50))
			line.P95Ms = ms(ts.Latency.Quantile(0.95))
			line.P99Ms = ms(ts.Latency.Quantile(0.99))
		} else {
			ok = false
		}
		out.Tenants = append(out.Tenants, line)
	}
	return out, ok
}

func ms(d time.Duration) float64 {
	return float64(d) / float64(time.Millisecond)
}

func printReport(r LoadgenReport) {
	fmt.Printf("replayed %d events in %.1fms (%.1f qps offered), %d errors\n",
		r.Sent, r.ElapsedMs, r.QPS, r.Errors)
	fmt.Printf("%-12s %8s %7s %9s %9s %9s %9s\n",
		"tenant", "queries", "errors", "hit-rate", "p50-ms", "p95-ms", "p99-ms")
	for _, t := range r.Tenants {
		if !t.Measured {
			fmt.Printf("%-12s %8d %7d  MISSING: no latency histogram in /stats\n", t.Tenant, t.Sent, t.Errors)
			continue
		}
		fmt.Printf("%-12s %8d %7d %9.3f %9.3f %9.3f %9.3f\n",
			t.Tenant, t.Queries, t.Errors, t.HitRate, t.P50Ms, t.P95Ms, t.P99Ms)
	}
}
