// Command route is the shape-hash front-end of a sharded tuning fleet: it
// owns no tuner state itself, just the ownership mapping. Each /query is
// forwarded to the cmd/serve replica that owns the shape's slice of the
// (log M·N, log K) plane, failing over to the next shard in ring order when
// the owner is unreachable; POST /sweep fans a whole grid out across the
// fleet in chunks (churn-safe: chunks of a replica that dies mid-sweep
// re-dispatch through the ring, honoring the caller's forwarded chunk size
// and attempt budget); /stats merges the fleet's counters with a
// per-replica breakdown including each replica's health state.
//
// The router keeps a health plane over the fleet: a replica that fails a
// request is marked dead and skipped — costing the fleet at most one probe
// timeout per -health-cooldown window instead of one timeout per query or
// chunk — and a background prober hits dead replicas' GET /healthz every
// -health-probe interval, re-admitting a replica the moment it restarts.
// A replica dead past -rebalance-after cooldown windows is evicted from the
// consistent-hash ownership ring: its cells rebalance to the surviving
// replicas (queries and chunks route there directly, no failover hop) until
// re-admission hands exactly those cells back. /stats reports the eviction
// and hand-back counters plus each replica's evicted flag.
//
// /sweep speaks both protocol generations: a plain POST answers with the
// buffered v1 JSON body, while a client sending Accept: application/x-ndjson
// (or "stream": true in the request) gets the v2 NDJSON frame stream —
// result frames as the fleet's chunks complete, then a terminal done or
// error frame — so whole-grid sweeps proxy without buffering the grid.
//
// Example (two replicas on one host):
//
//	serve -addr :8081 -shard 0/2 &
//	serve -addr :8082 -shard 1/2 &
//	route -addr :8080 -replicas http://localhost:8081,http://localhost:8082
//	curl 'localhost:8080/query?m=4096&n=8192&k=8192&prim=AR'
//	curl 'localhost:8080/stats'
//
// The replica order given to -replicas must match the shard indices the
// replicas were started with: replica i in the list serves -shard i/n.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"time"

	"repro/internal/serve"
	"repro/internal/shard"
)

func main() {
	var (
		addr       = flag.String("addr", ":8080", "HTTP listen address")
		replicas   = flag.String("replicas", "", "comma-separated replica base URLs, in shard order (replica i runs -shard i/n)")
		timeout    = flag.Duration("timeout", 30*time.Second, "per-request replica timeout (covers a cold-shape tune)")
		cooldown   = flag.Duration("health-cooldown", shard.DefaultHealthCooldown, "how long a failed replica is skipped before one trial request is allowed through (must be > 0: benching cannot be disabled)")
		probe      = flag.Duration("health-probe", 0, "background /healthz probe interval for dead-replica re-admission (0 = the health cooldown)")
		rebalance  = flag.Int("rebalance-after", shard.DefaultEvictAfter, "cooldown windows a replica must stay dead before its ring cells rebalance to the survivors (0 disables eviction)")
		reqTimeout = flag.Duration("request-timeout", 0, "per-request deadline for proxied /query and /sweep (0 = none); a timed-out sweep aborts its in-flight replica chunks")
	)
	flag.Parse()

	if *replicas == "" {
		fatal(fmt.Errorf("-replicas is required (e.g. http://host1:8080,http://host2:8080)"))
	}
	if *cooldown <= 0 {
		// SetCooldown silently ignores non-positive values; fail loudly
		// instead of leaving the operator on the 15s default unawares.
		fatal(fmt.Errorf("-health-cooldown must be > 0 (got %v); replica benching cannot be disabled", *cooldown))
	}
	// ParseReplicas rejects duplicate URLs: replica position is shard
	// identity, so a URL listed twice would silently skew the ownership
	// plane (two slots, one real replica) instead of failing here.
	urls, err := shard.ParseReplicas(*replicas)
	fatal(err)
	httpClient := &http.Client{Timeout: *timeout}
	clients := make([]shard.Client, len(urls))
	for i, u := range urls {
		clients[i] = &shard.HTTPClient{Base: u, HTTP: httpClient}
	}
	router, err := shard.NewRouter(clients)
	fatal(err)
	router.Health().SetCooldown(*cooldown)
	router.Health().SetEvictAfter(*rebalance)
	// Probe dead replicas for the process lifetime: a replica that
	// restarts is re-admitted and reclaims its shard slice without
	// waiting for an in-band trial request.
	stopProber := router.StartProber(context.Background(), *probe)
	defer stopProber()

	log.Printf("routing %d shards on %s:", len(urls), *addr)
	for i, u := range urls {
		log.Printf("  shard %d/%d -> %s", i, len(urls), u)
	}
	// Like cmd/serve: nil only on graceful signal shutdown; listen errors
	// exit non-zero.
	fatal(serve.Run(*addr, router.HandlerWithTimeout(*reqTimeout)))
	log.Printf("shut down cleanly")
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "route:", err)
		os.Exit(1)
	}
}
