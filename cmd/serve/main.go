// Command serve runs the long-lived tuning service over HTTP/JSON: a
// production-scale deployment of the paper's §4.2.2 dynamic-shape story,
// where a server answers (shape, primitive) queries from a tuned-shape cache
// and tunes misses exactly once, no matter how many requests race on them.
//
// Example:
//
//	serve -addr :8080 -platform a800 -gpus 4 -warm "2048x8192x4096,4096x8192x8192"
//	curl 'localhost:8080/query?m=4096&n=8192&k=8192&prim=AR'
//	curl 'localhost:8080/stats'
//
// With -shard k/n the process is replica k of an n-way sharded fleet: it
// pre-warms only the shapes it owns under the shape-hash partition (put
// cmd/route in front to fan queries out by ownership):
//
//	serve -addr :8081 -shard 0/2 -warm "$SHAPES" &
//	serve -addr :8082 -shard 1/2 -warm "$SHAPES" &
//	route -addr :8080 -replicas http://localhost:8081,http://localhost:8082
//
// Besides /query, /sweep, and /stats the server exposes GET /healthz, the
// liveness probe a router or sweep coordinator uses to re-admit this
// replica after a restart (the fleet's dead-replica recovery path).
//
// With -snapshot the server persists its warm state — tuned shape-cache
// entries and sampled bandwidth curves — to a checksummed file on graceful
// shutdown (and every -snapshot-interval while serving), and restores it on
// the next boot, so a restarted replica re-admits warm and answers
// byte-identically to its pre-restart self without re-tuning:
//
//	serve -addr :8081 -warm "$SHAPES" -snapshot /var/lib/repro/warm0.json
//
// The server shuts down gracefully on SIGINT/SIGTERM and exits non-zero when
// the listener cannot be established.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"repro/internal/hw"
	"repro/internal/serve"
	"repro/internal/shard"
)

func main() {
	var (
		addr       = flag.String("addr", ":8080", "HTTP listen address")
		platName   = flag.String("platform", "4090", "hardware profile: 4090, a800, ascend, h100")
		gpus       = flag.Int("gpus", 4, "parallel group size")
		workers    = flag.Int("workers", 0, "engine worker pool width (0 = GOMAXPROCS)")
		planCache  = flag.Int("plan-cache", 0, "compiled-plan LRU capacity (0 = default)")
		shapeCache = flag.Int("shape-cache", 0, "tuned-shape cache capacity per primitive (0 = default)")
		limit      = flag.Int("limit", 512, "candidate limit per tune")
		warm       = flag.String("warm", "", "comma-separated MxNxK list to pre-tune, e.g. 2048x8192x4096,4096x8192x8192")
		warmPrims  = flag.String("warm-prims", "AR", "comma-separated primitives to pre-warm: AR, RS, A2A")
		shardFlag  = flag.String("shard", "", "replica slice k/n of a sharded fleet (e.g. 0/4); empty = unsharded")
		snapshot   = flag.String("snapshot", "", "warm-state snapshot file: loaded on boot if present, saved periodically and on graceful shutdown")
		snapEvery  = flag.Duration("snapshot-interval", 5*time.Minute, "how often to save the snapshot while serving (0 = only on shutdown)")
		reqTimeout = flag.Duration("request-timeout", 0, "per-request deadline for /query and /sweep (0 = none); timed-out requests return the retryable error envelope")
	)
	flag.Parse()

	plat, err := hw.ByName(*platName)
	fatal(err)
	assign, err := shard.ParseAssignment(*shardFlag)
	fatal(err)
	cfg := serve.Config{
		Plat:           plat,
		NGPUs:          *gpus,
		Workers:        *workers,
		PlanCacheSize:  *planCache,
		ShapeCacheSize: *shapeCache,
		CandidateLimit: *limit,
	}
	if assign.Sharded() {
		cfg.Owns = assign.Owns
		cfg.Shard = assign.String()
	}
	svc, err := serve.New(cfg)
	fatal(err)

	// Snapshot restore runs before -warm: restored entries re-admit warm,
	// and any -warm shapes the snapshot already covers are simply re-tuned
	// to the same answers (TuneGrid never short-circuits), so the two
	// compose without surprises. A rejected or missing snapshot is a cold
	// boot, never a crash.
	if *snapshot != "" {
		if _, statErr := os.Stat(*snapshot); statErr == nil {
			if n, err := svc.LoadSnapshotFile(*snapshot); err != nil {
				log.Printf("snapshot: %v (starting cold)", err)
			} else {
				log.Printf("snapshot: restored %d warm entries from %s", n, *snapshot)
			}
		} else {
			log.Printf("snapshot: %s not found, starting cold", *snapshot)
		}
	}

	if *warm != "" {
		shapes, err := serve.ParseShapes(*warm)
		fatal(err)
		prims, err := serve.ParsePrimitives(*warmPrims)
		fatal(err)
		log.Printf("warming %d shapes x %d primitives on %s x%d...", len(shapes), len(prims), plat.Name, *gpus)
		fatal(svc.Warm(context.Background(), prims, shapes, 0))
		st := svc.Stats()
		if assign.Sharded() {
			// ShapesCached counts cache entries across every warmed
			// primitive; ownership is a property of shapes alone.
			owned := 0
			for _, s := range shapes {
				if assign.Owns(s) {
					owned++
				}
			}
			log.Printf("warm: shard %s owns %d of %d shapes (%d cache entries), %d plans compiled",
				assign, owned, len(shapes), st.ShapesCached, st.Engine.Misses)
		} else {
			log.Printf("warm: %d shapes cached, %d plans compiled", st.ShapesCached, st.Engine.Misses)
		}
	}

	if assign.Sharded() {
		log.Printf("serving %s x%d on %s as shard %s", plat.Name, *gpus, *addr, assign)
	} else {
		log.Printf("serving %s x%d on %s", plat.Name, *gpus, *addr)
	}
	// Run exits nil only on a signal-triggered graceful shutdown; a listen
	// failure (port in use, bad address) must reach the exit code so CI
	// smoke-runs and process supervisors see it.
	var onShutdown func()
	if *snapshot != "" {
		if *snapEvery > 0 {
			ticker := time.NewTicker(*snapEvery)
			defer ticker.Stop()
			go func() {
				for range ticker.C {
					if err := svc.SaveSnapshotFile(*snapshot); err != nil {
						log.Printf("snapshot: %v", err)
					}
				}
			}()
		}
		// The final save happens after the graceful drain, so it captures
		// every tune the server performed; SaveSnapshotFile renames over
		// the target atomically, so racing the ticker is harmless.
		onShutdown = func() {
			if err := svc.SaveSnapshotFile(*snapshot); err != nil {
				log.Printf("snapshot: %v", err)
			} else {
				log.Printf("snapshot: saved warm state to %s", *snapshot)
			}
		}
	}
	fatal(serve.RunWithShutdown(*addr, serve.HandlerWithTimeout(svc, *reqTimeout), onShutdown))
	log.Printf("shut down cleanly")
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "serve:", err)
		os.Exit(1)
	}
}
