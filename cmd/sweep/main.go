// Command sweep drives a grid sweep across a multi-host fleet of cmd/serve
// replicas: the distributed counterpart of an in-process engine.Batch. The
// grid (shapes x primitives) is partitioned by shape ownership, each
// shard's sub-grid is dispatched to its replica in chunks over POST /sweep,
// and the per-shard results stream back into deterministic global order. A
// replica that dies mid-sweep does not fail the run: its remaining chunks
// re-dispatch through the failover ring under a bounded attempt budget.
//
// A fleet-wide health plane keeps the degraded path cheap: a replica that
// fails is marked dead and skipped by every later chunk (at most one probe
// timeout per -health-cooldown window, not one per chunk), chunks that fail
// partway keep their completed prefix and re-dispatch only the unanswered
// suffix, and a background /healthz prober re-admits a replica that
// restarts mid-sweep so it reclaims its owned shard.
//
// Example (three replicas on two hosts):
//
//	serve -addr host1:8081 -shard 0/3 &
//	serve -addr host1:8082 -shard 1/3 &
//	serve -addr host2:8081 -shard 2/3 &
//	sweep -replicas host1:8081,host1:8082,host2:8081 \
//	    -shapes "2048x8192x4096,4096x8192x8192" -prims AR,RS
//
// Untuned sweeps (the default) execute the per-wave baseline, whose merged
// results are byte-identical to single-process engine.Batch over the same
// grid — -verify checks exactly that against a local engine, which makes
// the command double as a cross-host determinism audit. With -tune each
// cell is first answered through the replica's tuned-shape cache
// (singleflight misses) and then executed with the tuned partition.
//
// -fidelity selects what executes on the replicas. "des" (the default) runs
// every cell through the deterministic event simulator; "analytic" evaluates
// every cell with the Algorithm 1 predictor over offline bandwidth curves —
// orders of magnitude cheaper, no event simulation; "mixed" sweeps the whole
// grid analytically, ranks cells per quantized shape bucket, and re-runs
// only the top -topk per bucket through the simulator — the fast-path sweep
// for large grids where only the winners need simulator-grade confirmation.
// Every result carries its fidelity label, and -verify understands all three
// modes: DES results are byte-compared against a local simulator replay and
// analytic results against a local predictor evaluation.
//
// sweep also composes with cmd/route: pointing -replicas at a single
// router URL treats the router as a one-replica fleet, and the router's
// /sweep proxy fans the grid out across the real one.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/hw"
	"repro/internal/serve"
	"repro/internal/shard"
)

func main() {
	var (
		replicas  = flag.String("replicas", "", "comma-separated replica base URLs, in shard order (replica i runs -shard i/n); a cmd/route URL also works")
		shapesArg = flag.String("shapes", "", "comma-separated MxNxK grid, e.g. 2048x8192x4096,4096x8192x8192")
		primsArg  = flag.String("prims", "AR", "comma-separated primitives to cross with the shapes: AR, RS, A2A")
		imbalance = flag.Float64("imbalance", 0, "All-to-All max/mean load factor (0 = balanced)")
		tune      = flag.Bool("tune", false, "tune each cell through the replica's shape cache and execute the tuned partition (default: untuned per-wave baseline)")
		fidelity  = flag.String("fidelity", "des", "execution fidelity: des (event simulator), analytic (Algorithm 1 predictor, no simulation), or mixed (analytic grid + DES re-run of the top -topk per shape bucket)")
		topK      = flag.Int("topk", 0, "mixed fidelity only: DES confirmations per rank bucket (0 = engine default)")
		rankQ     = flag.Float64("rank-quantum", 0, "mixed fidelity only: log2 cell edge of the rank buckets (0 = engine default)")
		tenant    = flag.String("tenant", "", "optional tenant accounting label: executed items count into the tenant's swept_items on every replica's /stats (letters, digits, . _ -)")
		chunk     = flag.Int("chunk", 0, "items per dispatched chunk (0 = shard.DefaultChunkSize)")
		attempts  = flag.Int("attempts", 0, "re-dispatch budget per chunk across the failover ring (0 = fleet size); a budget beyond the fleet size does not hammer dead replicas back-to-back — wrap-around retries wait out -health-cooldown, so extra budget helps only when a replica recovers mid-dispatch")
		timeout   = flag.Duration("timeout", 2*time.Minute, "per-chunk replica timeout (covers a chunk of tunes + simulations)")
		deadline  = flag.Duration("deadline", 0, "whole-sweep deadline (0 = none); on expiry every in-flight replica chunk is aborted and the sweep exits non-zero, leaving the fleet healthy")
		cooldown  = flag.Duration("health-cooldown", shard.DefaultHealthCooldown, "how long a failed replica is skipped before one trial dispatch is allowed through (must be > 0: benching cannot be disabled)")
		probe     = flag.Duration("health-probe", 0, "background /healthz probe interval for mid-sweep dead-replica re-admission (0 = -health-cooldown)")
		rebalance = flag.Int("rebalance-after", shard.DefaultEvictAfter, "cooldown windows a replica must stay dead before its ring cells rebalance to the survivors (0 disables eviction)")
		verify    = flag.Bool("verify", false, "re-run the grid on a local engine and require byte-identical results (needs -platform/-gpus to match the fleet)")
		platName  = flag.String("platform", "4090", "fleet hardware profile, for -verify: 4090, a800, ascend, h100")
		gpus      = flag.Int("gpus", 4, "fleet parallel group size, for -verify")
		jsonOut   = flag.Bool("json", false, "emit the merged results as JSON instead of a table")
		quiet     = flag.Bool("quiet", false, "suppress per-chunk progress logging")
	)
	flag.Parse()

	if *replicas == "" || *shapesArg == "" {
		fatal(fmt.Errorf("-replicas and -shapes are required"))
	}
	if *cooldown <= 0 {
		// SetCooldown silently ignores non-positive values; fail loudly
		// instead of leaving the operator on the 15s default unawares.
		fatal(fmt.Errorf("-health-cooldown must be > 0 (got %v); replica benching cannot be disabled", *cooldown))
	}
	urls, err := shard.ParseReplicas(*replicas)
	fatal(err)
	shapes, err := serve.ParseShapes(*shapesArg)
	fatal(err)
	prims, err := serve.ParsePrimitives(*primsArg)
	fatal(err)

	httpClient := &http.Client{Timeout: *timeout}
	clients := make([]shard.Client, len(urls))
	for i, u := range urls {
		clients[i] = &shard.HTTPClient{Base: u, HTTP: httpClient}
	}
	router, err := shard.NewRouter(clients)
	fatal(err)
	router.Health().SetEvictAfter(*rebalance)
	co := shard.NewCoordinator(router)
	fatal(serve.ValidateTenant(*tenant))
	co.Spec = shard.SweepSpec{
		Tune:           *tune,
		Chunk:          *chunk,
		Attempts:       *attempts,
		TopK:           *topK,
		RankQuantum:    *rankQ,
		Tenant:         *tenant,
		HealthCooldown: *cooldown,
		ProbeInterval:  *probe,
	}
	if *fidelity != serve.FidelityDES {
		// The default stays off the wire ("" dispatch) so old fleets keep
		// answering old clients byte-identically.
		co.Spec.Fidelity = *fidelity
	}
	if !*quiet {
		co.OnChunk = func(cr shard.ChunkResult) {
			suffix := ""
			if cr.Replica != cr.Shard {
				suffix = " (re-dispatched)"
			}
			log.Printf("shard %d: chunk of %d items answered by replica %d%s",
				cr.Shard, len(cr.Indices), cr.Replica, suffix)
		}
	}

	// Shape-major grid order, matching a nested sweep loop.
	var items []serve.SweepItem
	for _, s := range shapes {
		for _, p := range prims {
			items = append(items, serve.SweepItem{M: s.M, N: s.N, K: s.K, Prim: p.Short(), Imbalance: *imbalance})
		}
	}

	ctx := context.Background()
	if *deadline > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *deadline)
		defer cancel()
	}

	start := time.Now()
	results, err := co.Sweep(ctx, items)
	fatal(err)
	elapsed := time.Since(start)

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		fatal(enc.Encode(results))
	} else {
		fmt.Printf("%-20s %-14s %-16s %6s %9s %14s %14s %8s  %s\n",
			"shape", "primitive", "partition", "waves", "fidelity", "predicted", "measured", "source", "owner->replica")
		for _, res := range results {
			pred, src := "-", "-"
			if res.PredictedNs > 0 {
				pred = fmt.Sprint(time.Duration(res.PredictedNs))
			}
			if res.Source != "" {
				src = res.Source
			}
			fmt.Printf("%-20s %-14s %-16s %6d %9s %14s %14s %8s  %d->%d\n",
				res.Shape, res.Primitive, partitionString(res.Partition), res.Waves, res.Fidelity,
				pred, time.Duration(res.Result.Latency), src, res.Owner, res.Replica)
		}
	}
	perItem := elapsed / time.Duration(len(items))
	nDES, nAnalytic := 0, 0
	for _, res := range results {
		if res.Fidelity == serve.FidelityAnalytic {
			nAnalytic++
		} else {
			nDES++
		}
	}
	log.Printf("swept %d items (%d des, %d analytic) across %d replicas in %v (%v/item, %d re-dispatches, %d items salvaged from partial chunks)",
		len(items), nDES, nAnalytic, len(urls), elapsed.Round(time.Millisecond), perItem.Round(time.Microsecond), co.Redispatches(), co.PartialSalvages())

	if *verify {
		fatal(verifyAgainstLocal(*platName, *gpus, items, results))
		log.Printf("verify: merged results byte-identical to local engine.Batch over %d runs (%d des, %d analytic)", len(items), nDES, nAnalytic)
	}
}

// verifyAgainstLocal replays the grid on an in-process engine and compares
// the serialized results byte for byte — the same determinism check the
// shard package pins in tests, but across real hosts. Tuned sweeps replay
// with the partitions the fleet chose, so the check still validates
// cross-host execution determinism. Each item replays at the fidelity the
// fleet reported for it, so a mixed sweep verifies both tiers: the DES
// refine tier against a local simulator, the analytic tier against a local
// predictor evaluation over independently sampled (deterministic) curves.
func verifyAgainstLocal(platName string, gpus int, items []serve.SweepItem, results []shard.SweepResult) error {
	plat, err := hw.ByName(platName)
	if err != nil {
		return err
	}
	runs := make([]core.Options, len(items))
	for i, it := range items {
		q, err := it.Query()
		if err != nil {
			return err
		}
		runs[i] = core.Options{Plat: plat, NGPUs: gpus, Shape: q.Shape, Prim: q.Prim, Imbalance: q.Imbalance, Fidelity: core.Fidelity(results[i].Fidelity)}
		if len(results[i].Partition) > 0 && results[i].Source != "" {
			// Tuned sweep: replay the fleet's partition choice.
			runs[i].Partition = append([]int(nil), results[i].Partition...)
		}
	}
	local, err := engine.New(0, 0).Batch(context.Background(), runs)
	if err != nil {
		return fmt.Errorf("local replay failed (do -platform/-gpus match the fleet?): %w", err)
	}
	remote := make([]*core.Result, len(results))
	for i, res := range results {
		remote[i] = res.Result
	}
	remoteJSON, err := json.Marshal(remote)
	if err != nil {
		return err
	}
	localJSON, err := json.Marshal(local)
	if err != nil {
		return err
	}
	if string(remoteJSON) != string(localJSON) {
		return fmt.Errorf("verify: merged fleet results diverge from local engine.Batch (platform/gpus mismatch, or non-deterministic replica)")
	}
	return nil
}

// partitionString compacts a wave-group partition for the table: the
// untuned baseline is one wave per group, which would print as a wall of
// 1s for large shapes.
func partitionString(part []int) string {
	perWave := len(part) > 0
	for _, w := range part {
		if w != 1 {
			perWave = false
			break
		}
	}
	if perWave {
		return fmt.Sprintf("per-wave(%d)", len(part))
	}
	return fmt.Sprint(part)
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "sweep:", err)
		os.Exit(1)
	}
}
