// Command tune runs the offline profiling and the online predictive search
// for one GEMM size (Alg. 1), optionally validating the choice against the
// exhaustive-search oracle.
//
// Example:
//
//	tune -platform a800 -gpus 4 -prim RS -m 8192 -n 8192 -k 4096 -validate
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/gemm"
	"repro/internal/hw"
	"repro/internal/tuner"
)

func main() {
	var (
		platName = flag.String("platform", "4090", "hardware profile: 4090, a800, ascend")
		gpus     = flag.Int("gpus", 4, "parallel group size")
		primName = flag.String("prim", "AR", "primitive: AR, RS, A2A")
		m        = flag.Int("m", 4096, "GEMM M")
		n        = flag.Int("n", 8192, "GEMM N")
		k        = flag.Int("k", 8192, "GEMM K")
		imb      = flag.Float64("imbalance", 0, "A2A load imbalance factor")
		limit    = flag.Int("limit", 512, "candidate limit")
		validate = flag.Bool("validate", false, "compare against the exhaustive-search oracle")
	)
	flag.Parse()

	plat, err := hw.ByName(*platName)
	fatal(err)
	var prim hw.Primitive
	switch *primName {
	case "AR":
		prim = hw.AllReduce
	case "RS":
		prim = hw.ReduceScatter
	case "A2A":
		prim = hw.AllToAll
	default:
		fatal(fmt.Errorf("unknown primitive %q", *primName))
	}
	shape := gemm.Shape{M: *m, N: *n, K: *k}

	fmt.Printf("offline stage: sampling %s bandwidth curve on %d x %s...\n", prim, *gpus, plat.Name)
	curve := tuner.SampleBandwidthCurve(plat, *gpus, prim, nil)
	fmt.Printf("  %d samples\n", curve.Len())

	pred, err := tuner.NewPredictor(plat, shape, gemm.Config{}, curve, *imb)
	fatal(err)
	fmt.Printf("online stage: %v, T=%d waves of %d tiles, GEMM %v\n",
		shape, pred.Waves, pred.WaveSize, pred.GEMMTime)

	cands := tuner.Candidates(pred.Waves, tuner.DefaultS1, tuner.DefaultSP, *limit)
	fmt.Printf("  %d candidates after pruning (|G1|<=%d, |GP|<=%d)\n",
		len(cands), tuner.DefaultS1, tuner.DefaultSP)

	res, err := tuner.PredictiveSearch(context.Background(), pred, cands)
	fatal(err)
	fmt.Printf("  predicted optimum: %v at %v\n", res.Partition, res.Latency)

	if *validate {
		opts := core.Options{Plat: plat, NGPUs: *gpus, Shape: shape, Prim: prim, Imbalance: *imb}
		oracle, err := tuner.ExhaustiveSearch(context.Background(), opts, cands)
		fatal(err)
		run := opts
		run.Partition = res.Partition
		actual, err := core.Run(context.Background(), run)
		fatal(err)
		fmt.Printf("  exhaustive optimum: %v at %v\n", oracle.Partition, oracle.Latency)
		fmt.Printf("  searched partition measures %v -> %.2f%% of optimal\n",
			actual.Latency, 100*float64(oracle.Latency)/float64(actual.Latency))
	}
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "tune:", err)
		os.Exit(1)
	}
}
