// ascend_port demonstrates §6.7's portability claim: because FlashOverlap
// only needs (a) a counting table the compute kernel can bump and (b) an
// API-callable collective library, moving to HUAWEI Ascend 910B NPUs (TBE
// GEMMs + HCCL) — or to a Hopper-class GPU — is a matter of swapping the
// hardware profile. The same tuner and runner code produce speedups on all
// profiles.
//
//	go run ./examples/ascend_port
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/baselines"
	"repro/internal/core"
	"repro/internal/gemm"
	"repro/internal/hw"
	"repro/internal/tuner"
)

func main() {
	ctx := context.Background()
	shape := gemm.Shape{M: 5120, N: 6912, K: 4096} // an LLM shape from Fig. 16
	for _, plat := range []hw.Platform{
		hw.Ascend910B(),
		hw.A800NVLink(),
		hw.RTX4090PCIe(),
		hw.H100NVLink(), // reusability extension (§A.6.1)
	} {
		const tp = 2
		tn := tuner.NewTuner(plat, tp, hw.AllReduce)
		tn.CandidateLimit = 256
		part, err := tn.Tune(ctx, shape, 0)
		if err != nil {
			log.Fatal(err)
		}
		res, err := core.Run(ctx, core.Options{
			Plat: plat, NGPUs: tp, Shape: shape, Prim: hw.AllReduce, Partition: part,
		})
		if err != nil {
			log.Fatal(err)
		}
		base, err := baselines.NonOverlap(baselines.Options{
			Plat: plat, NGPUs: tp, Shape: shape, Prim: hw.AllReduce,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-16s TP=%d  %v  waves=%-3d partition=%v\n",
			plat.Name, tp, shape, res.Waves, res.Partition)
		fmt.Printf("%-16s overlap %v vs serial %v -> %.2fx\n\n",
			"", res.Latency, base, res.Speedup(base))
	}
	fmt.Println("same signaling/reordering/tuning code on every platform — only the profile changed")
}
