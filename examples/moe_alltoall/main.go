// moe_alltoall runs the GEMM+All-to-All pattern of a Mixture-of-Experts
// layer (§2.3.3): every GPU computes its experts' output, tokens are routed
// to their origin GPUs by the subtoken-pool reordering, and each wave
// group's exchange is released by the counting-table signal. The example
// verifies the routed outputs against a reference exchange and shows how
// routing imbalance stretches the communication.
//
//	go run ./examples/moe_alltoall
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/gemm"
	"repro/internal/hw"
	"repro/internal/tensor"
)

func main() {
	ctx := context.Background()
	plat := hw.RTX4090PCIe()
	plat.GPU.SMs = 8
	plat.CommSMs = 2
	const nGPUs = 4

	shape := gemm.Shape{M: 32, N: 64, K: 12}
	// Deterministic skewed routing: GPU 0 receives a double share, the
	// MoE hot-expert pattern.
	routing := make([][]int, nGPUs)
	for i := range routing {
		routing[i] = make([]int, shape.M)
		for r := range routing[i] {
			d := (r*5 + i) % (nGPUs + 1)
			if d >= nGPUs {
				d = 0
			}
			routing[i][r] = d
		}
	}

	res, err := core.Run(ctx, core.Options{
		Plat:       plat,
		NGPUs:      nGPUs,
		Shape:      shape,
		Cfg:        gemm.Config{TileM: 8, TileN: 8, Swizzle: 2},
		Prim:       hw.AllToAll,
		Functional: true,
		Routing:    routing,
		Seed:       7,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Verify every GPU's routed output against the reference exchange of
	// the full (unreordered) expert outputs.
	fulls := make([]*tensor.Matrix, nGPUs)
	for d := 0; d < nGPUs; d++ {
		fulls[d] = tensor.New(shape.M, shape.N)
		gemm.ComputeReference(fulls[d], res.InputA(d), res.InputB(d), nil)
	}
	ex := res.A2AExchangeLayout()
	for d := 0; d < nGPUs; d++ {
		if !res.A2AOutput(d).Equal(ex.ReferenceOutput(d, fulls)) {
			log.Fatalf("GPU %d routed output differs from reference", d)
		}
		fmt.Printf("GPU %d receives %d tokens — all close\n", d, ex.TokensTo(d))
	}

	fmt.Println("\nwave-group exchange timeline:")
	for _, g := range res.Groups {
		fmt.Printf("  G%d: %d tiles, max per-rank payload %.1f KB, done at %v\n",
			g.Group+1, g.Tiles, float64(g.Bytes)/1e3, g.CommEnd)
	}

	// Timing-only runs show the imbalance cost at realistic scale.
	big := core.Options{Plat: hw.RTX4090PCIe(), NGPUs: nGPUs,
		Shape: gemm.Shape{M: 4096, N: 8192, K: 8192}, Prim: hw.AllToAll}
	bal, err := core.Run(ctx, big)
	if err != nil {
		log.Fatal(err)
	}
	big.Imbalance = 1.5
	hot, err := core.Run(ctx, big)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nat scale (M4096-N8192-K8192): balanced %v, 1.5x-skewed %v (+%.0f%%)\n",
		bal.Latency, hot.Latency, 100*(float64(hot.Latency)/float64(bal.Latency)-1))
}
