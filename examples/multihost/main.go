// Multihost: the distributed sweep deployment — a fleet of serve replicas
// over real HTTP, a sweep coordinator that partitions a grid by shape
// ownership and dispatches chunked sub-grids to the owning replicas, and
// the churn story: one replica is killed mid-sweep and its remaining
// chunks re-dispatch through the failover ring, with the merged results
// still byte-identical to a single-process engine.Batch over the same
// grid. The example finishes by mounting the shape-hash router in front of
// the fleet and posting the grid to its /sweep proxy — the topology
// cmd/serve x N + cmd/route + cmd/sweep deploys across real hosts.
//
//	go run ./examples/multihost
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/gemm"
	"repro/internal/hw"
	"repro/internal/serve"
	"repro/internal/shard"
	"repro/internal/stats"
	"repro/internal/tuner"
)

const (
	nShards = 3
	nGPUs   = 2
)

func main() {
	ctx := context.Background()
	plat := hw.RTX4090PCIe()

	// One offline bandwidth sampling for the whole fleet, like a
	// production rollout: every replica shares the immutable curve.
	curves := map[hw.Primitive]*stats.Curve{
		hw.AllReduce: tuner.SampleBandwidthCurve(plat, nGPUs, hw.AllReduce, nil),
	}

	grid := []gemm.Shape{
		{M: 2048, N: 8192, K: 4096},
		{M: 2048, N: 8192, K: 8192},
		{M: 4096, N: 8192, K: 4096},
		{M: 4096, N: 8192, K: 8192},
		{M: 8192, N: 8192, K: 4096},
		{M: 8192, N: 8192, K: 8192},
	}

	// Start the fleet: each replica owns its slice of the shape plane. The
	// addresses are remembered so a killed replica can be restarted on the
	// same URL — the re-admission act below.
	part := shard.NewPartitioner(nShards)
	services := make([]*serve.Service, nShards)
	addrs := make([]string, nShards)
	servers := make([]*http.Server, nShards)
	clients := make([]shard.Client, nShards)
	listen := func(k int) {
		addr := addrs[k]
		if addr == "" {
			addr = "127.0.0.1:0"
		}
		ln, err := net.Listen("tcp", addr)
		if err != nil {
			log.Fatal(err)
		}
		addrs[k] = ln.Addr().String()
		srv := &http.Server{Handler: serve.Handler(services[k])}
		go func() {
			if err := srv.Serve(ln); !errors.Is(err, http.ErrServerClosed) && !errors.Is(err, net.ErrClosed) {
				log.Fatal(err)
			}
		}()
		servers[k] = srv
	}
	for k := 0; k < nShards; k++ {
		assign := shard.Assignment{Index: k, Count: nShards}
		svc, err := serve.New(serve.Config{
			Plat:           plat,
			NGPUs:          nGPUs,
			CandidateLimit: 128,
			Owns:           assign.Owns,
			Shard:          assign.String(),
			Curves:         curves,
		})
		if err != nil {
			log.Fatal(err)
		}
		services[k] = svc
		listen(k)
		clients[k] = &shard.HTTPClient{Base: "http://" + addrs[k]}
		fmt.Printf("replica %s on %s\n", assign, addrs[k])
	}

	router, err := shard.NewRouter(clients)
	if err != nil {
		log.Fatal(err)
	}
	// A short cooldown keeps the demo's re-admission act quick: probe
	// re-admission is gated on the same window as in-band trials (a
	// zombie replica cannot oscillate back in faster), so the default
	// 15s would make the recovery act below wait that long.
	router.Health().SetCooldown(300 * time.Millisecond)

	items := make([]serve.SweepItem, len(grid))
	runs := make([]core.Options, len(grid))
	for i, s := range grid {
		items[i] = serve.SweepItem{M: s.M, N: s.N, K: s.K, Prim: "AR"}
		runs[i] = core.Options{Plat: plat, NGPUs: nGPUs, Shape: s, Prim: hw.AllReduce}
	}

	// The single-process reference the distributed merge must reproduce.
	reference, err := engine.New(0, 0).Batch(ctx, runs)
	if err != nil {
		log.Fatal(err)
	}
	refJSON, err := json.Marshal(reference)
	if err != nil {
		log.Fatal(err)
	}

	// Distributed sweep with churn: kill one replica after it answers its
	// first chunk, mid-sweep. Its remaining chunks re-dispatch through
	// the failover ring instead of failing the sweep.
	counts := make([]int, nShards)
	for _, it := range items {
		counts[part.Owner(it.Shape())]++
	}
	victim := 0
	for k, c := range counts {
		if c > counts[victim] {
			victim = k
		}
	}
	co := shard.NewCoordinator(router)
	co.Spec.Chunk = 1 // chunk per item, so the kill lands mid-sweep
	var kill sync.Once
	co.OnChunk = func(cr shard.ChunkResult) {
		if cr.Shard == victim {
			kill.Do(func() {
				_ = servers[victim].Close()
				fmt.Printf("\n*** replica %d killed mid-sweep (after its first chunk) ***\n\n", victim)
			})
		}
	}

	fmt.Printf("\ndistributed sweep over %d items (chunk size 1), killing replica %d mid-sweep:\n", len(items), victim)
	results, err := co.Sweep(ctx, items)
	if err != nil {
		log.Fatal(err)
	}
	for _, res := range results {
		marker := ""
		if res.Replica != res.Owner {
			marker = "  <- re-dispatched via failover ring"
		}
		fmt.Printf("  %-18s waves %2d  measured %9d ns  shard %d -> replica %d%s\n",
			res.Shape, res.Waves, res.Result.Latency, res.Owner, res.Replica, marker)
	}
	fmt.Printf("re-dispatched chunks: %d (budget: %d attempts per chunk)\n", co.Redispatches(), nShards)

	merged := make([]*core.Result, len(results))
	for i, res := range results {
		merged[i] = res.Result
	}
	gotJSON, err := json.Marshal(merged)
	if err != nil {
		log.Fatal(err)
	}
	if !bytes.Equal(gotJSON, refJSON) {
		log.Fatal("merged sweep diverged from single-process engine.Batch")
	}
	fmt.Printf("merge check: %d results byte-identical to single-process engine.Batch despite churn\n", len(results))

	// The health plane capped the damage: the victim burned one probe
	// timeout, was marked dead, and every later chunk skipped it instead
	// of stalling. Restart it on the same address and probe /healthz — the
	// router re-admits it and it serves its shard slice again. (During a
	// sweep, Coordinator.Sweep runs this probe on a cooldown
	// automatically, so a replica restarted mid-sweep reclaims its shard
	// before the sweep ends.)
	fmt.Printf("\nvictim %d health after the sweep: %v (dispatch attempts skipped while dead: %d)\n",
		victim, router.Health().State(victim), router.Health().Skips())
	listen(victim)
	// Probe eligibility waits out the victim's cooldown (so a flapping
	// replica cannot be re-admitted more than once per window); poll
	// until the window opens and the probe brings it back.
	deadline := time.Now().Add(10 * time.Second)
	for router.Probe(ctx) != 1 {
		if time.Now().After(deadline) {
			log.Fatal("replica was not re-admitted within 10s of restarting")
		}
		time.Sleep(50 * time.Millisecond)
	}
	fmt.Printf("replica %d restarted on %s and re-admitted via /healthz probe (health: %v, %d readmissions)\n",
		victim, addrs[victim], router.Health().State(victim), router.Health().Readmissions())

	// The router front-end proxies whole sweeps too: POST the grid to
	// /sweep and the router coordinates it across the recovered fleet.
	front, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	frontSrv := &http.Server{Handler: router.Handler()}
	go func() {
		if err := frontSrv.Serve(front); !errors.Is(err, http.ErrServerClosed) {
			log.Fatal(err)
		}
	}()
	body, err := json.Marshal(serve.SweepRequest{SweepSpec: serve.SweepSpec{Tune: true}, Items: items[:2]})
	if err != nil {
		log.Fatal(err)
	}
	resp, err := http.Post("http://"+front.Addr().String()+"/sweep", "application/json", bytes.NewReader(body))
	if err != nil {
		log.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		var env serve.ErrorEnvelope
		_ = json.NewDecoder(resp.Body).Decode(&env)
		log.Fatalf("router /sweep replied %s: %s", resp.Status, env.Error.Message)
	}
	var rs shard.RoutedSweepResponse
	if err := json.NewDecoder(resp.Body).Decode(&rs); err != nil {
		log.Fatal(err)
	}
	resp.Body.Close()
	if len(rs.Results) != 2 {
		log.Fatalf("router /sweep answered %d of 2 items", len(rs.Results))
	}
	fmt.Printf("\ntuned sweep through the router's /sweep proxy (replica %d re-admitted):\n", victim)
	for _, res := range rs.Results {
		fmt.Printf("  %-18s partition %v  predicted %d ns  source %-5s  shard %d -> replica %d\n",
			res.Shape, res.Partition, res.PredictedNs, res.Source, res.Owner, res.Replica)
		if res.Owner == victim && res.Replica != victim {
			log.Fatalf("re-admitted replica %d did not reclaim its owned item", victim)
		}
	}
	fmt.Printf("router re-dispatches during the proxied sweep: %d\n", rs.Redispatches)

	// Final act: warm-state persistence — the cmd/serve -snapshot story.
	// The re-admitted victim (which tuned its shard slice during the sweeps
	// above) saves its warm state, dies again, and a brand-new Service boots
	// from the snapshot on the same address: it re-admits warm, answers
	// byte-identically to its pre-restart self, and never re-tunes.
	queryURL := fmt.Sprintf("http://%s/query?m=%d&n=%d&k=%d&prim=AR", addrs[victim], grid[0].M, grid[0].N, grid[0].K)
	// Prime once so the captured reply is the steady-state cache hit (the
	// first answer for an untuned shape reports source "tuned").
	if _, err := getJSON(queryURL); err != nil {
		log.Fatal(err)
	}
	before, err := getJSON(queryURL)
	if err != nil {
		log.Fatal(err)
	}
	snapPath := filepath.Join(os.TempDir(), fmt.Sprintf("multihost-warm-%d.json", os.Getpid()))
	defer os.Remove(snapPath)
	if err := services[victim].SaveSnapshotFile(snapPath); err != nil {
		log.Fatal(err)
	}
	_ = servers[victim].Close()
	restarted, err := serve.New(serve.Config{
		Plat:           plat,
		NGPUs:          nGPUs,
		CandidateLimit: 128,
		Owns:           shard.Assignment{Index: victim, Count: nShards}.Owns,
		Shard:          shard.Assignment{Index: victim, Count: nShards}.String(),
		Curves:         curves,
	})
	if err != nil {
		log.Fatal(err)
	}
	nRestored, err := restarted.LoadSnapshotFile(snapPath)
	if err != nil {
		log.Fatal(err)
	}
	services[victim] = restarted
	listen(victim)
	after, err := getJSON(queryURL)
	if err != nil {
		log.Fatal(err)
	}
	if !bytes.Equal(before, after) {
		log.Fatalf("snapshot-restored replica diverged from its pre-restart answer:\nbefore: %s\nafter:  %s", before, after)
	}
	st := restarted.Stats()
	if st.Tunes != 0 {
		log.Fatalf("snapshot-restored replica re-tuned %d times", st.Tunes)
	}
	fmt.Printf("\nsnapshot restart: replica %d rebooted from %d persisted entries, answered byte-identically with %d tunes (%d encoded fast-path hits)\n",
		victim, nRestored, st.Tunes, st.EncodedHits)

	_ = frontSrv.Close()
	for _, srv := range servers {
		_ = srv.Close()
	}
}

// getJSON fetches url and returns the raw body bytes, failing on any
// non-200 status — the byte-identity checks compare exact wire output.
func getJSON(url string) ([]byte, error) {
	resp, err := http.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET %s: %s: %s", url, resp.Status, body)
	}
	return body, nil
}
