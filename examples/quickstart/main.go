// Quickstart: overlap a GEMM with the AllReduce that follows it, verify the
// result against a sequential reference, and print the group timeline.
//
// This is the minimal FlashOverlap loop: pick a platform, a shape, and a
// primitive; run; compare with the non-overlap baseline.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/baselines"
	"repro/internal/core"
	"repro/internal/gemm"
	"repro/internal/hw"
	"repro/internal/tensor"
)

func main() {
	ctx := context.Background()
	// A shrunken RTX 4090 profile lets a small, functionally verified
	// matrix still execute in several waves.
	plat := hw.RTX4090PCIe()
	plat.GPU.SMs = 8
	plat.CommSMs = 2

	opts := core.Options{
		Plat:       plat,
		NGPUs:      4,
		Shape:      gemm.Shape{M: 32, N: 48, K: 16},
		Cfg:        gemm.Config{TileM: 8, TileN: 8, Swizzle: 2},
		Prim:       hw.AllReduce,
		Functional: true, // carry real float32 data end to end
		Seed:       2024,
	}
	res, err := core.Run(ctx, opts)
	if err != nil {
		log.Fatal(err)
	}

	// Verify: the overlapped AllReduce output must equal sum_i(A_i*B_i).
	want := tensor.New(opts.Shape.M, opts.Shape.N)
	for d := 0; d < opts.NGPUs; d++ {
		c := tensor.New(opts.Shape.M, opts.Shape.N)
		gemm.ComputeReference(c, res.InputA(d), res.InputB(d), nil)
		want.AddInPlace(c)
	}
	for d := 0; d < opts.NGPUs; d++ {
		if !res.AROutput(d).Equal(want) {
			log.Fatalf("device %d output differs from reference", d)
		}
	}
	fmt.Println("all close: overlapped result matches the sequential reference on every GPU")

	fmt.Printf("\n%d waves, partition %v\n", res.Waves, res.Partition)
	for _, g := range res.Groups {
		fmt.Printf("  G%d: %d tiles, signaled at %v, communication done at %v\n",
			g.Group+1, g.Tiles, g.SignalAt, g.CommEnd)
	}

	// Performance only matters at realistic scale: rerun timing-only on
	// the full RTX 4090 profile with a grouped partition.
	big := core.Options{
		Plat:  hw.RTX4090PCIe(),
		NGPUs: 2,
		Shape: gemm.Shape{M: 2048, N: 8192, K: 8192},
		Prim:  hw.AllReduce,
	}
	plan, err := gemm.NewPlan(big.Shape, gemm.DefaultConfig(big.Shape))
	if err != nil {
		log.Fatal(err)
	}
	waves := plan.Waves(big.Plat.GPU.SMs - big.Plat.CommSMs)
	big.Partition = gemm.EqualSized(waves, 3)
	bigRes, err := core.Run(ctx, big)
	if err != nil {
		log.Fatal(err)
	}
	base, err := baselines.NonOverlap(baselines.Options{
		Plat: big.Plat, NGPUs: big.NGPUs, Shape: big.Shape, Prim: big.Prim,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nat realistic scale (%v, 2x RTX 4090):\n", big.Shape)
	fmt.Printf("  overlap %v vs non-overlap %v -> %.2fx speedup\n",
		bigRes.Latency, base, bigRes.Speedup(base))
}
