// Serving: drive the long-lived tuning service with a mixed dynamic-shape
// workload over HTTP — the paper's §4.2.2 dynamic-shape story at serving
// scale. The example starts the service in-process, pre-warms a
// representative-shape list, then fires concurrent client requests mixing
// warm shapes, nearest-neighbor-matchable neighbors, and cold shapes whose
// concurrent duplicates must collapse onto a single tune.
//
//	go run ./examples/serving
package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net"
	"net/http"
	"sync"

	"repro/internal/gemm"
	"repro/internal/hw"
	"repro/internal/serve"
)

func main() {
	ctx := context.Background()
	svc, err := serve.New(serve.Config{
		Plat:           hw.RTX4090PCIe(),
		NGPUs:          2,
		CandidateLimit: 128,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Pre-warm the representative sizes a deployment knows in advance.
	warm := []gemm.Shape{
		{M: 2048, N: 8192, K: 4096},
		{M: 4096, N: 8192, K: 4096},
		{M: 4096, N: 8192, K: 8192},
	}
	if err := svc.Warm(ctx, []hw.Primitive{hw.AllReduce}, warm, 0); err != nil {
		log.Fatal(err)
	}
	warmStats := svc.Stats()
	fmt.Printf("warmed %d representative shapes (%d tunes, %d plans compiled)\n",
		len(warm), warmStats.Tunes, warmStats.Engine.Misses)

	// Serve on an ephemeral local port; a real deployment uses cmd/serve.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	srv := &http.Server{Handler: serve.Handler(svc)}
	go func() {
		if err := srv.Serve(ln); !errors.Is(err, http.ErrServerClosed) {
			log.Fatal(err)
		}
	}()
	base := "http://" + ln.Addr().String()
	fmt.Printf("service listening on %s\n\n", base)

	// The dynamic workload: warm hits, same-wave-count neighbors (cache
	// transfers without tuning), and two cold shapes each queried by many
	// clients at once (singleflight collapses the duplicate tunes).
	queries := []struct {
		shape gemm.Shape
		kind  string
	}{
		{gemm.Shape{M: 2048, N: 8192, K: 4096}, "warm"},
		{gemm.Shape{M: 4096, N: 8192, K: 8192}, "warm"},
		{gemm.Shape{M: 2048, N: 8192, K: 3584}, "neighbor"},
		{gemm.Shape{M: 4096, N: 8192, K: 7168}, "neighbor"},
		{gemm.Shape{M: 8192, N: 8192, K: 4096}, "cold"},
		{gemm.Shape{M: 2048, N: 8192, K: 8192}, "cold"},
	}
	const clientsPerQuery = 4
	var wg sync.WaitGroup
	var mu sync.Mutex
	sources := map[string]map[string]int{} // kind -> source -> count
	for _, q := range queries {
		for c := 0; c < clientsPerQuery; c++ {
			wg.Add(1)
			go func(shape gemm.Shape, kind string) {
				defer wg.Done()
				url := fmt.Sprintf("%s/query?m=%d&n=%d&k=%d&prim=AR", base, shape.M, shape.N, shape.K)
				resp, err := http.Get(url)
				if err != nil {
					log.Fatal(err)
				}
				defer resp.Body.Close()
				var qr serve.QueryResponse
				if err := json.NewDecoder(resp.Body).Decode(&qr); err != nil {
					log.Fatal(err)
				}
				if resp.StatusCode != http.StatusOK {
					log.Fatalf("query %v: status %d", shape, resp.StatusCode)
				}
				mu.Lock()
				if sources[kind] == nil {
					sources[kind] = map[string]int{}
				}
				sources[kind][qr.Source]++
				mu.Unlock()
			}(q.shape, q.kind)
		}
	}
	wg.Wait()

	fmt.Printf("%d clients x %d shapes:\n", clientsPerQuery, len(queries))
	for _, kind := range []string{"warm", "neighbor", "cold"} {
		fmt.Printf("  %-8s answered from %v\n", kind, sources[kind])
	}

	resp, err := http.Get(base + "/stats")
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	var st serve.Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		log.Fatal(err)
	}
	queryTunes := st.Tunes - warmStats.Tunes
	fmt.Printf("\nservice stats: %d hits, %d misses, %d query-time tunes, %d duplicate tunes collapsed\n",
		st.Hits, st.Misses, queryTunes, st.Collapsed)
	fmt.Printf("engine plan cache: %d/%d plans, %d hits\n",
		st.Engine.Size, st.Engine.Capacity, st.Engine.Hits)
	if st.Misses > queryTunes {
		fmt.Printf("%d missed queries needed only %d searches: caching plus singleflight held\n",
			st.Misses, queryTunes)
	}
	_ = srv.Close()
}
