// Sharded: the multi-replica deployment of the tuning service — a shape-hash
// router in front of N serve replicas, each owning a disjoint slice of the
// (log M·N, log K) plane. The example builds a three-replica fleet over real
// HTTP, pre-warms each replica with only its owned shapes, drives a sharded
// tune sweep through the router, kills a replica to show ring failover, and
// finally runs the sharded engine sweep, verifying it merges to exactly the
// unsharded engine.Batch results.
//
//	go run ./examples/sharded
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"net"
	"net/http"
	"reflect"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/gemm"
	"repro/internal/hw"
	"repro/internal/serve"
	"repro/internal/shard"
	"repro/internal/stats"
	"repro/internal/tuner"
)

const nShards = 3

func main() {
	ctx := context.Background()
	plat := hw.RTX4090PCIe()
	const nGPUs = 2

	// The offline stage runs once for the whole fleet: every replica gets
	// the same immutable bandwidth curve instead of re-sampling it.
	curves := map[hw.Primitive]*stats.Curve{
		hw.AllReduce: tuner.SampleBandwidthCurve(plat, nGPUs, hw.AllReduce, nil),
	}

	representative := []gemm.Shape{
		{M: 2048, N: 8192, K: 4096},
		{M: 2048, N: 8192, K: 8192},
		{M: 4096, N: 8192, K: 4096},
		{M: 4096, N: 8192, K: 8192},
		{M: 8192, N: 8192, K: 4096},
		{M: 8192, N: 8192, K: 8192},
	}

	// Start the replicas. Every replica receives the SAME representative
	// list; ownership filtering inside Warm keeps the caches disjoint.
	part := shard.NewPartitioner(nShards)
	var servers []*http.Server
	var clients []shard.Client
	for k := 0; k < nShards; k++ {
		assign := shard.Assignment{Index: k, Count: nShards}
		svc, err := serve.New(serve.Config{
			Plat:           plat,
			NGPUs:          nGPUs,
			CandidateLimit: 128,
			Owns:           assign.Owns,
			Shard:          assign.String(),
			Curves:         curves,
		})
		if err != nil {
			log.Fatal(err)
		}
		if err := svc.Warm(ctx, []hw.Primitive{hw.AllReduce}, representative, 0); err != nil {
			log.Fatal(err)
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		srv := &http.Server{Handler: serve.Handler(svc)}
		go func() {
			if err := srv.Serve(ln); !errors.Is(err, http.ErrServerClosed) {
				log.Fatal(err)
			}
		}()
		servers = append(servers, srv)
		clients = append(clients, &shard.HTTPClient{Base: "http://" + ln.Addr().String()})
		fmt.Printf("replica %s on %s: warmed %d of %d representative shapes\n",
			assign, ln.Addr(), svc.Stats().ShapesCached, len(representative))
	}

	router, err := shard.NewRouter(clients)
	if err != nil {
		log.Fatal(err)
	}

	// A sharded tune sweep: every query lands on its owner, shards tune
	// concurrently, answers come back in input order.
	queries := make([]serve.Query, len(representative))
	for i, s := range representative {
		queries[i] = serve.Query{Shape: s, Prim: hw.AllReduce}
	}
	answers, err := router.SweepQueries(ctx, queries)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsharded tune sweep over %d shapes:\n", len(queries))
	for i, ans := range answers {
		fmt.Printf("  %-18v -> shard %d  partition %-12v source %s\n",
			queries[i].Shape, ans.Replica, ans.Partition, ans.Source)
	}
	st := router.Stats(ctx)
	fmt.Printf("merged fleet stats: %d hits, %d misses, %d shapes cached across %d replicas\n",
		st.Merged.Hits, st.Merged.Misses, st.Merged.ShapesCached, st.Replicas)

	// Failover: kill a replica and query a shape it owns. The router rings
	// to the next shard, which tunes the miss instead of refusing.
	victimShape := representative[0]
	victim := part.Owner(victimShape)
	_ = servers[victim].Close()
	ans, err := router.Query(ctx, serve.Query{Shape: victimShape, Prim: hw.AllReduce})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nreplica %d down: %v rerouted to replica %d (source %s, %d failovers recorded)\n",
		victim, victimShape, ans.Replica, ans.Source, router.Stats(ctx).Failovers)

	// The sharded engine sweep: split the quick Table 3 grid across
	// shard-local engines (disjoint plan caches, like separate processes)
	// and verify the merged results are identical to one big engine.Batch.
	runs := make([]core.Options, len(representative))
	for i, s := range representative {
		runs[i] = core.Options{Plat: plat, NGPUs: nGPUs, Shape: s, Prim: hw.AllReduce}
	}
	unsharded, err := engine.New(0, 0).Batch(ctx, runs)
	if err != nil {
		log.Fatal(err)
	}
	sharded, err := shard.SweepBatch(ctx, part, shard.Engines(nShards, 0, 0), runs)
	if err != nil {
		log.Fatal(err)
	}
	if !reflect.DeepEqual(sharded, unsharded) {
		log.Fatal("sharded sweep diverged from unsharded engine.Batch")
	}
	fmt.Printf("\nsharded engine sweep: %d runs across %d shards merged byte-identical to engine.Batch\n",
		len(runs), nShards)

	for i, srv := range servers {
		if i != victim {
			_ = srv.Close()
		}
	}
}
