// tp_inference overlaps the two GEMM+AllReduce operators of one Llama3-70B
// tensor-parallel decoder layer (attention output projection and MLP down
// projection) on a simulated 8x A800 node, using the Alg. 1 predictive
// tuner, and reports the per-operator and per-layer gains — a slice of the
// paper's Fig. 12 LLM-inference experiment.
//
//	go run ./examples/tp_inference
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/baselines"
	"repro/internal/core"
	"repro/internal/gemm"
	"repro/internal/hw"
	"repro/internal/tuner"
	"repro/internal/workload"
)

func main() {
	ctx := context.Background()
	plat := hw.A800NVLink()
	model := workload.Llama3_70BInference(8, 16384)
	fmt.Printf("%s (%s) on %s\n\n", model.Name, model.Setting, plat.Name)

	tn := tuner.NewTuner(plat, model.NGPUs, hw.AllReduce)
	tn.CandidateLimit = 256

	var layerBase, layerOverlap float64
	for _, op := range model.Ops {
		if op.Kind != workload.GEMMComm {
			continue
		}
		base, err := baselines.NonOverlap(baselines.Options{
			Plat: plat, NGPUs: model.NGPUs, Shape: op.Shape, Prim: op.Prim,
		})
		if err != nil {
			log.Fatal(err)
		}
		part, err := tn.Tune(ctx, op.Shape, 0)
		if err != nil {
			log.Fatal(err)
		}
		res, err := core.Run(ctx, core.Options{
			Plat: plat, NGPUs: model.NGPUs, Shape: op.Shape, Prim: op.Prim, Partition: part,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-12s %v\n", op.Name, op.Shape)
		fmt.Printf("  tuned partition %v over %d waves\n", part, res.Waves)
		fmt.Printf("  non-overlap %v -> overlap %v (%.2fx)\n\n", base, res.Latency, res.Speedup(base))
		layerBase += float64(base)
		layerOverlap += float64(res.Latency)
	}
	fmt.Printf("GEMM+AR pairs per layer: %.2fx combined speedup\n", layerBase/layerOverlap)

	e2e, err := workload.EndToEnd(ctx, model, plat, 128)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("full layer (incl. attention, QKV, MLP up, norms): %.3fx end-to-end\n", e2e.Speedup)

	// The nearest-neighbor cache handles unseen decode shapes at runtime.
	if part, ok := tn.Lookup(gemm.Shape{M: 16384, N: 8192, K: 1024}); ok {
		fmt.Printf("nearest-neighbor partition for an unseen shape: %v\n", part)
	}
}
