// training_reducescatter walks the paper's GEMM+ReduceScatter training path
// (Fig. 7e): subtile-granularity reordering keeps every row complete on one
// GPU, the RMSNorm-fused post-reorder runs on each GPU's local block, the
// AllGather rejoins the rows, and the final block-cyclic row exchange
// restores natural order — bit-identical to an AllReduce of the partial
// results.
//
//	go run ./examples/training_reducescatter
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/comm"
	"repro/internal/core"
	"repro/internal/gemm"
	"repro/internal/hw"
	"repro/internal/reorder"
	"repro/internal/tensor"
)

func main() {
	ctx := context.Background()
	plat := hw.A800NVLink()
	plat.GPU.SMs = 8
	plat.CommSMs = 2
	const nGPUs = 4

	shape := gemm.Shape{M: 32, N: 48, K: 10}
	res, err := core.Run(ctx, core.Options{
		Plat:       plat,
		NGPUs:      nGPUs,
		Shape:      shape,
		Cfg:        gemm.Config{TileM: 8, TileN: 8, Swizzle: 2},
		Prim:       hw.ReduceScatter,
		Functional: true,
		Seed:       99,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Reference: AllReduce of the per-GPU partial products.
	sum := tensor.New(shape.M, shape.N)
	for d := 0; d < nGPUs; d++ {
		c := tensor.New(shape.M, shape.N)
		gemm.ComputeReference(c, res.InputA(d), res.InputB(d), nil)
		sum.AddInPlace(c)
	}

	// 1. Each GPU's local block holds complete (reordered) rows.
	sl := res.RSLayout()
	locals := make([]*tensor.Matrix, nGPUs)
	for d := 0; d < nGPUs; d++ {
		locals[d] = res.RSLocal(d)
		for lr := 0; lr < locals[d].Rows; lr++ {
			gr := sl.GlobalRowOf(d, lr)
			for c := 0; c < shape.N; c++ {
				if locals[d].At(lr, c) != sum.At(gr, c) {
					log.Fatalf("GPU %d local row %d incomplete", d, lr)
				}
			}
		}
	}
	fmt.Println("step 1: every GPU holds complete rows of the reduced matrix (reordered)")

	// 2. AllGather + row exchange restores the natural order.
	gathered := make([]*tensor.Matrix, nGPUs)
	for d := range gathered {
		gathered[d] = tensor.New(shape.M, shape.N)
	}
	comm.AllGatherData(locals, gathered)
	natural := tensor.New(shape.M, shape.N)
	reorder.RowExchange(natural, gathered[0], 8, nGPUs)
	if !natural.Equal(sum) {
		log.Fatal("RS + AllGather + row exchange != AllReduce")
	}
	fmt.Println("step 2: AllGather + block-cyclic row exchange == AllReduce, bit-exact")

	fmt.Printf("\noverlapped RS latency %v across %d wave groups\n", res.Latency, len(res.Groups))
}
