// tuner_search walks the Algorithm 1 pipeline end to end: offline bandwidth
// sampling, design-space generation with |G1|/|GP| pruning, latency
// prediction per candidate, and validation of the predictive choice against
// the exhaustive-search oracle (the paper's claim C2: >99% of optimal).
//
//	go run ./examples/tuner_search
package main

import (
	"context"
	"fmt"
	"log"
	"sort"

	"repro/internal/core"
	"repro/internal/gemm"
	"repro/internal/hw"
	"repro/internal/sim"
	"repro/internal/tuner"
)

func main() {
	ctx := context.Background()
	plat := hw.RTX4090PCIe()
	const nGPUs = 4
	shape := gemm.Shape{M: 4096, N: 8192, K: 8192}

	fmt.Println("offline stage: sampling the AllReduce bandwidth curve...")
	curve := tuner.SampleBandwidthCurve(plat, nGPUs, hw.AllReduce, nil)
	fmt.Printf("  %d (size, latency) samples\n\n", curve.Len())

	pred, err := tuner.NewPredictor(plat, shape, gemm.Config{}, curve, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("online stage: %v -> %d waves of %d tiles, profiled GEMM %v\n",
		shape, pred.Waves, pred.WaveSize, pred.GEMMTime)

	cands := tuner.Candidates(pred.Waves, tuner.DefaultS1, tuner.DefaultSP, 256)
	fmt.Printf("  %d pruned candidates (full space would be 2^%d)\n\n", len(cands), pred.Waves-1)

	// Predict every candidate, show the best and worst five.
	type scored struct {
		part gemm.Partition
		t    sim.Time
	}
	var all []scored
	for _, c := range cands {
		t, err := pred.Predict(c)
		if err != nil {
			log.Fatal(err)
		}
		all = append(all, scored{c, t})
	}
	sort.Slice(all, func(i, j int) bool { return all[i].t < all[j].t })
	fmt.Println("best predicted partitions:")
	for _, s := range all[:min(5, len(all))] {
		fmt.Printf("  %-24v %v\n", s.part, s.t)
	}
	fmt.Println("worst predicted partitions:")
	for _, s := range all[max(0, len(all)-3):] {
		fmt.Printf("  %-24v %v\n", s.part, s.t)
	}

	// Validate against the oracle.
	opts := core.Options{Plat: plat, NGPUs: nGPUs, Shape: shape, Prim: hw.AllReduce}
	oracle, err := tuner.ExhaustiveSearch(ctx, opts, cands)
	if err != nil {
		log.Fatal(err)
	}
	run := opts
	run.Partition = all[0].part
	actual, err := core.Run(ctx, run)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\npredictive choice %v measures %v\n", all[0].part, actual.Latency)
	fmt.Printf("exhaustive optimum %v measures %v\n", oracle.Partition, oracle.Latency)
	fmt.Printf("predictive search achieves %.2f%% of the oracle\n",
		100*float64(oracle.Latency)/float64(actual.Latency))
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
