package repro

import (
	"context"
	"strings"
	"testing"

	"repro/internal/baselines"
	"repro/internal/core"
	"repro/internal/expt"
	"repro/internal/gemm"
	"repro/internal/hw"
	"repro/internal/tensor"
	"repro/internal/trace"
	"repro/internal/tuner"
)

// TestFullPipeline drives the complete user journey across all three
// primitives: offline profile, predictive tuning, an overlapped functional
// run, exact output verification, and timeline inspection — the same steps
// cmd/flashoverlap and the examples take, compressed into one test.
func TestFullPipeline(t *testing.T) {
	plat := hw.RTX4090PCIe()
	plat.GPU.SMs = 12
	plat.CommSMs = 3
	// Slow the compute throughput so the tiny functional GEMM still takes
	// long enough for communication to overlap with it (at full speed a
	// 32x48x9 GEMM finishes inside the kernel-launch latency).
	plat.GPU.FP16TFLOPS = 0.001
	const n = 4
	shape := gemm.Shape{M: 32, N: 48, K: 9}
	cfg := gemm.Config{TileM: 8, TileN: 8, Swizzle: 2} // 4x6 = 24 tiles

	for _, prim := range []hw.Primitive{hw.AllReduce, hw.ReduceScatter, hw.AllToAll} {
		prim := prim
		t.Run(prim.String(), func(t *testing.T) {
			// Offline + online tuning against the shrunken platform.
			tn := tuner.NewTuner(plat, n, prim)
			tn.CandidateLimit = 64
			part, err := tn.Tune(context.Background(), shape, 0)
			if err != nil {
				t.Fatal(err)
			}

			opts := core.Options{
				Plat: plat, NGPUs: n, Shape: shape, Cfg: cfg, Prim: prim,
				Partition:  nil, // wave count differs under cfg; re-derive below
				Functional: true, Trace: true, Seed: 42,
			}
			// The tuned partition was derived for the default config;
			// validate it transfers only when wave counts agree,
			// otherwise fall back to per-wave (the runner default).
			plan, err := gemm.NewPlan(shape, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if part.TotalWaves() == plan.Waves(plat.GPU.SMs-plat.CommSMs) {
				opts.Partition = part
			}
			if prim == hw.AllToAll {
				opts.Routing = make([][]int, n)
				for i := range opts.Routing {
					opts.Routing[i] = make([]int, shape.M)
					for r := range opts.Routing[i] {
						opts.Routing[i][r] = (r + 2*i) % n
					}
				}
			}
			res, err := core.Run(context.Background(), opts)
			if err != nil {
				t.Fatal(err)
			}

			// Exact functional verification against references.
			sum := tensor.New(shape.M, shape.N)
			fulls := make([]*tensor.Matrix, n)
			for d := 0; d < n; d++ {
				c := tensor.New(shape.M, shape.N)
				gemm.ComputeReference(c, res.InputA(d), res.InputB(d), nil)
				fulls[d] = c
				sum.AddInPlace(c)
			}
			switch prim {
			case hw.AllReduce:
				for d := 0; d < n; d++ {
					if !res.AROutput(d).Equal(sum) {
						t.Fatalf("device %d AllReduce output differs", d)
					}
				}
			case hw.ReduceScatter:
				sl := res.RSLayout()
				for d := 0; d < n; d++ {
					local := res.RSLocal(d)
					for lr := 0; lr < local.Rows; lr++ {
						gr := sl.GlobalRowOf(d, lr)
						for c := 0; c < local.Cols; c++ {
							if local.At(lr, c) != sum.At(gr, c) {
								t.Fatalf("device %d RS row %d wrong", d, lr)
							}
						}
					}
				}
			case hw.AllToAll:
				ex := res.A2AExchangeLayout()
				for d := 0; d < n; d++ {
					if !res.A2AOutput(d).Equal(ex.ReferenceOutput(d, fulls)) {
						t.Fatalf("device %d A2A output differs", d)
					}
				}
			}

			// The timeline must show genuine overlap on every device.
			tl := trace.FromSpans(res.Trace)
			for d := 0; d < n; d++ {
				if tl.OverlapTime(d, "compute", "comm") <= 0 {
					t.Fatalf("device %d shows no compute/comm overlap", d)
				}
			}
			if !strings.Contains(tl.Render(40), "=") {
				t.Fatal("rendered timeline missing communication lanes")
			}
		})
	}
}

// TestPipelineBeatsBaselineAtScale closes the loop at realistic scale:
// tuned FlashOverlap must beat the sequential baseline and respect the
// theoretical bound on every built-in platform.
func TestPipelineBeatsBaselineAtScale(t *testing.T) {
	shape := gemm.Shape{M: 4096, N: 8192, K: 8192}
	for _, plat := range []hw.Platform{hw.RTX4090PCIe(), hw.A800NVLink(), hw.Ascend910B(), hw.H100NVLink()} {
		plat := plat
		t.Run(plat.Name, func(t *testing.T) {
			tn := tuner.NewTuner(plat, 2, hw.AllReduce)
			tn.CandidateLimit = 128
			part, err := tn.Tune(context.Background(), shape, 0)
			if err != nil {
				t.Fatal(err)
			}
			opts := core.Options{Plat: plat, NGPUs: 2, Shape: shape, Prim: hw.AllReduce, Partition: part}
			res, err := core.Run(context.Background(), opts)
			if err != nil {
				t.Fatal(err)
			}
			base, err := baselines.NonOverlap(baselines.Options{Plat: plat, NGPUs: 2, Shape: shape, Prim: hw.AllReduce})
			if err != nil {
				t.Fatal(err)
			}
			bound, err := core.TheoreticalBound(opts)
			if err != nil {
				t.Fatal(err)
			}
			if res.Latency >= base {
				t.Fatalf("tuned overlap (%v) did not beat serial (%v)", res.Latency, base)
			}
			if res.Latency < bound {
				t.Fatalf("overlap (%v) beat the theoretical bound (%v)", res.Latency, bound)
			}
		})
	}
}

// TestExperimentFormattersNonEmpty guards the cmd/experiments surface: every
// formatter returns substantial text (a smoke test for the figure plumbing
// that the per-package tests don't cover end to end).
func TestExperimentFormattersNonEmpty(t *testing.T) {
	r3, err := expt.Fig3()
	if err != nil {
		t.Fatal(err)
	}
	rows4, err := expt.Fig4()
	if err != nil {
		t.Fatal(err)
	}
	for name, out := range map[string]string{
		"fig3": r3.Format(),
		"fig4": expt.FormatFig4(rows4),
		"fig8": expt.FormatFig8(expt.Fig8()),
	} {
		if len(out) < 100 {
			t.Errorf("%s: formatter output suspiciously short (%d bytes)", name, len(out))
		}
	}
}
