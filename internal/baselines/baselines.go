// Package baselines models the comparison systems of §6.1.3 on the same
// simulated substrate FlashOverlap runs on:
//
//   - NonOverlap: sequential cuBLAS GEMM then one NCCL collective — the
//     normalization baseline of every figure;
//   - Decomposition: the decomposition-based method (VanillaDecomposition,
//     and Async-TP's variant): the GEMM is split along M into chunks, each
//     chunk's collective is issued after its chunk GEMM. It suffers the
//     paper's two structural costs — fragmented communication (small
//     messages ride the bandwidth cliff) and fragmented computation
//     (per-kernel launches, partial-wave quantization, SM contention with
//     in-flight collectives);
//   - Fusion: the fusion-based method (FLUX, cuBLASMp): tile-wise overlap
//     inside one custom kernel. It needs P2P access, pays an instruction
//     overhead in the main loop, but saves the epilogue round-trip of C
//     through HBM — which is why it wins at small K (Fig. 11).
package baselines

import (
	"fmt"

	"repro/internal/comm"
	"repro/internal/gemm"
	"repro/internal/gpu"
	"repro/internal/hw"
	"repro/internal/sim"
)

// Options configures one baseline execution; the fields mirror core.Options
// so experiment grids can drive both from one spec.
type Options struct {
	Plat  hw.Platform
	NGPUs int
	Shape gemm.Shape
	Cfg   gemm.Config
	Prim  hw.Primitive
	// Chunks is the decomposition granularity along M; 0 picks the
	// conventional default of 4.
	Chunks int
	// Imbalance scales AllToAll payloads like core.Options.Imbalance.
	Imbalance float64
}

func (o *Options) normalize() (*gemm.Plan, error) {
	if err := o.Plat.Validate(); err != nil {
		return nil, err
	}
	if o.NGPUs < 2 {
		return nil, fmt.Errorf("baselines: need >= 2 GPUs, got %d", o.NGPUs)
	}
	if o.Cfg == (gemm.Config{}) {
		o.Cfg = gemm.DefaultConfig(o.Shape)
	}
	if o.Chunks == 0 {
		o.Chunks = 4
	}
	if o.Chunks < 1 {
		return nil, fmt.Errorf("baselines: invalid chunk count %d", o.Chunks)
	}
	switch o.Prim {
	case hw.AllReduce, hw.ReduceScatter, hw.AllToAll:
	default:
		return nil, fmt.Errorf("baselines: unsupported primitive %v", o.Prim)
	}
	return gemm.NewPlan(o.Shape, o.Cfg)
}

func (o *Options) totalBytes(plan *gemm.Plan) float64 {
	b := float64(plan.Shape.OutputBytes())
	if o.Prim == hw.AllToAll && o.Imbalance > 1 {
		b *= o.Imbalance
	}
	return b
}

// NonOverlap runs the sequential baseline on the DES: one full-SM GEMM
// kernel, then one collective over the whole output.
func NonOverlap(o Options) (sim.Time, error) {
	plan, err := o.normalize()
	if err != nil {
		return 0, err
	}
	cluster := gpu.NewCluster(o.Plat, o.NGPUs)
	com := comm.New(cluster)
	cm := gemm.NewCostModel(o.Plat.GPU)

	sigs := make([]*gpu.Signal, o.NGPUs)
	for d, dev := range cluster.Devices {
		jf := dev.JitterFactor()
		dur := sim.Time(float64(cm.Duration(plan, o.Plat.GPU.SMs)) * jf)
		cs := gpu.NewStream(dev, "compute")
		cs.Launch(gpu.KernelSpec{
			Name:     "gemm",
			SMs:      o.Plat.GPU.SMs,
			Duration: func(*gpu.Device, sim.Time) sim.Time { return dur },
		})
		sigs[d] = gpu.NewSignal(cluster.Sim, fmt.Sprintf("dev%d/gemm", d))
		cs.Record(sigs[d])
	}
	perRank := make([]int64, o.NGPUs)
	for i := range perRank {
		perRank[i] = int64(o.totalBytes(plan))
	}
	for d := 0; d < o.NGPUs; d++ {
		com.Stream(d).WaitSignal(sigs[d], 0) // plain stream dependency, no polling
	}
	var latency sim.Time
	done := com.Collective(o.Prim.Short(), o.Prim, perRank, nil)
	done.Wait(func(at sim.Time) { latency = at })
	cluster.Sim.Run()
	return latency, nil
}

// Decomposition runs the decomposition-based baseline: the GEMM is split
// into Chunks sub-GEMMs along M; chunk k's collective is enqueued right
// after chunk k's GEMM, overlapping with chunk k+1's computation. asyncTP
// selects the Async-TP variant: P2P copy-engine transfers that occupy no
// SMs and skip the collective-library call overhead, but which require
// peer-to-peer capability.
func Decomposition(o Options, asyncTP bool) (sim.Time, error) {
	plan, err := o.normalize()
	if err != nil {
		return 0, err
	}
	if asyncTP && !o.Plat.P2PCapable() {
		return 0, fmt.Errorf("baselines: Async-TP requires P2P, unavailable on %s", o.Plat.Name)
	}
	chunks := o.Chunks
	rowTilesPerChunk := plan.RowTiles / chunks
	if rowTilesPerChunk == 0 {
		chunks = plan.RowTiles // cannot split finer than a tile row
		rowTilesPerChunk = 1
	}
	// Chunk shapes: distribute row tiles round-robin so remainders spread.
	chunkRows := make([]int, chunks)
	for i := 0; i < plan.RowTiles; i++ {
		chunkRows[i%chunks] += plan.Cfg.TileM
	}

	cluster := gpu.NewCluster(o.Plat, o.NGPUs)
	com := comm.New(cluster)
	cm := gemm.NewCostModel(o.Plat.GPU)

	baseDiscount := 1.0
	if asyncTP {
		baseDiscount = 0 // copy engines: no library-call overhead
	}

	sigs := make([][]*gpu.Signal, o.NGPUs)
	for d, dev := range cluster.Devices {
		dev := dev
		sigs[d] = make([]*gpu.Signal, chunks)
		cs := gpu.NewStream(dev, "compute")
		for c := 0; c < chunks; c++ {
			rows := chunkRows[c]
			if rows == 0 {
				continue
			}
			chunkShape := gemm.Shape{M: rows, N: plan.Shape.N, K: plan.Shape.K}
			chunkPlan, err := gemm.NewPlan(chunkShape, o.Cfg)
			if err != nil {
				return 0, err
			}
			jf := dev.JitterFactor()
			cs.Launch(gpu.KernelSpec{
				Name: fmt.Sprintf("gemm-chunk%d", c),
				// The chunk GEMM contends with whatever collective is in
				// flight when it starts — the interference the paper's
				// design avoids.
				Duration: func(dv *gpu.Device, _ sim.Time) sim.Time {
					return sim.Time(float64(cm.Duration(chunkPlan, dv.AvailableSMs())) * jf)
				},
			})
			sigs[d][c] = gpu.NewSignal(cluster.Sim, fmt.Sprintf("dev%d/chunk%d", d, c))
			cs.Record(sigs[d][c])
		}
	}

	var latency sim.Time
	for c := 0; c < chunks; c++ {
		if chunkRows[c] == 0 {
			continue
		}
		bytes := int64(float64(chunkRows[c]) * float64(plan.Shape.N) * 2)
		if o.Prim == hw.AllToAll && o.Imbalance > 1 {
			bytes = int64(float64(bytes) * o.Imbalance)
		}
		perRank := make([]int64, o.NGPUs)
		for i := range perRank {
			perRank[i] = bytes
		}
		for d := 0; d < o.NGPUs; d++ {
			com.Stream(d).WaitSignal(sigs[d][c], 0)
		}
		name := fmt.Sprintf("%s-chunk%d", o.Prim.Short(), c)
		var done *gpu.Signal
		if asyncTP {
			done = collectiveNoSM(com, cluster, name, o.Prim, perRank, baseDiscount)
		} else {
			done = com.Collective(name, o.Prim, perRank, nil)
		}
		done.Wait(func(at sim.Time) {
			if at > latency {
				latency = at
			}
		})
	}
	cluster.Sim.Run()
	return latency, nil
}

// collectiveNoSM issues a copy-engine collective: same bandwidth curve, no
// SM reservation, no library-call base latency.
func collectiveNoSM(com *comm.Communicator, cluster *gpu.Cluster, name string, prim hw.Primitive, perRank []int64, baseFactor float64) *gpu.Signal {
	link := cluster.Plat.Link
	var bytes int64
	for _, b := range perRank {
		if b > bytes {
			bytes = b
		}
	}
	done := gpu.NewSignal(cluster.Sim, name+":done")
	rv := gpu.NewRendezvous(name, cluster.N(), 0, func(sim.Time) sim.Time {
		full := link.CollectiveTime(prim, float64(bytes), cluster.N())
		return full - sim.Time(float64(link.BaseLatency)*(1-baseFactor))
	})
	rv.OnComplete = func(sim.Time) { done.Fire() }
	for d := 0; d < cluster.N(); d++ {
		com.Stream(d).Join(rv)
	}
	return done
}

// FusionKind selects the fusion-based implementation to model.
type FusionKind int

const (
	// Flux models FLUX: tile-level fusion into a highly optimized GEMM.
	Flux FusionKind = iota
	// CublasMp models NVIDIA's cuBLASMp: the same structure with a less
	// aggressive fusion (higher compute interference).
	CublasMp
)

// Fusion analytically models the fusion-based baselines. The fused kernel
// overlaps tile computation with tile communication inside one kernel:
// latency ~ max(compute', comm') plus pipeline head/tail, where
//
//   - compute' is the GEMM slowed by fused communication instructions but
//     credited the epilogue round-trip of C through HBM (the write+read the
//     separate-kernel designs pay) — the small-K advantage;
//   - comm' is the full collective with a tile-granularity penalty.
//
// It returns an error on platforms without P2P access (the paper could not
// run FLUX on the RTX 4090 server).
func Fusion(o Options, kind FusionKind) (sim.Time, error) {
	plan, err := o.normalize()
	if err != nil {
		return 0, err
	}
	if !o.Plat.P2PCapable() {
		return 0, fmt.Errorf("baselines: fusion requires P2P access, unavailable on %s", o.Plat.Name)
	}
	// The fused kernel's communication instructions interleave with the
	// main loop (compute overhead) and its hand-rolled transport cannot
	// match the tuned collective library at scale (comm penalty) — the
	// structural costs §1 attributes to fusion-based designs.
	computeOverhead, commPenalty := 0.12, 1.30
	if kind == CublasMp {
		computeOverhead, commPenalty = 0.16, 1.40
	}
	cm := gemm.NewCostModel(o.Plat.GPU)
	compute := float64(cm.Duration(plan, o.Plat.GPU.SMs)) * (1 + computeOverhead)
	// Epilogue credit: the fused kernel skips one HBM round trip of C
	// (write by the GEMM, read by the communication kernel) — the
	// memory-access reduction that lets FLUX win at small K (Fig. 11).
	credit := float64(sim.FromSeconds(float64(plan.Shape.OutputBytes()) / o.Plat.GPU.MemBandwidth))
	compute -= credit
	if compute < 0 {
		compute = 0
	}
	commT := float64(o.Plat.Link.CollectiveTime(o.Prim, o.totalBytes(plan), o.NGPUs)) * commPenalty
	over := compute
	if commT > over {
		over = commT
	}
	// Pipeline head: the first tile must be computed before any
	// communication; tail: the last tile's communication.
	head := float64(cm.WaveEnd(plan, o.Plat.GPU.SMs, 0))
	tail := float64(o.Plat.Link.CollectiveTime(o.Prim, float64(plan.TileBytes()), o.NGPUs))
	return sim.Time(over + head + tail), nil
}
