package baselines

import (
	"context"
	"testing"

	"repro/internal/core"
	"repro/internal/gemm"
	"repro/internal/hw"
	"repro/internal/sim"
	"repro/internal/tuner"
)

func opts(plat hw.Platform, n int, prim hw.Primitive, s gemm.Shape) Options {
	return Options{Plat: plat, NGPUs: n, Shape: s, Prim: prim}
}

var typicalShape = gemm.Shape{M: 4096, N: 8192, K: 8192}

func TestNonOverlapMatchesAnalytic(t *testing.T) {
	o := opts(hw.A800NVLink(), 4, hw.AllReduce, typicalShape)
	got, err := NonOverlap(o)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := gemm.NewPlan(o.Shape, gemm.DefaultConfig(o.Shape))
	if err != nil {
		t.Fatal(err)
	}
	cm := gemm.NewCostModel(o.Plat.GPU)
	analytic := cm.Duration(plan, o.Plat.GPU.SMs) +
		o.Plat.Link.CollectiveTime(hw.AllReduce, float64(o.Shape.OutputBytes()), 4)
	// DES adds only jitter (<= ~2x amplitude) on top of the analytic sum.
	lo, hi := float64(analytic), float64(analytic)*(1+2*o.Plat.JitterAmplitude)
	if float64(got) < lo || float64(got) > hi {
		t.Fatalf("NonOverlap = %v, want within [%v, %v]", got, sim.Time(lo), sim.Time(hi))
	}
}

func TestNonOverlapDeterministic(t *testing.T) {
	o := opts(hw.RTX4090PCIe(), 2, hw.ReduceScatter, typicalShape)
	a, err := NonOverlap(o)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NonOverlap(o)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("nondeterministic baseline: %v vs %v", a, b)
	}
}

func TestDecompositionOverlapsButFragments(t *testing.T) {
	o := opts(hw.RTX4090PCIe(), 2, hw.AllReduce, typicalShape)
	serial, err := NonOverlap(o)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := Decomposition(o, false)
	if err != nil {
		t.Fatal(err)
	}
	// Decomposition should beat serial on a comm-heavy platform...
	if dec >= serial {
		t.Fatalf("decomposition (%v) should beat non-overlap (%v) here", dec, serial)
	}
	// ...but finer chunking eventually loses to fragmentation.
	fine := o
	fine.Chunks = 16
	decFine, err := Decomposition(fine, false)
	if err != nil {
		t.Fatal(err)
	}
	if decFine <= dec {
		t.Fatalf("16-way chunking (%v) should be slower than 4-way (%v): bandwidth cliff", decFine, dec)
	}
}

func TestDecompositionSingleChunkApproxSerial(t *testing.T) {
	o := opts(hw.A800NVLink(), 4, hw.AllReduce, typicalShape)
	o.Chunks = 1
	dec, err := Decomposition(o, false)
	if err != nil {
		t.Fatal(err)
	}
	serial, err := NonOverlap(o)
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(dec) / float64(serial)
	if ratio < 0.9 || ratio > 1.15 {
		t.Fatalf("1-chunk decomposition (%v) should approximate serial (%v), ratio %.3f", dec, serial, ratio)
	}
}

func TestAsyncTPRequiresP2P(t *testing.T) {
	o := opts(hw.RTX4090PCIe(), 2, hw.ReduceScatter, typicalShape)
	if _, err := Decomposition(o, true); err == nil {
		t.Fatal("Async-TP should fail without P2P (paper §6.1.3)")
	}
	o.Plat = hw.A800NVLink()
	if _, err := Decomposition(o, true); err != nil {
		t.Fatalf("Async-TP on NVLink failed: %v", err)
	}
}

func TestAsyncTPBeatsVanillaDecomposition(t *testing.T) {
	o := opts(hw.A800NVLink(), 4, hw.ReduceScatter, typicalShape)
	vanilla, err := Decomposition(o, false)
	if err != nil {
		t.Fatal(err)
	}
	async, err := Decomposition(o, true)
	if err != nil {
		t.Fatal(err)
	}
	if async >= vanilla {
		t.Fatalf("Async-TP (%v) should beat vanilla decomposition (%v): no SM contention or call overhead", async, vanilla)
	}
}

func TestFusionRequiresP2P(t *testing.T) {
	o := opts(hw.RTX4090PCIe(), 2, hw.AllReduce, typicalShape)
	if _, err := Fusion(o, Flux); err == nil {
		t.Fatal("FLUX should fail without P2P")
	}
}

func TestFluxBeatsCublasMp(t *testing.T) {
	o := opts(hw.A800NVLink(), 4, hw.ReduceScatter, typicalShape)
	flux, err := Fusion(o, Flux)
	if err != nil {
		t.Fatal(err)
	}
	cmp, err := Fusion(o, CublasMp)
	if err != nil {
		t.Fatal(err)
	}
	if flux >= cmp {
		t.Fatalf("FLUX (%v) should beat cuBLASMp (%v)", flux, cmp)
	}
}

// Fig. 11's exception: with small K the fusion-based method's memory-access
// reduction gives it the edge over FlashOverlap; with large K FlashOverlap
// wins. Check the crossover direction.
func TestFusionCrossoverWithK(t *testing.T) {
	plat := hw.A800NVLink()
	run := func(k int) (flux, flash float64) {
		s := gemm.Shape{M: 4096, N: 8192, K: k}
		f, err := Fusion(opts(plat, 4, hw.ReduceScatter, s), Flux)
		if err != nil {
			t.Fatal(err)
		}
		plan, err := gemm.NewPlan(s, gemm.DefaultConfig(s))
		if err != nil {
			t.Fatal(err)
		}
		trueSMs := plat.GPU.SMs - plat.CommSMs
		res, err := core.Run(context.Background(), core.Options{
			Plat: plat, NGPUs: 4, Shape: s, Prim: hw.ReduceScatter,
			Partition: gemm.EqualSized(plan.Waves(trueSMs), 2),
		})
		if err != nil {
			t.Fatal(err)
		}
		return float64(f), float64(res.Latency)
	}
	fluxSmall, flashSmall := run(2048)
	fluxLarge, flashLarge := run(12288)
	// Relative advantage of FLUX must shrink as K grows.
	if fluxSmall/flashSmall >= fluxLarge/flashLarge {
		t.Fatalf("FLUX advantage should decay with K: small %.3f, large %.3f",
			fluxSmall/flashSmall, fluxLarge/flashLarge)
	}
}

func TestOptionsValidation(t *testing.T) {
	good := opts(hw.A800NVLink(), 4, hw.AllReduce, typicalShape)
	for name, mut := range map[string]func(Options) Options{
		"gpus":   func(o Options) Options { o.NGPUs = 1; return o },
		"prim":   func(o Options) Options { o.Prim = hw.AllGather; return o },
		"chunks": func(o Options) Options { o.Chunks = -2; return o },
		"shape":  func(o Options) Options { o.Shape.K = 0; return o },
	} {
		if _, err := NonOverlap(mut(good)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestDecompositionMoreChunksThanRowTiles(t *testing.T) {
	o := opts(hw.A800NVLink(), 2, hw.AllReduce, gemm.Shape{M: 256, N: 8192, K: 4096})
	o.Chunks = 16 // only 2 row tiles exist
	if _, err := Decomposition(o, false); err != nil {
		t.Fatalf("over-chunking should clamp, got error: %v", err)
	}
}

func TestImbalanceSlowsA2A(t *testing.T) {
	o := opts(hw.RTX4090PCIe(), 4, hw.AllToAll, typicalShape)
	bal, err := NonOverlap(o)
	if err != nil {
		t.Fatal(err)
	}
	o.Imbalance = 2
	hot, err := NonOverlap(o)
	if err != nil {
		t.Fatal(err)
	}
	if hot <= bal {
		t.Fatalf("imbalanced A2A (%v) should be slower than balanced (%v)", hot, bal)
	}
}

func TestDecompositionTunedBeatsFixed(t *testing.T) {
	o := opts(hw.RTX4090PCIe(), 4, hw.AllReduce, typicalShape)
	best, chunks, err := DecompositionTuned(o, false, 16)
	if err != nil {
		t.Fatal(err)
	}
	if chunks < 1 || chunks > 16 {
		t.Fatalf("chunks = %d", chunks)
	}
	// The tuned result cannot lose to any fixed power-of-two setting.
	for c := 1; c <= 16; c *= 2 {
		run := o
		run.Chunks = c
		lat, err := Decomposition(run, false)
		if err != nil {
			t.Fatal(err)
		}
		if lat < best {
			t.Fatalf("tuned (%v, %d chunks) lost to fixed %d chunks (%v)", best, chunks, c, lat)
		}
	}
}

// Even granularity-tuned decomposition cannot reach tuned FlashOverlap's
// tile-wise overlap (the paper's core claim about decomposition designs).
func TestTunedDecompositionStillLosesToFlashOverlap(t *testing.T) {
	o := opts(hw.RTX4090PCIe(), 2, hw.AllReduce, typicalShape)
	dec, _, err := DecompositionTuned(o, false, 16)
	if err != nil {
		t.Fatal(err)
	}
	tn := tuner.NewTuner(o.Plat, o.NGPUs, o.Prim)
	tn.CandidateLimit = 256
	part, err := tn.Tune(context.Background(), o.Shape, 0)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Run(context.Background(), core.Options{
		Plat: o.Plat, NGPUs: o.NGPUs, Shape: o.Shape, Prim: o.Prim,
		Partition: part,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Latency >= dec {
		t.Fatalf("tuned FlashOverlap (%v) should beat tuned decomposition (%v)", res.Latency, dec)
	}
}
