package baselines

import (
	"fmt"

	"repro/internal/sim"
)

// DecompositionTuned sweeps the chunk count (the decomposition granularity
// the compiler-based systems like Centauri and [52] optimize) and returns
// the best latency with the winning chunk count. This is the strongest
// fair version of the decomposition baseline: the paper notes that careful
// decomposition tuning helps but cannot reach tile-wise overlap.
func DecompositionTuned(o Options, asyncTP bool, maxChunks int) (sim.Time, int, error) {
	if maxChunks <= 0 {
		maxChunks = 16
	}
	best := sim.MaxTime
	bestChunks := 0
	for chunks := 1; chunks <= maxChunks; chunks *= 2 {
		run := o
		run.Chunks = chunks
		lat, err := Decomposition(run, asyncTP)
		if err != nil {
			return 0, 0, fmt.Errorf("baselines: tuned decomposition at %d chunks: %w", chunks, err)
		}
		if lat < best {
			best = lat
			bestChunks = chunks
		}
	}
	return best, bestChunks, nil
}
