// Package comm is the repository's NCCL analog: a collective communication
// library over simulated devices, reached exclusively through high-level API
// calls — which is precisely the property ("communication agnosticism")
// FlashOverlap exploits. It provides AllReduce, ReduceScatter, AllGather,
// All-to-All(V) and point-to-point sends, with ring-algorithm cost modeling,
// per-message effective bandwidth, and SM occupancy on every participating
// device while a collective is in flight.
//
// Each collective has two halves, mirroring the real library:
//
//   - timing: a rendezvous across the per-rank communication streams whose
//     duration comes from hw.LinkSpec.CollectiveTime (+ deterministic
//     measurement jitter);
//   - function: the actual float32 data movement/reduction across the
//     per-rank buffers, executed once at the collective's completion time.
//
// Reductions always run in ascending rank order so results are bit-stable
// regardless of which rank arrived last — that determinism is what lets the
// correctness tests demand exact equality with sequential references.
package comm

import (
	"fmt"

	"repro/internal/gpu"
	"repro/internal/hw"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/tensor"
)

// Communicator binds the devices of a cluster into one communication group
// with a dedicated stream per rank (the paper runs communication on its own
// CUDA stream, §5).
type Communicator struct {
	Cluster *gpu.Cluster
	Streams []*gpu.Stream

	jitter stats.Jitter
	seq    uint64
}

// New creates a communicator spanning every device of the cluster.
func New(c *gpu.Cluster) *Communicator {
	cm := &Communicator{
		Cluster: c,
		jitter:  stats.NewJitter(c.Plat.JitterSeed ^ 0xC0111EC7),
	}
	for _, d := range c.Devices {
		cm.Streams = append(cm.Streams, gpu.NewStream(d, "comm"))
	}
	return cm
}

// N reports the number of ranks.
func (cm *Communicator) N() int { return len(cm.Streams) }

// maxBytes returns the largest per-rank payload; collective completion is
// bounded by the most loaded rank (§4.2.2 extends the predictor the same
// way for imbalanced All-to-All).
func maxBytes(perRank []int64) int64 {
	var m int64
	for _, b := range perRank {
		if b > m {
			m = b
		}
	}
	return m
}

// Collective enqueues one collective on every rank's communication stream.
// perRankBytes[i] is rank i's payload in (half-precision) bytes; apply, if
// non-nil, performs the functional data movement at completion time. The
// returned signal fires when the collective completes on all ranks.
//
// The caller is responsible for ordering: anything that must precede the
// collective on rank i (e.g. a WaitSignal on a counting-table signal) must
// be enqueued on Stream(i) beforehand.
func (cm *Communicator) Collective(name string, prim hw.Primitive, perRankBytes []int64, apply func()) *gpu.Signal {
	if len(perRankBytes) != cm.N() {
		panic(fmt.Sprintf("comm: %d payload sizes for %d ranks", len(perRankBytes), cm.N()))
	}
	cm.seq++
	seq := cm.seq
	link := cm.Cluster.Plat.Link
	n := cm.N()
	bytes := maxBytes(perRankBytes)
	done := gpu.NewSignal(cm.Cluster.Sim, name+":done")
	rv := gpu.NewRendezvous(name, n, cm.Cluster.Plat.CommSMs, func(start sim.Time) sim.Time {
		base := link.CollectiveTime(prim, float64(bytes), n)
		// Deterministic per-call noise models protocol and scheduling
		// variance the tuner's predictor cannot see.
		return sim.Time(float64(base) * cm.jitter.Factor(cm.Cluster.Plat.JitterAmplitude, seq))
	})
	rv.OnComplete = func(end sim.Time) {
		if apply != nil {
			apply()
		}
		done.Fire()
	}
	for _, st := range cm.Streams {
		st.Join(rv)
	}
	return done
}

// Stream returns rank i's communication stream for enqueueing gates ahead
// of a collective.
func (cm *Communicator) Stream(i int) *gpu.Stream { return cm.Streams[i] }

// uniformBytes builds a per-rank payload slice with the same size per rank.
func (cm *Communicator) uniformBytes(b int64) []int64 {
	out := make([]int64, cm.N())
	for i := range out {
		out[i] = b
	}
	return out
}

// AllReduce enqueues an AllReduce over the per-rank buffers: every rank's
// dst becomes the elementwise rank-ordered sum of all srcs. src and dst of
// a rank may alias.
func (cm *Communicator) AllReduce(name string, srcs, dsts []*tensor.Matrix) *gpu.Signal {
	checkRanks("AllReduce", cm.N(), len(srcs), len(dsts))
	bytes := srcs[0].Bytes()
	return cm.Collective(name, hw.AllReduce, cm.uniformBytes(bytes), func() {
		AllReduceData(srcs, dsts)
	})
}

// ReduceScatter enqueues a ReduceScatter: the rank-ordered sum of srcs is
// split into N() equal row blocks, block i landing in dsts[i].
func (cm *Communicator) ReduceScatter(name string, srcs, dsts []*tensor.Matrix) *gpu.Signal {
	checkRanks("ReduceScatter", cm.N(), len(srcs), len(dsts))
	bytes := srcs[0].Bytes()
	return cm.Collective(name, hw.ReduceScatter, cm.uniformBytes(bytes), func() {
		ReduceScatterData(srcs, dsts)
	})
}

// AllGather enqueues an AllGather: every rank's dst is the row-wise
// concatenation of all srcs in rank order.
func (cm *Communicator) AllGather(name string, srcs, dsts []*tensor.Matrix) *gpu.Signal {
	checkRanks("AllGather", cm.N(), len(srcs), len(dsts))
	bytes := srcs[0].Bytes() * int64(cm.N())
	return cm.Collective(name, hw.AllGather, cm.uniformBytes(bytes), func() {
		AllGatherData(srcs, dsts)
	})
}

// AllToAllV enqueues a variable-count All-to-All over flat element buffers.
// See AllToAllVData for the exchange semantics. Per-rank payloads (and
// therefore the modeled completion time) follow each rank's total send
// volume, capturing the expert-imbalance effect in GEMM+A2A.
func (cm *Communicator) AllToAllV(name string, srcs, dsts [][]float32, sendCounts, sendOffs, recvOffs [][]int) *gpu.Signal {
	n := cm.N()
	checkRanks("AllToAllV", n, len(srcs), len(dsts))
	perRank := make([]int64, n)
	for i := 0; i < n; i++ {
		var elems int64
		for j := 0; j < n; j++ {
			elems += int64(sendCounts[i][j])
		}
		perRank[i] = elems * 2 // half precision
	}
	return cm.Collective(name, hw.AllToAll, perRank, func() {
		AllToAllVData(srcs, dsts, sendCounts, sendOffs, recvOffs)
	})
}

func checkRanks(op string, n int, lens ...int) {
	for _, l := range lens {
		if l != n {
			panic(fmt.Sprintf("comm: %s buffer count %d != rank count %d", op, l, n))
		}
	}
}

// --- Functional data movement -------------------------------------------

// AllReduceData sums srcs elementwise in ascending rank order and writes the
// result to every dst. Buffers may alias pairwise (src[i] == dst[i]).
func AllReduceData(srcs, dsts []*tensor.Matrix) {
	n := len(srcs)
	if n == 0 || len(dsts) != n {
		panic("comm: AllReduceData needs matching src/dst sets")
	}
	rows, cols := srcs[0].Rows, srcs[0].Cols
	sum := tensor.New(rows, cols)
	for _, s := range srcs {
		if s.Rows != rows || s.Cols != cols {
			panic("comm: AllReduceData shape mismatch across ranks")
		}
		sum.AddInPlace(s)
	}
	for _, d := range dsts {
		if d.Rows != rows || d.Cols != cols {
			panic("comm: AllReduceData dst shape mismatch")
		}
		copy(d.Data, sum.Data)
	}
}

// ReduceScatterData sums srcs in rank order, splits the sum into len(dsts)
// equal row blocks, and writes block i to dsts[i]. Row count must divide
// evenly — NCCL has the same requirement.
func ReduceScatterData(srcs, dsts []*tensor.Matrix) {
	n := len(srcs)
	if n == 0 || len(dsts) != n {
		panic("comm: ReduceScatterData needs matching src/dst sets")
	}
	rows, cols := srcs[0].Rows, srcs[0].Cols
	if rows%n != 0 {
		panic(fmt.Sprintf("comm: ReduceScatterData rows %d not divisible by %d ranks", rows, n))
	}
	sum := tensor.New(rows, cols)
	for _, s := range srcs {
		if s.Rows != rows || s.Cols != cols {
			panic("comm: ReduceScatterData shape mismatch across ranks")
		}
		sum.AddInPlace(s)
	}
	block := rows / n
	for i, d := range dsts {
		if d.Rows != block || d.Cols != cols {
			panic(fmt.Sprintf("comm: ReduceScatterData dst %d is %dx%d, want %dx%d", i, d.Rows, d.Cols, block, cols))
		}
		d.CopyRect(0, 0, sum, i*block, 0, block, cols)
	}
}

// AllGatherData concatenates srcs row-wise in rank order into every dst.
func AllGatherData(srcs, dsts []*tensor.Matrix) {
	n := len(srcs)
	if n == 0 || len(dsts) != n {
		panic("comm: AllGatherData needs matching src/dst sets")
	}
	rows, cols := srcs[0].Rows, srcs[0].Cols
	for _, d := range dsts {
		if d.Rows != rows*n || d.Cols != cols {
			panic(fmt.Sprintf("comm: AllGatherData dst is %dx%d, want %dx%d", d.Rows, d.Cols, rows*n, cols))
		}
		for i, s := range srcs {
			if s.Rows != rows || s.Cols != cols {
				panic("comm: AllGatherData src shape mismatch")
			}
			d.CopyRect(i*rows, 0, s, 0, 0, rows, cols)
		}
	}
}

// AllToAllVData performs the variable-count exchange: for every pair (i, j),
// sendCounts[i][j] elements are copied from srcs[i] starting at
// sendOffs[i][j] into dsts[j] starting at recvOffs[j][i]. This matches
// ncclSend/ncclRecv loops used to construct All-to-All (§2.2).
func AllToAllVData(srcs, dsts [][]float32, sendCounts, sendOffs, recvOffs [][]int) {
	n := len(srcs)
	if len(dsts) != n || len(sendCounts) != n || len(sendOffs) != n || len(recvOffs) != n {
		panic("comm: AllToAllVData rank count mismatch")
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			cnt := sendCounts[i][j]
			if cnt == 0 {
				continue
			}
			src := srcs[i][sendOffs[i][j] : sendOffs[i][j]+cnt]
			dst := dsts[j][recvOffs[j][i] : recvOffs[j][i]+cnt]
			copy(dst, src)
		}
	}
}
