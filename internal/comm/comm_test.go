package comm

import (
	"testing"
	"testing/quick"

	"repro/internal/gpu"
	"repro/internal/hw"
	"repro/internal/sim"
	"repro/internal/tensor"
)

func cluster(n int) *gpu.Cluster { return gpu.NewCluster(hw.A800NVLink(), n) }

func ranks(n, rows, cols int, seedBase uint64) []*tensor.Matrix {
	out := make([]*tensor.Matrix, n)
	for i := range out {
		out[i] = tensor.New(rows, cols)
		out[i].FillRand(seedBase + uint64(i))
	}
	return out
}

func zeros(n, rows, cols int) []*tensor.Matrix {
	out := make([]*tensor.Matrix, n)
	for i := range out {
		out[i] = tensor.New(rows, cols)
	}
	return out
}

func TestAllReduceDataSumsInRankOrder(t *testing.T) {
	srcs := ranks(4, 3, 5, 10)
	dsts := zeros(4, 3, 5)
	AllReduceData(srcs, dsts)
	want := tensor.New(3, 5)
	for _, s := range srcs {
		want.AddInPlace(s)
	}
	for i, d := range dsts {
		if !d.Equal(want) {
			t.Fatalf("rank %d AllReduce result differs", i)
		}
	}
}

func TestAllReduceDataInPlace(t *testing.T) {
	srcs := ranks(2, 2, 2, 20)
	want := srcs[0].Clone()
	want.AddInPlace(srcs[1])
	AllReduceData(srcs, srcs) // alias src as dst
	if !srcs[0].Equal(want) || !srcs[1].Equal(want) {
		t.Fatal("in-place AllReduce wrong")
	}
}

func TestReduceScatterData(t *testing.T) {
	n := 4
	srcs := ranks(n, 8, 6, 30)
	dsts := zeros(n, 2, 6)
	ReduceScatterData(srcs, dsts)
	sum := tensor.New(8, 6)
	for _, s := range srcs {
		sum.AddInPlace(s)
	}
	for i, d := range dsts {
		for r := 0; r < 2; r++ {
			for c := 0; c < 6; c++ {
				if d.At(r, c) != sum.At(i*2+r, c) {
					t.Fatalf("rank %d block wrong at (%d,%d)", i, r, c)
				}
			}
		}
	}
}

func TestReduceScatterRowDivisibility(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("non-divisible rows did not panic")
		}
	}()
	ReduceScatterData(ranks(3, 7, 2, 1), zeros(3, 2, 2))
}

func TestAllGatherData(t *testing.T) {
	n := 3
	srcs := ranks(n, 2, 4, 40)
	dsts := zeros(n, 6, 4)
	AllGatherData(srcs, dsts)
	for _, d := range dsts {
		for i, s := range srcs {
			for r := 0; r < 2; r++ {
				for c := 0; c < 4; c++ {
					if d.At(i*2+r, c) != s.At(r, c) {
						t.Fatal("AllGather misplaced data")
					}
				}
			}
		}
	}
}

// ReduceScatter followed by AllGather must equal AllReduce — the identity
// the paper's training decomposition (§2.3.2) relies on.
func TestReduceScatterPlusAllGatherEqualsAllReduce(t *testing.T) {
	n := 4
	srcs := ranks(n, 8, 4, 50)
	rs := zeros(n, 2, 4)
	ReduceScatterData(srcs, rs)
	ag := zeros(n, 8, 4)
	AllGatherData(rs, ag)
	ar := zeros(n, 8, 4)
	AllReduceData(srcs, ar)
	for i := range ag {
		if !ag[i].Equal(ar[i]) {
			t.Fatalf("rank %d: RS+AG != AR", i)
		}
	}
}

func TestAllToAllVData(t *testing.T) {
	// 2 ranks, rank 0 sends [a b | c] (2 to rank0, 1 to rank1),
	// rank 1 sends [d | e f] (1 to rank0, 2 to rank1).
	srcs := [][]float32{{1, 2, 3}, {4, 5, 6}}
	dsts := [][]float32{make([]float32, 3), make([]float32, 3)}
	counts := [][]int{{2, 1}, {1, 2}}
	soffs := [][]int{{0, 2}, {0, 1}}
	roffs := [][]int{{0, 2}, {0, 1}}
	AllToAllVData(srcs, dsts, counts, soffs, roffs)
	want0 := []float32{1, 2, 4}
	want1 := []float32{3, 5, 6}
	for i, w := range want0 {
		if dsts[0][i] != w {
			t.Fatalf("dst0 = %v, want %v", dsts[0], want0)
		}
	}
	for i, w := range want1 {
		if dsts[1][i] != w {
			t.Fatalf("dst1 = %v, want %v", dsts[1], want1)
		}
	}
}

func TestAllToAllVZeroCounts(t *testing.T) {
	srcs := [][]float32{{1}, {2}}
	dsts := [][]float32{{0}, {0}}
	counts := [][]int{{1, 0}, {0, 1}}
	offs := [][]int{{0, 0}, {0, 0}}
	AllToAllVData(srcs, dsts, counts, offs, offs)
	if dsts[0][0] != 1 || dsts[1][0] != 2 {
		t.Fatal("self-exchange with zero cross counts failed")
	}
}

func TestCommunicatorAllReduceEndToEnd(t *testing.T) {
	c := cluster(4)
	cm := New(c)
	srcs := ranks(4, 4, 4, 60)
	dsts := zeros(4, 4, 4)
	done := cm.AllReduce("ar", srcs, dsts)
	c.Sim.Run()
	ok, at := done.Fired()
	if !ok {
		t.Fatal("AllReduce never completed")
	}
	if at <= 0 {
		t.Fatalf("AllReduce completed at %v, want > 0", at)
	}
	want := tensor.New(4, 4)
	for _, s := range srcs {
		want.AddInPlace(s)
	}
	for i, d := range dsts {
		if !d.Equal(want) {
			t.Fatalf("rank %d result wrong after simulated AllReduce", i)
		}
	}
}

func TestCollectiveWaitsForGates(t *testing.T) {
	c := cluster(2)
	cm := New(c)
	gate := gpu.NewSignal(c.Sim, "gate")
	// Rank 0 is gated; rank 1 is free. The collective must not start
	// before the gate fires at t=100.
	cm.Stream(0).WaitSignal(gate, 0)
	done := cm.Collective("coll", hw.AllReduce, []int64{1 << 20, 1 << 20}, nil)
	c.Sim.At(100, gate.Fire)
	c.Sim.Run()
	_, at := done.Fired()
	if at <= 100 {
		t.Fatalf("collective finished at %v, must start after gate at 100", at)
	}
}

func TestCollectiveDurationScalesWithSize(t *testing.T) {
	measure := func(bytes int64) sim.Time {
		c := cluster(4)
		cm := New(c)
		done := cm.Collective("c", hw.AllReduce, cm.uniformBytes(bytes), nil)
		c.Sim.Run()
		_, at := done.Fired()
		return at
	}
	small := measure(1 << 16)
	large := measure(64 << 20)
	if large <= small*5 {
		t.Fatalf("64MB (%v) should dwarf 64KB (%v)", large, small)
	}
	// Yet the small message should pay far more than its pro-rata share:
	// the per-byte cost at 64KB must exceed the per-byte cost at 64MB by
	// >10x (the Fig. 8 cliff).
	perByteSmall := float64(small) / float64(1<<16)
	perByteLarge := float64(large) / float64(64<<20)
	if perByteSmall < 10*perByteLarge {
		t.Fatalf("small-message per-byte cost %.3g should dwarf large %.3g", perByteSmall, perByteLarge)
	}
}

func TestCollectiveReservesSMsDuringFlight(t *testing.T) {
	c := cluster(2)
	cm := New(c)
	seen := -1
	probe := gpu.NewStream(c.Devices[0], "probe")
	cm.Collective("coll", hw.AllReduce, cm.uniformBytes(64<<20), nil)
	// Probe the device mid-collective.
	probe.Launch(gpu.KernelSpec{Name: "idle", Duration: func(*gpu.Device, sim.Time) sim.Time { return 10 * sim.Microsecond }})
	probe.Launch(gpu.KernelSpec{Name: "probe", Duration: func(d *gpu.Device, _ sim.Time) sim.Time {
		seen = d.AvailableSMs()
		return 1
	}})
	c.Sim.Run()
	want := c.Plat.GPU.SMs - c.Plat.CommSMs
	if seen != want {
		t.Fatalf("mid-collective SMs = %d, want %d", seen, want)
	}
}

func TestAllToAllVTimingFollowsMaxLoad(t *testing.T) {
	run := func(hot int) sim.Time {
		c := cluster(2)
		cm := New(c)
		elems := []int{1 << 10, 1 << 10}
		elems[hot] = 1 << 22 // one overloaded rank
		srcs := [][]float32{make([]float32, elems[0]), make([]float32, elems[1])}
		dsts := [][]float32{make([]float32, 1<<22), make([]float32, 1<<22)}
		counts := [][]int{{elems[0], 0}, {elems[1], 0}}
		offs := [][]int{{0, 0}, {0, 0}}
		done := cm.AllToAllV("a2a", srcs, dsts, counts, offs, offs)
		c.Sim.Run()
		_, at := done.Fired()
		return at
	}
	// Whichever rank is overloaded, completion is pinned to the max load.
	t0, t1 := run(0), run(1)
	ratio := float64(t0) / float64(t1)
	if ratio < 0.9 || ratio > 1.1 {
		t.Fatalf("imbalanced A2A timing should follow max load: %v vs %v", t0, t1)
	}
}

func TestCommunicatorChecksBufferCounts(t *testing.T) {
	c := cluster(2)
	cm := New(c)
	defer func() {
		if recover() == nil {
			t.Error("mismatched buffer count did not panic")
		}
	}()
	cm.AllReduce("ar", ranks(1, 2, 2, 1), zeros(2, 2, 2))
}

func TestCollectivePayloadCountMismatchPanics(t *testing.T) {
	c := cluster(2)
	cm := New(c)
	defer func() {
		if recover() == nil {
			t.Error("bad payload slice did not panic")
		}
	}()
	cm.Collective("c", hw.AllReduce, []int64{1}, nil)
}

func TestDataMovementShapePanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"ar-empty":     func() { AllReduceData(nil, nil) },
		"ar-cross":     func() { AllReduceData([]*tensor.Matrix{tensor.New(2, 2), tensor.New(3, 2)}, zeros(2, 2, 2)) },
		"ar-dst":       func() { AllReduceData(ranks(2, 2, 2, 1), zeros(2, 3, 3)) },
		"rs-dst-shape": func() { ReduceScatterData(ranks(2, 4, 2, 1), zeros(2, 3, 2)) },
		"ag-dst-shape": func() { AllGatherData(ranks(2, 2, 2, 1), zeros(2, 2, 2)) },
		"a2a-ranks":    func() { AllToAllVData(make([][]float32, 2), make([][]float32, 1), nil, nil, nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			fn()
		}()
	}
}

// Property: simulated AllReduce equals the rank-ordered sum for any rank
// count 2..5 and small shapes.
func TestAllReduceProperty(t *testing.T) {
	f := func(seed uint64, nRanks, rows, cols uint8) bool {
		n := int(nRanks%4) + 2
		r := int(rows%4) + 1
		cl := int(cols%4) + 1
		c := cluster(n)
		cm := New(c)
		srcs := ranks(n, r, cl, seed)
		dsts := zeros(n, r, cl)
		cm.AllReduce("ar", srcs, dsts)
		c.Sim.Run()
		want := tensor.New(r, cl)
		for _, s := range srcs {
			want.AddInPlace(s)
		}
		for _, d := range dsts {
			if !d.Equal(want) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
