package comm

import (
	"fmt"

	"repro/internal/gpu"
	"repro/internal/sim"
	"repro/internal/tensor"
)

// This file implements the ring algorithm the paper's communication library
// uses under the hood (§2.2, [38]): AllReduce as a reduce-scatter phase of
// n-1 neighbor steps followed by an all-gather phase of n-1 steps, each
// rank exchanging one chunk with its neighbors per step. The step-level
// data functions are exercised by tests to prove that the ring composition
// is exactly equivalent to the direct reductions the collectives use — the
// property that makes the bandwidth-optimal ring transparent to callers.

// ringChunk returns the [lo, hi) element range of chunk c when length
// elements are split into n nearly equal chunks (NCCL-style: remainder
// spreads over the leading chunks).
func ringChunk(length, n, c int) (lo, hi int) {
	base := length / n
	rem := length % n
	lo = c*base + min(c, rem)
	size := base
	if c < rem {
		size++
	}
	return lo, lo + size
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// RingReduceScatterStep performs step s (0 <= s < n-1) of the ring
// reduce-scatter phase in place over the per-rank working buffers: rank i
// sends its chunk (i - s mod n) — which already carries s+1 contributions —
// to rank i+1, which accumulates it. After n-1 steps, rank i holds the
// fully reduced chunk (i+1 mod n).
func RingReduceScatterStep(bufs [][]float32, s int) {
	n := len(bufs)
	if n < 2 {
		panic("comm: ring needs >= 2 ranks")
	}
	if s < 0 || s >= n-1 {
		panic(fmt.Sprintf("comm: reduce-scatter step %d out of [0,%d)", s, n-1))
	}
	length := len(bufs[0])
	// All sends of one step are logically concurrent; stage them first so
	// a rank's incoming chunk does not contaminate its outgoing one.
	type xfer struct {
		dst, lo, hi int
		data        []float32
	}
	var xs []xfer
	for i := 0; i < n; i++ {
		c := ((i-s)%n + n) % n
		lo, hi := ringChunk(length, n, c)
		staged := make([]float32, hi-lo)
		copy(staged, bufs[i][lo:hi])
		xs = append(xs, xfer{dst: (i + 1) % n, lo: lo, hi: hi, data: staged})
	}
	for _, x := range xs {
		dst := bufs[x.dst][x.lo:x.hi]
		for k, v := range x.data {
			dst[k] += v
		}
	}
}

// RingAllGatherStep performs step s (0 <= s < n-1) of the ring all-gather
// phase: rank i forwards its fully reduced chunk (i - s mod n, offset by
// one for the reduce-scatter ending position) to rank i+1.
func RingAllGatherStep(bufs [][]float32, s int) {
	n := len(bufs)
	if n < 2 {
		panic("comm: ring needs >= 2 ranks")
	}
	if s < 0 || s >= n-1 {
		panic(fmt.Sprintf("comm: all-gather step %d out of [0,%d)", s, n-1))
	}
	length := len(bufs[0])
	type xfer struct {
		dst, lo, hi int
		data        []float32
	}
	var xs []xfer
	for i := 0; i < n; i++ {
		c := ((i+1-s)%n + n) % n
		lo, hi := ringChunk(length, n, c)
		staged := make([]float32, hi-lo)
		copy(staged, bufs[i][lo:hi])
		xs = append(xs, xfer{dst: (i + 1) % n, lo: lo, hi: hi, data: staged})
	}
	for _, x := range xs {
		copy(bufs[x.dst][x.lo:x.hi], x.data)
	}
}

// RingAllReduceData runs the full 2(n-1)-step ring over per-rank buffers in
// place. It must produce exactly the rank-ordered sum in every buffer —
// the equivalence tests pin that down. (The production collectives use the
// direct reductions; this is the reference construction of [38].)
func RingAllReduceData(bufs [][]float32) {
	n := len(bufs)
	if n == 0 {
		panic("comm: no ranks")
	}
	if n == 1 {
		return
	}
	length := len(bufs[0])
	for _, b := range bufs {
		if len(b) != length {
			panic("comm: ring buffer length mismatch")
		}
	}
	for s := 0; s < n-1; s++ {
		RingReduceScatterStep(bufs, s)
	}
	for s := 0; s < n-1; s++ {
		RingAllGatherStep(bufs, s)
	}
}

// SendRecv enqueues a point-to-point transfer from rank src to rank dst
// (ncclSend/ncclRecv): both ranks' communication streams participate, the
// duration follows the link model for a unidirectional message, and apply
// runs at completion (the data copy). The returned signal fires when done.
func (cm *Communicator) SendRecv(name string, src, dst int, bytes int64, apply func()) *gpu.Signal {
	if src == dst || src < 0 || dst < 0 || src >= cm.N() || dst >= cm.N() {
		panic(fmt.Sprintf("comm: SendRecv %d->%d invalid for %d ranks", src, dst, cm.N()))
	}
	cm.seq++
	seq := cm.seq
	link := cm.Cluster.Plat.Link
	done := gpu.NewSignal(cm.Cluster.Sim, name+":done")
	rv := gpu.NewRendezvous(name, 2, cm.Cluster.Plat.CommSMs, func(start sim.Time) sim.Time {
		base := link.BaseLatency + link.PerHopLatency +
			sim.FromSeconds(float64(bytes)/link.EffectiveBW(float64(bytes)))
		return sim.Time(float64(base) * cm.jitter.Factor(cm.Cluster.Plat.JitterAmplitude, seq))
	})
	rv.OnComplete = func(sim.Time) {
		if apply != nil {
			apply()
		}
		done.Fire()
	}
	cm.Streams[src].Join(rv)
	cm.Streams[dst].Join(rv)
	return done
}

// CopyP2P is the functional payload of a SendRecv over matrices.
func CopyP2P(dst, src *tensor.Matrix) {
	if dst.Rows != src.Rows || dst.Cols != src.Cols {
		panic("comm: p2p shape mismatch")
	}
	copy(dst.Data, src.Data)
}
