package comm

import (
	"testing"
	"testing/quick"

	"repro/internal/gpu"
	"repro/internal/hw"
	"repro/internal/sim"
	"repro/internal/tensor"
)

func ringBufs(n, length int, seed uint64) ([][]float32, []float32) {
	bufs := make([][]float32, n)
	want := make([]float32, length)
	for i := range bufs {
		m := tensor.New(1, length)
		m.FillRand(seed + uint64(i))
		bufs[i] = m.Data
		for k, v := range m.Data {
			want[k] += v
		}
	}
	return bufs, want
}

func TestRingChunkPartition(t *testing.T) {
	// 10 elements over 4 ranks: chunks of 3,3,2,2 covering [0,10).
	covered := 0
	for c := 0; c < 4; c++ {
		lo, hi := ringChunk(10, 4, c)
		if lo != covered {
			t.Fatalf("chunk %d starts at %d, want %d", c, lo, covered)
		}
		covered = hi
	}
	if covered != 10 {
		t.Fatalf("chunks cover %d of 10", covered)
	}
}

func TestRingAllReduceEqualsDirectSum(t *testing.T) {
	for _, n := range []int{2, 3, 4, 5, 8} {
		bufs, want := ringBufs(n, 37, uint64(n)*100)
		RingAllReduceData(bufs)
		for i, b := range bufs {
			for k, v := range b {
				if v != want[k] {
					// Ring sums in hop order, which can differ from
					// rank order in float32 — accept tiny drift.
					d := float64(v - want[k])
					if d > 1e-4 || d < -1e-4 {
						t.Fatalf("n=%d rank %d elem %d: %v vs %v", n, i, k, v, want[k])
					}
				}
			}
		}
	}
}

func TestRingSingleRankNoop(t *testing.T) {
	buf := []float32{1, 2, 3}
	RingAllReduceData([][]float32{buf})
	if buf[0] != 1 || buf[2] != 3 {
		t.Fatal("single-rank ring should be a no-op")
	}
}

func TestRingStepPanics(t *testing.T) {
	bufs, _ := ringBufs(3, 6, 1)
	for name, fn := range map[string]func(){
		"rs-step": func() { RingReduceScatterStep(bufs, 2) },
		"ag-step": func() { RingAllGatherStep(bufs, -1) },
		"1rank":   func() { RingReduceScatterStep(bufs[:1], 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			fn()
		}()
	}
}

// Property: the ring construction matches the direct sum for random rank
// counts and lengths (including lengths not divisible by n).
func TestRingEquivalenceProperty(t *testing.T) {
	f := func(seed uint64, nRaw, lenRaw uint8) bool {
		n := int(nRaw%6) + 2
		length := int(lenRaw%50) + 1
		bufs, want := ringBufs(n, length, seed)
		RingAllReduceData(bufs)
		for _, b := range bufs {
			for k, v := range b {
				d := float64(v - want[k])
				if d > 1e-3 || d < -1e-3 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestSendRecvMovesData(t *testing.T) {
	c := gpu.NewCluster(hw.A800NVLink(), 4)
	cm := New(c)
	src := tensor.New(4, 4)
	src.FillRand(3)
	dst := tensor.New(4, 4)
	done := cm.SendRecv("p2p", 1, 3, src.Bytes(), func() { CopyP2P(dst, src) })
	c.Sim.Run()
	ok, at := done.Fired()
	if !ok || at <= 0 {
		t.Fatalf("SendRecv fired=%v at=%v", ok, at)
	}
	if !dst.Equal(src) {
		t.Fatal("data not copied")
	}
}

func TestSendRecvOnlyBlocksParticipants(t *testing.T) {
	c := gpu.NewCluster(hw.A800NVLink(), 3)
	cm := New(c)
	// Rank 2 is not involved; a collective enqueued after the send on
	// ranks 0/1 must wait, but rank 2's stream reaches it immediately.
	var p2pEnd sim.Time
	cm.SendRecv("p2p", 0, 1, 1<<20, nil).Wait(func(at sim.Time) { p2pEnd = at })
	var collEnd sim.Time
	cm.Collective("coll", hw.AllReduce, []int64{1 << 10, 1 << 10, 1 << 10}, nil).
		Wait(func(at sim.Time) { collEnd = at })
	c.Sim.Run()
	if collEnd <= p2pEnd {
		t.Fatalf("collective (%v) must serialize after the p2p (%v) on ranks 0/1", collEnd, p2pEnd)
	}
}

func TestSendRecvValidation(t *testing.T) {
	c := gpu.NewCluster(hw.A800NVLink(), 2)
	cm := New(c)
	for name, fn := range map[string]func(){
		"self": func() { cm.SendRecv("x", 1, 1, 10, nil) },
		"oob":  func() { cm.SendRecv("x", 0, 5, 10, nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestCopyP2PShapeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic")
		}
	}()
	CopyP2P(tensor.New(2, 2), tensor.New(3, 2))
}
