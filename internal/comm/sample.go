package comm

import (
	"repro/internal/gpu"
	"repro/internal/hw"
	"repro/internal/sim"
	"repro/internal/stats"
)

// SampleCurve performs the offline stage's bandwidth sampling (Alg. 1
// line 5): it issues one collective per sample size on an otherwise idle
// cluster and records (bytes, latency). Profiling runs average away
// measurement noise, modeled by disabling the jitter amplitude. The returned
// curve maps per-rank payload bytes to latency in nanoseconds.
//
// Sampling is deterministic: the same (platform, group size, primitive,
// sizes) always yields the same curve, which is what lets independent
// replicas — and the engine's lazily sampled analytic backend — agree
// byte-for-byte without sharing state. It lives here rather than in the
// tuner because the execution engine's analytic backend needs it too, and
// the tuner sits above the engine.
func SampleCurve(plat hw.Platform, nGPUs int, prim hw.Primitive, sizes []int64) *stats.Curve {
	if len(sizes) == 0 {
		sizes = DefaultSampleSizes()
	}
	pts := make([]stats.Point, 0, len(sizes))
	quiet := plat
	quiet.JitterAmplitude = 0
	for _, size := range sizes {
		cluster := gpu.NewCluster(quiet, nGPUs)
		cm := New(cluster)
		perRank := make([]int64, nGPUs)
		for i := range perRank {
			perRank[i] = size
		}
		var latency sim.Time
		cm.Collective("probe", prim, perRank, nil).Wait(func(at sim.Time) { latency = at })
		cluster.Sim.Run()
		pts = append(pts, stats.Point{X: float64(size), Y: float64(latency)})
	}
	return stats.NewCurve(pts)
}

// DefaultSampleSizes returns log-spaced payload sizes from 16 KiB to 1 GiB,
// dense enough that interpolation error stays small across the Fig. 8 cliff.
func DefaultSampleSizes() []int64 {
	var out []int64
	for s := int64(16 << 10); s <= 1<<30; s *= 2 {
		out = append(out, s, s+s/2)
	}
	return out
}
