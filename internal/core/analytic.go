package core

import (
	"fmt"

	"repro/internal/sim"
	"repro/internal/stats"
)

// ExecAnalytic evaluates the compiled plan with the Algorithm 1 latency
// model instead of the event simulator: computation accumulates per wave
// group from the profiled GEMM duration, and each group's collective is
// looked up on the offline-sampled bandwidth curve (per-rank payload bytes
// to nanoseconds) and appended after max(compute-ready, previous comm).
// The arithmetic mirrors tuner.Predictor.Predict operation for operation,
// so the returned Latency is bit-identical to the predictor's estimate for
// the same (platform, shape, config, partition, imbalance) — the agreement
// the analytic sweep backend pins in tests.
//
// Analytic execution models timing only, and only at the compiled wave
// width: variants asking for functional data, tracing, device slowdowns, or
// a wave-size override are rejected rather than silently mispredicted. The
// seed is ignored (the model has no noise), and the imbalance factor scales
// every group's payload, matching how the predictor extends Alg. 1 for
// skewed All-to-All (§4.2.2).
func (c *Compiled) ExecAnalytic(v Variant, curve *stats.Curve) (*Result, error) {
	if curve == nil {
		return nil, fmt.Errorf("core: analytic execution needs a bandwidth curve")
	}
	if v.Fidelity != "" && v.Fidelity != FidelityAnalytic {
		return nil, fmt.Errorf("core: ExecAnalytic asked for fidelity %q", v.Fidelity)
	}
	if v.Functional {
		return nil, fmt.Errorf("core: analytic execution cannot produce functional data")
	}
	if v.Trace {
		return nil, fmt.Errorf("core: analytic execution has no kernel timeline to trace")
	}
	if len(v.DeviceSlowdown) != 0 {
		return nil, fmt.Errorf("core: analytic execution does not model device slowdowns")
	}
	if v.WaveSizeOverride != 0 || c.opts.WaveSizeOverride != 0 {
		return nil, fmt.Errorf("core: analytic execution models only the true wave width (override %d/%d)",
			v.WaveSizeOverride, c.opts.WaveSizeOverride)
	}
	imb := v.Imbalance
	if imb != 0 && imb < 1 {
		return nil, fmt.Errorf("core: imbalance factor %v < 1", imb)
	}
	if imb < 1 {
		imb = 1
	}

	t := c.plan.Waves(c.waveSize)
	gemmTime := c.cm.Duration(c.plan, c.waveSize)
	perWave := gemmTime / sim.Time(int64(t))
	tileBytes := c.plan.TileBytes()

	res := &Result{
		Plan:      c.plan,
		Partition: c.opts.Partition.Clone(),
		WaveSize:  c.waveSize,
		Waves:     t,
		GEMMEnd:   gemmTime,
		Groups:    make([]GroupTiming, len(c.bounds)),
		Fidelity:  FidelityAnalytic,
	}
	var accP, accM sim.Time
	for g, b := range c.bounds {
		accP += perWave * sim.Time(int64(b.WaveHi-b.WaveLo))
		bytes := float64(int64(b.Tiles())*tileBytes) * imb
		accM = sim.Max(accP, accM) + sim.Time(curve.Eval(bytes))
		res.Groups[g] = GroupTiming{
			Group:    g,
			Waves:    b.WaveHi - b.WaveLo,
			Tiles:    b.Tiles(),
			Bytes:    int64(bytes),
			SignalAt: accP,
			CommEnd:  accM,
		}
	}
	res.Latency = accM
	return res, nil
}
