package core

import (
	"context"
	"fmt"

	"repro/internal/gemm"
)

// Compiled is an immutable, reusable execution plan: everything Run derives
// from Options that depends only on the platform, group size, GEMM shape and
// configuration, primitive, partition, and wave-size override — the
// normalized options, the tile schedule, the cost model, and the wave-group
// bounds — hoisted out of the per-run path so that sweeps compile once and
// execute many times (the paper's offline/online split applied to our own
// harness). A Compiled is safe for concurrent use: every Exec builds a fresh
// simulator and cluster and never mutates the plan.
type Compiled struct {
	opts     Options // normalized copy; variant fields hold compile-time defaults
	plan     *gemm.Plan
	cm       gemm.CostModel
	trueSMs  int
	waveSize int
	bounds   []gemm.GroupBound
}

// Compile resolves and validates everything shape- and platform-dependent in
// o: defaults are filled (GEMM config, per-wave partition), the tile launch
// order is computed, and the partition is bound to tile-position ranges.
// The variant fields of o (Seed, Imbalance, Functional, Routing, Trace,
// DeviceSlowdown) are validated and retained as the plan's default variant.
func Compile(o Options) (*Compiled, error) {
	plan, waveSize, err := o.normalize()
	if err != nil {
		return nil, err
	}
	o.Partition = o.Partition.Clone() // callers may reuse their slice
	var bounds []gemm.GroupBound
	if o.WaveSizeOverride != 0 {
		bounds = o.Partition.BoundsClamped(plan, waveSize)
	} else {
		bounds = o.Partition.Bounds(plan, waveSize)
	}
	return &Compiled{
		opts:     o,
		plan:     plan,
		cm:       gemm.NewCostModel(o.Plat.GPU),
		trueSMs:  o.Plat.GPU.SMs - o.Plat.CommSMs,
		waveSize: waveSize,
		bounds:   bounds,
	}, nil
}

// Options returns the normalized options the plan was compiled from (config
// and partition defaults filled in).
func (c *Compiled) Options() Options { return c.opts }

// Plan exposes the resolved tile schedule.
func (c *Compiled) Plan() *gemm.Plan { return c.plan }

// WaveSize reports the assumed tiles-per-wave width of the compiled plan.
func (c *Compiled) WaveSize() int { return c.waveSize }

// Waves reports the plan's wave count at the compiled wave width.
func (c *Compiled) Waves() int { return c.plan.Waves(c.waveSize) }

// Variant holds the per-execution knobs: every Options field a fresh
// simulation may vary without invalidating a compiled plan. The zero value
// is a plain timing run; start from DefaultVariant to inherit the values the
// plan was compiled with.
type Variant struct {
	// Seed perturbs the functional input data.
	Seed uint64
	// Imbalance is the All-to-All max/mean load factor (0 or >= 1).
	Imbalance float64
	// WaveSizeOverride forces the counting thresholds to assume this wave
	// width instead of the compiled one (Fig. 14's misconfigured "mw").
	// 0 keeps the compiled width.
	WaveSizeOverride int
	// Functional enables real data computation; Routing is required for
	// functional AllToAll.
	Functional bool
	Routing    [][]int
	// Trace records kernel spans.
	Trace bool
	// DeviceSlowdown gives per-device GEMM slowdown factors (>= 1).
	DeviceSlowdown []float64
	// Fidelity selects the execution backend. Exec runs FidelityDES (and
	// the "" default); FidelityAnalytic must go through ExecAnalytic,
	// which needs the bandwidth curve Exec does not have.
	Fidelity Fidelity
}

// VariantOf extracts the per-execution knobs of o, leaving the plan-level
// fields to Compile.
func VariantOf(o Options) Variant {
	return Variant{
		Seed:             o.Seed,
		Imbalance:        o.Imbalance,
		WaveSizeOverride: o.WaveSizeOverride,
		Functional:       o.Functional,
		Routing:          o.Routing,
		Trace:            o.Trace,
		DeviceSlowdown:   o.DeviceSlowdown,
		Fidelity:         o.Fidelity,
	}
}

// DefaultVariant returns the variant captured at compile time, so
// c.Exec(c.DefaultVariant()) reproduces Run(o) exactly.
func (c *Compiled) DefaultVariant() Variant { return VariantOf(c.opts) }

// Exec runs one simulation of the compiled plan under the variant: a fresh
// simulator and cluster every time, so repeated and concurrent executions
// are independent and deterministic. ctx bounds the run: cancellation stops
// the simulation between events (wave retirements and kernel completions,
// never mid-kernel) and Exec returns ctx.Err().
func (c *Compiled) Exec(ctx context.Context, v Variant) (*Result, error) {
	if v.Fidelity == FidelityAnalytic {
		return nil, fmt.Errorf("core: analytic execution needs a bandwidth curve: use Compiled.ExecAnalytic or the engine's analytic backend")
	}
	o := c.opts
	o.Fidelity = v.Fidelity
	o.Seed = v.Seed
	o.Imbalance = v.Imbalance
	o.WaveSizeOverride = v.WaveSizeOverride
	o.Functional = v.Functional
	o.Routing = v.Routing
	o.Trace = v.Trace
	o.DeviceSlowdown = v.DeviceSlowdown
	if err := o.validateVariant(); err != nil {
		return nil, err
	}
	waveSize, bounds := c.waveSize, c.bounds
	if v.WaveSizeOverride != c.opts.WaveSizeOverride {
		var err error
		if waveSize, bounds, err = c.rebind(v.WaveSizeOverride); err != nil {
			return nil, err
		}
	}
	return execute(ctx, &o, c.plan, c.cm, bounds, waveSize, c.trueSMs)
}

// rebind recomputes the wave width and group bounds for an exec-time wave
// override that differs from the compiled one. The compiled partition is
// kept: overriding the width models mis-set counting thresholds, exactly
// like Options.WaveSizeOverride at compile time.
func (c *Compiled) rebind(override int) (int, []gemm.GroupBound, error) {
	if override == 0 {
		waveSize := c.trueSMs
		if err := c.opts.Partition.Validate(c.plan.Waves(waveSize)); err != nil {
			return 0, nil, err
		}
		return waveSize, c.opts.Partition.Bounds(c.plan, waveSize), nil
	}
	if override < 1 {
		return 0, nil, fmt.Errorf("core: invalid wave size override %d", override)
	}
	if c.opts.Partition.TotalWaves()*override < c.plan.Tiles {
		return 0, nil, fmt.Errorf("core: partition %v at wave size %d does not cover %d tiles",
			c.opts.Partition, override, c.plan.Tiles)
	}
	return override, c.opts.Partition.BoundsClamped(c.plan, override), nil
}
