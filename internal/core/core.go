package core

import (
	"fmt"

	"repro/internal/gemm"
	"repro/internal/gpu"
	"repro/internal/hw"
	"repro/internal/sim"
)

// Fidelity selects how an execution is evaluated: through the
// discrete-event simulator (the ground truth) or through the Algorithm 1
// analytic predictor over an offline-sampled bandwidth curve (orders of
// magnitude cheaper, ~2% mean error on the Fig. 15 shapes). Every Result
// carries the fidelity that produced it, so mixed-fidelity sweeps stay
// auditable after merging.
type Fidelity string

const (
	// FidelityDES is the discrete-event simulation path; the empty string
	// selects it too, keeping zero-valued Options on the ground-truth path.
	FidelityDES Fidelity = "des"
	// FidelityAnalytic evaluates the compiled plan with the Algorithm 1
	// predictor and a bandwidth curve, never touching the event simulator.
	FidelityAnalytic Fidelity = "analytic"
)

// known reports whether f names a fidelity the core can execute ("" means
// DES). The sweep planes layer a "mixed" mode on top, but that is a
// scheduling policy — every individual execution is DES or analytic.
func (f Fidelity) known() bool {
	return f == "" || f == FidelityDES || f == FidelityAnalytic
}

// Options configures one overlapped GEMM+collective execution.
type Options struct {
	// Plat is the hardware profile; NGPUs the parallel group size.
	Plat  hw.Platform
	NGPUs int
	// Shape is the per-GPU GEMM size (the paper reports per-GPU sizes).
	Shape gemm.Shape
	// Cfg optionally pins the GEMM configuration; zero value means
	// gemm.DefaultConfig (the CUTLASS-profiler choice).
	Cfg gemm.Config
	// Prim selects the communication primitive: AllReduce,
	// ReduceScatter, or AllToAll.
	Prim hw.Primitive
	// Partition is the wave-group partition; nil means one wave per
	// group (the untuned baseline of §4.1.1). Use the tuner for the
	// paper's searched partitions.
	Partition gemm.Partition
	// Functional enables real data computation and movement so the
	// output can be compared against a sequential reference. Timing-only
	// sweeps leave it false.
	Functional bool
	// Routing gives per-source token destinations for AllToAll; required
	// when Functional && Prim == AllToAll. Length NGPUs, each of length
	// Shape.M.
	Routing [][]int
	// Imbalance is the max/mean per-rank load factor used for AllToAll
	// timing when no routing is given (>= 1; 0 means balanced).
	Imbalance float64
	// Seed perturbs the functional input data.
	Seed uint64
	// WaveSizeOverride forces the runner to assume this many tiles per
	// wave instead of the available SM count. The paper's Fig. 14 uses a
	// deliberately misconfigured wave size (+20) to show that signaling
	// timing must match the hardware's true wave width.
	WaveSizeOverride int
	// Trace records kernel spans (Result.Trace) for timeline inspection.
	Trace bool
	// Fidelity selects the execution backend: FidelityDES (also the zero
	// value) or FidelityAnalytic. Analytic execution needs a bandwidth
	// curve, so it is reachable through Compiled.ExecAnalytic or the
	// engine's analytic backend, not through Run.
	Fidelity Fidelity
	// DeviceSlowdown optionally gives per-device GEMM slowdown factors
	// (>= 1), modeling thermal throttling or resource contention on part
	// of the group (§4.2.3). The wave pattern is preserved — the whole
	// schedule stretches — and collectives wait for the slowest rank.
	DeviceSlowdown []float64
}

// normalize fills defaults and validates; it returns the resolved plan and
// the wave width (tiles per wave).
func (o *Options) normalize() (*gemm.Plan, int, error) {
	if err := o.Plat.Validate(); err != nil {
		return nil, 0, err
	}
	if o.NGPUs < 2 {
		return nil, 0, fmt.Errorf("core: overlap needs >= 2 GPUs, got %d", o.NGPUs)
	}
	if o.Cfg == (gemm.Config{}) {
		o.Cfg = gemm.DefaultConfig(o.Shape)
	}
	plan, err := gemm.NewPlan(o.Shape, o.Cfg)
	if err != nil {
		return nil, 0, err
	}
	switch o.Prim {
	case hw.AllReduce:
	case hw.ReduceScatter:
		if o.Cfg.TileM%o.NGPUs != 0 {
			return nil, 0, fmt.Errorf("core: ReduceScatter needs TileM %% NGPUs == 0, got %d %% %d", o.Cfg.TileM, o.NGPUs)
		}
	case hw.AllToAll:
	default:
		return nil, 0, fmt.Errorf("core: unsupported primitive %v", o.Prim)
	}
	if err := o.validateVariant(); err != nil {
		return nil, 0, err
	}
	waveSize := o.Plat.GPU.SMs - o.Plat.CommSMs
	if o.WaveSizeOverride != 0 {
		if o.WaveSizeOverride < 1 {
			return nil, 0, fmt.Errorf("core: invalid wave size override %d", o.WaveSizeOverride)
		}
		waveSize = o.WaveSizeOverride
	}
	t := plan.Waves(waveSize)
	if o.Partition == nil {
		o.Partition = gemm.PerWave(t)
	}
	if o.WaveSizeOverride != 0 {
		// Misconfigured wave size (Fig. 14 "mw"): the partition was
		// tuned for the true wave width; thresholds just need to
		// cover the tiles. Bounds are clamped in the runner.
		if o.Partition.TotalWaves()*waveSize < plan.Tiles {
			return nil, 0, fmt.Errorf("core: partition %v at wave size %d does not cover %d tiles",
				o.Partition, waveSize, plan.Tiles)
		}
		return plan, waveSize, nil
	}
	if err := o.Partition.Validate(t); err != nil {
		return nil, 0, err
	}
	return plan, waveSize, nil
}

// validateVariant checks the per-execution knobs — the Options fields a
// Variant may replace on an already-compiled plan.
func (o *Options) validateVariant() error {
	if !o.Fidelity.known() {
		return fmt.Errorf("core: unknown fidelity %q (want %q or %q)", o.Fidelity, FidelityDES, FidelityAnalytic)
	}
	if o.Prim == hw.AllToAll && o.Functional && len(o.Routing) != o.NGPUs {
		return fmt.Errorf("core: functional AllToAll needs %d routing tables, got %d", o.NGPUs, len(o.Routing))
	}
	if o.Imbalance != 0 && o.Imbalance < 1 {
		return fmt.Errorf("core: imbalance factor %v < 1", o.Imbalance)
	}
	if len(o.DeviceSlowdown) != 0 {
		if len(o.DeviceSlowdown) != o.NGPUs {
			return fmt.Errorf("core: %d slowdown factors for %d GPUs", len(o.DeviceSlowdown), o.NGPUs)
		}
		for d, f := range o.DeviceSlowdown {
			if f < 1 {
				return fmt.Errorf("core: device %d slowdown %v < 1", d, f)
			}
		}
	}
	return nil
}

// GroupTiming records the simulated timeline of one wave group.
type GroupTiming struct {
	Group    int
	Waves    int
	Tiles    int
	Bytes    int64 // per-rank payload (max across ranks)
	SignalAt sim.Time
	CommEnd  sim.Time
}

// Result is the outcome of one overlapped execution.
type Result struct {
	Plan      *gemm.Plan
	Partition gemm.Partition
	WaveSize  int
	Waves     int
	// Latency is the operator-level latency: from launch to the
	// completion of the last group's communication.
	Latency sim.Time
	// GEMMEnd is when the compute kernel finished (max across devices).
	GEMMEnd sim.Time
	Groups  []GroupTiming
	// Fidelity names the backend that produced this result: FidelityDES
	// for a simulated timeline, FidelityAnalytic for an Algorithm 1
	// prediction. Always set, so merged mixed-fidelity sweeps stay
	// auditable per item.
	Fidelity Fidelity
	// Trace holds per-kernel spans when Options.Trace was set.
	Trace []gpu.Span

	funcState *funcState
}

// Speedup computes baseline/overlap from a baseline latency.
func (r *Result) Speedup(baseline sim.Time) float64 {
	return float64(baseline) / float64(r.Latency)
}
