// Package core implements FlashOverlap itself: the counting-table signaling
// mechanism, the overlapped GEMM+collective runner built on the simulated
// device/communication substrates, and the theoretical overlap bound used
// in §6.4. The runner is organized exactly like the paper's Fig. 5: one
// untouched GEMM kernel on a compute stream whose epilogue scatters tiles
// through a reorder mapping and bumps a counting table; a signaling kernel
// per wave group on the communication stream that polls the table and
// releases a plain collective-library call over the group's contiguous
// buffer range; and a post-communication reorder fused into the next
// element-wise kernel.
package core

import (
	"fmt"

	"repro/internal/gemm"
)

// CountingTable tracks per-group tile completion (§3.2.4): entry j counts
// finished tiles of wave group G_j; when it reaches |G_j| (in tiles), the
// group's completion callback runs — in the real system this is the moment
// the signaling kernel observes the threshold and releases the
// communication.
type CountingTable struct {
	bounds   []gemm.GroupBound
	counts   []int
	done     []bool
	seen     []bool
	groupOf  []int
	complete func(g int)
}

// NewCountingTable builds a table over contiguous group bounds; complete is
// invoked exactly once per group, in the call that fills it.
func NewCountingTable(bounds []gemm.GroupBound, complete func(g int)) *CountingTable {
	if len(bounds) == 0 {
		panic("core: counting table needs at least one group")
	}
	total := bounds[len(bounds)-1].PosHi
	ct := &CountingTable{
		bounds:   bounds,
		counts:   make([]int, len(bounds)),
		done:     make([]bool, len(bounds)),
		seen:     make([]bool, total),
		groupOf:  make([]int, total),
		complete: complete,
	}
	covered := 0
	for g, b := range bounds {
		if b.PosLo != covered || b.PosHi < b.PosLo {
			panic(fmt.Sprintf("core: group %d bounds [%d,%d) not contiguous after %d", g, b.PosLo, b.PosHi, covered))
		}
		for pos := b.PosLo; pos < b.PosHi; pos++ {
			ct.groupOf[pos] = g
		}
		covered = b.PosHi
	}
	return ct
}

// Groups reports the number of wave groups P.
func (ct *CountingTable) Groups() int { return len(ct.bounds) }

// Count reports the current count of group g.
func (ct *CountingTable) Count(g int) int { return ct.counts[g] }

// Complete reports whether group g has reached its threshold.
func (ct *CountingTable) Complete(g int) bool { return ct.done[g] }

// Add records completion of the tile at execution position pos — the
// atomicAdd the GEMM epilogue performs. Double counting a tile panics: it
// would release communication before the data is ready.
func (ct *CountingTable) Add(pos int) {
	if pos < 0 || pos >= len(ct.seen) {
		panic(fmt.Sprintf("core: tile position %d out of %d", pos, len(ct.seen)))
	}
	if ct.seen[pos] {
		panic(fmt.Sprintf("core: tile position %d counted twice", pos))
	}
	ct.seen[pos] = true
	g := ct.groupOf[pos]
	ct.counts[g]++
	if ct.counts[g] == ct.bounds[g].Tiles() {
		ct.done[g] = true
		if ct.complete != nil {
			ct.complete(g)
		}
	}
}

// AddRange records completion of positions [lo, hi) — used when a whole
// wave retires at once in the wave-granularity timing model.
func (ct *CountingTable) AddRange(lo, hi int) {
	for pos := lo; pos < hi; pos++ {
		ct.Add(pos)
	}
}
