package core

import (
	"testing"

	"repro/internal/gemm"
)

func boundsFor(t *testing.T, tiles, sms int, part gemm.Partition) []gemm.GroupBound {
	t.Helper()
	p, err := gemm.NewPlan(gemm.Shape{M: tiles, N: 1, K: 1}, gemm.Config{TileM: 1, TileN: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := part.Validate(p.Waves(sms)); err != nil {
		t.Fatal(err)
	}
	return part.Bounds(p, sms)
}

func TestCountingTableFiresAtThreshold(t *testing.T) {
	bounds := boundsFor(t, 8, 2, gemm.Partition{1, 2, 1}) // groups of 2,4,2 tiles
	var fired []int
	ct := NewCountingTable(bounds, func(g int) { fired = append(fired, g) })
	if ct.Groups() != 3 {
		t.Fatalf("Groups = %d", ct.Groups())
	}
	ct.Add(0)
	if len(fired) != 0 {
		t.Fatal("fired before threshold")
	}
	ct.Add(1)
	if len(fired) != 1 || fired[0] != 0 {
		t.Fatalf("fired = %v, want [0]", fired)
	}
	if !ct.Complete(0) || ct.Complete(1) {
		t.Fatal("completion flags wrong")
	}
	// Group 2 can complete before group 1 (out-of-order tile retirement
	// across groups is fine; the counting table is per-group).
	ct.Add(6)
	ct.Add(7)
	if len(fired) != 2 || fired[1] != 2 {
		t.Fatalf("fired = %v, want [0 2]", fired)
	}
	ct.AddRange(2, 6)
	if len(fired) != 3 || fired[2] != 1 {
		t.Fatalf("fired = %v, want [0 2 1]", fired)
	}
	if ct.Count(1) != 4 {
		t.Fatalf("Count(1) = %d", ct.Count(1))
	}
}

func TestCountingTableDoubleAddPanics(t *testing.T) {
	ct := NewCountingTable(boundsFor(t, 4, 2, gemm.Partition{2}), nil)
	ct.Add(0)
	defer func() {
		if recover() == nil {
			t.Error("double add did not panic")
		}
	}()
	ct.Add(0)
}

func TestCountingTableOutOfRangePanics(t *testing.T) {
	ct := NewCountingTable(boundsFor(t, 4, 2, gemm.Partition{2}), nil)
	defer func() {
		if recover() == nil {
			t.Error("out-of-range add did not panic")
		}
	}()
	ct.Add(4)
}

func TestCountingTableRejectsGappedBounds(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("gapped bounds did not panic")
		}
	}()
	NewCountingTable([]gemm.GroupBound{{PosLo: 1, PosHi: 3}}, nil)
}

func TestCountingTableEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("empty bounds did not panic")
		}
	}()
	NewCountingTable(nil, nil)
}
