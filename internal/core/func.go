package core

import (
	"fmt"

	"repro/internal/comm"
	"repro/internal/gemm"
	"repro/internal/hw"
	"repro/internal/reorder"
	"repro/internal/tensor"
)

// funcState holds the functional (real-data) side of an overlapped run:
// per-device operands, reorder layouts, and communication buffers.
type funcState struct {
	o      *Options
	plan   *gemm.Plan
	bounds []gemm.GroupBound
	n      int

	as, bs []*tensor.Matrix

	// AllReduce state.
	tm     *reorder.TileMapping
	arBufs []*tensor.Matrix

	// ReduceScatter state.
	sl             *reorder.SubtileLayout
	rsSend, rsRecv []*tensor.Matrix

	// AllToAll state.
	ex           *reorder.A2AExchange
	aSend, aRecv [][]float32
}

func newFuncState(o *Options, plan *gemm.Plan, bounds []gemm.GroupBound) (*funcState, error) {
	fs := &funcState{o: o, plan: plan, bounds: bounds, n: o.NGPUs}
	for d := 0; d < o.NGPUs; d++ {
		a := tensor.New(plan.Shape.M, plan.Shape.K)
		b := tensor.New(plan.Shape.K, plan.Shape.N)
		a.FillRand(o.Seed + uint64(2*d))
		b.FillRand(o.Seed + uint64(2*d+1))
		fs.as = append(fs.as, a)
		fs.bs = append(fs.bs, b)
	}
	switch o.Prim {
	case hw.AllReduce:
		fs.tm = reorder.NewTileMapping(plan)
		for d := 0; d < o.NGPUs; d++ {
			fs.arBufs = append(fs.arBufs, fs.tm.NewBuffer())
		}
	case hw.ReduceScatter:
		sl, err := reorder.NewSubtileLayout(plan, bounds, o.NGPUs)
		if err != nil {
			return nil, err
		}
		fs.sl = sl
		for d := 0; d < o.NGPUs; d++ {
			fs.rsSend = append(fs.rsSend, sl.NewSendBuffer())
			fs.rsRecv = append(fs.rsRecv, sl.NewRecvBuffer())
		}
	case hw.AllToAll:
		ex, err := reorder.NewA2AExchange(plan, bounds, o.Routing)
		if err != nil {
			return nil, err
		}
		fs.ex = ex
		for d := 0; d < o.NGPUs; d++ {
			fs.aSend = append(fs.aSend, ex.Layouts[d].NewSendBuffer())
			fs.aRecv = append(fs.aRecv, ex.NewRecvBuffer(d))
		}
	}
	return fs, nil
}

// epilogueGroup computes device d's tiles of group g and scatters them
// through the pre-communication reorder — the fused GEMM epilogue.
func (fs *funcState) epilogueGroup(d, g int) {
	b := fs.bounds[g]
	for pos := b.PosLo; pos < b.PosHi; pos++ {
		idx := fs.plan.Order[pos]
		tile := fs.plan.ComputeTile(fs.as[d], fs.bs[d], idx, nil)
		switch fs.o.Prim {
		case hw.AllReduce:
			fs.tm.ScatterTile(fs.arBufs[d], tile, idx)
		case hw.ReduceScatter:
			fs.sl.ScatterTile(fs.rsSend[d], tile, idx)
		case hw.AllToAll:
			fs.ex.Layouts[d].ScatterTile(fs.aSend[d], tile, idx)
		}
	}
}

// applyGroup performs group g's functional collective over the contiguous
// reordered ranges.
func (fs *funcState) applyGroup(g int) {
	switch fs.o.Prim {
	case hw.AllReduce:
		b := fs.bounds[g]
		views := make([]*tensor.Matrix, fs.n)
		for d := 0; d < fs.n; d++ {
			views[d] = fs.tm.SlotView(fs.arBufs[d], b.PosLo, b.PosHi)
		}
		comm.AllReduceData(views, views)
	case hw.ReduceScatter:
		src := make([]*tensor.Matrix, fs.n)
		dst := make([]*tensor.Matrix, fs.n)
		for d := 0; d < fs.n; d++ {
			src[d] = fs.sl.GroupSendView(fs.rsSend[d], g)
			dst[d] = fs.sl.GroupRecvView(fs.rsRecv[d], g)
		}
		comm.ReduceScatterData(src, dst)
	case hw.AllToAll:
		counts, soffs, roffs := fs.ex.GroupCounts(g)
		comm.AllToAllVData(fs.aSend, fs.aRecv, counts, soffs, roffs)
	}
}

// --- Result accessors for functional outputs ------------------------------

func (r *Result) requireFunc(p hw.Primitive) *funcState {
	if r.funcState == nil {
		panic("core: run was not functional")
	}
	if r.funcState.o.Prim != p {
		panic(fmt.Sprintf("core: run used %v, not %v", r.funcState.o.Prim, p))
	}
	return r.funcState
}

// InputA returns device d's A operand (for building references in tests).
func (r *Result) InputA(d int) *tensor.Matrix {
	if r.funcState == nil {
		panic("core: run was not functional")
	}
	return r.funcState.as[d]
}

// InputB returns device d's B operand.
func (r *Result) InputB(d int) *tensor.Matrix {
	if r.funcState == nil {
		panic("core: run was not functional")
	}
	return r.funcState.bs[d]
}

// AROutput materializes device d's AllReduce result in logical order via
// the post-communication reorder: an M x N matrix equal to sum_i(A_i*B_i).
func (r *Result) AROutput(d int) *tensor.Matrix {
	fs := r.requireFunc(hw.AllReduce)
	out := tensor.New(fs.plan.Shape.M, fs.plan.Shape.N)
	fs.tm.Gather(out, fs.arBufs[d])
	return out
}

// AROutputFusedRMSNorm materializes device d's AllReduce result through the
// RMSNorm-fused post-communication reorder.
func (r *Result) AROutputFusedRMSNorm(d int, weight []float32, eps float64) *tensor.Matrix {
	fs := r.requireFunc(hw.AllReduce)
	out := tensor.New(fs.plan.Shape.M, fs.plan.Shape.N)
	fs.tm.GatherFusedRMSNorm(out, fs.arBufs[d], weight, eps)
	return out
}

// RSLayout exposes the subtile layout (for GlobalRowOf row accounting).
func (r *Result) RSLayout() *reorder.SubtileLayout {
	fs := r.requireFunc(hw.ReduceScatter)
	return fs.sl
}

// RSLocal materializes device d's ReduceScatter share: an (M/NGPUs) x N
// block whose local row lr holds global row RSLayout().GlobalRowOf(d, lr)
// of the reduced matrix.
func (r *Result) RSLocal(d int) *tensor.Matrix {
	fs := r.requireFunc(hw.ReduceScatter)
	out := tensor.New(fs.sl.LocalRows(), fs.plan.Shape.N)
	fs.sl.Gather(out, fs.rsRecv[d])
	return out
}

// A2AExchangeLayout exposes the exchange metadata (reference building).
func (r *Result) A2AExchangeLayout() *reorder.A2AExchange {
	fs := r.requireFunc(hw.AllToAll)
	return fs.ex
}

// A2AOutput materializes device d's All-to-All result: its routed tokens
// stacked in (source, token) order, exactly as a vanilla exchange yields.
func (r *Result) A2AOutput(d int) *tensor.Matrix {
	fs := r.requireFunc(hw.AllToAll)
	out := tensor.New(fs.ex.TokensTo(d), fs.plan.Shape.N)
	fs.ex.Gather(d, out, fs.aRecv[d])
	return out
}
