package core

import (
	"context"
	"fmt"

	"repro/internal/comm"
	"repro/internal/gemm"
	"repro/internal/gpu"
	"repro/internal/hw"
	"repro/internal/sim"
)

// Run executes one FlashOverlap overlapped GEMM+collective on the simulated
// cluster and returns its timeline (and, when Options.Functional is set,
// the real data outputs for correctness checking).
//
// The execution follows Fig. 5:
//
//  1. every device runs a single GEMM kernel on its compute stream; its
//     epilogue scatters each finished tile through the reorder mapping and
//     bumps the counting table (modeled at wave granularity, since a wave's
//     tiles retire within ~5% of each other);
//  2. when group G_j's count reaches |G_j|, the device's signal fires; the
//     signaling kernel on the communication stream polls the table with the
//     platform's polling period and then releases group j's collective —
//     one plain library call over one contiguous buffer range;
//  3. the post-communication reorder is deferred to the consumer (fused
//     into the next element-wise kernel; see Result accessors and the
//     Table 5 overhead study).
//
// ctx bounds the execution: cancellation (or a deadline) stops the
// simulation at the next event boundary — between wave retirements and
// kernel completions, never mid-kernel — and Run returns ctx.Err().
func Run(ctx context.Context, o Options) (*Result, error) {
	c, err := Compile(o)
	if err != nil {
		return nil, err
	}
	return c.Exec(ctx, c.DefaultVariant())
}

// execute performs one simulation of a compiled plan. o is a private copy
// whose variant fields have already been validated; plan, cm, bounds and the
// wave widths come from the Compiled and are never mutated, so concurrent
// executions of one plan are safe. ctx cancellation aborts between simulator
// events and surfaces as ctx.Err().
func execute(ctx context.Context, o *Options, plan *gemm.Plan, cm gemm.CostModel, bounds []gemm.GroupBound, assumedWave, trueSMs int) (*Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	cluster := gpu.NewCluster(o.Plat, o.NGPUs)
	if o.Trace {
		cluster.EnableTrace()
	}
	com := comm.New(cluster)

	var fs *funcState
	if o.Functional {
		var err error
		fs, err = newFuncState(o, plan, bounds)
		if err != nil {
			return nil, err
		}
	}

	res := &Result{
		Plan:      plan,
		Partition: o.Partition.Clone(),
		WaveSize:  assumedWave,
		Waves:     plan.Waves(assumedWave),
		Groups:    make([]GroupTiming, len(bounds)),
		Fidelity:  FidelityDES,
		funcState: fs,
	}
	for g, b := range bounds {
		res.Groups[g] = GroupTiming{
			Group: g,
			Waves: b.WaveHi - b.WaveLo,
			Tiles: b.Tiles(),
		}
	}

	// Per-device, per-group ready signals driven by the counting tables.
	sigs := make([][]*gpu.Signal, o.NGPUs)
	for d := 0; d < o.NGPUs; d++ {
		sigs[d] = make([]*gpu.Signal, len(bounds))
		for g := range bounds {
			sigs[d][g] = gpu.NewSignal(cluster.Sim, fmt.Sprintf("dev%d/G%d", d, g))
		}
	}

	// Compute stream: one GEMM kernel per device. The per-device jitter
	// factor stretches the whole wave schedule coherently — thermal or
	// clock variance slows the kernel but preserves the wave pattern
	// (§4.2.3).
	for d, dev := range cluster.Devices {
		d := d
		dev := dev
		fsLocal := fs
		ct := NewCountingTable(bounds, func(g int) {
			if fsLocal != nil {
				fsLocal.epilogueGroup(d, g)
			}
			sigs[d][g].Fire()
		})
		jf := dev.JitterFactor()
		if len(o.DeviceSlowdown) != 0 {
			jf *= o.DeviceSlowdown[d]
		}
		scale := func(t sim.Time) sim.Time { return sim.Time(float64(t) * jf) }
		dur := scale(cm.Duration(plan, trueSMs))
		cs := gpu.NewStream(dev, "compute")
		cs.Launch(gpu.KernelSpec{
			Name: "gemm+epilogue",
			SMs:  trueSMs,
			Duration: func(*gpu.Device, sim.Time) sim.Time {
				return dur
			},
			OnStart: func(start sim.Time) {
				for _, b := range bounds {
					b := b
					// The group's tiles have all retired once
					// ceil(PosHi / trueSMs) true waves have
					// finished — with a misconfigured wave
					// size this is later than the group's
					// nominal boundary, which is exactly the
					// Fig. 14 "mw" degradation.
					wavesNeeded := (b.PosHi + trueSMs - 1) / trueSMs
					at := start + scale(cm.WaveEnd(plan, trueSMs, wavesNeeded-1))
					dev.Sim.At(at, func() {
						ct.AddRange(b.PosLo, b.PosHi)
					})
				}
			},
			OnComplete: func(end sim.Time) {
				if end > res.GEMMEnd {
					res.GEMMEnd = end
				}
			},
		})
	}

	// Communication stream: per group, a signaling wait then one
	// collective-library call. Enqueue order per stream is
	// wait(G1), coll(G1), wait(G2), coll(G2), ... — collectives of
	// consecutive groups serialize on the communication stream like the
	// paper's timeline.
	for g := range bounds {
		g := g
		for d := 0; d < o.NGPUs; d++ {
			com.Stream(d).WaitSignal(sigs[d][g], o.Plat.SignalPoll)
		}
		perRank := o.groupBytes(fs, plan, bounds, g)
		res.Groups[g].Bytes = maxInt64(perRank)
		done := com.Collective(fmt.Sprintf("%s/G%d", o.Prim.Short(), g+1), o.Prim, perRank, func() {
			if fs != nil {
				fs.applyGroup(g)
			}
		})
		done.Wait(func(at sim.Time) {
			res.Groups[g].CommEnd = at
			if at > res.Latency {
				res.Latency = at
			}
		})
	}

	if err := cluster.Sim.RunCtx(ctx); err != nil {
		return nil, err
	}

	// Collect signal times (max across devices, like the paper's
	// per-group release points).
	for g := range bounds {
		var worst sim.Time
		for d := 0; d < o.NGPUs; d++ {
			ok, at := sigs[d][g].Fired()
			if !ok {
				return nil, fmt.Errorf("core: group %d never signaled on device %d", g, d)
			}
			if at > worst {
				worst = at
			}
		}
		res.Groups[g].SignalAt = worst
	}
	if o.Trace {
		for _, d := range cluster.Devices {
			res.Trace = append(res.Trace, d.Trace...)
		}
	}
	return res, nil
}

// groupBytes resolves group g's per-rank payload.
func (o *Options) groupBytes(fs *funcState, plan *gemm.Plan, bounds []gemm.GroupBound, g int) []int64 {
	if o.Prim == hw.AllToAll && fs != nil {
		return fs.ex.GroupBytes(g)
	}
	bytes := int64(bounds[g].Tiles()) * plan.TileBytes()
	if o.Prim == hw.AllToAll && o.Imbalance > 1 {
		bytes = int64(float64(bytes) * o.Imbalance)
	}
	out := make([]int64, o.NGPUs)
	for i := range out {
		out[i] = bytes
	}
	return out
}

func maxInt64(xs []int64) int64 {
	var m int64
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}
