package core

import (
	"context"
	"testing"
	"testing/quick"

	"repro/internal/gemm"
	"repro/internal/hw"
	"repro/internal/tensor"
)

// testPlat is a shrunken RTX 4090 profile so small functional shapes still
// execute in multiple waves: 8 SMs, 2 reserved for communication.
func testPlat() hw.Platform {
	p := hw.RTX4090PCIe()
	p.GPU.SMs = 8
	p.CommSMs = 2
	return p
}

// smallOpts builds a functional run: 16x24x5 output with 4x8 tiles = 12
// tiles over 6 usable SMs = 2 waves.
func smallOpts(prim hw.Primitive, n int) Options {
	return Options{
		Plat:       testPlat(),
		NGPUs:      n,
		Shape:      gemm.Shape{M: 16, N: 24, K: 5},
		Cfg:        gemm.Config{TileM: 4, TileN: 8, Swizzle: 2},
		Prim:       prim,
		Functional: true,
		Seed:       7,
	}
}

// refSum computes sum_d(A_d * B_d) from the run's actual inputs.
func refSum(r *Result, n int) *tensor.Matrix {
	sum := tensor.New(r.Plan.Shape.M, r.Plan.Shape.N)
	for d := 0; d < n; d++ {
		c := tensor.New(r.Plan.Shape.M, r.Plan.Shape.N)
		gemm.ComputeReference(c, r.InputA(d), r.InputB(d), nil)
		sum.AddInPlace(c)
	}
	return sum
}

// The paper's claim C1: the overlapped result is mathematically equivalent
// to the non-overlap implementation ("all close"; exact here because the
// reduction order is preserved).
func TestAllReduceCorrectness(t *testing.T) {
	for _, n := range []int{2, 4} {
		o := smallOpts(hw.AllReduce, n)
		res, err := Run(context.Background(), o)
		if err != nil {
			t.Fatal(err)
		}
		want := refSum(res, n)
		for d := 0; d < n; d++ {
			got := res.AROutput(d)
			if !got.Equal(want) {
				t.Fatalf("n=%d dev %d: overlapped AllReduce differs, max diff %v", n, d, got.MaxDiff(want))
			}
		}
	}
}

func TestAllReduceCorrectnessAcrossPartitions(t *testing.T) {
	for _, part := range []gemm.Partition{{2}, {1, 1}} {
		o := smallOpts(hw.AllReduce, 2)
		o.Partition = part.Clone()
		res, err := Run(context.Background(), o)
		if err != nil {
			t.Fatal(err)
		}
		want := refSum(res, 2)
		if !res.AROutput(0).Equal(want) {
			t.Fatalf("partition %v: result differs", part)
		}
	}
}

func TestAllReduceFusedRMSNorm(t *testing.T) {
	o := smallOpts(hw.AllReduce, 2)
	res, err := Run(context.Background(), o)
	if err != nil {
		t.Fatal(err)
	}
	sum := refSum(res, 2)
	weight := make([]float32, o.Shape.N)
	for i := range weight {
		weight[i] = 1 + 0.25*float32(i%3)
	}
	want := tensor.New(o.Shape.M, o.Shape.N)
	tensor.RMSNorm(want, sum, weight, 1e-6)
	got := res.AROutputFusedRMSNorm(0, weight, 1e-6)
	if !got.AllClose(want, 1e-5, 1e-5) {
		t.Fatalf("fused RMSNorm differs, max diff %v", got.MaxDiff(want))
	}
}

func TestReduceScatterCorrectness(t *testing.T) {
	for _, n := range []int{2, 4} {
		o := smallOpts(hw.ReduceScatter, n)
		res, err := Run(context.Background(), o)
		if err != nil {
			t.Fatal(err)
		}
		sum := refSum(res, n)
		sl := res.RSLayout()
		for d := 0; d < n; d++ {
			local := res.RSLocal(d)
			for lr := 0; lr < local.Rows; lr++ {
				gr := sl.GlobalRowOf(d, lr)
				for c := 0; c < local.Cols; c++ {
					if local.At(lr, c) != sum.At(gr, c) {
						t.Fatalf("n=%d dev %d local row %d (global %d) col %d wrong", n, d, lr, gr, c)
					}
				}
			}
		}
	}
}

func TestAllToAllCorrectness(t *testing.T) {
	n := 2
	o := smallOpts(hw.AllToAll, n)
	o.Routing = make([][]int, n)
	for i := range o.Routing {
		o.Routing[i] = make([]int, o.Shape.M)
		for r := range o.Routing[i] {
			o.Routing[i][r] = (r + i) % n // deterministic mixed routing
		}
	}
	res, err := Run(context.Background(), o)
	if err != nil {
		t.Fatal(err)
	}
	fulls := make([]*tensor.Matrix, n)
	for d := 0; d < n; d++ {
		fulls[d] = tensor.New(o.Shape.M, o.Shape.N)
		gemm.ComputeReference(fulls[d], res.InputA(d), res.InputB(d), nil)
	}
	ex := res.A2AExchangeLayout()
	for d := 0; d < n; d++ {
		got := res.A2AOutput(d)
		want := ex.ReferenceOutput(d, fulls)
		if !got.Equal(want) {
			t.Fatalf("dev %d A2A output differs, max diff %v", d, got.MaxDiff(want))
		}
	}
}

func TestGroupTimelineOrdering(t *testing.T) {
	o := smallOpts(hw.AllReduce, 2)
	o.Partition = gemm.Partition{1, 1}
	res, err := Run(context.Background(), o)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Groups) != 2 {
		t.Fatalf("groups = %d", len(res.Groups))
	}
	g0, g1 := res.Groups[0], res.Groups[1]
	if g0.SignalAt <= 0 || g1.SignalAt <= g0.SignalAt {
		t.Fatalf("signal times not increasing: %v, %v", g0.SignalAt, g1.SignalAt)
	}
	if g0.CommEnd <= g0.SignalAt || g1.CommEnd <= g0.CommEnd {
		t.Fatalf("comm ends out of order: %+v %+v", g0, g1)
	}
	if res.Latency != g1.CommEnd {
		t.Fatalf("Latency %v != last group end %v", res.Latency, g1.CommEnd)
	}
	if res.GEMMEnd <= 0 || res.GEMMEnd > res.Latency {
		t.Fatalf("GEMMEnd %v outside (0, %v]", res.GEMMEnd, res.Latency)
	}
	// Group 1's communication can only start after its signal, and the
	// first group overlaps with the remaining computation.
	if g0.CommEnd >= res.Latency {
		t.Fatal("first group's communication did not overlap")
	}
}

// Overlap must beat sequential execution on a communication-heavy platform
// and realistic shape (the headline claim, Fig. 10).
func TestOverlapBeatsSerial(t *testing.T) {
	plat := hw.RTX4090PCIe()
	shape := gemm.Shape{M: 2048, N: 8192, K: 8192}
	plan, err := gemm.NewPlan(shape, gemm.DefaultConfig(shape))
	if err != nil {
		t.Fatal(err)
	}
	cm := gemm.NewCostModel(plat.GPU)
	serial := cm.Duration(plan, plat.GPU.SMs) +
		plat.Link.CollectiveTime(hw.AllReduce, float64(shape.OutputBytes()), 2)

	trueSMs := plat.GPU.SMs - plat.CommSMs
	tWaves := plan.Waves(trueSMs)
	res, err := Run(context.Background(), Options{
		Plat:      plat,
		NGPUs:     2,
		Shape:     shape,
		Prim:      hw.AllReduce,
		Partition: gemm.EqualSized(tWaves, 3),
	})
	if err != nil {
		t.Fatal(err)
	}
	sp := res.Speedup(serial)
	if sp < 1.1 {
		t.Fatalf("overlap speedup = %.3f (overlap %v vs serial %v), want > 1.1", sp, res.Latency, serial)
	}
	if sp > 2.0 {
		t.Fatalf("speedup %.3f implausibly high — paper caps at 1.65x", sp)
	}
}

// A misconfigured wave size (+20, as in Fig. 14) computes the counting
// thresholds with the wrong wave width, so group boundaries overshoot true
// wave boundaries: signals fire late and the carefully sized tail group is
// distorted. In the compute-bound regime the tuned partition keeps a small
// last group (short tail); the misconfiguration inflates it and must lose.
func TestMisconfiguredWaveSizeDegrades(t *testing.T) {
	plat := hw.A800NVLink()
	shape := gemm.Shape{M: 4096, N: 8192, K: 16384}
	trueSMs := plat.GPU.SMs - plat.CommSMs
	plan, err := gemm.NewPlan(shape, gemm.DefaultConfig(shape))
	if err != nil {
		t.Fatal(err)
	}
	tWaves := plan.Waves(trueSMs)
	// A head/tail-optimized partition like the tuner produces.
	part := gemm.Partition{1, tWaves - 3, 2}
	base := Options{Plat: plat, NGPUs: 2, Shape: shape, Prim: hw.AllReduce, Partition: part}
	good, err := Run(context.Background(), base)
	if err != nil {
		t.Fatal(err)
	}
	mis := base
	mis.Partition = part.Clone()
	mis.WaveSizeOverride = trueSMs + 20
	bad, err := Run(context.Background(), mis)
	if err != nil {
		t.Fatal(err)
	}
	if bad.Latency <= good.Latency {
		t.Fatalf("misconfigured wave size (%v) beat correct one (%v)", bad.Latency, good.Latency)
	}
	// The first group's signal must also fire strictly later: its
	// threshold overshoots the first true wave.
	if bad.Groups[0].SignalAt <= good.Groups[0].SignalAt {
		t.Fatalf("misconfigured first signal %v not delayed vs %v",
			bad.Groups[0].SignalAt, good.Groups[0].SignalAt)
	}
}

func TestTheoreticalBoundIsLowerBound(t *testing.T) {
	shapes := []gemm.Shape{
		{M: 2048, N: 8192, K: 8192},
		{M: 4096, N: 8192, K: 2048},
		{M: 8192, N: 8192, K: 12288},
	}
	for _, plat := range []hw.Platform{hw.RTX4090PCIe(), hw.A800NVLink()} {
		for _, s := range shapes {
			o := Options{Plat: plat, NGPUs: 4, Shape: s, Prim: hw.AllReduce}
			bound, err := TheoreticalBound(o)
			if err != nil {
				t.Fatal(err)
			}
			res, err := Run(context.Background(), o)
			if err != nil {
				t.Fatal(err)
			}
			if res.Latency < bound {
				t.Fatalf("%s %v: measured %v beat theoretical bound %v", plat.Name, s, res.Latency, bound)
			}
			// The tuned system reaches >50% of the bound even untuned.
			if float64(bound)/float64(res.Latency) < 0.3 {
				t.Fatalf("%s %v: only %.2f of bound — model badly off", plat.Name, s, float64(bound)/float64(res.Latency))
			}
		}
	}
}

func TestOptionsValidation(t *testing.T) {
	valid := smallOpts(hw.AllReduce, 2)
	cases := map[string]func(o Options) Options{
		"one-gpu":    func(o Options) Options { o.NGPUs = 1; return o },
		"allgather":  func(o Options) Options { o.Prim = hw.AllGather; return o },
		"bad-shape":  func(o Options) Options { o.Shape.M = 0; return o },
		"bad-part":   func(o Options) Options { o.Partition = gemm.Partition{99}; return o },
		"rs-divide":  func(o Options) Options { o.Prim = hw.ReduceScatter; o.NGPUs = 3; return o },
		"a2a-route":  func(o Options) Options { o.Prim = hw.AllToAll; return o },
		"imbalance":  func(o Options) Options { o.Imbalance = 0.5; return o },
		"wave-size":  func(o Options) Options { o.WaveSizeOverride = -3; return o },
		"tile-shape": func(o Options) Options { o.Cfg = gemm.Config{TileM: 5, TileN: 8}; return o },
	}
	for name, mut := range cases {
		if _, err := Run(context.Background(), mut(valid)); err == nil {
			t.Errorf("%s: invalid options accepted", name)
		}
	}
}

func TestRunDeterminism(t *testing.T) {
	o := Options{Plat: hw.RTX4090PCIe(), NGPUs: 4, Shape: gemm.Shape{M: 2048, N: 8192, K: 4096}, Prim: hw.AllReduce}
	a, err := Run(context.Background(), o)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(context.Background(), o)
	if err != nil {
		t.Fatal(err)
	}
	if a.Latency != b.Latency || a.GEMMEnd != b.GEMMEnd {
		t.Fatalf("runs differ: %v/%v vs %v/%v", a.Latency, a.GEMMEnd, b.Latency, b.GEMMEnd)
	}
}

func TestNonFunctionalAccessorsPanic(t *testing.T) {
	o := Options{Plat: hw.RTX4090PCIe(), NGPUs: 2, Shape: gemm.Shape{M: 2048, N: 8192, K: 4096}, Prim: hw.AllReduce}
	res, err := Run(context.Background(), o)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Error("AROutput on non-functional run did not panic")
		}
	}()
	res.AROutput(0)
}

func TestImbalancedA2ATakesLonger(t *testing.T) {
	base := Options{Plat: hw.RTX4090PCIe(), NGPUs: 4, Shape: gemm.Shape{M: 4096, N: 8192, K: 4096}, Prim: hw.AllToAll}
	bal, err := Run(context.Background(), base)
	if err != nil {
		t.Fatal(err)
	}
	hot := base
	hot.Imbalance = 1.8
	imb, err := Run(context.Background(), hot)
	if err != nil {
		t.Fatal(err)
	}
	if imb.Latency <= bal.Latency {
		t.Fatalf("imbalanced A2A (%v) should exceed balanced (%v)", imb.Latency, bal.Latency)
	}
}

// Property: for random small shapes, partitions, and rank counts, every
// primitive's functional output equals its sequential reference. This is
// the repository-wide C1 property test.
func TestFunctionalEquivalenceProperty(t *testing.T) {
	f := func(seed uint64, primPick, nPick, partPick uint8) bool {
		prim := []hw.Primitive{hw.AllReduce, hw.ReduceScatter, hw.AllToAll}[primPick%3]
		n := 2 + 2*int(nPick%2) // 2 or 4
		o := smallOpts(prim, n)
		o.Seed = seed
		if partPick%2 == 0 {
			o.Partition = gemm.Partition{1, 1}
		} else {
			o.Partition = gemm.Partition{2}
		}
		if prim == hw.AllToAll {
			o.Routing = make([][]int, n)
			for i := range o.Routing {
				o.Routing[i] = make([]int, o.Shape.M)
				for r := range o.Routing[i] {
					o.Routing[i][r] = int((seed + uint64(r*3+i)) % uint64(n))
				}
			}
		}
		res, err := Run(context.Background(), o)
		if err != nil {
			return false
		}
		switch prim {
		case hw.AllReduce:
			return res.AROutput(0).Equal(refSum(res, n))
		case hw.ReduceScatter:
			sum := refSum(res, n)
			sl := res.RSLayout()
			for d := 0; d < n; d++ {
				local := res.RSLocal(d)
				for lr := 0; lr < local.Rows; lr++ {
					gr := sl.GlobalRowOf(d, lr)
					for c := 0; c < local.Cols; c++ {
						if local.At(lr, c) != sum.At(gr, c) {
							return false
						}
					}
				}
			}
			return true
		default:
			fulls := make([]*tensor.Matrix, n)
			for d := 0; d < n; d++ {
				fulls[d] = tensor.New(o.Shape.M, o.Shape.N)
				gemm.ComputeReference(fulls[d], res.InputA(d), res.InputB(d), nil)
			}
			ex := res.A2AExchangeLayout()
			for d := 0; d < n; d++ {
				if !res.A2AOutput(d).Equal(ex.ReferenceOutput(d, fulls)) {
					return false
				}
			}
			return true
		}
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
