package core

import (
	"context"
	"testing"

	"repro/internal/gemm"
	"repro/internal/hw"
	"repro/internal/trace"
)

// §4.2.3: thermal throttling slows a device's GEMM but preserves the wave
// pattern; collectives rendezvous on the slowest rank.
func TestStragglerStretchesLatency(t *testing.T) {
	base := Options{Plat: hw.A800NVLink(), NGPUs: 4,
		Shape: gemm.Shape{M: 4096, N: 8192, K: 8192}, Prim: hw.AllReduce}
	even, err := Run(context.Background(), base)
	if err != nil {
		t.Fatal(err)
	}
	slow := base
	slow.DeviceSlowdown = []float64{1, 1, 1.3, 1}
	hot, err := Run(context.Background(), slow)
	if err != nil {
		t.Fatal(err)
	}
	if hot.Latency <= even.Latency {
		t.Fatalf("straggler run (%v) should exceed even run (%v)", hot.Latency, even.Latency)
	}
	// The first group's signal (max across devices) is pinned to the
	// throttled device.
	if hot.Groups[0].SignalAt <= even.Groups[0].SignalAt {
		t.Fatal("straggler should delay the group signal")
	}
}

func TestStragglerPreservesCorrectness(t *testing.T) {
	o := smallOpts(hw.AllReduce, 2)
	o.DeviceSlowdown = []float64{1, 1.5}
	res, err := Run(context.Background(), o)
	if err != nil {
		t.Fatal(err)
	}
	want := refSum(res, 2)
	for d := 0; d < 2; d++ {
		if !res.AROutput(d).Equal(want) {
			t.Fatalf("throttled run lost correctness on device %d", d)
		}
	}
}

func TestStragglerValidation(t *testing.T) {
	o := Options{Plat: hw.A800NVLink(), NGPUs: 2,
		Shape: gemm.Shape{M: 2048, N: 8192, K: 4096}, Prim: hw.AllReduce}
	o.DeviceSlowdown = []float64{1}
	if _, err := Run(context.Background(), o); err == nil {
		t.Error("wrong slowdown count accepted")
	}
	o.DeviceSlowdown = []float64{1, 0.5}
	if _, err := Run(context.Background(), o); err == nil {
		t.Error("sub-unity slowdown accepted")
	}
}

func TestTraceCapturesOverlap(t *testing.T) {
	o := Options{Plat: hw.RTX4090PCIe(), NGPUs: 2,
		Shape: gemm.Shape{M: 2048, N: 8192, K: 8192}, Prim: hw.AllReduce, Trace: true}
	plan, err := gemm.NewPlan(o.Shape, gemm.DefaultConfig(o.Shape))
	if err != nil {
		t.Fatal(err)
	}
	o.Partition = gemm.EqualSized(plan.Waves(o.Plat.GPU.SMs-o.Plat.CommSMs), 3)
	res, err := Run(context.Background(), o)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Trace) == 0 {
		t.Fatal("trace empty with Options.Trace set")
	}
	tl := trace.FromSpans(res.Trace)
	over := tl.OverlapTime(0, "compute", "comm")
	if over <= 0 {
		t.Fatal("no compute/communication overlap recorded in the trace")
	}
	// Most of the compute time should be covered by communication here
	// (comm-dominated shape).
	if float64(over) < 0.5*float64(tl.BusyTime(0, "compute")) {
		t.Fatalf("overlap %v too small vs compute busy %v", over, tl.BusyTime(0, "compute"))
	}
	// Without Trace, spans stay nil.
	o.Trace = false
	res2, err := Run(context.Background(), o)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Trace != nil {
		t.Fatal("trace populated without Options.Trace")
	}
}
