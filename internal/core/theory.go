package core

import (
	"repro/internal/gemm"
	"repro/internal/hw"
	"repro/internal/sim"
)

// TheoreticalBound computes the perfect-overlap latency of §6.4: if the
// GEMM dominates, the bound is the original GEMM latency plus the
// communication of only the final wave; if communication dominates, it is
// the GEMM latency of only the first wave plus the original communication
// latency. The bound assumes no SM contention, no bandwidth loss from
// segmentation, and zero signaling cost — the measured overlap latency can
// only approach it from above (Fig. 13c/d report the achieved ratio).
func TheoreticalBound(o Options) (sim.Time, error) {
	plan, _, err := o.normalize()
	if err != nil {
		return 0, err
	}
	cm := gemm.NewCostModel(o.Plat.GPU)
	fullSMs := o.Plat.GPU.SMs
	gemmTime := cm.Duration(plan, fullSMs)

	totalBytes := float64(plan.Shape.OutputBytes())
	if o.Prim == hw.AllToAll && o.Imbalance > 1 {
		totalBytes *= o.Imbalance
	}
	commTime := o.Plat.Link.CollectiveTime(o.Prim, totalBytes, o.NGPUs)

	if gemmTime >= commTime {
		lastWaveTiles := plan.Tiles - (plan.Waves(fullSMs)-1)*fullSMs
		lastBytes := float64(int64(lastWaveTiles) * plan.TileBytes())
		return gemmTime + o.Plat.Link.CollectiveTime(o.Prim, lastBytes, o.NGPUs), nil
	}
	firstWave := cm.WaveEnd(plan, fullSMs, 0)
	return firstWave + commTime, nil
}
