package engine

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/comm"
	"repro/internal/core"
	"repro/internal/hw"
	"repro/internal/stats"
)

// Fidelity re-exports core.Fidelity: callers configuring engine runs should
// not need a second import just for the label type.
type Fidelity = core.Fidelity

// The execution fidelities the engine dispatches on.
const (
	FidelityDES      = core.FidelityDES
	FidelityAnalytic = core.FidelityAnalytic
)

// Backend executes a compiled plan at one fidelity. The engine owns two:
// the DES backend runs the discrete-event simulator (ground truth), the
// analytic backend evaluates the Algorithm 1 predictor over an
// offline-sampled bandwidth curve without touching the simulator. Both are
// deterministic, so sweeps stay byte-reproducible at any fidelity mix.
type Backend interface {
	// Fidelity names the label stamped on results this backend produces.
	Fidelity() core.Fidelity
	// Exec runs one evaluation of the compiled plan under the variant.
	// ctx bounds the evaluation; a cancelled context stops a DES run
	// between simulator events and surfaces as ctx.Err().
	Exec(ctx context.Context, p *Plan, v core.Variant) (*core.Result, error)
}

// desBackend is the simulator path — the engine's historical behavior.
type desBackend struct{}

func (desBackend) Fidelity() core.Fidelity { return core.FidelityDES }
func (desBackend) Exec(ctx context.Context, p *Plan, v core.Variant) (*core.Result, error) {
	return p.c.Exec(ctx, v)
}

// analyticBackend evaluates plans with core.ExecAnalytic, resolving the
// bandwidth curve from the engine's per-(platform, group, primitive) cache.
// A single analytic evaluation is microseconds of pure arithmetic, so it
// ignores ctx; cancellation of analytic sweeps is enforced between items by
// Batch's per-claim check.
type analyticBackend struct{ e *Engine }

func (b analyticBackend) Fidelity() core.Fidelity { return core.FidelityAnalytic }
func (b analyticBackend) Exec(_ context.Context, p *Plan, v core.Variant) (*core.Result, error) {
	o := p.c.Options()
	return p.c.ExecAnalytic(v, b.e.curve(o.Plat, o.NGPUs, o.Prim))
}

// backend resolves the variant's fidelity to an execution backend; "" is
// DES, keeping zero-valued options on the ground-truth path.
func (e *Engine) backend(f core.Fidelity) (Backend, error) {
	switch f {
	case "", core.FidelityDES:
		return desBackend{}, nil
	case core.FidelityAnalytic:
		return analyticBackend{e: e}, nil
	}
	return nil, fmt.Errorf("engine: unknown fidelity %q", f)
}

// curveKey identifies one offline bandwidth curve. hw.Platform is a plain
// scalar struct, so the composite key is comparable.
type curveKey struct {
	plat  hw.Platform
	nGPUs int
	prim  hw.Primitive
}

// curveCache lazily samples and memoizes bandwidth curves. Sampling is
// deterministic (comm.SampleCurve with jitter disabled), so independent
// engines — one per replica across a fleet — converge on identical curves
// without coordination, and analytic results merge byte-identically no
// matter which engine evaluated them.
type curveCache struct {
	mu     sync.Mutex
	curves map[curveKey]*stats.Curve
}

// get returns the cached curve, sampling it on first use. The lock is held
// across sampling: a cold curve costs a few hundred simulated collectives
// once per (platform, group, primitive), and racing duplicates would waste
// exactly that work to produce an identical curve.
func (cc *curveCache) get(k curveKey) *stats.Curve {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	if c := cc.curves[k]; c != nil {
		return c
	}
	if cc.curves == nil {
		cc.curves = make(map[curveKey]*stats.Curve)
	}
	c := comm.SampleCurve(k.plat, k.nGPUs, k.prim, nil)
	cc.curves[k] = c
	return c
}

// seed installs a pre-sampled curve without sampling.
func (cc *curveCache) seed(k curveKey, c *stats.Curve) {
	if c == nil {
		return
	}
	cc.mu.Lock()
	defer cc.mu.Unlock()
	if cc.curves == nil {
		cc.curves = make(map[curveKey]*stats.Curve)
	}
	cc.curves[k] = c
}

// curve returns the engine's bandwidth curve for the triple, sampling
// lazily on first use.
func (e *Engine) curve(plat hw.Platform, nGPUs int, prim hw.Primitive) *stats.Curve {
	return e.curves.get(curveKey{plat: plat, nGPUs: nGPUs, prim: prim})
}

// SeedCurve installs a pre-sampled bandwidth curve for the analytic
// backend, skipping the lazy offline sampling for that (platform, group
// size, primitive). The serving layer seeds its engine from Config.Curves
// so one sampled curve feeds both the tuner and analytic execution; the
// curve must have been sampled on the same triple (with default sizes) or
// analytic results will diverge across the fleet.
func (e *Engine) SeedCurve(plat hw.Platform, nGPUs int, prim hw.Primitive, c *stats.Curve) {
	e.curves.seed(curveKey{plat: plat, nGPUs: nGPUs, prim: prim}, c)
}
