package engine

import (
	"container/list"
	"sync"
)

// planCache is a mutex-guarded LRU over compiled plans. Plans are immutable,
// so a cached plan may be handed to any number of concurrent executors; the
// lock only covers the recency bookkeeping.
type planCache struct {
	mu       sync.Mutex
	capacity int
	order    *list.List // front = most recently used; values are *cacheEntry
	byKey    map[Key]*list.Element
}

type cacheEntry struct {
	key  Key
	plan *Plan
}

func newPlanCache(capacity int) *planCache {
	if capacity < 1 {
		capacity = 1
	}
	return &planCache{
		capacity: capacity,
		order:    list.New(),
		byKey:    make(map[Key]*list.Element, capacity),
	}
}

func (c *planCache) get(k Key) *Plan {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.byKey[k]
	if !ok {
		return nil
	}
	c.order.MoveToFront(el)
	return el.Value.(*cacheEntry).plan
}

func (c *planCache) put(k Key, p *Plan) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byKey[k]; ok {
		// A concurrent compile of the same key won the race; keep the
		// incumbent (plans for one key are interchangeable).
		c.order.MoveToFront(el)
		return
	}
	c.byKey[k] = c.order.PushFront(&cacheEntry{key: k, plan: p})
	for c.order.Len() > c.capacity {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.byKey, oldest.Value.(*cacheEntry).key)
	}
}

func (c *planCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

func (c *planCache) cap() int { return c.capacity }
