// Package engine is the compiled-plan execution layer of the harness: it
// splits an overlapped GEMM+collective run into an offline Compile step and
// an online Exec step, mirroring the paper's own two-stage tuning design
// (§4: profile and plan once per shape, then reuse the plan for every
// execution of that shape).
//
// The three entry points form a pipeline:
//
//   - Compile(core.Options) resolves everything shape- and
//     platform-dependent — normalized options, the tile launch order, the
//     GEMM cost model, the wave-group partition bounds — into an immutable
//     *Plan that is safe for concurrent reuse.
//   - Exec(plan, variant) runs one simulation of a compiled plan against a
//     fresh simulator and cluster, varying only the per-run knobs (seed,
//     imbalance, wave-size override, functional data, tracing).
//   - Engine.Batch fans a slice of runs across a bounded worker pool with
//     deterministic result ordering (results[i] always answers runs[i],
//     regardless of worker count), deduplicating compilation through an LRU
//     plan cache keyed on (Platform, NGPUs, Shape, Cfg, Prim, Partition,
//     WaveSizeOverride).
//
// The sweep loops of the tuner, the experiment harness, and the workload
// evaluator all go through Batch/Exec, which turns every sweep from
// O(runs x rebuild) serial work into O(unique plans) compilation plus
// parallel execution. Results are byte-identical to serial core.Run calls:
// each execution owns a private discrete-event simulator whose tie-breaking
// is deterministic, so worker scheduling cannot leak into the outputs.
package engine

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/gemm"
	"repro/internal/hw"
	"repro/internal/metrics"
)

// Key identifies a compiled plan: every Options field that shapes the plan
// itself, with defaults resolved the same way core.Compile resolves them.
// Variant fields (seed, imbalance, functional data, tracing, slowdowns) are
// deliberately absent — they vary per execution on one cached plan.
type Key struct {
	Plat             hw.Platform
	NGPUs            int
	Shape            gemm.Shape
	Cfg              gemm.Config
	Prim             hw.Primitive
	Partition        string
	WaveSizeOverride int
}

// keyOf derives the cache key from options without paying for a full
// compile. The config default matches core's normalization exactly; a nil
// partition keys as the per-wave default.
func keyOf(o core.Options) Key {
	cfg := o.Cfg
	if cfg == (gemm.Config{}) {
		cfg = gemm.DefaultConfig(o.Shape)
	}
	part := "per-wave"
	if o.Partition != nil {
		part = o.Partition.String()
	}
	return Key{
		Plat:             o.Plat,
		NGPUs:            o.NGPUs,
		Shape:            o.Shape,
		Cfg:              cfg,
		Prim:             o.Prim,
		Partition:        part,
		WaveSizeOverride: o.WaveSizeOverride,
	}
}

// Plan is an immutable compiled execution plan plus its cache identity.
// Concurrent Exec calls on one Plan are safe.
type Plan struct {
	Key Key
	c   *core.Compiled
}

// Compile builds a plan outside any cache (the cold path; Engine.Plan is the
// cached equivalent). Plans are fidelity-neutral: the same compiled plan
// backs DES and analytic executions, so the fidelity is stripped before
// compiling (it is a variant knob, like the seed).
func Compile(o core.Options) (*Plan, error) {
	o.Fidelity = ""
	c, err := core.Compile(o)
	if err != nil {
		return nil, err
	}
	return &Plan{Key: keyOf(o), c: c}, nil
}

// Compiled exposes the underlying core plan.
func (p *Plan) Compiled() *core.Compiled { return p.c }

// Exec runs one simulation of the plan under the variant. ctx cancellation
// stops the simulation between events and returns ctx.Err().
func (p *Plan) Exec(ctx context.Context, v core.Variant) (*core.Result, error) {
	return p.c.Exec(ctx, v)
}

// Exec runs one simulation of a compiled plan — the online half of the
// Compile/Exec split.
func Exec(ctx context.Context, p *Plan, v core.Variant) (*core.Result, error) {
	return p.c.Exec(ctx, v)
}

// DefaultCacheSize bounds the default engine's plan cache. A Table 3 grid
// crossed with GPU counts and tuned partitions stays well under this, so
// full-figure sweeps compile each unique plan once.
const DefaultCacheSize = 512

// Engine executes simulation runs through a bounded worker pool and an LRU
// plan cache. The zero value is not ready; use New or Default.
type Engine struct {
	workers int
	cache   *planCache
	// curves backs the analytic fidelity: one lazily sampled (or seeded)
	// bandwidth curve per (platform, group size, primitive).
	curves curveCache

	// reg registers the plan-cache counters under the exact keys the Stats
	// snapshot exports them as.
	reg          *metrics.Registry
	hits, misses *metrics.Counter
}

// New builds an engine with the given worker-pool width and plan-cache
// capacity. workers <= 0 selects GOMAXPROCS; cacheSize <= 0 selects
// DefaultCacheSize.
func New(workers, cacheSize int) *Engine {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if cacheSize <= 0 {
		cacheSize = DefaultCacheSize
	}
	reg := metrics.NewRegistry()
	return &Engine{
		workers: workers,
		cache:   newPlanCache(cacheSize),
		reg:     reg,
		hits:    reg.Counter("hits"),
		misses:  reg.Counter("misses"),
	}
}

var (
	defaultOnce sync.Once
	defaultEng  *Engine
)

// Default returns the process-wide shared engine (GOMAXPROCS workers,
// DefaultCacheSize plans). The sweep harnesses all share it so plans cached
// by one figure generator are reused by the next.
func Default() *Engine {
	defaultOnce.Do(func() { defaultEng = New(0, 0) })
	return defaultEng
}

// Workers reports the pool width Batch fans across.
func (e *Engine) Workers() int { return e.workers }

// Plan returns the compiled plan for o, compiling on a cache miss. Two
// options values that differ only in variant fields share one cached plan.
func (e *Engine) Plan(o core.Options) (*Plan, error) {
	k := keyOf(o)
	if p := e.cache.get(k); p != nil {
		e.hits.Add(1)
		return p, nil
	}
	e.misses.Add(1)
	p, err := Compile(o)
	if err != nil {
		return nil, err
	}
	e.cache.put(k, p)
	return p, nil
}

// Exec runs o through the plan cache: compile (or reuse) the plan, then
// execute o's variant on the backend its Fidelity selects. It is the
// drop-in replacement for core.Run in sweep loops. ctx cancellation aborts
// a DES execution between simulator events and surfaces as ctx.Err().
func (e *Engine) Exec(ctx context.Context, o core.Options) (*core.Result, error) {
	p, err := e.Plan(o)
	if err != nil {
		return nil, err
	}
	return e.ExecPlan(ctx, p, core.VariantOf(o))
}

// ExecPlan executes one variant of an already-compiled plan, dispatching on
// the variant's fidelity: DES (the default) simulates, analytic evaluates
// the Algorithm 1 predictor against the engine's bandwidth-curve cache.
func (e *Engine) ExecPlan(ctx context.Context, p *Plan, v core.Variant) (*core.Result, error) {
	b, err := e.backend(v.Fidelity)
	if err != nil {
		return nil, err
	}
	return b.Exec(ctx, p, v)
}

// RunError is the error Batch returns: the failing run's input index plus
// the underlying cause. Callers that re-batch subsets of a larger grid (the
// sharded sweep driver) unwrap it to translate the local index back to a
// global one.
type RunError struct {
	Index int
	Err   error
}

func (e *RunError) Error() string { return fmt.Sprintf("engine: run %d: %v", e.Index, e.Err) }
func (e *RunError) Unwrap() error { return e.Err }

// Batch executes every run across the worker pool and returns the results
// in input order: results[i] answers runs[i] no matter how many workers
// execute or in which order they finish. On failure the lowest-index error
// is returned as a *RunError (also independent of scheduling), so error
// behavior matches a serial loop that stops at the first failing run.
//
// ctx cancellation stops the batch between items: workers check ctx before
// claiming each run (and the in-flight runs abort between simulator
// events), and a cancelled batch returns the bare ctx.Err() — not a
// *RunError, because cancellation names no failing run.
func (e *Engine) Batch(ctx context.Context, runs []core.Options) ([]*core.Result, error) {
	results := make([]*core.Result, len(runs))
	errs := make([]error, len(runs))
	workers := e.workers
	if workers > len(runs) {
		workers = len(runs)
	}
	if workers <= 1 {
		for i := range runs {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			if results[i], errs[i] = e.Exec(ctx, runs[i]); errs[i] != nil {
				if ctxErr := ctx.Err(); ctxErr != nil {
					return nil, ctxErr
				}
				return nil, &RunError{Index: i, Err: errs[i]}
			}
		}
		return results, nil
	}
	var next atomic.Int64
	next.Store(-1)
	var failed atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				// Fail fast: once any run errors (or the context is
				// done), stop claiming new indices. A claimed index
				// always executes (checking failed after claiming could
				// skip an index below the failing one), and claims are
				// issued in increasing order, so every index below a
				// failing one records its result — the lowest-index
				// error stays deterministic.
				if failed.Load() || ctx.Err() != nil {
					return
				}
				i := int(next.Add(1))
				if i >= len(runs) {
					return
				}
				if results[i], errs[i] = e.Exec(ctx, runs[i]); errs[i] != nil {
					failed.Store(true)
				}
			}
		}()
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	for i, err := range errs {
		if err != nil {
			return nil, &RunError{Index: i, Err: err}
		}
	}
	return results, nil
}

// CacheStats reports plan-cache effectiveness since the engine was built.
func (e *Engine) CacheStats() (hits, misses uint64, size int) {
	return e.hits.Load(), e.misses.Load(), e.cache.len()
}

// Stats is a point-in-time snapshot of an engine's plan-cache counters, in a
// form a serving layer can embed directly in a JSON status endpoint.
type Stats struct {
	Hits   uint64 `json:"hits"`
	Misses uint64 `json:"misses"`
	Size   int    `json:"size"`
	// Capacity is the LRU bound; Size <= Capacity always holds.
	Capacity int `json:"capacity"`
	// Workers is the pool width Batch fans across.
	Workers int `json:"workers"`
}

// Add accumulates another engine's snapshot into this one — the merge a
// shard router performs when it aggregates replica /stats. Size, Capacity,
// and Workers sum too: across disjoint replicas they read as fleet totals.
// The snapshot is plain mergeable state, so the generic snapshot merge
// applies: every numeric field sums, including any added later.
func (s Stats) Add(o Stats) Stats {
	return metrics.MergeSnapshots(s, o)
}

// Stats snapshots the plan-cache counters. Hits and misses are read
// independently, so a snapshot taken under concurrent load is approximate
// (each counter is itself exact).
func (e *Engine) Stats() Stats {
	return Stats{
		Hits:     e.hits.Load(),
		Misses:   e.misses.Load(),
		Size:     e.cache.len(),
		Capacity: e.cache.cap(),
		Workers:  e.workers,
	}
}
