package engine

import (
	"context"
	"fmt"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/gemm"
	"repro/internal/hw"
)

// testPlatform shrinks the RTX 4090 profile so small matrices still span
// multiple waves and the DES runs stay fast under -race.
func testPlatform() hw.Platform {
	plat := hw.RTX4090PCIe()
	plat.GPU.SMs = 8
	plat.CommSMs = 2
	return plat
}

// shapeGrid builds a mixed grid: shapes x primitives x partitions x group
// sizes, including functional runs whose outputs depend on real data.
func shapeGrid() []core.Options {
	plat := testPlatform()
	cfg := gemm.Config{TileM: 8, TileN: 8, Swizzle: 2}
	var runs []core.Options
	i := 0
	for _, shape := range []gemm.Shape{
		{M: 32, N: 48, K: 9},
		{M: 48, N: 32, K: 7},
		{M: 64, N: 64, K: 11},
		{M: 32, N: 32, K: 5},
	} {
		for _, prim := range []hw.Primitive{hw.AllReduce, hw.ReduceScatter, hw.AllToAll} {
			n := 2 + 2*(i%2)
			o := core.Options{
				Plat: plat, NGPUs: n, Shape: shape, Cfg: cfg, Prim: prim,
				Seed: uint64(100 + i),
			}
			if prim == hw.AllToAll {
				o.Imbalance = 1.2
			} else {
				// Functional AllReduce/ReduceScatter runs: their
				// results carry real output data into the fingerprint.
				o.Functional = true
			}
			runs = append(runs, o)
			i++
		}
	}
	return runs
}

// fingerprint renders everything observable about a result to one string,
// including functional output bytes, so "byte-identical" is checkable with
// plain string comparison.
func fingerprint(r *core.Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "lat=%d gemmEnd=%d waveSize=%d waves=%d part=%s tiles=%d\n",
		r.Latency, r.GEMMEnd, r.WaveSize, r.Waves, r.Partition, r.Plan.Tiles)
	for _, g := range r.Groups {
		fmt.Fprintf(&b, "g%d w=%d t=%d bytes=%d sig=%d end=%d\n",
			g.Group, g.Waves, g.Tiles, g.Bytes, g.SignalAt, g.CommEnd)
	}
	return b.String()
}

func functionalFingerprint(o core.Options, r *core.Result) string {
	if !o.Functional {
		return ""
	}
	switch o.Prim {
	case hw.AllReduce:
		return fmt.Sprint(r.AROutput(0).Data)
	case hw.ReduceScatter:
		return fmt.Sprint(r.RSLocal(0).Data)
	}
	return ""
}

// TestBatchMatchesSerial is the determinism contract: Batch over a shape
// grid returns byte-identical results to serial core.Run calls, for every
// worker count. The simulator's (time, insertion-order) tie-breaking makes
// this exact, not approximate.
func TestBatchMatchesSerial(t *testing.T) {
	runs := shapeGrid()
	want := make([]string, len(runs))
	for i, o := range runs {
		res, err := core.Run(context.Background(), o)
		if err != nil {
			t.Fatalf("serial run %d: %v", i, err)
		}
		want[i] = fingerprint(res) + functionalFingerprint(o, res)
	}
	for _, workers := range []int{1, 2, 4, 8, 32} {
		e := New(workers, 0)
		results, err := e.Batch(context.Background(), runs)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(results) != len(runs) {
			t.Fatalf("workers=%d: %d results for %d runs", workers, len(results), len(runs))
		}
		for i, res := range results {
			got := fingerprint(res) + functionalFingerprint(runs[i], res)
			if got != want[i] {
				t.Errorf("workers=%d run %d diverged from serial core.Run:\ngot:\n%s\nwant:\n%s",
					workers, i, got, want[i])
			}
		}
	}
}

// TestBatchReusesPlans populates the cache with one batch of unique runs,
// then re-batches the grid twice over: the second pass must be pure cache
// hits. (The unique first pass keeps the miss count exact — concurrent
// compiles of one key can double-count misses by design, but only when the
// same key is in flight twice, which unique runs rule out.)
func TestBatchReusesPlans(t *testing.T) {
	runs := shapeGrid()
	e := New(4, 0)
	if _, err := e.Batch(context.Background(), runs); err != nil {
		t.Fatal(err)
	}
	_, misses, size := e.CacheStats()
	if int(misses) != len(runs) {
		t.Errorf("misses = %d, want %d (one compile per unique plan)", misses, len(runs))
	}
	if size != len(runs) {
		t.Errorf("cache size = %d, want %d", size, len(runs))
	}
	doubled := append(append([]core.Options{}, runs...), runs...)
	if _, err := e.Batch(context.Background(), doubled); err != nil {
		t.Fatal(err)
	}
	hits, missesAfter, _ := e.CacheStats()
	if missesAfter != misses {
		t.Errorf("misses grew to %d on a fully cached batch, want %d", missesAfter, misses)
	}
	if hits < uint64(len(doubled)) {
		t.Errorf("hits = %d, want >= %d", hits, len(doubled))
	}
}

// TestBatchErrorIsLowestIndex: the reported failure must be the same one a
// serial loop would hit first, regardless of worker count.
func TestBatchErrorIsLowestIndex(t *testing.T) {
	runs := shapeGrid()
	runs[3].NGPUs = 1 // compile error: overlap needs >= 2 GPUs
	runs[7].NGPUs = 0 // a later error that must not win
	for _, workers := range []int{1, 8} {
		e := New(workers, 0)
		_, err := e.Batch(context.Background(), runs)
		if err == nil {
			t.Fatalf("workers=%d: expected error", workers)
		}
		if !strings.Contains(err.Error(), "run 3:") {
			t.Errorf("workers=%d: error %q does not name run 3", workers, err)
		}
	}
}

// TestExecVariantOnCachedPlan compiles one plan and executes variants that
// differ only in per-run knobs; each must match the equivalent core.Run.
func TestExecVariantOnCachedPlan(t *testing.T) {
	plat := testPlatform()
	base := core.Options{
		Plat: plat, NGPUs: 2, Shape: gemm.Shape{M: 64, N: 64, K: 8},
		Cfg: gemm.Config{TileM: 8, TileN: 8, Swizzle: 2}, Prim: hw.AllReduce,
	}
	trueSMs := plat.GPU.SMs - plat.CommSMs
	// Pin the partition: a wave-size override re-derives the per-wave
	// default otherwise, which is a different plan, not a variant.
	gp, err := gemm.NewPlan(base.Shape, base.Cfg)
	if err != nil {
		t.Fatal(err)
	}
	base.Partition = gemm.PerWave(gp.Waves(trueSMs))
	plan, err := Compile(base)
	if err != nil {
		t.Fatal(err)
	}

	// Timing variant with a misconfigured wave size, against core.Run.
	mis := base
	mis.WaveSizeOverride = trueSMs + 3
	want, err := core.Run(context.Background(), mis)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Exec(context.Background(), plan, core.Variant{WaveSizeOverride: trueSMs + 3})
	if err != nil {
		t.Fatal(err)
	}
	if fingerprint(got) != fingerprint(want) {
		t.Errorf("wave-override variant diverged:\ngot:\n%s\nwant:\n%s", fingerprint(got), fingerprint(want))
	}

	// Functional variant on the same compiled plan.
	fun := base
	fun.Functional = true
	fun.Seed = 77
	wantF, err := core.Run(context.Background(), fun)
	if err != nil {
		t.Fatal(err)
	}
	gotF, err := Exec(context.Background(), plan, core.Variant{Functional: true, Seed: 77})
	if err != nil {
		t.Fatal(err)
	}
	if !gotF.AROutput(0).Equal(wantF.AROutput(0)) {
		t.Error("functional variant output differs from core.Run")
	}
}

// TestCacheEviction: an engine with a tiny cache must evict least-recently
// used plans and stay within capacity.
func TestCacheEviction(t *testing.T) {
	runs := shapeGrid()[:3]
	e := New(1, 2)
	for _, o := range runs {
		if _, err := e.Exec(context.Background(), o); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, size := e.CacheStats(); size != 2 {
		t.Fatalf("cache size = %d, want capacity 2", size)
	}
	// runs[0] was evicted; re-running it must miss, then re-running
	// runs[2] (still resident) must hit.
	_, missesBefore, _ := e.CacheStats()
	if _, err := e.Exec(context.Background(), runs[0]); err != nil {
		t.Fatal(err)
	}
	if _, misses, _ := e.CacheStats(); misses != missesBefore+1 {
		t.Error("expected a miss after eviction of the oldest plan")
	}
	hitsBefore, _, _ := e.CacheStats()
	if _, err := e.Exec(context.Background(), runs[2]); err != nil {
		t.Fatal(err)
	}
	if hits, _, _ := e.CacheStats(); hits != hitsBefore+1 {
		t.Error("expected a hit for the most recently used plan")
	}
}

// TestKeySeparatesPlans: options differing in any plan-level field must not
// share a cache entry, while variant-only differences must.
func TestKeySeparatesPlans(t *testing.T) {
	base := core.Options{
		Plat: testPlatform(), NGPUs: 2, Shape: gemm.Shape{M: 32, N: 32, K: 4},
		Cfg: gemm.Config{TileM: 8, TileN: 8, Swizzle: 2}, Prim: hw.AllReduce,
	}
	variantOnly := base
	variantOnly.Seed = 999
	variantOnly.Trace = true
	if keyOf(base) != keyOf(variantOnly) {
		t.Error("variant fields leaked into the plan key")
	}
	for name, mutate := range map[string]func(*core.Options){
		"ngpus":     func(o *core.Options) { o.NGPUs = 4 },
		"shape":     func(o *core.Options) { o.Shape.M = 64 },
		"cfg":       func(o *core.Options) { o.Cfg.Swizzle = 3 },
		"prim":      func(o *core.Options) { o.Prim = hw.ReduceScatter },
		"partition": func(o *core.Options) { o.Partition = gemm.SingleGroup(o.Shape.M * o.Shape.N / 64 / 6) },
		"wave":      func(o *core.Options) { o.WaveSizeOverride = 9 },
		"platform":  func(o *core.Options) { o.Plat.CommSMs = 3 },
	} {
		other := base
		mutate(&other)
		if keyOf(base) == keyOf(other) {
			t.Errorf("%s: plan-level difference produced identical keys", name)
		}
	}
}

// TestStatsSnapshot: the Stats snapshot must agree with CacheStats and
// report the configured bounds.
func TestStatsSnapshot(t *testing.T) {
	runs := shapeGrid()
	e := New(3, 7)
	if _, err := e.Batch(context.Background(), runs); err != nil {
		t.Fatal(err)
	}
	hits, misses, size := e.CacheStats()
	s := e.Stats()
	if s.Hits != hits || s.Misses != misses || s.Size != size {
		t.Errorf("Stats %+v disagrees with CacheStats (%d, %d, %d)", s, hits, misses, size)
	}
	if s.Capacity != 7 {
		t.Errorf("capacity = %d, want 7", s.Capacity)
	}
	if s.Workers != 3 {
		t.Errorf("workers = %d, want 3", s.Workers)
	}
	if s.Size > s.Capacity {
		t.Errorf("size %d exceeds capacity %d", s.Size, s.Capacity)
	}
}
