package engine

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/gemm"
	"repro/internal/sim"
)

// Mixed-fidelity sweep defaults.
const (
	// DefaultTopK is how many candidates per rank cell the mixed sweep
	// confirms on the simulator. One suffices when the analytic model's
	// ~2% error is small against the latency spread inside a cell, which
	// holds at DefaultRankQuantum granularity on the Table 3 grids.
	DefaultTopK = 1
	// DefaultRankQuantum is the rank-cell edge in log2 units — 8x coarser
	// than the shard ownership lattice (shard.DefaultQuantum), because
	// ranking wants cells with several competing candidates while
	// ownership wants cells fine enough to keep caches disjoint.
	DefaultRankQuantum = 4.0
)

// RankTopK groups items by the quantized (log2 M·N, log2 K) cell of their
// shape and returns the global indices of the k analytically fastest items
// of every cell, ascending — the candidate set a mixed-fidelity sweep
// re-runs at DES fidelity. Ties break toward the lower index, and cells
// with at most k items are taken whole, so the selection is deterministic
// and independent of how the grid was sharded. k <= 0 selects DefaultTopK;
// quantum <= 0 selects DefaultRankQuantum.
func RankTopK(shapes []gemm.Shape, latencies []sim.Time, k int, quantum float64) []int {
	if len(shapes) != len(latencies) {
		panic("engine: RankTopK shape/latency length mismatch")
	}
	if k <= 0 {
		k = DefaultTopK
	}
	if quantum <= 0 {
		quantum = DefaultRankQuantum
	}
	type cell struct{ qx, qy int64 }
	byCell := make(map[cell][]int)
	for i, s := range shapes {
		qx, qy := s.LogCell(quantum)
		c := cell{qx, qy}
		byCell[c] = append(byCell[c], i)
	}
	var refine []int
	for _, idxs := range byCell {
		sort.Slice(idxs, func(a, b int) bool {
			if latencies[idxs[a]] != latencies[idxs[b]] {
				return latencies[idxs[a]] < latencies[idxs[b]]
			}
			return idxs[a] < idxs[b]
		})
		take := k
		if take > len(idxs) {
			take = len(idxs)
		}
		refine = append(refine, idxs[:take]...)
	}
	sort.Ints(refine)
	return refine
}

// MixedBatch is the mixed-fidelity sweep over one engine: the whole grid
// runs analytically first (orders of magnitude cheaper than simulation),
// the candidates are ranked per RankTopK cell, and only the top k per cell
// re-run through the simulator, splicing the DES results over the analytic
// ones. results[i] answers runs[i] with a fidelity label saying which tier
// produced it; refined lists the indices that got DES confirmation,
// ascending. The DES tier is byte-identical to a full-DES Batch restricted
// to the same indices — refinement changes which items pay for simulation,
// never what a simulation returns.
//
// Fidelity labels already present on runs are an error: the split is the
// policy MixedBatch itself implements.
//
// ctx cancellation stops whichever tier is running between items (see
// Batch) and returns the bare ctx.Err().
func (e *Engine) MixedBatch(ctx context.Context, runs []core.Options, topK int, quantum float64) (results []*core.Result, refined []int, err error) {
	for i, o := range runs {
		if o.Fidelity != "" {
			return nil, nil, &RunError{Index: i, Err: fmt.Errorf("engine: mixed batch run carries fidelity %q; the mixed policy assigns fidelities itself", o.Fidelity)}
		}
	}
	analytic := make([]core.Options, len(runs))
	for i, o := range runs {
		o.Fidelity = core.FidelityAnalytic
		analytic[i] = o
	}
	results, err = e.Batch(ctx, analytic)
	if err != nil {
		return nil, nil, err
	}
	shapes := make([]gemm.Shape, len(runs))
	latencies := make([]sim.Time, len(runs))
	for i, r := range results {
		shapes[i] = runs[i].Shape
		latencies[i] = r.Latency
	}
	refined = RankTopK(shapes, latencies, topK, quantum)
	des := make([]core.Options, len(refined))
	for j, gi := range refined {
		o := runs[gi]
		o.Fidelity = core.FidelityDES
		des[j] = o
	}
	desResults, err := e.Batch(ctx, des)
	if err != nil {
		// Translate the refine-batch index back to the caller's grid.
		var re *RunError
		if errors.As(err, &re) && re.Index >= 0 && re.Index < len(refined) {
			err = &RunError{Index: refined[re.Index], Err: re.Err}
		}
		return nil, nil, err
	}
	for j, gi := range refined {
		results[gi] = desResults[j]
	}
	return results, refined, nil
}
