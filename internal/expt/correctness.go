package expt

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/gemm"
	"repro/internal/hw"
	"repro/internal/tensor"
)

// CorrectnessCase is one randomized equivalence check (artifact experiment
// E1, claim C1: the overlapped result is mathematically equivalent to the
// non-overlap implementation).
type CorrectnessCase struct {
	Prim     hw.Primitive
	NGPUs    int
	Shape    gemm.Shape
	MaxDiff  float64
	AllClose bool
}

// Correctness runs randomized functional checks for all three primitives on
// a shrunken platform (so small matrices still span multiple waves) and
// compares every output element against a sequential reference.
func Correctness(ctx context.Context, cases int) ([]CorrectnessCase, error) {
	plat := hw.RTX4090PCIe()
	plat.GPU.SMs = 8
	plat.CommSMs = 2
	if cases <= 0 {
		cases = 10
	}
	prims := []hw.Primitive{hw.AllReduce, hw.ReduceScatter, hw.AllToAll}
	// The functional runs are independent; execute them as one batch and
	// verify the outputs serially below.
	runs := make([]core.Options, 0, cases)
	for i := 0; i < cases; i++ {
		prim := prims[i%len(prims)]
		n := 2 + 2*((i/3)%2) // 2 or 4 GPUs
		shape := gemm.Shape{M: 16 + 16*(i%3), N: 24 + 8*(i%2), K: 5 + i%7}
		o := core.Options{
			Plat:       plat,
			NGPUs:      n,
			Shape:      shape,
			Cfg:        gemm.Config{TileM: 8, TileN: 8, Swizzle: 2},
			Prim:       prim,
			Functional: true,
			Seed:       uint64(1000 + i),
		}
		if prim == hw.AllToAll {
			o.Routing = make([][]int, n)
			for d := range o.Routing {
				o.Routing[d] = make([]int, shape.M)
				for r := range o.Routing[d] {
					o.Routing[d][r] = (r*7 + d + i) % n
				}
			}
		}
		runs = append(runs, o)
	}
	results, err := engine.Default().Batch(ctx, runs)
	if err != nil {
		return nil, err
	}
	var out []CorrectnessCase
	for i, res := range results {
		o := runs[i]
		prim, n, shape := o.Prim, o.NGPUs, o.Shape
		cc := CorrectnessCase{Prim: prim, NGPUs: n, Shape: shape}
		switch prim {
		case hw.AllReduce:
			want := tensor.New(shape.M, shape.N)
			for d := 0; d < n; d++ {
				c := tensor.New(shape.M, shape.N)
				gemm.ComputeReference(c, res.InputA(d), res.InputB(d), nil)
				want.AddInPlace(c)
			}
			got := res.AROutput(0)
			cc.MaxDiff = got.MaxDiff(want)
		case hw.ReduceScatter:
			want := tensor.New(shape.M, shape.N)
			for d := 0; d < n; d++ {
				c := tensor.New(shape.M, shape.N)
				gemm.ComputeReference(c, res.InputA(d), res.InputB(d), nil)
				want.AddInPlace(c)
			}
			sl := res.RSLayout()
			for d := 0; d < n && cc.MaxDiff == 0; d++ {
				local := res.RSLocal(d)
				for lr := 0; lr < local.Rows; lr++ {
					gr := sl.GlobalRowOf(d, lr)
					for col := 0; col < local.Cols; col++ {
						diff := float64(local.At(lr, col) - want.At(gr, col))
						if diff < 0 {
							diff = -diff
						}
						if diff > cc.MaxDiff {
							cc.MaxDiff = diff
						}
					}
				}
			}
		case hw.AllToAll:
			fulls := make([]*tensor.Matrix, n)
			for d := 0; d < n; d++ {
				fulls[d] = tensor.New(shape.M, shape.N)
				gemm.ComputeReference(fulls[d], res.InputA(d), res.InputB(d), nil)
			}
			ex := res.A2AExchangeLayout()
			for d := 0; d < n; d++ {
				diff := res.A2AOutput(d).MaxDiff(ex.ReferenceOutput(d, fulls))
				if diff > cc.MaxDiff {
					cc.MaxDiff = diff
				}
			}
		}
		cc.AllClose = cc.MaxDiff == 0
		out = append(out, cc)
	}
	return out, nil
}

// FormatCorrectness renders the E1 correctness report.
func FormatCorrectness(cases []CorrectnessCase) string {
	var b strings.Builder
	b.WriteString("E1 — correctness vs. non-overlap reference (claim C1)\n\n")
	var rows [][]string
	pass := 0
	for _, c := range cases {
		verdict := "all close"
		if !c.AllClose {
			verdict = fmt.Sprintf("FAIL (max diff %g)", c.MaxDiff)
		} else {
			pass++
		}
		rows = append(rows, []string{c.Prim.String(), fmt.Sprint(c.NGPUs), c.Shape.String(), verdict})
	}
	b.WriteString(Table([]string{"primitive", "GPUs", "shape", "verdict"}, rows))
	fmt.Fprintf(&b, "\n%d/%d cases all close\n", pass, len(cases))
	return b.String()
}
