package expt

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"repro/internal/workload"
)

// CSV writers so the figures can be re-plotted outside this repository.
// Each writer emits a header row and one record per data point.

// WriteFig3CSV emits (series, index, completion_ms, wave) rows.
func WriteFig3CSV(w io.Writer, r *Fig3Result) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"series", "index", "completion_ms", "wave"}); err != nil {
		return err
	}
	emit := func(series string, pts []Fig3Point) error {
		for _, p := range pts {
			if err := cw.Write([]string{
				series,
				strconv.Itoa(p.Index),
				formatFloat(p.Completion.Millis()),
				strconv.Itoa(p.Wave),
			}); err != nil {
				return err
			}
		}
		return nil
	}
	if err := emit("without_reorder", r.WithoutReorder); err != nil {
		return err
	}
	if err := emit("with_reorder", r.WithReorder); err != nil {
		return err
	}
	cw.Flush()
	return cw.Error()
}

// WriteFig8CSV emits (platform, bytes, bandwidth_gbps) rows.
func WriteFig8CSV(w io.Writer, series []Fig8Series) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"platform", "bytes", "bandwidth_gbps"}); err != nil {
		return err
	}
	for _, s := range series {
		for _, p := range s.Points {
			if err := cw.Write([]string{
				s.Platform,
				formatFloat(p.X),
				formatFloat(p.Y / 1e9),
			}); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteOperatorCSV emits per-case speedups (Fig. 10/11/16 data).
func WriteOperatorCSV(w io.Writer, cases []OperatorCase) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"platform", "primitive", "gpus", "m", "n", "k", "method", "speedup"}); err != nil {
		return err
	}
	for _, c := range cases {
		for _, m := range sortedKeys(c.Speedups) {
			if err := cw.Write([]string{
				c.Plat, c.Prim.Short(), strconv.Itoa(c.NGPUs),
				strconv.Itoa(c.Shape.M), strconv.Itoa(c.Shape.N), strconv.Itoa(c.Shape.K),
				m, formatFloat(c.Speedups[m]),
			}); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteFig12CSV emits end-to-end and per-operator rows.
func WriteFig12CSV(w io.Writer, results []workload.E2EResult) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"model", "setting", "operator", "speedup"}); err != nil {
		return err
	}
	for _, r := range results {
		if err := cw.Write([]string{r.Model, r.Setting, "e2e", formatFloat(r.Speedup)}); err != nil {
			return err
		}
		for _, op := range r.Ops {
			if err := cw.Write([]string{r.Model, r.Setting, op.Name, formatFloat(op.Speedup)}); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteFig13CSV emits heatmap cells.
func WriteFig13CSV(w io.Writer, panels []Fig13Panel) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"platform", "primitive", "gpus", "m", "k", "speedup", "theory_ratio"}); err != nil {
		return err
	}
	for _, p := range panels {
		for _, row := range p.Cells {
			for _, c := range row {
				if err := cw.Write([]string{
					p.Plat, p.Prim.Short(), strconv.Itoa(p.NGPUs),
					strconv.Itoa(c.Shape.M), strconv.Itoa(c.Shape.K),
					formatFloat(c.Speedup), formatFloat(c.TheoryRatio),
				}); err != nil {
					return err
				}
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteFig15CSV emits the raw error samples (one per combination) so the
// CDF can be re-plotted.
func WriteFig15CSV(w io.Writer, results []Fig15Result) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"platform", "error_pct"}); err != nil {
		return err
	}
	for _, r := range results {
		for _, e := range r.ErrorsPct {
			if err := cw.Write([]string{r.Plat, formatFloat(e)}); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

func formatFloat(v float64) string {
	return fmt.Sprintf("%g", v)
}
