package expt

import (
	"bytes"
	"context"
	"encoding/csv"
	"strconv"
	"testing"
)

// parseCSV reads the emitted bytes back and checks the header.
func parseCSV(t *testing.T, buf *bytes.Buffer, wantHeader string) [][]string {
	t.Helper()
	records, err := csv.NewReader(buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(records) < 2 {
		t.Fatalf("only %d records", len(records))
	}
	if records[0][0] != wantHeader {
		t.Fatalf("header = %v", records[0])
	}
	return records
}

func TestWriteFig3CSV(t *testing.T) {
	r, err := Fig3()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteFig3CSV(&buf, r); err != nil {
		t.Fatal(err)
	}
	records := parseCSV(t, &buf, "series")
	if len(records) != 1+2*r.Tiles {
		t.Fatalf("records = %d, want %d", len(records), 1+2*r.Tiles)
	}
	// Completion values must parse as floats.
	if _, err := strconv.ParseFloat(records[1][2], 64); err != nil {
		t.Fatal(err)
	}
}

func TestWriteFig8CSV(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFig8CSV(&buf, Fig8()); err != nil {
		t.Fatal(err)
	}
	records := parseCSV(t, &buf, "platform")
	if len(records) < 20 {
		t.Fatalf("records = %d", len(records))
	}
}

func TestWriteOperatorCSV(t *testing.T) {
	cases, err := Fig16(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteOperatorCSV(&buf, cases); err != nil {
		t.Fatal(err)
	}
	records := parseCSV(t, &buf, "platform")
	// 16 cases x >= 2 methods (FlashOverlap + decomposition).
	if len(records) < 1+16*2 {
		t.Fatalf("records = %d", len(records))
	}
	for _, rec := range records[1:] {
		if len(rec) != 8 {
			t.Fatalf("bad record %v", rec)
		}
		if _, err := strconv.ParseFloat(rec[7], 64); err != nil {
			t.Fatalf("speedup %q not a float", rec[7])
		}
	}
}

func TestWriteFig13CSV(t *testing.T) {
	panels, err := Fig13(context.Background(), true)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteFig13CSV(&buf, panels); err != nil {
		t.Fatal(err)
	}
	records := parseCSV(t, &buf, "platform")
	if len(records) != 1+2*9 { // two 3x3 quick panels
		t.Fatalf("records = %d", len(records))
	}
}

func TestWriteFig15CSV(t *testing.T) {
	results, err := Fig15(context.Background(), false)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteFig15CSV(&buf, results); err != nil {
		t.Fatal(err)
	}
	records := parseCSV(t, &buf, "platform")
	want := 1 + len(results[0].ErrorsPct) + len(results[1].ErrorsPct)
	if len(records) != want {
		t.Fatalf("records = %d, want %d", len(records), want)
	}
}
