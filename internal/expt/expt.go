// Package expt is the experiment harness: every table and figure of the
// paper's evaluation has a generator here that runs the simulator and
// formats the same rows/series the paper reports. cmd/experiments and the
// root-level benchmarks are thin wrappers over these functions.
//
// Absolute numbers are synthetic (the substrate is a simulator); what the
// harness reproduces is the shape of each result — who wins, by what
// factor, where crossovers fall. EXPERIMENTS.md records paper-vs-measured
// for each.
package expt

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/gemm"
	"repro/internal/hw"
)

// ShapeGrid is one cell of Table 3: the GEMM sizes an operator-level
// experiment sweeps for a (platform, primitive) pair.
type ShapeGrid struct {
	Plat   hw.Platform
	Prim   hw.Primitive
	Shapes []gemm.Shape
}

// Table3Grids returns the operator-evaluation shape grids of Table 3.
// M·N ranges are in Mi-elements and K in Ki, matching the table; each range
// is sampled at three points per axis. quick keeps one K per M·N for fast
// runs (tests, benchmarks).
func Table3Grids(quick bool) []ShapeGrid {
	build := func(ms []int, ks []int) []gemm.Shape {
		var out []gemm.Shape
		for i, m := range ms {
			for j, k := range ks {
				if quick && j != i%len(ks) {
					continue
				}
				out = append(out, gemm.Shape{M: m, N: 8192, K: k})
			}
		}
		return out
	}
	a800 := hw.A800NVLink()
	rtx := hw.RTX4090PCIe()
	return []ShapeGrid{
		// A800: AR/RS with M·N 64-256 Mi, K 2-8 Ki.
		{Plat: a800, Prim: hw.AllReduce, Shapes: build([]int{8192, 16384, 32768}, []int{2048, 4096, 8192})},
		{Plat: a800, Prim: hw.ReduceScatter, Shapes: build([]int{8192, 16384, 32768}, []int{2048, 4096, 8192})},
		// A800: A2A with M·N 16-400 Mi, K 4-8 Ki.
		{Plat: a800, Prim: hw.AllToAll, Shapes: build([]int{2048, 16384, 51200}, []int{4096, 8192})},
		// RTX 4090: AR/RS with M·N 16-64 Mi, K 8-16 Ki.
		{Plat: rtx, Prim: hw.AllReduce, Shapes: build([]int{2048, 4096, 8192}, []int{8192, 12288, 16384})},
		{Plat: rtx, Prim: hw.ReduceScatter, Shapes: build([]int{2048, 4096, 8192}, []int{8192, 12288, 16384})},
		// RTX 4090: A2A with M·N 4-68 Mi, K 8-16 Ki.
		{Plat: rtx, Prim: hw.AllToAll, Shapes: build([]int{512, 4096, 8704}, []int{8192, 16384})},
	}
}

// GPUCounts are the parallel-group sizes of the operator evaluation.
var GPUCounts = []int{2, 4, 8}

// Table renders rows as a fixed-width text table.
func Table(header []string, rows [][]string) string {
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, r := range rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(header)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, r := range rows {
		writeRow(r)
	}
	return b.String()
}

// sortedKeys returns map keys in sorted order for deterministic output.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
