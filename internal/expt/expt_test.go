package expt

import (
	"context"
	"strings"
	"testing"

	"repro/internal/hw"
)

func TestTable3GridsShapes(t *testing.T) {
	grids := Table3Grids(false)
	if len(grids) != 6 {
		t.Fatalf("grids = %d, want 6 (2 platforms x 3 primitives)", len(grids))
	}
	for _, g := range grids {
		if len(g.Shapes) == 0 {
			t.Fatalf("%s/%s: empty grid", g.Plat.Name, g.Prim)
		}
		for _, s := range g.Shapes {
			if s.Validate() != nil || s.M%128 != 0 || s.N%128 != 0 {
				t.Fatalf("%s/%s: bad shape %v", g.Plat.Name, g.Prim, s)
			}
		}
	}
	quick := Table3Grids(true)
	for i, g := range quick {
		if len(g.Shapes) >= len(grids[i].Shapes) {
			t.Fatalf("quick grid %d not smaller", i)
		}
	}
}

func TestTableRendering(t *testing.T) {
	out := Table([]string{"a", "bb"}, [][]string{{"1", "2"}, {"333", "4"}})
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("table lines = %d, want 4", len(lines))
	}
	if !strings.Contains(lines[1], "---") {
		t.Fatalf("missing separator: %q", lines[1])
	}
}

func TestFig3WavePattern(t *testing.T) {
	r, err := Fig3()
	if err != nil {
		t.Fatal(err)
	}
	// Paper: 512 tiles in 4 waves on 128 SMs.
	if r.Tiles != 512 || r.Waves != 4 {
		t.Fatalf("tiles=%d waves=%d, want 512/4", r.Tiles, r.Waves)
	}
	// Intra-wave spread stays within ~5% of a wave (§3.2.3).
	if r.IntraWaveSpreadPct > 5.5 {
		t.Fatalf("intra-wave spread %.1f%%, want <= ~5%%", r.IntraWaveSpreadPct)
	}
	// Without reordering the completion order disagrees with tile index
	// (swizzling); with reordering the slot index is exactly monotone.
	misordered := 0
	for i := 1; i < len(r.WithoutReorder); i++ {
		if r.WithoutReorder[i].Index < r.WithoutReorder[i-1].Index {
			misordered++
		}
	}
	if misordered == 0 {
		t.Fatal("swizzled completion order should be misaligned with tile index")
	}
	for i := 1; i < len(r.WithReorder); i++ {
		if r.WithReorder[i].Index != i {
			t.Fatalf("reordered slot %d holds index %d", i, r.WithReorder[i].Index)
		}
		// The staircase is monotone at wave granularity (points scatter
		// within a wave's ~5% completion band, as in the paper's plot).
		if r.WithReorder[i].Wave < r.WithReorder[i-1].Wave {
			t.Fatal("reordered slots must walk waves in order")
		}
	}
	if !strings.Contains(r.Format(), "wave") {
		t.Fatal("Format output empty")
	}
}

func TestFig4Fractions(t *testing.T) {
	rows, err := Fig4()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("rows = %d, want 5 workloads (prefill + decode + 3)", len(rows))
	}
	for _, r := range rows {
		var sum float64
		for _, f := range r.Fractions {
			if f < 0 || f > 1 {
				t.Fatalf("%s: fraction %v out of range", r.Model, f)
			}
			sum += f
		}
		if sum < 0.999 || sum > 1.001 {
			t.Fatalf("%s: fractions sum to %v", r.Model, sum)
		}
	}
	if !strings.Contains(FormatFig4(rows), "GEMM+") {
		t.Fatal("format output missing patterns")
	}
}

func TestFig8Cliff(t *testing.T) {
	series := Fig8()
	if len(series) != 2 {
		t.Fatalf("series = %d", len(series))
	}
	for _, s := range series {
		if len(s.Points) < 10 {
			t.Fatalf("%s: too few points", s.Platform)
		}
		first, last := s.Points[0], s.Points[len(s.Points)-1]
		if first.Y >= last.Y/5 {
			t.Fatalf("%s: no sharp degradation (%.2f vs %.2f GB/s)", s.Platform, first.Y/1e9, last.Y/1e9)
		}
		if s.Knee <= 0 {
			t.Fatalf("%s: knee not found", s.Platform)
		}
	}
	if !strings.Contains(FormatFig8(series), "GB/s") {
		t.Fatal("format output empty")
	}
}

func TestFig10QuickGrid(t *testing.T) {
	groups, cases, err := Fig10(context.Background(), true)
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) != 6 {
		t.Fatalf("groups = %d, want 6 in quick mode", len(groups))
	}
	for _, g := range groups {
		fo, ok := g.PerM[MethodFlashOverlap]
		if !ok {
			t.Fatalf("%s/%s: missing FlashOverlap", g.Plat, g.Prim)
		}
		if fo.Mean < 0.9 || fo.Mean > 1.8 {
			t.Fatalf("%s/%s n=%d: FlashOverlap mean speedup %.2f out of plausible band", g.Plat, g.Prim, g.NGPUs, fo.Mean)
		}
		// FlashOverlap's average must beat vanilla decomposition's.
		if vd, ok := g.PerM[MethodVanillaDecmp]; ok && fo.Mean < vd.Mean {
			t.Errorf("%s/%s n=%d: FlashOverlap (%.2f) below decomposition (%.2f)", g.Plat, g.Prim, g.NGPUs, fo.Mean, vd.Mean)
		}
		// ...and edge out FLUX on average (FLUX still wins individual
		// small-K cases — the Fig. 11 exception).
		if fx, ok := g.PerM[MethodFlux]; ok && fo.Mean < fx.Mean-0.02 {
			t.Errorf("%s/%s n=%d: FlashOverlap (%.2f) below FLUX (%.2f) on average", g.Plat, g.Prim, g.NGPUs, fo.Mean, fx.Mean)
		}
		// No P2P methods on the PCIe box.
		if g.Plat == "RTX4090-PCIe" {
			if _, ok := g.PerM[MethodFlux]; ok {
				t.Errorf("FLUX reported on non-P2P platform")
			}
		}
	}
	if len(cases) == 0 {
		t.Fatal("no cases")
	}
	if !strings.Contains(FormatFig10(groups), "FlashOverlap") {
		t.Fatal("format output empty")
	}
}

func TestFig11Quick(t *testing.T) {
	cases, err := Fig11(context.Background(), true)
	if err != nil {
		t.Fatal(err)
	}
	if len(cases) != 5 {
		t.Fatalf("cases = %d", len(cases))
	}
	wins := 0
	for _, c := range cases {
		if c.Speedups[MethodFlashOverlap] >= c.Speedups[MethodVanillaDecmp] {
			wins++
		}
	}
	// The paper: FlashOverlap consistently outperforms except some small-K
	// fusion cases; against decomposition it should win nearly always.
	if wins < len(cases)-1 {
		t.Fatalf("FlashOverlap beat decomposition on only %d/%d shapes", wins, len(cases))
	}
	_ = FormatFig11(cases)
}

func TestFig13Quick(t *testing.T) {
	panels, err := Fig13(context.Background(), true)
	if err != nil {
		t.Fatal(err)
	}
	if len(panels) != 2 {
		t.Fatalf("panels = %d", len(panels))
	}
	for _, p := range panels {
		for _, row := range p.Cells {
			for _, c := range row {
				if c.TheoryRatio > 1.02 {
					t.Fatalf("%s %v: theory ratio %.2f exceeds 1", p.Plat, c.Shape, c.TheoryRatio)
				}
				if c.TheoryRatio < 0.3 {
					t.Fatalf("%s %v: theory ratio %.2f implausibly low", p.Plat, c.Shape, c.TheoryRatio)
				}
			}
		}
	}
	_ = FormatFig13(panels)
}

func TestFig16AllCasesAccelerate(t *testing.T) {
	cases, err := Fig16(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(cases) != 16 {
		t.Fatalf("cases = %d, want 8 shapes x 2 TPs", len(cases))
	}
	for _, c := range cases {
		sp := c.Speedups[MethodFlashOverlap]
		// §6.7: consistent acceleration, up to 1.37x.
		if sp < 1.0 {
			t.Errorf("Ascend %v TP=%d: slowdown %.3f", c.Shape, c.NGPUs, sp)
		}
		if sp > 1.6 {
			t.Errorf("Ascend %v TP=%d: implausible %.3f", c.Shape, c.NGPUs, sp)
		}
	}
	_ = FormatFig16(cases)
}

func TestCorrectnessAllClose(t *testing.T) {
	cases, err := Correctness(context.Background(), 10)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range cases {
		if !c.AllClose {
			t.Errorf("%v n=%d %v: max diff %g", c.Prim, c.NGPUs, c.Shape, c.MaxDiff)
		}
	}
	out := FormatCorrectness(cases)
	if !strings.Contains(out, "all close") {
		t.Fatal("format output missing verdicts")
	}
}

func TestTable5OverheadBounds(t *testing.T) {
	rows, err := Table5()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("rows = %d, want 5", len(rows))
	}
	for _, r := range rows {
		// CPU timing is noisy; demand only the right order of magnitude:
		// fused reorder costs something but never doubles the kernel.
		if r.OverheadPct > 100 {
			t.Errorf("%s/%s: overhead %.1f%% implausible", r.Kernel, r.Granularity, r.OverheadPct)
		}
		// The lower bound only guards against gross measurement breakage
		// (mismatched work between the pair). On some CPUs the fused
		// kernel's blocked tile-width traversal reproducibly beats the
		// baseline's long contiguous rows by 30-40%, so the bound must
		// sit below that hardware effect.
		if r.OverheadPct < -60 {
			t.Errorf("%s/%s: fused kernel %1.f%% faster than baseline — measurement broken", r.Kernel, r.Granularity, r.OverheadPct)
		}
	}
	_ = FormatTable5(rows)
}

func TestFig14Ablation(t *testing.T) {
	cases, err := Fig14(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(cases) != 6 {
		t.Fatalf("cases = %d, want 6", len(cases))
	}
	for _, c := range cases {
		flash := c.Bars[MethodFlashOverlap]
		if flash <= 0 {
			t.Fatalf("%v: missing FlashOverlap bar", c.Shape)
		}
		// The tuned configuration must not lose to any fixed strategy by
		// more than jitter; §6.5 claims it outperforms all equal-sized
		// groupings.
		for name, v := range c.Bars {
			if name == MethodFlashOverlap {
				continue
			}
			if v > flash*1.06 {
				t.Errorf("%s %v: %s (%.3f) beats tuned (%.3f) beyond tolerance", c.Plat, c.Shape, name, v, flash)
			}
		}
	}
	_ = FormatFig14(cases)
}

func TestFig15ErrorAndQuality(t *testing.T) {
	results, err := Fig15(context.Background(), false)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("results = %d", len(results))
	}
	for _, r := range results {
		if len(r.ErrorsPct) < 20 {
			t.Fatalf("%s: only %d error samples", r.Plat, len(r.ErrorsPct))
		}
		// Paper: 3.41%/3.44% mean error; accept < 8%.
		if r.MeanPct > 8 {
			t.Errorf("%s: mean error %.2f%%, want < 8%%", r.Plat, r.MeanPct)
		}
		// Claim C2: >99% of the exhaustive optimum; allow 97% for jitter.
		if r.MinQuality < 0.97 {
			t.Errorf("%s: search quality %.3f, want > 0.97", r.Plat, r.MinQuality)
		}
	}
	_ = FormatFig15(results)
}

func TestGPUCountsMatchPaper(t *testing.T) {
	if len(GPUCounts) != 3 || GPUCounts[0] != 2 || GPUCounts[2] != 8 {
		t.Fatalf("GPUCounts = %v", GPUCounts)
	}
	if hw.TrafficFactor(hw.AllReduce, 8) != 1.75 {
		t.Fatal("sanity: 8-GPU AllReduce factor")
	}
}
