package expt

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/baselines"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/gemm"
	"repro/internal/hw"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/tuner"
)

// Method names used across the operator-level comparisons.
const (
	MethodFlashOverlap = "FlashOverlap"
	MethodVanillaDecmp = "VanillaDecomposition"
	MethodAsyncTP      = "Async-TP"
	MethodFlux         = "FLUX"
	MethodCublasMp     = "cuBLASMp"
)

// a2aImbalance is the routing skew applied to All-to-All operator cases
// (MoE routing is never balanced).
const a2aImbalance = 1.2

// OperatorCase is one (platform, primitive, GPUs, shape) measurement.
type OperatorCase struct {
	Plat     string
	Prim     hw.Primitive
	NGPUs    int
	Shape    gemm.Shape
	Baseline sim.Time
	// Speedups maps method name to speedup over the non-overlap
	// baseline; methods unavailable on the platform are absent.
	Speedups  map[string]float64
	Partition gemm.Partition // FlashOverlap's tuned partition
}

// operatorCases measures every applicable method over shapes for one
// (platform, primitive, GPU count) panel. Partitions are tuned serially
// (the tuner's nearest-neighbor cache is stateful), the FlashOverlap runs
// then execute as one engine batch across the worker pool, and the baseline
// methods fill in per shape.
func operatorCases(ctx context.Context, plat hw.Platform, prim hw.Primitive, n int, shapes []gemm.Shape, tn *tuner.Tuner) ([]OperatorCase, error) {
	imb := 0.0
	if prim == hw.AllToAll {
		imb = a2aImbalance
	}
	parts := make([]gemm.Partition, len(shapes))
	runs := make([]core.Options, len(shapes))
	for i, shape := range shapes {
		part, err := tn.Tune(ctx, shape, imb)
		if err != nil {
			return nil, err
		}
		parts[i] = part
		runs[i] = core.Options{
			Plat: plat, NGPUs: n, Shape: shape, Prim: prim,
			Partition: part, Imbalance: imb,
		}
	}
	flash, err := engine.Default().Batch(ctx, runs)
	if err != nil {
		return nil, err
	}

	cases := make([]OperatorCase, 0, len(shapes))
	for i, shape := range shapes {
		oc := OperatorCase{
			Plat: plat.Name, Prim: prim, NGPUs: n, Shape: shape,
			Partition: parts[i], Speedups: map[string]float64{},
		}
		bOpts := baselines.Options{Plat: plat, NGPUs: n, Shape: shape, Prim: prim, Imbalance: imb}
		base, err := baselines.NonOverlap(bOpts)
		if err != nil {
			return nil, err
		}
		oc.Baseline = base
		oc.Speedups[MethodFlashOverlap] = float64(base) / float64(flash[i].Latency)

		if vd, err := baselines.Decomposition(bOpts, false); err == nil {
			oc.Speedups[MethodVanillaDecmp] = float64(base) / float64(vd)
		}
		if plat.P2PCapable() {
			if at, err := baselines.Decomposition(bOpts, true); err == nil {
				oc.Speedups[MethodAsyncTP] = float64(base) / float64(at)
			}
			if prim != hw.AllToAll { // FLUX/cuBLASMp target TP collectives
				if fx, err := baselines.Fusion(bOpts, baselines.Flux); err == nil {
					oc.Speedups[MethodFlux] = float64(base) / float64(fx)
				}
				if cb, err := baselines.Fusion(bOpts, baselines.CublasMp); err == nil {
					oc.Speedups[MethodCublasMp] = float64(base) / float64(cb)
				}
			}
		}
		cases = append(cases, oc)
	}
	return cases, nil
}

// Fig10Group aggregates one (platform, primitive, GPU count) panel.
type Fig10Group struct {
	Plat    string
	Prim    hw.Primitive
	NGPUs   int
	PerM    map[string]stats.Summary // method -> speedup summary
	NShapes int
}

// Fig10 runs the operator-level evaluation over the Table 3 grids for
// 2/4/8 GPUs and summarizes each method's speedup (avg with min/max, as the
// paper's "◦"/"⋄" markers).
func Fig10(ctx context.Context, quick bool) ([]Fig10Group, []OperatorCase, error) {
	var groups []Fig10Group
	var cases []OperatorCase
	counts := GPUCounts
	if quick {
		counts = []int{4}
	}
	for _, grid := range Table3Grids(quick) {
		for _, n := range counts {
			tn := tuner.NewTuner(grid.Plat, n, grid.Prim)
			tn.CandidateLimit = 256
			perMethod := map[string][]float64{}
			ocs, err := operatorCases(ctx, grid.Plat, grid.Prim, n, grid.Shapes, tn)
			if err != nil {
				return nil, nil, fmt.Errorf("%s %s n=%d: %w", grid.Plat.Name, grid.Prim, n, err)
			}
			for _, oc := range ocs {
				cases = append(cases, oc)
				for m, s := range oc.Speedups {
					perMethod[m] = append(perMethod[m], s)
				}
			}
			g := Fig10Group{Plat: grid.Plat.Name, Prim: grid.Prim, NGPUs: n, PerM: map[string]stats.Summary{}, NShapes: len(grid.Shapes)}
			for m, xs := range perMethod {
				g.PerM[m] = stats.Summarize(xs)
			}
			groups = append(groups, g)
		}
	}
	return groups, cases, nil
}

// FormatFig10 renders the aggregated panels.
func FormatFig10(groups []Fig10Group) string {
	var b strings.Builder
	b.WriteString("Fig. 10 — operator-level speedup over non-overlap (avg [min, max])\n\n")
	var rows [][]string
	for _, g := range groups {
		for _, m := range sortedKeys(g.PerM) {
			s := g.PerM[m]
			rows = append(rows, []string{
				g.Plat,
				"GEMM+" + g.Prim.Short(),
				fmt.Sprint(g.NGPUs),
				m,
				fmt.Sprintf("%.2fx [%.2f, %.2f]", s.Mean, s.Min, s.Max),
			})
		}
	}
	b.WriteString(Table([]string{"platform", "pattern", "GPUs", "method", "speedup"}, rows))
	return b.String()
}

// Fig11Shapes are the 15 typical GEMM+RS shapes of Fig. 11:
// M·N in {128,192,256,320,384} Mi-elements crossed with K in {2,4,8} Ki.
func Fig11Shapes() []gemm.Shape {
	var out []gemm.Shape
	for _, k := range []int{2048, 4096, 8192} {
		for _, m := range []int{16384, 24576, 32768, 40960, 49152} {
			out = append(out, gemm.Shape{M: m, N: 8192, K: k})
		}
	}
	return out
}

// Fig11 compares methods per shape for GEMM+RS on A800 across GPU counts.
func Fig11(ctx context.Context, quick bool) ([]OperatorCase, error) {
	plat := hw.A800NVLink()
	shapes := Fig11Shapes()
	counts := GPUCounts
	if quick {
		shapes = shapes[:5]
		counts = []int{4}
	}
	var cases []OperatorCase
	for _, n := range counts {
		tn := tuner.NewTuner(plat, n, hw.ReduceScatter)
		tn.CandidateLimit = 256
		ocs, err := operatorCases(ctx, plat, hw.ReduceScatter, n, shapes, tn)
		if err != nil {
			return nil, err
		}
		cases = append(cases, ocs...)
	}
	return cases, nil
}

// FormatFig11 renders the per-shape comparison.
func FormatFig11(cases []OperatorCase) string {
	var b strings.Builder
	b.WriteString("Fig. 11 — per-shape speedup comparison, GEMM+RS on A800\n\n")
	var rows [][]string
	for _, c := range cases {
		for _, m := range sortedKeys(c.Speedups) {
			rows = append(rows, []string{
				fmt.Sprintf("%dx%d", c.Shape.M, c.Shape.N),
				fmt.Sprint(c.Shape.K),
				fmt.Sprint(c.NGPUs),
				m,
				fmt.Sprintf("%.2fx", c.Speedups[m]),
			})
		}
	}
	b.WriteString(Table([]string{"MxN", "K", "GPUs", "method", "speedup"}, rows))
	return b.String()
}

// Fig16Shapes are the LLM GEMM shapes evaluated on Ascend 910B NPUs.
func Fig16Shapes() []gemm.Shape {
	return []gemm.Shape{
		{M: 2048, N: 5120, K: 2560},
		{M: 4096, N: 2048, K: 8192},
		{M: 4096, N: 4096, K: 2048},
		{M: 5120, N: 6912, K: 4096},
		{M: 2048, N: 8192, K: 12288},
		{M: 4096, N: 4096, K: 5120},
		{M: 6912, N: 4096, K: 2048},
		{M: 8192, N: 2048, K: 4096},
	}
}

// Fig16 evaluates GEMM+AR with FlashOverlap on the Ascend 910B profile for
// TP=2 and TP=4 (§6.7: the design ports because it only needs a counting
// table and an API-callable collective library).
func Fig16(ctx context.Context) ([]OperatorCase, error) {
	plat := hw.Ascend910B()
	var cases []OperatorCase
	for _, n := range []int{2, 4} {
		tn := tuner.NewTuner(plat, n, hw.AllReduce)
		tn.CandidateLimit = 256
		ocs, err := operatorCases(ctx, plat, hw.AllReduce, n, Fig16Shapes(), tn)
		if err != nil {
			return nil, err
		}
		cases = append(cases, ocs...)
	}
	return cases, nil
}

// FormatFig16 renders the NPU results.
func FormatFig16(cases []OperatorCase) string {
	var b strings.Builder
	b.WriteString("Fig. 16 — GEMM+AR speedup on HUAWEI Ascend 910B NPUs\n\n")
	var rows [][]string
	for _, c := range cases {
		rows = append(rows, []string{
			fmt.Sprintf("TP=%d", c.NGPUs),
			c.Shape.String(),
			fmt.Sprintf("%.2fx", c.Speedups[MethodFlashOverlap]),
		})
	}
	b.WriteString(Table([]string{"parallelism", "shape", "FlashOverlap speedup"}, rows))
	return b.String()
}
