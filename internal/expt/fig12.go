package expt

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/hw"
	"repro/internal/workload"
)

// Fig12 runs the end-to-end evaluation of Table 4's workloads on A800,
// reporting the overall speedup and the applied-operator speedups
// ("size 1"/"size 2" in the paper's bars).
func Fig12(ctx context.Context, candLimit int) ([]workload.E2EResult, error) {
	plat := hw.A800NVLink()
	var out []workload.E2EResult
	for _, m := range workload.Table4Models() {
		res, err := workload.EndToEnd(ctx, m, plat, candLimit)
		if err != nil {
			return nil, err
		}
		out = append(out, res)
	}
	return out, nil
}

// FormatFig12 renders the end-to-end results.
func FormatFig12(results []workload.E2EResult) string {
	var b strings.Builder
	b.WriteString("Fig. 12 — end-to-end and applied-operator speedup (A800)\n\n")
	var rows [][]string
	for _, r := range results {
		rows = append(rows, []string{
			fmt.Sprintf("%s (%s)", r.Model, r.Setting),
			"e2e",
			fmt.Sprintf("%.3fx", r.Speedup),
			fmt.Sprintf("%.2f -> %.2f ms/iter", r.Baseline.Millis(), r.Overlap.Millis()),
		})
		for _, op := range r.Ops {
			rows = append(rows, []string{
				"",
				op.Name,
				fmt.Sprintf("%.3fx", op.Speedup),
				fmt.Sprintf("%v (%s)", op.Shape, op.Prim.Short()),
			})
		}
	}
	b.WriteString(Table([]string{"workload", "operator", "speedup", "detail"}, rows))
	return b.String()
}
