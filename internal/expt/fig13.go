package expt

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/baselines"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/gemm"
	"repro/internal/hw"
	"repro/internal/tuner"
)

// Fig13Cell is one heatmap entry.
type Fig13Cell struct {
	Shape gemm.Shape
	// Speedup is tuned FlashOverlap over non-overlap.
	Speedup float64
	// TheoryRatio is the achieved fraction of the perfect-overlap bound.
	TheoryRatio float64
}

// Fig13Panel is one platform's heatmap.
type Fig13Panel struct {
	Plat  string
	Prim  hw.Primitive
	NGPUs int
	// MNs and Ks are the axis values; Cells is row-major [k][mn].
	MNs, Ks []int
	Cells   [][]Fig13Cell
}

// Fig13 sweeps the (M·N, K) plane: GEMM+RS with TP=2 on RTX 4090 and
// GEMM+AR with TP=4 on A800, reporting overlap speedup and the ratio to the
// theoretical bound (§6.4). quick shrinks the 7x7 grid to 3x3.
func Fig13(ctx context.Context, quick bool) ([]Fig13Panel, error) {
	type spec struct {
		plat hw.Platform
		prim hw.Primitive
		n    int
		ms   []int
		ks   []int
	}
	specs := []spec{
		{hw.RTX4090PCIe(), hw.ReduceScatter, 2,
			[]int{2048, 3072, 4096, 5120, 6144, 7168, 8192},
			[]int{4096, 6144, 8192, 10240, 12288, 14336, 16384}},
		{hw.A800NVLink(), hw.AllReduce, 4,
			[]int{8192, 12288, 16384, 20480, 24576, 28672, 32768},
			[]int{2048, 3072, 4096, 5120, 6144, 7168, 8192}},
	}
	var panels []Fig13Panel
	for _, sp := range specs {
		ms, ks := sp.ms, sp.ks
		if quick {
			ms = []int{ms[0], ms[3], ms[6]}
			ks = []int{ks[0], ks[3], ks[6]}
		}
		tn := tuner.NewTuner(sp.plat, sp.n, sp.prim)
		tn.CandidateLimit = 256
		panel := Fig13Panel{Plat: sp.plat.Name, Prim: sp.prim, NGPUs: sp.n, MNs: ms, Ks: ks}
		// Tune the whole (K, M·N) plane first (the tuner cache is
		// stateful), then execute every overlapped run as one batch.
		runs := make([]core.Options, 0, len(ks)*len(ms))
		for _, k := range ks {
			for _, m := range ms {
				shape := gemm.Shape{M: m, N: 8192, K: k}
				part, err := tn.Tune(ctx, shape, 0)
				if err != nil {
					return nil, err
				}
				runs = append(runs, core.Options{Plat: sp.plat, NGPUs: sp.n, Shape: shape, Prim: sp.prim, Partition: part})
			}
		}
		results, err := engine.Default().Batch(ctx, runs)
		if err != nil {
			return nil, err
		}
		for i, k := range ks {
			var row []Fig13Cell
			for j, m := range ms {
				shape := gemm.Shape{M: m, N: 8192, K: k}
				res := results[i*len(ms)+j]
				base, err := baselines.NonOverlap(baselines.Options{Plat: sp.plat, NGPUs: sp.n, Shape: shape, Prim: sp.prim})
				if err != nil {
					return nil, err
				}
				bound, err := core.TheoreticalBound(core.Options{Plat: sp.plat, NGPUs: sp.n, Shape: shape, Prim: sp.prim})
				if err != nil {
					return nil, err
				}
				theorySpeedup := float64(base) / float64(bound)
				actualSpeedup := float64(base) / float64(res.Latency)
				row = append(row, Fig13Cell{
					Shape:       shape,
					Speedup:     actualSpeedup,
					TheoryRatio: actualSpeedup / theorySpeedup,
				})
			}
			panel.Cells = append(panel.Cells, row)
		}
		panels = append(panels, panel)
	}
	return panels, nil
}

// FormatFig13 renders both heatmaps (speedup and theory ratio).
func FormatFig13(panels []Fig13Panel) string {
	var b strings.Builder
	b.WriteString("Fig. 13 — performance heatmap on varying GEMM sizes (N=8192)\n\n")
	for _, p := range panels {
		fmt.Fprintf(&b, "%s, GEMM+%s, %d GPUs — overlap speedup\n", p.Plat, p.Prim.Short(), p.NGPUs)
		b.WriteString(formatHeat(p, func(c Fig13Cell) float64 { return c.Speedup }))
		fmt.Fprintf(&b, "%s — ratio of theoretical speedup\n", p.Plat)
		b.WriteString(formatHeat(p, func(c Fig13Cell) float64 { return c.TheoryRatio }))
		b.WriteByte('\n')
	}
	return b.String()
}

func formatHeat(p Fig13Panel, val func(Fig13Cell) float64) string {
	header := []string{"K \\ MxN(Mi)"}
	for _, m := range p.MNs {
		header = append(header, fmt.Sprint(m*8192/(1024*1024)))
	}
	var rows [][]string
	for i, k := range p.Ks {
		cells := []string{fmt.Sprint(k)}
		for _, c := range p.Cells[i] {
			cells = append(cells, fmt.Sprintf("%.2f", val(c)))
		}
		rows = append(rows, cells)
	}
	return Table(header, rows)
}
