package expt

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/baselines"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/gemm"
	"repro/internal/hw"
	"repro/internal/sim"
	"repro/internal/tuner"
)

// Fig14Case is one ablation bar group: every grouping strategy's speedup
// over non-overlap for one shape.
type Fig14Case struct {
	Plat  string
	Prim  hw.Primitive
	NGPUs int
	Shape gemm.Shape
	// Bars maps strategy name ("mw", "Egs=4", "FlashOverlap", ...) to
	// speedup over non-overlap.
	Bars map[string]float64
	// Tuned is the partition the predictive search selected.
	Tuned gemm.Partition
}

// Fig14 reproduces the wave-grouping ablation: a deliberately misconfigured
// wave size ("mw", +20 tiles), equally-sized groupings Egs=n, and the tuned
// FlashOverlap, on GEMM+AR over 2x RTX 4090 and GEMM+RS over 4x A800.
func Fig14(ctx context.Context) ([]Fig14Case, error) {
	type spec struct {
		plat   hw.Platform
		prim   hw.Primitive
		n      int
		shapes []gemm.Shape
		egs    []int
	}
	specs := []spec{
		{hw.RTX4090PCIe(), hw.AllReduce, 2,
			[]gemm.Shape{{M: 2048, N: 8192, K: 4096}, {M: 4096, N: 8192, K: 8192}, {M: 2048, N: 8192, K: 16384}},
			[]int{1, 2, 4, 8}},
		{hw.A800NVLink(), hw.ReduceScatter, 4,
			[]gemm.Shape{{M: 4096, N: 8192, K: 8192}, {M: 8192, N: 8192, K: 1024}, {M: 16384, N: 8192, K: 1024}},
			[]int{1, 2, 4, 8, 16, 32}},
	}
	var cases []Fig14Case
	var bases []sim.Time // non-overlap baseline per case, aligned with cases
	for _, sp := range specs {
		tn := tuner.NewTuner(sp.plat, sp.n, sp.prim)
		tn.CandidateLimit = 512
		trueSMs := sp.plat.GPU.SMs - sp.plat.CommSMs

		// Tune every shape first, collecting one labeled run per strategy
		// bar; the whole spec then executes as a single engine batch.
		type barRef struct {
			caseIdx int
			name    string
		}
		var (
			runs   []core.Options
			labels []barRef
		)
		for _, shape := range sp.shapes {
			base, err := baselines.NonOverlap(baselines.Options{Plat: sp.plat, NGPUs: sp.n, Shape: shape, Prim: sp.prim})
			if err != nil {
				return nil, err
			}
			plan, err := gemm.NewPlan(shape, gemm.DefaultConfig(shape))
			if err != nil {
				return nil, err
			}
			t := plan.Waves(trueSMs)
			tuned, err := tn.Tune(ctx, shape, 0)
			if err != nil {
				return nil, err
			}
			ci := len(cases)
			cases = append(cases, Fig14Case{Plat: sp.plat.Name, Prim: sp.prim, NGPUs: sp.n, Shape: shape, Bars: map[string]float64{}, Tuned: tuned})
			bases = append(bases, base)

			opts := core.Options{Plat: sp.plat, NGPUs: sp.n, Shape: shape, Prim: sp.prim}
			add := func(name string, o core.Options) {
				runs = append(runs, o)
				labels = append(labels, barRef{caseIdx: ci, name: name})
			}

			// Tuned FlashOverlap.
			o := opts
			o.Partition = tuned
			add(MethodFlashOverlap, o)

			// Misconfigured wave size: the tuned partition with counting
			// thresholds computed at trueSMs+20 tiles per wave.
			o = opts
			o.Partition = tuned.Clone()
			o.WaveSizeOverride = trueSMs + 20
			add("mw", o)

			// Equally-sized groupings.
			for _, gs := range sp.egs {
				o = opts
				o.Partition = gemm.EqualSized(t, gs)
				add(fmt.Sprintf("Egs=%d", gs), o)
			}
		}
		results, err := engine.Default().Batch(ctx, runs)
		if err != nil {
			return nil, err
		}
		for i, res := range results {
			l := labels[i]
			cases[l.caseIdx].Bars[l.name] = float64(bases[l.caseIdx]) / float64(res.Latency)
		}
	}
	return cases, nil
}

// FormatFig14 renders the ablation bars.
func FormatFig14(cases []Fig14Case) string {
	var b strings.Builder
	b.WriteString("Fig. 14 — wave grouping ablation (speedup over non-overlap)\n\n")
	var rows [][]string
	for _, c := range cases {
		for _, name := range sortedKeys(c.Bars) {
			rows = append(rows, []string{
				fmt.Sprintf("%s %s n=%d", c.Plat, c.Prim.Short(), c.NGPUs),
				c.Shape.String(),
				name,
				fmt.Sprintf("%.3fx", c.Bars[name]),
			})
		}
		rows = append(rows, []string{"", "", "tuned partition", c.Tuned.String()})
	}
	b.WriteString(Table([]string{"setting", "shape", "strategy", "speedup"}, rows))
	return b.String()
}
