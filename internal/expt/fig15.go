package expt

import (
	"context"
	"fmt"
	"math"
	"strings"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/gemm"
	"repro/internal/hw"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/tuner"
)

// Fig15Result holds the prediction-error study for one platform.
type Fig15Result struct {
	Plat string
	// ErrorsPct are |actual-predicted|/actual per (shape, partition,
	// parallelism) combination, in percent.
	ErrorsPct []float64
	MeanPct   float64
	P95Pct    float64
	// SearchQuality compares the predictively searched partition's
	// measured latency against the exhaustive optimum per shape
	// (1.0 = identical choice).
	SearchQuality []float64
	MinQuality    float64
}

// Fig15 measures prediction error over many (GEMM size, wave partition,
// parallelism) combinations per platform, and the predictive-vs-exhaustive
// search quality (claims in §6.5 / A.4.2: avg error < 5%, quality > 99%).
// full runs the paper-scale >250 combinations per platform; otherwise a
// reduced set.
func Fig15(ctx context.Context, full bool) ([]Fig15Result, error) {
	shapes := []gemm.Shape{
		{M: 2048, N: 8192, K: 4096},
		{M: 4096, N: 8192, K: 8192},
		{M: 8192, N: 8192, K: 2048},
	}
	parallelisms := []int{2, 4}
	partsPerShape := 8
	if full {
		shapes = append(shapes,
			gemm.Shape{M: 2048, N: 8192, K: 12288},
			gemm.Shape{M: 4096, N: 8192, K: 2048},
			gemm.Shape{M: 16384, N: 8192, K: 4096},
		)
		parallelisms = []int{2, 4, 8}
		partsPerShape = 16
	}
	var out []Fig15Result
	for _, plat := range []hw.Platform{hw.RTX4090PCIe(), hw.A800NVLink()} {
		res := Fig15Result{Plat: plat.Name}
		for _, n := range parallelisms {
			curve := tuner.SampleBandwidthCurve(plat, n, hw.AllReduce, nil)
			for _, shape := range shapes {
				pred, err := tuner.NewPredictor(plat, shape, gemm.Config{}, curve, 1)
				if err != nil {
					return nil, err
				}
				cands := tuner.Candidates(pred.Waves, tuner.DefaultS1, tuner.DefaultSP, 256)
				step := len(cands)/partsPerShape + 1
				opts := core.Options{Plat: plat, NGPUs: n, Shape: shape, Prim: hw.AllReduce}
				// Predict the sampled partitions, then measure them all
				// as one engine batch (the plan cache reuses the shape's
				// tile schedule the exhaustive oracle compiles below).
				var (
					runs      []core.Options
					predicted []sim.Time
				)
				for i := 0; i < len(cands); i += step {
					want, err := pred.Predict(cands[i])
					if err != nil {
						return nil, err
					}
					run := opts
					run.Partition = cands[i]
					runs = append(runs, run)
					predicted = append(predicted, want)
				}
				actuals, err := engine.Default().Batch(ctx, runs)
				if err != nil {
					return nil, err
				}
				for i, actual := range actuals {
					e := 100 * math.Abs(float64(actual.Latency-predicted[i])) / float64(actual.Latency)
					res.ErrorsPct = append(res.ErrorsPct, e)
				}
				// Search quality for this (shape, n).
				predBest, err := tuner.PredictiveSearch(ctx, pred, cands)
				if err != nil {
					return nil, err
				}
				oracle, err := tuner.ExhaustiveSearch(ctx, opts, cands)
				if err != nil {
					return nil, err
				}
				run := opts
				run.Partition = predBest.Partition
				actual, err := engine.Default().Exec(ctx, run)
				if err != nil {
					return nil, err
				}
				res.SearchQuality = append(res.SearchQuality, float64(oracle.Latency)/float64(actual.Latency))
			}
		}
		s := stats.Summarize(res.ErrorsPct)
		res.MeanPct = s.Mean
		res.P95Pct = stats.Percentile(res.ErrorsPct, 95)
		res.MinQuality = stats.Summarize(res.SearchQuality).Min
		out = append(out, res)
	}
	return out, nil
}

// FormatFig15 renders the CDF summary and search quality.
func FormatFig15(results []Fig15Result) string {
	var b strings.Builder
	b.WriteString("Fig. 15 — CDF of prediction error ratio & predictive search quality\n\n")
	for _, r := range results {
		fmt.Fprintf(&b, "%s: %d combinations, mean |error| = %.2f%%, p95 = %.2f%%\n",
			r.Plat, len(r.ErrorsPct), r.MeanPct, r.P95Pct)
		var rows [][]string
		for _, q := range []float64{25, 50, 75, 90, 99} {
			rows = append(rows, []string{
				fmt.Sprintf("p%.0f", q),
				fmt.Sprintf("%.2f%%", stats.Percentile(r.ErrorsPct, q)),
			})
		}
		b.WriteString(Table([]string{"quantile", "error"}, rows))
		fmt.Fprintf(&b, "predictive search reaches %.1f%%..100%% of the exhaustive optimum (min %.3f)\n\n",
			r.MinQuality*100, r.MinQuality)
	}
	return b.String()
}
