package expt

import (
	"fmt"
	"strings"

	"repro/internal/gemm"
	"repro/internal/hw"
	"repro/internal/reorder"
	"repro/internal/sim"
)

// Fig3Point is one tile's completion sample.
type Fig3Point struct {
	Index      int // tile index (a) or reordered slot (b)
	Completion sim.Time
	Wave       int
}

// Fig3Result reproduces the wave-pattern study: per-tile completion times
// plotted against the row-major tile index (without reordering — scattered,
// because of block swizzling) and against the reordered slot index (with
// our pre-communication reordering — a monotone staircase of waves).
type Fig3Result struct {
	Shape              gemm.Shape
	Tiles, Waves, SMs  int
	WithoutReorder     []Fig3Point
	WithReorder        []Fig3Point
	IntraWaveSpreadPct float64 // max completion spread within a wave / wave duration
}

// Fig3 runs the paper's setting: M=2048, N=K=8192 on an RTX 4090,
// swizzle size 3 (tile 128x256 yields the paper's 512 tiles in 4 waves).
func Fig3() (*Fig3Result, error) {
	plat := hw.RTX4090PCIe()
	shape := gemm.Shape{M: 2048, N: 8192, K: 8192}
	cfg := gemm.Config{TileM: 128, TileN: 256, Swizzle: 3}
	plan, err := gemm.NewPlan(shape, cfg)
	if err != nil {
		return nil, err
	}
	cm := gemm.NewCostModel(plat.GPU)
	sms := plat.GPU.SMs
	comps := cm.TileCompletions(plan, sms, 0x316)
	tm := reorder.NewTileMapping(plan)

	res := &Fig3Result{Shape: shape, Tiles: plan.Tiles, Waves: plan.Waves(sms), SMs: sms}
	waveDur := float64(cm.TileTime(plan, sms))
	spread := 0.0
	for pos, c := range comps {
		idx := plan.Order[pos]
		w := plan.WaveOfPos(pos, sms)
		res.WithoutReorder = append(res.WithoutReorder, Fig3Point{Index: idx, Completion: c, Wave: w})
		res.WithReorder = append(res.WithReorder, Fig3Point{Index: tm.SlotOf(idx), Completion: c, Wave: w})
		end := cm.WaveEnd(plan, sms, w)
		if d := float64(end-c) / waveDur; d > spread {
			spread = d
		}
	}
	res.IntraWaveSpreadPct = spread * 100
	return res, nil
}

// Format renders the result: wave boundaries, the misalignment between tile
// index and completion order, and the restored alignment after reordering.
func (r *Fig3Result) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 3 — wave pattern in GEMM execution (%v, RTX 4090)\n", r.Shape)
	fmt.Fprintf(&b, "tiles=%d  SMs=%d  waves=%d  intra-wave spread=%.1f%% of a wave\n\n",
		r.Tiles, r.SMs, r.Waves, r.IntraWaveSpreadPct)

	inv := 0
	for i := 1; i < len(r.WithoutReorder); i++ {
		if r.WithoutReorder[i].Index < r.WithoutReorder[i-1].Index {
			inv++
		}
	}
	fmt.Fprintf(&b, "(a) without reordering: %d index inversions along completion order (swizzling)\n", inv)
	inv = 0
	for i := 1; i < len(r.WithReorder); i++ {
		if r.WithReorder[i].Index < r.WithReorder[i-1].Index {
			inv++
		}
	}
	fmt.Fprintf(&b, "(b) with reordering:    %d index inversions (contiguous slots per wave)\n\n", inv)

	rows := make([][]string, 0, r.Waves)
	for w := 0; w < r.Waves; w++ {
		var lastComp sim.Time
		count := 0
		for _, p := range r.WithReorder {
			if p.Wave == w {
				count++
				if p.Completion > lastComp {
					lastComp = p.Completion
				}
			}
		}
		rows = append(rows, []string{
			fmt.Sprint(w + 1),
			fmt.Sprint(count),
			fmt.Sprintf("%.3f ms", lastComp.Millis()),
		})
	}
	b.WriteString(Table([]string{"wave", "tiles", "completes at"}, rows))
	return b.String()
}
