package expt

import (
	"fmt"
	"strings"

	"repro/internal/hw"
	"repro/internal/workload"
)

// Fig4Row is one profiled workload's latency decomposition.
type Fig4Row struct {
	Model, Setting string
	Fractions      map[string]float64 // pattern -> share of end-to-end time
}

// Fig4 profiles the four Table 4 workloads on A800 and reports the share of
// time spent in the overlappable GEMM+X patterns.
func Fig4() ([]Fig4Row, error) {
	plat := hw.A800NVLink()
	var rows []Fig4Row
	for _, m := range workload.Fig4Models() {
		b, err := workload.ComputeBreakdown(m, plat)
		if err != nil {
			return nil, err
		}
		fr := map[string]float64{}
		for pattern := range b.ByPattern {
			fr[pattern] = b.Fraction(pattern)
		}
		rows = append(rows, Fig4Row{Model: m.Name, Setting: m.Setting, Fractions: fr})
	}
	return rows, nil
}

// FormatFig4 renders the breakdown table.
func FormatFig4(rows []Fig4Row) string {
	var b strings.Builder
	b.WriteString("Fig. 4 — time portion of \"GEMM + X\" in inference and training (A800)\n\n")
	var out [][]string
	for _, r := range rows {
		for _, pattern := range sortedKeys(r.Fractions) {
			if pattern == "Others" {
				continue
			}
			out = append(out, []string{
				fmt.Sprintf("%s (%s)", r.Model, r.Setting),
				pattern,
				fmt.Sprintf("%.1f%%", r.Fractions[pattern]*100),
			})
		}
		out = append(out, []string{
			fmt.Sprintf("%s (%s)", r.Model, r.Setting),
			"Others",
			fmt.Sprintf("%.1f%%", r.Fractions["Others"]*100),
		})
	}
	b.WriteString(Table([]string{"workload", "pattern", "share"}, out))
	return b.String()
}
