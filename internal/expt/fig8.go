package expt

import (
	"fmt"
	"strings"

	"repro/internal/hw"
	"repro/internal/stats"
	"repro/internal/tuner"
)

// Fig8Series is one platform's bandwidth-vs-size curve.
type Fig8Series struct {
	Platform string
	NGPUs    int
	Prim     hw.Primitive
	// Points map payload bytes to achieved bus bandwidth (bytes/s),
	// derived from sampled collective latencies like the offline stage.
	Points []stats.Point
	// Knee is the payload size below which bandwidth falls under 50% of
	// the largest observed value (the red borderline of Fig. 8).
	Knee float64
}

// Fig8 samples the AllReduce bandwidth curve on 4x RTX 4090 (PCIe) and
// 4x A800 (NVLink), reproducing the sharp small-message degradation.
func Fig8() []Fig8Series {
	var out []Fig8Series
	for _, plat := range []hw.Platform{hw.RTX4090PCIe(), hw.A800NVLink()} {
		curve := tuner.SampleBandwidthCurve(plat, 4, hw.AllReduce, nil)
		series := Fig8Series{Platform: plat.Name, NGPUs: 4, Prim: hw.AllReduce}
		var peak float64
		for _, p := range curve.Points() {
			traffic := p.X * hw.TrafficFactor(hw.AllReduce, 4)
			bw := traffic / (p.Y / 1e9) // bytes per second
			series.Points = append(series.Points, stats.Point{X: p.X, Y: bw})
			if bw > peak {
				peak = bw
			}
		}
		for _, p := range series.Points {
			if p.Y >= peak/2 {
				series.Knee = p.X
				break
			}
		}
		out = append(out, series)
	}
	return out
}

// FormatFig8 renders both curves.
func FormatFig8(series []Fig8Series) string {
	var b strings.Builder
	b.WriteString("Fig. 8 — bandwidth curve varying with data size (AllReduce, 4 GPUs)\n\n")
	for _, s := range series {
		fmt.Fprintf(&b, "%s  (50%%-bandwidth borderline at %.1f MB)\n", s.Platform, s.Knee/1e6)
		var rows [][]string
		for i, p := range s.Points {
			if i%4 != 0 && p.X < s.Knee*8 { // thin out the flat region
				continue
			}
			rows = append(rows, []string{
				fmt.Sprintf("%.2f MB", p.X/1e6),
				fmt.Sprintf("%.1f GB/s", p.Y/1e9),
			})
		}
		b.WriteString(Table([]string{"data size", "bus bandwidth"}, rows))
		b.WriteByte('\n')
	}
	return b.String()
}
