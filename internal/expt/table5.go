package expt

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/gemm"
	"repro/internal/reorder"
	"repro/internal/tensor"
)

// Table5Row reports the measured overhead of one fused reordering pattern.
type Table5Row struct {
	Kernel      string // "RMSNorm" or "GEMM"
	Granularity string // "tile", "subtile", "subtoken"
	OverheadPct float64
}

// Table5 measures the reordering overhead on the functional kernels: the
// post-communication reorder fused into RMSNorm (per granularity) and the
// pre-communication reorder fused into the GEMM epilogue. The measured
// quantity is the paper's mechanism — a gather/scatter through a mapping
// table versus contiguous access — expressed as the fused kernel's relative
// extra latency. The paper's GPU numbers are ~7.5-9.6% for RMSNorm and
// under 1% for the GEMM epilogue; the CPU analog is noisier (cache
// hierarchies differ) but must stay the same order of magnitude.
func Table5() ([]Table5Row, error) {
	const (
		// RMSNorm timing layout: values are irrelevant to timing, so
		// buffers are random-filled rather than computed.
		m, n         = 2048, 2048
		tileM, tileN = 64, 128
		nGPUs        = 2
		eps          = 1e-6
	)
	shape := gemm.Shape{M: m, N: n, K: 64}
	plan, err := gemm.NewPlan(shape, gemm.Config{TileM: tileM, TileN: tileN, Swizzle: 3})
	if err != nil {
		return nil, err
	}
	weight := make([]float32, n)
	for i := range weight {
		weight[i] = 1
	}
	contiguous := tensor.New(m, n)
	contiguous.FillRand(11)
	normDst := tensor.New(m, n)

	baseNorm := func() { tensor.RMSNorm(normDst, contiguous, weight, eps) }

	var rows []Table5Row

	// Tile granularity (AllReduce path).
	tm := reorder.NewTileMapping(plan)
	tileBuf := tm.NewBuffer()
	tileBuf.FillRand(12)
	rows = append(rows, Table5Row{"RMSNorm", "tile",
		overheadPct(baseNorm, func() { tm.GatherFusedRMSNorm(normDst, tileBuf, weight, eps) })})

	// Subtile granularity (ReduceScatter path): norm over one GPU's local
	// block versus the contiguous equivalent.
	bounds := gemm.SingleGroup(plan.Waves(96)).Bounds(plan, 96)
	sl, err := reorder.NewSubtileLayout(plan, bounds, nGPUs)
	if err != nil {
		return nil, err
	}
	recv := sl.NewRecvBuffer()
	recv.FillRand(13)
	localContig := tensor.New(sl.LocalRows(), n)
	localContig.FillRand(14)
	localDst := tensor.New(sl.LocalRows(), n)
	rows = append(rows, Table5Row{"RMSNorm", "subtile",
		overheadPct(
			func() { tensor.RMSNorm(localDst, localContig, weight, eps) },
			func() { sl.GatherFusedRMSNorm(localDst, recv, weight, eps) })})

	// Subtoken granularity (All-to-All path).
	dests := make([][]int, nGPUs)
	for i := range dests {
		dests[i] = make([]int, m)
		for r := range dests[i] {
			dests[i][r] = (r + i) % nGPUs
		}
	}
	ex, err := reorder.NewA2AExchange(plan, bounds, dests)
	if err != nil {
		return nil, err
	}
	recvFlat := ex.NewRecvBuffer(0)
	fillSlice(recvFlat, 15)
	a2aContig := tensor.New(ex.TokensTo(0), n)
	a2aContig.FillRand(16)
	a2aDst := tensor.New(ex.TokensTo(0), n)
	rows = append(rows, Table5Row{"RMSNorm", "subtoken",
		overheadPct(
			func() { tensor.RMSNorm(a2aDst, a2aContig, weight, eps) },
			func() { ex.GatherFusedRMSNorm(0, a2aDst, recvFlat, weight, eps) })})

	// GEMM epilogue: compute-plus-scatter versus compute-plus-contiguous
	// store, relative to the whole tile computation. K is large enough
	// that the main loop dominates, as on the GPU.
	gShape := gemm.Shape{M: 512, N: 1024, K: 160}
	gPlan, err := gemm.NewPlan(gShape, gemm.Config{TileM: tileM, TileN: tileN, Swizzle: 3})
	if err != nil {
		return nil, err
	}
	ga := tensor.New(gShape.M, gShape.K)
	gb := tensor.New(gShape.K, gShape.N)
	ga.FillRand(17)
	gb.FillRand(18)
	gtm := reorder.NewTileMapping(gPlan)
	gBuf := gtm.NewBuffer()
	direct := tensor.New(gShape.M, gShape.N)
	baseGemm := func() {
		for idx := 0; idx < gPlan.Tiles; idx++ {
			t := gPlan.ComputeTile(ga, gb, idx, nil)
			r0, c0, tr, tc := gPlan.TileRect(idx)
			direct.CopyRect(r0, c0, t, 0, 0, tr, tc)
		}
	}
	rows = append(rows, Table5Row{"GEMM", "tile",
		overheadPct(baseGemm, func() {
			for idx := 0; idx < gPlan.Tiles; idx++ {
				gtm.ScatterTile(gBuf, gPlan.ComputeTile(ga, gb, idx, nil), idx)
			}
		})})

	gBounds := gemm.SingleGroup(gPlan.Waves(96)).Bounds(gPlan, 96)
	gsl, err := reorder.NewSubtileLayout(gPlan, gBounds, nGPUs)
	if err != nil {
		return nil, err
	}
	gSend := gsl.NewSendBuffer()
	rows = append(rows, Table5Row{"GEMM", "subtile",
		overheadPct(baseGemm, func() {
			for idx := 0; idx < gPlan.Tiles; idx++ {
				gsl.ScatterTile(gSend, gPlan.ComputeTile(ga, gb, idx, nil), idx)
			}
		})})
	return rows, nil
}

// overheadPct measures fused's latency relative to base with interleaved
// paired sampling: base and fused alternate within each round, so slow
// drift (scheduler, thermal, noisy neighbors) cancels in the per-round
// ratio; the median ratio across rounds is reported. The measurement order
// flips every round — whichever kernel runs second inherits warm caches
// (and, on throttling hosts, a lower clock), and a fixed order turns that
// into a systematic bias large enough to dominate the single-digit
// overheads being measured.
func overheadPct(base, fused func()) float64 {
	base()
	fused()
	const rounds = 16
	ratios := make([]float64, rounds)
	for i := range ratios {
		var b, f time.Duration
		if i%2 == 0 {
			s := time.Now()
			base()
			b = time.Since(s)
			s = time.Now()
			fused()
			f = time.Since(s)
		} else {
			s := time.Now()
			fused()
			f = time.Since(s)
			s = time.Now()
			base()
			b = time.Since(s)
		}
		ratios[i] = float64(f) / float64(b)
	}
	sort.Float64s(ratios)
	return 100 * ((ratios[rounds/2-1]+ratios[rounds/2])/2 - 1)
}

func fillSlice(xs []float32, seed uint64) {
	state := seed*0x9e3779b97f4a7c15 + 1
	for i := range xs {
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		xs[i] = float32(int32(state>>40)-1<<23) / float32(1<<23)
	}
}

// FormatTable5 renders the overhead table.
func FormatTable5(rows []Table5Row) string {
	var b strings.Builder
	b.WriteString("Table 5 — average reordering overhead fused into kernels (CPU-analog measurement)\n\n")
	var out [][]string
	for _, r := range rows {
		out = append(out, []string{r.Kernel, r.Granularity, fmt.Sprintf("%+.2f%%", r.OverheadPct)})
	}
	b.WriteString(Table([]string{"kernel", "granularity", "overhead"}, out))
	return b.String()
}
