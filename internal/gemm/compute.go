package gemm

import (
	"fmt"

	"repro/internal/tensor"
)

// Epilogue is an element-wise operation fused after the tile matmul (bias
// add, activation); it is applied in place to each computed tile, matching
// §2.1.3 (main loop + epilogue). A nil Epilogue is the identity.
type Epilogue func(v float32) float32

// ComputeReference computes c = a*b (+ epilogue) sequentially. It is the
// "cuBLAS" reference that every overlap path is validated against.
func ComputeReference(c, a, b *tensor.Matrix, ep Epilogue) {
	tensor.MatMul(c, a, b)
	if ep != nil {
		for i, v := range c.Data {
			c.Data[i] = ep(v)
		}
	}
}

// checkOperands validates a GEMM triple against the plan's shape.
func (p *Plan) checkOperands(a, b *tensor.Matrix) {
	if a.Rows != p.Shape.M || a.Cols != p.Shape.K {
		panic(fmt.Sprintf("gemm: A is %dx%d, want %dx%d", a.Rows, a.Cols, p.Shape.M, p.Shape.K))
	}
	if b.Rows != p.Shape.K || b.Cols != p.Shape.N {
		panic(fmt.Sprintf("gemm: B is %dx%d, want %dx%d", b.Rows, b.Cols, p.Shape.K, p.Shape.N))
	}
}

// ComputeTile computes output tile idx of c = a*b (+ epilogue) and returns
// it as a fresh TileM x TileN matrix. This is the functional unit the
// overlap runner invokes per tile, writing the result wherever the
// pre-communication reordering dictates.
func (p *Plan) ComputeTile(a, b *tensor.Matrix, idx int, ep Epilogue) *tensor.Matrix {
	p.checkOperands(a, b)
	r0, c0, rows, cols := p.TileRect(idx)
	out := tensor.New(rows, cols)
	k := p.Shape.K
	for i := 0; i < rows; i++ {
		oi := out.Data[i*cols : (i+1)*cols]
		ai := a.Data[(r0+i)*a.Cols : (r0+i)*a.Cols+k]
		for kk := 0; kk < k; kk++ {
			av := ai[kk]
			if av == 0 {
				continue
			}
			brow := b.Data[kk*b.Cols+c0 : kk*b.Cols+c0+cols]
			for j, bv := range brow {
				oi[j] += av * bv
			}
		}
	}
	if ep != nil {
		for i, v := range out.Data {
			out.Data[i] = ep(v)
		}
	}
	return out
}

// ComputeAllTiles computes c = a*b tile by tile in execution order,
// assembling the result into a full matrix. It must agree exactly with
// ComputeReference (the tile decomposition preserves the K-loop order), and
// the tests assert that; the overlap runner relies on this equivalence for
// the paper's "mathematically equivalent" claim.
func (p *Plan) ComputeAllTiles(a, b *tensor.Matrix, ep Epilogue) *tensor.Matrix {
	p.checkOperands(a, b)
	c := tensor.New(p.Shape.M, p.Shape.N)
	for _, idx := range p.Order {
		tile := p.ComputeTile(a, b, idx, ep)
		r0, c0, rows, cols := p.TileRect(idx)
		c.CopyRect(r0, c0, tile, 0, 0, rows, cols)
	}
	return c
}
