// Package gemm models tiled general matrix multiplication the way the
// paper's CUTLASS substrate executes it: the M x N output is partitioned
// into tiles, tiles are dispatched to SMs in a (possibly swizzled) launch
// order, and execution proceeds in waves — sets of tiles that finish nearly
// simultaneously (Fig. 3). The package provides both the timing model
// (wave schedule, roofline-style durations) and the functional computation
// (real float32 per-tile matmul with a fusable epilogue), so overlap
// runners built on top can be checked for bit-level correctness.
package gemm

import (
	"fmt"
	"math"

	"repro/internal/hw"
	"repro/internal/sim"
	"repro/internal/stats"
)

// Shape is a GEMM problem size: A is MxK, B is KxN, C is MxN.
type Shape struct {
	M, N, K int
}

// String renders like the paper's shape tuples.
func (s Shape) String() string { return fmt.Sprintf("M%d-N%d-K%d", s.M, s.N, s.K) }

// Flops returns the multiply-accumulate work (2MNK).
func (s Shape) Flops() float64 { return 2 * float64(s.M) * float64(s.N) * float64(s.K) }

// OutputBytes returns the size of C in the paper's half precision.
func (s Shape) OutputBytes() int64 { return int64(s.M) * int64(s.N) * 2 }

// LogCell quantizes the shape's (log2 M·N, log2 K) coordinates — the plane
// the tuner's nearest-neighbor cache matches in (§4.2.2) — to quantum-wide
// cells. Shapes in one cell are "the same size" at that granularity: the
// shard partitioner hashes half-log cells into replica ownership, and the
// mixed-fidelity sweep ranks analytic candidates within coarser cells
// before picking which to confirm on the simulator.
func (s Shape) LogCell(quantum float64) (qx, qy int64) {
	lmn := math.Log2(float64(s.M) * float64(s.N))
	lk := math.Log2(float64(s.K))
	return int64(math.Round(lmn / quantum)), int64(math.Round(lk / quantum))
}

// Validate rejects non-positive dimensions.
func (s Shape) Validate() error {
	if s.M <= 0 || s.N <= 0 || s.K <= 0 {
		return fmt.Errorf("gemm: invalid shape %v", s)
	}
	return nil
}

// Config selects the tiling and launch-order parameters of a GEMM kernel
// ("GEMM configuration" in Alg. 1's offline stage).
type Config struct {
	// TileM, TileN are the output tile dimensions.
	TileM, TileN int
	// Swizzle is the block-swizzling group width in tile columns;
	// values <= 1 mean the identity (row-major) launch order.
	Swizzle int
}

// DefaultConfig mimics the CUTLASS profiler's choice: the largest standard
// tile that divides the problem, with a swizzle of 3 (the paper's Fig. 3
// setting) when it is non-trivial.
func DefaultConfig(s Shape) Config {
	pick := func(dim int, candidates ...int) int {
		for _, c := range candidates {
			if dim%c == 0 {
				return c
			}
		}
		return 1
	}
	cfg := Config{
		TileM:   pick(s.M, 128, 64, 32, 16, 8, 4, 2),
		TileN:   pick(s.N, 128, 64, 32, 16, 8, 4, 2),
		Swizzle: 3,
	}
	return cfg
}

// Plan is a fully resolved tile schedule for one GEMM.
type Plan struct {
	Shape Shape
	Cfg   Config
	// RowTiles, ColTiles, Tiles describe the tile grid over C.
	RowTiles, ColTiles, Tiles int
	// Order maps execution position -> row-major tile index: Order[p] is
	// the p-th tile to be dispatched. With swizzling this is not the
	// identity, which is exactly why the paper needs reordering (§3.3).
	Order []int
	// Pos is the inverse: Pos[tileIdx] = execution position.
	Pos []int
}

// NewPlan validates the config against the shape and computes the launch
// order. Tile dimensions must divide the problem so that every tile (and
// later every subtile) is full-size; DefaultConfig always satisfies this.
func NewPlan(s Shape, cfg Config) (*Plan, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if cfg.TileM <= 0 || cfg.TileN <= 0 {
		return nil, fmt.Errorf("gemm: invalid tile %dx%d", cfg.TileM, cfg.TileN)
	}
	if s.M%cfg.TileM != 0 || s.N%cfg.TileN != 0 {
		return nil, fmt.Errorf("gemm: tile %dx%d does not divide shape %v", cfg.TileM, cfg.TileN, s)
	}
	p := &Plan{
		Shape:    s,
		Cfg:      cfg,
		RowTiles: s.M / cfg.TileM,
		ColTiles: s.N / cfg.TileN,
	}
	p.Tiles = p.RowTiles * p.ColTiles
	p.Order = swizzleOrder(p.RowTiles, p.ColTiles, cfg.Swizzle)
	p.Pos = make([]int, p.Tiles)
	for pos, idx := range p.Order {
		p.Pos[idx] = pos
	}
	return p, nil
}

// swizzleOrder computes the launch order of tiles. Without swizzling
// (s <= 1) tiles launch in row-major index order. With swizzling, tile
// columns are grouped s at a time and each group is walked row-major — the
// CUTLASS-style rasterization that improves L2 locality but makes the
// completion order misaligned with memory addresses (Fig. 2b, Fig. 3a).
func swizzleOrder(rowTiles, colTiles, s int) []int {
	order := make([]int, 0, rowTiles*colTiles)
	if s <= 1 {
		for i := 0; i < rowTiles*colTiles; i++ {
			order = append(order, i)
		}
		return order
	}
	for cg := 0; cg < colTiles; cg += s {
		hi := cg + s
		if hi > colTiles {
			hi = colTiles
		}
		for r := 0; r < rowTiles; r++ {
			for c := cg; c < hi; c++ {
				order = append(order, r*colTiles+c)
			}
		}
	}
	return order
}

// TileRect returns the output rectangle of the tile with row-major index
// idx: top-left (r0, c0) and extent (TileM x TileN).
func (p *Plan) TileRect(idx int) (r0, c0, rows, cols int) {
	if idx < 0 || idx >= p.Tiles {
		panic(fmt.Sprintf("gemm: tile index %d out of %d", idx, p.Tiles))
	}
	tr, tc := idx/p.ColTiles, idx%p.ColTiles
	return tr * p.Cfg.TileM, tc * p.Cfg.TileN, p.Cfg.TileM, p.Cfg.TileN
}

// Waves reports the number of execution waves given sms concurrent tiles.
func (p *Plan) Waves(sms int) int {
	if sms <= 0 {
		panic(fmt.Sprintf("gemm: non-positive SM count %d", sms))
	}
	return (p.Tiles + sms - 1) / sms
}

// WaveOfPos reports which wave the tile at execution position pos belongs
// to, given sms concurrent tiles per wave.
func (p *Plan) WaveOfPos(pos, sms int) int {
	if pos < 0 || pos >= p.Tiles {
		panic(fmt.Sprintf("gemm: position %d out of %d", pos, p.Tiles))
	}
	if sms <= 0 {
		panic(fmt.Sprintf("gemm: non-positive SM count %d", sms))
	}
	return pos / sms
}

// WaveTiles returns the execution positions [lo, hi) belonging to wave w.
func (p *Plan) WaveTiles(w, sms int) (lo, hi int) {
	waves := p.Waves(sms)
	if w < 0 || w >= waves {
		panic(fmt.Sprintf("gemm: wave %d out of %d", w, waves))
	}
	lo = w * sms
	hi = lo + sms
	if hi > p.Tiles {
		hi = p.Tiles
	}
	return lo, hi
}

// TileBytes is the half-precision footprint of one output tile.
func (p *Plan) TileBytes() int64 { return int64(p.Cfg.TileM) * int64(p.Cfg.TileN) * 2 }

// CostModel turns a plan into durations on a specific GPU. It is a
// max(compute, memory) roofline per tile:
//
//	compute = 2*tm*tn*K / (perSM FLOPs * eff(K))
//	memory  = tileTraffic * activeSMs / memBW
//
// where eff(K) = MaxEfficiency * K/(K+MainloopHalfK) captures main-loop
// prologue/epilogue amortization, and tile traffic assumes a CacheReuse-fold
// reduction of A/B reads from L2 reuse across the wave.
type CostModel struct {
	GPU hw.GPUSpec
	// CacheReuse is the assumed L2 reuse factor for A/B operand traffic.
	CacheReuse float64
}

// NewCostModel returns the cost model used throughout the repository.
func NewCostModel(g hw.GPUSpec) CostModel {
	return CostModel{GPU: g, CacheReuse: 8}
}

// Efficiency returns the fraction of peak FLOPs reached at depth K.
func (cm CostModel) Efficiency(k int) float64 {
	return cm.GPU.MaxEfficiency * float64(k) / (float64(k) + cm.GPU.MainloopHalfK)
}

// TileTime is the duration of one wave (one tile per active SM), with
// activeSMs tiles in flight.
func (cm CostModel) TileTime(p *Plan, activeSMs int) sim.Time {
	if activeSMs <= 0 {
		panic(fmt.Sprintf("gemm: non-positive SM count %d", activeSMs))
	}
	tm, tn, k := float64(p.Cfg.TileM), float64(p.Cfg.TileN), float64(p.Shape.K)
	flops := 2 * tm * tn * k
	compute := flops / (cm.GPU.FlopsPerSM() * cm.Efficiency(p.Shape.K))
	traffic := ((tm*k+k*tn)/cm.CacheReuse + tm*tn) * 2 // bytes, half precision
	memory := traffic * float64(activeSMs) / cm.GPU.MemBandwidth
	t := compute
	if memory > t {
		t = memory
	}
	return sim.FromSeconds(t)
}

// Duration is the full kernel latency with activeSMs SMs: launch overhead
// plus one TileTime per wave. A trailing partial wave costs a full wave —
// idle SMs cannot shorten the straggler tiles.
func (cm CostModel) Duration(p *Plan, activeSMs int) sim.Time {
	return cm.GPU.KernelLaunch + sim.Time(int64(p.Waves(activeSMs)))*cm.TileTime(p, activeSMs)
}

// WaveEnd is the completion time of wave w relative to kernel start.
func (cm CostModel) WaveEnd(p *Plan, activeSMs, w int) sim.Time {
	waves := p.Waves(activeSMs)
	if w < 0 || w >= waves {
		panic(fmt.Sprintf("gemm: wave %d out of %d", w, waves))
	}
	return cm.GPU.KernelLaunch + sim.Time(int64(w+1))*cm.TileTime(p, activeSMs)
}

// TileCompletions returns the per-tile completion times (relative to kernel
// start) indexed by execution position. Tiles of one wave complete within
// an intra-wave spread of ~5% of the wave duration (§3.2.3), modeled with
// deterministic per-position jitter; the last tile of each wave lands
// exactly on the wave boundary so WaveEnd stays an upper bound.
func (cm CostModel) TileCompletions(p *Plan, activeSMs int, seed uint64) []sim.Time {
	tt := cm.TileTime(p, activeSMs)
	j := stats.NewJitter(seed)
	out := make([]sim.Time, p.Tiles)
	spread := float64(tt) * 0.05
	for pos := 0; pos < p.Tiles; pos++ {
		w := pos / activeSMs
		end := cm.GPU.KernelLaunch + sim.Time(int64(w+1))*tt
		_, hi := p.WaveTiles(w, activeSMs)
		if pos == hi-1 {
			out[pos] = end // wave straggler defines the boundary
			continue
		}
		out[pos] = end - sim.Time(spread*j.Uniform(uint64(pos)))
	}
	return out
}
