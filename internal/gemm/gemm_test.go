package gemm

import (
	"testing"
	"testing/quick"

	"repro/internal/hw"
	"repro/internal/tensor"
)

func mustPlan(t *testing.T, s Shape, cfg Config) *Plan {
	t.Helper()
	p, err := NewPlan(s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestShapeBasics(t *testing.T) {
	s := Shape{M: 4, N: 8, K: 2}
	if s.Flops() != 128 {
		t.Fatalf("Flops = %v, want 128", s.Flops())
	}
	if s.OutputBytes() != 64 {
		t.Fatalf("OutputBytes = %v, want 64", s.OutputBytes())
	}
	if s.Validate() != nil {
		t.Fatal("valid shape rejected")
	}
	if (Shape{M: 0, N: 1, K: 1}).Validate() == nil {
		t.Fatal("invalid shape accepted")
	}
	if s.String() != "M4-N8-K2" {
		t.Fatalf("String = %q", s.String())
	}
}

func TestDefaultConfigDivides(t *testing.T) {
	shapes := []Shape{
		{2048, 8192, 8192},
		{100, 36, 7}, // awkward sizes still get a dividing tile
		{128, 128, 128},
	}
	for _, s := range shapes {
		cfg := DefaultConfig(s)
		if s.M%cfg.TileM != 0 || s.N%cfg.TileN != 0 {
			t.Errorf("DefaultConfig(%v) = %+v does not divide", s, cfg)
		}
	}
	if cfg := DefaultConfig(Shape{2048, 8192, 8192}); cfg.TileM != 128 || cfg.TileN != 128 {
		t.Errorf("large shape should pick 128x128 tiles, got %+v", cfg)
	}
}

func TestNewPlanValidation(t *testing.T) {
	if _, err := NewPlan(Shape{100, 100, 100}, Config{TileM: 64, TileN: 64}); err == nil {
		t.Error("non-dividing tile accepted")
	}
	if _, err := NewPlan(Shape{-1, 1, 1}, Config{TileM: 1, TileN: 1}); err == nil {
		t.Error("negative shape accepted")
	}
	if _, err := NewPlan(Shape{4, 4, 4}, Config{TileM: 0, TileN: 2}); err == nil {
		t.Error("zero tile accepted")
	}
}

func TestPlanGrid(t *testing.T) {
	p := mustPlan(t, Shape{256, 512, 64}, Config{TileM: 128, TileN: 128, Swizzle: 1})
	if p.RowTiles != 2 || p.ColTiles != 4 || p.Tiles != 8 {
		t.Fatalf("grid = %dx%d (%d tiles)", p.RowTiles, p.ColTiles, p.Tiles)
	}
	if p.TileBytes() != 128*128*2 {
		t.Fatalf("TileBytes = %d", p.TileBytes())
	}
}

func TestIdentityOrderWithoutSwizzle(t *testing.T) {
	p := mustPlan(t, Shape{256, 512, 64}, Config{TileM: 128, TileN: 128, Swizzle: 1})
	for pos, idx := range p.Order {
		if pos != idx {
			t.Fatalf("Order[%d] = %d, want identity without swizzle", pos, idx)
		}
	}
}

func TestSwizzleOrderIsPermutation(t *testing.T) {
	p := mustPlan(t, Shape{512, 768, 64}, Config{TileM: 128, TileN: 128, Swizzle: 2})
	seen := make([]bool, p.Tiles)
	for _, idx := range p.Order {
		if idx < 0 || idx >= p.Tiles || seen[idx] {
			t.Fatalf("Order is not a permutation: %v", p.Order)
		}
		seen[idx] = true
	}
	// Pos must be the inverse.
	for pos, idx := range p.Order {
		if p.Pos[idx] != pos {
			t.Fatalf("Pos[%d] = %d, want %d", idx, p.Pos[idx], pos)
		}
	}
}

func TestSwizzleOrderIsNotIdentity(t *testing.T) {
	// 4 row-tiles x 6 col-tiles with swizzle 2: the second dispatched tile
	// should be from the same column group, next row region per Fig. 2(b)
	// semantics (non-monotonic in row-major index).
	p := mustPlan(t, Shape{512, 768, 64}, Config{TileM: 128, TileN: 128, Swizzle: 2})
	identity := true
	for pos, idx := range p.Order {
		if pos != idx {
			identity = false
			break
		}
	}
	if identity {
		t.Fatal("swizzled order should differ from identity")
	}
}

func TestSwizzleExample(t *testing.T) {
	// 2x3 tile grid, swizzle 2: column groups {0,1} then {2}.
	// Expected dispatch: (0,0)(0,1)(1,0)(1,1) then (0,2)(1,2)
	// = indices 0,1,3,4,2,5.
	p := mustPlan(t, Shape{2, 3, 1}, Config{TileM: 1, TileN: 1, Swizzle: 2})
	want := []int{0, 1, 3, 4, 2, 5}
	for i, w := range want {
		if p.Order[i] != w {
			t.Fatalf("Order = %v, want %v", p.Order, want)
		}
	}
}

func TestTileRect(t *testing.T) {
	p := mustPlan(t, Shape{256, 384, 64}, Config{TileM: 128, TileN: 128, Swizzle: 1})
	r0, c0, rows, cols := p.TileRect(4) // tile (1,1) in a 2x3 grid
	if r0 != 128 || c0 != 128 || rows != 128 || cols != 128 {
		t.Fatalf("TileRect(4) = (%d,%d,%d,%d)", r0, c0, rows, cols)
	}
	defer func() {
		if recover() == nil {
			t.Error("out-of-range tile index did not panic")
		}
	}()
	p.TileRect(6)
}

func TestWaves(t *testing.T) {
	p := mustPlan(t, Shape{16, 32, 4}, Config{TileM: 2, TileN: 2, Swizzle: 1}) // 8*16=128 tiles
	cases := []struct{ sms, want int }{
		{128, 1}, {64, 2}, {100, 2}, {127, 2}, {1, 128},
	}
	for _, c := range cases {
		if got := p.Waves(c.sms); got != c.want {
			t.Errorf("Waves(%d) = %d, want %d", c.sms, got, c.want)
		}
	}
}

func TestWaveTilesPartition(t *testing.T) {
	p := mustPlan(t, Shape{10, 10, 4}, Config{TileM: 2, TileN: 2, Swizzle: 1}) // 25 tiles
	sms := 8
	covered := 0
	for w := 0; w < p.Waves(sms); w++ {
		lo, hi := p.WaveTiles(w, sms)
		if lo != covered {
			t.Fatalf("wave %d starts at %d, want %d", w, lo, covered)
		}
		covered = hi
		for pos := lo; pos < hi; pos++ {
			if p.WaveOfPos(pos, sms) != w {
				t.Fatalf("WaveOfPos(%d) != %d", pos, w)
			}
		}
	}
	if covered != p.Tiles {
		t.Fatalf("waves cover %d of %d tiles", covered, p.Tiles)
	}
	// Last wave is partial: 25 = 3*8 + 1.
	lo, hi := p.WaveTiles(3, sms)
	if hi-lo != 1 {
		t.Fatalf("last wave has %d tiles, want 1", hi-lo)
	}
}

// The paper's running example: M=2048, N=K=8192 on an RTX 4090 yields 512
// tiles in 4 waves of 128 (Fig. 3 uses 128x256 tiles: 16 x 32 = 512).
func TestPaperFig3WaveCount(t *testing.T) {
	p := mustPlan(t, Shape{2048, 8192, 8192}, Config{TileM: 128, TileN: 256, Swizzle: 3})
	if p.Tiles != 512 {
		t.Fatalf("tiles = %d, want 512", p.Tiles)
	}
	if got := p.Waves(128); got != 4 {
		t.Fatalf("waves = %d, want 4 (paper: 512 tiles / 128 SMs)", got)
	}
}

func TestCostModelMonotonicity(t *testing.T) {
	cm := NewCostModel(hw.RTX4090PCIe().GPU)
	p := mustPlan(t, Shape{2048, 8192, 8192}, Config{TileM: 128, TileN: 128, Swizzle: 3})
	// Fewer SMs -> more waves -> longer duration.
	d128 := cm.Duration(p, 128)
	d96 := cm.Duration(p, 96)
	if d96 <= d128 {
		t.Fatalf("Duration(96 SMs)=%v should exceed Duration(128 SMs)=%v", d96, d128)
	}
	// Larger K -> longer tiles.
	p2 := mustPlan(t, Shape{2048, 8192, 2048}, Config{TileM: 128, TileN: 128, Swizzle: 3})
	if cm.TileTime(p2, 128) >= cm.TileTime(p, 128) {
		t.Fatal("TileTime should grow with K")
	}
}

func TestCostModelEfficiencyRamp(t *testing.T) {
	cm := NewCostModel(hw.A800NVLink().GPU)
	if cm.Efficiency(128) >= cm.Efficiency(8192) {
		t.Fatal("efficiency should ramp up with K")
	}
	if e := cm.Efficiency(1 << 20); e > cm.GPU.MaxEfficiency {
		t.Fatalf("efficiency %v exceeds max %v", e, cm.GPU.MaxEfficiency)
	}
}

func TestGEMMDurationRealistic(t *testing.T) {
	// 2*2048*8192*8192 = 275 GFLOP at ~75% of 330 TFLOPS ~= 1.1 ms.
	// The paper's Fig. 3 timeline spans ~1.2 ms. Accept 0.5-3 ms.
	cm := NewCostModel(hw.RTX4090PCIe().GPU)
	p := mustPlan(t, Shape{2048, 8192, 8192}, Config{TileM: 128, TileN: 256, Swizzle: 3})
	d := cm.Duration(p, 128).Millis()
	if d < 0.5 || d > 3 {
		t.Fatalf("GEMM duration = %v ms, want ~1.2 ms (order of magnitude)", d)
	}
}

func TestWaveEnds(t *testing.T) {
	cm := NewCostModel(hw.RTX4090PCIe().GPU)
	p := mustPlan(t, Shape{2048, 8192, 8192}, Config{TileM: 128, TileN: 256, Swizzle: 3})
	sms := 128
	last := cm.WaveEnd(p, sms, p.Waves(sms)-1)
	if last != cm.Duration(p, sms) {
		t.Fatalf("last wave end %v != duration %v", last, cm.Duration(p, sms))
	}
	for w := 1; w < p.Waves(sms); w++ {
		if cm.WaveEnd(p, sms, w) <= cm.WaveEnd(p, sms, w-1) {
			t.Fatal("wave ends not increasing")
		}
	}
}

func TestTileCompletionsWavePattern(t *testing.T) {
	cm := NewCostModel(hw.RTX4090PCIe().GPU)
	p := mustPlan(t, Shape{2048, 8192, 8192}, Config{TileM: 128, TileN: 256, Swizzle: 3})
	sms := 128
	comps := cm.TileCompletions(p, sms, 1)
	tt := cm.TileTime(p, sms)
	for pos, c := range comps {
		w := pos / sms
		end := cm.WaveEnd(p, sms, w)
		if c > end || c < end-tt/10 {
			t.Fatalf("tile %d completes at %v, outside 5%%-spread of wave end %v", pos, c, end)
		}
	}
	// The wave straggler sits exactly on the boundary.
	if comps[sms-1] != cm.WaveEnd(p, sms, 0) {
		t.Fatal("wave straggler should define the wave boundary")
	}
}

func TestComputeTileMatchesReference(t *testing.T) {
	s := Shape{8, 12, 5}
	p := mustPlan(t, s, Config{TileM: 4, TileN: 4, Swizzle: 2})
	a := tensor.New(s.M, s.K)
	b := tensor.New(s.K, s.N)
	a.FillRand(1)
	b.FillRand(2)
	ref := tensor.New(s.M, s.N)
	ComputeReference(ref, a, b, nil)
	for idx := 0; idx < p.Tiles; idx++ {
		tile := p.ComputeTile(a, b, idx, nil)
		r0, c0, rows, cols := p.TileRect(idx)
		for i := 0; i < rows; i++ {
			for j := 0; j < cols; j++ {
				if tile.At(i, j) != ref.At(r0+i, c0+j) {
					t.Fatalf("tile %d element (%d,%d) = %v, ref %v", idx, i, j, tile.At(i, j), ref.At(r0+i, c0+j))
				}
			}
		}
	}
}

func TestComputeAllTilesEqualsReference(t *testing.T) {
	s := Shape{16, 24, 7}
	p := mustPlan(t, s, Config{TileM: 4, TileN: 8, Swizzle: 2})
	a := tensor.New(s.M, s.K)
	b := tensor.New(s.K, s.N)
	a.FillRand(3)
	b.FillRand(4)
	ref := tensor.New(s.M, s.N)
	ComputeReference(ref, a, b, nil)
	got := p.ComputeAllTiles(a, b, nil)
	if !got.Equal(ref) {
		t.Fatalf("tiled result differs from reference, max diff %v", got.MaxDiff(ref))
	}
}

func TestEpilogueApplied(t *testing.T) {
	s := Shape{4, 4, 2}
	p := mustPlan(t, s, Config{TileM: 2, TileN: 2, Swizzle: 1})
	a := tensor.New(s.M, s.K)
	b := tensor.New(s.K, s.N)
	a.FillRand(5)
	b.FillRand(6)
	relu := func(v float32) float32 {
		if v < 0 {
			return 0
		}
		return v
	}
	ref := tensor.New(s.M, s.N)
	ComputeReference(ref, a, b, relu)
	got := p.ComputeAllTiles(a, b, relu)
	if !got.Equal(ref) {
		t.Fatal("epilogue-fused tiled result differs from reference")
	}
	neg := false
	for _, v := range got.Data {
		if v < 0 {
			neg = true
		}
	}
	if neg {
		t.Fatal("relu epilogue left negative values")
	}
}

func TestComputeTileOperandChecks(t *testing.T) {
	p := mustPlan(t, Shape{4, 4, 2}, Config{TileM: 2, TileN: 2, Swizzle: 1})
	defer func() {
		if recover() == nil {
			t.Error("mismatched operands did not panic")
		}
	}()
	p.ComputeTile(tensor.New(3, 2), tensor.New(2, 4), 0, nil)
}

// Property: swizzle order is a permutation for arbitrary grid shapes and
// swizzle sizes.
func TestSwizzlePermutationProperty(t *testing.T) {
	f := func(r, c, s uint8) bool {
		rt, ct := int(r%12)+1, int(c%12)+1
		sw := int(s % 6)
		order := swizzleOrder(rt, ct, sw)
		if len(order) != rt*ct {
			return false
		}
		seen := make([]bool, rt*ct)
		for _, idx := range order {
			if idx < 0 || idx >= rt*ct || seen[idx] {
				return false
			}
			seen[idx] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: tiled computation equals reference for random small shapes.
func TestTiledEqualsReferenceProperty(t *testing.T) {
	f := func(seed uint64, mi, ni, ki uint8) bool {
		m := (int(mi%4) + 1) * 4
		n := (int(ni%4) + 1) * 4
		k := int(ki%8) + 1
		s := Shape{M: m, N: n, K: k}
		p, err := NewPlan(s, Config{TileM: 4, TileN: 4, Swizzle: 2})
		if err != nil {
			return false
		}
		a := tensor.New(m, k)
		b := tensor.New(k, n)
		a.FillRand(seed)
		b.FillRand(seed + 1)
		ref := tensor.New(m, n)
		ComputeReference(ref, a, b, nil)
		return p.ComputeAllTiles(a, b, nil).Equal(ref)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
