package gemm

import (
	"fmt"
	"strings"
)

// Partition is a wave-group partition: element j is |G_j|, the number of
// waves in the j-th group (§3.4). Group sizes are positive and sum to the
// total wave count T. The communication of group j is signaled when its
// last wave completes.
type Partition []int

// Groups reports the number of wave groups P.
func (p Partition) Groups() int { return len(p) }

// TotalWaves reports the sum of group sizes.
func (p Partition) TotalWaves() int {
	t := 0
	for _, g := range p {
		t += g
	}
	return t
}

// Validate checks that p is a legal partition of T waves.
func (p Partition) Validate(t int) error {
	if len(p) == 0 {
		return fmt.Errorf("gemm: empty partition")
	}
	sum := 0
	for j, g := range p {
		if g <= 0 {
			return fmt.Errorf("gemm: group %d has non-positive size %d", j, g)
		}
		sum += g
	}
	if sum != t {
		return fmt.Errorf("gemm: partition %v sums to %d waves, want %d", p, sum, t)
	}
	return nil
}

// String renders like the paper, e.g. "(1, 2, 2)".
func (p Partition) String() string {
	parts := make([]string, len(p))
	for i, g := range p {
		parts[i] = fmt.Sprint(g)
	}
	return "(" + strings.Join(parts, ", ") + ")"
}

// SingleGroup returns the degenerate partition with all T waves in one
// group — equivalent to no overlap within the kernel (communication starts
// only when everything is done).
func SingleGroup(t int) Partition { return Partition{t} }

// PerWave returns the baseline partition with one wave per group — the most
// fine-grained overlap (§4.1.1's baseline).
func PerWave(t int) Partition {
	p := make(Partition, t)
	for i := range p {
		p[i] = 1
	}
	return p
}

// EqualSized returns the partition with groups of gs waves each (the last
// group absorbs the remainder), the "Egs=n" strategy of Fig. 14.
func EqualSized(t, gs int) Partition {
	if gs <= 0 {
		panic(fmt.Sprintf("gemm: non-positive group size %d", gs))
	}
	if gs >= t {
		return SingleGroup(t)
	}
	var p Partition
	left := t
	for left > 0 {
		g := gs
		if g > left {
			g = left
		}
		p = append(p, g)
		left -= g
	}
	// Fold a trailing runt smaller than half a group into its
	// predecessor so "equal sized" stays honest.
	if len(p) >= 2 && p[len(p)-1]*2 < gs {
		p[len(p)-2] += p[len(p)-1]
		p = p[:len(p)-1]
	}
	return p
}

// GroupBound holds a wave group's extent in waves and tile positions.
type GroupBound struct {
	WaveLo, WaveHi int // waves [WaveLo, WaveHi)
	PosLo, PosHi   int // execution positions [PosLo, PosHi)
}

// Tiles reports the group's tile count.
func (b GroupBound) Tiles() int { return b.PosHi - b.PosLo }

// Bounds resolves the partition into tile-position ranges for a plan
// executing with activeSMs concurrent tiles. It panics if the partition
// does not match the plan's wave count — mismatches are tuner bugs.
func (p Partition) Bounds(plan *Plan, activeSMs int) []GroupBound {
	t := plan.Waves(activeSMs)
	if err := p.Validate(t); err != nil {
		panic(err)
	}
	out := make([]GroupBound, len(p))
	w := 0
	for j, g := range p {
		b := GroupBound{WaveLo: w, WaveHi: w + g}
		b.PosLo = b.WaveLo * activeSMs
		b.PosHi = b.WaveHi * activeSMs
		if b.PosHi > plan.Tiles {
			b.PosHi = plan.Tiles
		}
		out[j] = b
		w += g
	}
	return out
}

// BoundsClamped resolves the partition like Bounds but tolerates a wave
// width that does not factor the plan exactly: thresholds are cumulative
// group sizes times waveSize, clamped to the tile count, and groups that
// end up empty are dropped. This models a *misconfigured* wave size
// (Fig. 14's "mw" bar): the partition was tuned for the true wave width,
// but the counting thresholds are computed with a wrong one, so groups
// swallow more tiles than intended and trailing groups collapse.
func (p Partition) BoundsClamped(plan *Plan, waveSize int) []GroupBound {
	if waveSize <= 0 {
		panic(fmt.Sprintf("gemm: non-positive wave size %d", waveSize))
	}
	if p.TotalWaves()*waveSize < plan.Tiles {
		panic(fmt.Sprintf("gemm: partition %v at wave size %d covers %d < %d tiles",
			p, waveSize, p.TotalWaves()*waveSize, plan.Tiles))
	}
	var out []GroupBound
	pos, w := 0, 0
	for _, g := range p {
		if g <= 0 {
			panic(fmt.Sprintf("gemm: non-positive group size %d", g))
		}
		b := GroupBound{WaveLo: w, WaveHi: w + g, PosLo: pos, PosHi: (w + g) * waveSize}
		if b.PosHi > plan.Tiles {
			b.PosHi = plan.Tiles
		}
		w += g
		if b.PosHi > b.PosLo {
			out = append(out, b)
			pos = b.PosHi
		}
	}
	return out
}

// Clone returns an independent copy.
func (p Partition) Clone() Partition {
	c := make(Partition, len(p))
	copy(c, p)
	return c
}
