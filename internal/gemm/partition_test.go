package gemm

import (
	"testing"
	"testing/quick"
)

func partitionPlan(t *testing.T, tiles int) *Plan {
	t.Helper()
	p, err := NewPlan(Shape{M: tiles, N: 1, K: 1}, Config{TileM: 1, TileN: 1})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestBoundsClampedExactFit(t *testing.T) {
	p := partitionPlan(t, 12)
	// Partition (1,2) at wave size 4 covers exactly 12 tiles.
	bounds := Partition{1, 2}.BoundsClamped(p, 4)
	if len(bounds) != 2 {
		t.Fatalf("bounds = %v", bounds)
	}
	if bounds[0].PosHi != 4 || bounds[1].PosHi != 12 {
		t.Fatalf("bounds = %+v", bounds)
	}
}

func TestBoundsClampedOvershoot(t *testing.T) {
	p := partitionPlan(t, 12)
	// Wave size 5: thresholds 5, 15->12; trailing group absorbs less.
	bounds := Partition{1, 2}.BoundsClamped(p, 5)
	if len(bounds) != 2 {
		t.Fatalf("bounds = %v", bounds)
	}
	if bounds[0].PosHi != 5 || bounds[1].PosHi != 12 {
		t.Fatalf("bounds = %+v", bounds)
	}
}

func TestBoundsClampedDropsEmptyGroups(t *testing.T) {
	p := partitionPlan(t, 12)
	// Wave size 10: thresholds 10, 30->12, 40->12; third group is empty.
	bounds := Partition{1, 2, 1}.BoundsClamped(p, 10)
	if len(bounds) != 2 {
		t.Fatalf("bounds = %v, want empty trailing group dropped", bounds)
	}
	if bounds[1].PosLo != 10 || bounds[1].PosHi != 12 {
		t.Fatalf("bounds = %+v", bounds)
	}
}

func TestBoundsClampedPanics(t *testing.T) {
	p := partitionPlan(t, 12)
	for name, fn := range map[string]func(){
		"wave-size": func() { Partition{12}.BoundsClamped(p, 0) },
		"coverage":  func() { Partition{1}.BoundsClamped(p, 4) },
		"neg-group": func() { Partition{-1, 20}.BoundsClamped(p, 4) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			fn()
		}()
	}
}

// Property: clamped bounds always partition [0, Tiles) contiguously with
// non-empty groups, for any covering partition and wave size.
func TestBoundsClampedPartitionProperty(t *testing.T) {
	f := func(tilesRaw, waveRaw uint8, sizes [4]uint8) bool {
		tiles := int(tilesRaw%60) + 1
		wave := int(waveRaw%12) + 1
		var part Partition
		total := 0
		for _, s := range sizes {
			g := int(s%4) + 1
			part = append(part, g)
			total += g
		}
		if total*wave < tiles {
			return true // not a covering partition; skip
		}
		p, err := NewPlan(Shape{M: tiles, N: 1, K: 1}, Config{TileM: 1, TileN: 1})
		if err != nil {
			return false
		}
		bounds := part.BoundsClamped(p, wave)
		covered := 0
		for _, b := range bounds {
			if b.PosLo != covered || b.PosHi <= b.PosLo {
				return false
			}
			covered = b.PosHi
		}
		return covered == tiles
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Bounds group tile counts sum to the plan's tiles and waves map
// to the wave range they claim.
func TestBoundsProperty(t *testing.T) {
	f := func(tilesRaw, waveRaw uint8) bool {
		tiles := int(tilesRaw%60) + 1
		wave := int(waveRaw%12) + 1
		p, err := NewPlan(Shape{M: tiles, N: 1, K: 1}, Config{TileM: 1, TileN: 1})
		if err != nil {
			return false
		}
		t := p.Waves(wave)
		part := EqualSized(t, 2)
		bounds := part.Bounds(p, wave)
		covered := 0
		for _, b := range bounds {
			if b.PosLo != covered {
				return false
			}
			covered = b.PosHi
		}
		return covered == tiles
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
