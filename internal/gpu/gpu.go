// Package gpu models the execution semantics of a CUDA-like device on top
// of the discrete-event simulator: streams are FIFO queues of kernels,
// kernels occupy SMs for a modeled duration, signals carry cross-stream
// dependencies (the paper's counting-table signaling maps onto them), and
// rendezvous objects implement the all-ranks-must-arrive semantics of
// collective launches.
//
// Only the semantics the overlap designs depend on are modeled:
//
//   - in-order execution within a stream, concurrency across streams;
//   - kernel durations resolved at start time, so a kernel can observe how
//     many SMs the NCCL-analog has reserved at that instant (SM contention);
//   - signals that fire at a virtual timestamp and release waiting streams.
package gpu

import (
	"fmt"

	"repro/internal/hw"
	"repro/internal/sim"
	"repro/internal/stats"
)

// Span records one kernel execution for tracing (Fig. 3-style timelines and
// the end-to-end breakdowns use these).
type Span struct {
	Device     int
	Stream     string
	Name       string
	Start, End sim.Time
	SMs        int
}

// Device is one simulated GPU.
type Device struct {
	ID   int
	Plat hw.Platform
	Sim  *sim.Simulator

	commSMs int // SMs currently reserved by in-flight collectives

	// Trace accumulates kernel spans when TraceEnabled is set.
	TraceEnabled bool
	Trace        []Span

	jitter stats.Jitter
	kernel uint64 // per-device kernel counter for jitter keys
}

// NewDevice creates a device bound to the simulator.
func NewDevice(s *sim.Simulator, plat hw.Platform, id int) *Device {
	if err := plat.Validate(); err != nil {
		panic(err)
	}
	return &Device{
		ID:     id,
		Plat:   plat,
		Sim:    s,
		jitter: stats.NewJitter(plat.JitterSeed + uint64(id)*0x9e37),
	}
}

// CommReservedSMs reports the SMs currently held by collective kernels.
func (d *Device) CommReservedSMs() int { return d.commSMs }

// AvailableSMs reports SMs free for compute at this instant.
func (d *Device) AvailableSMs() int {
	n := d.Plat.GPU.SMs - d.commSMs
	if n < 1 {
		n = 1 // compute can always make some progress
	}
	return n
}

// reserveComm acquires n SMs for a collective; release is returned.
func (d *Device) reserveComm(n int) (release func()) {
	if n < 0 {
		panic(fmt.Sprintf("gpu: negative SM reservation %d", n))
	}
	d.commSMs += n
	released := false
	return func() {
		if released {
			panic("gpu: double release of comm SMs")
		}
		released = true
		d.commSMs -= n
		if d.commSMs < 0 {
			panic("gpu: comm SM accounting went negative")
		}
	}
}

// JitterFactor returns the deterministic measurement-noise factor for the
// next kernel on this device. Every call advances the key so repeated
// kernels get independent (but reproducible) perturbations.
func (d *Device) JitterFactor() float64 {
	d.kernel++
	return d.jitter.Factor(d.Plat.JitterAmplitude, d.kernel)
}

func (d *Device) addSpan(sp Span) {
	if d.TraceEnabled {
		d.Trace = append(d.Trace, sp)
	}
}

// Signal is a one-shot cross-stream event. It fires at a virtual time;
// streams (or arbitrary callbacks) waiting on it resume at max(now, fire
// time). This models both CUDA events and the paper's counting-table
// signals.
type Signal struct {
	sim     *sim.Simulator
	name    string
	fired   bool
	at      sim.Time
	waiters []func(at sim.Time)
}

// NewSignal creates an unfired signal.
func NewSignal(s *sim.Simulator, name string) *Signal {
	return &Signal{sim: s, name: name}
}

// Fire marks the signal as fired at the current virtual time and wakes
// waiters. Firing twice panics: the counting table only crosses each group
// threshold once.
func (s *Signal) Fire() {
	if s.fired {
		panic(fmt.Sprintf("gpu: signal %q fired twice", s.name))
	}
	s.fired = true
	s.at = s.sim.Now()
	for _, w := range s.waiters {
		w(s.at)
	}
	s.waiters = nil
}

// Fired reports whether the signal has fired, and when.
func (s *Signal) Fired() (bool, sim.Time) { return s.fired, s.at }

// Wait invokes fn as soon as the signal has fired (immediately if it
// already has). fn receives the fire time.
func (s *Signal) Wait(fn func(at sim.Time)) {
	if s.fired {
		fn(s.at)
		return
	}
	s.waiters = append(s.waiters, fn)
}

// op is one queue entry in a stream.
type op interface {
	// run executes the op; done must be called exactly once when the op
	// completes so the stream can advance.
	run(st *Stream, done func())
}

// Stream is an in-order execution queue on one device.
type Stream struct {
	Dev  *Device
	Name string

	queue   []op
	running bool
	idle    []func() // callbacks for Drain
}

// NewStream creates a named stream on dev.
func NewStream(dev *Device, name string) *Stream {
	return &Stream{Dev: dev, Name: name}
}

func (st *Stream) enqueue(o op) {
	st.queue = append(st.queue, o)
	st.pump()
}

func (st *Stream) pump() {
	if st.running {
		return
	}
	if len(st.queue) == 0 {
		for _, fn := range st.idle {
			fn()
		}
		st.idle = nil
		return
	}
	st.running = true
	next := st.queue[0]
	st.queue = st.queue[1:]
	next.run(st, func() {
		st.running = false
		st.pump()
	})
}

// KernelSpec describes a compute kernel to launch.
type KernelSpec struct {
	Name string
	// SMs the kernel will be attributed in the trace (informational; the
	// duration function is responsible for folding contention in).
	SMs int
	// Duration resolves the kernel's runtime at its start instant; it may
	// inspect the device (e.g. AvailableSMs) to model contention.
	Duration func(dev *Device, start sim.Time) sim.Time
	// OnStart, if non-nil, runs at the kernel's start time.
	OnStart func(start sim.Time)
	// OnComplete, if non-nil, runs at the kernel's end time; this is where
	// functional work (actual arithmetic/data movement) happens.
	OnComplete func(end sim.Time)
}

type kernelOp struct{ spec KernelSpec }

func (k kernelOp) run(st *Stream, done func()) {
	dev := st.Dev
	start := dev.Sim.Now()
	if k.spec.OnStart != nil {
		k.spec.OnStart(start)
	}
	d := k.spec.Duration(dev, start)
	if d < 0 {
		panic(fmt.Sprintf("gpu: kernel %q negative duration %v", k.spec.Name, d))
	}
	dev.Sim.After(d, func() {
		end := dev.Sim.Now()
		dev.addSpan(Span{Device: dev.ID, Stream: st.Name, Name: k.spec.Name, Start: start, End: end, SMs: k.spec.SMs})
		if k.spec.OnComplete != nil {
			k.spec.OnComplete(end)
		}
		done()
	})
}

// Launch enqueues a kernel on the stream.
func (st *Stream) Launch(spec KernelSpec) {
	if spec.Duration == nil {
		panic(fmt.Sprintf("gpu: kernel %q has no duration model", spec.Name))
	}
	st.enqueue(kernelOp{spec: spec})
}

type waitOp struct {
	sig  *Signal
	poll sim.Time
}

func (w waitOp) run(st *Stream, done func()) {
	s := st.Dev.Sim
	w.sig.Wait(func(at sim.Time) {
		resume := sim.Max(s.Now(), at)
		// The signaling kernel polls the counting table periodically
		// (§5); quantize the release to the next poll boundary to model
		// that cost. poll == 0 means an ideal, instantaneous wait.
		if w.poll > 0 {
			offset := resume % w.poll
			if offset != 0 {
				resume += w.poll - offset
			}
		}
		s.At(resume, done)
	})
}

// WaitSignal blocks the stream until sig fires. poll > 0 quantizes the
// wake-up to the signaling kernel's polling period.
func (st *Stream) WaitSignal(sig *Signal, poll sim.Time) {
	st.enqueue(waitOp{sig: sig, poll: poll})
}

type recordOp struct{ sig *Signal }

func (r recordOp) run(st *Stream, done func()) {
	r.sig.Fire()
	done()
}

// Record enqueues an event that fires sig once all previously enqueued work
// on the stream has completed (CUDA's cudaEventRecord).
func (st *Stream) Record(sig *Signal) {
	st.enqueue(recordOp{sig: sig})
}

// OnDrain registers fn to run the next time the stream has no queued or
// running work. If the stream is already idle, fn runs immediately.
func (st *Stream) OnDrain(fn func()) {
	if !st.running && len(st.queue) == 0 {
		fn()
		return
	}
	st.idle = append(st.idle, fn)
}

// Rendezvous coordinates a collective launch across n streams: each
// participant enqueues a Join op; the collective's duration is resolved once
// every rank has arrived, SMs are reserved on every device for its
// lifetime, and all participant streams resume together at the end.
type Rendezvous struct {
	Name string
	// Duration resolves the collective's runtime once all ranks arrived.
	Duration func(start sim.Time) sim.Time
	// SMs reserved per device while the collective is in flight.
	SMs int
	// OnComplete runs once (not per rank) at the end time; functional
	// data movement goes here.
	OnComplete func(end sim.Time)

	n        int
	arrived  int
	releases []func()
	devs     []*Device
	streams  []*Stream
	dones    []func()
	started  bool
}

// NewRendezvous creates a rendezvous for n participants.
func NewRendezvous(name string, n int, smPerDev int, duration func(start sim.Time) sim.Time) *Rendezvous {
	if n < 1 {
		panic("gpu: rendezvous needs at least one participant")
	}
	return &Rendezvous{Name: name, Duration: duration, SMs: smPerDev, n: n}
}

type joinOp struct{ rv *Rendezvous }

func (j joinOp) run(st *Stream, done func()) {
	rv := j.rv
	if rv.started {
		panic(fmt.Sprintf("gpu: join on already-started rendezvous %q", rv.Name))
	}
	rv.arrived++
	if rv.arrived > rv.n {
		panic(fmt.Sprintf("gpu: rendezvous %q has more joins than participants", rv.Name))
	}
	rv.devs = append(rv.devs, st.Dev)
	rv.streams = append(rv.streams, st)
	rv.dones = append(rv.dones, done)
	if rv.arrived < rv.n {
		return // stream stays blocked until the last rank arrives
	}
	rv.started = true
	s := st.Dev.Sim
	start := s.Now()
	for _, dev := range rv.devs {
		rv.releases = append(rv.releases, dev.reserveComm(rv.SMs))
	}
	d := rv.Duration(start)
	if d < 0 {
		panic(fmt.Sprintf("gpu: rendezvous %q negative duration %v", rv.Name, d))
	}
	s.After(d, func() {
		end := s.Now()
		for i, dev := range rv.devs {
			dev.addSpan(Span{Device: dev.ID, Stream: rv.streams[i].Name, Name: rv.Name, Start: start, End: end, SMs: rv.SMs})
		}
		for _, rel := range rv.releases {
			rel()
		}
		if rv.OnComplete != nil {
			rv.OnComplete(end)
		}
		for _, dn := range rv.dones {
			dn()
		}
	})
}

// Join enqueues this stream's participation in the rendezvous.
func (st *Stream) Join(rv *Rendezvous) {
	st.enqueue(joinOp{rv: rv})
}

// Cluster is a convenience holder for an n-GPU node sharing one simulator.
type Cluster struct {
	Sim     *sim.Simulator
	Plat    hw.Platform
	Devices []*Device
}

// NewCluster builds n devices on a fresh simulator.
func NewCluster(plat hw.Platform, n int) *Cluster {
	if n < 1 {
		panic("gpu: cluster needs at least one device")
	}
	s := sim.New()
	s.MaxSteps = 50_000_000 // livelock guard for model bugs
	c := &Cluster{Sim: s, Plat: plat}
	for i := 0; i < n; i++ {
		c.Devices = append(c.Devices, NewDevice(s, plat, i))
	}
	return c
}

// N reports the number of devices.
func (c *Cluster) N() int { return len(c.Devices) }

// EnableTrace turns on span recording for every device.
func (c *Cluster) EnableTrace() {
	for _, d := range c.Devices {
		d.TraceEnabled = true
	}
}
