package gpu

import (
	"testing"

	"repro/internal/hw"
	"repro/internal/sim"
)

func testCluster(t *testing.T, n int) *Cluster {
	t.Helper()
	return NewCluster(hw.RTX4090PCIe(), n)
}

func fixed(d sim.Time) func(*Device, sim.Time) sim.Time {
	return func(*Device, sim.Time) sim.Time { return d }
}

func TestStreamRunsKernelsInOrder(t *testing.T) {
	c := testCluster(t, 1)
	st := NewStream(c.Devices[0], "compute")
	var ends []sim.Time
	for i := 0; i < 3; i++ {
		st.Launch(KernelSpec{
			Name:       "k",
			Duration:   fixed(10),
			OnComplete: func(end sim.Time) { ends = append(ends, end) },
		})
	}
	c.Sim.Run()
	want := []sim.Time{10, 20, 30}
	if len(ends) != 3 {
		t.Fatalf("ends = %v", ends)
	}
	for i, w := range want {
		if ends[i] != w {
			t.Fatalf("ends = %v, want %v", ends, want)
		}
	}
}

func TestStreamsRunConcurrently(t *testing.T) {
	c := testCluster(t, 1)
	a := NewStream(c.Devices[0], "a")
	b := NewStream(c.Devices[0], "b")
	var endA, endB sim.Time
	a.Launch(KernelSpec{Name: "ka", Duration: fixed(100), OnComplete: func(e sim.Time) { endA = e }})
	b.Launch(KernelSpec{Name: "kb", Duration: fixed(100), OnComplete: func(e sim.Time) { endB = e }})
	c.Sim.Run()
	if endA != 100 || endB != 100 {
		t.Fatalf("streams serialized: endA=%v endB=%v, want both 100", endA, endB)
	}
}

func TestSignalGatesStream(t *testing.T) {
	c := testCluster(t, 1)
	dev := c.Devices[0]
	comp := NewStream(dev, "compute")
	comm := NewStream(dev, "comm")
	sig := NewSignal(c.Sim, "tileGroup")

	comp.Launch(KernelSpec{Name: "gemm", Duration: fixed(50)})
	comp.Record(sig)

	var commStart sim.Time = -1
	comm.WaitSignal(sig, 0)
	comm.Launch(KernelSpec{Name: "nccl", Duration: fixed(30), OnStart: func(s sim.Time) { commStart = s }})
	c.Sim.Run()
	if commStart != 50 {
		t.Fatalf("comm started at %v, want 50 (after signal)", commStart)
	}
}

func TestSignalAlreadyFired(t *testing.T) {
	c := testCluster(t, 1)
	sig := NewSignal(c.Sim, "s")
	sig.Fire()
	var at sim.Time = -1
	sig.Wait(func(a sim.Time) { at = a })
	if at != 0 {
		t.Fatalf("waiter on fired signal got %v, want immediate 0", at)
	}
	if ok, _ := sig.Fired(); !ok {
		t.Fatal("Fired() = false after Fire")
	}
}

func TestSignalDoubleFirePanics(t *testing.T) {
	c := testCluster(t, 1)
	sig := NewSignal(c.Sim, "s")
	sig.Fire()
	defer func() {
		if recover() == nil {
			t.Error("double fire did not panic")
		}
	}()
	sig.Fire()
}

func TestWaitSignalPollQuantization(t *testing.T) {
	c := testCluster(t, 1)
	dev := c.Devices[0]
	comp := NewStream(dev, "compute")
	comm := NewStream(dev, "comm")
	sig := NewSignal(c.Sim, "s")

	comp.Launch(KernelSpec{Name: "gemm", Duration: fixed(55)})
	comp.Record(sig)

	var start sim.Time = -1
	comm.WaitSignal(sig, 20) // polls at 0,20,40,60 -> wakes at 60
	comm.Launch(KernelSpec{Name: "k", Duration: fixed(1), OnStart: func(s sim.Time) { start = s }})
	c.Sim.Run()
	if start != 60 {
		t.Fatalf("poll-quantized start = %v, want 60", start)
	}
}

func TestRecordFiresAfterPriorWork(t *testing.T) {
	c := testCluster(t, 1)
	st := NewStream(c.Devices[0], "s")
	sig := NewSignal(c.Sim, "done")
	st.Launch(KernelSpec{Name: "k1", Duration: fixed(10)})
	st.Launch(KernelSpec{Name: "k2", Duration: fixed(15)})
	st.Record(sig)
	c.Sim.Run()
	ok, at := sig.Fired()
	if !ok || at != 25 {
		t.Fatalf("record fired=%v at=%v, want true at 25", ok, at)
	}
}

func TestRendezvousWaitsForAllRanks(t *testing.T) {
	c := testCluster(t, 2)
	s0 := NewStream(c.Devices[0], "comm")
	s1 := NewStream(c.Devices[1], "comm")

	var collStart, collEnd sim.Time = -1, -1
	rv := NewRendezvous("allreduce", 2, 4, func(start sim.Time) sim.Time {
		collStart = start
		return 40
	})
	rv.OnComplete = func(end sim.Time) { collEnd = end }

	// Rank 0 arrives at t=10, rank 1 at t=30.
	s0.Launch(KernelSpec{Name: "pre0", Duration: fixed(10)})
	s0.Join(rv)
	s1.Launch(KernelSpec{Name: "pre1", Duration: fixed(30)})
	s1.Join(rv)

	var after0, after1 sim.Time = -1, -1
	s0.Launch(KernelSpec{Name: "post0", Duration: fixed(1), OnStart: func(t sim.Time) { after0 = t }})
	s1.Launch(KernelSpec{Name: "post1", Duration: fixed(1), OnStart: func(t sim.Time) { after1 = t }})

	c.Sim.Run()
	if collStart != 30 {
		t.Fatalf("collective started at %v, want 30 (last arrival)", collStart)
	}
	if collEnd != 70 {
		t.Fatalf("collective ended at %v, want 70", collEnd)
	}
	if after0 != 70 || after1 != 70 {
		t.Fatalf("post kernels at %v/%v, want both 70", after0, after1)
	}
}

func TestRendezvousReservesSMs(t *testing.T) {
	c := testCluster(t, 2)
	s0 := NewStream(c.Devices[0], "comm")
	s1 := NewStream(c.Devices[1], "comm")
	comp := NewStream(c.Devices[0], "compute")

	rv := NewRendezvous("coll", 2, 8, func(sim.Time) sim.Time { return 100 })
	s0.Join(rv)
	s1.Join(rv)

	var seen int = -1
	// A compute kernel starting mid-collective must observe fewer SMs.
	comp.Launch(KernelSpec{Name: "idle", Duration: fixed(50)})
	comp.Launch(KernelSpec{
		Name: "gemm",
		Duration: func(dev *Device, _ sim.Time) sim.Time {
			seen = dev.AvailableSMs()
			return 1
		},
	})
	c.Sim.Run()
	total := c.Plat.GPU.SMs
	if seen != total-8 {
		t.Fatalf("mid-collective AvailableSMs = %d, want %d", seen, total-8)
	}
	if got := c.Devices[0].AvailableSMs(); got != total {
		t.Fatalf("post-collective AvailableSMs = %d, want %d (SMs not released)", got, total)
	}
}

func TestRendezvousTooManyJoinsPanics(t *testing.T) {
	c := testCluster(t, 1)
	st := NewStream(c.Devices[0], "s")
	rv := NewRendezvous("r", 1, 0, func(sim.Time) sim.Time { return 1 })
	st.Join(rv)
	st.Join(rv)
	defer func() {
		if recover() == nil {
			t.Error("extra join did not panic")
		}
	}()
	c.Sim.Run()
}

func TestTraceSpans(t *testing.T) {
	c := testCluster(t, 1)
	c.EnableTrace()
	st := NewStream(c.Devices[0], "compute")
	st.Launch(KernelSpec{Name: "gemm", SMs: 96, Duration: fixed(25)})
	c.Sim.Run()
	tr := c.Devices[0].Trace
	if len(tr) != 1 {
		t.Fatalf("trace has %d spans, want 1", len(tr))
	}
	sp := tr[0]
	if sp.Name != "gemm" || sp.Start != 0 || sp.End != 25 || sp.SMs != 96 || sp.Stream != "compute" {
		t.Fatalf("span = %+v", sp)
	}
}

func TestOnDrain(t *testing.T) {
	c := testCluster(t, 1)
	st := NewStream(c.Devices[0], "s")
	var drainAt sim.Time = -1
	st.Launch(KernelSpec{Name: "k", Duration: fixed(42)})
	st.OnDrain(func() { drainAt = c.Sim.Now() })
	c.Sim.Run()
	if drainAt != 42 {
		t.Fatalf("drain at %v, want 42", drainAt)
	}
	// Already-idle stream invokes immediately.
	ran := false
	st.OnDrain(func() { ran = true })
	if !ran {
		t.Fatal("OnDrain on idle stream should run immediately")
	}
}

func TestJitterFactorAdvances(t *testing.T) {
	c := testCluster(t, 1)
	d := c.Devices[0]
	a, b := d.JitterFactor(), d.JitterFactor()
	if a == b {
		t.Fatalf("consecutive jitter factors identical: %v", a)
	}
	amp := 1 + c.Plat.JitterAmplitude
	for _, f := range []float64{a, b} {
		if f < 1 || f >= amp {
			t.Fatalf("jitter factor %v out of [1,%v)", f, amp)
		}
	}
}

func TestDeviceJitterDiffersAcrossDevices(t *testing.T) {
	c := testCluster(t, 2)
	if c.Devices[0].JitterFactor() == c.Devices[1].JitterFactor() {
		t.Fatal("devices share jitter streams")
	}
}

func TestNegativeDurationPanics(t *testing.T) {
	c := testCluster(t, 1)
	st := NewStream(c.Devices[0], "s")
	defer func() {
		if recover() == nil {
			t.Error("negative duration did not panic")
		}
	}()
	// The stream is idle, so Launch pumps (and panics) immediately.
	st.Launch(KernelSpec{Name: "bad", Duration: fixed(-1)})
}

func TestLaunchWithoutDurationPanics(t *testing.T) {
	c := testCluster(t, 1)
	st := NewStream(c.Devices[0], "s")
	defer func() {
		if recover() == nil {
			t.Error("nil duration did not panic")
		}
	}()
	st.Launch(KernelSpec{Name: "bad"})
}

func TestClusterConstruction(t *testing.T) {
	c := NewCluster(hw.A800NVLink(), 4)
	if c.N() != 4 {
		t.Fatalf("N() = %d, want 4", c.N())
	}
	for i, d := range c.Devices {
		if d.ID != i {
			t.Fatalf("device %d has ID %d", i, d.ID)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("zero-device cluster did not panic")
		}
	}()
	NewCluster(hw.A800NVLink(), 0)
}
