// Package hw defines the hardware profiles the simulator runs against:
// GPU compute/memory specifications, interconnect characteristics, and
// per-primitive collective-communication bandwidth models. Profiles for the
// paper's three testbeds are provided: a PCIe box of RTX 4090s, an NVLink
// box of A800s, and a HUAWEI Ascend 910B node (§6.7).
//
// The collective model is the one the paper's tuner itself uses (Alg. 1):
// the effective bandwidth is a function of the message size, sampled offline
// and interpolated online. Here the underlying ground-truth curve is the
// saturating form B(S) = Peak * S / (S + HalfSize), which reproduces the
// sharp degradation below a size threshold shown in Fig. 8.
package hw

import (
	"fmt"

	"repro/internal/sim"
)

// Primitive identifies a collective communication primitive.
type Primitive int

const (
	AllReduce Primitive = iota
	ReduceScatter
	AllGather
	AllToAll
)

// String names the primitive like the paper does ("AR", "RS", ...).
func (p Primitive) String() string {
	switch p {
	case AllReduce:
		return "AllReduce"
	case ReduceScatter:
		return "ReduceScatter"
	case AllGather:
		return "AllGather"
	case AllToAll:
		return "AllToAll"
	default:
		return fmt.Sprintf("Primitive(%d)", int(p))
	}
}

// Short returns the abbreviated name used in figure labels ("AR", "RS",
// "AG", "A2A").
func (p Primitive) Short() string {
	switch p {
	case AllReduce:
		return "AR"
	case ReduceScatter:
		return "RS"
	case AllGather:
		return "AG"
	case AllToAll:
		return "A2A"
	default:
		return p.String()
	}
}

// Primitives lists all supported primitives in display order.
var Primitives = []Primitive{AllReduce, ReduceScatter, AllGather, AllToAll}

// GPUSpec describes one accelerator.
type GPUSpec struct {
	Name string
	// SMs is the number of streaming multiprocessors (or cube cores on
	// Ascend); it sets the wave width of tiled GEMM execution.
	SMs int
	// FP16TFLOPS is the whole-device half-precision tensor throughput.
	FP16TFLOPS float64
	// MemBandwidth is device memory bandwidth in bytes/second.
	MemBandwidth float64
	// KernelLaunch is the fixed cost of launching one kernel.
	KernelLaunch sim.Time
	// MainloopHalfK is the K value at which the GEMM main loop reaches
	// half of its asymptotic efficiency (prologue/epilogue amortization).
	MainloopHalfK float64
	// MaxEfficiency is the asymptotic fraction of peak FLOPS a tuned
	// GEMM reaches on this device.
	MaxEfficiency float64
}

// FlopsPerSM returns the per-SM half-precision throughput in FLOP/s.
func (g GPUSpec) FlopsPerSM() float64 {
	return g.FP16TFLOPS * 1e12 / float64(g.SMs)
}

// LinkSpec describes the inter-GPU fabric as seen by one ring direction.
type LinkSpec struct {
	Name string
	// PeakBusBW is the saturated per-GPU bus bandwidth in bytes/second.
	PeakBusBW float64
	// HalfSize is the message size (bytes) at which effective bandwidth
	// is half of PeakBusBW; it controls how deep the small-message cliff
	// in Fig. 8 is.
	HalfSize float64
	// BaseLatency is the fixed per-collective-call cost (kernel launch,
	// protocol setup, PCIe doorbells).
	BaseLatency sim.Time
	// PerHopLatency is the latency added per ring hop.
	PerHopLatency sim.Time
}

// EffectiveBW returns the ground-truth effective bus bandwidth for a message
// of the given size in bytes.
func (l LinkSpec) EffectiveBW(sizeBytes float64) float64 {
	if sizeBytes <= 0 {
		return l.PeakBusBW / (1 + l.HalfSize) // effectively the floor
	}
	return l.PeakBusBW * sizeBytes / (sizeBytes + l.HalfSize)
}

// TrafficFactor returns the per-GPU bus traffic multiplier of a primitive on
// n ranks under a ring algorithm: AllReduce moves 2(n-1)/n of the buffer,
// ReduceScatter/AllGather (n-1)/n, and All-to-All (n-1)/n of the buffer
// (each rank keeps 1/n locally).
func TrafficFactor(p Primitive, n int) float64 {
	if n < 1 {
		panic(fmt.Sprintf("hw: invalid rank count %d", n))
	}
	if n == 1 {
		return 0 // single-GPU collectives are local copies
	}
	f := float64(n-1) / float64(n)
	if p == AllReduce {
		return 2 * f
	}
	return f
}

// CollectiveTime is the ground-truth latency model for a collective over
// sizeBytes of per-GPU input on n ranks. The simulator's communication
// kernels consume this; the tuner is only allowed to see sampled
// (size, bandwidth) points, exactly like the paper's offline stage.
func (l LinkSpec) CollectiveTime(p Primitive, sizeBytes float64, n int) sim.Time {
	if n <= 1 {
		return l.BaseLatency
	}
	traffic := sizeBytes * TrafficFactor(p, n)
	bw := l.EffectiveBW(sizeBytes)
	hops := 2 * (n - 1)
	if p != AllReduce {
		hops = n - 1
	}
	return l.BaseLatency + sim.Time(float64(l.PerHopLatency)*float64(hops)) +
		sim.FromSeconds(traffic/bw)
}

// Platform bundles a GPU spec, a link spec, and simulator-facing constants
// for one testbed.
type Platform struct {
	Name string
	GPU  GPUSpec
	Link LinkSpec
	// CommSMs is the number of SMs a NCCL-analog collective occupies on
	// each device while in flight. A concurrently running GEMM sees
	// GPU.SMs - CommSMs (Alg. 1 line 3).
	CommSMs int
	// SignalPoll is the polling period of the signaling kernel that
	// watches the counting table (§5: "periodically querying").
	SignalPoll sim.Time
	// JitterAmplitude scales the deterministic measurement noise applied
	// to DES kernel durations (fraction, e.g. 0.04 = up to +4%).
	JitterAmplitude float64
	// JitterSeed seeds the deterministic noise source.
	JitterSeed uint64
}

// Validate checks internal consistency; experiment harnesses call it once
// per run so that a typo in a hand-edited profile fails loudly.
func (p Platform) Validate() error {
	switch {
	case p.GPU.SMs <= 0:
		return fmt.Errorf("hw: platform %s: SMs = %d", p.Name, p.GPU.SMs)
	case p.GPU.FP16TFLOPS <= 0:
		return fmt.Errorf("hw: platform %s: FP16TFLOPS = %v", p.Name, p.GPU.FP16TFLOPS)
	case p.GPU.MemBandwidth <= 0:
		return fmt.Errorf("hw: platform %s: MemBandwidth = %v", p.Name, p.GPU.MemBandwidth)
	case p.GPU.MaxEfficiency <= 0 || p.GPU.MaxEfficiency > 1:
		return fmt.Errorf("hw: platform %s: MaxEfficiency = %v", p.Name, p.GPU.MaxEfficiency)
	case p.Link.PeakBusBW <= 0:
		return fmt.Errorf("hw: platform %s: PeakBusBW = %v", p.Name, p.Link.PeakBusBW)
	case p.CommSMs < 0 || p.CommSMs >= p.GPU.SMs:
		return fmt.Errorf("hw: platform %s: CommSMs = %d of %d", p.Name, p.CommSMs, p.GPU.SMs)
	case p.SignalPoll <= 0:
		return fmt.Errorf("hw: platform %s: SignalPoll = %v", p.Name, p.SignalPoll)
	case p.JitterAmplitude < 0 || p.JitterAmplitude > 0.5:
		return fmt.Errorf("hw: platform %s: JitterAmplitude = %v", p.Name, p.JitterAmplitude)
	}
	return nil
}

// P2PCapable reports whether the platform supports peer-to-peer GPU access,
// which fusion-based baselines (FLUX) require. The paper's RTX 4090 server
// lacks P2P.
func (p Platform) P2PCapable() bool {
	return p.Link.Name != "PCIe"
}

const (
	gb = 1e9
	mb = 1e6
)

// RTX4090PCIe models the paper's consumer-grade testbed: RTX 4090 GPUs
// connected over PCIe across NUMA nodes (16-64 GB/s bidirectional; the
// effective all-reduce bus bandwidth lands far lower). Communication is the
// dominant cost here, which is where FlashOverlap shines (up to 1.65x).
func RTX4090PCIe() Platform {
	return Platform{
		Name: "RTX4090-PCIe",
		GPU: GPUSpec{
			Name:          "RTX 4090",
			SMs:           128,
			FP16TFLOPS:    330,
			MemBandwidth:  1008 * gb,
			KernelLaunch:  4 * sim.Microsecond,
			MainloopHalfK: 384,
			MaxEfficiency: 0.78,
		},
		Link: LinkSpec{
			Name:          "PCIe",
			PeakBusBW:     13 * gb,
			HalfSize:      1.5 * mb,
			BaseLatency:   18 * sim.Microsecond,
			PerHopLatency: 2 * sim.Microsecond,
		},
		CommSMs:         4,
		SignalPoll:      2 * sim.Microsecond,
		JitterAmplitude: 0.05,
		JitterSeed:      0x4090,
	}
}

// A800NVLink models the datacenter testbed: A800 GPUs with pairwise NVLink.
// Communication is comparatively cheap, so overlap gains are smaller but the
// achieved fraction of the theoretical bound is high (Fig. 13d).
func A800NVLink() Platform {
	return Platform{
		Name: "A800-NVLink",
		GPU: GPUSpec{
			Name:          "A800",
			SMs:           108,
			FP16TFLOPS:    312,
			MemBandwidth:  1935 * gb,
			KernelLaunch:  3 * sim.Microsecond,
			MainloopHalfK: 320,
			MaxEfficiency: 0.82,
		},
		Link: LinkSpec{
			Name:          "NVLink",
			PeakBusBW:     170 * gb,
			HalfSize:      3 * mb,
			BaseLatency:   10 * sim.Microsecond,
			PerHopLatency: 1 * sim.Microsecond,
		},
		CommSMs:         6,
		SignalPoll:      1 * sim.Microsecond,
		JitterAmplitude: 0.04,
		JitterSeed:      0xA800,
	}
}

// Ascend910B models the HUAWEI NPU node of §6.7: TBE GEMMs on 24 cube
// cores, HCCL collectives over HCCS. The signaling design ports because it
// only needs a counting table and an API-callable collective library.
func Ascend910B() Platform {
	return Platform{
		Name: "Ascend910B-HCCS",
		GPU: GPUSpec{
			Name:          "Ascend 910B",
			SMs:           24,
			FP16TFLOPS:    320,
			MemBandwidth:  1200 * gb,
			KernelLaunch:  6 * sim.Microsecond,
			MainloopHalfK: 512,
			MaxEfficiency: 0.72,
		},
		Link: LinkSpec{
			Name:          "HCCS",
			PeakBusBW:     56 * gb,
			HalfSize:      0.8 * mb,
			BaseLatency:   12 * sim.Microsecond,
			PerHopLatency: 2 * sim.Microsecond,
		},
		CommSMs:         2,
		SignalPoll:      2 * sim.Microsecond,
		JitterAmplitude: 0.05,
		JitterSeed:      0x910B,
	}
}

// H100NVLink is a reusability extension (§A.6.1): the paper notes that
// porting to Hopper mainly requires re-profiling the GEMM configurations
// (thread-block clusters change tiling); the signaling and reordering
// design is unchanged. This profile lets the same experiments run against a
// Hopper-class balance point (much faster compute relative to NVLink).
func H100NVLink() Platform {
	return Platform{
		Name: "H100-NVLink",
		GPU: GPUSpec{
			Name:          "H100 SXM",
			SMs:           132,
			FP16TFLOPS:    990,
			MemBandwidth:  3350 * gb,
			KernelLaunch:  3 * sim.Microsecond,
			MainloopHalfK: 448,
			MaxEfficiency: 0.80,
		},
		Link: LinkSpec{
			Name:          "NVLink4",
			PeakBusBW:     430 * gb,
			HalfSize:      4 * mb,
			BaseLatency:   8 * sim.Microsecond,
			PerHopLatency: 1 * sim.Microsecond,
		},
		CommSMs:         8,
		SignalPoll:      1 * sim.Microsecond,
		JitterAmplitude: 0.04,
		JitterSeed:      0x100,
	}
}

// InterNode derates a platform's link to model crossing a node boundary
// (InfiniBand/RoCE instead of NVLink/PCIe): lower peak bandwidth, higher
// per-call latency, deeper small-message cliff. This is the §A.6.2 seam —
// the current implementation is intra-node, but the communicator only sees
// a LinkSpec, so an inter-node deployment is a profile change plus the
// distributed backend swap the paper describes.
func InterNode(p Platform, nicBW float64, nicLatency sim.Time) Platform {
	out := p
	out.Name = p.Name + "+IB"
	if nicBW > 0 && nicBW < out.Link.PeakBusBW {
		out.Link.PeakBusBW = nicBW
	}
	if nicLatency > out.Link.BaseLatency {
		out.Link.BaseLatency = nicLatency
	}
	out.Link.HalfSize *= 2 // NIC protocol overheads bite small messages harder
	out.Link.Name = "IB"
	return out
}

// Platforms returns all built-in platforms keyed by name.
func Platforms() map[string]Platform {
	out := map[string]Platform{}
	for _, p := range []Platform{RTX4090PCIe(), A800NVLink(), Ascend910B(), H100NVLink()} {
		out[p.Name] = p
	}
	return out
}

// ByName looks up a built-in platform, accepting a few aliases used on the
// command line ("4090", "a800", "ascend").
func ByName(name string) (Platform, error) {
	switch name {
	case "RTX4090-PCIe", "4090", "rtx4090":
		return RTX4090PCIe(), nil
	case "A800-NVLink", "a800", "A800":
		return A800NVLink(), nil
	case "Ascend910B-HCCS", "ascend", "910b":
		return Ascend910B(), nil
	case "H100-NVLink", "h100", "H100":
		return H100NVLink(), nil
	}
	return Platform{}, fmt.Errorf("hw: unknown platform %q", name)
}
