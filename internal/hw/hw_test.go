package hw

import (
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func TestPrimitiveStrings(t *testing.T) {
	cases := []struct {
		p           Primitive
		long, short string
	}{
		{AllReduce, "AllReduce", "AR"},
		{ReduceScatter, "ReduceScatter", "RS"},
		{AllGather, "AllGather", "AG"},
		{AllToAll, "AllToAll", "A2A"},
	}
	for _, c := range cases {
		if c.p.String() != c.long || c.p.Short() != c.short {
			t.Errorf("%d: got (%s,%s), want (%s,%s)", c.p, c.p.String(), c.p.Short(), c.long, c.short)
		}
	}
	if Primitive(99).String() == "" {
		t.Error("unknown primitive should still render")
	}
}

func TestTrafficFactor(t *testing.T) {
	cases := []struct {
		p    Primitive
		n    int
		want float64
	}{
		{AllReduce, 4, 1.5},
		{AllReduce, 2, 1.0},
		{ReduceScatter, 4, 0.75},
		{AllGather, 8, 0.875},
		{AllToAll, 2, 0.5},
		{AllReduce, 1, 0},
	}
	for _, c := range cases {
		if got := TrafficFactor(c.p, c.n); got != c.want {
			t.Errorf("TrafficFactor(%v,%d) = %v, want %v", c.p, c.n, got, c.want)
		}
	}
}

func TestTrafficFactorPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("TrafficFactor(0 ranks) did not panic")
		}
	}()
	TrafficFactor(AllReduce, 0)
}

func TestEffectiveBWSaturates(t *testing.T) {
	l := RTX4090PCIe().Link
	small := l.EffectiveBW(64 << 10)  // 64 KiB
	large := l.EffectiveBW(512 << 20) // 512 MiB
	if small >= large {
		t.Fatalf("bandwidth should grow with size: small=%v large=%v", small, large)
	}
	if large > l.PeakBusBW {
		t.Fatalf("effective bandwidth %v exceeds peak %v", large, l.PeakBusBW)
	}
	if large < 0.95*l.PeakBusBW {
		t.Fatalf("512 MiB should approach peak: got %v of %v", large, l.PeakBusBW)
	}
}

// The paper reports a single 192KB tile yields only ~13% of AllReduce
// bandwidth on 4x RTX 4090. Check our curve shows the same cliff (order of
// magnitude, not exact).
func TestBandwidthCliffMatchesPaper(t *testing.T) {
	l := RTX4090PCIe().Link
	frac := l.EffectiveBW(192<<10) / l.PeakBusBW
	if frac < 0.005 || frac > 0.3 {
		t.Fatalf("192KB tile bandwidth fraction = %v, want a deep cliff (~0.13 in the paper)", frac)
	}
}

func TestCollectiveTimeMonotoneInSize(t *testing.T) {
	for _, pl := range Platforms() {
		prev := sim.Time(0)
		for _, size := range []float64{1 << 16, 1 << 20, 1 << 24, 1 << 28} {
			d := pl.Link.CollectiveTime(AllReduce, size, 4)
			if d <= prev {
				t.Errorf("%s: CollectiveTime not increasing at size %v", pl.Name, size)
			}
			prev = d
		}
	}
}

func TestCollectiveTimeSingleRank(t *testing.T) {
	l := A800NVLink().Link
	if got := l.CollectiveTime(AllReduce, 1<<20, 1); got != l.BaseLatency {
		t.Fatalf("single-rank collective = %v, want base latency %v", got, l.BaseLatency)
	}
}

func TestCollectiveTimeAllReduceCostsMore(t *testing.T) {
	l := A800NVLink().Link
	size := float64(64 << 20)
	ar := l.CollectiveTime(AllReduce, size, 4)
	rs := l.CollectiveTime(ReduceScatter, size, 4)
	if ar <= rs {
		t.Fatalf("AllReduce (%v) should cost more than ReduceScatter (%v)", ar, rs)
	}
}

func TestPlatformsValidate(t *testing.T) {
	for name, p := range Platforms() {
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestValidateCatchesBadProfiles(t *testing.T) {
	base := RTX4090PCIe()
	mutations := []func(*Platform){
		func(p *Platform) { p.GPU.SMs = 0 },
		func(p *Platform) { p.GPU.FP16TFLOPS = -1 },
		func(p *Platform) { p.GPU.MemBandwidth = 0 },
		func(p *Platform) { p.GPU.MaxEfficiency = 1.5 },
		func(p *Platform) { p.Link.PeakBusBW = 0 },
		func(p *Platform) { p.CommSMs = p.GPU.SMs },
		func(p *Platform) { p.CommSMs = -1 },
		func(p *Platform) { p.SignalPoll = 0 },
		func(p *Platform) { p.JitterAmplitude = 0.9 },
	}
	for i, mut := range mutations {
		p := base
		mut(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("mutation %d: Validate accepted a bad profile", i)
		}
	}
}

func TestP2PCapable(t *testing.T) {
	if RTX4090PCIe().P2PCapable() {
		t.Error("RTX 4090 PCIe box should not be P2P capable (paper §6.1.3)")
	}
	if !A800NVLink().P2PCapable() {
		t.Error("A800 NVLink box should be P2P capable")
	}
}

func TestByName(t *testing.T) {
	for _, alias := range []string{"4090", "rtx4090", "RTX4090-PCIe"} {
		if p, err := ByName(alias); err != nil || p.Name != "RTX4090-PCIe" {
			t.Errorf("ByName(%q) = %v, %v", alias, p.Name, err)
		}
	}
	if _, err := ByName("tpu"); err == nil {
		t.Error("ByName(tpu) should fail")
	}
}

func TestFlopsPerSM(t *testing.T) {
	g := GPUSpec{SMs: 100, FP16TFLOPS: 100}
	if got := g.FlopsPerSM(); got != 1e12 {
		t.Fatalf("FlopsPerSM = %v, want 1e12", got)
	}
}

// Property: effective bandwidth is monotone non-decreasing in message size
// and never exceeds the peak.
func TestEffectiveBWMonotoneProperty(t *testing.T) {
	l := A800NVLink().Link
	f := func(a, b uint32) bool {
		x, y := float64(a), float64(b)
		if x > y {
			x, y = y, x
		}
		bx, by := l.EffectiveBW(x), l.EffectiveBW(y)
		return bx <= by+1e-9 && by <= l.PeakBusBW
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// The A800 link must be substantially faster than the 4090 link at typical
// collective sizes — this drives the platform-dependent conclusions in the
// paper (higher speedups on 4090, smaller K favored on A800).
func TestPlatformOrdering(t *testing.T) {
	size := float64(64 << 20)
	t4090 := RTX4090PCIe().Link.CollectiveTime(AllReduce, size, 4)
	tA800 := A800NVLink().Link.CollectiveTime(AllReduce, size, 4)
	if tA800*5 > t4090 {
		t.Fatalf("A800 AllReduce (%v) should be >5x faster than 4090 (%v)", tA800, t4090)
	}
}

func TestH100Profile(t *testing.T) {
	p := H100NVLink()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if !p.P2PCapable() {
		t.Error("H100 NVLink must be P2P capable")
	}
	if got, err := ByName("h100"); err != nil || got.Name != "H100-NVLink" {
		t.Fatalf("ByName(h100) = %v, %v", got.Name, err)
	}
	// Hopper is far more compute-dense than Ampere: the per-SM throughput
	// ordering drives the overlap balance point.
	if p.GPU.FlopsPerSM() <= A800NVLink().GPU.FlopsPerSM() {
		t.Error("H100 per-SM throughput should exceed A800's")
	}
}

func TestInterNodeDeratesLink(t *testing.T) {
	base := A800NVLink()
	ib := InterNode(base, 25*1e9, 30*sim.Microsecond)
	if err := ib.Validate(); err != nil {
		t.Fatal(err)
	}
	if ib.Link.PeakBusBW >= base.Link.PeakBusBW {
		t.Error("inter-node peak bandwidth should drop")
	}
	if ib.Link.BaseLatency <= base.Link.BaseLatency {
		t.Error("inter-node base latency should rise")
	}
	size := float64(64 << 20)
	if ib.Link.CollectiveTime(AllReduce, size, 4) <= base.Link.CollectiveTime(AllReduce, size, 4) {
		t.Error("inter-node collectives should be slower")
	}
	// A NIC faster than the intra-node link must not speed anything up.
	same := InterNode(base, 1e15, 0)
	if same.Link.PeakBusBW != base.Link.PeakBusBW {
		t.Error("faster NIC should clamp to the intra-node bandwidth")
	}
}
