package metrics

import (
	"encoding/json"
	"sort"
	"time"
)

// NumBuckets is the fixed bucket count of every Histogram. The boundaries
// are compile-time constants shared by every process in a fleet, which is
// what makes shard-merged histograms exact: two replicas bucket any given
// observation identically, so bucket-wise sums reconstruct the histogram a
// single observer would have built.
const NumBuckets = 64

// bucketBounds[i] is the inclusive upper bound, in nanoseconds, of bucket i;
// the last bucket (NumBuckets-1) is the overflow bucket and has no upper
// bound. Bounds grow geometrically by ~sqrt(2) per bucket — built by the
// integer recurrence bounds[i] = bounds[i-2] * 2 from 1µs and 1.414µs — so
// the table is exactly reproducible on any platform (no floating point in
// the boundary math) and spans 1µs to ~36min: a warm in-process cache hit
// lands near the bottom, a cold multi-minute fleet sweep still resolves
// near the top, and any quantile is off by at most a factor of sqrt(2).
var bucketBounds = func() [NumBuckets - 1]uint64 {
	var b [NumBuckets - 1]uint64
	b[0] = 1000 // 1µs
	b[1] = 1414 // ~sqrt(2)µs
	for i := 2; i < len(b); i++ {
		b[i] = b[i-2] * 2
	}
	return b
}()

// bucketIndex places a duration (ns) into its bucket: the first bucket
// whose upper bound covers it, or the overflow bucket. Binary search over a
// fixed array — no allocation, so Observe stays legal on zero-alloc paths.
func bucketIndex(ns uint64) int {
	lo, hi := 0, len(bucketBounds)
	for lo < hi {
		mid := (lo + hi) / 2
		if ns <= bucketBounds[mid] {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo // == NumBuckets-1 when ns exceeds every bound
}

// BucketBound returns bucket i's inclusive upper bound. The overflow
// bucket reports twice the last finite bound — a sentinel cap so quantiles
// that land in it still return a finite, deterministic value.
func BucketBound(i int) time.Duration {
	if i < len(bucketBounds) {
		return time.Duration(bucketBounds[i])
	}
	return time.Duration(2 * bucketBounds[len(bucketBounds)-1])
}

// Histogram is a fixed-boundary log-bucketed latency histogram. Observe is
// wait-free and allocation-free (binary search plus three atomic adds), so
// it is safe on the pre-encoded warm /query fast path whose contract is
// zero allocations per request. The zero value is ready to use.
type Histogram struct {
	count   Counter
	sum     Counter // nanoseconds
	buckets [NumBuckets]Counter
}

// Observe records one duration. Negative durations clamp to zero.
func (h *Histogram) Observe(d time.Duration) {
	ns := uint64(0)
	if d > 0 {
		ns = uint64(d)
	}
	h.count.Add(1)
	h.sum.Add(ns)
	h.buckets[bucketIndex(ns)].Add(1)
}

// Count returns the number of observations so far.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Snapshot captures the histogram's current state. Counters are read
// independently, so a snapshot under concurrent load is approximate (each
// bucket is itself exact); trailing empty buckets are trimmed so a
// low-latency histogram serializes compactly.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{Count: h.count.Load(), SumNs: h.sum.Load()}
	last := -1
	var buckets [NumBuckets]uint64
	for i := range h.buckets {
		buckets[i] = h.buckets[i].Load()
		if buckets[i] != 0 {
			last = i
		}
	}
	if last >= 0 {
		s.Buckets = append([]uint64(nil), buckets[:last+1]...)
	}
	return s
}

// HistogramSnapshot is a histogram's point-in-time wire form. It is plain
// mergeable state: Count and SumNs sum, Buckets sum element-wise (the fixed
// boundaries make that exact). The derived percentiles (p50/p95/p99) are
// not state — MarshalJSON computes them from the buckets on the way out, so
// merging never has to average an average and a decode/encode round trip is
// byte-stable.
type HistogramSnapshot struct {
	Count   uint64   `json:"count"`
	SumNs   uint64   `json:"sum_ns"`
	Buckets []uint64 `json:"buckets"`
}

// Merge adds another snapshot bucket-wise. Because every histogram shares
// the same fixed boundaries, the result is exactly the snapshot one process
// observing both streams would have produced.
func (s HistogramSnapshot) Merge(o HistogramSnapshot) HistogramSnapshot {
	return MergeSnapshots(s, o)
}

// Quantile returns the q-quantile (0 < q <= 1) as the upper bound of the
// bucket containing it — a deterministic overestimate by at most the
// sqrt(2) bucket ratio. An empty snapshot returns 0.
func (s HistogramSnapshot) Quantile(q float64) time.Duration {
	if s.Count == 0 || len(s.Buckets) == 0 {
		return 0
	}
	rank := uint64(float64(s.Count) * q)
	if rank < 1 {
		rank = 1
	}
	var seen uint64
	for i, n := range s.Buckets {
		seen += n
		if seen >= rank {
			return BucketBound(i)
		}
	}
	return BucketBound(len(s.Buckets) - 1)
}

// quantileMs renders a quantile in milliseconds for the JSON form.
func (s HistogramSnapshot) quantileMs(q float64) float64 {
	return float64(s.Quantile(q)) / float64(time.Millisecond)
}

// histogramWire is the JSON schema of a snapshot: the mergeable state plus
// the derived percentiles.
type histogramWire struct {
	Count   uint64   `json:"count"`
	SumNs   uint64   `json:"sum_ns"`
	Buckets []uint64 `json:"buckets"`
	P50Ms   float64  `json:"p50_ms"`
	P95Ms   float64  `json:"p95_ms"`
	P99Ms   float64  `json:"p99_ms"`
}

// MarshalJSON emits the snapshot with its derived p50/p95/p99 (in
// milliseconds) appended. The percentiles are recomputed deterministically
// from the buckets, so marshal → unmarshal → marshal is byte-identical.
func (s HistogramSnapshot) MarshalJSON() ([]byte, error) {
	buckets := s.Buckets
	if buckets == nil {
		buckets = []uint64{}
	}
	return json.Marshal(histogramWire{
		Count:   s.Count,
		SumNs:   s.SumNs,
		Buckets: buckets,
		P50Ms:   s.quantileMs(0.50),
		P95Ms:   s.quantileMs(0.95),
		P99Ms:   s.quantileMs(0.99),
	})
}

// UnmarshalJSON restores only the mergeable state; the percentile fields
// are derived and deliberately dropped (they re-derive on the next
// marshal).
func (s *HistogramSnapshot) UnmarshalJSON(data []byte) error {
	var w histogramWire
	if err := json.Unmarshal(data, &w); err != nil {
		return err
	}
	*s = HistogramSnapshot{Count: w.Count, SumNs: w.SumNs, Buckets: w.Buckets}
	return nil
}

// sortedUnion merges two string sets into a sorted slice — the Primitives
// merge semantic, factored here so MergeSnapshots and callers share it.
func sortedUnion(a, b []string) []string {
	if len(a) == 0 && len(b) == 0 {
		return nil
	}
	set := make(map[string]bool, len(a)+len(b))
	for _, s := range a {
		set[s] = true
	}
	for _, s := range b {
		set[s] = true
	}
	out := make([]string, 0, len(set))
	for s := range set {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}
