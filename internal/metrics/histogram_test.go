package metrics

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"reflect"
	"testing"
	"time"
)

func TestBucketBoundsRecurrence(t *testing.T) {
	if bucketBounds[0] != 1000 || bucketBounds[1] != 1414 {
		t.Fatalf("base bounds = %d, %d; want 1000, 1414", bucketBounds[0], bucketBounds[1])
	}
	for i := 2; i < len(bucketBounds); i++ {
		if bucketBounds[i] != 2*bucketBounds[i-2] {
			t.Fatalf("bounds[%d] = %d; want 2*bounds[%d] = %d", i, bucketBounds[i], i-2, 2*bucketBounds[i-2])
		}
		if bucketBounds[i] <= bucketBounds[i-1] {
			t.Fatalf("bounds not strictly increasing at %d: %d <= %d", i, bucketBounds[i], bucketBounds[i-1])
		}
	}
	// The table must cover sub-microsecond to tens of minutes.
	if top := time.Duration(bucketBounds[len(bucketBounds)-1]); top < 30*time.Minute {
		t.Fatalf("top finite bound %v; want >= 30m", top)
	}
}

func TestBucketIndexMatchesLinearScan(t *testing.T) {
	linear := func(ns uint64) int {
		for i, b := range bucketBounds {
			if ns <= b {
				return i
			}
		}
		return NumBuckets - 1
	}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 10000; i++ {
		ns := uint64(rng.Int63n(int64(bucketBounds[len(bucketBounds)-1]) * 2))
		if got, want := bucketIndex(ns), linear(ns); got != want {
			t.Fatalf("bucketIndex(%d) = %d; want %d", ns, got, want)
		}
	}
	for _, b := range bucketBounds {
		// Bounds are inclusive: the boundary value lands in its own bucket,
		// one past it lands in the next.
		if bucketIndex(b) != bucketIndex(b-1) && bucketIndex(b-1) != bucketIndex(b)-1 {
			t.Fatalf("boundary %d splits wrong: idx(b-1)=%d idx(b)=%d", b, bucketIndex(b-1), bucketIndex(b))
		}
		if bucketIndex(b+1) != bucketIndex(b)+1 {
			t.Fatalf("boundary %d: idx(b+1)=%d want %d", b, bucketIndex(b+1), bucketIndex(b)+1)
		}
	}
}

func TestObserveAllocs(t *testing.T) {
	var h Histogram
	allocs := testing.AllocsPerRun(1000, func() {
		h.Observe(123 * time.Microsecond)
	})
	if allocs != 0 {
		t.Fatalf("Observe allocates %v per call; the warm fast path requires 0", allocs)
	}
}

// TestMergeEquivalence is the exactness contract of the fixed boundaries:
// shard-merged histograms equal the single-process histogram of the same
// observations, so a router's merged percentiles are exact, not an
// approximation built from per-replica approximations.
func TestMergeEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	var single Histogram
	shards := [3]*Histogram{{}, {}, {}}
	for i := 0; i < 5000; i++ {
		d := time.Duration(rng.Int63n(int64(10 * time.Minute)))
		single.Observe(d)
		shards[rng.Intn(len(shards))].Observe(d)
	}
	merged := shards[0].Snapshot()
	for _, h := range shards[1:] {
		merged = merged.Merge(h.Snapshot())
	}
	want := single.Snapshot()
	if !reflect.DeepEqual(merged, want) {
		t.Fatalf("merged shard snapshots differ from the single-process snapshot:\nmerged: %+v\nsingle: %+v", merged, want)
	}
	for _, q := range []float64{0.5, 0.9, 0.95, 0.99, 1.0} {
		if merged.Quantile(q) != want.Quantile(q) {
			t.Fatalf("q=%v: merged %v != single %v", q, merged.Quantile(q), want.Quantile(q))
		}
	}
	mj, _ := json.Marshal(merged)
	wj, _ := json.Marshal(want)
	if !bytes.Equal(mj, wj) {
		t.Fatalf("merged JSON differs from single-process JSON:\n%s\n%s", mj, wj)
	}
}

func TestSnapshotJSONRoundTrip(t *testing.T) {
	var h Histogram
	for _, d := range []time.Duration{0, time.Microsecond, 80 * time.Microsecond, 3 * time.Millisecond, 2 * time.Second, time.Hour} {
		h.Observe(d)
	}
	for _, s := range []HistogramSnapshot{{}, h.Snapshot()} {
		first, err := json.Marshal(s)
		if err != nil {
			t.Fatal(err)
		}
		var back HistogramSnapshot
		if err := json.Unmarshal(first, &back); err != nil {
			t.Fatal(err)
		}
		second, err := json.Marshal(back)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(first, second) {
			t.Fatalf("round trip not byte-stable:\nfirst:  %s\nsecond: %s", first, second)
		}
	}
}

func TestQuantile(t *testing.T) {
	var h Histogram
	// 90 fast observations, 10 slow: p50 in the fast bucket, p95+ in the
	// slow one.
	for i := 0; i < 90; i++ {
		h.Observe(10 * time.Microsecond)
	}
	for i := 0; i < 10; i++ {
		h.Observe(100 * time.Millisecond)
	}
	s := h.Snapshot()
	fast := BucketBound(bucketIndex(uint64(10 * time.Microsecond)))
	slow := BucketBound(bucketIndex(uint64(100 * time.Millisecond)))
	if got := s.Quantile(0.50); got != fast {
		t.Fatalf("p50 = %v; want fast bucket bound %v", got, fast)
	}
	for _, q := range []float64{0.95, 0.99} {
		if got := s.Quantile(q); got != slow {
			t.Fatalf("q%v = %v; want slow bucket bound %v", q, got, slow)
		}
	}
	if got := (HistogramSnapshot{}).Quantile(0.99); got != 0 {
		t.Fatalf("empty snapshot quantile = %v; want 0", got)
	}
	// The overflow bucket still answers with a finite sentinel.
	var over Histogram
	over.Observe(2 * time.Hour)
	if got := over.Snapshot().Quantile(0.99); got != BucketBound(NumBuckets-1) {
		t.Fatalf("overflow quantile = %v; want sentinel %v", got, BucketBound(NumBuckets-1))
	}
}

func TestSnapshotTrimsTrailingZeros(t *testing.T) {
	var h Histogram
	h.Observe(5 * time.Microsecond)
	s := h.Snapshot()
	if len(s.Buckets) != bucketIndex(uint64(5*time.Microsecond))+1 {
		t.Fatalf("snapshot has %d buckets; want trim to %d", len(s.Buckets), bucketIndex(uint64(5*time.Microsecond))+1)
	}
	var empty Histogram
	if empty.Snapshot().Buckets != nil {
		t.Fatal("empty histogram snapshot should carry no buckets")
	}
}
