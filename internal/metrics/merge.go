package metrics

import (
	"fmt"
	"reflect"
)

// MergeSnapshots folds two snapshot values of the same type into the
// fleet-merged view — the one merge routine behind serve.Stats.Merge,
// engine.Stats.Add, and every histogram and tenant map in between. A field
// added to any snapshot struct participates automatically; before this,
// each layer hand-maintained a field-by-field merge that silently dropped
// any counter the author forgot.
//
// The rules, chosen to reproduce the hand-written merges exactly:
//
//   - numeric fields (ints, uints, floats) sum
//   - bools OR
//   - strings zero out: a merged view spans shards, so per-replica labels
//     (serve.Stats.Shard) do not survive the merge
//   - []string unions as a sorted set (serve.Stats.Primitives)
//   - other slices merge element-wise at the longer length, missing
//     elements reading as zero (histogram buckets)
//   - maps union by key, recursively merging values present on both sides
//     (per-tenant stats)
//   - pointers: nil merges as the identity; two non-nil pointers merge
//     their pointees into a fresh allocation
//   - structs recurse field by field (unexported fields stay zero —
//     snapshots are wire types and have none)
//
// It panics on types with no defined merge (funcs, channels): a snapshot
// carrying one is a bug to surface at the first merge, not to mask.
func MergeSnapshots[T any](a, b T) T {
	out := mergeValue(reflect.ValueOf(a), reflect.ValueOf(b))
	return out.Interface().(T)
}

func mergeValue(a, b reflect.Value) reflect.Value {
	t := a.Type()
	switch a.Kind() {
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		out := reflect.New(t).Elem()
		out.SetInt(a.Int() + b.Int())
		return out
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64, reflect.Uintptr:
		out := reflect.New(t).Elem()
		out.SetUint(a.Uint() + b.Uint())
		return out
	case reflect.Float32, reflect.Float64:
		out := reflect.New(t).Elem()
		out.SetFloat(a.Float() + b.Float())
		return out
	case reflect.Bool:
		out := reflect.New(t).Elem()
		out.SetBool(a.Bool() || b.Bool())
		return out
	case reflect.String:
		// Labels are per-replica; a merged view spans replicas.
		return reflect.New(t).Elem()
	case reflect.Slice:
		if t.Elem().Kind() == reflect.String {
			union := sortedUnion(toStrings(a), toStrings(b))
			out := reflect.MakeSlice(t, len(union), len(union))
			for i, s := range union {
				out.Index(i).SetString(s)
			}
			if len(union) == 0 {
				return reflect.Zero(t)
			}
			return out
		}
		n := a.Len()
		if b.Len() > n {
			n = b.Len()
		}
		if n == 0 {
			return reflect.Zero(t)
		}
		out := reflect.MakeSlice(t, n, n)
		zero := reflect.Zero(t.Elem())
		for i := 0; i < n; i++ {
			av, bv := zero, zero
			if i < a.Len() {
				av = a.Index(i)
			}
			if i < b.Len() {
				bv = b.Index(i)
			}
			out.Index(i).Set(mergeValue(av, bv))
		}
		return out
	case reflect.Map:
		if a.IsNil() && b.IsNil() {
			return reflect.Zero(t)
		}
		out := reflect.MakeMap(t)
		for _, k := range a.MapKeys() {
			out.SetMapIndex(k, a.MapIndex(k))
		}
		for _, k := range b.MapKeys() {
			if prev := out.MapIndex(k); prev.IsValid() {
				out.SetMapIndex(k, mergeValue(prev, b.MapIndex(k)))
			} else {
				out.SetMapIndex(k, b.MapIndex(k))
			}
		}
		return out
	case reflect.Pointer:
		switch {
		case a.IsNil() && b.IsNil():
			return reflect.Zero(t)
		case a.IsNil():
			return b
		case b.IsNil():
			return a
		}
		out := reflect.New(t.Elem())
		out.Elem().Set(mergeValue(a.Elem(), b.Elem()))
		return out
	case reflect.Struct:
		out := reflect.New(t).Elem()
		for i := 0; i < t.NumField(); i++ {
			if t.Field(i).PkgPath != "" {
				continue // unexported: not wire state, stays zero
			}
			out.Field(i).Set(mergeValue(a.Field(i), b.Field(i)))
		}
		return out
	case reflect.Interface:
		if a.IsNil() && b.IsNil() {
			return reflect.Zero(t)
		}
	}
	panic(fmt.Sprintf("metrics: no merge defined for snapshot field type %s", t))
}

func toStrings(v reflect.Value) []string {
	out := make([]string, v.Len())
	for i := range out {
		out[i] = v.Index(i).String()
	}
	return out
}
