package metrics

import (
	"reflect"
	"testing"
)

type tenantSnap struct {
	Queries uint64
	Latency HistogramSnapshot
}

type statsSnap struct {
	Shard      string
	Hits       uint64
	Cached     int
	Rate       float64
	Degraded   bool
	Primitives []string
	Buckets    []uint64
	Latency    *HistogramSnapshot
	Tenants    map[string]tenantSnap
	Nested     struct{ Size int }
}

func TestMergeSnapshots(t *testing.T) {
	a := statsSnap{
		Shard:      "0/2",
		Hits:       3,
		Cached:     5,
		Rate:       0.25,
		Primitives: []string{"AllReduce", "AllToAll"},
		Buckets:    []uint64{1, 2},
		Latency:    &HistogramSnapshot{Count: 2, SumNs: 100, Buckets: []uint64{2}},
		Tenants: map[string]tenantSnap{
			"a": {Queries: 1, Latency: HistogramSnapshot{Count: 1, SumNs: 7, Buckets: []uint64{1}}},
			"b": {Queries: 4},
		},
	}
	a.Nested.Size = 7
	b := statsSnap{
		Shard:      "1/2",
		Hits:       10,
		Cached:     1,
		Rate:       0.5,
		Degraded:   true,
		Primitives: []string{"AllReduce", "ReduceScatter"},
		Buckets:    []uint64{0, 1, 5},
		Tenants: map[string]tenantSnap{
			"b": {Queries: 6, Latency: HistogramSnapshot{Count: 3, SumNs: 30, Buckets: []uint64{0, 3}}},
			"c": {Queries: 9},
		},
	}
	b.Nested.Size = 2

	got := MergeSnapshots(a, b)
	want := statsSnap{
		Shard:      "", // per-replica label dropped in the merged view
		Hits:       13,
		Cached:     6,
		Rate:       0.75,
		Degraded:   true,
		Primitives: []string{"AllReduce", "AllToAll", "ReduceScatter"},
		Buckets:    []uint64{1, 3, 5},
		Latency:    &HistogramSnapshot{Count: 2, SumNs: 100, Buckets: []uint64{2}},
		Tenants: map[string]tenantSnap{
			"a": {Queries: 1, Latency: HistogramSnapshot{Count: 1, SumNs: 7, Buckets: []uint64{1}}},
			"b": {Queries: 10, Latency: HistogramSnapshot{Count: 3, SumNs: 30, Buckets: []uint64{0, 3}}},
			"c": {Queries: 9},
		},
	}
	want.Nested.Size = 9
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("MergeSnapshots:\ngot:  %+v\nwant: %+v", got, want)
	}
}

func TestMergeSnapshotsZeroIdentity(t *testing.T) {
	a := statsSnap{
		Hits:       3,
		Primitives: []string{"AllReduce"},
		Tenants:    map[string]tenantSnap{"a": {Queries: 2}},
		Latency:    &HistogramSnapshot{Count: 1, Buckets: []uint64{1}},
	}
	got := MergeSnapshots(a, statsSnap{})
	if !reflect.DeepEqual(got, a) {
		t.Fatalf("merging with the zero snapshot changed the value:\ngot:  %+v\nwant: %+v", got, a)
	}
	zero := MergeSnapshots(statsSnap{}, statsSnap{})
	if !reflect.DeepEqual(zero, statsSnap{}) {
		t.Fatalf("zero merge not zero: %+v", zero)
	}
	if zero.Primitives != nil || zero.Tenants != nil || zero.Latency != nil {
		t.Fatalf("zero merge materialized empty collections: %+v", zero)
	}
}

func TestMergeSnapshotsCommutesOnNumbers(t *testing.T) {
	a := statsSnap{Hits: 3, Buckets: []uint64{1}, Primitives: []string{"B", "A"}}
	b := statsSnap{Hits: 4, Buckets: []uint64{0, 2}, Primitives: []string{"A", "C"}}
	ab := MergeSnapshots(a, b)
	ba := MergeSnapshots(b, a)
	if !reflect.DeepEqual(ab, ba) {
		t.Fatalf("merge not commutative:\na+b: %+v\nb+a: %+v", ab, ba)
	}
}
