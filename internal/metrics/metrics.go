// Package metrics is the one stats plane every layer of the system counts
// through: a registry of named counters, gauges, and mergeable log-bucketed
// latency histograms. Before it, serve.Stats, engine.Stats, and
// shard.RouterStats each carried their own field-by-field Merge/Add code
// that had to be edited in lockstep whenever a counter was added — the
// "forgot to merge the new counter" failure mode. Now a snapshot struct is
// plain data and MergeSnapshots folds two of them by reflection: numeric
// fields sum, string sets union, histograms add bucket-wise, maps merge by
// key union. A field added to a snapshot struct participates in every merge
// automatically.
//
// Histograms use fixed bucket boundaries (see histogram.go), so two
// replicas' histograms merge by bucket-wise sum into exactly the histogram
// a single process observing both streams would have built — shard-merged
// percentiles are exact at bucket resolution, not an approximation of an
// approximation.
package metrics

import (
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing event count. The zero value is
// ready to use; Add and Load are lock-free.
type Counter struct{ v atomic.Uint64 }

// Add increments the counter by delta.
func (c *Counter) Add(delta uint64) { c.v.Add(delta) }

// Load returns the current count.
func (c *Counter) Load() uint64 { return c.v.Load() }

// Gauge is a value that can move both ways (queue depths, cache sizes).
// The zero value is ready to use.
type Gauge struct{ v atomic.Int64 }

// Set replaces the gauge's value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add moves the gauge by delta (negative deltas allowed).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Load returns the current value.
func (g *Gauge) Load() int64 { return g.v.Load() }

// Registry is a get-or-create namespace of named instruments. Layers
// register each instrument under the JSON key it reports as (serve
// registers "hits", "misses", ... — the exact /stats keys), so the
// registry doubles as the explicit inventory of what a layer exports.
// All methods are safe for concurrent use; two calls with one name return
// the same instrument, and a name registered as one kind cannot be
// re-registered as another.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
	}
}

func (r *Registry) taken(name string, self map[string]bool) bool {
	if !self["counter"] {
		if _, ok := r.counters[name]; ok {
			return true
		}
	}
	if !self["gauge"] {
		if _, ok := r.gauges[name]; ok {
			return true
		}
	}
	if !self["histogram"] {
		if _, ok := r.histograms[name]; ok {
			return true
		}
	}
	return false
}

// Counter returns the named counter, creating it on first use. It panics if
// the name is already registered as a different kind: a name collision is a
// programming error that would silently split one /stats key across two
// instruments.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok := r.counters[name]; ok {
		return c
	}
	if r.taken(name, map[string]bool{"counter": true}) {
		panic("metrics: " + name + " already registered as a different kind")
	}
	c := &Counter{}
	r.counters[name] = c
	return c
}

// Gauge returns the named gauge, creating it on first use; same collision
// rule as Counter.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok := r.gauges[name]; ok {
		return g
	}
	if r.taken(name, map[string]bool{"gauge": true}) {
		panic("metrics: " + name + " already registered as a different kind")
	}
	g := &Gauge{}
	r.gauges[name] = g
	return g
}

// Histogram returns the named histogram, creating it on first use; same
// collision rule as Counter.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok := r.histograms[name]; ok {
		return h
	}
	if r.taken(name, map[string]bool{"histogram": true}) {
		panic("metrics: " + name + " already registered as a different kind")
	}
	h := &Histogram{}
	r.histograms[name] = h
	return h
}

// Names lists every registered instrument name, sorted — the registry's
// inventory, for tests asserting a layer exports what it claims.
func (r *Registry) Names() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.counters)+len(r.gauges)+len(r.histograms))
	for n := range r.counters {
		names = append(names, n)
	}
	for n := range r.gauges {
		names = append(names, n)
	}
	for n := range r.histograms {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
