package metrics

import (
	"reflect"
	"testing"
)

func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry()
	c1 := r.Counter("hits")
	c1.Add(3)
	if c2 := r.Counter("hits"); c2 != c1 {
		t.Fatal("second Counter(hits) returned a different instrument")
	}
	if got := r.Counter("hits").Load(); got != 3 {
		t.Fatalf("counter = %d; want 3", got)
	}
	g := r.Gauge("depth")
	g.Set(5)
	g.Add(-2)
	if got := r.Gauge("depth").Load(); got != 3 {
		t.Fatalf("gauge = %d; want 3", got)
	}
	h := r.Histogram("latency")
	h.Observe(1)
	if got := r.Histogram("latency").Count(); got != 1 {
		t.Fatalf("histogram count = %d; want 1", got)
	}
	want := []string{"depth", "hits", "latency"}
	if got := r.Names(); !reflect.DeepEqual(got, want) {
		t.Fatalf("Names() = %v; want %v", got, want)
	}
}

func TestRegistryKindCollisionPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("hits")
	defer func() {
		if recover() == nil {
			t.Fatal("registering one name as two kinds should panic")
		}
	}()
	r.Histogram("hits")
}
