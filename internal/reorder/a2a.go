package reorder

import (
	"fmt"

	"repro/internal/gemm"
	"repro/internal/tensor"
)

// A2AEntry records one subtoken in a destination memory pool: which token
// (output row) it is a slice of and which tile column it carries.
type A2AEntry struct {
	Token   int // row of the source GPU's M x N output
	ColTile int // tile column: carries columns [ColTile*TileN, ...)
}

// A2ALayout is one source GPU's subtoken mapping for All-to-All (Fig. 7f).
// Every output row ("token") has a destination GPU given by a routing table
// (MoE gating). Each tile is split by row into subtokens; subtokens are
// appended to a per-destination memory pool in execution order, so when a
// wave group signals, the group's additions to every pool are contiguous
// and can be sent with one variable-count All-to-All.
type A2ALayout struct {
	Plan   *gemm.Plan
	NGPUs  int
	Bounds []gemm.GroupBound
	Dest   []int // token -> destination GPU

	// pools[j] lists the entries destined for GPU j in emission order.
	pools [][]A2AEntry
	// groupStart[j][g] is the index within pools[j] where group g's
	// entries begin; it has Groups()+1 entries (prefix offsets).
	groupStart [][]int
	// entryPool/entrySlot locate each (position, tileRow) subtoken:
	// indexed by pos*TileM+row.
	entryPool []int
	entrySlot []int
	// poolBase[j] is the element offset of pool j within the flat
	// concatenated send buffer.
	poolBase []int
}

// NewA2ALayout builds the layout for a source GPU with the given routing.
func NewA2ALayout(p *gemm.Plan, bounds []gemm.GroupBound, nGPUs int, dest []int) (*A2ALayout, error) {
	if nGPUs < 1 {
		return nil, fmt.Errorf("reorder: invalid GPU count %d", nGPUs)
	}
	if len(dest) != p.Shape.M {
		return nil, fmt.Errorf("reorder: routing table has %d tokens, want %d", len(dest), p.Shape.M)
	}
	for r, d := range dest {
		if d < 0 || d >= nGPUs {
			return nil, fmt.Errorf("reorder: token %d routed to invalid GPU %d", r, d)
		}
	}
	if len(bounds) == 0 {
		return nil, fmt.Errorf("reorder: no group bounds")
	}
	l := &A2ALayout{
		Plan:       p,
		NGPUs:      nGPUs,
		Bounds:     bounds,
		Dest:       dest,
		pools:      make([][]A2AEntry, nGPUs),
		groupStart: make([][]int, nGPUs),
		entryPool:  make([]int, p.Tiles*p.Cfg.TileM),
		entrySlot:  make([]int, p.Tiles*p.Cfg.TileM),
	}
	for j := range l.groupStart {
		l.groupStart[j] = make([]int, len(bounds)+1)
	}
	covered := 0
	for g, b := range bounds {
		if b.PosLo != covered {
			return nil, fmt.Errorf("reorder: group %d starts at %d, want %d", g, b.PosLo, covered)
		}
		covered = b.PosHi
		for pos := b.PosLo; pos < b.PosHi; pos++ {
			idx := p.Order[pos]
			r0, _, rows, _ := p.TileRect(idx)
			for i := 0; i < rows; i++ {
				token := r0 + i
				j := dest[token]
				l.entryPool[pos*p.Cfg.TileM+i] = j
				l.entrySlot[pos*p.Cfg.TileM+i] = len(l.pools[j])
				l.pools[j] = append(l.pools[j], A2AEntry{Token: token, ColTile: idx % p.ColTiles})
			}
		}
		for j := range l.pools {
			l.groupStart[j][g+1] = len(l.pools[j])
		}
	}
	if covered != p.Tiles {
		return nil, fmt.Errorf("reorder: groups cover %d of %d tiles", covered, p.Tiles)
	}
	l.poolBase = make([]int, nGPUs+1)
	for j := 0; j < nGPUs; j++ {
		l.poolBase[j+1] = l.poolBase[j] + len(l.pools[j])*p.Cfg.TileN
	}
	return l, nil
}

// SendElems reports the flat send-buffer size in elements (all pools
// concatenated: M*N of the source's output).
func (l *A2ALayout) SendElems() int { return l.poolBase[l.NGPUs] }

// NewSendBuffer allocates the flat send buffer holding all pools.
func (l *A2ALayout) NewSendBuffer() []float32 { return make([]float32, l.SendElems()) }

// PoolEntries returns the entries destined for GPU j, in emission order.
func (l *A2ALayout) PoolEntries(j int) []A2AEntry { return l.pools[j] }

// GroupPoolRange reports the entry index range [lo, hi) that group g
// appended to pool j.
func (l *A2ALayout) GroupPoolRange(j, g int) (lo, hi int) {
	return l.groupStart[j][g], l.groupStart[j][g+1]
}

// SendOffset reports the element offset of entry slot s of pool j within
// the flat send buffer.
func (l *A2ALayout) SendOffset(j, s int) int {
	return l.poolBase[j] + s*l.Plan.Cfg.TileN
}

// ScatterTile appends the subtokens of a computed tile to their destination
// pools. Offsets are precomputed, so this is a pure scattering store —
// exactly what the fused GEMM epilogue does.
func (l *A2ALayout) ScatterTile(buf []float32, tile *tensor.Matrix, idx int) {
	p := l.Plan
	if tile.Rows != p.Cfg.TileM || tile.Cols != p.Cfg.TileN {
		panic(fmt.Sprintf("reorder: tile is %dx%d, want %dx%d", tile.Rows, tile.Cols, p.Cfg.TileM, p.Cfg.TileN))
	}
	if len(buf) != l.SendElems() {
		panic(fmt.Sprintf("reorder: send buffer has %d elems, want %d", len(buf), l.SendElems()))
	}
	pos := p.Pos[idx]
	tn := p.Cfg.TileN
	for i := 0; i < p.Cfg.TileM; i++ {
		j := l.entryPool[pos*p.Cfg.TileM+i]
		off := l.SendOffset(j, l.entrySlot[pos*p.Cfg.TileM+i])
		copy(buf[off:off+tn], tile.Row(i))
	}
}

// A2AExchange combines the layouts of all source GPUs and precomputes the
// receive-side placement: GPU j's reference output stacks the tokens routed
// to it ordered by (source GPU, token index), the same order a vanilla
// All-to-All produces, so overlapped and reference runs can be compared
// row-for-row.
type A2AExchange struct {
	N       int
	Layouts []*A2ALayout
	// rowOn[j] maps (source i, token r) -> output row on GPU j, or -1.
	rowOn [][]int // indexed [j][i*M+r]
	// tokensTo[j] is GPU j's output row count.
	tokensTo []int
	// recvBase[j][i] is the element offset in GPU j's receive buffer
	// where source i's region begins; regions are ordered by source and,
	// within a source, by group then emission order.
	recvBase [][]int
}

// NewA2AExchange builds the exchange from per-source routing tables. All
// sources must share a plan shape/config and group bounds (TP/EP symmetric
// execution), though their routings differ.
func NewA2AExchange(p *gemm.Plan, bounds []gemm.GroupBound, dests [][]int) (*A2AExchange, error) {
	n := len(dests)
	if n < 1 {
		return nil, fmt.Errorf("reorder: no sources")
	}
	e := &A2AExchange{N: n, tokensTo: make([]int, n)}
	for i, d := range dests {
		l, err := NewA2ALayout(p, bounds, n, d)
		if err != nil {
			return nil, fmt.Errorf("source %d: %w", i, err)
		}
		e.Layouts = append(e.Layouts, l)
	}
	m := p.Shape.M
	e.rowOn = make([][]int, n)
	e.recvBase = make([][]int, n)
	for j := 0; j < n; j++ {
		e.rowOn[j] = make([]int, n*m)
		for k := range e.rowOn[j] {
			e.rowOn[j][k] = -1
		}
		e.recvBase[j] = make([]int, n+1)
		row := 0
		for i := 0; i < n; i++ {
			e.recvBase[j][i] = len(e.Layouts[i].pools[j]) // entry count, fixed below
			for r := 0; r < m; r++ {
				if dests[i][r] == j {
					e.rowOn[j][i*m+r] = row
					row++
				}
			}
		}
		e.tokensTo[j] = row
		// Convert per-source entry counts into element prefix offsets.
		prefix := 0
		for i := 0; i < n; i++ {
			cnt := e.recvBase[j][i] * p.Cfg.TileN
			e.recvBase[j][i] = prefix
			prefix += cnt
		}
		e.recvBase[j][n] = prefix
	}
	return e, nil
}

// TokensTo reports GPU j's output token count.
func (e *A2AExchange) TokensTo(j int) int { return e.tokensTo[j] }

// OutputRowOf reports where token r of source i lands in GPU j's output
// (-1 if it is not routed to j).
func (e *A2AExchange) OutputRowOf(j, i, r int) int {
	return e.rowOn[j][i*e.Layouts[0].Plan.Shape.M+r]
}

// RecvElems reports GPU j's receive-buffer size in elements.
func (e *A2AExchange) RecvElems(j int) int { return e.recvBase[j][e.N] }

// NewRecvBuffer allocates GPU j's receive buffer.
func (e *A2AExchange) NewRecvBuffer(j int) []float32 { return make([]float32, e.RecvElems(j)) }

// GroupCounts returns sendCounts/sendOffs/recvOffs (element granularity)
// for group g's All-to-AllV call, in the shapes comm.AllToAllV expects.
func (e *A2AExchange) GroupCounts(g int) (counts, sendOffs, recvOffs [][]int) {
	n := e.N
	tn := e.Layouts[0].Plan.Cfg.TileN
	counts = make([][]int, n)
	sendOffs = make([][]int, n)
	recvOffs = make([][]int, n)
	for i := 0; i < n; i++ {
		counts[i] = make([]int, n)
		sendOffs[i] = make([]int, n)
		recvOffs[i] = make([]int, n)
	}
	for i := 0; i < n; i++ {
		li := e.Layouts[i]
		for j := 0; j < n; j++ {
			lo, hi := li.GroupPoolRange(j, g)
			counts[i][j] = (hi - lo) * tn
			sendOffs[i][j] = li.SendOffset(j, lo)
		}
	}
	// Receive offsets: source i's group-g entries land after its earlier
	// groups within its region of GPU j's buffer.
	for j := 0; j < n; j++ {
		for i := 0; i < n; i++ {
			lo, _ := e.Layouts[i].GroupPoolRange(j, g)
			recvOffs[j][i] = e.recvBase[j][i] + lo*tn
		}
	}
	return counts, sendOffs, recvOffs
}

// GroupBytes reports per-rank payload bytes for group g's exchange: each
// rank's max of send and receive volume, which pins completion to the most
// loaded GPU (the imbalance effect of §4.2.2).
func (e *A2AExchange) GroupBytes(g int) []int64 {
	n := e.N
	tn := int64(e.Layouts[0].Plan.Cfg.TileN)
	out := make([]int64, n)
	for i := 0; i < n; i++ {
		var send, recv int64
		for j := 0; j < n; j++ {
			slo, shi := e.Layouts[i].GroupPoolRange(j, g)
			send += int64(shi-slo) * tn
			rlo, rhi := e.Layouts[j].GroupPoolRange(i, g)
			recv += int64(rhi-rlo) * tn
		}
		bytes := send
		if recv > bytes {
			bytes = recv
		}
		out[i] = bytes * 2 // half precision
	}
	return out
}

// Gather performs GPU j's post-communication reorder: the receive buffer's
// subtokens are placed at their (source, token) rows and tile-column
// offsets in dst, which must be TokensTo(j) x N.
func (e *A2AExchange) Gather(j int, dst *tensor.Matrix, recv []float32) {
	p := e.Layouts[0].Plan
	if dst.Rows != e.tokensTo[j] || dst.Cols != p.Shape.N {
		panic(fmt.Sprintf("reorder: a2a gather dst is %dx%d, want %dx%d", dst.Rows, dst.Cols, e.tokensTo[j], p.Shape.N))
	}
	if len(recv) != e.RecvElems(j) {
		panic(fmt.Sprintf("reorder: recv buffer has %d elems, want %d", len(recv), e.RecvElems(j)))
	}
	tn := p.Cfg.TileN
	m := p.Shape.M
	for i := 0; i < e.N; i++ {
		entries := e.Layouts[i].PoolEntries(j)
		base := e.recvBase[j][i]
		for s, ent := range entries {
			row := e.rowOn[j][i*m+ent.Token]
			src := recv[base+s*tn : base+(s+1)*tn]
			copy(dst.Row(row)[ent.ColTile*tn:(ent.ColTile+1)*tn], src)
		}
	}
}

// GatherFusedRMSNorm fuses GPU j's post-communication subtoken reorder into
// a row-wise RMSNorm (Table 5's subtoken granularity): each output row is
// assembled from its subtokens via the mapping tables, normalized, and
// written once — the reorder costs table indirection, not extra volume.
func (e *A2AExchange) GatherFusedRMSNorm(j int, dst *tensor.Matrix, recv []float32, weight []float32, eps float64) {
	p := e.Layouts[0].Plan
	if dst.Rows != e.tokensTo[j] || dst.Cols != p.Shape.N {
		panic(fmt.Sprintf("reorder: fused a2a dst is %dx%d, want %dx%d", dst.Rows, dst.Cols, e.tokensTo[j], p.Shape.N))
	}
	if len(weight) != p.Shape.N {
		panic(fmt.Sprintf("reorder: weight len %d != N %d", len(weight), p.Shape.N))
	}
	tn := p.Cfg.TileN
	m := p.Shape.M
	// rowSrc[row*ColTiles + colTile] = element offset of the subtoken in
	// recv; built from the mapping tables (known offline).
	rowSrc := make([]int, e.tokensTo[j]*p.ColTiles)
	for i := 0; i < e.N; i++ {
		entries := e.Layouts[i].PoolEntries(j)
		base := e.recvBase[j][i]
		for s, ent := range entries {
			row := e.rowOn[j][i*m+ent.Token]
			rowSrc[row*p.ColTiles+ent.ColTile] = base + s*tn
		}
	}
	segs := make([][]float32, p.ColTiles)
	for r := 0; r < e.tokensTo[j]; r++ {
		for tc := 0; tc < p.ColTiles; tc++ {
			off := rowSrc[r*p.ColTiles+tc]
			segs[tc] = recv[off : off+tn]
		}
		rmsNormSegments(dst.Row(r), segs, tn, weight, eps)
	}
}

// ReferenceOutput computes GPU j's expected All-to-All output from the
// sources' full (unreordered) matrices: tokens routed to j stacked in
// (source, token) order.
func (e *A2AExchange) ReferenceOutput(j int, fullOutputs []*tensor.Matrix) *tensor.Matrix {
	p := e.Layouts[0].Plan
	out := tensor.New(e.tokensTo[j], p.Shape.N)
	row := 0
	for i, src := range fullOutputs {
		for r := 0; r < p.Shape.M; r++ {
			if e.Layouts[i].Dest[r] == j {
				copy(out.Row(row), src.Row(r))
				row++
			}
		}
	}
	return out
}
