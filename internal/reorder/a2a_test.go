package reorder

import (
	"testing"
	"testing/quick"

	"repro/internal/comm"
	"repro/internal/gemm"
	"repro/internal/tensor"
)

// routing builds a deterministic routing table for m tokens over n GPUs.
// skew > 0 biases more tokens toward GPU 0 (MoE imbalance).
func routing(m, n int, seed uint64, skew int) []int {
	out := make([]int, m)
	state := seed*2654435761 + 1
	for r := range out {
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		d := int(state % uint64(n+skew))
		if d >= n {
			d = 0 // skewed mass lands on GPU 0
		}
		out[r] = d
	}
	return out
}

func TestA2ALayoutPoolsPartitionTokens(t *testing.T) {
	const n = 2
	p := planFor(t, 16, 16, 3, 4, 8, 2)
	bounds := gemm.Partition{1, 1}.Bounds(p, 4)
	dest := routing(p.Shape.M, n, 7, 0)
	l, err := NewA2ALayout(p, bounds, n, dest)
	if err != nil {
		t.Fatal(err)
	}
	// Every (token, colTile) pair appears exactly once across pools.
	seen := map[[2]int]bool{}
	total := 0
	for j := 0; j < n; j++ {
		for _, e := range l.PoolEntries(j) {
			if dest[e.Token] != j {
				t.Fatalf("token %d in pool %d but routed to %d", e.Token, j, dest[e.Token])
			}
			key := [2]int{e.Token, e.ColTile}
			if seen[key] {
				t.Fatalf("duplicate subtoken %v", key)
			}
			seen[key] = true
			total++
		}
	}
	if total != p.Shape.M*p.ColTiles {
		t.Fatalf("pools hold %d subtokens, want %d", total, p.Shape.M*p.ColTiles)
	}
	if l.SendElems() != p.Shape.M*p.Shape.N {
		t.Fatalf("SendElems = %d, want %d", l.SendElems(), p.Shape.M*p.Shape.N)
	}
}

func TestA2ALayoutGroupRangesAreMonotone(t *testing.T) {
	const n = 2
	p := planFor(t, 16, 16, 3, 4, 8, 2)
	bounds := gemm.Partition{1, 1}.Bounds(p, 4)
	l, err := NewA2ALayout(p, bounds, n, routing(p.Shape.M, n, 9, 0))
	if err != nil {
		t.Fatal(err)
	}
	for j := 0; j < n; j++ {
		prev := 0
		for g := range bounds {
			lo, hi := l.GroupPoolRange(j, g)
			if lo != prev || hi < lo {
				t.Fatalf("pool %d group %d range [%d,%d) not contiguous after %d", j, g, lo, hi, prev)
			}
			prev = hi
		}
		if prev != len(l.PoolEntries(j)) {
			t.Fatalf("pool %d group ranges cover %d of %d entries", j, prev, len(l.PoolEntries(j)))
		}
	}
}

func TestA2ALayoutValidation(t *testing.T) {
	p := planFor(t, 8, 8, 2, 4, 4, 1)
	bounds := gemm.SingleGroup(p.Waves(4)).Bounds(p, 4)
	if _, err := NewA2ALayout(p, bounds, 2, make([]int, 3)); err == nil {
		t.Error("short routing table accepted")
	}
	bad := make([]int, p.Shape.M)
	bad[0] = 5
	if _, err := NewA2ALayout(p, bounds, 2, bad); err == nil {
		t.Error("out-of-range destination accepted")
	}
	if _, err := NewA2ALayout(p, nil, 2, make([]int, p.Shape.M)); err == nil {
		t.Error("empty bounds accepted")
	}
}

// The full functional All-to-All path: scatter subtokens into pools,
// exchange each wave group with one AllToAllV over contiguous ranges,
// gather — every GPU's output must equal the reference exchange of the
// unreordered outputs.
func TestA2AExchangeEndToEnd(t *testing.T) {
	const n = 3
	p := planFor(t, 12, 24, 4, 4, 8, 2) // 3x3=9 tiles
	sms := 3                            // 3 waves
	bounds := gemm.Partition{1, 2}.Bounds(p, sms)

	dests := make([][]int, n)
	for i := range dests {
		dests[i] = routing(p.Shape.M, n, uint64(40+i), 1)
	}
	e, err := NewA2AExchange(p, bounds, dests)
	if err != nil {
		t.Fatal(err)
	}

	fulls := make([]*tensor.Matrix, n)
	sendBufs := make([][]float32, n)
	for i := 0; i < n; i++ {
		c, a, b := computeC(t, p, uint64(50+i))
		fulls[i] = c
		sendBufs[i] = e.Layouts[i].NewSendBuffer()
		for idx := 0; idx < p.Tiles; idx++ {
			e.Layouts[i].ScatterTile(sendBufs[i], p.ComputeTile(a, b, idx, nil), idx)
		}
	}

	recvBufs := make([][]float32, n)
	for j := 0; j < n; j++ {
		recvBufs[j] = e.NewRecvBuffer(j)
	}
	for g := range bounds {
		counts, soffs, roffs := e.GroupCounts(g)
		comm.AllToAllVData(sendBufs, recvBufs, counts, soffs, roffs)
	}

	for j := 0; j < n; j++ {
		got := tensor.New(e.TokensTo(j), p.Shape.N)
		e.Gather(j, got, recvBufs[j])
		want := e.ReferenceOutput(j, fulls)
		if !got.Equal(want) {
			t.Fatalf("GPU %d A2A output differs, max diff %v", j, got.MaxDiff(want))
		}
	}
}

func TestA2AExchangeTokenConservation(t *testing.T) {
	const n = 4
	p := planFor(t, 16, 8, 2, 4, 8, 1)
	bounds := gemm.SingleGroup(p.Waves(4)).Bounds(p, 4)
	dests := make([][]int, n)
	for i := range dests {
		dests[i] = routing(p.Shape.M, n, uint64(i), 2)
	}
	e, err := NewA2AExchange(p, bounds, dests)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for j := 0; j < n; j++ {
		total += e.TokensTo(j)
	}
	if total != n*p.Shape.M {
		t.Fatalf("tokens out %d != tokens in %d", total, n*p.Shape.M)
	}
}

func TestA2AGroupBytesReflectImbalance(t *testing.T) {
	const n = 2
	p := planFor(t, 16, 8, 2, 4, 8, 1)
	bounds := gemm.SingleGroup(p.Waves(4)).Bounds(p, 4)
	// All tokens from both sources go to GPU 0: its receive volume should
	// dominate its payload.
	allZero := make([]int, p.Shape.M)
	dests := [][]int{allZero, allZero}
	e, err := NewA2AExchange(p, bounds, dests)
	if err != nil {
		t.Fatal(err)
	}
	bytes := e.GroupBytes(0)
	if bytes[0] <= bytes[1] {
		t.Fatalf("hot GPU 0 payload %d should exceed GPU 1 payload %d", bytes[0], bytes[1])
	}
	// GPU 0 receives 2*M tokens of N columns = 2*M*N elems * 2 bytes.
	want := int64(2*p.Shape.M*p.Shape.N) * 2
	if bytes[0] != want {
		t.Fatalf("GPU 0 payload = %d, want %d", bytes[0], want)
	}
}

func TestA2AOutputRowOf(t *testing.T) {
	const n = 2
	p := planFor(t, 8, 8, 2, 4, 4, 1)
	bounds := gemm.SingleGroup(p.Waves(4)).Bounds(p, 4)
	dests := [][]int{
		{0, 1, 0, 1, 0, 1, 0, 1},
		{1, 1, 0, 0, 1, 1, 0, 0},
	}
	e, err := NewA2AExchange(p, bounds, dests)
	if err != nil {
		t.Fatal(err)
	}
	// GPU 0 receives source-0 tokens 0,2,4,6 then source-1 tokens 2,3,6,7.
	if e.TokensTo(0) != 8 {
		t.Fatalf("TokensTo(0) = %d", e.TokensTo(0))
	}
	if e.OutputRowOf(0, 0, 0) != 0 || e.OutputRowOf(0, 0, 6) != 3 {
		t.Fatal("source-0 rows misplaced")
	}
	if e.OutputRowOf(0, 1, 2) != 4 || e.OutputRowOf(0, 1, 7) != 7 {
		t.Fatal("source-1 rows misplaced")
	}
	if e.OutputRowOf(0, 0, 1) != -1 {
		t.Fatal("token routed elsewhere should be -1")
	}
}

// Property: for random routings and partitions, the grouped exchange always
// reconstructs the reference output.
func TestA2AExchangeProperty(t *testing.T) {
	f := func(seed uint64, partPick uint8) bool {
		const n = 2
		p, err := gemm.NewPlan(gemm.Shape{M: 8, N: 8, K: 2}, gemm.Config{TileM: 4, TileN: 4, Swizzle: 2})
		if err != nil {
			return false
		}
		sms := 2 // 4 tiles -> 2 waves
		var part gemm.Partition
		if partPick%2 == 0 {
			part = gemm.Partition{1, 1}
		} else {
			part = gemm.Partition{2}
		}
		bounds := part.Bounds(p, sms)
		dests := [][]int{routing(8, n, seed, 0), routing(8, n, seed+1, 0)}
		e, err := NewA2AExchange(p, bounds, dests)
		if err != nil {
			return false
		}
		fulls := make([]*tensor.Matrix, n)
		sendBufs := make([][]float32, n)
		for i := 0; i < n; i++ {
			a := tensor.New(8, 2)
			b := tensor.New(2, 8)
			a.FillRand(seed + uint64(i)*7)
			b.FillRand(seed + uint64(i)*7 + 3)
			c := tensor.New(8, 8)
			gemm.ComputeReference(c, a, b, nil)
			fulls[i] = c
			sendBufs[i] = e.Layouts[i].NewSendBuffer()
			for idx := 0; idx < p.Tiles; idx++ {
				e.Layouts[i].ScatterTile(sendBufs[i], p.ComputeTile(a, b, idx, nil), idx)
			}
		}
		recvBufs := [][]float32{e.NewRecvBuffer(0), e.NewRecvBuffer(1)}
		for g := range bounds {
			counts, soffs, roffs := e.GroupCounts(g)
			comm.AllToAllVData(sendBufs, recvBufs, counts, soffs, roffs)
		}
		for j := 0; j < n; j++ {
			got := tensor.New(e.TokensTo(j), 8)
			e.Gather(j, got, recvBufs[j])
			if !got.Equal(e.ReferenceOutput(j, fulls)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}
