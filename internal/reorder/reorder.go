// Package reorder implements the pre- and post-communication reordering of
// §3.3: mapping tables that place tiles (AllReduce), subtiles
// (ReduceScatter), or subtokens (All-to-All) at contiguous addresses in
// execution-order before communication, and restore logical order after.
//
// The pre-communication reorder is what lets a wave group be communicated
// with a single NCCL-style API call over one contiguous range; the
// post-communication reorder is designed to be fusable into the next
// element-wise kernel (it is a gather through a mapping table, see Fused
// variants and the Table 5 overhead study).
package reorder

import (
	"fmt"
	"math"

	"repro/internal/gemm"
	"repro/internal/tensor"
)

// TileMapping is the AllReduce-granularity mapping (Fig. 7d): tile t of the
// GEMM output is stored in communication-buffer slot Pos[t] (its execution
// position), so each wave group occupies one contiguous slot range.
type TileMapping struct {
	Plan *gemm.Plan
}

// NewTileMapping builds the mapping for a plan.
func NewTileMapping(p *gemm.Plan) *TileMapping { return &TileMapping{Plan: p} }

// BufferShape returns the (rows, cols) of the communication buffer: a
// column of tiles, each tile row-major (the "reshaped into a column of
// tiles" layout of §3.3.4).
func (tm *TileMapping) BufferShape() (rows, cols int) {
	return tm.Plan.Tiles * tm.Plan.Cfg.TileM, tm.Plan.Cfg.TileN
}

// NewBuffer allocates a zeroed communication buffer.
func (tm *TileMapping) NewBuffer() *tensor.Matrix {
	r, c := tm.BufferShape()
	return tensor.New(r, c)
}

// SlotOf reports the buffer slot of tile idx (its execution position).
func (tm *TileMapping) SlotOf(idx int) int { return tm.Plan.Pos[idx] }

// TileOf reports which tile occupies buffer slot s.
func (tm *TileMapping) TileOf(s int) int { return tm.Plan.Order[s] }

// ScatterTile writes a computed tile into its slot of the communication
// buffer. This is the epilogue-fused pre-communication reorder.
func (tm *TileMapping) ScatterTile(buf *tensor.Matrix, tile *tensor.Matrix, idx int) {
	p := tm.Plan
	if tile.Rows != p.Cfg.TileM || tile.Cols != p.Cfg.TileN {
		panic(fmt.Sprintf("reorder: tile is %dx%d, want %dx%d", tile.Rows, tile.Cols, p.Cfg.TileM, p.Cfg.TileN))
	}
	slot := tm.SlotOf(idx)
	buf.CopyRect(slot*p.Cfg.TileM, 0, tile, 0, 0, p.Cfg.TileM, p.Cfg.TileN)
}

// SlotView returns a view of the contiguous slot range [lo, hi) of buf — the
// range handed to one collective call for a wave group.
func (tm *TileMapping) SlotView(buf *tensor.Matrix, lo, hi int) *tensor.Matrix {
	p := tm.Plan
	if lo < 0 || hi > p.Tiles || lo >= hi {
		panic(fmt.Sprintf("reorder: slot range [%d,%d) out of %d", lo, hi, p.Tiles))
	}
	tmr := p.Cfg.TileM
	return tensor.FromSlice((hi-lo)*tmr, p.Cfg.TileN, buf.Data[lo*tmr*p.Cfg.TileN:hi*tmr*p.Cfg.TileN])
}

// Gather performs the post-communication reorder: it reads every slot of
// buf and writes the tile back to its logical rectangle in dst (M x N).
func (tm *TileMapping) Gather(dst, buf *tensor.Matrix) {
	p := tm.Plan
	if dst.Rows != p.Shape.M || dst.Cols != p.Shape.N {
		panic(fmt.Sprintf("reorder: gather dst is %dx%d, want %dx%d", dst.Rows, dst.Cols, p.Shape.M, p.Shape.N))
	}
	for s := 0; s < p.Tiles; s++ {
		idx := tm.TileOf(s)
		r0, c0, rows, cols := p.TileRect(idx)
		dst.CopyRect(r0, c0, buf, s*p.Cfg.TileM, 0, rows, cols)
	}
}

// GatherFusedRMSNorm applies RMSNorm row-wise to the logical matrix while
// gathering directly from the reordered buffer — the fusion the paper uses
// to hide the post-communication reorder inside the next element-wise
// kernel (§3.3.4, Table 5). Instead of loading rows from a contiguous
// logical matrix, each logical row is assembled from its ColTiles slots via
// the mapping table; the extra cost is the table indirection, not extra
// data volume.
func (tm *TileMapping) GatherFusedRMSNorm(dst, buf *tensor.Matrix, weight []float32, eps float64) {
	p := tm.Plan
	if dst.Rows != p.Shape.M || dst.Cols != p.Shape.N {
		panic(fmt.Sprintf("reorder: fused dst is %dx%d, want %dx%d", dst.Rows, dst.Cols, p.Shape.M, p.Shape.N))
	}
	if len(weight) != p.Shape.N {
		panic(fmt.Sprintf("reorder: weight len %d != N %d", len(weight), p.Shape.N))
	}
	tmr, tnc := p.Cfg.TileM, p.Cfg.TileN
	// Two passes over the row's segments — sum of squares, then the
	// normalized store — so the fused kernel touches exactly the same
	// data volume as the unfused one plus the mapping-table indirection.
	segs := make([][]float32, p.ColTiles)
	for r := 0; r < p.Shape.M; r++ {
		tr, ir := r/tmr, r%tmr
		for tc := 0; tc < p.ColTiles; tc++ {
			slot := tm.SlotOf(tr*p.ColTiles + tc)
			segs[tc] = buf.Row(slot*tmr + ir)
		}
		rmsNormSegments(dst.Row(r), segs, tnc, weight, eps)
	}
}

// rmsNormSegments normalizes a logical row given as per-tile segments,
// writing the result contiguously into dst. weight is indexed by the
// logical column.
func rmsNormSegments(dst []float32, segs [][]float32, segWidth int, weight []float32, eps float64) {
	var sq float64
	for _, seg := range segs {
		for _, v := range seg {
			sq += float64(v) * float64(v)
		}
	}
	inv := 1 / math.Sqrt(sq/float64(len(segs)*segWidth)+eps)
	for tc, seg := range segs {
		out := dst[tc*segWidth : (tc+1)*segWidth]
		w := weight[tc*segWidth : (tc+1)*segWidth]
		for j, v := range seg {
			out[j] = float32(float64(v)*inv) * w[j]
		}
	}
}

func rmsNormRow(dst, src []float32, weight []float32, eps float64) {
	var sq float64
	for _, v := range src {
		sq += float64(v) * float64(v)
	}
	inv := 1 / math.Sqrt(sq/float64(len(src))+eps)
	for j, v := range src {
		dst[j] = float32(float64(v)*inv) * weight[j]
	}
}
