package reorder

import (
	"testing"

	"repro/internal/gemm"
	"repro/internal/tensor"
)

// planFor builds a small plan with swizzling so the execution order is a
// non-trivial permutation.
func planFor(t *testing.T, m, n, k, tileM, tileN, swizzle int) *gemm.Plan {
	t.Helper()
	p, err := gemm.NewPlan(gemm.Shape{M: m, N: n, K: k}, gemm.Config{TileM: tileM, TileN: tileN, Swizzle: swizzle})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// computeC returns a reference C = A*B for a plan, along with A and B.
func computeC(t *testing.T, p *gemm.Plan, seed uint64) (c, a, b *tensor.Matrix) {
	t.Helper()
	a = tensor.New(p.Shape.M, p.Shape.K)
	b = tensor.New(p.Shape.K, p.Shape.N)
	a.FillRand(seed)
	b.FillRand(seed + 1)
	c = tensor.New(p.Shape.M, p.Shape.N)
	gemm.ComputeReference(c, a, b, nil)
	return c, a, b
}

func TestTileMappingRoundTrip(t *testing.T) {
	p := planFor(t, 16, 24, 5, 4, 8, 2)
	tm := NewTileMapping(p)
	c, a, b := computeC(t, p, 1)

	buf := tm.NewBuffer()
	for idx := 0; idx < p.Tiles; idx++ {
		tm.ScatterTile(buf, p.ComputeTile(a, b, idx, nil), idx)
	}
	got := tensor.New(p.Shape.M, p.Shape.N)
	tm.Gather(got, buf)
	if !got.Equal(c) {
		t.Fatalf("scatter+gather lost data, max diff %v", got.MaxDiff(c))
	}
}

func TestTileMappingSlotIsExecutionPosition(t *testing.T) {
	p := planFor(t, 8, 12, 2, 4, 4, 2)
	tm := NewTileMapping(p)
	for pos, idx := range p.Order {
		if tm.SlotOf(idx) != pos {
			t.Fatalf("SlotOf(%d) = %d, want execution position %d", idx, tm.SlotOf(idx), pos)
		}
		if tm.TileOf(pos) != idx {
			t.Fatalf("TileOf(%d) = %d, want %d", pos, tm.TileOf(pos), idx)
		}
	}
}

func TestTileMappingBufferShape(t *testing.T) {
	p := planFor(t, 16, 24, 5, 4, 8, 2)
	tm := NewTileMapping(p)
	r, c := tm.BufferShape()
	if r != p.Tiles*4 || c != 8 {
		t.Fatalf("BufferShape = %dx%d", r, c)
	}
	if r*c != p.Shape.M*p.Shape.N {
		t.Fatal("buffer footprint must equal output footprint")
	}
}

// A wave group's slots must be one contiguous memory range — the property
// that enables a single NCCL call per group.
func TestTileMappingGroupContiguity(t *testing.T) {
	p := planFor(t, 16, 24, 5, 4, 8, 3)
	tm := NewTileMapping(p)
	c, a, b := computeC(t, p, 2)
	buf := tm.NewBuffer()
	for idx := 0; idx < p.Tiles; idx++ {
		tm.ScatterTile(buf, p.ComputeTile(a, b, idx, nil), idx)
	}
	lo, hi := 2, 5
	view := tm.SlotView(buf, lo, hi)
	// The view must alias the buffer (zero copy) and contain exactly the
	// tiles at execution positions lo..hi-1.
	view.Set(0, 0, 12345)
	if buf.At(lo*p.Cfg.TileM, 0) != 12345 {
		t.Fatal("SlotView must alias the buffer")
	}
	buf.Set(lo*p.Cfg.TileM, 0, 0) // restore
	for s := lo; s < hi; s++ {
		idx := tm.TileOf(s)
		r0, c0, rows, cols := p.TileRect(idx)
		for i := 0; i < rows; i++ {
			for j := 0; j < cols; j++ {
				want := c.At(r0+i, c0+j)
				if got := view.At((s-lo)*p.Cfg.TileM+i, j); got != want && !(s == lo && i == 0 && j == 0) {
					t.Fatalf("slot %d tile %d mismatch at (%d,%d): %v vs %v", s, idx, i, j, got, want)
				}
			}
		}
	}
}

func TestTileMappingFusedRMSNorm(t *testing.T) {
	p := planFor(t, 16, 24, 5, 4, 8, 2)
	tm := NewTileMapping(p)
	c, a, b := computeC(t, p, 3)
	buf := tm.NewBuffer()
	for idx := 0; idx < p.Tiles; idx++ {
		tm.ScatterTile(buf, p.ComputeTile(a, b, idx, nil), idx)
	}
	weight := make([]float32, p.Shape.N)
	for i := range weight {
		weight[i] = 1 + float32(i%5)*0.1
	}
	want := tensor.New(p.Shape.M, p.Shape.N)
	tensor.RMSNorm(want, c, weight, 1e-6)
	got := tensor.New(p.Shape.M, p.Shape.N)
	tm.GatherFusedRMSNorm(got, buf, weight, 1e-6)
	if !got.AllClose(want, 1e-6, 1e-6) {
		t.Fatalf("fused RMSNorm differs from unfused, max diff %v", got.MaxDiff(want))
	}
}

func TestTileMappingPanics(t *testing.T) {
	p := planFor(t, 8, 8, 2, 4, 4, 1)
	tm := NewTileMapping(p)
	buf := tm.NewBuffer()
	for name, fn := range map[string]func(){
		"bad-tile":   func() { tm.ScatterTile(buf, tensor.New(2, 2), 0) },
		"bad-range":  func() { tm.SlotView(buf, 3, 3) },
		"bad-gather": func() { tm.Gather(tensor.New(4, 4), buf) },
		"bad-weight": func() { tm.GatherFusedRMSNorm(tensor.New(8, 8), buf, []float32{1}, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			fn()
		}()
	}
}
