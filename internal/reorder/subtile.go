package reorder

import (
	"fmt"

	"repro/internal/gemm"
	"repro/internal/tensor"
)

// SubtileLayout is the ReduceScatter-granularity mapping (Fig. 7e). Each
// output tile is split across the row dimension into nGPUs subtiles; within
// every wave group's contiguous buffer range, the buffer is ordered
// GPU-major (all k-th subtiles of the group's tiles together), so a single
// ReduceScatter call over the group range lands the k-th subtile of every
// tile on GPU k. Row completeness is preserved: GPU k ends up owning rows r
// with (r mod TileM) in subtile k, each complete across all N columns once
// every group has arrived.
type SubtileLayout struct {
	Plan   *gemm.Plan
	NGPUs  int
	Bounds []gemm.GroupBound
	// SubRows is TileM / NGPUs.
	SubRows int
	// groupOf maps execution position -> group index.
	groupOf []int
}

// NewSubtileLayout validates divisibility and precomputes the layout.
func NewSubtileLayout(p *gemm.Plan, bounds []gemm.GroupBound, nGPUs int) (*SubtileLayout, error) {
	if nGPUs < 1 {
		return nil, fmt.Errorf("reorder: invalid GPU count %d", nGPUs)
	}
	if p.Cfg.TileM%nGPUs != 0 {
		return nil, fmt.Errorf("reorder: TileM %d not divisible by %d GPUs", p.Cfg.TileM, nGPUs)
	}
	if len(bounds) == 0 {
		return nil, fmt.Errorf("reorder: no group bounds")
	}
	l := &SubtileLayout{
		Plan:    p,
		NGPUs:   nGPUs,
		Bounds:  bounds,
		SubRows: p.Cfg.TileM / nGPUs,
		groupOf: make([]int, p.Tiles),
	}
	covered := 0
	for g, b := range bounds {
		if b.PosLo != covered {
			return nil, fmt.Errorf("reorder: group %d starts at %d, want %d", g, b.PosLo, covered)
		}
		for pos := b.PosLo; pos < b.PosHi; pos++ {
			l.groupOf[pos] = g
		}
		covered = b.PosHi
	}
	if covered != p.Tiles {
		return nil, fmt.Errorf("reorder: groups cover %d of %d tiles", covered, p.Tiles)
	}
	return l, nil
}

// NewSendBuffer allocates the pre-communication buffer:
// (Tiles*TileM) x TileN, same footprint as the GEMM output.
func (l *SubtileLayout) NewSendBuffer() *tensor.Matrix {
	return tensor.New(l.Plan.Tiles*l.Plan.Cfg.TileM, l.Plan.Cfg.TileN)
}

// NewRecvBuffer allocates one GPU's post-communication buffer:
// (Tiles*SubRows) x TileN.
func (l *SubtileLayout) NewRecvBuffer() *tensor.Matrix {
	return tensor.New(l.Plan.Tiles*l.SubRows, l.Plan.Cfg.TileN)
}

// sendRow returns the send-buffer row where subtile k of the tile at
// execution position pos begins.
func (l *SubtileLayout) sendRow(pos, k int) int {
	b := l.Bounds[l.groupOf[pos]]
	groupTiles := b.Tiles()
	base := b.PosLo * l.Plan.Cfg.TileM // groups are packed back to back
	return base + k*groupTiles*l.SubRows + (pos-b.PosLo)*l.SubRows
}

// ScatterTile splits a computed tile into subtiles and writes each into its
// GPU-major slot. This is the subtile-granularity epilogue reorder, which
// the paper implements as a scattering store in the GEMM epilogue.
func (l *SubtileLayout) ScatterTile(buf *tensor.Matrix, tile *tensor.Matrix, idx int) {
	p := l.Plan
	if tile.Rows != p.Cfg.TileM || tile.Cols != p.Cfg.TileN {
		panic(fmt.Sprintf("reorder: tile is %dx%d, want %dx%d", tile.Rows, tile.Cols, p.Cfg.TileM, p.Cfg.TileN))
	}
	pos := p.Pos[idx]
	for k := 0; k < l.NGPUs; k++ {
		buf.CopyRect(l.sendRow(pos, k), 0, tile, k*l.SubRows, 0, l.SubRows, p.Cfg.TileN)
	}
}

// GroupSendView returns the contiguous send-buffer range of group g — the
// argument to one ReduceScatter call.
func (l *SubtileLayout) GroupSendView(buf *tensor.Matrix, g int) *tensor.Matrix {
	b := l.Bounds[g]
	tm, tn := l.Plan.Cfg.TileM, l.Plan.Cfg.TileN
	return tensor.FromSlice(b.Tiles()*tm, tn, buf.Data[b.PosLo*tm*tn:b.PosHi*tm*tn])
}

// GroupRecvView returns the recv-buffer range where group g's share lands
// on each GPU. Position p's subtile occupies recv rows
// [p*SubRows, (p+1)*SubRows) independent of grouping, because groups are
// packed in position order on both sides.
func (l *SubtileLayout) GroupRecvView(buf *tensor.Matrix, g int) *tensor.Matrix {
	b := l.Bounds[g]
	sr, tn := l.SubRows, l.Plan.Cfg.TileN
	return tensor.FromSlice(b.Tiles()*sr, tn, buf.Data[b.PosLo*sr*tn:b.PosHi*sr*tn])
}

// LocalRows reports the number of output rows each GPU owns (M / NGPUs).
func (l *SubtileLayout) LocalRows() int { return l.Plan.Shape.M / l.NGPUs }

// GlobalRowOf maps GPU k's local row index to the row of the logical M x N
// matrix it holds: band tr = lr/SubRows, within-band offset k*SubRows +
// lr%SubRows.
func (l *SubtileLayout) GlobalRowOf(k, lr int) int {
	tr := lr / l.SubRows
	return tr*l.Plan.Cfg.TileM + k*l.SubRows + lr%l.SubRows
}

// Gather performs GPU k's post-communication reorder: recv (the
// fully-populated receive buffer) is scattered into dst, the GPU's local
// (M/NGPUs) x N block in band order.
func (l *SubtileLayout) Gather(dst, recv *tensor.Matrix) {
	p := l.Plan
	if dst.Rows != l.LocalRows() || dst.Cols != p.Shape.N {
		panic(fmt.Sprintf("reorder: gather dst is %dx%d, want %dx%d", dst.Rows, dst.Cols, l.LocalRows(), p.Shape.N))
	}
	for pos := 0; pos < p.Tiles; pos++ {
		idx := p.Order[pos]
		tr, tc := idx/p.ColTiles, idx%p.ColTiles
		dst.CopyRect(tr*l.SubRows, tc*p.Cfg.TileN, recv, pos*l.SubRows, 0, l.SubRows, p.Cfg.TileN)
	}
}

// GatherFusedRMSNorm fuses the post-communication reorder into a row-wise
// RMSNorm over GPU k's local block (each local row is complete, which is
// exactly why the subtile split exists — §3.3.3).
func (l *SubtileLayout) GatherFusedRMSNorm(dst, recv *tensor.Matrix, weight []float32, eps float64) {
	p := l.Plan
	if dst.Rows != l.LocalRows() || dst.Cols != p.Shape.N {
		panic(fmt.Sprintf("reorder: fused dst is %dx%d, want %dx%d", dst.Rows, dst.Cols, l.LocalRows(), p.Shape.N))
	}
	if len(weight) != p.Shape.N {
		panic(fmt.Sprintf("reorder: weight len %d != N %d", len(weight), p.Shape.N))
	}
	tn := p.Cfg.TileN
	segs := make([][]float32, p.ColTiles)
	for lr := 0; lr < l.LocalRows(); lr++ {
		tr, i := lr/l.SubRows, lr%l.SubRows
		for tc := 0; tc < p.ColTiles; tc++ {
			pos := p.Pos[tr*p.ColTiles+tc]
			segs[tc] = recv.Row(pos*l.SubRows + i)
		}
		rmsNormSegments(dst.Row(lr), segs, tn, weight, eps)
	}
}

// RowExchange corrects the row order after the AllGather that follows
// ReduceScatter (Fig. 7e): the gathered matrix is ordered GPU-major
// (k, band, in-band row); the exchange is the block-cyclic permutation back
// to natural row order, needing no mapping table.
func RowExchange(dst, src *tensor.Matrix, tileM, nGPUs int) {
	if dst.Rows != src.Rows || dst.Cols != src.Cols {
		panic("reorder: RowExchange shape mismatch")
	}
	if tileM%nGPUs != 0 || src.Rows%tileM != 0 {
		panic(fmt.Sprintf("reorder: RowExchange rows=%d tileM=%d n=%d not divisible", src.Rows, tileM, nGPUs))
	}
	subRows := tileM / nGPUs
	localRows := src.Rows / nGPUs
	for k := 0; k < nGPUs; k++ {
		for lr := 0; lr < localRows; lr++ {
			tr := lr / subRows
			natural := tr*tileM + k*subRows + lr%subRows
			copy(dst.Row(natural), src.Row(k*localRows+lr))
		}
	}
}
