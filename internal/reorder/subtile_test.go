package reorder

import (
	"testing"

	"repro/internal/comm"
	"repro/internal/gemm"
	"repro/internal/tensor"
)

// groupedBounds partitions a plan into wave groups for a given SM width.
func groupedBounds(t *testing.T, p *gemm.Plan, sms int, part gemm.Partition) []gemm.GroupBound {
	t.Helper()
	if err := part.Validate(p.Waves(sms)); err != nil {
		t.Fatal(err)
	}
	return part.Bounds(p, sms)
}

func TestPartitionHelpers(t *testing.T) {
	if got := gemm.SingleGroup(5); got.Groups() != 1 || got.TotalWaves() != 5 {
		t.Fatalf("SingleGroup = %v", got)
	}
	if got := gemm.PerWave(4); got.Groups() != 4 || got.TotalWaves() != 4 {
		t.Fatalf("PerWave = %v", got)
	}
	eq := gemm.EqualSized(10, 4)
	if eq.TotalWaves() != 10 {
		t.Fatalf("EqualSized total = %v", eq)
	}
	// 10 = 4+4+2: trailing 2 = half of 4 is kept.
	if eq.Groups() != 3 || eq[2] != 2 {
		t.Fatalf("EqualSized(10,4) = %v, want (4,4,2)", eq)
	}
	// 9 = 4+4+1: runt 1 < 2 folds into predecessor -> (4,5).
	if got := gemm.EqualSized(9, 4); got.Groups() != 2 || got[1] != 5 {
		t.Fatalf("EqualSized(9,4) = %v, want (4,5)", got)
	}
	if got := gemm.EqualSized(3, 8); got.Groups() != 1 {
		t.Fatalf("EqualSized(3,8) = %v, want single group", got)
	}
	if (gemm.Partition{2, -1}).Validate(1) == nil {
		t.Fatal("negative group accepted")
	}
	if (gemm.Partition{2, 2}).Validate(5) == nil {
		t.Fatal("wrong total accepted")
	}
	if s := (gemm.Partition{1, 2, 2}).String(); s != "(1, 2, 2)" {
		t.Fatalf("String = %q", s)
	}
}

func TestPartitionBounds(t *testing.T) {
	p := planFor(t, 20, 8, 2, 2, 2, 1) // 10x4 = 40 tiles
	sms := 8                           // 5 waves
	bounds := groupedBounds(t, p, sms, gemm.Partition{1, 2, 2})
	if len(bounds) != 3 {
		t.Fatalf("bounds = %v", bounds)
	}
	if bounds[0].PosLo != 0 || bounds[0].PosHi != 8 {
		t.Fatalf("G1 = %+v", bounds[0])
	}
	if bounds[1].PosLo != 8 || bounds[1].PosHi != 24 {
		t.Fatalf("G2 = %+v", bounds[1])
	}
	if bounds[2].PosLo != 24 || bounds[2].PosHi != 40 {
		t.Fatalf("G3 = %+v", bounds[2])
	}
	if bounds[2].Tiles() != 16 {
		t.Fatalf("G3 tiles = %d", bounds[2].Tiles())
	}
}

func TestPartitionBoundsPartialLastWave(t *testing.T) {
	p := planFor(t, 18, 8, 2, 2, 2, 1) // 9x4 = 36 tiles
	sms := 8                           // ceil(36/8)=5 waves, last partial (4 tiles)
	bounds := groupedBounds(t, p, sms, gemm.Partition{2, 3})
	if bounds[1].PosHi != 36 {
		t.Fatalf("last group must clamp to tile count, got %+v", bounds[1])
	}
}

// Full functional ReduceScatter path across ranks: every rank computes its
// own C_i, scatters subtile-wise, each group is reduced-scattered as one
// contiguous call, each rank gathers — and every local row must equal the
// corresponding row of sum_i(C_i).
func TestSubtileReduceScatterEndToEnd(t *testing.T) {
	const nGPUs = 2
	p := planFor(t, 16, 24, 5, 4, 8, 2) // 4x3=12 tiles
	sms := 4                            // 3 waves
	bounds := groupedBounds(t, p, sms, gemm.Partition{1, 2})
	l, err := NewSubtileLayout(p, bounds, nGPUs)
	if err != nil {
		t.Fatal(err)
	}

	// Per-rank inputs and expected sum.
	var fulls []*tensor.Matrix
	var sends []*tensor.Matrix
	var as, bs []*tensor.Matrix
	for i := 0; i < nGPUs; i++ {
		c, a, b := computeC(t, p, uint64(10+i))
		fulls = append(fulls, c)
		as, bs = append(as, a), append(bs, b)
		sends = append(sends, l.NewSendBuffer())
	}
	sum := tensor.New(p.Shape.M, p.Shape.N)
	for _, f := range fulls {
		sum.AddInPlace(f)
	}

	// Pre-communication reorder on every rank.
	for i := 0; i < nGPUs; i++ {
		for idx := 0; idx < p.Tiles; idx++ {
			l.ScatterTile(sends[i], p.ComputeTile(as[i], bs[i], idx, nil), idx)
		}
	}

	// Group-wise ReduceScatter over contiguous ranges.
	recvs := make([]*tensor.Matrix, nGPUs)
	for k := range recvs {
		recvs[k] = l.NewRecvBuffer()
	}
	for g := range bounds {
		srcViews := make([]*tensor.Matrix, nGPUs)
		dstViews := make([]*tensor.Matrix, nGPUs)
		for i := 0; i < nGPUs; i++ {
			srcViews[i] = l.GroupSendView(sends[i], g)
			dstViews[i] = l.GroupRecvView(recvs[i], g)
		}
		comm.ReduceScatterData(srcViews, dstViews)
	}

	// Post-communication reorder and row-completeness check.
	for k := 0; k < nGPUs; k++ {
		local := tensor.New(l.LocalRows(), p.Shape.N)
		l.Gather(local, recvs[k])
		for lr := 0; lr < l.LocalRows(); lr++ {
			gr := l.GlobalRowOf(k, lr)
			for cIdx := 0; cIdx < p.Shape.N; cIdx++ {
				if local.At(lr, cIdx) != sum.At(gr, cIdx) {
					t.Fatalf("GPU %d local row %d (global %d) wrong at col %d", k, lr, gr, cIdx)
				}
			}
		}
	}
}

// RS + AllGather + row exchange must equal AllReduce — the identity the
// paper's design depends on (Fig. 7e).
func TestSubtileRSPlusAGPlusExchangeEqualsAllReduce(t *testing.T) {
	const nGPUs = 4
	p := planFor(t, 16, 16, 3, 8, 8, 2) // TileM=8 divisible by 4
	sms := 2
	bounds := groupedBounds(t, p, sms, gemm.Partition{1, 1})
	l, err := NewSubtileLayout(p, bounds, nGPUs)
	if err != nil {
		t.Fatal(err)
	}

	sum := tensor.New(p.Shape.M, p.Shape.N)
	sends := make([]*tensor.Matrix, nGPUs)
	for i := 0; i < nGPUs; i++ {
		c, a, b := computeC(t, p, uint64(20+i))
		sum.AddInPlace(c)
		sends[i] = l.NewSendBuffer()
		for idx := 0; idx < p.Tiles; idx++ {
			l.ScatterTile(sends[i], p.ComputeTile(a, b, idx, nil), idx)
		}
	}

	recvs := make([]*tensor.Matrix, nGPUs)
	for k := range recvs {
		recvs[k] = l.NewRecvBuffer()
	}
	for g := range bounds {
		srcViews := make([]*tensor.Matrix, nGPUs)
		dstViews := make([]*tensor.Matrix, nGPUs)
		for i := 0; i < nGPUs; i++ {
			srcViews[i] = l.GroupSendView(sends[i], g)
			dstViews[i] = l.GroupRecvView(recvs[i], g)
		}
		comm.ReduceScatterData(srcViews, dstViews)
	}

	locals := make([]*tensor.Matrix, nGPUs)
	for k := 0; k < nGPUs; k++ {
		locals[k] = tensor.New(l.LocalRows(), p.Shape.N)
		l.Gather(locals[k], recvs[k])
	}

	// AllGather the local blocks, then row-exchange back to natural order.
	gathered := make([]*tensor.Matrix, nGPUs)
	for k := range gathered {
		gathered[k] = tensor.New(p.Shape.M, p.Shape.N)
	}
	comm.AllGatherData(locals, gathered)
	for k := 0; k < nGPUs; k++ {
		natural := tensor.New(p.Shape.M, p.Shape.N)
		RowExchange(natural, gathered[k], p.Cfg.TileM, nGPUs)
		if !natural.Equal(sum) {
			t.Fatalf("GPU %d: RS+AG+exchange != AllReduce, max diff %v", k, natural.MaxDiff(sum))
		}
	}
}

func TestSubtileFusedRMSNormMatchesUnfused(t *testing.T) {
	const nGPUs = 2
	p := planFor(t, 8, 16, 3, 4, 8, 2)
	sms := 3
	bounds := groupedBounds(t, p, sms, gemm.Partition{1, 1})
	l, err := NewSubtileLayout(p, bounds, nGPUs)
	if err != nil {
		t.Fatal(err)
	}
	c, a, b := computeC(t, p, 33)
	send := l.NewSendBuffer()
	for idx := 0; idx < p.Tiles; idx++ {
		l.ScatterTile(send, p.ComputeTile(a, b, idx, nil), idx)
	}
	// Single-rank "reduce": recv = subtile-k rows of send, per group.
	recvs := []*tensor.Matrix{l.NewRecvBuffer(), l.NewRecvBuffer()}
	for g := range bounds {
		srcViews := []*tensor.Matrix{l.GroupSendView(send, g)}
		// Emulate 1-source RS across 2 destinations by manual split.
		sv := srcViews[0]
		half := sv.Rows / 2
		l.GroupRecvView(recvs[0], g).CopyRect(0, 0, sv, 0, 0, half, sv.Cols)
		l.GroupRecvView(recvs[1], g).CopyRect(0, 0, sv, half, 0, half, sv.Cols)
	}
	weight := make([]float32, p.Shape.N)
	for i := range weight {
		weight[i] = 1
	}
	for k := 0; k < nGPUs; k++ {
		plain := tensor.New(l.LocalRows(), p.Shape.N)
		l.Gather(plain, recvs[k])
		want := tensor.New(l.LocalRows(), p.Shape.N)
		tensor.RMSNorm(want, plain, weight, 1e-6)
		got := tensor.New(l.LocalRows(), p.Shape.N)
		l.GatherFusedRMSNorm(got, recvs[k], weight, 1e-6)
		if !got.AllClose(want, 1e-6, 1e-6) {
			t.Fatalf("GPU %d fused RMSNorm differs", k)
		}
		// And rows must be complete: each local row equals a C row.
		for lr := 0; lr < l.LocalRows(); lr++ {
			gr := l.GlobalRowOf(k, lr)
			for cc := 0; cc < p.Shape.N; cc++ {
				if plain.At(lr, cc) != c.At(gr, cc) {
					t.Fatalf("incomplete row: GPU %d local %d global %d col %d", k, lr, gr, cc)
				}
			}
		}
	}
}

func TestRowExchangeIsPermutation(t *testing.T) {
	src := tensor.New(16, 2)
	src.FillSeq(0)
	dst := tensor.New(16, 2)
	RowExchange(dst, src, 8, 4)
	// Every source row must appear exactly once.
	seen := map[float32]bool{}
	for r := 0; r < 16; r++ {
		v := dst.At(r, 0)
		if seen[v] {
			t.Fatalf("row value %v duplicated", v)
		}
		seen[v] = true
	}
	if len(seen) != 16 {
		t.Fatalf("only %d distinct rows", len(seen))
	}
}

func TestSubtileLayoutValidation(t *testing.T) {
	p := planFor(t, 8, 8, 2, 4, 4, 1)
	bounds := gemm.SingleGroup(p.Waves(4)).Bounds(p, 4)
	if _, err := NewSubtileLayout(p, bounds, 3); err == nil {
		t.Error("TileM=4 with 3 GPUs should fail divisibility")
	}
	if _, err := NewSubtileLayout(p, nil, 2); err == nil {
		t.Error("empty bounds accepted")
	}
	if _, err := NewSubtileLayout(p, bounds, 0); err == nil {
		t.Error("zero GPUs accepted")
	}
	// Gapped bounds rejected.
	bad := []gemm.GroupBound{{PosLo: 1, PosHi: p.Tiles}}
	if _, err := NewSubtileLayout(p, bad, 2); err == nil {
		t.Error("gapped bounds accepted")
	}
}

func TestRowExchangePanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"shape": func() { RowExchange(tensor.New(4, 2), tensor.New(8, 2), 4, 2) },
		"div":   func() { RowExchange(tensor.New(8, 2), tensor.New(8, 2), 3, 2) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			fn()
		}()
	}
}
