package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"runtime"
	"testing"
	"time"

	"repro/internal/gemm"
	"repro/internal/hw"
)

// waitUntil polls cond until it holds or the deadline passes.
func waitUntil(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		runtime.Gosched()
		time.Sleep(time.Millisecond)
	}
}

// A cancelled Query waiter abandons only itself: the in-flight tune
// completes on its detached context, fills the shared cache, and the next
// query for the shape hits it — cancellation neither poisons nor evicts the
// in-flight entry, and exactly one tune ever runs.
func TestCancelledQueryWaiterKeepsFlightAndCache(t *testing.T) {
	s := testService(t)
	shape := gemm.Shape{M: 4096, N: 8192, K: 4096}
	q := Query{Shape: shape, Prim: hw.AllReduce}

	entered := make(chan struct{})
	release := make(chan struct{})
	s.tuneHook = func() error {
		close(entered)
		<-release
		return nil
	}

	initiatorDone := make(chan error, 1)
	go func() {
		_, err := s.Query(context.Background(), q)
		initiatorDone <- err
	}()
	<-entered

	// A second caller joins the flight with an already-cancelled context:
	// it must return its own ctx.Err() promptly, not block on the tune.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	_, err := s.Query(ctx, q)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled waiter error = %v, want context.Canceled", err)
	}
	if waited := time.Since(start); waited > 5*time.Second {
		t.Fatalf("cancelled waiter blocked %v on an in-flight tune", waited)
	}

	close(release)
	if err := <-initiatorDone; err != nil {
		t.Fatalf("initiator failed after a waiter cancelled: %v", err)
	}

	// The flight's result must have landed in the cache untainted.
	s.tuneHook = nil
	ans, err := s.Query(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if ans.Source != SourceCache {
		t.Fatalf("post-cancel query source = %q, want %q (flight result evicted?)", ans.Source, SourceCache)
	}
	st := s.Stats()
	if st.Tunes != 1 {
		t.Fatalf("tunes = %d, want 1 (cancellation must not re-run the search)", st.Tunes)
	}
	if st.CancelledQueries != 1 {
		t.Fatalf("cancelled_queries = %d, want 1", st.CancelledQueries)
	}
	if st.DeadlineExceeded != 0 {
		t.Fatalf("deadline_exceeded = %d, want 0 (cancel, not deadline)", st.DeadlineExceeded)
	}
}

// A query that exceeds its deadline counts in both cancelled_queries and
// deadline_exceeded.
func TestDeadlineExceededQueryCounts(t *testing.T) {
	s := testService(t)
	release := make(chan struct{})
	defer close(release)
	s.tuneHook = func() error { <-release; return nil }

	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	_, err := s.Query(ctx, Query{Shape: gemm.Shape{M: 4096, N: 8192, K: 4096}, Prim: hw.AllReduce})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	st := s.Stats()
	if st.CancelledQueries != 1 || st.DeadlineExceeded != 1 {
		t.Fatalf("cancelled/deadline = %d/%d, want 1/1", st.CancelledQueries, st.DeadlineExceeded)
	}
}

// A client that disconnects mid-/sweep v2 stream aborts the chunk's
// remaining item execution on the replica: the request context cancels,
// the chunk stops between items, and the unexecuted remainder lands in
// cancelled_sweep_items — within a bounded wall clock, not after the
// blocked tune finishes.
func TestClientDisconnectAbortsSweepChunk(t *testing.T) {
	s := testService(t)
	srv := httptest.NewServer(Handler(s))
	defer srv.Close()

	entered := make(chan struct{})
	release := make(chan struct{})
	s.tuneHook = func() error {
		close(entered)
		<-release
		return nil
	}

	// Tuned sweep: item 0's tune blocks in the hook while the client
	// disconnects, so items 1..n-1 must never execute.
	items := []SweepItem{
		{M: 2048, N: 8192, K: 4096, Prim: "AR"},
		{M: 4096, N: 8192, K: 8192, Prim: "AR"},
		{M: 8192, N: 8192, K: 4096, Prim: "AR"},
		{M: 4096, N: 8192, K: 2048, Prim: "AR"},
	}
	body, err := json.Marshal(SweepRequest{SweepSpec: SweepSpec{Tune: true}, Items: items})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, srv.URL+"/sweep", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("Accept", ContentTypeNDJSON)

	reqDone := make(chan error, 1)
	go func() {
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			resp.Body.Close()
		}
		reqDone <- err
	}()
	<-entered

	// Client disconnects while item 0 is still tuning.
	start := time.Now()
	cancel()
	if err := <-reqDone; err == nil {
		t.Fatal("request succeeded after client disconnect")
	}

	// The replica observes the disconnect and abandons the chunk: every
	// item counts as cancelled (none was emitted), within a bounded wall
	// clock — crucially without waiting for the blocked tune to finish.
	waitUntil(t, "cancelled_sweep_items", func() bool {
		return s.Stats().CancelledSweepItems >= uint64(len(items))
	})
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("chunk abort took %v; must be bounded by the disconnect, not the tune", elapsed)
	}
	close(release)

	st := s.Stats()
	if st.CancelledSweepItems != uint64(len(items)) {
		t.Fatalf("cancelled_sweep_items = %d, want %d", st.CancelledSweepItems, len(items))
	}
	if st.SweptItemsDES != 0 || st.SweptItemsAnalytic != 0 {
		t.Fatalf("swept %d des + %d analytic items after a disconnect, want 0",
			st.SweptItemsDES, st.SweptItemsAnalytic)
	}

	// The replica stays answerable: a fresh full sweep over the same items
	// succeeds end to end.
	s.tuneHook = nil
	results, err := s.CollectSweep(context.Background(), SweepRequest{Items: items})
	if err != nil {
		t.Fatalf("follow-up sweep after disconnect: %v", err)
	}
	if len(results) != len(items) {
		t.Fatalf("follow-up sweep returned %d results, want %d", len(results), len(items))
	}
}

// A sweep whose context ends between items keeps the already-emitted prefix
// and reports the remainder as cancelled — the salvaged-subset contract.
func TestSweepChunkCancelMidChunkSalvagesPrefix(t *testing.T) {
	s := testService(t)
	items := []SweepItem{
		{M: 2048, N: 8192, K: 4096, Prim: "AR"},
		{M: 4096, N: 8192, K: 8192, Prim: "AR"},
		{M: 8192, N: 8192, K: 4096, Prim: "AR"},
	}
	ctx, cancel := context.WithCancel(context.Background())
	var got []SweepResult
	err := s.SweepChunk(ctx, SweepRequest{Items: items}, func(i int, res SweepResult) error {
		got = append(got, res)
		if len(got) == 1 {
			cancel() // the caller walks away after the first result
		}
		return nil
	})
	if err == nil {
		t.Fatal("cancelled sweep returned nil error")
	}
	var ce *ChunkError
	if !errors.As(err, &ce) || !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want a ChunkError wrapping context.Canceled", err)
	}
	if ce.Index != 1 {
		t.Fatalf("failing index = %d, want 1 (first unexecuted item)", ce.Index)
	}
	if len(got) != 1 {
		t.Fatalf("%d results emitted, want the salvaged prefix of 1", len(got))
	}
	if st := s.Stats(); st.CancelledSweepItems != 2 {
		t.Fatalf("cancelled_sweep_items = %d, want 2", st.CancelledSweepItems)
	}
}
