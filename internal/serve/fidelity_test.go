package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/core"
	"repro/internal/hw"
)

// Per-item fidelity must survive the HTTP round-trip: a chunk can carry both
// tiers at once (as a mixed-fidelity coordinator dispatches them), every
// result echoes the backend that produced it, and the /stats counters split
// the swept items by fidelity.
func TestHandlerSweepPerItemFidelity(t *testing.T) {
	s := testService(t)
	srv := httptest.NewServer(Handler(s))
	defer srv.Close()

	items := []SweepItem{
		{M: 2048, N: 8192, K: 4096, Prim: "AR", Fidelity: FidelityAnalytic},
		{M: 4096, N: 8192, K: 8192, Prim: "AR", Fidelity: FidelityDES},
		{M: 4096, N: 8192, K: 4096, Prim: "AR"}, // "" inherits the request default (DES)
	}
	resp := postSweep(t, srv.URL, SweepRequest{Items: items})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var sr SweepResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		t.Fatal(err)
	}
	wantFid := []string{FidelityAnalytic, FidelityDES, FidelityDES}
	for i, res := range sr.Results {
		if res.Fidelity != wantFid[i] || string(res.Result.Fidelity) != wantFid[i] {
			t.Fatalf("result %d labeled (%q, %q), want %q", i, res.Fidelity, res.Result.Fidelity, wantFid[i])
		}
		if res.Result.Latency <= 0 {
			t.Fatalf("result %d has no latency", i)
		}
	}
	st := s.Stats()
	if st.SweptItemsAnalytic != 1 || st.SweptItemsDES != 2 {
		t.Fatalf("swept split = (%d analytic, %d des), want (1, 2)", st.SweptItemsAnalytic, st.SweptItemsDES)
	}

	// A request-level default applies to unlabeled items only.
	resp2 := postSweep(t, srv.URL, SweepRequest{SweepSpec: SweepSpec{Fidelity: FidelityAnalytic}, Items: []SweepItem{
		{M: 2048, N: 8192, K: 4096, Prim: "AR"},
		{M: 4096, N: 8192, K: 8192, Prim: "AR", Fidelity: FidelityDES},
	}})
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("request-default status = %d", resp2.StatusCode)
	}
	var sr2 SweepResponse
	if err := json.NewDecoder(resp2.Body).Decode(&sr2); err != nil {
		t.Fatal(err)
	}
	if sr2.Results[0].Fidelity != FidelityAnalytic || sr2.Results[1].Fidelity != FidelityDES {
		t.Fatalf("request-default labels = (%q, %q), want (analytic, des)", sr2.Results[0].Fidelity, sr2.Results[1].Fidelity)
	}
}

// A request-level mixed sweep runs the whole posted grid analytically, ranks
// per cell, confirms the top-k at DES, and splices — one replica answering
// the same wire request a router-proxied fleet would, byte-identically to
// the in-process SweepChunk.
func TestHandlerSweepMixed(t *testing.T) {
	s := testService(t)
	srv := httptest.NewServer(Handler(s))
	defer srv.Close()

	items := []SweepItem{
		{M: 2048, N: 8192, K: 4096, Prim: "AR"},
		{M: 4096, N: 8192, K: 4096, Prim: "AR"},
		{M: 4096, N: 8192, K: 8192, Prim: "AR"},
		{M: 8192, N: 8192, K: 4096, Prim: "AR"},
	}
	resp := postSweep(t, srv.URL, SweepRequest{SweepSpec: SweepSpec{Fidelity: FidelityMixed}, Items: items})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var sr SweepResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		t.Fatal(err)
	}
	if len(sr.Results) != len(items) {
		t.Fatalf("%d results for %d items", len(sr.Results), len(items))
	}
	nDES, nAnalytic := 0, 0
	for i, res := range sr.Results {
		switch res.Fidelity {
		case FidelityDES:
			nDES++
		case FidelityAnalytic:
			nAnalytic++
		default:
			t.Fatalf("result %d labeled %q", i, res.Fidelity)
		}
	}
	if nDES == 0 || nAnalytic == 0 {
		t.Fatalf("mixed sweep produced %d des and %d analytic results; both tiers must appear", nDES, nAnalytic)
	}
	ref, err := s.CollectSweep(context.Background(), SweepRequest{SweepSpec: SweepSpec{Fidelity: FidelityMixed}, Items: items})
	if err != nil {
		t.Fatal(err)
	}
	got, err := json.Marshal(sr.Results)
	if err != nil {
		t.Fatal(err)
	}
	want, err := json.Marshal(ref)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("mixed sweep diverges from the in-process SweepChunk after the HTTP round-trip")
	}
}

// Fidelity misuse is a deterministic rejection (4xx): unknown labels, the
// "mixed" policy on an individual item, and pre-labeled items under a mixed
// request would all fail identically on every replica, so none may read as
// retryable.
func TestHandlerSweepFidelityRejections(t *testing.T) {
	s := testService(t)
	srv := httptest.NewServer(Handler(s))
	defer srv.Close()

	for name, req := range map[string]SweepRequest{
		"unknown request fidelity": {SweepSpec: SweepSpec{Fidelity: "nope"}, Items: []SweepItem{{M: 2048, N: 8192, K: 4096, Prim: "AR"}}},
		"unknown item fidelity":    {Items: []SweepItem{{M: 2048, N: 8192, K: 4096, Prim: "AR", Fidelity: "nope"}}},
		"mixed as item fidelity":   {Items: []SweepItem{{M: 2048, N: 8192, K: 4096, Prim: "AR", Fidelity: FidelityMixed}}},
		"pre-labeled under mixed":  {SweepSpec: SweepSpec{Fidelity: FidelityMixed}, Items: []SweepItem{{M: 2048, N: 8192, K: 4096, Prim: "AR", Fidelity: FidelityDES}}},
	} {
		resp := postSweep(t, srv.URL, req)
		if resp.StatusCode < 400 || resp.StatusCode >= 500 {
			t.Errorf("%s: status = %d, want 4xx", name, resp.StatusCode)
		}
		resp.Body.Close()
		chunk, err := s.CollectSweep(context.Background(), req)
		if err == nil {
			t.Errorf("%s: in-process SweepChunk accepted", name)
		} else if !IsBadQuery(err) {
			t.Errorf("%s: error %v is not a bad-query rejection", name, err)
		}
		if len(chunk) != 0 {
			t.Errorf("%s: rejection returned %d results", name, len(chunk))
		}
	}
}

// Analytic execution refuses variant knobs it cannot model rather than
// silently mispredicting them — here, through the serve layer's own engine.
func TestAnalyticRejectsUnmodeledVariants(t *testing.T) {
	s := testService(t)
	if _, err := s.eng.Exec(context.Background(), core.Options{
		Plat: s.cfg.Plat, NGPUs: s.cfg.NGPUs,
		Shape: warmShapes[0], Prim: hw.AllReduce,
		Fidelity: core.FidelityAnalytic, Trace: true,
	}); err == nil {
		t.Fatal("analytic execution accepted a trace request")
	}
}
