package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/gemm"
)

// QueryResponse is the JSON shape of a /query reply.
type QueryResponse struct {
	Shape       string `json:"shape"`
	Primitive   string `json:"primitive"`
	Partition   []int  `json:"partition"`
	Waves       int    `json:"waves"`
	PredictedNs int64  `json:"predicted_ns"`
	Source      string `json:"source"`
}

// ContentTypeNDJSON is the media type of a v2 /sweep frame stream:
// newline-delimited JSON, one SweepFrame per line. A client requests it via
// the Accept header (or the request body's stream field); servers that
// predate v2 ignore both and reply with the buffered v1 SweepResponse, so
// negotiation degrades by content type, never by error.
const ContentTypeNDJSON = "application/x-ndjson"

// SweepFrame kinds. A v2 stream is any number of result frames followed by
// exactly one terminal frame — done on success, error on failure.
const (
	FrameResult = "result"
	FrameDone   = "done"
	FrameError  = "error"
)

// SweepFrame is one NDJSON line of a v2 /sweep stream.
type SweepFrame struct {
	// Frame discriminates the line: FrameResult, FrameDone, or FrameError.
	Frame string `json:"frame"`
	// Index is a result frame's item index into the posted grid. (With
	// omitempty an index of 0 is elided; decoders zero-default it back.)
	Index int `json:"index,omitempty"`
	// Fidelity mirrors Result.Fidelity on result frames, so stream
	// consumers can split tiers without opening the result object.
	Fidelity string       `json:"fidelity,omitempty"`
	Result   *SweepResult `json:"result,omitempty"`
	// Count is a done frame's total number of result frames streamed.
	Count int `json:"count,omitempty"`
	// Salvaged is an error frame's count of result frames streamed before
	// the failure — results the consumer may keep (partial-chunk salvage);
	// only the unanswered remainder needs re-dispatching.
	Salvaged int `json:"salvaged,omitempty"`
	// Error is an error frame's structured failure, the same envelope body
	// non-streaming endpoints wrap under {"error": ...}.
	Error *ErrorBody `json:"error,omitempty"`
}

// ErrorBody is the one error schema every endpoint speaks — /query, /sweep,
// /stats, /healthz, the router's proxied forms, and v2 error frames —
// replacing the ad-hoc per-endpoint shapes (bare {"error": string},
// {"error", "index"}, {"error", "index", "results"}).
type ErrorBody struct {
	Message string `json:"message"`
	// Retryable mirrors the status-class split: false for deterministic
	// request rejections (4xx — every replica rejects identically, so
	// routers must not fail over), true for replica-specific failures
	// (5xx — another replica may be healthy). Stream consumers rely on it:
	// an error frame arrives after the 200 status line, so the flag is the
	// only classification left on the wire.
	Retryable bool `json:"retryable"`
	// Index is the failing item's index for /sweep failures (into the
	// posted grid); nil when the failure is not attributable to an item.
	Index *int `json:"index,omitempty"`
	// Results is the completed prefix of a buffered (v1) /sweep failure —
	// partial-chunk salvage riding along with the error. A v2 stream has
	// already delivered the salvage as result frames and reports only the
	// Salvaged count.
	Results []SweepResult `json:"results,omitempty"`
}

// ErrorEnvelope is the JSON error reply of every non-streaming endpoint:
// {"error": {"message", "retryable", ...}}.
type ErrorEnvelope struct {
	Error ErrorBody `json:"error"`
}

// WriteError writes the unified error envelope with the given status,
// deriving Retryable from the status class. Exported so the shard router's
// endpoints reply byte-identically to a replica's.
func WriteError(w http.ResponseWriter, status int, err error) {
	WriteErrorBody(w, status, ErrorBody{Message: err.Error(), Retryable: status >= 500})
}

// WriteErrorBody writes a fully caller-built error envelope (for /sweep
// failures carrying an item index or a salvage prefix).
func WriteErrorBody(w http.ResponseWriter, status int, body ErrorBody) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(ErrorEnvelope{Error: body})
}

// StreamRequested reports whether a /sweep request negotiated the v2 NDJSON
// stream: an Accept header naming ContentTypeNDJSON, or the decoded
// request's Stream field. Exported so the router's proxy negotiates
// identically to a replica.
func StreamRequested(r *http.Request, req SweepRequest) bool {
	return req.Stream || strings.Contains(r.Header.Get("Accept"), ContentTypeNDJSON)
}

// Handler mounts the service on an HTTP mux:
//
//	GET  /query?m=4096&n=8192&k=8192&prim=AR[&imbalance=1.2]
//	POST /sweep   {"tune": bool, "items": [{"m","n","k","prim","imbalance"}, ...]}
//	GET  /stats
//	GET  /healthz
//
// All endpoints reply with JSON; errors reply with the unified envelope
// {"error": {"message", "retryable", ...}}. The status classifies the
// failure: 4xx for deterministic request rejections (every replica would
// reject the same request identically, so routers must not fail over), 5xx
// for internal failures (replica-specific — a router's failover ring
// retries them elsewhere).
//
// POST /sweep speaks two protocol versions. v1 (the default) buffers the
// whole chunk and replies a JSON SweepResponse; failures carry the failing
// item's chunk-local index plus the completed prefix under the envelope's
// "index"/"results", so a coordinator re-dispatches only the unanswered
// suffix. v2 — negotiated via "Accept: application/x-ndjson" or the
// request's "stream" field — replies an NDJSON stream of SweepFrame lines:
// one result frame per item as it completes, then a terminal done frame (or
// an error frame carrying the envelope body plus the salvaged count), so
// neither side ever materializes a whole grid.
//
// /healthz is the liveness probe behind dead-replica re-admission: a 200
// means the process is up and serving. The handler is safe for concurrent
// use, like the service itself.
//
// Every request executes under a context derived from r.Context(), so a
// client that hangs up mid-/sweep stops the remaining chunk execution on
// the replica. Handler applies no additional deadline; HandlerWithTimeout
// adds one.
func Handler(s *Service) http.Handler { return HandlerWithTimeout(s, 0) }

// HandlerWithTimeout is Handler with a per-request execution deadline
// (cmd/serve's -request-timeout): each request's context is r.Context()
// plus, when timeout > 0, a deadline of that duration. A request that
// exceeds it is abandoned between items/events and answered with the
// retryable error envelope (or a v2 error frame carrying the salvage
// count); the warm /query fast path never consults the context and stays
// zero-alloc.
func HandlerWithTimeout(s *Service, timeout time.Duration) http.Handler {
	// reqCtx derives the request-scoped context. The warm fast path runs
	// before any call to it, so timed-out-but-warm queries still answer —
	// a cache hit is cheaper than an error reply.
	reqCtx := func(r *http.Request) (context.Context, context.CancelFunc) {
		if timeout <= 0 {
			return r.Context(), func() {}
		}
		return context.WithTimeout(r.Context(), timeout)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/query", func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		q, err := ParseQuery(r)
		if err != nil {
			WriteError(w, http.StatusBadRequest, err)
			return
		}
		// Warm fast path: a query whose exact key was tuned before is
		// answered from the pre-encoded reply bytes — no predictor, no
		// partition clone, no JSON encoder, and no context derivation. The
		// bytes are byte-identical to what the full path below would write.
		// The latency observation is an atomic bucket add (plus per-tenant
		// adds for an already-seen tenant), so recording here keeps the
		// path's zero-allocation contract — warm hits used to be invisible
		// to /stats latency, which skewed every percentile upward.
		if buf, ok := s.QueryEncoded(q); ok {
			w.Header().Set("Content-Type", "application/json")
			_, _ = w.Write(buf)
			s.ObserveQuery(q.Tenant, time.Since(start), true)
			return
		}
		ctx, cancel := reqCtx(r)
		defer cancel()
		ans, err := s.Query(ctx, q)
		if err != nil {
			WriteError(w, errStatus(err), err)
			return
		}
		writeJSON(w, QueryResponse{
			Shape:       q.Shape.String(),
			Primitive:   q.Prim.String(),
			Partition:   ans.Partition,
			Waves:       ans.Waves,
			PredictedNs: int64(ans.Predicted),
			Source:      ans.Source,
		})
		s.ObserveQuery(q.Tenant, time.Since(start), ans.Source == SourceCache)
	})
	mux.HandleFunc("/sweep", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			w.Header().Set("Allow", http.MethodPost)
			WriteError(w, http.StatusMethodNotAllowed, fmt.Errorf("serve: /sweep takes POST, got %s", r.Method))
			return
		}
		var req SweepRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			WriteError(w, http.StatusBadRequest, fmt.Errorf("serve: decoding sweep request: %w", err))
			return
		}
		if len(req.Items) == 0 {
			WriteError(w, http.StatusBadRequest, fmt.Errorf("serve: sweep request has no items"))
			return
		}
		ctx, cancel := reqCtx(r)
		defer cancel()
		if StreamRequested(r, req) {
			streamSweep(ctx, w, s, req)
			return
		}
		results, err := s.CollectSweep(ctx, req)
		if err != nil {
			// Serialize the cause and the chunk-local index separately;
			// the coordinator's client rebuilds the ChunkError from them.
			// The completed prefix (partial-chunk completion) rides along
			// so the coordinator can keep it and re-dispatch only the
			// unanswered suffix.
			body := ErrorBody{Results: results}
			var ce *ChunkError
			if errors.As(err, &ce) {
				idx := ce.Index
				body.Index, err = &idx, ce.Err
			}
			status := errStatus(err)
			body.Message = err.Error()
			body.Retryable = status >= 500
			WriteErrorBody(w, status, body)
			return
		}
		writeJSON(w, SweepResponse{Results: results})
	})
	mux.HandleFunc("/stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, s.Stats())
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		// Liveness, not readiness: a process that can answer at all is
		// re-admittable — its caches rewarm through traffic.
		writeJSON(w, map[string]string{"status": "ok", "shard": s.cfg.Shard})
	})
	return mux
}

// streamSweep answers a v2-negotiated /sweep: result frames as items
// complete, then the terminal frame. The status line is committed before
// execution starts, so failures surface as error frames, not statuses —
// the frame's Retryable bit carries the classification a buffered reply
// would encode in the status class.
func streamSweep(ctx context.Context, w http.ResponseWriter, s *Service, req SweepRequest) {
	w.Header().Set("Content-Type", ContentTypeNDJSON)
	w.WriteHeader(http.StatusOK)
	enc := json.NewEncoder(w)
	flusher, _ := w.(http.Flusher)
	count := 0
	err := s.SweepChunk(ctx, req, func(i int, res SweepResult) error {
		if err := enc.Encode(SweepFrame{Frame: FrameResult, Index: i, Fidelity: res.Fidelity, Result: &res}); err != nil {
			return err
		}
		if flusher != nil {
			// Per-frame flush is the bounded-memory contract: a frame
			// buffered server-side is a frame the coordinator cannot
			// release yet.
			flusher.Flush()
		}
		count++
		return nil
	})
	if err != nil {
		// A sink (write) failure means the client is gone — encoding the
		// terminal frame then fails identically and harmlessly.
		body := ErrorBody{Retryable: errStatus(err) >= 500}
		var ce *ChunkError
		if errors.As(err, &ce) {
			idx := ce.Index
			body.Index, err = &idx, ce.Err
		}
		body.Message = err.Error()
		_ = enc.Encode(SweepFrame{Frame: FrameError, Salvaged: count, Error: &body})
		return
	}
	_ = enc.Encode(SweepFrame{Frame: FrameDone, Count: count})
}

// errStatus maps a Service error to its HTTP status: deterministic request
// rejections are 422 (non-retryable — failing over would repeat the
// rejection), internal failures 500 (retryable — another replica may be
// healthy). Before this split every Service error reported 422, so the
// shard router classified transient engine/tuner failures as non-retryable
// QueryErrors and never failed over.
func errStatus(err error) int {
	if IsBadQuery(err) {
		return http.StatusUnprocessableEntity
	}
	return http.StatusInternalServerError
}

// ParseQuery decodes a /query request's parameters. It is exported so the
// shard router's front-end parses (and rejects) queries exactly like a
// replica would, instead of forwarding garbage.
func ParseQuery(r *http.Request) (Query, error) {
	vals := r.URL.Query()
	dim := func(name string) (int, error) {
		v, err := strconv.Atoi(vals.Get(name))
		if err != nil || v <= 0 {
			return 0, fmt.Errorf("serve: parameter %q must be a positive integer, got %q", name, vals.Get(name))
		}
		return v, nil
	}
	m, err := dim("m")
	if err != nil {
		return Query{}, err
	}
	n, err := dim("n")
	if err != nil {
		return Query{}, err
	}
	k, err := dim("k")
	if err != nil {
		return Query{}, err
	}
	primName := vals.Get("prim")
	if primName == "" {
		primName = "AR"
	}
	prim, err := ParsePrimitive(primName)
	if err != nil {
		return Query{}, err
	}
	var imbalance float64
	if raw := vals.Get("imbalance"); raw != "" {
		imbalance, err = strconv.ParseFloat(raw, 64)
		// !(x >= 1) also rejects NaN, which would otherwise poison the
		// shape cache (a NaN map key never matches itself).
		if err != nil || !(imbalance >= 1) || math.IsInf(imbalance, 1) {
			return Query{}, fmt.Errorf("serve: parameter \"imbalance\" must be a finite number >= 1, got %q", raw)
		}
	}
	tenant := vals.Get("tenant")
	if err := ValidateTenant(tenant); err != nil {
		return Query{}, err
	}
	return Query{Shape: gemm.Shape{M: m, N: n, K: k}, Prim: prim, Imbalance: imbalance, Tenant: tenant}, nil
}

// bufPool recycles the per-request encode buffers of writeJSON and
// encodeAnswer: request-scoped state the warm path must not allocate fresh
// per reply.
var bufPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

// encodeReply renders v exactly like writeJSON puts it on the wire (two-space
// indent, trailing newline) into a pooled buffer. The caller must hand the
// buffer back via bufPool after copying or writing its bytes.
func encodeReply(v any) (*bytes.Buffer, error) {
	buf := bufPool.Get().(*bytes.Buffer)
	buf.Reset()
	enc := json.NewEncoder(buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		bufPool.Put(buf)
		return nil, err
	}
	return buf, nil
}

// encodeAnswer pre-renders the /query reply for a tuned key. Source is
// forced to SourceCache: the bytes answer future queries, which by
// definition hit the cache.
func encodeAnswer(q Query, ans Answer) ([]byte, error) {
	buf, err := encodeReply(QueryResponse{
		Shape:       q.Shape.String(),
		Primitive:   q.Prim.String(),
		Partition:   ans.Partition,
		Waves:       ans.Waves,
		PredictedNs: int64(ans.Predicted),
		Source:      SourceCache,
	})
	if err != nil {
		return nil, err
	}
	out := make([]byte, buf.Len())
	copy(out, buf.Bytes())
	bufPool.Put(buf)
	return out, nil
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	// Encoding these fixed response types cannot fail; a broken connection
	// surfaces in the server's error log, not here.
	buf, err := encodeReply(v)
	if err != nil {
		return
	}
	_, _ = w.Write(buf.Bytes())
	bufPool.Put(buf)
}
