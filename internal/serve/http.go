package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"strconv"

	"repro/internal/gemm"
)

// QueryResponse is the JSON shape of a /query reply.
type QueryResponse struct {
	Shape       string `json:"shape"`
	Primitive   string `json:"primitive"`
	Partition   []int  `json:"partition"`
	Waves       int    `json:"waves"`
	PredictedNs int64  `json:"predicted_ns"`
	Source      string `json:"source"`
}

// Handler mounts the service on an HTTP mux:
//
//	GET  /query?m=4096&n=8192&k=8192&prim=AR[&imbalance=1.2]
//	POST /sweep   {"tune": bool, "items": [{"m","n","k","prim","imbalance"}, ...]}
//	GET  /stats
//	GET  /healthz
//
// All endpoints reply with JSON; errors reply {"error": ...}. The status
// classifies the failure: 4xx for deterministic request rejections (every
// replica would reject the same request identically, so routers must not
// fail over), 5xx for internal failures (replica-specific — a router's
// failover ring retries them elsewhere). /sweep errors additionally carry
// the chunk-local "index" of the failing item, so a coordinator can
// attribute the failure to a global grid index, plus the completed prefix
// under "results" so the coordinator re-dispatches only the unanswered
// suffix. /healthz is the liveness probe behind dead-replica re-admission:
// a 200 means the process is up and serving. The handler is safe for
// concurrent use, like the service itself.
func Handler(s *Service) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/query", func(w http.ResponseWriter, r *http.Request) {
		q, err := ParseQuery(r)
		if err != nil {
			httpError(w, http.StatusBadRequest, err)
			return
		}
		ans, err := s.Query(q)
		if err != nil {
			httpError(w, errStatus(err), err)
			return
		}
		writeJSON(w, QueryResponse{
			Shape:       q.Shape.String(),
			Primitive:   q.Prim.String(),
			Partition:   ans.Partition,
			Waves:       ans.Waves,
			PredictedNs: int64(ans.Predicted),
			Source:      ans.Source,
		})
	})
	mux.HandleFunc("/sweep", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			w.Header().Set("Allow", http.MethodPost)
			httpError(w, http.StatusMethodNotAllowed, fmt.Errorf("serve: /sweep takes POST, got %s", r.Method))
			return
		}
		var req SweepRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			httpError(w, http.StatusBadRequest, fmt.Errorf("serve: decoding sweep request: %w", err))
			return
		}
		if len(req.Items) == 0 {
			httpError(w, http.StatusBadRequest, fmt.Errorf("serve: sweep request has no items"))
			return
		}
		results, err := s.SweepChunk(req)
		if err != nil {
			// Serialize the cause and the chunk-local index separately;
			// the coordinator's client rebuilds the ChunkError from them.
			// The completed prefix (partial-chunk completion) rides along
			// so the coordinator can keep it and re-dispatch only the
			// unanswered suffix.
			idx := -1
			var ce *ChunkError
			if errors.As(err, &ce) {
				idx, err = ce.Index, ce.Err
			}
			body := map[string]any{"error": err.Error(), "index": idx}
			if len(results) > 0 {
				body["results"] = results
			}
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(errStatus(err))
			_ = json.NewEncoder(w).Encode(body)
			return
		}
		writeJSON(w, SweepResponse{Results: results})
	})
	mux.HandleFunc("/stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, s.Stats())
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		// Liveness, not readiness: a process that can answer at all is
		// re-admittable — its caches rewarm through traffic.
		writeJSON(w, map[string]string{"status": "ok", "shard": s.cfg.Shard})
	})
	return mux
}

// errStatus maps a Service error to its HTTP status: deterministic request
// rejections are 422 (non-retryable — failing over would repeat the
// rejection), internal failures 500 (retryable — another replica may be
// healthy). Before this split every Service error reported 422, so the
// shard router classified transient engine/tuner failures as non-retryable
// QueryErrors and never failed over.
func errStatus(err error) int {
	if IsBadQuery(err) {
		return http.StatusUnprocessableEntity
	}
	return http.StatusInternalServerError
}

// ParseQuery decodes a /query request's parameters. It is exported so the
// shard router's front-end parses (and rejects) queries exactly like a
// replica would, instead of forwarding garbage.
func ParseQuery(r *http.Request) (Query, error) {
	vals := r.URL.Query()
	dim := func(name string) (int, error) {
		v, err := strconv.Atoi(vals.Get(name))
		if err != nil || v <= 0 {
			return 0, fmt.Errorf("serve: parameter %q must be a positive integer, got %q", name, vals.Get(name))
		}
		return v, nil
	}
	m, err := dim("m")
	if err != nil {
		return Query{}, err
	}
	n, err := dim("n")
	if err != nil {
		return Query{}, err
	}
	k, err := dim("k")
	if err != nil {
		return Query{}, err
	}
	primName := vals.Get("prim")
	if primName == "" {
		primName = "AR"
	}
	prim, err := ParsePrimitive(primName)
	if err != nil {
		return Query{}, err
	}
	var imbalance float64
	if raw := vals.Get("imbalance"); raw != "" {
		imbalance, err = strconv.ParseFloat(raw, 64)
		// !(x >= 1) also rejects NaN, which would otherwise poison the
		// shape cache (a NaN map key never matches itself).
		if err != nil || !(imbalance >= 1) || math.IsInf(imbalance, 1) {
			return Query{}, fmt.Errorf("serve: parameter \"imbalance\" must be a finite number >= 1, got %q", raw)
		}
	}
	return Query{Shape: gemm.Shape{M: m, N: n, K: k}, Prim: prim, Imbalance: imbalance}, nil
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	// Encoding these fixed response types cannot fail; a broken connection
	// surfaces in the server's error log, not here.
	_ = enc.Encode(v)
}

func httpError(w http.ResponseWriter, status int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}
