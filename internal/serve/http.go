package serve

import (
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"strconv"

	"repro/internal/gemm"
)

// QueryResponse is the JSON shape of a /query reply.
type QueryResponse struct {
	Shape       string `json:"shape"`
	Primitive   string `json:"primitive"`
	Partition   []int  `json:"partition"`
	Waves       int    `json:"waves"`
	PredictedNs int64  `json:"predicted_ns"`
	Source      string `json:"source"`
}

// Handler mounts the service on an HTTP mux:
//
//	GET /query?m=4096&n=8192&k=8192&prim=AR[&imbalance=1.2]
//	GET /stats
//
// Both endpoints reply with JSON; errors reply {"error": ...} with a 4xx
// status. The handler is safe for concurrent use, like the service itself.
func Handler(s *Service) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/query", func(w http.ResponseWriter, r *http.Request) {
		q, err := ParseQuery(r)
		if err != nil {
			httpError(w, http.StatusBadRequest, err)
			return
		}
		ans, err := s.Query(q)
		if err != nil {
			httpError(w, http.StatusUnprocessableEntity, err)
			return
		}
		writeJSON(w, QueryResponse{
			Shape:       q.Shape.String(),
			Primitive:   q.Prim.String(),
			Partition:   ans.Partition,
			Waves:       ans.Waves,
			PredictedNs: int64(ans.Predicted),
			Source:      ans.Source,
		})
	})
	mux.HandleFunc("/stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, s.Stats())
	})
	return mux
}

// ParseQuery decodes a /query request's parameters. It is exported so the
// shard router's front-end parses (and rejects) queries exactly like a
// replica would, instead of forwarding garbage.
func ParseQuery(r *http.Request) (Query, error) {
	vals := r.URL.Query()
	dim := func(name string) (int, error) {
		v, err := strconv.Atoi(vals.Get(name))
		if err != nil || v <= 0 {
			return 0, fmt.Errorf("serve: parameter %q must be a positive integer, got %q", name, vals.Get(name))
		}
		return v, nil
	}
	m, err := dim("m")
	if err != nil {
		return Query{}, err
	}
	n, err := dim("n")
	if err != nil {
		return Query{}, err
	}
	k, err := dim("k")
	if err != nil {
		return Query{}, err
	}
	primName := vals.Get("prim")
	if primName == "" {
		primName = "AR"
	}
	prim, err := ParsePrimitive(primName)
	if err != nil {
		return Query{}, err
	}
	var imbalance float64
	if raw := vals.Get("imbalance"); raw != "" {
		imbalance, err = strconv.ParseFloat(raw, 64)
		// !(x >= 1) also rejects NaN, which would otherwise poison the
		// shape cache (a NaN map key never matches itself).
		if err != nil || !(imbalance >= 1) || math.IsInf(imbalance, 1) {
			return Query{}, fmt.Errorf("serve: parameter \"imbalance\" must be a finite number >= 1, got %q", raw)
		}
	}
	return Query{Shape: gemm.Shape{M: m, N: n, K: k}, Prim: prim, Imbalance: imbalance}, nil
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	// Encoding these fixed response types cannot fail; a broken connection
	// surfaces in the server's error log, not here.
	_ = enc.Encode(v)
}

func httpError(w http.ResponseWriter, status int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}
