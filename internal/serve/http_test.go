package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/gemm"
	"repro/internal/hw"
)

func TestHandlerQueryAndStats(t *testing.T) {
	s := testService(t)
	shape := gemm.Shape{M: 2048, N: 8192, K: 4096}
	if err := s.Warm(context.Background(), []hw.Primitive{hw.AllReduce}, []gemm.Shape{shape}, 0); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(Handler(s))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/query?m=2048&n=8192&k=4096&prim=AR")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var qr QueryResponse
	if err := json.NewDecoder(resp.Body).Decode(&qr); err != nil {
		t.Fatal(err)
	}
	if qr.Source != SourceCache {
		t.Fatalf("source = %q, want %q (shape was warmed)", qr.Source, SourceCache)
	}
	if qr.Shape != shape.String() || qr.Primitive != "AllReduce" {
		t.Fatalf("echoed query = %q %q", qr.Shape, qr.Primitive)
	}
	if len(qr.Partition) == 0 || qr.Waves <= 0 || qr.PredictedNs <= 0 {
		t.Fatalf("malformed response %+v", qr)
	}

	sresp, err := http.Get(srv.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	var st Stats
	if err := json.NewDecoder(sresp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Hits != 1 || st.ShapesCached != 1 {
		t.Fatalf("stats over HTTP = %+v, want 1 hit and 1 cached shape", st)
	}
}

func TestHandlerRejectsBadRequests(t *testing.T) {
	s := testService(t)
	srv := httptest.NewServer(Handler(s))
	defer srv.Close()

	for _, url := range []string{
		"/query",                                // missing dimensions
		"/query?m=-5&n=8192&k=4096",             // negative dimension
		"/query?m=2048&n=8192&k=4096&prim=NOPE", // unknown primitive
		"/query?m=2048&n=8192&k=4096&prim=A2A&imbalance=0.5", // imbalance < 1
		"/query?m=2048&n=8192&k=4096&prim=A2A&imbalance=NaN", // NaN would poison the cache
		"/query?m=2048&n=8192&k=4096&prim=A2A&imbalance=Inf", // so would +Inf
	} {
		resp, err := http.Get(srv.URL + url)
		if err != nil {
			t.Fatal(err)
		}
		var env ErrorEnvelope
		if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
			t.Fatalf("%s: non-JSON error body: %v", url, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status = %d, want 400", url, resp.StatusCode)
		}
		if env.Error.Message == "" {
			t.Errorf("%s: empty error message", url)
		}
		if env.Error.Retryable {
			t.Errorf("%s: deterministic rejection marked retryable", url)
		}
	}
}

// Error classification over HTTP: a deterministic rejection of the request
// replies 4xx (a router must not fail over — every replica rejects it
// identically), while an internal failure replies 500 (retryable on another
// replica). The old handler mapped every Service error to 422, so routers
// wrapped transient internal failures as non-retryable QueryErrors and a
// degraded replica blocked its whole shard slice.
func TestHandlerClassifiesInternalErrorsAs5xx(t *testing.T) {
	s := testService(t)
	injected := errors.New("injected tuner failure")
	s.tuneHook = func() error { return injected }
	srv := httptest.NewServer(Handler(s))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/query?m=2048&n=8192&k=4096&prim=AR")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("internal tuning failure status = %d, want 500", resp.StatusCode)
	}
	var env ErrorEnvelope
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(env.Error.Message, "injected tuner failure") {
		t.Fatalf("error body %q does not name the cause", env.Error.Message)
	}
	if !env.Error.Retryable {
		t.Fatal("internal failure not marked retryable in the envelope")
	}
}

// The classification seam itself: query-level rejections satisfy
// IsBadQuery, internal failures do not.
func TestQueryErrorClassification(t *testing.T) {
	s := testService(t)
	if _, err := s.Query(context.Background(), Query{Shape: gemm.Shape{M: 0, N: 1, K: 1}, Prim: hw.AllReduce}); !IsBadQuery(err) {
		t.Fatalf("invalid shape not classified as bad query: %v", err)
	}
	if _, err := s.Query(context.Background(), Query{Shape: gemm.Shape{M: 2048, N: 8192, K: 4096}, Prim: hw.AllGather}); !IsBadQuery(err) {
		t.Fatalf("unsupported primitive not classified as bad query: %v", err)
	}
	s.tuneHook = func() error { return errors.New("boom") }
	_, err := s.Query(context.Background(), Query{Shape: gemm.Shape{M: 2048, N: 8192, K: 4096}, Prim: hw.AllReduce})
	if err == nil || IsBadQuery(err) {
		t.Fatalf("internal failure classified as bad query: %v", err)
	}
}

func postSweep(t *testing.T, url string, req SweepRequest) *http.Response {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/sweep", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// POST /sweep executes a chunk in order and returns one result per item;
// the untuned results must be byte-identical to the same runs through
// engine.Exec (the property sweep re-dispatch relies on).
func TestHandlerSweep(t *testing.T) {
	s := testService(t)
	srv := httptest.NewServer(Handler(s))
	defer srv.Close()

	items := []SweepItem{
		{M: 2048, N: 8192, K: 4096, Prim: "AR"},
		{M: 4096, N: 8192, K: 8192, Prim: "AR"},
	}
	resp := postSweep(t, srv.URL, SweepRequest{Items: items})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var sr SweepResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		t.Fatal(err)
	}
	if len(sr.Results) != len(items) {
		t.Fatalf("%d results for %d items", len(sr.Results), len(items))
	}
	ref, err := s.CollectSweep(context.Background(), SweepRequest{Items: items})
	if err != nil {
		t.Fatal(err)
	}
	for i, res := range sr.Results {
		if res.Shape != items[i].Shape().String() {
			t.Fatalf("result %d answers %q, want %q (input order)", i, res.Shape, items[i].Shape())
		}
		if res.Result == nil || res.Result.Latency <= 0 || len(res.Partition) == 0 || res.Waves <= 0 {
			t.Fatalf("malformed result %+v", res)
		}
		if res.Source != "" || res.PredictedNs != 0 {
			t.Fatalf("untuned sweep reported tuner fields: %+v", res)
		}
		got, err := json.Marshal(res.Result)
		if err != nil {
			t.Fatal(err)
		}
		want, err := json.Marshal(ref[i].Result)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("result %d diverges from the in-process execution after the HTTP round-trip", i)
		}
	}
}

// A tuned sweep answers through the cache/singleflight path and executes
// the tuned partition: tuner fields must be populated and a repeated shape
// must hit the cache.
func TestHandlerSweepTuned(t *testing.T) {
	s := testService(t)
	srv := httptest.NewServer(Handler(s))
	defer srv.Close()

	items := []SweepItem{
		{M: 2048, N: 8192, K: 4096, Prim: "AR"},
		{M: 2048, N: 8192, K: 4096, Prim: "AR"}, // duplicate: second must be a cache hit
	}
	resp := postSweep(t, srv.URL, SweepRequest{SweepSpec: SweepSpec{Tune: true}, Items: items})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var sr SweepResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		t.Fatal(err)
	}
	if sr.Results[0].Source != SourceTuned || sr.Results[1].Source != SourceCache {
		t.Fatalf("sources = %q, %q; want tuned then cache", sr.Results[0].Source, sr.Results[1].Source)
	}
	for i, res := range sr.Results {
		if res.PredictedNs <= 0 || res.Result == nil || res.Result.Latency <= 0 {
			t.Fatalf("malformed tuned result %d: %+v", i, res)
		}
	}
}

// /sweep errors classify like /query errors and carry the chunk-local index
// of the failing item, so a coordinator can attribute the failure to a
// global grid index.
func TestHandlerSweepErrors(t *testing.T) {
	s := testService(t)
	srv := httptest.NewServer(Handler(s))
	defer srv.Close()

	// Wrong method.
	resp, err := http.Get(srv.URL + "/sweep")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /sweep status = %d, want 405", resp.StatusCode)
	}

	// Malformed body and empty chunk.
	for _, body := range []string{"{not json", `{"items": []}`} {
		resp, err := http.Post(srv.URL+"/sweep", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("body %q: status = %d, want 400", body, resp.StatusCode)
		}
	}

	// A bad item is a deterministic rejection: 422 plus its chunk index.
	resp = postSweep(t, srv.URL, SweepRequest{Items: []SweepItem{
		{M: 2048, N: 8192, K: 4096, Prim: "AR"},
		{M: 0, N: 8192, K: 4096, Prim: "AR"},
	}})
	var env ErrorEnvelope
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("bad item status = %d, want 422", resp.StatusCode)
	}
	if env.Error.Index == nil || *env.Error.Index != 1 {
		t.Fatalf("failing item index = %v, want 1", env.Error.Index)
	}
	if env.Error.Retryable {
		t.Fatal("deterministic item rejection marked retryable")
	}

	// An internal failure is 5xx, still attributed to its item.
	s.tuneHook = func() error { return errors.New("injected tuner failure") }
	resp = postSweep(t, srv.URL, SweepRequest{SweepSpec: SweepSpec{Tune: true}, Items: []SweepItem{
		{M: 1024, N: 8192, K: 4096, Prim: "AR"},
	}})
	env = ErrorEnvelope{}
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("internal failure status = %d, want 500", resp.StatusCode)
	}
	if env.Error.Index == nil || *env.Error.Index != 0 || !strings.Contains(env.Error.Message, "injected tuner failure") {
		t.Fatalf("internal failure body = %+v, want index 0 naming the cause", env.Error)
	}
	if !env.Error.Retryable {
		t.Fatal("internal item failure not marked retryable")
	}
}

// Partial-chunk completion end to end on the serve side: a chunk failing at
// item i returns the completed prefix results[0..i) both from SweepChunk and
// in the /sweep error body, so a coordinator re-dispatches only the suffix.
func TestSweepChunkKeepsCompletedPrefixOnFailure(t *testing.T) {
	s := testService(t)
	var tunes atomic.Int64
	s.tuneHook = func() error {
		if tunes.Add(1) >= 2 {
			return errors.New("injected crash on the second tune")
		}
		return nil
	}
	items := []SweepItem{
		{M: 2048, N: 8192, K: 4096, Prim: "AR"},
		{M: 4096, N: 8192, K: 8192, Prim: "AR"}, // distinct shape: second tune fails
	}

	partial, err := s.CollectSweep(context.Background(), SweepRequest{SweepSpec: SweepSpec{Tune: true}, Items: items})
	var ce *ChunkError
	if !errors.As(err, &ce) || ce.Index != 1 {
		t.Fatalf("error %v does not name chunk item 1", err)
	}
	if len(partial) != 1 {
		t.Fatalf("SweepChunk kept %d results, want the 1-item completed prefix", len(partial))
	}
	if partial[0].Shape != items[0].Shape().String() || partial[0].Result == nil {
		t.Fatalf("salvaged prefix %+v does not answer item 0", partial[0])
	}

	// The same over HTTP: the error body carries the prefix under
	// "results". Item 0 is now a cache hit (no tune), item 1 still fails.
	srv := httptest.NewServer(Handler(s))
	defer srv.Close()
	resp := postSweep(t, srv.URL, SweepRequest{SweepSpec: SweepSpec{Tune: true}, Items: items})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("status = %d, want 500", resp.StatusCode)
	}
	var env ErrorEnvelope
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
		t.Fatal(err)
	}
	if env.Error.Index == nil || *env.Error.Index != 1 || len(env.Error.Results) != 1 {
		t.Fatalf("error body index %v with %d results, want index 1 with the 1-item prefix", env.Error.Index, len(env.Error.Results))
	}
	if env.Error.Results[0].Shape != items[0].Shape().String() {
		t.Fatalf("prefix answers %q, want item 0 (%q)", env.Error.Results[0].Shape, items[0].Shape())
	}
}

// /healthz is the liveness probe behind dead-replica re-admission: 200 with
// the replica's shard label.
func TestHandlerHealthz(t *testing.T) {
	s, err := New(Config{Plat: hw.RTX4090PCIe(), NGPUs: 2, CandidateLimit: 64, Shard: "1/4"})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(Handler(s))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
	var body map[string]string
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if body["status"] != "ok" || body["shard"] != "1/4" {
		t.Fatalf("body = %v, want status ok with shard 1/4", body)
	}
}
