package serve

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/gemm"
	"repro/internal/hw"
)

func TestHandlerQueryAndStats(t *testing.T) {
	s := testService(t)
	shape := gemm.Shape{M: 2048, N: 8192, K: 4096}
	if err := s.Warm([]hw.Primitive{hw.AllReduce}, []gemm.Shape{shape}, 0); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(Handler(s))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/query?m=2048&n=8192&k=4096&prim=AR")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var qr QueryResponse
	if err := json.NewDecoder(resp.Body).Decode(&qr); err != nil {
		t.Fatal(err)
	}
	if qr.Source != SourceCache {
		t.Fatalf("source = %q, want %q (shape was warmed)", qr.Source, SourceCache)
	}
	if qr.Shape != shape.String() || qr.Primitive != "AllReduce" {
		t.Fatalf("echoed query = %q %q", qr.Shape, qr.Primitive)
	}
	if len(qr.Partition) == 0 || qr.Waves <= 0 || qr.PredictedNs <= 0 {
		t.Fatalf("malformed response %+v", qr)
	}

	sresp, err := http.Get(srv.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	var st Stats
	if err := json.NewDecoder(sresp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Hits != 1 || st.ShapesCached != 1 {
		t.Fatalf("stats over HTTP = %+v, want 1 hit and 1 cached shape", st)
	}
}

func TestHandlerRejectsBadRequests(t *testing.T) {
	s := testService(t)
	srv := httptest.NewServer(Handler(s))
	defer srv.Close()

	for _, url := range []string{
		"/query",                                // missing dimensions
		"/query?m=-5&n=8192&k=4096",             // negative dimension
		"/query?m=2048&n=8192&k=4096&prim=NOPE", // unknown primitive
		"/query?m=2048&n=8192&k=4096&prim=A2A&imbalance=0.5", // imbalance < 1
		"/query?m=2048&n=8192&k=4096&prim=A2A&imbalance=NaN", // NaN would poison the cache
		"/query?m=2048&n=8192&k=4096&prim=A2A&imbalance=Inf", // so would +Inf
	} {
		resp, err := http.Get(srv.URL + url)
		if err != nil {
			t.Fatal(err)
		}
		var body map[string]string
		if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
			t.Fatalf("%s: non-JSON error body: %v", url, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status = %d, want 400", url, resp.StatusCode)
		}
		if body["error"] == "" {
			t.Errorf("%s: empty error message", url)
		}
	}
}
