// Package serve is the long-lived tuning service of the paper's §4.2.2
// dynamic-shape story at production scale: a Service owns an execution
// engine and one tuner per communication primitive, and answers
// (shape, primitive, imbalance) queries from the tuners' concurrency-safe
// nearest-neighbor caches. Cache misses tune through a singleflight path, so
// a burst of identical queries for an unseen shape costs one predictive
// search, and a representative-shape list can be pre-warmed through
// engine.Batch before traffic arrives.
//
// The package separates mechanism from transport: Service is the in-process
// API, Handler adapts it to HTTP/JSON (cmd/serve and examples/serving both
// mount it).
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/gemm"
	"repro/internal/hw"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/tuner"
)

// Config sizes a Service. The zero value of every field selects a sensible
// default, so Config{Plat: hw.RTX4090PCIe(), NGPUs: 4} is a working service.
type Config struct {
	// Plat and NGPUs fix the platform half of the (platform, shape,
	// primitive) query space; one Service serves one deployment.
	Plat  hw.Platform
	NGPUs int
	// Workers bounds the engine pool used by Warm and background
	// execution; <= 0 selects GOMAXPROCS.
	Workers int
	// PlanCacheSize bounds the engine's compiled-plan LRU; <= 0 selects
	// engine.DefaultCacheSize.
	PlanCacheSize int
	// ShapeCacheSize bounds each primitive's tuned-shape cache; <= 0
	// selects tuner.DefaultShapeCacheCapacity.
	ShapeCacheSize int
	// CandidateLimit bounds the per-shape search space; <= 0 selects 512,
	// a real-time budget (cmd/tune's default) rather than the offline
	// tuner's 4096.
	CandidateLimit int
	// Owns restricts Warm to the shapes this replica owns in a sharded
	// deployment (internal/shard supplies the predicate); nil owns
	// everything. Queries are still answered for any shape — failover
	// routing may legitimately land a non-owned query here.
	Owns func(gemm.Shape) bool
	// Shard labels the replica ("1/4") in Stats so a router's merged view
	// attributes counters; empty for an unsharded deployment.
	Shard string
	// Curves optionally seeds the per-primitive bandwidth curves,
	// skipping the offline sampling stage for those primitives. Sharded
	// deployments sample once and share the immutable curve across
	// replicas; the curves must match Plat/NGPUs.
	Curves map[hw.Primitive]*stats.Curve
}

// Answer sources.
const (
	// SourceCache marks an answer served from the tuned-shape cache
	// without any search.
	SourceCache = "cache"
	// SourceTuned marks an answer that ran (or waited on) a predictive
	// search.
	SourceTuned = "tuned"
)

// BadQueryError marks a deterministic rejection of the query itself — an
// invalid shape, a malformed imbalance factor, an unsupported primitive.
// Every identically configured replica rejects such a query the same way, so
// the HTTP layer maps it to a 4xx status and the shard router does not burn
// failover retries on it. Internal failures (tuner search, engine execution)
// are returned unwrapped and map to 5xx, which the router treats as
// retryable — a replica mid-deploy or out of memory is not evidence the
// query is bad.
type BadQueryError struct{ Err error }

func (e *BadQueryError) Error() string { return e.Err.Error() }
func (e *BadQueryError) Unwrap() error { return e.Err }

// IsBadQuery reports whether err is (or wraps) a deterministic query
// rejection.
func IsBadQuery(err error) bool {
	var bq *BadQueryError
	return errors.As(err, &bq)
}

func badQueryf(format string, args ...any) error {
	return &BadQueryError{Err: fmt.Errorf(format, args...)}
}

// Query asks for the tuned partition of one GEMM-collective overlap.
type Query struct {
	Shape gemm.Shape
	Prim  hw.Primitive
	// Imbalance is the All-to-All max/mean load factor (0 or >= 1).
	Imbalance float64
	// Tenant is an optional accounting label (/query's tenant parameter):
	// it selects which per-tenant latency histogram and hit counter the
	// answer records into, and nothing else. Deliberately excluded from the
	// cache, singleflight, and pre-encoded answer keys — two tenants asking
	// for the same shape share one tuned entry and identical reply bytes.
	Tenant string
}

// Answer is the service's reply: the wave-group partition to launch with and
// the Alg. 1 latency prediction for it.
type Answer struct {
	Partition gemm.Partition
	Waves     int
	Predicted sim.Time
	Source    string
}

// Stats snapshots the service counters. Hits + Misses equals the number of
// Query calls that reached a tuner; Collapsed counts queries whose tune was
// deduplicated onto another in-flight query's search; Tunes counts searches
// actually executed (including Warm's).
type Stats struct {
	// Shard is the replica's slice label ("1/4") in a sharded deployment;
	// empty when unsharded.
	Shard        string `json:"shard,omitempty"`
	Hits         uint64 `json:"hits"`
	Misses       uint64 `json:"misses"`
	Collapsed    uint64 `json:"collapsed"`
	Tunes        uint64 `json:"tunes"`
	ShapesCached int    `json:"shapes_cached"`
	// EncodedHits counts the subset of Hits answered from the pre-encoded
	// warm fast path (no predictor, no JSON encode); WarmEncoded is the
	// number of answers currently held pre-encoded. The gap between
	// EncodedHits and Hits measures nearest-neighbor hits, which still pay
	// the full answer path.
	EncodedHits uint64 `json:"hits_encoded"`
	WarmEncoded int    `json:"warm_encoded"`
	// SnapshotRestored counts tuned entries re-admitted from a warm-state
	// snapshot at boot; SnapshotRejects counts snapshot files refused
	// (corrupt, truncated, or mismatched version/platform/config), each of
	// which fell back to a cold start.
	SnapshotRestored uint64 `json:"snapshot_restored"`
	SnapshotRejects  uint64 `json:"snapshot_rejects"`
	// SweptItemsAnalytic and SweptItemsDES split successfully executed
	// sweep items by fidelity, so operators can read the fidelity mix of
	// live traffic off /stats (a mixed sweep counts into both).
	SweptItemsAnalytic uint64 `json:"swept_items_analytic"`
	SweptItemsDES      uint64 `json:"swept_items_des"`
	// CancelledQueries counts /query requests abandoned on a context error
	// (client disconnect or deadline); CancelledSweepItems counts sweep
	// items whose execution or delivery was skipped because the request
	// context ended mid-chunk; DeadlineExceeded is the subset of both whose
	// context ended by deadline rather than explicit cancellation.
	CancelledQueries    uint64       `json:"cancelled_queries"`
	CancelledSweepItems uint64       `json:"cancelled_sweep_items"`
	DeadlineExceeded    uint64       `json:"deadline_exceeded"`
	Primitives          []string     `json:"primitives"`
	Engine              engine.Stats `json:"engine"`
	// Latency is the query-latency histogram over every answered /query —
	// warm fast-path hits included — from which the JSON form derives
	// p50/p95/p99. The fixed bucket boundaries make router-merged
	// percentiles exact. Nil until the first answered query, so a fresh
	// replica's /stats is byte-identical to the pre-histogram wire form.
	Latency *metrics.HistogramSnapshot `json:"latency,omitempty"`
	// Tenants breaks queries down by the optional tenant label (/query's
	// tenant parameter, SweepSpec.Tenant): per-tenant latency percentiles,
	// hit rate, and swept-item counts. Empty (and omitted) until a labeled
	// request arrives.
	Tenants map[string]TenantStats `json:"tenants,omitempty"`
}

// TenantStats is one tenant's slice of the service counters. Its fields are
// plain mergeable state (the derived hit rate is computed on marshal), so
// a router merging replica snapshots sums them like any other counter.
type TenantStats struct {
	// Queries counts answered /query requests carrying this tenant label;
	// Hits is the subset answered from the tuned-shape cache (pre-encoded
	// fast path included).
	Queries uint64 `json:"queries"`
	Hits    uint64 `json:"hits"`
	// SweptItems counts sweep items executed under this tenant label.
	SweptItems uint64 `json:"swept_items"`
	// Latency is the tenant's query-latency histogram.
	Latency metrics.HistogramSnapshot `json:"latency"`
}

// tenantWire is TenantStats' JSON schema: the mergeable state plus the
// derived hit rate.
type tenantWire struct {
	Queries    uint64                    `json:"queries"`
	Hits       uint64                    `json:"hits"`
	SweptItems uint64                    `json:"swept_items"`
	HitRate    float64                   `json:"hit_rate"`
	Latency    metrics.HistogramSnapshot `json:"latency"`
}

// MarshalJSON appends the derived hit_rate. Recomputed from the counters on
// every marshal, it stays correct across merges and decode/encode round
// trips without ever being merged itself.
func (t TenantStats) MarshalJSON() ([]byte, error) {
	w := tenantWire{Queries: t.Queries, Hits: t.Hits, SweptItems: t.SweptItems, Latency: t.Latency}
	if t.Queries > 0 {
		w.HitRate = float64(t.Hits) / float64(t.Queries)
	}
	return json.Marshal(w)
}

// UnmarshalJSON restores the mergeable state, dropping the derived rate.
func (t *TenantStats) UnmarshalJSON(data []byte) error {
	var w tenantWire
	if err := json.Unmarshal(data, &w); err != nil {
		return err
	}
	*t = TenantStats{Queries: w.Queries, Hits: w.Hits, SweptItems: w.SweptItems, Latency: w.Latency}
	return nil
}

// Merge accumulates another replica's snapshot through the generic metrics
// merge: counters sum, primitive sets union, histograms add bucket-wise,
// tenant maps union by key, and the shard label is dropped (a merged view
// spans shards). Every field — including any added later — participates
// automatically; the hand-written per-field merge this replaces silently
// dropped counters its author forgot to thread through.
func (s Stats) Merge(o Stats) Stats {
	return metrics.MergeSnapshots(s, o)
}

// Service is a long-lived, concurrency-safe tuning server. Construct with
// New; all methods may be called from any number of goroutines.
type Service struct {
	cfg Config
	eng *engine.Engine

	mu     sync.RWMutex
	tuners map[hw.Primitive]*tuner.Tuner

	tunerFlight flightGroup // collapses concurrent offline stages per primitive
	tuneFlight  flightGroup // collapses concurrent misses per (prim, shape, imbalance)

	// answers holds the pre-encoded JSON /query reply for every tuned
	// (prim, shape, imbalance) key: the §4.2.2 answer for a warm key is
	// immutable until re-tune, so the bytes are encoded once — at tune,
	// warm, or snapshot-restore time — and a warm hit writes them straight
	// to the wire with no predictor, no clone, and no JSON encoder on the
	// path. Entries invalidate in lockstep with the tuner caches through
	// their OnEvict hooks, so the map is bounded by the shape caches'
	// capacity.
	ansMu   sync.RWMutex
	answers map[encodedKey][]byte

	// reg is the service's metrics registry; each counter registers under
	// the exact /stats JSON key it reports as, so the registry doubles as
	// the explicit inventory of the wire format.
	reg                            *metrics.Registry
	hits, misses, collapsed, tunes *metrics.Counter
	encodedHits                    *metrics.Counter
	snapshotRestored               *metrics.Counter
	snapshotRejects                *metrics.Counter
	sweptAnalytic, sweptDES        *metrics.Counter
	cancelledQueries               *metrics.Counter
	cancelledSweep                 *metrics.Counter
	deadlineExceeded               *metrics.Counter
	// latency is the all-queries histogram behind Stats.Latency; tenants
	// holds each tenant's counters, created once on the tenant's first
	// labeled request and read lock-free-ish (RLock + atomic adds) after,
	// so recording stays allocation-free on the warm fast path.
	latency   *metrics.Histogram
	tenantsMu sync.RWMutex
	tenants   map[string]*tenantMetrics

	// tuneHook, when set (tests only), runs inside the singleflight'd
	// search, letting a test hold the flight open while more queries pile
	// onto it, or inject an internal tuning failure.
	tuneHook func() error
}

// New builds a service. It is cheap: the per-primitive offline stage
// (bandwidth sampling) runs lazily on the first query or Warm for that
// primitive.
func New(cfg Config) (*Service, error) {
	if err := cfg.Plat.Validate(); err != nil {
		return nil, err
	}
	if cfg.NGPUs < 2 {
		return nil, fmt.Errorf("serve: overlap needs >= 2 GPUs, got %d", cfg.NGPUs)
	}
	if cfg.CandidateLimit <= 0 {
		cfg.CandidateLimit = 512
	}
	eng := engine.New(cfg.Workers, cfg.PlanCacheSize)
	// Seed the engine's analytic backend with the same curves the tuners
	// get: one offline sampling feeds prediction and analytic execution,
	// and a fleet sharing Config.Curves stays byte-identical on both.
	for p, curve := range cfg.Curves {
		eng.SeedCurve(cfg.Plat, cfg.NGPUs, p, curve)
	}
	reg := metrics.NewRegistry()
	return &Service{
		cfg:     cfg,
		eng:     eng,
		tuners:  make(map[hw.Primitive]*tuner.Tuner),
		answers: make(map[encodedKey][]byte),

		reg:              reg,
		hits:             reg.Counter("hits"),
		misses:           reg.Counter("misses"),
		collapsed:        reg.Counter("collapsed"),
		tunes:            reg.Counter("tunes"),
		encodedHits:      reg.Counter("hits_encoded"),
		snapshotRestored: reg.Counter("snapshot_restored"),
		snapshotRejects:  reg.Counter("snapshot_rejects"),
		sweptAnalytic:    reg.Counter("swept_items_analytic"),
		sweptDES:         reg.Counter("swept_items_des"),
		cancelledQueries: reg.Counter("cancelled_queries"),
		cancelledSweep:   reg.Counter("cancelled_sweep_items"),
		deadlineExceeded: reg.Counter("deadline_exceeded"),
		latency:          reg.Histogram("latency"),
		tenants:          make(map[string]*tenantMetrics),
	}, nil
}

// encodedKey identifies one pre-encoded warm answer. Imbalance is stored
// normalized (0 and anything below 1 mean balanced and key as 1, matching
// the tuner cache), so /query?imbalance absent and imbalance=1 share one
// entry.
type encodedKey struct {
	prim  hw.Primitive
	shape gemm.Shape
	imb   float64
}

func keyFor(q Query) encodedKey {
	imb := q.Imbalance
	if imb < 1 {
		imb = 1
	}
	return encodedKey{prim: q.Prim, shape: q.Shape, imb: imb}
}

// QueryEncoded answers a warm query from the pre-encoded reply bytes: the
// zero-allocation fast path behind /query. ok is false when the exact
// (shape, primitive, imbalance) key has no tuned entry — nearest-neighbor
// matches and misses take the full Query path. The returned bytes are the
// complete JSON body a cold-path reply would encode, byte for byte; callers
// must treat them as immutable.
func (s *Service) QueryEncoded(q Query) ([]byte, bool) {
	k := keyFor(q)
	s.ansMu.RLock()
	buf, ok := s.answers[k]
	s.ansMu.RUnlock()
	if !ok {
		return nil, false
	}
	s.hits.Add(1)
	s.encodedHits.Add(1)
	return buf, true
}

// storeEncoded pre-encodes the warm reply for q. The stored Source is
// always SourceCache: the bytes answer *future* queries, which by
// definition hit the cache, so the fast path stays byte-identical to a
// slow-path cache hit.
func (s *Service) storeEncoded(q Query, ans Answer) {
	buf, err := encodeAnswer(q, ans)
	if err != nil {
		return // unencodable answers just skip the fast path
	}
	s.ansMu.Lock()
	s.answers[keyFor(q)] = buf
	s.ansMu.Unlock()
}

// dropEncoded invalidates one pre-encoded answer; wired into each tuner's
// OnEvict so encodings die with the tuned entries behind them. The tuner
// reports the normalized imbalance, which is exactly how keyFor keys.
func (s *Service) dropEncoded(prim hw.Primitive, shape gemm.Shape, imbalance float64) {
	s.ansMu.Lock()
	delete(s.answers, encodedKey{prim: prim, shape: shape, imb: imbalance})
	s.ansMu.Unlock()
}

func (s *Service) encodedLen() int {
	s.ansMu.RLock()
	defer s.ansMu.RUnlock()
	return len(s.answers)
}

// Engine exposes the service's execution engine (examples run measured
// executions of the answers they receive).
func (s *Service) Engine() *engine.Engine { return s.eng }

// supportedPrim mirrors core's primitive support: the service only answers
// for primitives the execution engine can run.
func supportedPrim(p hw.Primitive) bool {
	switch p {
	case hw.AllReduce, hw.ReduceScatter, hw.AllToAll:
		return true
	}
	return false
}

// tunerFor returns the primitive's tuner, running the offline stage at most
// once per primitive no matter how many queries race on a cold service.
// A cancelled ctx abandons only this caller's wait; the offline stage
// itself runs detached (see flightGroup.do) so the tuner still lands for
// the next query.
func (s *Service) tunerFor(ctx context.Context, p hw.Primitive) (*tuner.Tuner, error) {
	s.mu.RLock()
	tn := s.tuners[p]
	s.mu.RUnlock()
	if tn != nil {
		return tn, nil
	}
	if !supportedPrim(p) {
		return nil, badQueryf("serve: unsupported primitive %v", p)
	}
	v, err, _ := s.tunerFlight.do(ctx, p.String(), func(context.Context) (any, error) {
		s.mu.RLock()
		tn := s.tuners[p]
		s.mu.RUnlock()
		if tn != nil {
			return tn, nil
		}
		if curve := s.cfg.Curves[p]; curve != nil {
			tn = tuner.NewTunerWithCurve(s.cfg.Plat, s.cfg.NGPUs, p, curve)
		} else {
			tn = tuner.NewTuner(s.cfg.Plat, s.cfg.NGPUs, p)
		}
		tn.CandidateLimit = s.cfg.CandidateLimit
		tn.CacheCapacity = s.cfg.ShapeCacheSize
		tn.Workers = s.eng.Workers() // one Config.Workers knob bounds all CPU use
		// Pre-encoded answers must die with the tuned entries behind them:
		// a re-tune or LRU eviction in the shape cache invalidates the
		// encoding before the replacement answer is stored.
		tn.OnEvict = func(shape gemm.Shape, imbalance float64) {
			s.dropEncoded(p, shape, imbalance)
		}
		s.mu.Lock()
		s.tuners[p] = tn
		s.mu.Unlock()
		return tn, nil
	})
	if err != nil {
		return nil, err
	}
	return v.(*tuner.Tuner), nil
}

func flightKey(q Query) string {
	// Normalize like the tuner cache does (0 and anything below 1 mean
	// balanced), so equivalent queries share one flight.
	imb := q.Imbalance
	if imb < 1 {
		imb = 1
	}
	return fmt.Sprintf("%s|%s|%g", q.Prim, q.Shape, imb)
}

// validateQuery rejects malformed queries before any tuner state is touched.
// Every failure is a BadQueryError: rejecting the same query is the one
// behavior all replicas share.
func validateQuery(q Query) error {
	if q.Shape.M <= 0 || q.Shape.N <= 0 || q.Shape.K <= 0 {
		return badQueryf("serve: invalid shape %v", q.Shape)
	}
	// 0 means balanced; otherwise require a finite factor >= 1. The NaN
	// check matters: a NaN key would never match itself in the shape
	// cache, so every such query would tune and leak an unevictable entry.
	if q.Imbalance != 0 && (!(q.Imbalance >= 1) || math.IsInf(q.Imbalance, 1)) {
		return badQueryf("serve: imbalance %v must be a finite factor >= 1 (or 0 for balanced)", q.Imbalance)
	}
	return ValidateTenant(q.Tenant)
}

// Query answers one (shape, primitive, imbalance) request. A warm query —
// one whose shape matches a cached tune with a compatible wave count — never
// compiles or searches; a miss tunes through the singleflight path, so
// concurrent misses on one key share a single search. Errors are classified:
// deterministic rejections of the query itself satisfy IsBadQuery, anything
// else is an internal failure another replica might not share.
//
// ctx cancellation abandons only this caller: an in-flight shared tune
// still completes and fills the cache for the next query. Abandoned
// requests return the ctx error (never a BadQueryError) and count into
// cancelled_queries / deadline_exceeded.
func (s *Service) Query(ctx context.Context, q Query) (ans Answer, err error) {
	defer func() {
		if err != nil && (errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)) {
			if errors.Is(err, context.DeadlineExceeded) {
				s.deadlineExceeded.Add(1)
			}
			s.cancelledQueries.Add(1)
		}
	}()
	if err := validateQuery(q); err != nil {
		return Answer{}, err
	}
	tn, err := s.tunerFor(ctx, q.Prim)
	if err != nil {
		return Answer{}, err
	}
	if part, ok := tn.LookupAt(q.Shape, q.Imbalance); ok {
		s.hits.Add(1)
		return s.answer(tn, q, part, SourceCache)
	}
	s.misses.Add(1)
	v, err, shared := s.tuneFlight.do(ctx, flightKey(q), func(fctx context.Context) (any, error) {
		if s.tuneHook != nil {
			if err := s.tuneHook(); err != nil {
				return nil, err
			}
		}
		s.tunes.Add(1)
		return tn.Tune(fctx, q.Shape, q.Imbalance)
	})
	if err != nil {
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			return Answer{}, err
		}
		return Answer{}, fmt.Errorf("serve: tuning %v %v: %w", q.Prim, q.Shape, err)
	}
	if shared {
		s.collapsed.Add(1)
	}
	// Every collapsed waiter receives the same underlying slice; clone so
	// answers never alias each other (the cache-hit path clones too).
	ans, err = s.answer(tn, q, v.(gemm.Partition).Clone(), SourceTuned)
	if err == nil {
		// Pre-encode the immutable warm reply now, while the freshly
		// tuned answer is in hand: the next query for this exact key is
		// served from these bytes with no predictor or encoder on the
		// path. Collapsed waiters store identical bytes; last write wins.
		s.storeEncoded(q, ans)
	}
	return ans, err
}

// answer attaches the Alg. 1 prediction to a partition. The predictor is
// pure (it reads only the immutable bandwidth curve), so answers are safe to
// build concurrently.
func (s *Service) answer(tn *tuner.Tuner, q Query, part gemm.Partition, source string) (Answer, error) {
	pred, err := tuner.NewPredictor(s.cfg.Plat, q.Shape, gemm.Config{}, tn.Curve, q.Imbalance)
	if err != nil {
		return Answer{}, err
	}
	lat, err := pred.Predict(part)
	if err != nil {
		return Answer{}, err
	}
	return Answer{Partition: part, Waves: part.TotalWaves(), Predicted: lat, Source: source}, nil
}

// Warm pre-tunes a representative-shape list for each primitive and executes
// every tuned configuration once through engine.Batch, so both the shape
// caches and the engine's plan cache are hot before traffic arrives (the
// paper's "pre-search representative sizes" step). In a sharded deployment
// (Config.Owns set) only the owned slice of the list is warmed: each
// replica's caches stay disjoint, and the fleet covers the full list.
// ctx cancellation stops warming between shapes; already-tuned entries stay.
func (s *Service) Warm(ctx context.Context, prims []hw.Primitive, shapes []gemm.Shape, imbalance float64) error {
	if s.cfg.Owns != nil {
		owned := make([]gemm.Shape, 0, len(shapes))
		for _, shape := range shapes {
			if s.cfg.Owns(shape) {
				owned = append(owned, shape)
			}
		}
		shapes = owned
	}
	if len(shapes) == 0 {
		return nil
	}
	for _, p := range prims {
		tn, err := s.tunerFor(ctx, p)
		if err != nil {
			return err
		}
		parts, err := tn.TuneGrid(ctx, shapes, imbalance)
		if err != nil {
			return fmt.Errorf("serve: warming %v: %w", p, err)
		}
		s.tunes.Add(uint64(len(shapes)))
		runs := make([]core.Options, len(shapes))
		for i, shape := range shapes {
			runs[i] = core.Options{
				Plat:      s.cfg.Plat,
				NGPUs:     s.cfg.NGPUs,
				Shape:     shape,
				Prim:      p,
				Partition: parts[i],
				Imbalance: imbalance,
			}
		}
		if _, err := s.eng.Batch(ctx, runs); err != nil {
			return fmt.Errorf("serve: warming %v: %w", p, err)
		}
		// Pre-encode every warmed answer so the first real query for a
		// warmed shape already takes the zero-alloc fast path.
		for i, shape := range shapes {
			q := Query{Shape: shape, Prim: p, Imbalance: imbalance}
			if ans, err := s.answer(tn, q, parts[i], SourceCache); err == nil {
				s.storeEncoded(q, ans)
			}
		}
	}
	return nil
}

// countSwept attributes one successfully executed sweep item to its
// fidelity tier and, when the sweep carries a tenant label, to the tenant.
func (s *Service) countSwept(tenant string, f core.Fidelity) {
	if f == core.FidelityAnalytic {
		s.sweptAnalytic.Add(1)
	} else {
		s.sweptDES.Add(1)
	}
	if tenant != "" {
		s.tenantFor(tenant).swept.Add(1)
	}
}

// Stats snapshots the service counters. Counters are read independently, so
// a snapshot under concurrent load is approximate; each counter is exact.
func (s *Service) Stats() Stats {
	st := Stats{
		Shard:               s.cfg.Shard,
		Hits:                s.hits.Load(),
		Misses:              s.misses.Load(),
		Collapsed:           s.collapsed.Load(),
		Tunes:               s.tunes.Load(),
		EncodedHits:         s.encodedHits.Load(),
		WarmEncoded:         s.encodedLen(),
		SnapshotRestored:    s.snapshotRestored.Load(),
		SnapshotRejects:     s.snapshotRejects.Load(),
		SweptItemsAnalytic:  s.sweptAnalytic.Load(),
		SweptItemsDES:       s.sweptDES.Load(),
		CancelledQueries:    s.cancelledQueries.Load(),
		CancelledSweepItems: s.cancelledSweep.Load(),
		DeadlineExceeded:    s.deadlineExceeded.Load(),
		Engine:              s.eng.Stats(),
	}
	if s.latency.Count() > 0 {
		snap := s.latency.Snapshot()
		st.Latency = &snap
	}
	st.Tenants = s.tenantSnapshots()
	s.mu.RLock()
	for p, tn := range s.tuners {
		st.ShapesCached += tn.CacheSize()
		st.Primitives = append(st.Primitives, p.String())
	}
	s.mu.RUnlock()
	sort.Strings(st.Primitives)
	return st
}

// ParsePrimitive resolves a primitive from its full or figure-label name
// ("AllReduce"/"AR", "ReduceScatter"/"RS", "AllToAll"/"A2A").
func ParsePrimitive(name string) (hw.Primitive, error) {
	for _, p := range []hw.Primitive{hw.AllReduce, hw.ReduceScatter, hw.AllToAll} {
		if name == p.String() || name == p.Short() {
			return p, nil
		}
	}
	return 0, fmt.Errorf("serve: unknown primitive %q (want AR, RS, or A2A)", name)
}

// ParsePrimitives parses a comma-separated primitive list ("AR,RS") — the
// shared parser behind cmd/serve's -warm-prims and cmd/sweep's -prims.
func ParsePrimitives(raw string) ([]hw.Primitive, error) {
	var out []hw.Primitive
	for _, tok := range strings.Split(raw, ",") {
		p, err := ParsePrimitive(strings.TrimSpace(tok))
		if err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	return out, nil
}

// ParseShapes parses a comma-separated MxNxK list
// ("2048x8192x4096,4096x8192x8192") — the shared parser behind cmd/serve's
// -warm and cmd/sweep's -shapes. Parsing is strict: trailing garbage and
// non-positive dimensions are rejected rather than silently truncated.
func ParseShapes(raw string) ([]gemm.Shape, error) {
	var out []gemm.Shape
	for _, tok := range strings.Split(raw, ",") {
		dims := strings.Split(strings.TrimSpace(tok), "x")
		if len(dims) != 3 {
			return nil, fmt.Errorf("serve: bad shape %q (want MxNxK)", tok)
		}
		var s gemm.Shape
		for i, dst := range []*int{&s.M, &s.N, &s.K} {
			v, err := strconv.Atoi(dims[i])
			if err != nil || v <= 0 {
				return nil, fmt.Errorf("serve: bad shape %q: dimension %q must be a positive integer", tok, dims[i])
			}
			*dst = v
		}
		out = append(out, s)
	}
	return out, nil
}
