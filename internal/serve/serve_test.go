package serve

import (
	"context"
	"runtime"
	"sync"
	"testing"

	"repro/internal/gemm"
	"repro/internal/hw"
)

func testService(t *testing.T) *Service {
	t.Helper()
	s, err := New(Config{Plat: hw.RTX4090PCIe(), NGPUs: 2, CandidateLimit: 64})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

var warmShapes = []gemm.Shape{
	{M: 2048, N: 8192, K: 4096},
	{M: 4096, N: 8192, K: 4096},
	{M: 4096, N: 8192, K: 8192},
}

// A warm query must be answered entirely from the shape cache: no search, no
// plan compilation — the cache counters prove it.
func TestWarmQueryAnswersFromCache(t *testing.T) {
	s := testService(t)
	if err := s.Warm(context.Background(), []hw.Primitive{hw.AllReduce}, warmShapes, 0); err != nil {
		t.Fatal(err)
	}
	warm := s.Stats()
	if warm.Tunes != uint64(len(warmShapes)) {
		t.Fatalf("warm tunes = %d, want %d", warm.Tunes, len(warmShapes))
	}
	if warm.ShapesCached != len(warmShapes) {
		t.Fatalf("shapes cached = %d, want %d", warm.ShapesCached, len(warmShapes))
	}
	if int(warm.Engine.Misses) != len(warmShapes) {
		t.Fatalf("engine compiles = %d, want %d", warm.Engine.Misses, len(warmShapes))
	}

	for _, shape := range warmShapes {
		ans, err := s.Query(context.Background(), Query{Shape: shape, Prim: hw.AllReduce})
		if err != nil {
			t.Fatal(err)
		}
		if ans.Source != SourceCache {
			t.Fatalf("query %v source = %q, want %q", shape, ans.Source, SourceCache)
		}
		if ans.Waves != ans.Partition.TotalWaves() || ans.Predicted <= 0 {
			t.Fatalf("query %v: malformed answer %+v", shape, ans)
		}
	}
	after := s.Stats()
	if after.Hits != uint64(len(warmShapes)) || after.Misses != 0 {
		t.Fatalf("hits/misses = %d/%d, want %d/0", after.Hits, after.Misses, len(warmShapes))
	}
	if after.Tunes != warm.Tunes {
		t.Fatalf("warm queries re-tuned: tunes %d -> %d", warm.Tunes, after.Tunes)
	}
	if after.Engine.Misses != warm.Engine.Misses {
		t.Fatalf("warm queries compiled: engine misses %d -> %d", warm.Engine.Misses, after.Engine.Misses)
	}
}

// A cold query tunes once and the result is cached for the next query.
func TestColdQueryTunesThenCaches(t *testing.T) {
	s := testService(t)
	shape := gemm.Shape{M: 4096, N: 8192, K: 4096}
	ans, err := s.Query(context.Background(), Query{Shape: shape, Prim: hw.AllReduce})
	if err != nil {
		t.Fatal(err)
	}
	if ans.Source != SourceTuned {
		t.Fatalf("cold query source = %q, want %q", ans.Source, SourceTuned)
	}
	again, err := s.Query(context.Background(), Query{Shape: shape, Prim: hw.AllReduce})
	if err != nil {
		t.Fatal(err)
	}
	if again.Source != SourceCache {
		t.Fatalf("second query source = %q, want %q", again.Source, SourceCache)
	}
	if again.Partition.String() != ans.Partition.String() {
		t.Fatalf("cached partition %v differs from tuned %v", again.Partition, ans.Partition)
	}
	st := s.Stats()
	if st.Tunes != 1 || st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("tunes/hits/misses = %d/%d/%d, want 1/1/1", st.Tunes, st.Hits, st.Misses)
	}
}

// waiters reports how many callers are parked on a key's in-flight call.
func waiters(g *flightGroup, key string) int {
	g.mu.Lock()
	defer g.mu.Unlock()
	if c, ok := g.m[key]; ok {
		return c.dups
	}
	return 0
}

// N concurrent queries for one untuned shape must trigger exactly one
// search; the rest share its result.
func TestSingleflightCollapsesDuplicateMisses(t *testing.T) {
	s := testService(t)
	q := Query{Shape: gemm.Shape{M: 2048, N: 8192, K: 8192}, Prim: hw.AllReduce}
	// Pre-build the tuner so the queries below race only on the tune.
	if _, err := s.tunerFor(context.Background(), q.Prim); err != nil {
		t.Fatal(err)
	}

	release := make(chan struct{})
	s.tuneHook = func() error { <-release; return nil }

	const dups = 3
	answers := make([]Answer, dups+1)
	errs := make([]error, dups+1)
	var wg sync.WaitGroup
	for i := 0; i <= dups; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			answers[i], errs[i] = s.Query(context.Background(), q)
		}(i)
	}
	// Hold the first search open until every duplicate is parked on it,
	// then let it finish: the collapse is deterministic, not timing luck.
	for waiters(&s.tuneFlight, flightKey(q)) < dups {
		runtime.Gosched()
	}
	close(release)
	wg.Wait()

	for i, err := range errs {
		if err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
		if answers[i].Source != SourceTuned {
			t.Fatalf("query %d source = %q, want %q", i, answers[i].Source, SourceTuned)
		}
		if answers[i].Partition.String() != answers[0].Partition.String() {
			t.Fatalf("query %d partition %v differs from %v", i, answers[i].Partition, answers[0].Partition)
		}
	}
	st := s.Stats()
	if st.Tunes != 1 {
		t.Fatalf("tunes = %d, want 1 (singleflight must collapse)", st.Tunes)
	}
	if st.Collapsed != dups {
		t.Fatalf("collapsed = %d, want %d", st.Collapsed, dups)
	}
	if st.Misses != dups+1 {
		t.Fatalf("misses = %d, want %d", st.Misses, dups+1)
	}
}

// The nearest-neighbor fallback must hold through the concurrent cache: a
// same-wave-count neighbor transfers, an incompatible wave count re-tunes
// instead of serving a partition that cannot cover the query's waves.
func TestLookupWaveMismatchFallsBackToTune(t *testing.T) {
	s := testService(t)
	seed := gemm.Shape{M: 2048, N: 8192, K: 8192}
	if err := s.Warm(context.Background(), []hw.Primitive{hw.AllReduce}, []gemm.Shape{seed}, 0); err != nil {
		t.Fatal(err)
	}
	// Same M*N, nearby K: same wave count, transfers from the cache.
	near, err := s.Query(context.Background(), Query{Shape: gemm.Shape{M: 2048, N: 8192, K: 6144}, Prim: hw.AllReduce})
	if err != nil {
		t.Fatal(err)
	}
	if near.Source != SourceCache {
		t.Fatalf("same-wave neighbor source = %q, want %q", near.Source, SourceCache)
	}
	// Much larger M: different wave count; the cached partition must not
	// transfer, and the answer must cover the query's own wave count.
	far, err := s.Query(context.Background(), Query{Shape: gemm.Shape{M: 16384, N: 8192, K: 8192}, Prim: hw.AllReduce})
	if err != nil {
		t.Fatal(err)
	}
	if far.Source != SourceTuned {
		t.Fatalf("wave-mismatch query source = %q, want %q", far.Source, SourceTuned)
	}
	if far.Waves == near.Waves {
		t.Fatalf("distinct wave counts expected, both %d", far.Waves)
	}
}

// Imbalance is a query dimension: a partition tuned for balanced traffic
// must not be served from the cache for a skewed query of the same shape.
func TestQueryImbalanceSeparatesCacheEntries(t *testing.T) {
	s := testService(t)
	shape := gemm.Shape{M: 4096, N: 8192, K: 4096}
	balanced, err := s.Query(context.Background(), Query{Shape: shape, Prim: hw.AllToAll, Imbalance: 1})
	if err != nil {
		t.Fatal(err)
	}
	skewed, err := s.Query(context.Background(), Query{Shape: shape, Prim: hw.AllToAll, Imbalance: 8})
	if err != nil {
		t.Fatal(err)
	}
	if skewed.Source != SourceTuned {
		t.Fatalf("skewed query served %q from the balanced tune", skewed.Source)
	}
	if balanced.Source != SourceTuned {
		t.Fatalf("first query source = %q", balanced.Source)
	}
	// Each imbalance now hits its own entry.
	for _, imb := range []float64{1, 8} {
		ans, err := s.Query(context.Background(), Query{Shape: shape, Prim: hw.AllToAll, Imbalance: imb})
		if err != nil {
			t.Fatal(err)
		}
		if ans.Source != SourceCache {
			t.Fatalf("imbalance %v repeat source = %q, want %q", imb, ans.Source, SourceCache)
		}
	}
	st := s.Stats()
	if st.Tunes != 2 || st.ShapesCached != 2 {
		t.Fatalf("tunes/cached = %d/%d, want 2/2 (one entry per imbalance)", st.Tunes, st.ShapesCached)
	}
}

// Unsupported primitives and malformed shapes fail loudly.
func TestQueryValidation(t *testing.T) {
	s := testService(t)
	if _, err := s.Query(context.Background(), Query{Shape: gemm.Shape{M: 0, N: 8192, K: 4096}, Prim: hw.AllReduce}); err == nil {
		t.Error("zero-dimension shape accepted")
	}
	if _, err := s.Query(context.Background(), Query{Shape: gemm.Shape{M: 2048, N: 8192, K: 4096}, Prim: hw.AllGather}); err == nil {
		t.Error("AllGather accepted but the engine cannot execute it")
	}
	if _, err := New(Config{Plat: hw.RTX4090PCIe(), NGPUs: 1}); err == nil {
		t.Error("single-GPU service accepted")
	}
}

// A mixed concurrent workload (hits, misses, duplicates, two primitives)
// must be race-clean and every answer internally consistent. The race job
// runs this under -race.
func TestConcurrentMixedQueries(t *testing.T) {
	s := testService(t)
	if err := s.Warm(context.Background(), []hw.Primitive{hw.AllReduce}, warmShapes, 0); err != nil {
		t.Fatal(err)
	}
	shapes := append([]gemm.Shape{}, warmShapes...)
	shapes = append(shapes,
		gemm.Shape{M: 2048, N: 8192, K: 8192},
		gemm.Shape{M: 8192, N: 8192, K: 4096},
	)
	prims := []hw.Primitive{hw.AllReduce, hw.AllToAll}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				q := Query{
					Shape: shapes[(w+i)%len(shapes)],
					Prim:  prims[(w+i)%len(prims)],
				}
				ans, err := s.Query(context.Background(), q)
				if err != nil {
					t.Error(err)
					return
				}
				if ans.Waves != ans.Partition.TotalWaves() {
					t.Errorf("inconsistent answer %+v", ans)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	st := s.Stats()
	if st.Hits+st.Misses != 80 {
		t.Fatalf("hits+misses = %d, want 80", st.Hits+st.Misses)
	}
	if len(st.Primitives) != 2 {
		t.Fatalf("primitives = %v, want AllReduce and AllToAll", st.Primitives)
	}
}

func TestParsePrimitive(t *testing.T) {
	for name, want := range map[string]hw.Primitive{
		"AR": hw.AllReduce, "AllReduce": hw.AllReduce,
		"RS": hw.ReduceScatter, "ReduceScatter": hw.ReduceScatter,
		"A2A": hw.AllToAll, "AllToAll": hw.AllToAll,
	} {
		got, err := ParsePrimitive(name)
		if err != nil || got != want {
			t.Errorf("ParsePrimitive(%q) = %v, %v", name, got, err)
		}
	}
	if _, err := ParsePrimitive("AG"); err == nil {
		t.Error("AllGather parsed but the service cannot serve it")
	}
	if _, err := ParsePrimitive("bogus"); err == nil {
		t.Error("bogus primitive accepted")
	}
}
