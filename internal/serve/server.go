package serve

import (
	"context"
	"errors"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"
)

// ShutdownGrace bounds how long Run waits for in-flight requests to drain
// after a termination signal before abandoning them.
const ShutdownGrace = 5 * time.Second

// Run serves h on addr until the process receives SIGINT or SIGTERM, then
// drains in-flight requests for up to ShutdownGrace. It returns nil on a
// clean signal-triggered shutdown and the listen/serve error otherwise, so
// commands exit non-zero when the port was never bound (a CI smoke-run that
// cannot listen must fail loudly, not log and hang).
func Run(addr string, h http.Handler) error {
	return RunWithShutdown(addr, h, nil)
}

// RunWithShutdown is Run with a hook that fires after a signal-triggered
// graceful drain completes, before the function returns nil. It is the place
// for last-gasp persistence — saving a warm-state snapshot — because it runs
// once traffic has stopped, so the persisted state includes every request
// the server ever answered. The hook is not called on listen/serve errors.
func RunWithShutdown(addr string, h http.Handler, onShutdown func()) error {
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM, os.Interrupt)
	defer stop()

	srv := &http.Server{Addr: addr, Handler: h}
	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()

	select {
	case err := <-errCh:
		// ListenAndServe never returns nil; before a signal, any return
		// (bind failure, listener collapse) is fatal.
		return err
	case <-ctx.Done():
		stop() // restore default signal handling: a second signal kills immediately
		shutdownCtx, cancel := context.WithTimeout(context.Background(), ShutdownGrace)
		defer cancel()
		if err := srv.Shutdown(shutdownCtx); err != nil {
			return err
		}
		if err := <-errCh; !errors.Is(err, http.ErrServerClosed) {
			return err
		}
		if onShutdown != nil {
			onShutdown()
		}
		return nil
	}
}
