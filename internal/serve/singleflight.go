package serve

import (
	"fmt"
	"sync"
)

// flightGroup collapses concurrent calls with the same key into one
// execution whose result every waiter shares — the classic singleflight
// pattern, implemented locally because the harness takes no external
// dependencies. A long-lived service uses it so that N simultaneous queries
// for one untuned shape cost one tune, not N.
type flightGroup struct {
	mu sync.Mutex
	m  map[string]*flightCall
}

type flightCall struct {
	wg      sync.WaitGroup
	val     any
	err     error
	dups    int
	panicry any // non-nil when fn panicked; re-raised in the executor
}

// do executes fn once per key among concurrent callers. shared reports
// whether this caller received another caller's result instead of running fn
// itself. A panic in fn is re-raised in the executing caller after the key
// is released; waiters receive it as an error, so one poisoned request can
// never wedge its key forever in a long-lived server.
func (g *flightGroup) do(key string, fn func() (any, error)) (val any, err error, shared bool) {
	g.mu.Lock()
	if g.m == nil {
		g.m = make(map[string]*flightCall)
	}
	if c, ok := g.m[key]; ok {
		c.dups++
		g.mu.Unlock()
		c.wg.Wait()
		return c.val, c.err, true
	}
	c := new(flightCall)
	c.wg.Add(1)
	g.m[key] = c
	g.mu.Unlock()

	func() {
		defer func() {
			if r := recover(); r != nil {
				c.panicry = r
				c.err = fmt.Errorf("serve: in-flight call for %q panicked: %v", key, r)
			}
		}()
		c.val, c.err = fn()
	}()

	g.mu.Lock()
	delete(g.m, key)
	g.mu.Unlock()
	c.wg.Done()
	if c.panicry != nil {
		panic(c.panicry)
	}
	return c.val, c.err, false
}
