package serve

import (
	"context"
	"fmt"
	"sync"
)

// flightGroup collapses concurrent calls with the same key into one
// execution whose result every waiter shares — the classic singleflight
// pattern, implemented locally because the harness takes no external
// dependencies. A long-lived service uses it so that N simultaneous queries
// for one untuned shape cost one tune, not N.
type flightGroup struct {
	mu sync.Mutex
	m  map[string]*flightCall
}

type flightCall struct {
	done chan struct{} // closed when fn has returned and the key is released
	val  any
	err  error
	dups int
}

// do executes fn once per key among concurrent callers. shared reports
// whether this caller received another caller's result instead of
// initiating fn itself.
//
// fn runs in its own goroutine under a context detached from the caller's
// (context.WithoutCancel): cancelling any waiter — including the one that
// initiated the flight — abandons only that waiter, which gets its own
// ctx.Err() immediately. The flight itself always runs to completion and
// delivers its result to the remaining waiters, so a cancelled request can
// never poison the shared result or evict work other requests are waiting
// on. A panic in fn is converted to an error for every waiter (the
// executing goroutine is detached, so re-raising would kill the process);
// the key is always released, so one poisoned request can never wedge its
// key forever in a long-lived server.
func (g *flightGroup) do(ctx context.Context, key string, fn func(ctx context.Context) (any, error)) (val any, err error, shared bool) {
	g.mu.Lock()
	if g.m == nil {
		g.m = make(map[string]*flightCall)
	}
	if c, ok := g.m[key]; ok {
		c.dups++
		g.mu.Unlock()
		select {
		case <-c.done:
			return c.val, c.err, true
		case <-ctx.Done():
			return nil, ctx.Err(), true
		}
	}
	c := &flightCall{done: make(chan struct{})}
	g.m[key] = c
	g.mu.Unlock()

	fctx := context.WithoutCancel(ctx)
	go func() {
		defer func() {
			if r := recover(); r != nil {
				c.err = fmt.Errorf("serve: in-flight call for %q panicked: %v", key, r)
			}
			g.mu.Lock()
			delete(g.m, key)
			g.mu.Unlock()
			close(c.done)
		}()
		c.val, c.err = fn(fctx)
	}()

	select {
	case <-c.done:
		return c.val, c.err, false
	case <-ctx.Done():
		return nil, ctx.Err(), false
	}
}
