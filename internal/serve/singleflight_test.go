package serve

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestFlightGroupCollapsesOneKey(t *testing.T) {
	var g flightGroup
	var calls atomic.Int64
	release := make(chan struct{})
	const waitersWanted = 7

	results := make([]any, waitersWanted+1)
	shareds := make([]bool, waitersWanted+1)
	var wg sync.WaitGroup
	for i := 0; i <= waitersWanted; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, err, shared := g.do(context.Background(), "k", func(context.Context) (any, error) {
				<-release
				return calls.Add(1), nil
			})
			if err != nil {
				t.Error(err)
			}
			results[i], shareds[i] = v, shared
		}(i)
	}
	for waiters(&g, "k") < waitersWanted {
		runtime.Gosched()
	}
	close(release)
	wg.Wait()

	if calls.Load() != 1 {
		t.Fatalf("fn ran %d times, want 1", calls.Load())
	}
	nShared := 0
	for i := range results {
		if results[i].(int64) != 1 {
			t.Fatalf("caller %d got %v, want 1", i, results[i])
		}
		if shareds[i] {
			nShared++
		}
	}
	if nShared != waitersWanted {
		t.Fatalf("%d callers shared, want %d", nShared, waitersWanted)
	}
}

func TestFlightGroupSeparatesKeys(t *testing.T) {
	var g flightGroup
	var calls atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, err, _ := g.do(context.Background(), fmt.Sprintf("k%d", i), func(context.Context) (any, error) {
				calls.Add(1)
				return nil, nil
			}); err != nil {
				t.Error(err)
			}
		}(i)
	}
	wg.Wait()
	if calls.Load() != 4 {
		t.Fatalf("fn ran %d times, want 4 (distinct keys must not collapse)", calls.Load())
	}
}

func TestFlightGroupPropagatesErrors(t *testing.T) {
	var g flightGroup
	wantErr := fmt.Errorf("tune failed")
	if _, err, _ := g.do(context.Background(), "k", func(context.Context) (any, error) { return nil, wantErr }); err != wantErr {
		t.Fatalf("err = %v, want %v", err, wantErr)
	}
	// The failed call must not stick: a retry runs fn again.
	v, err, shared := g.do(context.Background(), "k", func(context.Context) (any, error) { return 42, nil })
	if err != nil || shared || v.(int) != 42 {
		t.Fatalf("retry after failure: %v, %v, %v", v, err, shared)
	}
}

// A panicking fn must release its key: fn runs on a detached goroutine, so
// the panic is converted to an error every waiter (initiator included)
// receives, and the key works again afterwards — a poisoned request cannot
// wedge a long-lived server.
func TestFlightGroupSurvivesPanic(t *testing.T) {
	var g flightGroup
	release := make(chan struct{})
	waiterErr := make(chan error, 1)
	initiatorErr := make(chan error, 1)

	go func() {
		_, err, _ := g.do(context.Background(), "k", func(context.Context) (any, error) {
			<-release
			panic("tune exploded")
		})
		initiatorErr <- err
	}()
	inFlight := func() bool {
		g.mu.Lock()
		defer g.mu.Unlock()
		_, ok := g.m["k"]
		return ok
	}
	go func() {
		for !inFlight() {
			runtime.Gosched()
		}
		_, err, _ := g.do(context.Background(), "k", func(context.Context) (any, error) { return nil, nil })
		waiterErr <- err
	}()
	// Wait for the waiter to park, then let the executing goroutine blow
	// up. The waiter's closure must never run: if it did, err would be nil.
	for waiters(&g, "k") < 1 {
		runtime.Gosched()
	}
	close(release)

	if err := <-initiatorErr; err == nil || !strings.Contains(err.Error(), "panicked") {
		t.Fatalf("initiator error = %v, want a panic report", err)
	}
	if err := <-waiterErr; err == nil || !strings.Contains(err.Error(), "panicked") {
		t.Fatalf("waiter error = %v, want a panic report", err)
	}
	// The key must be free again.
	v, err, shared := g.do(context.Background(), "k", func(context.Context) (any, error) { return 7, nil })
	if err != nil || shared || v.(int) != 7 {
		t.Fatalf("key still poisoned: %v, %v, %v", v, err, shared)
	}
	if n := waiters(&g, "k"); n != 0 {
		t.Fatalf("stale flight left behind (%d waiters)", n)
	}
}

// A cancelled waiter abandons only itself: it gets its own ctx.Err()
// immediately (not the flight's eventual result), while the flight runs to
// completion and delivers to the remaining waiters — cancellation can
// neither poison the shared result nor evict the in-flight entry.
func TestFlightGroupCancelledWaiterDoesNotPoisonFlight(t *testing.T) {
	var g flightGroup
	var calls atomic.Int64
	release := make(chan struct{})

	patientVal := make(chan any, 1)
	go func() {
		v, err, _ := g.do(context.Background(), "k", func(context.Context) (any, error) {
			<-release
			return calls.Add(1), nil
		})
		if err != nil {
			t.Error(err)
		}
		patientVal <- v
	}()
	for !func() bool {
		g.mu.Lock()
		defer g.mu.Unlock()
		_, ok := g.m["k"]
		return ok
	}() {
		runtime.Gosched()
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	v, err, shared := g.do(ctx, "k", func(context.Context) (any, error) {
		t.Error("cancelled waiter's closure ran; the flight was already in-flight")
		return nil, nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled waiter: v=%v err=%v, want context.Canceled", v, err)
	}
	if !shared {
		t.Fatal("cancelled waiter reported shared=false; it joined an in-flight call")
	}
	if waited := time.Since(start); waited > 5*time.Second {
		t.Fatalf("cancelled waiter blocked %v; must return promptly", waited)
	}

	// The flight must still be alive and deliver to the patient waiter.
	close(release)
	if got := <-patientVal; got.(int64) != 1 {
		t.Fatalf("patient waiter got %v, want 1", got)
	}
	if calls.Load() != 1 {
		t.Fatalf("fn ran %d times, want 1 (cancellation must not re-run or evict the flight)", calls.Load())
	}
}

// Cancelling the initiating caller must not kill the flight: fn executes on
// a context detached from the initiator's, completes, and fills the group's
// result for concurrent waiters.
func TestFlightGroupInitiatorCancelDetachesExecution(t *testing.T) {
	var g flightGroup
	release := make(chan struct{})
	fnCtxErr := make(chan error, 1)

	ctx, cancel := context.WithCancel(context.Background())
	initiatorErr := make(chan error, 1)
	go func() {
		_, err, _ := g.do(ctx, "k", func(fctx context.Context) (any, error) {
			<-release
			fnCtxErr <- fctx.Err()
			return "done", nil
		})
		initiatorErr <- err
	}()
	for waiters(&g, "k") >= 0 {
		g.mu.Lock()
		_, ok := g.m["k"]
		g.mu.Unlock()
		if ok {
			break
		}
		runtime.Gosched()
	}
	cancel()
	if err := <-initiatorErr; !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled initiator error = %v, want context.Canceled", err)
	}
	// The detached execution must still observe a live context and finish.
	close(release)
	if err := <-fnCtxErr; err != nil {
		t.Fatalf("fn's detached context was cancelled: %v", err)
	}
	// The key drains once the flight completes.
	deadline := time.Now().Add(5 * time.Second)
	for {
		g.mu.Lock()
		_, ok := g.m["k"]
		g.mu.Unlock()
		if !ok {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("flight never released its key after completing")
		}
		runtime.Gosched()
	}
}
