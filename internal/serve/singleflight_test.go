package serve

import (
	"fmt"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
)

func TestFlightGroupCollapsesOneKey(t *testing.T) {
	var g flightGroup
	var calls atomic.Int64
	release := make(chan struct{})
	const waitersWanted = 7

	results := make([]any, waitersWanted+1)
	shareds := make([]bool, waitersWanted+1)
	var wg sync.WaitGroup
	for i := 0; i <= waitersWanted; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, err, shared := g.do("k", func() (any, error) {
				<-release
				return calls.Add(1), nil
			})
			if err != nil {
				t.Error(err)
			}
			results[i], shareds[i] = v, shared
		}(i)
	}
	for waiters(&g, "k") < waitersWanted {
		runtime.Gosched()
	}
	close(release)
	wg.Wait()

	if calls.Load() != 1 {
		t.Fatalf("fn ran %d times, want 1", calls.Load())
	}
	nShared := 0
	for i := range results {
		if results[i].(int64) != 1 {
			t.Fatalf("caller %d got %v, want 1", i, results[i])
		}
		if shareds[i] {
			nShared++
		}
	}
	if nShared != waitersWanted {
		t.Fatalf("%d callers shared, want %d", nShared, waitersWanted)
	}
}

func TestFlightGroupSeparatesKeys(t *testing.T) {
	var g flightGroup
	var calls atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, err, _ := g.do(fmt.Sprintf("k%d", i), func() (any, error) {
				calls.Add(1)
				return nil, nil
			}); err != nil {
				t.Error(err)
			}
		}(i)
	}
	wg.Wait()
	if calls.Load() != 4 {
		t.Fatalf("fn ran %d times, want 4 (distinct keys must not collapse)", calls.Load())
	}
}

func TestFlightGroupPropagatesErrors(t *testing.T) {
	var g flightGroup
	wantErr := fmt.Errorf("tune failed")
	if _, err, _ := g.do("k", func() (any, error) { return nil, wantErr }); err != wantErr {
		t.Fatalf("err = %v, want %v", err, wantErr)
	}
	// The failed call must not stick: a retry runs fn again.
	v, err, shared := g.do("k", func() (any, error) { return 42, nil })
	if err != nil || shared || v.(int) != 42 {
		t.Fatalf("retry after failure: %v, %v, %v", v, err, shared)
	}
}

// A panicking fn must release its key: the executor re-panics, waiters get
// an error, and the key works again afterwards — a poisoned request cannot
// wedge a long-lived server.
func TestFlightGroupSurvivesPanic(t *testing.T) {
	var g flightGroup
	release := make(chan struct{})
	waiterErr := make(chan error, 1)
	executorPanicked := make(chan any, 1)

	go func() {
		defer func() { executorPanicked <- recover() }()
		g.do("k", func() (any, error) {
			<-release
			panic("tune exploded")
		})
	}()
	inFlight := func() bool {
		g.mu.Lock()
		defer g.mu.Unlock()
		_, ok := g.m["k"]
		return ok
	}
	go func() {
		for !inFlight() {
			runtime.Gosched()
		}
		_, err, _ := g.do("k", func() (any, error) { return nil, nil })
		waiterErr <- err
	}()
	// Wait for the waiter to park, then let the executor blow up. The
	// waiter's closure must never run: if it did, err would be nil.
	for waiters(&g, "k") < 1 {
		runtime.Gosched()
	}
	close(release)

	if r := <-executorPanicked; r == nil {
		t.Fatal("executor's panic was swallowed")
	}
	if err := <-waiterErr; err == nil || !strings.Contains(err.Error(), "panicked") {
		t.Fatalf("waiter error = %v, want a panic report", err)
	}
	// The key must be free again.
	v, err, shared := g.do("k", func() (any, error) { return 7, nil })
	if err != nil || shared || v.(int) != 7 {
		t.Fatalf("key still poisoned: %v, %v, %v", v, err, shared)
	}
	if n := waiters(&g, "k"); n != 0 {
		t.Fatalf("stale flight left behind (%d waiters)", n)
	}
}
