package serve

import (
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"

	"repro/internal/gemm"
	"repro/internal/hw"
	"repro/internal/stats"
	"repro/internal/tuner"
)

// SnapshotVersion is the warm-state snapshot schema generation. A file
// written under any other version is rejected deterministically: the loader
// never guesses at a foreign schema, it falls back to a cold start.
const SnapshotVersion = 1

// snapshotMagic is the file-format discriminator, so a snapshot path pointed
// at an arbitrary JSON file fails loudly as "not a snapshot" rather than as
// a confusing schema mismatch.
const snapshotMagic = "repro-warm-state"

// Snapshot is the portable warm state of a Service: everything a restarted
// replica needs to answer byte-identically to its pre-restart self without
// re-running the offline stage (bandwidth sampling) or any tune — the tuned
// shape-cache entries per primitive, in LRU order, plus the sampled offline
// bandwidth curves that both the predictor and the engine's analytic backend
// evaluate against. The platform/config header binds the state to the
// deployment that produced it: tuned partitions are only valid for the
// platform, GPU count, and search budget they were tuned under.
type Snapshot struct {
	Version        int         `json:"version"`
	Platform       hw.Platform `json:"platform"`
	NGPUs          int         `json:"ngpus"`
	CandidateLimit int         `json:"candidate_limit"`
	// Primitives holds one block per tuner the service has materialized,
	// sorted by primitive name so snapshots of identical state are
	// byte-identical.
	Primitives []SnapshotPrim `json:"primitives"`
}

// SnapshotPrim is one primitive's warm state: the offline bandwidth curve
// and the tuned entries, least recently used first (replaying them in order
// reproduces the LRU recency exactly).
type SnapshotPrim struct {
	Prim    string          `json:"prim"`
	Curve   []stats.Point   `json:"curve"`
	Entries []SnapshotEntry `json:"entries"`
}

// SnapshotEntry is one tuned (shape, imbalance) -> partition row.
type SnapshotEntry struct {
	M         int     `json:"m"`
	N         int     `json:"n"`
	K         int     `json:"k"`
	Imbalance float64 `json:"imbalance"`
	Partition []int   `json:"partition"`
}

// snapshotFile is the on-disk envelope: the payload bytes plus an integrity
// checksum over exactly those bytes. Truncation fails the JSON decode;
// bit-rot fails the checksum; both reject before any payload field is
// trusted.
type snapshotFile struct {
	Magic   string          `json:"magic"`
	Version int             `json:"version"`
	CRC32   string          `json:"crc32"`
	Payload json.RawMessage `json:"payload"`
}

// Snapshot captures the service's current warm state. It is safe under
// concurrent traffic: each tuner's cache is exported under its own lock, so
// the snapshot is a consistent per-primitive view (cross-primitive skew
// under live load is harmless — every entry is individually valid).
func (s *Service) Snapshot() *Snapshot {
	snap := &Snapshot{
		Version:        SnapshotVersion,
		Platform:       s.cfg.Plat,
		NGPUs:          s.cfg.NGPUs,
		CandidateLimit: s.cfg.CandidateLimit,
	}
	s.mu.RLock()
	tuners := make(map[hw.Primitive]*tuner.Tuner, len(s.tuners))
	for p, tn := range s.tuners {
		tuners[p] = tn
	}
	s.mu.RUnlock()
	for p, tn := range tuners {
		block := SnapshotPrim{Prim: p.String(), Curve: tn.Curve.Points()}
		for _, e := range tn.CacheSnapshot() {
			block.Entries = append(block.Entries, SnapshotEntry{
				M:         e.Shape.M,
				N:         e.Shape.N,
				K:         e.Shape.K,
				Imbalance: e.Imbalance,
				Partition: e.Partition,
			})
		}
		snap.Primitives = append(snap.Primitives, block)
	}
	sort.Slice(snap.Primitives, func(i, j int) bool { return snap.Primitives[i].Prim < snap.Primitives[j].Prim })
	return snap
}

// RestoreSnapshot re-admits a snapshot's warm state into the service:
// per-primitive tuners are rebuilt around the snapshotted curves, the tuned
// entries are replayed in LRU order, the engine's analytic backend is seeded
// with the same curves, and every entry's /query reply is pre-encoded — so
// the restored replica answers warm, on the fast path, byte-identically to
// the service that wrote the snapshot.
//
// Validation is all-or-nothing: a version, platform, GPU-count, or
// search-budget mismatch — or any entry that fails the wave-count transfer
// check — rejects the whole snapshot with no state mutated, leaving the
// service to start cold. Restoring is meant for boot; restoring a primitive
// the service has already materialized replaces that tuner wholesale.
func (s *Service) RestoreSnapshot(snap *Snapshot) (restored int, err error) {
	if snap.Version != SnapshotVersion {
		return 0, fmt.Errorf("serve: snapshot version %d, this binary speaks %d", snap.Version, SnapshotVersion)
	}
	if snap.Platform != s.cfg.Plat {
		return 0, fmt.Errorf("serve: snapshot was taken on platform %q, service runs %q", snap.Platform.Name, s.cfg.Plat.Name)
	}
	if snap.NGPUs != s.cfg.NGPUs {
		return 0, fmt.Errorf("serve: snapshot was taken at %d GPUs, service runs %d", snap.NGPUs, s.cfg.NGPUs)
	}
	if snap.CandidateLimit != s.cfg.CandidateLimit {
		// Partitions tuned under a different search budget are valid but
		// not byte-identical to what this service would tune; mixing them
		// with fresh tunes would make answers depend on restart history.
		return 0, fmt.Errorf("serve: snapshot was tuned with candidate limit %d, service uses %d", snap.CandidateLimit, s.cfg.CandidateLimit)
	}

	// Build everything off to the side first: nothing below may touch
	// service state until the whole snapshot has validated.
	type prepared struct {
		prim    hw.Primitive
		tn      *tuner.Tuner
		curve   *stats.Curve
		entries []tuner.CacheEntry
	}
	preps := make([]prepared, 0, len(snap.Primitives))
	seen := make(map[hw.Primitive]bool, len(snap.Primitives))
	for _, block := range snap.Primitives {
		p, err := ParsePrimitive(block.Prim)
		if err != nil {
			return 0, fmt.Errorf("serve: snapshot: %w", err)
		}
		if seen[p] {
			return 0, fmt.Errorf("serve: snapshot holds duplicate state for primitive %v", p)
		}
		seen[p] = true
		if len(block.Curve) == 0 {
			return 0, fmt.Errorf("serve: snapshot primitive %v has no bandwidth curve", p)
		}
		if c := s.cfg.Curves[p]; c != nil && !curveEqual(c.Points(), block.Curve) {
			return 0, fmt.Errorf("serve: snapshot primitive %v curve differs from the configured fleet curve", p)
		}
		curve := stats.NewCurve(block.Curve)
		tn := tuner.NewTunerWithCurve(s.cfg.Plat, s.cfg.NGPUs, p, curve)
		tn.CandidateLimit = s.cfg.CandidateLimit
		tn.CacheCapacity = s.cfg.ShapeCacheSize
		tn.Workers = s.eng.Workers()
		tn.OnEvict = func(shape gemm.Shape, imbalance float64) {
			s.dropEncoded(p, shape, imbalance)
		}
		entries := make([]tuner.CacheEntry, len(block.Entries))
		for i, e := range block.Entries {
			entries[i] = tuner.CacheEntry{
				Shape:     gemm.Shape{M: e.M, N: e.N, K: e.K},
				Imbalance: e.Imbalance,
				Partition: gemm.Partition(e.Partition),
			}
		}
		if err := tn.SeedCache(entries); err != nil {
			return 0, fmt.Errorf("serve: snapshot: %w", err)
		}
		preps = append(preps, prepared{prim: p, tn: tn, curve: curve, entries: entries})
	}

	// Commit: install tuners, seed the engine's analytic curves, and
	// pre-encode every restored answer so the first query after a restart
	// already takes the zero-alloc fast path.
	for _, pr := range preps {
		s.mu.Lock()
		s.tuners[pr.prim] = pr.tn
		s.mu.Unlock()
		s.eng.SeedCurve(s.cfg.Plat, s.cfg.NGPUs, pr.prim, pr.curve)
		for _, e := range pr.entries {
			q := Query{Shape: e.Shape, Prim: pr.prim, Imbalance: e.Imbalance}
			if ans, err := s.answer(pr.tn, q, e.Partition, SourceCache); err == nil {
				s.storeEncoded(q, ans)
			}
			restored++
		}
	}
	s.snapshotRestored.Add(uint64(restored))
	return restored, nil
}

func curveEqual(a, b []stats.Point) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// SaveSnapshotFile writes the service's warm state to path atomically: the
// envelope lands in a temp file in the same directory and renames over the
// target, so a crash mid-save can never leave a truncated snapshot where a
// good one stood — readers see the old complete file or the new complete
// file, nothing in between.
func (s *Service) SaveSnapshotFile(path string) error {
	payload, err := json.Marshal(s.Snapshot())
	if err != nil {
		return fmt.Errorf("serve: encoding snapshot: %w", err)
	}
	out, err := json.Marshal(snapshotFile{
		Magic:   snapshotMagic,
		Version: SnapshotVersion,
		CRC32:   fmt.Sprintf("%08x", crc32.ChecksumIEEE(payload)),
		Payload: payload,
	})
	if err != nil {
		return fmt.Errorf("serve: encoding snapshot envelope: %w", err)
	}
	out = append(out, '\n')
	tmp, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("serve: saving snapshot: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(out); err != nil {
		tmp.Close()
		return fmt.Errorf("serve: saving snapshot: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("serve: saving snapshot: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("serve: saving snapshot: %w", err)
	}
	return nil
}

// LoadSnapshotFile restores warm state from a snapshot file written by
// SaveSnapshotFile. Every failure — unreadable file, truncation, checksum
// mismatch, wrong magic/version, platform/config mismatch, corrupt entries —
// is deterministic, mutates nothing, and bumps the snapshot_rejects counter
// before returning: the caller logs the error and the service simply starts
// cold, exactly as if no snapshot existed.
func (s *Service) LoadSnapshotFile(path string) (restored int, err error) {
	defer func() {
		if err != nil {
			s.snapshotRejects.Add(1)
		}
	}()
	raw, err := os.ReadFile(path)
	if err != nil {
		return 0, fmt.Errorf("serve: reading snapshot: %w", err)
	}
	var env snapshotFile
	if err := json.Unmarshal(raw, &env); err != nil {
		return 0, fmt.Errorf("serve: snapshot %s is corrupt (truncated or not JSON): %w", path, err)
	}
	if env.Magic != snapshotMagic {
		return 0, fmt.Errorf("serve: %s is not a warm-state snapshot (magic %q)", path, env.Magic)
	}
	if env.Version != SnapshotVersion {
		return 0, fmt.Errorf("serve: snapshot %s is version %d, this binary speaks %d", path, env.Version, SnapshotVersion)
	}
	if sum := fmt.Sprintf("%08x", crc32.ChecksumIEEE(env.Payload)); sum != env.CRC32 {
		return 0, fmt.Errorf("serve: snapshot %s failed its checksum (%s, recorded %s)", path, sum, env.CRC32)
	}
	var snap Snapshot
	if err := json.Unmarshal(env.Payload, &snap); err != nil {
		return 0, fmt.Errorf("serve: snapshot %s payload is corrupt: %w", path, err)
	}
	return s.RestoreSnapshot(&snap)
}
