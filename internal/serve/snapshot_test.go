package serve

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/gemm"
	"repro/internal/hw"
)

func getBody(t *testing.T, url string) []byte {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d: %s", url, resp.StatusCode, body)
	}
	return body
}

// dropAllEncoded empties the pre-encoded answer map so the next request is
// forced through the slow (encode-per-request) path.
func dropAllEncoded(s *Service) {
	s.ansMu.Lock()
	s.answers = make(map[encodedKey][]byte)
	s.ansMu.Unlock()
}

// The pre-encoded fast path must emit the same bytes the slow path renders.
func TestQueryFastPathBytesMatchSlowPath(t *testing.T) {
	s := testService(t)
	shape := gemm.Shape{M: 2048, N: 8192, K: 4096}
	if err := s.Warm(context.Background(), []hw.Primitive{hw.AllReduce}, []gemm.Shape{shape}, 0); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(Handler(s))
	defer srv.Close()
	url := srv.URL + "/query?m=2048&n=8192&k=4096&prim=AR"

	fast := getBody(t, url)
	if got := s.Stats().EncodedHits; got != 1 {
		t.Fatalf("hits_encoded = %d after a warmed query, want 1", got)
	}
	dropAllEncoded(s)
	slow := getBody(t, url)
	if got := s.Stats().EncodedHits; got != 1 {
		t.Fatalf("hits_encoded = %d, the second query must not take the fast path", got)
	}
	if string(fast) != string(slow) {
		t.Fatalf("fast path bytes differ from slow path:\nfast: %s\nslow: %s", fast, slow)
	}
}

// A miss that tunes must pre-encode its answer so the next identical query
// takes the fast path — and the fast-path bytes must match the cache-hit
// reply the slow path would render (Source "cache", not "tuned").
func TestTunedQueryPreEncodesNextHit(t *testing.T) {
	s := testService(t)
	srv := httptest.NewServer(Handler(s))
	defer srv.Close()
	url := srv.URL + "/query?m=4096&n=8192&k=4096&prim=A2A&imbalance=2"

	first := getBody(t, url) // cold: tunes, stores the encoding
	second := getBody(t, url)
	if got := s.Stats().EncodedHits; got != 1 {
		t.Fatalf("hits_encoded = %d after tune+hit, want 1", got)
	}
	dropAllEncoded(s)
	third := getBody(t, url) // slow-path cache hit
	if string(second) != string(third) {
		t.Fatalf("fast path bytes differ from slow-path cache hit:\nfast: %s\nslow: %s", second, third)
	}
	if string(first) == string(second) {
		t.Fatal("first (tuned) reply should differ from cache hits in its source field")
	}
}

// Re-tuning a shape must invalidate its pre-encoded reply, not serve stale
// bytes.
func TestRetuneDropsStaleEncoding(t *testing.T) {
	s := testService(t)
	shape := gemm.Shape{M: 2048, N: 8192, K: 4096}
	if err := s.Warm(context.Background(), []hw.Primitive{hw.AllReduce}, []gemm.Shape{shape}, 0); err != nil {
		t.Fatal(err)
	}
	if n := s.encodedLen(); n != 1 {
		t.Fatalf("warm_encoded = %d, want 1", n)
	}
	// Warm again: the tuner replaces the entry, OnEvict fires, and the
	// encoding is re-stored afterwards — never left stale in between.
	if err := s.Warm(context.Background(), []hw.Primitive{hw.AllReduce}, []gemm.Shape{shape}, 0); err != nil {
		t.Fatal(err)
	}
	if n := s.encodedLen(); n != 1 {
		t.Fatalf("warm_encoded = %d after re-warm, want 1", n)
	}
}

// The service-layer warm path must not allocate: the reply bytes were
// encoded at tune time and are handed out as-is.
func TestWarmQueryEncodedAllocs(t *testing.T) {
	s := testService(t)
	shape := gemm.Shape{M: 2048, N: 8192, K: 4096}
	if err := s.Warm(context.Background(), []hw.Primitive{hw.AllReduce}, []gemm.Shape{shape}, 0); err != nil {
		t.Fatal(err)
	}
	q := Query{Shape: shape, Prim: hw.AllReduce}
	allocs := testing.AllocsPerRun(200, func() {
		if _, ok := s.QueryEncoded(q); !ok {
			t.Fatal("warmed query missed the encoded fast path")
		}
	})
	if allocs > 2 {
		t.Fatalf("warm encoded query allocates %.1f times, want <= 2", allocs)
	}
}

// Restart drill: a service restored from a snapshot must answer every
// query byte-identically to the service that wrote it — warmed shapes and
// tuned-on-demand shapes alike — without re-tuning anything.
func TestSnapshotRestoreBytesIdentical(t *testing.T) {
	a := testService(t)
	warm := []gemm.Shape{{M: 2048, N: 8192, K: 4096}, {M: 4096, N: 8192, K: 4096}}
	if err := a.Warm(context.Background(), []hw.Primitive{hw.AllReduce}, warm, 0); err != nil {
		t.Fatal(err)
	}
	// One shape arrives through live traffic rather than warming, on a
	// second primitive with a skewed imbalance.
	if _, err := a.Query(context.Background(), Query{Shape: gemm.Shape{M: 4096, N: 8192, K: 8192}, Prim: hw.AllToAll, Imbalance: 4}); err != nil {
		t.Fatal(err)
	}

	urls := []string{
		"/query?m=2048&n=8192&k=4096&prim=AR",
		"/query?m=4096&n=8192&k=4096&prim=AR",
		"/query?m=4096&n=8192&k=8192&prim=A2A&imbalance=4",
	}
	srvA := httptest.NewServer(Handler(a))
	before := make([][]byte, len(urls))
	for i, u := range urls {
		before[i] = getBody(t, srvA.URL+u)
	}
	srvA.Close()

	path := filepath.Join(t.TempDir(), "warm.json")
	if err := a.SaveSnapshotFile(path); err != nil {
		t.Fatal(err)
	}

	b := testService(t)
	restored, err := b.LoadSnapshotFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if restored != 3 {
		t.Fatalf("restored %d entries, want 3", restored)
	}
	srvB := httptest.NewServer(Handler(b))
	defer srvB.Close()
	for i, u := range urls {
		after := getBody(t, srvB.URL+u)
		if string(after) != string(before[i]) {
			t.Fatalf("%s: restored reply differs from pre-restart reply:\nbefore: %s\nafter:  %s", u, before[i], after)
		}
	}
	st := b.Stats()
	if st.Tunes != 0 {
		t.Fatalf("restored service re-tuned %d times answering snapshotted queries", st.Tunes)
	}
	if st.SnapshotRestored != 3 || st.ShapesCached != 3 || st.WarmEncoded != 3 {
		t.Fatalf("restored stats = %+v, want 3 restored / 3 cached / 3 encoded", st)
	}
	if st.EncodedHits != uint64(len(urls)) {
		t.Fatalf("hits_encoded = %d, every restored query should take the fast path", st.EncodedHits)
	}
}

// Every corrupt or mismatched snapshot must load as a cold start: an error,
// a bumped reject counter, no partial state, and a service that still
// answers queries.
func TestSnapshotRejectsLoadCold(t *testing.T) {
	src := testService(t)
	if err := src.Warm(context.Background(), []hw.Primitive{hw.AllReduce}, []gemm.Shape{{M: 2048, N: 8192, K: 4096}}, 0); err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	good := filepath.Join(dir, "good.json")
	if err := src.SaveSnapshotFile(good); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(good)
	if err != nil {
		t.Fatal(err)
	}

	write := func(name string, data []byte) string {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, data, 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	truncated := write("truncated.json", raw[:len(raw)/2])
	flipped := append([]byte(nil), raw...)
	// Flip a bit inside the payload body (past the envelope header) so the
	// JSON still parses but the checksum no longer matches.
	for i := len(flipped) / 2; i < len(flipped); i++ {
		if flipped[i] >= '1' && flipped[i] <= '8' {
			flipped[i]++
			break
		}
	}
	bitrot := write("bitrot.json", flipped)
	notSnapshot := write("notes.json", []byte(`{"magic":"something-else","version":1,"crc32":"0","payload":{}}`))

	cases := map[string]func(s *Service) string{
		"missing file": func(s *Service) string { return filepath.Join(dir, "nope.json") },
		"truncated":    func(s *Service) string { return truncated },
		"bit rot":      func(s *Service) string { return bitrot },
		"wrong magic":  func(s *Service) string { return notSnapshot },
		"wrong platform": func(s *Service) string {
			other, err := New(Config{Plat: hw.H100NVLink(), NGPUs: 2, CandidateLimit: 64})
			if err != nil {
				t.Fatal(err)
			}
			if err := other.Warm(context.Background(), []hw.Primitive{hw.AllReduce}, []gemm.Shape{{M: 2048, N: 8192, K: 4096}}, 0); err != nil {
				t.Fatal(err)
			}
			p := filepath.Join(dir, "h100.json")
			if err := other.SaveSnapshotFile(p); err != nil {
				t.Fatal(err)
			}
			return p
		},
		"wrong gpu count": func(s *Service) string {
			other, err := New(Config{Plat: hw.RTX4090PCIe(), NGPUs: 4, CandidateLimit: 64})
			if err != nil {
				t.Fatal(err)
			}
			p := filepath.Join(dir, "gpus.json")
			if err := other.SaveSnapshotFile(p); err != nil {
				t.Fatal(err)
			}
			return p
		},
		"wrong candidate limit": func(s *Service) string {
			other, err := New(Config{Plat: hw.RTX4090PCIe(), NGPUs: 2, CandidateLimit: 32})
			if err != nil {
				t.Fatal(err)
			}
			p := filepath.Join(dir, "limit.json")
			if err := other.SaveSnapshotFile(p); err != nil {
				t.Fatal(err)
			}
			return p
		},
	}
	for name, makePath := range cases {
		t.Run(name, func(t *testing.T) {
			s := testService(t)
			restored, err := s.LoadSnapshotFile(makePath(s))
			if err == nil {
				t.Fatal("corrupt snapshot loaded without error")
			}
			if restored != 0 {
				t.Fatalf("corrupt snapshot restored %d entries", restored)
			}
			st := s.Stats()
			if st.SnapshotRejects != 1 {
				t.Fatalf("snapshot_rejects = %d, want 1", st.SnapshotRejects)
			}
			if st.ShapesCached != 0 || st.WarmEncoded != 0 || st.SnapshotRestored != 0 {
				t.Fatalf("rejected snapshot left partial state: %+v", st)
			}
			// Cold fallback still serves.
			if _, err := s.Query(context.Background(), Query{Shape: gemm.Shape{M: 2048, N: 8192, K: 4096}, Prim: hw.AllReduce}); err != nil {
				t.Fatalf("service cannot answer after a rejected snapshot: %v", err)
			}
		})
	}
}

// Version skew is detected from the envelope before the payload is trusted.
func TestSnapshotVersionMismatchRejected(t *testing.T) {
	src := testService(t)
	if err := src.Warm(context.Background(), []hw.Primitive{hw.AllReduce}, []gemm.Shape{{M: 2048, N: 8192, K: 4096}}, 0); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "warm.json")
	if err := src.SaveSnapshotFile(path); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	skewed := []byte(`{"magic":"repro-warm-state","version":99` + string(raw[len(`{"magic":"repro-warm-state","version":1`):]))
	if err := os.WriteFile(path, skewed, 0o644); err != nil {
		t.Fatal(err)
	}
	s := testService(t)
	if _, err := s.LoadSnapshotFile(path); err == nil {
		t.Fatal("future-version snapshot accepted")
	}
	if st := s.Stats(); st.SnapshotRejects != 1 || st.ShapesCached != 0 {
		t.Fatalf("version skew left state %+v", st)
	}
}

// Saving must be atomic: the target is either the old file or the new one,
// and a save into a fresh directory leaves no temp litter.
func TestSaveSnapshotFileAtomic(t *testing.T) {
	s := testService(t)
	if err := s.Warm(context.Background(), []hw.Primitive{hw.AllReduce}, []gemm.Shape{{M: 2048, N: 8192, K: 4096}}, 0); err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "warm.json")
	if err := s.SaveSnapshotFile(path); err != nil {
		t.Fatal(err)
	}
	if err := s.SaveSnapshotFile(path); err != nil { // overwrite in place
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Name() != "warm.json" {
		t.Fatalf("snapshot dir holds %v, want exactly warm.json", entries)
	}
	if _, err := testService(t).LoadSnapshotFile(path); err != nil {
		t.Fatalf("re-saved snapshot does not load: %v", err)
	}
}
