package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"reflect"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/metrics"
)

// statsGoldenJSON is the exact /stats encoding (writeJSON's two-space
// indent) of a fully populated pre-metrics-refactor Stats, captured before
// the stats plane moved onto internal/metrics. The refactor's wire contract
// is byte-for-byte compatibility for every pre-existing key: the new
// latency/tenants keys appear only once a query or labeled request has
// been observed, so this snapshot — which has neither — must still encode
// to these bytes exactly.
const statsGoldenJSON = `{
  "shard": "1/4",
  "hits": 1,
  "misses": 2,
  "collapsed": 3,
  "tunes": 4,
  "shapes_cached": 5,
  "hits_encoded": 6,
  "warm_encoded": 7,
  "snapshot_restored": 8,
  "snapshot_rejects": 9,
  "swept_items_analytic": 10,
  "swept_items_des": 11,
  "cancelled_queries": 12,
  "cancelled_sweep_items": 13,
  "deadline_exceeded": 14,
  "primitives": [
    "AllReduce",
    "AllToAll"
  ],
  "engine": {
    "hits": 15,
    "misses": 16,
    "size": 17,
    "capacity": 18,
    "workers": 19
  }
}
`

func goldenStats() Stats {
	return Stats{
		Shard: "1/4", Hits: 1, Misses: 2, Collapsed: 3, Tunes: 4, ShapesCached: 5,
		EncodedHits: 6, WarmEncoded: 7, SnapshotRestored: 8, SnapshotRejects: 9,
		SweptItemsAnalytic: 10, SweptItemsDES: 11,
		CancelledQueries: 12, CancelledSweepItems: 13, DeadlineExceeded: 14,
		Primitives: []string{"AllReduce", "AllToAll"},
		Engine:     engine.Stats{Hits: 15, Misses: 16, Size: 17, Capacity: 18, Workers: 19},
	}
}

func TestStatsWireGolden(t *testing.T) {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(goldenStats()); err != nil {
		t.Fatal(err)
	}
	if got := buf.String(); got != statsGoldenJSON {
		t.Fatalf("/stats wire format changed for pre-existing keys:\ngot:\n%s\nwant:\n%s", got, statsGoldenJSON)
	}
}

func TestStatsWireGoldenSurvivesMerge(t *testing.T) {
	// Merging with a zero snapshot must not disturb the wire form either —
	// no materialized empty latency/tenants, no reordered primitives.
	merged := goldenStats().Merge(Stats{})
	merged.Shard = "1/4" // the merge drops per-replica labels by design
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(merged); err != nil {
		t.Fatal(err)
	}
	if got := buf.String(); got != statsGoldenJSON {
		t.Fatalf("zero-merge changed the wire form:\ngot:\n%s\nwant:\n%s", got, statsGoldenJSON)
	}
}

// fillNumeric walks v setting every settable numeric field to a distinct
// nonzero value, materializing one entry in maps and one element in numeric
// slices so nested numeric fields get visited too.
func fillNumeric(v reflect.Value, next *uint64) {
	switch v.Kind() {
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		*next++
		v.SetInt(int64(*next))
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
		*next++
		v.SetUint(*next)
	case reflect.Float32, reflect.Float64:
		*next++
		v.SetFloat(float64(*next))
	case reflect.Struct:
		for i := 0; i < v.NumField(); i++ {
			fillNumeric(v.Field(i), next)
		}
	case reflect.Pointer:
		v.Set(reflect.New(v.Type().Elem()))
		fillNumeric(v.Elem(), next)
	case reflect.Map:
		elem := reflect.New(v.Type().Elem()).Elem()
		fillNumeric(elem, next)
		m := reflect.MakeMap(v.Type())
		m.SetMapIndex(reflect.ValueOf("tenant-a"), elem)
		v.Set(m)
	case reflect.Slice:
		if v.Type().Elem().Kind() == reflect.String {
			v.Set(reflect.ValueOf([]string{"AllReduce"}))
			return
		}
		elem := reflect.New(v.Type().Elem()).Elem()
		fillNumeric(elem, next)
		s := reflect.MakeSlice(v.Type(), 1, 1)
		s.Index(0).Set(elem)
		v.Set(s)
	}
}

// checkDoubled asserts every numeric field of got equals twice the matching
// field of orig, reporting the offending field path — the test that catches
// the historical "added a counter, forgot the merge" failure mode for any
// future hand-added Stats field.
func checkDoubled(t *testing.T, path string, orig, got reflect.Value) {
	t.Helper()
	switch orig.Kind() {
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		if got.Int() != 2*orig.Int() {
			t.Errorf("%s: merged value %d != 2 x %d — field does not participate in Merge", path, got.Int(), orig.Int())
		}
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
		if got.Uint() != 2*orig.Uint() {
			t.Errorf("%s: merged value %d != 2 x %d — field does not participate in Merge", path, got.Uint(), orig.Uint())
		}
	case reflect.Float32, reflect.Float64:
		if got.Float() != 2*orig.Float() {
			t.Errorf("%s: merged value %v != 2 x %v — field does not participate in Merge", path, got.Float(), orig.Float())
		}
	case reflect.Struct:
		for i := 0; i < orig.NumField(); i++ {
			checkDoubled(t, path+"."+orig.Type().Field(i).Name, orig.Field(i), got.Field(i))
		}
	case reflect.Pointer:
		if orig.IsNil() {
			return
		}
		if got.IsNil() {
			t.Errorf("%s: merged pointer is nil", path)
			return
		}
		checkDoubled(t, path, orig.Elem(), got.Elem())
	case reflect.Map:
		for _, k := range orig.MapKeys() {
			gv := got.MapIndex(k)
			if !gv.IsValid() {
				t.Errorf("%s[%v]: key missing after merge", path, k)
				continue
			}
			checkDoubled(t, fmt.Sprintf("%s[%v]", path, k), orig.MapIndex(k), gv)
		}
	case reflect.Slice:
		if orig.Type().Elem().Kind() == reflect.String {
			return // string sets union, not sum
		}
		if got.Len() < orig.Len() {
			t.Errorf("%s: merged slice shorter (%d) than original (%d)", path, got.Len(), orig.Len())
			return
		}
		for i := 0; i < orig.Len(); i++ {
			checkDoubled(t, fmt.Sprintf("%s[%d]", path, i), orig.Index(i), got.Index(i))
		}
	}
}

// TestEveryNumericStatsFieldMerges pins the refactor's core guarantee:
// every numeric field of Stats — counters, the embedded engine stats,
// histogram buckets, per-tenant maps, fields added next year — participates
// in Merge. Self-merge must double every one of them; a field the merge
// forgot would come back unchanged and fail with its full path.
func TestEveryNumericStatsFieldMerges(t *testing.T) {
	var st Stats
	next := uint64(0)
	fillNumeric(reflect.ValueOf(&st).Elem(), &next)
	if next < 20 {
		t.Fatalf("filler visited only %d numeric fields; Stats should have at least 20", next)
	}
	merged := st.Merge(st)
	checkDoubled(t, "Stats", reflect.ValueOf(st), reflect.ValueOf(merged))
}

// TestTenantMergeAcrossReplicas checks the per-tenant plane merges the way
// a router does: disjoint tenants union, shared tenants sum counters and
// add histograms bucket-wise — so fleet-level per-tenant percentiles are
// exactly what one process would have measured.
func TestTenantMergeAcrossReplicas(t *testing.T) {
	var h1, h2, both metrics.Histogram
	for i := 0; i < 60; i++ {
		h1.Observe(50_000) // 50µs
		both.Observe(50_000)
	}
	for i := 0; i < 40; i++ {
		h2.Observe(3_000_000) // 3ms
		both.Observe(3_000_000)
	}
	a := Stats{Tenants: map[string]TenantStats{
		"t0": {Queries: 60, Hits: 50, Latency: h1.Snapshot()},
		"t1": {Queries: 1},
	}}
	b := Stats{Tenants: map[string]TenantStats{
		"t0": {Queries: 40, Hits: 10, Latency: h2.Snapshot()},
		"t2": {Queries: 2},
	}}
	m := a.Merge(b)
	if len(m.Tenants) != 3 {
		t.Fatalf("merged tenant set = %v; want t0, t1, t2", m.Tenants)
	}
	t0 := m.Tenants["t0"]
	if t0.Queries != 100 || t0.Hits != 60 {
		t.Fatalf("t0 counters = %d queries, %d hits; want 100, 60", t0.Queries, t0.Hits)
	}
	if !reflect.DeepEqual(t0.Latency, both.Snapshot()) {
		t.Fatalf("t0 merged histogram differs from the single-process histogram:\nmerged: %+v\nsingle: %+v", t0.Latency, both.Snapshot())
	}
	wire, err := json.Marshal(t0)
	if err != nil {
		t.Fatal(err)
	}
	var decoded map[string]json.RawMessage
	if err := json.Unmarshal(wire, &decoded); err != nil {
		t.Fatal(err)
	}
	if string(decoded["hit_rate"]) != "0.6" {
		t.Fatalf("merged hit_rate = %s; want 0.6", decoded["hit_rate"])
	}
}

// TestStatsJSONRoundTripStable pins the derived-field design: percentiles
// and hit rates recompute from mergeable state on marshal, so a /stats body
// decoded by a router and re-encoded (the per_shard passthrough) is
// byte-identical.
func TestStatsJSONRoundTripStable(t *testing.T) {
	var h metrics.Histogram
	for _, ns := range []int64{40_000, 90_000, 2_000_000, 45_000_000} {
		h.Observe(time.Duration(ns))
	}
	snap := h.Snapshot()
	st := goldenStats()
	st.Latency = &snap
	st.Tenants = map[string]TenantStats{"t0": {Queries: 4, Hits: 3, Latency: h.Snapshot()}}
	first, err := json.Marshal(st)
	if err != nil {
		t.Fatal(err)
	}
	var back Stats
	if err := json.Unmarshal(first, &back); err != nil {
		t.Fatal(err)
	}
	second, err := json.Marshal(back)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first, second) {
		t.Fatalf("stats round trip not byte-stable:\nfirst:  %s\nsecond: %s", first, second)
	}
}
