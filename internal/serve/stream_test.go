package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
)

// postSweepAccept posts a sweep request with an explicit Accept header.
func postSweepAccept(t *testing.T, url, accept string, req SweepRequest) *http.Response {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	hreq, err := http.NewRequest(http.MethodPost, url+"/sweep", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	hreq.Header.Set("Content-Type", "application/json")
	if accept != "" {
		hreq.Header.Set("Accept", accept)
	}
	resp, err := http.DefaultClient.Do(hreq)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// decodeFrames drains an NDJSON sweep stream into its frame sequence.
func decodeFrames(t *testing.T, resp *http.Response) []SweepFrame {
	t.Helper()
	defer resp.Body.Close()
	dec := json.NewDecoder(resp.Body)
	var frames []SweepFrame
	for dec.More() {
		var fr SweepFrame
		if err := dec.Decode(&fr); err != nil {
			t.Fatalf("decoding frame %d: %v", len(frames), err)
		}
		frames = append(frames, fr)
	}
	return frames
}

// The v2 stream: a client sending Accept: application/x-ndjson gets one
// result frame per item, indices ascending, each labeled with its fidelity,
// then a terminal done frame counting them — and the streamed results are
// byte-identical to the buffered v1 reply over the same chunk.
func TestHandlerSweepStreamsV2Frames(t *testing.T) {
	s := testService(t)
	srv := httptest.NewServer(Handler(s))
	defer srv.Close()

	items := []SweepItem{
		{M: 2048, N: 8192, K: 4096, Prim: "AR"},
		{M: 4096, N: 8192, K: 8192, Prim: "AR"},
		{M: 8192, N: 8192, K: 4096, Prim: "AR"},
	}
	resp := postSweepAccept(t, srv.URL, ContentTypeNDJSON, SweepRequest{Items: items})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != ContentTypeNDJSON {
		t.Fatalf("Content-Type = %q, want %q", ct, ContentTypeNDJSON)
	}
	frames := decodeFrames(t, resp)
	if len(frames) != len(items)+1 {
		t.Fatalf("%d frames for %d items, want one per item plus done", len(frames), len(items))
	}
	results := make([]SweepResult, len(items))
	for i, fr := range frames[:len(items)] {
		if fr.Frame != FrameResult || fr.Result == nil {
			t.Fatalf("frame %d = %+v, want a result frame", i, fr)
		}
		if fr.Index != i {
			t.Fatalf("frame %d carries index %d; flat chunks stream in ascending order", i, fr.Index)
		}
		if fr.Fidelity != FidelityDES || fr.Result.Fidelity != FidelityDES {
			t.Fatalf("frame %d fidelity = %q/%q, want %q on both the frame and the result",
				i, fr.Fidelity, fr.Result.Fidelity, FidelityDES)
		}
		results[i] = *fr.Result
	}
	done := frames[len(items)]
	if done.Frame != FrameDone || done.Count != len(items) {
		t.Fatalf("terminal frame = %+v, want done counting %d", done, len(items))
	}

	// v1 and v2 must be the same results on the wire, byte for byte.
	ref, err := s.CollectSweep(context.Background(), SweepRequest{Items: items})
	if err != nil {
		t.Fatal(err)
	}
	got, err := json.Marshal(results)
	if err != nil {
		t.Fatal(err)
	}
	want, err := json.Marshal(ref)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("streamed results diverge from the buffered CollectSweep reply")
	}
}

// Protocol negotiation: the stream engages on either the Accept header or
// the request's "stream" field, and a plain v1 POST keeps getting the
// buffered JSON body it always got.
func TestHandlerSweepStreamNegotiation(t *testing.T) {
	s := testService(t)
	srv := httptest.NewServer(Handler(s))
	defer srv.Close()
	items := []SweepItem{{M: 2048, N: 8192, K: 4096, Prim: "AR"}}

	// v1: no Accept, no stream field — buffered JSON.
	resp := postSweepAccept(t, srv.URL, "", SweepRequest{Items: items})
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		t.Fatalf("v1 Content-Type = %q, want application/json", ct)
	}
	var sr SweepResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(sr.Results) != 1 {
		t.Fatalf("v1 reply carries %d results, want 1", len(sr.Results))
	}

	// v2 via the body field, no Accept header.
	resp = postSweepAccept(t, srv.URL, "", SweepRequest{Stream: true, Items: items})
	if ct := resp.Header.Get("Content-Type"); ct != ContentTypeNDJSON {
		t.Fatalf("stream:true Content-Type = %q, want %q", ct, ContentTypeNDJSON)
	}
	frames := decodeFrames(t, resp)
	if len(frames) != 2 || frames[0].Frame != FrameResult || frames[1].Frame != FrameDone {
		t.Fatalf("stream:true frames = %+v, want result+done", frames)
	}

	// v2 via an Accept list that merely includes ndjson.
	resp = postSweepAccept(t, srv.URL, "application/json, "+ContentTypeNDJSON, SweepRequest{Items: items})
	if ct := resp.Header.Get("Content-Type"); ct != ContentTypeNDJSON {
		t.Fatalf("Accept-list Content-Type = %q, want %q", ct, ContentTypeNDJSON)
	}
	resp.Body.Close()
}

// A chunk failing mid-stream has already committed its 200: the failure
// arrives as a terminal error frame carrying the salvage count, the failing
// item's index, and the retryable classification — here an internal tuner
// failure (5xx-equivalent, retryable) after one item completed.
func TestHandlerSweepStreamErrorFrameCarriesSalvage(t *testing.T) {
	s := testService(t)
	var tunes atomic.Int64
	s.tuneHook = func() error {
		if tunes.Add(1) >= 2 {
			return errors.New("injected crash on the second tune")
		}
		return nil
	}
	srv := httptest.NewServer(Handler(s))
	defer srv.Close()

	items := []SweepItem{
		{M: 2048, N: 8192, K: 4096, Prim: "AR"},
		{M: 4096, N: 8192, K: 8192, Prim: "AR"}, // distinct shape: second tune fails
	}
	resp := postSweepAccept(t, srv.URL, ContentTypeNDJSON, SweepRequest{SweepSpec: SweepSpec{Tune: true}, Items: items})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d; a v2 stream commits 200 before executing", resp.StatusCode)
	}
	frames := decodeFrames(t, resp)
	if len(frames) != 2 {
		t.Fatalf("%d frames, want the salvaged result plus the error frame", len(frames))
	}
	if frames[0].Frame != FrameResult || frames[0].Index != 0 {
		t.Fatalf("frame 0 = %+v, want item 0's salvaged result", frames[0])
	}
	ef := frames[1]
	if ef.Frame != FrameError || ef.Error == nil {
		t.Fatalf("terminal frame = %+v, want an error frame", ef)
	}
	if ef.Salvaged != 1 {
		t.Fatalf("salvaged = %d, want 1", ef.Salvaged)
	}
	if !ef.Error.Retryable {
		t.Fatal("internal failure not marked retryable in the error frame")
	}
	if ef.Error.Index == nil || *ef.Error.Index != 1 {
		t.Fatalf("error frame index = %v, want 1", ef.Error.Index)
	}
	if !strings.Contains(ef.Error.Message, "injected crash") {
		t.Fatalf("error frame %q does not name the cause", ef.Error.Message)
	}
}

// Deterministic rejections keep their classification on the stream: a bad
// item yields an error frame with retryable=false, so a ring client rebuilds
// the same non-retryable QueryError a 4xx status used to carry.
func TestHandlerSweepStreamErrorFrameNonRetryable(t *testing.T) {
	s := testService(t)
	srv := httptest.NewServer(Handler(s))
	defer srv.Close()

	items := []SweepItem{
		{M: 2048, N: 8192, K: 4096, Prim: "AR"},
		{M: 0, N: 8192, K: 4096, Prim: "AR"}, // deterministic rejection
	}
	resp := postSweepAccept(t, srv.URL, ContentTypeNDJSON, SweepRequest{Items: items})
	frames := decodeFrames(t, resp)
	if len(frames) != 2 {
		t.Fatalf("%d frames, want item 0's result plus the error frame", len(frames))
	}
	ef := frames[1]
	if ef.Frame != FrameError || ef.Error == nil {
		t.Fatalf("terminal frame = %+v, want an error frame", ef)
	}
	if ef.Error.Retryable {
		t.Fatal("deterministic rejection marked retryable on the stream")
	}
	if ef.Error.Index == nil || *ef.Error.Index != 1 {
		t.Fatalf("error frame index = %v, want 1", ef.Error.Index)
	}
	if ef.Salvaged != 1 {
		t.Fatalf("salvaged = %d, want item 0 delivered before the rejection", ef.Salvaged)
	}
}

// A mixed-fidelity chunk streams too: both tiers' frames arrive (analytic
// keepers and DES winners), every frame labeled, and the merged stream is
// byte-identical to the buffered mixed reply.
func TestHandlerSweepStreamsMixedFidelity(t *testing.T) {
	s := testService(t)
	srv := httptest.NewServer(Handler(s))
	defer srv.Close()

	var items []SweepItem
	for _, m := range []int{1024, 2048, 4096, 8192} {
		for _, k := range []int{4096, 8192} {
			items = append(items, SweepItem{M: m, N: 8192, K: k, Prim: "AR"})
		}
	}
	resp := postSweepAccept(t, srv.URL, ContentTypeNDJSON, SweepRequest{SweepSpec: SweepSpec{Fidelity: FidelityMixed}, Items: items})
	frames := decodeFrames(t, resp)
	if frames[len(frames)-1].Frame != FrameDone {
		t.Fatalf("terminal frame = %+v, want done", frames[len(frames)-1])
	}
	results := make([]SweepResult, len(items))
	seen := make([]bool, len(items))
	nDES, nAnalytic := 0, 0
	for _, fr := range frames[:len(frames)-1] {
		if fr.Frame != FrameResult || fr.Result == nil {
			t.Fatalf("frame %+v, want a result frame", fr)
		}
		if seen[fr.Index] {
			t.Fatalf("index %d streamed twice", fr.Index)
		}
		seen[fr.Index] = true
		if fr.Fidelity != fr.Result.Fidelity {
			t.Fatalf("frame fidelity %q disagrees with its result's %q", fr.Fidelity, fr.Result.Fidelity)
		}
		switch fr.Fidelity {
		case FidelityDES:
			nDES++
		case FidelityAnalytic:
			nAnalytic++
		default:
			t.Fatalf("frame labeled %q", fr.Fidelity)
		}
		results[fr.Index] = *fr.Result
	}
	if nDES == 0 || nAnalytic == 0 {
		t.Fatalf("mixed stream carried %d des and %d analytic frames; both tiers must appear", nDES, nAnalytic)
	}
	ref, err := s.CollectSweep(context.Background(), SweepRequest{SweepSpec: SweepSpec{Fidelity: FidelityMixed}, Items: items})
	if err != nil {
		t.Fatal(err)
	}
	got, err := json.Marshal(results)
	if err != nil {
		t.Fatal(err)
	}
	want, err := json.Marshal(ref)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("mixed stream diverges from the buffered CollectSweep reply")
	}
}
