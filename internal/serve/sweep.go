package serve

import (
	"errors"
	"fmt"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/gemm"
	"repro/internal/sim"
)

// Wire-level fidelity labels. FidelityDES and FidelityAnalytic name the two
// execution backends (see core.Fidelity); FidelityMixed is a sweep-level
// policy — run the grid analytically, confirm the top-k per rank cell on
// the simulator — valid on a SweepRequest but never on an individual item
// or result, since every execution is ultimately one of the two backends.
const (
	FidelityDES      = string(core.FidelityDES)
	FidelityAnalytic = string(core.FidelityAnalytic)
	FidelityMixed    = "mixed"
)

// SweepItem is one (shape, primitive, imbalance) cell of a sweep chunk, in
// wire form: the body a sweep coordinator POSTs to a replica's /sweep.
type SweepItem struct {
	M         int     `json:"m"`
	N         int     `json:"n"`
	K         int     `json:"k"`
	Prim      string  `json:"prim"`
	Imbalance float64 `json:"imbalance,omitempty"`
	// Fidelity selects this item's execution backend: "des", "analytic",
	// or "" to inherit the request's default. A mixed-fidelity coordinator
	// stamps items individually, so a chunk can carry both tiers.
	Fidelity string `json:"fidelity,omitempty"`
}

// Shape returns the item's GEMM shape (the coordinate the shard partitioner
// assigns ownership by).
func (it SweepItem) Shape() gemm.Shape { return gemm.Shape{M: it.M, N: it.N, K: it.K} }

// Query validates the wire item and converts it to a Query, applying the
// same rules ParseQuery applies to /query parameters (an empty primitive
// defaults to AllReduce).
func (it SweepItem) Query() (Query, error) {
	primName := it.Prim
	if primName == "" {
		primName = "AR"
	}
	prim, err := ParsePrimitive(primName)
	if err != nil {
		return Query{}, err
	}
	q := Query{Shape: it.Shape(), Prim: prim, Imbalance: it.Imbalance}
	if err := validateQuery(q); err != nil {
		return Query{}, err
	}
	return q, nil
}

// fidelity resolves the item's effective execution fidelity under the
// request-level default. Only the two backend fidelities are legal per
// item: "mixed" is a grid policy, not an execution.
func (it SweepItem) fidelity(requestDefault string) (core.Fidelity, error) {
	f := it.Fidelity
	if f == "" {
		f = requestDefault
	}
	switch f {
	case "", FidelityDES:
		return core.FidelityDES, nil
	case FidelityAnalytic:
		return core.FidelityAnalytic, nil
	case FidelityMixed:
		return "", badQueryf("serve: item fidelity %q is a sweep policy; items execute as %q or %q", f, FidelityDES, FidelityAnalytic)
	}
	return "", badQueryf("serve: unknown fidelity %q (want %q, %q, or %q)", f, FidelityDES, FidelityAnalytic, FidelityMixed)
}

// SweepRequest is the JSON body of POST /sweep: one chunk of a (possibly
// fleet-wide) sweep grid, processed in order on the replica.
type SweepRequest struct {
	// Tune selects the tuned pipeline: each item is first answered through
	// Service.Query (shape cache, singleflight) and then executed once
	// with the tuned partition. When false, each item runs the untuned
	// per-wave baseline — a pure engine execution whose result is
	// deterministic and cache-history-free, so sharded sweeps merge
	// byte-identically to engine.Batch no matter which replica ran which
	// chunk.
	Tune bool `json:"tune,omitempty"`
	// Chunk and Attempts forward the sweeping coordinator's knobs. A
	// single replica ignores them (the posted Items already are one
	// chunk), but a router proxying /sweep for a whole fleet re-chunks
	// and re-dispatches with them instead of silently resetting the
	// caller's choices to defaults. Zero selects the proxy's defaults,
	// which keeps old clients byte-compatible on the wire.
	Chunk    int `json:"chunk,omitempty"`
	Attempts int `json:"attempts,omitempty"`
	// Fidelity is the default for items that do not carry their own label:
	// "des" (also the "" default), "analytic", or "mixed". Mixed runs the
	// posted grid analytically, ranks per quantized shape cell, and
	// re-runs the top TopK per cell on the simulator before replying —
	// items under a mixed request must not carry per-item labels.
	Fidelity string `json:"fidelity,omitempty"`
	// TopK bounds the per-cell DES confirmations of a mixed request;
	// <= 0 selects engine.DefaultTopK.
	TopK  int         `json:"topk,omitempty"`
	Items []SweepItem `json:"items"`
}

// SweepResult is one item's outcome: the partition the run used (tuned or
// per-wave default), the tuner's prediction when Tune was set, and the full
// deterministic execution result.
type SweepResult struct {
	Shape     string `json:"shape"`
	Primitive string `json:"primitive"`
	Partition []int  `json:"partition"`
	Waves     int    `json:"waves"`
	// Fidelity labels the backend that produced Result: "des" or
	// "analytic", mirroring Result.Fidelity for callers that only read
	// the wire envelope.
	Fidelity string `json:"fidelity"`
	// PredictedNs and Source are set only on tuned sweeps; Source is
	// SourceCache or SourceTuned, like a /query answer.
	PredictedNs int64        `json:"predicted_ns,omitempty"`
	Source      string       `json:"source,omitempty"`
	Result      *core.Result `json:"result"`
}

// SweepResponse is the JSON reply of POST /sweep.
type SweepResponse struct {
	Results []SweepResult `json:"results"`
}

// ChunkError is the error SweepChunk returns: the failing item's index
// within the chunk plus the cause — the serve-side analogue of
// engine.RunError, letting a sweep coordinator translate the chunk-local
// index back to a global grid index. It classifies like its cause: a chunk
// that failed on a bad item satisfies IsBadQuery through Unwrap.
type ChunkError struct {
	Index int
	Err   error
}

func (e *ChunkError) Error() string { return fmt.Sprintf("chunk item %d: %v", e.Index, e.Err) }
func (e *ChunkError) Unwrap() error { return e.Err }

// SweepChunk processes one sweep chunk in input order — serially, preserving
// the cache-warming locality a replica's owned slice is partitioned for.
// results[i] answers req.Items[i]; on failure the first failing item's
// chunk-local index is reported as a *ChunkError, and the completed prefix
// results[0..Index) rides along with the error — partial-chunk completion,
// so a coordinator re-dispatches only the unanswered suffix instead of
// re-executing work the replica already finished.
//
// Each item executes at its resolved fidelity (item label, else the
// request default): DES through a private deterministic simulator, analytic
// through the Algorithm 1 predictor over the engine's bandwidth-curve
// cache. Both are byte-identical no matter which replica of an identically
// configured fleet executes the chunk — the property that lets a
// coordinator re-dispatch chunks through the failover ring without
// perturbing the merged sweep. A request-level "mixed" fidelity runs the
// whole posted grid analytically, ranks per engine.RankTopK cell, re-runs
// the top TopK per cell at DES fidelity, and splices; a mixed chunk that
// fails returns no partial prefix (the tiers interleave, so no prefix of
// the reply would be final).
func (s *Service) SweepChunk(req SweepRequest) ([]SweepResult, error) {
	switch req.Fidelity {
	case "", FidelityDES, FidelityAnalytic:
		return s.sweepChunkFlat(req)
	case FidelityMixed:
		return s.sweepChunkMixed(req)
	}
	return nil, &ChunkError{Index: 0, Err: badQueryf("serve: unknown sweep fidelity %q (want %q, %q, or %q)", req.Fidelity, FidelityDES, FidelityAnalytic, FidelityMixed)}
}

// sweepChunkFlat is the single-tier chunk loop: every item executes at its
// own resolved fidelity.
func (s *Service) sweepChunkFlat(req SweepRequest) ([]SweepResult, error) {
	out := make([]SweepResult, len(req.Items))
	for i, it := range req.Items {
		q, err := it.Query()
		if err != nil {
			return out[:i], &ChunkError{Index: i, Err: &BadQueryError{Err: err}}
		}
		fid, err := it.fidelity(req.Fidelity)
		if err != nil {
			return out[:i], &ChunkError{Index: i, Err: err}
		}
		opts := core.Options{
			Plat:      s.cfg.Plat,
			NGPUs:     s.cfg.NGPUs,
			Shape:     q.Shape,
			Prim:      q.Prim,
			Imbalance: q.Imbalance,
			Fidelity:  fid,
		}
		res := SweepResult{Shape: q.Shape.String(), Primitive: q.Prim.String()}
		if req.Tune {
			ans, err := s.Query(q)
			if err != nil {
				return out[:i], &ChunkError{Index: i, Err: err}
			}
			opts.Partition = ans.Partition
			res.PredictedNs = int64(ans.Predicted)
			res.Source = ans.Source
		}
		r, err := s.eng.Exec(opts)
		if err != nil {
			return out[:i], &ChunkError{Index: i, Err: err}
		}
		s.countSwept(r.Fidelity)
		res.Partition = r.Partition
		res.Waves = r.Waves
		res.Fidelity = string(r.Fidelity)
		res.Result = r
		out[i] = res
	}
	return out, nil
}

// sweepChunkMixed runs the request's grid at mixed fidelity within this
// replica: analytic pass, per-cell ranking, DES confirmation of the top-k,
// splice. The coordinator never sends this (it orchestrates the tiers
// itself, stamping items); it serves direct /sweep clients, so a single
// replica and a router proxy answer the same wire request the same way.
func (s *Service) sweepChunkMixed(req SweepRequest) ([]SweepResult, error) {
	for i, it := range req.Items {
		if it.Fidelity != "" {
			return nil, &ChunkError{Index: i, Err: badQueryf("serve: mixed sweep item carries fidelity %q; the mixed policy assigns fidelities itself", it.Fidelity)}
		}
	}
	analytic := req
	analytic.Fidelity = FidelityAnalytic
	out, err := s.sweepChunkFlat(analytic)
	if err != nil {
		// Drop the partial prefix: the mixed reply interleaves tiers, so
		// an analytic prefix is not a final prefix of the answer.
		return nil, err
	}
	shapes := make([]gemm.Shape, len(out))
	latencies := make([]sim.Time, len(out))
	for i, r := range out {
		shapes[i] = req.Items[i].Shape()
		latencies[i] = r.Result.Latency
	}
	refined := engine.RankTopK(shapes, latencies, req.TopK, engine.DefaultRankQuantum)
	des := SweepRequest{Tune: req.Tune, Fidelity: FidelityDES, Items: make([]SweepItem, len(refined))}
	for j, gi := range refined {
		des.Items[j] = req.Items[gi]
	}
	desOut, err := s.sweepChunkFlat(des)
	if err != nil {
		var ce *ChunkError
		if errors.As(err, &ce) && ce.Index >= 0 && ce.Index < len(refined) {
			err = &ChunkError{Index: refined[ce.Index], Err: ce.Err}
		}
		return nil, err
	}
	for j, gi := range refined {
		out[gi] = desOut[j]
	}
	return out, nil
}
