package serve

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/gemm"
)

// SweepItem is one (shape, primitive, imbalance) cell of a sweep chunk, in
// wire form: the body a sweep coordinator POSTs to a replica's /sweep.
type SweepItem struct {
	M         int     `json:"m"`
	N         int     `json:"n"`
	K         int     `json:"k"`
	Prim      string  `json:"prim"`
	Imbalance float64 `json:"imbalance,omitempty"`
}

// Shape returns the item's GEMM shape (the coordinate the shard partitioner
// assigns ownership by).
func (it SweepItem) Shape() gemm.Shape { return gemm.Shape{M: it.M, N: it.N, K: it.K} }

// Query validates the wire item and converts it to a Query, applying the
// same rules ParseQuery applies to /query parameters (an empty primitive
// defaults to AllReduce).
func (it SweepItem) Query() (Query, error) {
	primName := it.Prim
	if primName == "" {
		primName = "AR"
	}
	prim, err := ParsePrimitive(primName)
	if err != nil {
		return Query{}, err
	}
	q := Query{Shape: it.Shape(), Prim: prim, Imbalance: it.Imbalance}
	if err := validateQuery(q); err != nil {
		return Query{}, err
	}
	return q, nil
}

// SweepRequest is the JSON body of POST /sweep: one chunk of a (possibly
// fleet-wide) sweep grid, processed in order on the replica.
type SweepRequest struct {
	// Tune selects the tuned pipeline: each item is first answered through
	// Service.Query (shape cache, singleflight) and then executed once
	// with the tuned partition. When false, each item runs the untuned
	// per-wave baseline — a pure engine execution whose result is
	// deterministic and cache-history-free, so sharded sweeps merge
	// byte-identically to engine.Batch no matter which replica ran which
	// chunk.
	Tune bool `json:"tune,omitempty"`
	// Chunk and Attempts forward the sweeping coordinator's knobs. A
	// single replica ignores them (the posted Items already are one
	// chunk), but a router proxying /sweep for a whole fleet re-chunks
	// and re-dispatches with them instead of silently resetting the
	// caller's choices to defaults. Zero selects the proxy's defaults,
	// which keeps old clients byte-compatible on the wire.
	Chunk    int         `json:"chunk,omitempty"`
	Attempts int         `json:"attempts,omitempty"`
	Items    []SweepItem `json:"items"`
}

// SweepResult is one item's outcome: the partition the run used (tuned or
// per-wave default), the tuner's prediction when Tune was set, and the full
// deterministic execution result.
type SweepResult struct {
	Shape     string `json:"shape"`
	Primitive string `json:"primitive"`
	Partition []int  `json:"partition"`
	Waves     int    `json:"waves"`
	// PredictedNs and Source are set only on tuned sweeps; Source is
	// SourceCache or SourceTuned, like a /query answer.
	PredictedNs int64        `json:"predicted_ns,omitempty"`
	Source      string       `json:"source,omitempty"`
	Result      *core.Result `json:"result"`
}

// SweepResponse is the JSON reply of POST /sweep.
type SweepResponse struct {
	Results []SweepResult `json:"results"`
}

// ChunkError is the error SweepChunk returns: the failing item's index
// within the chunk plus the cause — the serve-side analogue of
// engine.RunError, letting a sweep coordinator translate the chunk-local
// index back to a global grid index. It classifies like its cause: a chunk
// that failed on a bad item satisfies IsBadQuery through Unwrap.
type ChunkError struct {
	Index int
	Err   error
}

func (e *ChunkError) Error() string { return fmt.Sprintf("chunk item %d: %v", e.Index, e.Err) }
func (e *ChunkError) Unwrap() error { return e.Err }

// SweepChunk processes one sweep chunk in input order — serially, preserving
// the cache-warming locality a replica's owned slice is partitioned for.
// results[i] answers req.Items[i]; on failure the first failing item's
// chunk-local index is reported as a *ChunkError, and the completed prefix
// results[0..Index) rides along with the error — partial-chunk completion,
// so a coordinator re-dispatches only the unanswered suffix instead of
// re-executing work the replica already finished.
//
// Every execution runs through the service's engine with a private
// deterministic simulator, so untuned results are byte-identical no matter
// which replica of an identically configured fleet executes the chunk — the
// property that lets a coordinator re-dispatch chunks through the failover
// ring without perturbing the merged sweep.
func (s *Service) SweepChunk(req SweepRequest) ([]SweepResult, error) {
	out := make([]SweepResult, len(req.Items))
	for i, it := range req.Items {
		q, err := it.Query()
		if err != nil {
			return out[:i], &ChunkError{Index: i, Err: &BadQueryError{Err: err}}
		}
		opts := core.Options{
			Plat:      s.cfg.Plat,
			NGPUs:     s.cfg.NGPUs,
			Shape:     q.Shape,
			Prim:      q.Prim,
			Imbalance: q.Imbalance,
		}
		res := SweepResult{Shape: q.Shape.String(), Primitive: q.Prim.String()}
		if req.Tune {
			ans, err := s.Query(q)
			if err != nil {
				return out[:i], &ChunkError{Index: i, Err: err}
			}
			opts.Partition = ans.Partition
			res.PredictedNs = int64(ans.Predicted)
			res.Source = ans.Source
		}
		r, err := s.eng.Exec(opts)
		if err != nil {
			return out[:i], &ChunkError{Index: i, Err: err}
		}
		res.Partition = r.Partition
		res.Waves = r.Waves
		res.Result = r
		out[i] = res
	}
	return out, nil
}
