package serve

import (
	"context"
	"errors"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/gemm"
	"repro/internal/sim"
)

// Wire-level fidelity labels. FidelityDES and FidelityAnalytic name the two
// execution backends (see core.Fidelity); FidelityMixed is a sweep-level
// policy — run the grid analytically, confirm the top-k per rank cell on
// the simulator — valid on a SweepRequest but never on an individual item
// or result, since every execution is ultimately one of the two backends.
const (
	FidelityDES      = string(core.FidelityDES)
	FidelityAnalytic = string(core.FidelityAnalytic)
	FidelityMixed    = "mixed"
)

// SweepItem is one (shape, primitive, imbalance) cell of a sweep chunk, in
// wire form: the body a sweep coordinator POSTs to a replica's /sweep.
type SweepItem struct {
	M         int     `json:"m"`
	N         int     `json:"n"`
	K         int     `json:"k"`
	Prim      string  `json:"prim"`
	Imbalance float64 `json:"imbalance,omitempty"`
	// Fidelity selects this item's execution backend: "des", "analytic",
	// or "" to inherit the request's default. A mixed-fidelity coordinator
	// stamps items individually, so a chunk can carry both tiers.
	Fidelity string `json:"fidelity,omitempty"`
}

// Shape returns the item's GEMM shape (the coordinate the shard partitioner
// assigns ownership by).
func (it SweepItem) Shape() gemm.Shape { return gemm.Shape{M: it.M, N: it.N, K: it.K} }

// Query validates the wire item and converts it to a Query, applying the
// same rules ParseQuery applies to /query parameters (an empty primitive
// defaults to AllReduce).
func (it SweepItem) Query() (Query, error) {
	primName := it.Prim
	if primName == "" {
		primName = "AR"
	}
	prim, err := ParsePrimitive(primName)
	if err != nil {
		return Query{}, err
	}
	q := Query{Shape: it.Shape(), Prim: prim, Imbalance: it.Imbalance}
	if err := validateQuery(q); err != nil {
		return Query{}, err
	}
	return q, nil
}

// fidelity resolves the item's effective execution fidelity under the
// request-level default. Only the two backend fidelities are legal per
// item: "mixed" is a grid policy, not an execution.
func (it SweepItem) fidelity(requestDefault string) (core.Fidelity, error) {
	f := it.Fidelity
	if f == "" {
		f = requestDefault
	}
	switch f {
	case "", FidelityDES:
		return core.FidelityDES, nil
	case FidelityAnalytic:
		return core.FidelityAnalytic, nil
	case FidelityMixed:
		return "", badQueryf("serve: item fidelity %q is a sweep policy; items execute as %q or %q", f, FidelityDES, FidelityAnalytic)
	}
	return "", badQueryf("serve: unknown fidelity %q (want %q, %q, or %q)", f, FidelityDES, FidelityAnalytic, FidelityMixed)
}

// SweepSpec is the one options struct every sweep knob lives in — shared by
// the wire request, the shard coordinator, the router's /sweep proxy, and
// cmd/sweep's flags, so a knob added here is automatically forwarded at
// every hop instead of silently resetting to a default mid-path. The wire
// fields marshal inside SweepRequest's JSON body; the health fields are
// driver-local (marked json:"-"): a fleet's health windows belong to the
// fleet's operator, not to whichever remote client posts a sweep.
type SweepSpec struct {
	// Tune selects the tuned pipeline: each item is first answered through
	// Service.Query (shape cache, singleflight) and then executed once
	// with the tuned partition. When false, each item runs the untuned
	// per-wave baseline — a pure engine execution whose result is
	// deterministic and cache-history-free, so sharded sweeps merge
	// byte-identically to engine.Batch no matter which replica ran which
	// chunk.
	Tune bool `json:"tune,omitempty"`
	// Chunk and Attempts forward the sweeping coordinator's knobs. A
	// single replica ignores them (the posted Items already are one
	// chunk), but a router proxying /sweep for a whole fleet re-chunks
	// and re-dispatches with them instead of silently resetting the
	// caller's choices to defaults. Zero selects the proxy's defaults,
	// which keeps old clients byte-compatible on the wire.
	Chunk    int `json:"chunk,omitempty"`
	Attempts int `json:"attempts,omitempty"`
	// Fidelity is the default for items that do not carry their own label:
	// "des" (also the "" default), "analytic", or "mixed". Mixed runs the
	// posted grid analytically, ranks per quantized shape cell, and
	// re-runs the top TopK per cell on the simulator before replying —
	// items under a mixed request must not carry per-item labels.
	Fidelity string `json:"fidelity,omitempty"`
	// TopK bounds the per-cell DES confirmations of a mixed request;
	// <= 0 selects engine.DefaultTopK.
	TopK int `json:"topk,omitempty"`
	// RankQuantum is the mixed sweep's rank-cell edge in log2 units; <= 0
	// selects engine.DefaultRankQuantum.
	RankQuantum float64 `json:"rank_quantum,omitempty"`
	// Tenant is the sweep's optional accounting label, the /sweep analogue
	// of /query's tenant parameter: executed items count into the tenant's
	// swept_items in /stats. Purely attributive — it never affects what
	// executes — and forwarded hop by hop like every other spec field, so a
	// router proxy and the coordinator behind it attribute identically.
	Tenant string `json:"tenant,omitempty"`
	// HealthCooldown and ProbeInterval tune the driving coordinator's
	// health plane: how long a failed replica is benched, and how often
	// the background /healthz prober runs. Never serialized — a router
	// proxy applies its own fleet's windows, not a remote caller's.
	HealthCooldown time.Duration `json:"-"`
	ProbeInterval  time.Duration `json:"-"`
}

// SweepRequest is the JSON body of POST /sweep: one chunk of a (possibly
// fleet-wide) sweep grid, processed in order on the replica, plus the
// embedded SweepSpec knobs. The v1 body is unchanged field for field; the
// only addition is Stream, the in-body form of v2 protocol negotiation.
type SweepRequest struct {
	SweepSpec
	// Stream requests the v2 NDJSON frame-stream reply in the request body
	// itself — equivalent to sending "Accept: application/x-ndjson".
	// Absent (the v1 default) the reply is the buffered JSON SweepResponse,
	// byte-compatible with pre-v2 servers and clients.
	Stream bool        `json:"stream,omitempty"`
	Items  []SweepItem `json:"items"`
}

// SweepResult is one item's outcome: the partition the run used (tuned or
// per-wave default), the tuner's prediction when Tune was set, and the full
// deterministic execution result.
type SweepResult struct {
	Shape     string `json:"shape"`
	Primitive string `json:"primitive"`
	Partition []int  `json:"partition"`
	Waves     int    `json:"waves"`
	// Fidelity labels the backend that produced Result: "des" or
	// "analytic", mirroring Result.Fidelity for callers that only read
	// the wire envelope.
	Fidelity string `json:"fidelity"`
	// PredictedNs and Source are set only on tuned sweeps; Source is
	// SourceCache or SourceTuned, like a /query answer.
	PredictedNs int64        `json:"predicted_ns,omitempty"`
	Source      string       `json:"source,omitempty"`
	Result      *core.Result `json:"result"`
}

// SweepResponse is the buffered (v1) JSON reply of POST /sweep.
type SweepResponse struct {
	Results []SweepResult `json:"results"`
}

// ChunkError is the error SweepChunk returns: the failing item's index
// within the chunk plus the cause — the serve-side analogue of
// engine.RunError, letting a sweep coordinator translate the chunk-local
// index back to a global grid index. It classifies like its cause: a chunk
// that failed on a bad item satisfies IsBadQuery through Unwrap.
type ChunkError struct {
	Index int
	Err   error
}

func (e *ChunkError) Error() string { return fmt.Sprintf("chunk item %d: %v", e.Index, e.Err) }
func (e *ChunkError) Unwrap() error { return e.Err }

// SweepSink consumes one completed sweep result. index names the item the
// result answers (its position in the posted Items); a non-nil return
// aborts the chunk and surfaces verbatim from SweepChunk — the seam that
// lets an HTTP handler stop executing the moment its client hangs up.
type SweepSink func(index int, res SweepResult) error

// SweepChunk processes one sweep chunk in input order — serially, preserving
// the cache-warming locality a replica's owned slice is partitioned for —
// and emits each result into sink as it completes, so the chunk's memory
// footprint is O(1) results however long the chunk: the execution core of
// the v2 streaming wire protocol.
//
// Flat (single-tier) chunks emit in ascending index order; on failure,
// exactly the completed prefix [0, Index) has been emitted — the emitted
// results are the partial-chunk salvage — and the failing item's
// chunk-local index is reported as a *ChunkError. A request-level "mixed"
// fidelity runs the whole posted grid analytically, ranks per
// engine.RankTopK cell, re-runs the top TopK per cell at DES fidelity, and
// splices; the tiers interleave, so a mixed chunk emits only once every
// result is final (still in ascending index order) and a failed mixed chunk
// emits nothing.
//
// Each item executes at its resolved fidelity (item label, else the
// request default): DES through a private deterministic simulator, analytic
// through the Algorithm 1 predictor over the engine's bandwidth-curve
// cache. Both are byte-identical no matter which replica of an identically
// configured fleet executes the chunk — the property that lets a
// coordinator re-dispatch chunks through the failover ring without
// perturbing the merged sweep.
//
// ctx cancellation stops the chunk between items (an in-flight DES item
// aborts between simulator events): the emitted prefix is the salvage, the
// chunk returns a *ChunkError wrapping the ctx error at the first
// unanswered index, and the unanswered remainder counts into
// cancelled_sweep_items (plus deadline_exceeded when the deadline caused
// it).
func (s *Service) SweepChunk(ctx context.Context, req SweepRequest, sink SweepSink) error {
	if err := ValidateTenant(req.Tenant); err != nil {
		return &ChunkError{Index: 0, Err: err}
	}
	emitted := 0
	counted := func(i int, res SweepResult) error {
		if err := sink(i, res); err != nil {
			return err
		}
		emitted++
		return nil
	}
	err := s.sweepChunk(ctx, req, counted)
	if err != nil {
		// Count via ctx.Err() as well as the returned error: a sink write
		// failure caused by the client hanging up races the loop's own ctx
		// check, and both must attribute the unanswered remainder.
		ctxErr := ctx.Err()
		if ctxErr != nil || errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			if rest := len(req.Items) - emitted; rest > 0 {
				s.cancelledSweep.Add(uint64(rest))
			}
			if errors.Is(err, context.DeadlineExceeded) || errors.Is(ctxErr, context.DeadlineExceeded) {
				s.deadlineExceeded.Add(1)
			}
		}
	}
	return err
}

// sweepChunk dispatches on the request-level fidelity; SweepChunk wraps it
// to attribute cancelled items.
func (s *Service) sweepChunk(ctx context.Context, req SweepRequest, sink SweepSink) error {
	switch req.Fidelity {
	case "", FidelityDES, FidelityAnalytic:
		return s.sweepChunkFlat(ctx, req, sink)
	case FidelityMixed:
		return s.sweepChunkMixed(ctx, req, sink)
	}
	return &ChunkError{Index: 0, Err: badQueryf("serve: unknown sweep fidelity %q (want %q, %q, or %q)", req.Fidelity, FidelityDES, FidelityAnalytic, FidelityMixed)}
}

// CollectSweep runs SweepChunk into a slice: the buffered (v1) form. On
// failure the completed prefix rides along with the error, preserving the
// partial-chunk salvage for callers that still materialize replies.
func (s *Service) CollectSweep(ctx context.Context, req SweepRequest) ([]SweepResult, error) {
	out := make([]SweepResult, 0, len(req.Items))
	err := s.SweepChunk(ctx, req, func(_ int, res SweepResult) error {
		out = append(out, res)
		return nil
	})
	return out, err
}

// sweepChunkFlat is the single-tier chunk loop: every item executes at its
// own resolved fidelity and is emitted as soon as it completes.
func (s *Service) sweepChunkFlat(ctx context.Context, req SweepRequest, sink SweepSink) error {
	for i, it := range req.Items {
		if err := ctx.Err(); err != nil {
			return &ChunkError{Index: i, Err: err}
		}
		q, err := it.Query()
		if err != nil {
			return &ChunkError{Index: i, Err: &BadQueryError{Err: err}}
		}
		fid, err := it.fidelity(req.Fidelity)
		if err != nil {
			return &ChunkError{Index: i, Err: err}
		}
		opts := core.Options{
			Plat:      s.cfg.Plat,
			NGPUs:     s.cfg.NGPUs,
			Shape:     q.Shape,
			Prim:      q.Prim,
			Imbalance: q.Imbalance,
			Fidelity:  fid,
		}
		res := SweepResult{Shape: q.Shape.String(), Primitive: q.Prim.String()}
		if req.Tune {
			ans, err := s.Query(ctx, q)
			if err != nil {
				return &ChunkError{Index: i, Err: err}
			}
			opts.Partition = ans.Partition
			res.PredictedNs = int64(ans.Predicted)
			res.Source = ans.Source
		}
		r, err := s.eng.Exec(ctx, opts)
		if err != nil {
			return &ChunkError{Index: i, Err: err}
		}
		s.countSwept(req.Tenant, r.Fidelity)
		res.Partition = r.Partition
		res.Waves = r.Waves
		res.Fidelity = string(r.Fidelity)
		res.Result = r
		if err := sink(i, res); err != nil {
			return err
		}
	}
	return nil
}

// collectFlat buffers a flat sub-chunk — the mixed orchestration needs the
// whole analytic tier in hand before it can rank.
func (s *Service) collectFlat(ctx context.Context, req SweepRequest) ([]SweepResult, error) {
	out := make([]SweepResult, 0, len(req.Items))
	err := s.sweepChunkFlat(ctx, req, func(_ int, res SweepResult) error {
		out = append(out, res)
		return nil
	})
	return out, err
}

// sweepChunkMixed runs the request's grid at mixed fidelity within this
// replica: analytic pass, per-cell ranking, DES confirmation of the top-k,
// splice. The coordinator never sends this (it orchestrates the tiers
// itself, stamping items); it serves direct /sweep clients, so a single
// replica and a router proxy answer the same wire request the same way.
// Ranking is global over the posted grid, so the mixed path inherently
// buffers O(grid) before emitting — the streaming bound applies to the
// flat tiers a coordinator dispatches.
func (s *Service) sweepChunkMixed(ctx context.Context, req SweepRequest, sink SweepSink) error {
	for i, it := range req.Items {
		if it.Fidelity != "" {
			return &ChunkError{Index: i, Err: badQueryf("serve: mixed sweep item carries fidelity %q; the mixed policy assigns fidelities itself", it.Fidelity)}
		}
	}
	analytic := req
	analytic.Fidelity = FidelityAnalytic
	// A failure drops the partial prefix: the mixed reply interleaves
	// tiers, so an analytic prefix is not a final prefix of the answer.
	out, err := s.collectFlat(ctx, analytic)
	if err != nil {
		return err
	}
	shapes := make([]gemm.Shape, len(out))
	latencies := make([]sim.Time, len(out))
	for i, r := range out {
		shapes[i] = req.Items[i].Shape()
		latencies[i] = r.Result.Latency
	}
	quantum := req.RankQuantum
	if quantum <= 0 {
		quantum = engine.DefaultRankQuantum
	}
	refined := engine.RankTopK(shapes, latencies, req.TopK, quantum)
	des := SweepRequest{SweepSpec: SweepSpec{Tune: req.Tune, Fidelity: FidelityDES, Tenant: req.Tenant}, Items: make([]SweepItem, len(refined))}
	for j, gi := range refined {
		des.Items[j] = req.Items[gi]
	}
	desOut, err := s.collectFlat(ctx, des)
	if err != nil {
		var ce *ChunkError
		if errors.As(err, &ce) && ce.Index >= 0 && ce.Index < len(refined) {
			err = &ChunkError{Index: refined[ce.Index], Err: ce.Err}
		}
		return err
	}
	for j, gi := range refined {
		out[gi] = desOut[j]
	}
	for i, res := range out {
		if err := sink(i, res); err != nil {
			return err
		}
	}
	return nil
}
