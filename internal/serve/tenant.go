package serve

import (
	"time"

	"repro/internal/metrics"
)

// MaxTenantLen bounds the tenant label. Labels are map keys held for the
// process lifetime and echoed into /stats, so an unbounded label would let
// one misbehaving client grow the stats endpoint without limit.
const MaxTenantLen = 64

// ValidateTenant checks an optional tenant label: empty (no tenant) is
// always valid; otherwise 1..MaxTenantLen characters of [A-Za-z0-9._-].
// The charset keeps labels safe to echo into URLs, JSON keys, and log
// lines unquoted. Failures are BadQueryErrors — deterministic rejections
// every replica shares.
func ValidateTenant(t string) error {
	if t == "" {
		return nil
	}
	if len(t) > MaxTenantLen {
		return badQueryf("serve: tenant label longer than %d bytes", MaxTenantLen)
	}
	for i := 0; i < len(t); i++ {
		c := t[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '.', c == '_', c == '-':
		default:
			return badQueryf("serve: tenant label %q: character %q not in [A-Za-z0-9._-]", t, c)
		}
	}
	return nil
}

// tenantMetrics is one tenant's live instruments. Created once on the
// tenant's first labeled request; every later record is a map read under
// RLock plus atomic adds — no allocation, which keeps the pre-encoded warm
// /query path's zero-alloc contract intact.
type tenantMetrics struct {
	queries *metrics.Counter
	hits    *metrics.Counter
	swept   *metrics.Counter
	latency *metrics.Histogram
}

// tenantFor returns the tenant's instruments, creating them on first use.
// The caller is expected to have validated the label at the request edge.
func (s *Service) tenantFor(tenant string) *tenantMetrics {
	s.tenantsMu.RLock()
	tm := s.tenants[tenant]
	s.tenantsMu.RUnlock()
	if tm != nil {
		return tm
	}
	s.tenantsMu.Lock()
	defer s.tenantsMu.Unlock()
	if tm = s.tenants[tenant]; tm != nil {
		return tm
	}
	tm = &tenantMetrics{
		queries: s.reg.Counter("tenant/" + tenant + "/queries"),
		hits:    s.reg.Counter("tenant/" + tenant + "/hits"),
		swept:   s.reg.Counter("tenant/" + tenant + "/swept_items"),
		latency: s.reg.Histogram("tenant/" + tenant + "/latency"),
	}
	s.tenants[tenant] = tm
	return tm
}

// ObserveQuery records one answered query into the latency plane: the
// service-wide histogram always, plus the tenant's histogram and hit/query
// counters when the query carried a label. hit marks answers served from
// the tuned-shape cache (the pre-encoded fast path included), the numerator
// of the per-tenant hit rate.
//
// The HTTP layer calls this for the warm fast path too — the path's
// zero-allocation contract holds because for a previously seen tenant this
// is a histogram bucket's atomic add plus counter adds, nothing more.
func (s *Service) ObserveQuery(tenant string, d time.Duration, hit bool) {
	s.latency.Observe(d)
	if tenant == "" {
		return
	}
	tm := s.tenantFor(tenant)
	tm.queries.Add(1)
	if hit {
		tm.hits.Add(1)
	}
	tm.latency.Observe(d)
}

// tenantSnapshots captures every tenant's counters for a Stats snapshot;
// nil when no labeled request has arrived, so the stats JSON omits the key
// and stays byte-identical to the pre-tenant wire form.
func (s *Service) tenantSnapshots() map[string]TenantStats {
	s.tenantsMu.RLock()
	defer s.tenantsMu.RUnlock()
	if len(s.tenants) == 0 {
		return nil
	}
	out := make(map[string]TenantStats, len(s.tenants))
	for name, tm := range s.tenants {
		out[name] = TenantStats{
			Queries:    tm.queries.Load(),
			Hits:       tm.hits.Load(),
			SweptItems: tm.swept.Load(),
			Latency:    tm.latency.Snapshot(),
		}
	}
	return out
}
