package shard

import (
	"bytes"
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/hw"
	"repro/internal/serve"
)

// The tentpole acceptance property: cancelling a coordinator-driven sweep
// mid-flight stops dispatching, surfaces the context error, and leaves
// every replica healthy and answerable — no false benching, no orphaned
// ownership state — so a follow-up full sweep over the same grid is still
// byte-identical to single-process engine.Batch.
func TestCancelledSweepLeavesFleetHealthy(t *testing.T) {
	items := coordItems()
	refJSON := coordReference(t, items)
	r, _, _ := testFleet(t, 2)
	co := NewCoordinator(r)
	co.Spec.Chunk = 1 // one item per chunk: plenty of dispatches to cancel between

	ctx, cancel := context.WithCancel(context.Background())
	var emitted atomic.Int64
	co.OnChunk = func(ChunkResult) {
		if emitted.Add(1) == 1 {
			cancel() // the caller walks away after the first chunk lands
		}
	}
	start := time.Now()
	_, err := co.Sweep(ctx, items)
	if err == nil {
		t.Fatal("cancelled sweep returned nil error")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled sweep error = %v, want to wrap context.Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > 30*time.Second {
		t.Fatalf("cancelled sweep took %v to unwind", elapsed)
	}

	// Cancellation must not have benched anyone: a replica whose chunk was
	// aborted by the caller's own context is healthy, not dead.
	for k := 0; k < 2; k++ {
		if !r.Health().Allow(k) {
			t.Fatalf("replica %d benched by the caller's own cancellation", k)
		}
	}
	st := r.Stats(context.Background())
	for k, rs := range st.PerShard {
		if rs.Health != "healthy" {
			t.Fatalf("replica %d is %q after a cancelled sweep, want healthy", k, rs.Health)
		}
		if rs.Error != "" {
			t.Fatalf("replica %d unreachable after a cancelled sweep: %s", k, rs.Error)
		}
	}

	// The fleet is still fully answerable and deterministic: a fresh
	// uncancelled sweep merges byte-identically to engine.Batch.
	co.OnChunk = nil
	results, err := co.Sweep(context.Background(), items)
	if err != nil {
		t.Fatalf("follow-up sweep after cancellation: %v", err)
	}
	if !bytes.Equal(mergedJSON(t, results), refJSON) {
		t.Fatal("post-cancellation sweep diverges from single-process engine.Batch")
	}
}

// A sweep that starts with its context already cancelled dispatches nothing
// and touches no health state.
func TestSweepWithDeadContextDispatchesNothing(t *testing.T) {
	r := localFleet(t, 2)
	co := NewCoordinator(r)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	co.OnChunk = func(ChunkResult) { t.Error("chunk dispatched under a dead context") }
	_, err := co.Sweep(ctx, coordItems())
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	for k := 0; k < 2; k++ {
		if !r.Health().Allow(k) {
			t.Fatalf("replica %d benched by a sweep that never dispatched", k)
		}
	}
}

// A cancelled Router.Query must not mark the target replica failed: the
// transport error was the caller's own doing.
func TestCancelledQueryDoesNotBenchReplica(t *testing.T) {
	r, _, _ := testFleet(t, 2)
	q := serve.Query{Shape: routerShapes[0], Prim: hw.AllReduce}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := r.Query(ctx, q); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	for k := 0; k < 2; k++ {
		if !r.Health().Allow(k) {
			t.Fatalf("replica %d benched by the caller's own cancelled query", k)
		}
	}
	// The fleet answers the same query normally afterwards.
	if _, err := r.Query(context.Background(), q); err != nil {
		t.Fatalf("query after cancellation: %v", err)
	}
}

// sleepCtx wakes immediately on cancellation and otherwise sleeps the full
// duration — the primitive behind the dispatch cooldown waits.
func TestSleepCtx(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- sleepCtx(ctx, time.Hour) }()
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("sleepCtx did not wake on cancellation")
	}
	if err := sleepCtx(context.Background(), time.Millisecond); err != nil {
		t.Fatalf("uncancelled sleepCtx = %v, want nil", err)
	}
}
