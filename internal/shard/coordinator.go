package shard

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/engine"
	"repro/internal/gemm"
	"repro/internal/serve"
	"repro/internal/sim"
)

// DefaultChunkSize bounds the items per dispatched sweep chunk when the
// caller does not choose one. Chunking amortizes the per-request transport
// cost across several simulations while bounding two failure costs: how
// much work one replica crash throws away (at most a chunk is re-executed
// elsewhere) and how stale the coordinator's view of a shard can get
// between dispatches.
const DefaultChunkSize = 8

// SweepSpec is the one options struct every sweep knob lives in, shared
// with the wire layer (it is serve.SweepSpec): cmd/sweep's flags fill one,
// the router's /sweep proxy rebuilds one from the posted request, and
// Coordinator.request forwards its wire fields on every dispatched chunk —
// so a knob added to the spec is carried through every hop instead of
// silently resetting to a default at the first proxy.
type SweepSpec = serve.SweepSpec

// Coordinator drives a grid sweep across a replica fleet — the multi-host
// analogue of SweepBatch, where the "engines" are remote cmd/serve
// processes reached over the Client interface. It partitions the grid by
// shape ownership (each replica sweeps the slice of the (log M·N, log K)
// plane its caches are warm for), splits every shard's sub-grid into
// fixed-size chunks, dispatches them over /sweep, and streams per-shard
// results back — each item's result is released to the caller as its chunk
// completes, so the coordinator holds O(chunk), not O(grid), in flight.
//
// The coordinator survives replica churn mid-sweep: a chunk whose replica
// dies (connection refused, timeout, 5xx) is re-dispatched through the
// failover ring — owner+1, owner+2, ... — under a bounded attempt budget,
// instead of failing the sweep. The router's shared health plane makes the
// degraded path cheap and recoverable: a replica that failed is marked dead
// and skipped by every later chunk until its cooldown elapses (at most one
// probe timeout per replica per cooldown window, not one per chunk), a
// background /healthz prober re-admits a replica that restarts mid-sweep so
// it reclaims its owned shard, and a replica dead past the health plane's
// eviction window surrenders its ring ownership entirely — its cells
// rebalance to the survivors (chunks start dispatch there directly, no
// failover hop) until re-admission hands them back, mid-sweep included:
// every chunk re-resolves its dispatch origin against the current eviction
// state. A chunk that fails partway keeps whatever items its replica
// streamed back and re-dispatches only the unanswered rest. Untuned sweep
// results are deterministic and cache-history-free on any replica of an
// identically configured fleet, so re-dispatch cannot perturb the merged
// output. Deterministic rejections (4xx QueryErrors) are not retried: every
// replica would reject the chunk identically, and the failure is attributed
// to its global item index via the serve.ChunkError convention (the remote
// cousin of engine.RunError).
//
// A Coordinator is safe for concurrent Sweep/Stream calls; Spec and OnChunk
// must be set before the first call.
type Coordinator struct {
	router *Router

	// Spec carries every sweep knob: chunk size, attempt budget, tuned
	// pipeline, fidelity policy, rank-cell geometry, and the driver-local
	// health windows. Zero fields select the documented defaults.
	Spec SweepSpec
	// OnChunk, when set, observes every completed chunk as it lands —
	// per-shard result streaming for progress reporting. A chunk whose
	// items were answered by more than one replica (partial-chunk
	// completion) is announced once per contiguous replica segment. It is
	// called from the per-shard sweep goroutines and must be safe for
	// concurrent use.
	OnChunk func(ChunkResult)

	redispatches atomic.Uint64
	salvaged     atomic.Uint64
}

// ChunkResult announces one completed chunk (or, after a partial-chunk
// completion, one contiguous segment of it) to OnChunk.
type ChunkResult struct {
	// Shard owns the chunk; Replica answered it (different only after a
	// re-dispatch through the failover ring).
	Shard, Replica int
	// Indices are the segment's global item indices; Results[j] answers
	// Indices[j].
	Indices []int
	Results []serve.SweepResult
}

// SweepResult is one sweep item's outcome plus routing attribution: the
// shard that owned it and the replica that actually executed it.
type SweepResult struct {
	serve.SweepResult
	Owner   int `json:"owner"`
	Replica int `json:"replica"`
}

// StreamSink consumes merged sweep results as their chunks complete. index
// is the item's global position in the swept grid; within one shard indices
// arrive in ascending order, across shards they interleave by completion.
// The coordinator serializes calls, so a sink writing one output stream
// needs no locking of its own; a non-nil return aborts the sweep.
type StreamSink func(index int, res SweepResult) error

// NewCoordinator builds a coordinator over the router's fleet, sharing its
// clients, ownership partitioner, health plane, and failover accounting.
func NewCoordinator(r *Router) *Coordinator {
	return &Coordinator{router: r}
}

// Redispatches counts chunks that left their owner: chunks any of whose
// items were answered by a ring hop past the owner. The count is cumulative
// across Sweep calls.
func (c *Coordinator) Redispatches() uint64 { return c.redispatches.Load() }

// PartialSalvages counts items whose results were kept from a chunk that
// failed partway — work the partial-chunk completion path did not have to
// re-execute. Cumulative across Sweep calls.
func (c *Coordinator) PartialSalvages() uint64 { return c.salvaged.Load() }

func (c *Coordinator) chunkSize() int {
	if c.Spec.Chunk <= 0 {
		return DefaultChunkSize
	}
	return c.Spec.Chunk
}

func (c *Coordinator) attempts() int {
	if c.Spec.Attempts <= 0 {
		return len(c.router.clients)
	}
	return c.Spec.Attempts
}

// request builds the wire chunk, forwarding the spec's coordinator knobs so
// a router proxying /sweep for this "replica" re-chunks with the caller's
// chunk size and attempt budget instead of silently resetting to defaults.
// The fidelity-policy fields stay off dispatched chunks: items are already
// stamped per-item, and forwarding "mixed" would make an inner proxy
// re-rank a sub-grid the coordinator has already ranked globally.
func (c *Coordinator) request(items []serve.SweepItem) serve.SweepRequest {
	return serve.SweepRequest{
		SweepSpec: serve.SweepSpec{Tune: c.Spec.Tune, Chunk: c.Spec.Chunk, Attempts: c.Spec.Attempts, Tenant: c.Spec.Tenant},
		Items:     items,
	}
}

// Sweep tunes/executes the whole grid across the fleet and merges the
// per-shard results back into input order: results[i] answers items[i], the
// same deterministic global order SweepBatch and engine.Batch return — the
// buffered form of Stream, for callers that want the materialized grid.
func (c *Coordinator) Sweep(ctx context.Context, items []serve.SweepItem) ([]SweepResult, error) {
	out := make([]SweepResult, len(items))
	err := c.Stream(ctx, items, func(i int, res SweepResult) error {
		out[i] = res
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Stream tunes/executes the whole grid across the fleet, emitting each
// item's result into sink as its chunk completes — the coordinator's
// bounded-memory sweep: at no point does it hold more than O(chunk) results
// per shard in flight. On failure the error with the lowest failing global
// item index is reported as "sweep item <index>: ...", regardless of which
// shards finished first; results already emitted stay emitted (they are
// deterministic and final — a retrying caller may keep them).
//
// The Spec.Fidelity knob selects what executes: a flat sweep (every item at
// one backend fidelity, or each item's own label when Fidelity is "")
// dispatches the grid once; a mixed sweep dispatches twice — the whole grid
// analytic, then the engine.RankTopK winners at DES — with both phases
// enjoying the same churn tolerance, partial-chunk salvage, and
// deterministic attribution. Mixed ranking is global, so the analytic tier
// is buffered O(grid) inside the coordinator before any emission (inherent
// to the policy); analytic keepers emit as soon as ranking resolves and DES
// refinements stream as they complete.
//
// Cancelling ctx tears the whole sweep down: every in-flight shard chunk's
// HTTP request is aborted (replicas observe the closed request body and
// abandon the chunk's remaining items), failover waits wake immediately,
// and the sweep returns ctx.Err() wrapped in the usual lowest-index
// attribution. Results already emitted stay emitted — a caller retrying
// after a deadline may keep the salvaged subset.
func (c *Coordinator) Stream(ctx context.Context, items []serve.SweepItem, sink StreamSink) error {
	// Apply the driver-local health windows before the prober starts (a
	// zero probe interval inherits the cooldown).
	if c.Spec.HealthCooldown > 0 {
		c.router.health.SetCooldown(c.Spec.HealthCooldown)
	}
	// Probe dead replicas in the background for the sweep's duration: a
	// replica that restarts mid-sweep is re-admitted — reclaiming its
	// owned shard, evicted cells included — instead of staying failed-over
	// until the sweep ends. The prober is shared and refcounted:
	// concurrent sweeps (and cmd/route's process-lifetime holder) share
	// one goroutine, and it outlives this sweep if anyone else still
	// holds it.
	stopProber := c.router.StartProber(ctx, c.Spec.ProbeInterval)
	defer stopProber()

	// Serialize the sink: per-shard goroutines emit concurrently, and the
	// natural consumer is a single output stream.
	var mu sync.Mutex
	locked := func(i int, res SweepResult) error {
		mu.Lock()
		defer mu.Unlock()
		return sink(i, res)
	}
	var err error
	switch c.Spec.Fidelity {
	case "", serve.FidelityDES, serve.FidelityAnalytic:
		err = c.sweepGrid(ctx, stampItems(items, c.Spec.Fidelity), locked)
	case serve.FidelityMixed:
		err = c.sweepMixed(ctx, items, locked)
	default:
		return &QueryError{Err: fmt.Errorf("shard: unknown sweep fidelity %q (want %q, %q, or %q)", c.Spec.Fidelity, serve.FidelityDES, serve.FidelityAnalytic, serve.FidelityMixed)}
	}
	if err != nil {
		return fmt.Errorf("shard: sweep item %w", err)
	}
	return nil
}

// stampItems returns items with every fidelity label forced to f; f == ""
// passes the grid through with whatever labels the caller set.
func stampItems(items []serve.SweepItem, f string) []serve.SweepItem {
	if f == "" {
		return items
	}
	out := make([]serve.SweepItem, len(items))
	for i, it := range items {
		it.Fidelity = f
		out[i] = it
	}
	return out
}

// sweepMixed is the fleet-wide mixed-fidelity orchestration: the whole grid
// analytically (cheap — no event simulation), rank per quantized shape cell
// over the merged latencies, then confirm only the top TopK per cell on the
// simulator. Both phases stamp per-item fidelities, so replicas (and router
// proxies acting as replicas) execute exactly what the coordinator ranked —
// no replica re-ranks its local sub-grid. Analytic results that survive the
// ranking unrefined emit as soon as the ranking resolves; DES refinements
// emit as their chunks complete, overwriting nothing (each index emits
// exactly once).
func (c *Coordinator) sweepMixed(ctx context.Context, items []serve.SweepItem, sink StreamSink) error {
	for i, it := range items {
		if it.Fidelity != "" {
			return &fanError{At: i, Err: &QueryError{Err: fmt.Errorf("shard: mixed sweep item carries fidelity %q; the mixed policy assigns fidelities itself", it.Fidelity)}}
		}
	}
	// The analytic tier buffers: ranking is global over the grid, so the
	// mixed policy's coordinator footprint is inherently O(grid) — the
	// O(chunk) streaming bound applies to the flat tiers it dispatches.
	out := make([]SweepResult, len(items))
	err := c.sweepGrid(ctx, stampItems(items, serve.FidelityAnalytic), func(i int, res SweepResult) error {
		out[i] = res
		return nil
	})
	if err != nil {
		return err
	}
	shapes := make([]gemm.Shape, len(items))
	latencies := make([]sim.Time, len(items))
	for i, r := range out {
		shapes[i] = items[i].Shape()
		latencies[i] = r.Result.Latency
	}
	refined := engine.RankTopK(shapes, latencies, c.Spec.TopK, c.Spec.RankQuantum)
	inRefined := make([]bool, len(items))
	for _, gi := range refined {
		inRefined[gi] = true
	}
	for i := range out {
		if !inRefined[i] {
			if err := sink(i, out[i]); err != nil {
				return &fanError{At: i, Err: err}
			}
		}
	}
	des := make([]serve.SweepItem, len(refined))
	for j, gi := range refined {
		des[j] = items[gi]
	}
	err = c.sweepGrid(ctx, stampItems(des, serve.FidelityDES), func(j int, res SweepResult) error {
		return sink(refined[j], res)
	})
	if err != nil {
		// The refine phase named an index into its sub-grid; translate it
		// back to the caller's grid.
		var fe *fanError
		if errors.As(err, &fe) && fe.At >= 0 && fe.At < len(refined) {
			err = &fanError{At: refined[fe.At], Err: fe.Err}
		}
		return err
	}
	return nil
}

// sweepGrid dispatches one already-stamped grid across the fleet — the
// chunking, failover, and emit loop shared by every fidelity mode. Items
// are bucketed by their current owner (the ring mapping with evicted
// replicas rebalanced away), and every chunk re-resolves its dispatch
// origin at dispatch time, so an eviction or a hand-back lands mid-sweep
// instead of waiting for the next one. Failures surface as the raw
// *fanError (lowest failing global index) so callers can translate
// sub-grid indices before the user-facing wrap.
func (c *Coordinator) sweepGrid(ctx context.Context, items []serve.SweepItem, sink StreamSink) error {
	byOwner := make([][]int, len(c.router.clients))
	for i, it := range items {
		k := c.router.Owner(it.Shape())
		byOwner[k] = append(byOwner[k], i)
	}
	size := c.chunkSize()
	return fanShards(byOwner, func(k int, list []int) (int, error) {
		for start := 0; start < len(list); start += size {
			chunk := list[start:min(start+size, len(list))]
			// Check between chunks, not mid-chunk: a cancelled sweep
			// stops dispatching new work here, while chunks already on
			// the wire are torn down by their own request contexts.
			if err := ctx.Err(); err != nil {
				return chunk[0], err
			}
			sub := make([]serve.SweepItem, len(chunk))
			for j, gi := range chunk {
				sub[j] = items[gi]
			}
			// Re-resolve the dispatch origin now, not at bucketing time:
			// if this chunk's owner was evicted since (dispatch starts at
			// its ring successor) or an evicted owner was re-admitted
			// (dispatch hands the cells straight back), the change takes
			// effect mid-sweep.
			origin := c.router.Owner(items[chunk[0]].Shape())
			results, replicas, err := c.dispatch(ctx, origin, sub)
			if err != nil {
				// Attribute the failure to the item the replica
				// named, translated to the global grid; a chunk-level
				// failure (budget exhausted) pins to the chunk's
				// first item.
				at := chunk[0]
				var ce *serve.ChunkError
				if errors.As(err, &ce) && ce.Index >= 0 && ce.Index < len(chunk) {
					at = chunk[ce.Index]
				}
				return at, err
			}
			left := false
			for j := range chunk {
				if replicas[j] != origin {
					left = true
				}
			}
			if left {
				c.redispatches.Add(1)
				c.router.failovers.Add(1)
			}
			// Emit the chunk, then let it go: the merged stream holds
			// O(chunk) results per shard, never the grid.
			for j, gi := range chunk {
				if err := sink(gi, SweepResult{SweepResult: results[j], Owner: origin, Replica: replicas[j]}); err != nil {
					return gi, err
				}
			}
			if c.OnChunk != nil {
				// One announcement per contiguous replica segment; a
				// chunk answered whole by one replica is one segment.
				for lo := 0; lo < len(chunk); {
					hi := lo + 1
					for hi < len(chunk) && replicas[hi] == replicas[lo] {
						hi++
					}
					c.OnChunk(ChunkResult{Shard: origin, Replica: replicas[lo], Indices: chunk[lo:hi], Results: results[lo:hi]})
					lo = hi
				}
			}
		}
		return 0, nil
	})
}

// translateChunkError maps a failing index relative to the dispatched
// sub-chunk back to the chunk's own index space (past items already
// salvaged from earlier partial completions), preserving the QueryError
// classification so retryability survives the rebuild.
func translateChunkError(err error, remainIdx []int) error {
	var ce *serve.ChunkError
	if !errors.As(err, &ce) || ce.Index < 0 || ce.Index >= len(remainIdx) || remainIdx[ce.Index] == ce.Index {
		return err
	}
	translated := &serve.ChunkError{Index: remainIdx[ce.Index], Err: ce.Err}
	var qe *QueryError
	if errors.As(err, &qe) {
		return &QueryError{Status: qe.Status, Err: translated}
	}
	return translated
}

// dispatch sends one chunk, walking the failover ring from the dispatch
// origin until every item is answered or the attempt budget is spent.
// replicas[j] names the replica that answered results[j] — more than one
// after a partial-chunk completion, where the items a failing replica
// streamed back before dying are kept and only the unanswered rest is
// re-dispatched. Replicas the health plane marks dead are skipped without
// paying a timeout; a failed attempt marks its replica dead for every later
// chunk and query. Deterministic rejections (non-retryable QueryErrors)
// return immediately. The error after an exhausted budget is the earliest
// failure still naming an unanswered item — the most diagnostic one — with
// the budget noted.
func (c *Coordinator) dispatch(ctx context.Context, origin int, items []serve.SweepItem) ([]serve.SweepResult, []int, error) {
	n := len(c.router.clients)
	budget := c.attempts()
	results := make([]serve.SweepResult, len(items))
	replicas := make([]int, len(items))
	answered := make([]bool, len(items))
	nAnswered := 0
	remainIdx := make([]int, len(items)) // chunk-local indices still unanswered
	for i := range remainIdx {
		remainIdx[i] = i
	}
	var credits []salvageCredit
	var firstErr error
	firstErrAt := -1  // firstErr's chunk-local item index; -1 = chunk-level
	firstErrSeen := 0 // answered count when firstErr was recorded
	attempts, pos, skipped := 0, 0, 0
	for attempts < budget {
		// A cancelled sweep stops walking the ring: no new attempt, no
		// cooldown wait, no health-plane mutation.
		if err := ctx.Err(); err != nil {
			return nil, nil, err
		}
		replica := (origin + pos) % n
		pos++
		if !c.router.health.Allow(replica) {
			// Known dead within its cooldown: skip without burning a
			// timeout or an attempt.
			skipped++
			if skipped < n {
				continue
			}
			// A full ring of skips: no replica is admissible right now.
			// The default budget (<= one try per replica) fails fast,
			// as a dead fleet should — but not while another
			// goroutine's trial is in flight: that trial may re-admit
			// a replica this chunk can use milliseconds from now, and
			// a fleet that is genuinely dead has no suspects once its
			// trials resolve.
			if budget <= n {
				if !c.router.health.anySuspect() {
					break
				}
				// Wait for the in-flight trial to resolve, polling with
				// non-counting peeks (like the budget>n branch below)
				// so the wait neither claims slots nor inflates the
				// avoided-attempt counter.
				for c.router.health.anySuspect() && !c.router.health.anyDue() {
					if err := sleepCtx(ctx, healthWaitStep(c.router.health.Cooldown())); err != nil {
						return nil, nil, err
					}
				}
				skipped = 0
				continue
			}
			// A larger budget is the operator opting into wrap-around
			// retries, and those wait out the cooldown — a trial slot
			// opens once per replica per window, and the prober may
			// re-admit a restarted replica sooner — instead of
			// aborting with budget unspent. Poll with a non-counting
			// peek: waiting must neither claim trial slots it may not
			// use nor inflate the avoided-attempt counter.
			for !c.router.health.anyDue() {
				if err := sleepCtx(ctx, healthWaitStep(c.router.health.Cooldown())); err != nil {
					return nil, nil, err
				}
			}
			skipped = 0
			continue
		}
		skipped = 0
		attempts++
		sub := make([]serve.SweepItem, len(remainIdx))
		for j, li := range remainIdx {
			sub[j] = items[li]
		}
		got := 0
		var malformed error
		err := c.router.clients[replica].Sweep(ctx, c.request(sub), func(j int, res serve.SweepResult) error {
			if j < 0 || j >= len(remainIdx) {
				malformed = fmt.Errorf("shard: replica %d answered item %d of a %d-item chunk", replica, j, len(sub))
				return malformed
			}
			li := remainIdx[j]
			if answered[li] {
				malformed = fmt.Errorf("shard: replica %d answered chunk item %d twice", replica, j)
				return malformed
			}
			results[li] = res
			replicas[li] = replica
			answered[li] = true
			nAnswered++
			got++
			return nil
		})
		if malformed != nil {
			// Malformed but answered: resolve the trial so the replica is
			// not parked in suspect with no probe in flight.
			c.router.health.MarkHealthy(replica)
			return nil, nil, malformed
		}
		if err == nil {
			if got != len(sub) {
				c.router.health.MarkHealthy(replica)
				return nil, nil, fmt.Errorf("shard: replica %d answered %d of %d chunk items", replica, got, len(sub))
			}
			c.router.health.MarkHealthy(replica)
			// Credit the counters only now that the chunk is whole: a
			// salvage a failed dispatch would have discarded must not
			// inflate PartialSalvages or the per-replica item counters.
			c.router.routedSweepItems[replica].Add(uint64(got))
			for _, cr := range credits {
				c.router.routedSweepItems[cr.replica].Add(uint64(cr.items))
				c.salvaged.Add(uint64(cr.items))
			}
			return results, replicas, nil
		}
		err = translateChunkError(err, remainIdx)
		// Our own cancellation surfaces as a transport failure from the
		// replica's point of view (request body closed mid-stream). Return
		// it without touching the health plane: the replica is fine; the
		// caller gave up. Benching here would black out a healthy replica
		// for a full cooldown after every client-side deadline.
		if ctx.Err() != nil {
			return nil, nil, err
		}
		if !retryable(err) {
			// A deterministic rejection is still an answer: the replica
			// is provably alive, so a suspect trial resolves healthy
			// instead of leaving the replica benched.
			c.router.health.MarkHealthy(replica)
			return nil, nil, err
		}
		// Bench only on transport-level failures (connection refused,
		// timeout, truncated stream): those are the ones whose retry
		// would cost a timeout. An answered error — structured 5xx or
		// item-attributed ChunkError — is a live replica responding
		// quickly, and it resolves any in-flight trial; benching on it
		// would let a poison item that 5xxes identically everywhere
		// walk the ring marking the whole fleet dead and black out
		// unrelated /query traffic for a cooldown.
		if replicaAnswered(err) {
			c.router.health.MarkHealthy(replica)
		} else {
			c.router.health.MarkFailed(replica)
		}
		if got > 0 {
			// Partial-chunk completion: the items the replica streamed
			// back before failing are final (deterministic on any
			// replica); keep them and re-dispatch only the unanswered
			// rest. Streaming generalizes the old prefix-only salvage:
			// whatever arrived counts, however the failure ended the
			// stream.
			credits = append(credits, salvageCredit{replica: replica, items: got})
			rest := make([]int, 0, len(remainIdx)-got)
			for _, li := range remainIdx {
				if !answered[li] {
					rest = append(rest, li)
				}
			}
			remainIdx = rest
		}
		// Remember the failure an exhausted budget reports: the earliest
		// one still naming an unanswered item. A failure a later salvage
		// answered would misdirect the operator to a cell that is fine.
		// A chunk-level failure (no index) is superseded by any salvage
		// progress at all.
		if firstErr != nil {
			superseded := nAnswered > firstErrSeen
			if firstErrAt >= 0 && firstErrAt < len(answered) {
				superseded = answered[firstErrAt]
			}
			if superseded {
				firstErr, firstErrAt = nil, -1
			}
		}
		if firstErr == nil {
			firstErr, firstErrAt, firstErrSeen = err, -1, nAnswered
			var fce *serve.ChunkError
			if errors.As(err, &fce) {
				firstErrAt = fce.Index
			}
		}
	}
	if attempts == 0 {
		return nil, nil, fmt.Errorf("shard: chunk found no admissible replica (all %d marked dead within the health cooldown; re-dispatch budget %d unspent)", n, budget)
	}
	return nil, nil, fmt.Errorf("shard: chunk exhausted its re-dispatch budget (%d of %d attempts): %w", attempts, budget, firstErr)
}

// salvageCredit defers counter updates for a salvaged partial chunk until
// its chunk completes: replica executed items results a failed dispatch
// would have thrown away.
type salvageCredit struct {
	replica, items int
}

// sleepCtx waits for d or until ctx is done, whichever comes first,
// returning ctx.Err() in the latter case. Unlike a bare time.Sleep it wakes
// a cancelled sweep immediately, and unlike time.After it never leaks a
// timer into the runtime's heap when cancellation wins the race.
func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// healthWaitStep bounds how often a dispatch waiting on a fully cooled-down
// ring rechecks it: responsive for test-scale cooldowns without
// busy-polling production ones.
func healthWaitStep(cooldown time.Duration) time.Duration {
	step := cooldown / 10
	if step < time.Millisecond {
		step = time.Millisecond
	}
	if step > 250*time.Millisecond {
		step = 250 * time.Millisecond
	}
	return step
}
