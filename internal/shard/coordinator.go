package shard

import (
	"errors"
	"fmt"
	"sync/atomic"

	"repro/internal/serve"
)

// DefaultChunkSize bounds the items per dispatched sweep chunk when the
// caller does not choose one. Chunking amortizes the per-request transport
// cost across several simulations while bounding two failure costs: how
// much work one replica crash throws away (at most a chunk is re-executed
// elsewhere) and how stale the coordinator's view of a shard can get
// between dispatches.
const DefaultChunkSize = 8

// Coordinator drives a grid sweep across a replica fleet — the multi-host
// analogue of SweepBatch, where the "engines" are remote cmd/serve
// processes reached over the Client interface. It partitions the grid by
// shape ownership (each replica sweeps the slice of the (log M·N, log K)
// plane its caches are warm for), splits every shard's sub-grid into
// fixed-size chunks, dispatches them over /sweep, and streams per-shard
// results back into the deterministic global order: results[i] answers
// items[i] at any fleet size.
//
// The coordinator survives replica churn mid-sweep: a chunk whose replica
// dies (connection refused, timeout, 5xx) is re-dispatched through the
// failover ring — owner+1, owner+2, ... — under a bounded attempt budget,
// instead of failing the sweep. Untuned sweep results are deterministic and
// cache-history-free on any replica of an identically configured fleet, so
// re-dispatch cannot perturb the merged output. Deterministic rejections
// (4xx QueryErrors) are not retried: every replica would reject the chunk
// identically, and the failure is attributed to its global item index via
// the serve.ChunkError convention (the remote cousin of engine.RunError).
//
// A Coordinator is safe for concurrent Sweep calls; the knob fields must be
// set before the first call.
type Coordinator struct {
	router *Router

	// ChunkSize bounds the items per dispatched chunk; <= 0 selects
	// DefaultChunkSize.
	ChunkSize int
	// MaxAttempts bounds dispatch attempts per chunk, walking the
	// failover ring from the owner; <= 0 selects the fleet size (one try
	// per replica).
	MaxAttempts int
	// Tune selects the tuned sweep pipeline on the replicas (see
	// serve.SweepRequest.Tune); false sweeps the untuned per-wave
	// baseline, whose merged results are byte-identical to engine.Batch.
	Tune bool
	// OnChunk, when set, observes every completed chunk as it lands —
	// per-shard result streaming for progress reporting. It is called
	// from the per-shard sweep goroutines and must be safe for concurrent
	// use.
	OnChunk func(ChunkResult)

	redispatches atomic.Uint64
}

// ChunkResult announces one completed chunk to OnChunk.
type ChunkResult struct {
	// Shard owns the chunk; Replica answered it (different only after a
	// re-dispatch through the failover ring).
	Shard, Replica int
	// Indices are the chunk's global item indices; Results[j] answers
	// Indices[j].
	Indices []int
	Results []serve.SweepResult
}

// SweepResult is one sweep item's outcome plus routing attribution: the
// shard that owned it and the replica that actually executed it.
type SweepResult struct {
	serve.SweepResult
	Owner   int `json:"owner"`
	Replica int `json:"replica"`
}

// NewCoordinator builds a coordinator over the router's fleet, sharing its
// clients, ownership partitioner, and failover accounting.
func NewCoordinator(r *Router) *Coordinator {
	return &Coordinator{router: r}
}

// Redispatches counts chunks that left their owner: dispatch attempts that
// succeeded on a ring hop past the first. The count is cumulative across
// Sweep calls.
func (c *Coordinator) Redispatches() uint64 { return c.redispatches.Load() }

func (c *Coordinator) chunkSize() int {
	if c.ChunkSize <= 0 {
		return DefaultChunkSize
	}
	return c.ChunkSize
}

func (c *Coordinator) attempts() int {
	if c.MaxAttempts <= 0 {
		return len(c.router.clients)
	}
	return c.MaxAttempts
}

// Sweep tunes/executes the whole grid across the fleet and merges the
// per-shard results back into input order: results[i] answers items[i], the
// same deterministic global order SweepBatch and engine.Batch return. On
// failure the error with the lowest failing global item index is reported
// as "sweep item <index>: ...", regardless of which shards finished first.
func (c *Coordinator) Sweep(items []serve.SweepItem) ([]SweepResult, error) {
	byOwner := make([][]int, len(c.router.clients))
	for i, it := range items {
		k := c.router.part.Owner(it.Shape())
		byOwner[k] = append(byOwner[k], i)
	}
	out := make([]SweepResult, len(items))
	size := c.chunkSize()
	err := fanShards(byOwner, func(k int, list []int) (int, error) {
		for start := 0; start < len(list); start += size {
			chunk := list[start:min(start+size, len(list))]
			sub := make([]serve.SweepItem, len(chunk))
			for j, gi := range chunk {
				sub[j] = items[gi]
			}
			results, replica, err := c.dispatch(k, serve.SweepRequest{Tune: c.Tune, Items: sub})
			if err != nil {
				// Attribute the failure to the item the replica
				// named, translated to the global grid; a chunk-level
				// failure (budget exhausted) pins to the chunk's
				// first item.
				at := chunk[0]
				var ce *serve.ChunkError
				if errors.As(err, &ce) && ce.Index >= 0 && ce.Index < len(chunk) {
					at = chunk[ce.Index]
				}
				return at, err
			}
			if len(results) != len(chunk) {
				return chunk[0], fmt.Errorf("shard: replica %d answered %d of %d chunk items", replica, len(results), len(chunk))
			}
			for j, gi := range chunk {
				out[gi] = SweepResult{SweepResult: results[j], Owner: k, Replica: replica}
			}
			if c.OnChunk != nil {
				c.OnChunk(ChunkResult{Shard: k, Replica: replica, Indices: chunk, Results: results})
			}
		}
		return 0, nil
	})
	if err != nil {
		return nil, fmt.Errorf("shard: sweep item %w", err)
	}
	return out, nil
}

// dispatch sends one chunk, walking the failover ring from the owner until
// a replica answers or the attempt budget is spent. Deterministic
// rejections (non-retryable QueryErrors) return immediately. The error
// after an exhausted budget is the first (owner's) failure — the most
// diagnostic one — with the budget noted.
func (c *Coordinator) dispatch(owner int, req serve.SweepRequest) ([]serve.SweepResult, int, error) {
	n := len(c.router.clients)
	budget := c.attempts()
	var firstErr error
	for a := 0; a < budget; a++ {
		replica := (owner + a) % n
		results, err := c.router.clients[replica].Sweep(req)
		if err == nil {
			if a > 0 {
				c.redispatches.Add(1)
				c.router.failovers.Add(1)
			}
			c.router.routed[replica].Add(uint64(len(req.Items)))
			return results, replica, nil
		}
		if firstErr == nil {
			firstErr = err
		}
		if !retryable(err) {
			return nil, replica, err
		}
	}
	return nil, owner, fmt.Errorf("shard: chunk exhausted its re-dispatch budget (%d attempts): %w", budget, firstErr)
}
