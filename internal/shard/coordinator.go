package shard

import (
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/engine"
	"repro/internal/gemm"
	"repro/internal/serve"
	"repro/internal/sim"
)

// DefaultChunkSize bounds the items per dispatched sweep chunk when the
// caller does not choose one. Chunking amortizes the per-request transport
// cost across several simulations while bounding two failure costs: how
// much work one replica crash throws away (at most a chunk is re-executed
// elsewhere) and how stale the coordinator's view of a shard can get
// between dispatches.
const DefaultChunkSize = 8

// Coordinator drives a grid sweep across a replica fleet — the multi-host
// analogue of SweepBatch, where the "engines" are remote cmd/serve
// processes reached over the Client interface. It partitions the grid by
// shape ownership (each replica sweeps the slice of the (log M·N, log K)
// plane its caches are warm for), splits every shard's sub-grid into
// fixed-size chunks, dispatches them over /sweep, and streams per-shard
// results back into the deterministic global order: results[i] answers
// items[i] at any fleet size.
//
// The coordinator survives replica churn mid-sweep: a chunk whose replica
// dies (connection refused, timeout, 5xx) is re-dispatched through the
// failover ring — owner+1, owner+2, ... — under a bounded attempt budget,
// instead of failing the sweep. The router's shared health plane makes the
// degraded path cheap and recoverable: a replica that failed is marked dead
// and skipped by every later chunk until its cooldown elapses (at most one
// probe timeout per replica per cooldown window, not one per chunk), and a
// background /healthz prober re-admits a replica that restarts mid-sweep so
// it reclaims its owned shard. A chunk that fails partway keeps its
// completed prefix and re-dispatches only the unanswered suffix. Untuned
// sweep results are deterministic and cache-history-free on any replica of
// an identically configured fleet, so re-dispatch cannot perturb the merged
// output. Deterministic rejections (4xx QueryErrors) are not retried: every
// replica would reject the chunk identically, and the failure is attributed
// to its global item index via the serve.ChunkError convention (the remote
// cousin of engine.RunError).
//
// A Coordinator is safe for concurrent Sweep calls; the knob fields must be
// set before the first call.
type Coordinator struct {
	router *Router

	// ChunkSize bounds the items per dispatched chunk; <= 0 selects
	// DefaultChunkSize.
	ChunkSize int
	// MaxAttempts bounds dispatch attempts per chunk, walking the
	// failover ring from the owner; <= 0 selects the fleet size (one try
	// per replica). A budget beyond the fleet size does not hammer dead
	// replicas back-to-back: wrap-around retries are admitted only after
	// the replica's health cooldown elapses, so the extra budget helps
	// exactly when a replica recovers (or is re-admitted by the prober)
	// mid-dispatch.
	MaxAttempts int
	// Tune selects the tuned sweep pipeline on the replicas (see
	// serve.SweepRequest.Tune); false sweeps the untuned per-wave
	// baseline, whose merged results are byte-identical to engine.Batch.
	Tune bool
	// ProbeInterval paces the background /healthz prober each Sweep holds
	// for its duration, re-admitting replicas that restart mid-sweep;
	// <= 0 selects the router's health cooldown. The prober is shared per
	// router (one goroutine however many holders), so the interval of the
	// holder that starts it wins — cmd/route's process-lifetime prober
	// takes precedence over per-sweep settings.
	ProbeInterval time.Duration
	// OnChunk, when set, observes every completed chunk as it lands —
	// per-shard result streaming for progress reporting. A chunk whose
	// items were answered by more than one replica (partial-chunk
	// completion) is announced once per contiguous replica segment. It is
	// called from the per-shard sweep goroutines and must be safe for
	// concurrent use.
	OnChunk func(ChunkResult)
	// Fidelity selects the sweep's execution fidelity: "" dispatches each
	// item with whatever label it already carries (DES by default),
	// serve.FidelityDES / serve.FidelityAnalytic stamp every item with
	// that backend, and serve.FidelityMixed orchestrates two tiers — the
	// whole grid analytically, then the top TopK per rank cell through
	// the simulator. Mixed phases dispatch per-item-stamped items, so a
	// router proxied as a replica passes them through untouched instead
	// of re-ranking a sub-grid.
	Fidelity string
	// TopK bounds the mixed sweep's per-cell DES confirmations; <= 0
	// selects engine.DefaultTopK.
	TopK int
	// RankQuantum is the mixed sweep's rank-cell edge in log2 units; <= 0
	// selects engine.DefaultRankQuantum.
	RankQuantum float64

	redispatches atomic.Uint64
	salvaged     atomic.Uint64
}

// ChunkResult announces one completed chunk (or, after a partial-chunk
// completion, one contiguous segment of it) to OnChunk.
type ChunkResult struct {
	// Shard owns the chunk; Replica answered it (different only after a
	// re-dispatch through the failover ring).
	Shard, Replica int
	// Indices are the segment's global item indices; Results[j] answers
	// Indices[j].
	Indices []int
	Results []serve.SweepResult
}

// SweepResult is one sweep item's outcome plus routing attribution: the
// shard that owned it and the replica that actually executed it.
type SweepResult struct {
	serve.SweepResult
	Owner   int `json:"owner"`
	Replica int `json:"replica"`
}

// NewCoordinator builds a coordinator over the router's fleet, sharing its
// clients, ownership partitioner, health plane, and failover accounting.
func NewCoordinator(r *Router) *Coordinator {
	return &Coordinator{router: r}
}

// Redispatches counts chunks that left their owner: chunks any of whose
// items were answered by a ring hop past the owner. The count is cumulative
// across Sweep calls.
func (c *Coordinator) Redispatches() uint64 { return c.redispatches.Load() }

// PartialSalvages counts items whose results were kept from a chunk that
// failed partway — work the partial-chunk completion path did not have to
// re-execute. Cumulative across Sweep calls.
func (c *Coordinator) PartialSalvages() uint64 { return c.salvaged.Load() }

func (c *Coordinator) chunkSize() int {
	if c.ChunkSize <= 0 {
		return DefaultChunkSize
	}
	return c.ChunkSize
}

func (c *Coordinator) attempts() int {
	if c.MaxAttempts <= 0 {
		return len(c.router.clients)
	}
	return c.MaxAttempts
}

// request builds the wire chunk, forwarding the coordinator's knobs so a
// router proxying /sweep for this "replica" re-chunks with the caller's
// chunk size and attempt budget instead of silently resetting to defaults.
func (c *Coordinator) request(items []serve.SweepItem) serve.SweepRequest {
	return serve.SweepRequest{Tune: c.Tune, Chunk: c.ChunkSize, Attempts: c.MaxAttempts, Items: items}
}

// Sweep tunes/executes the whole grid across the fleet and merges the
// per-shard results back into input order: results[i] answers items[i], the
// same deterministic global order SweepBatch and engine.Batch return. On
// failure the error with the lowest failing global item index is reported
// as "sweep item <index>: ...", regardless of which shards finished first.
//
// The Fidelity knob selects what executes: a flat sweep (every item at one
// backend fidelity, or each item's own label when Fidelity is "") dispatches
// the grid once; a mixed sweep dispatches twice — the whole grid analytic,
// then the engine.RankTopK winners at DES — with both phases enjoying the
// same churn tolerance, partial-chunk salvage, and deterministic merge
// order. Every result carries its fidelity label and the Owner/Replica
// attribution of the phase that produced it.
func (c *Coordinator) Sweep(items []serve.SweepItem) ([]SweepResult, error) {
	// Probe dead replicas in the background for the sweep's duration: a
	// replica that restarts mid-sweep is re-admitted and reclaims its
	// owned shard instead of staying failed-over until the sweep ends.
	// The prober is shared and refcounted: concurrent sweeps (and
	// cmd/route's process-lifetime holder) share one goroutine, and it
	// outlives this sweep if anyone else still holds it.
	stopProber := c.router.StartProber(c.ProbeInterval)
	defer stopProber()

	var out []SweepResult
	var err error
	switch c.Fidelity {
	case "", serve.FidelityDES, serve.FidelityAnalytic:
		out, err = c.sweepGrid(stampItems(items, c.Fidelity))
	case serve.FidelityMixed:
		out, err = c.sweepMixed(items)
	default:
		return nil, &QueryError{Err: fmt.Errorf("shard: unknown sweep fidelity %q (want %q, %q, or %q)", c.Fidelity, serve.FidelityDES, serve.FidelityAnalytic, serve.FidelityMixed)}
	}
	if err != nil {
		return nil, fmt.Errorf("shard: sweep item %w", err)
	}
	return out, nil
}

// stampItems returns items with every fidelity label forced to f; f == ""
// passes the grid through with whatever labels the caller set.
func stampItems(items []serve.SweepItem, f string) []serve.SweepItem {
	if f == "" {
		return items
	}
	out := make([]serve.SweepItem, len(items))
	for i, it := range items {
		it.Fidelity = f
		out[i] = it
	}
	return out
}

// sweepMixed is the fleet-wide mixed-fidelity orchestration: the whole grid
// analytically (cheap — no event simulation), rank per quantized shape cell
// over the merged latencies, then confirm only the top TopK per cell on the
// simulator. Both phases stamp per-item fidelities, so replicas (and router
// proxies acting as replicas) execute exactly what the coordinator ranked —
// no replica re-ranks its local sub-grid. Refined results overwrite their
// analytic counterparts in place, Owner/Replica attribution included.
func (c *Coordinator) sweepMixed(items []serve.SweepItem) ([]SweepResult, error) {
	for i, it := range items {
		if it.Fidelity != "" {
			return nil, &fanError{At: i, Err: &QueryError{Err: fmt.Errorf("shard: mixed sweep item carries fidelity %q; the mixed policy assigns fidelities itself", it.Fidelity)}}
		}
	}
	out, err := c.sweepGrid(stampItems(items, serve.FidelityAnalytic))
	if err != nil {
		return nil, err
	}
	shapes := make([]gemm.Shape, len(out))
	latencies := make([]sim.Time, len(out))
	for i, r := range out {
		shapes[i] = items[i].Shape()
		latencies[i] = r.Result.Latency
	}
	refined := engine.RankTopK(shapes, latencies, c.TopK, c.RankQuantum)
	des := make([]serve.SweepItem, len(refined))
	for j, gi := range refined {
		des[j] = items[gi]
	}
	desOut, err := c.sweepGrid(stampItems(des, serve.FidelityDES))
	if err != nil {
		// The refine phase named an index into its sub-grid; translate it
		// back to the caller's grid.
		var fe *fanError
		if errors.As(err, &fe) && fe.At >= 0 && fe.At < len(refined) {
			err = &fanError{At: refined[fe.At], Err: fe.Err}
		}
		return nil, err
	}
	for j, gi := range refined {
		out[gi] = desOut[j]
	}
	return out, nil
}

// sweepGrid dispatches one already-stamped grid across the fleet — the
// chunking, failover, and merge loop shared by every fidelity mode. Failures
// surface as the raw *fanError (lowest failing global index) so callers can
// translate sub-grid indices before the user-facing wrap.
func (c *Coordinator) sweepGrid(items []serve.SweepItem) ([]SweepResult, error) {
	byOwner := make([][]int, len(c.router.clients))
	for i, it := range items {
		k := c.router.part.Owner(it.Shape())
		byOwner[k] = append(byOwner[k], i)
	}
	out := make([]SweepResult, len(items))
	size := c.chunkSize()
	err := fanShards(byOwner, func(k int, list []int) (int, error) {
		for start := 0; start < len(list); start += size {
			chunk := list[start:min(start+size, len(list))]
			sub := make([]serve.SweepItem, len(chunk))
			for j, gi := range chunk {
				sub[j] = items[gi]
			}
			results, replicas, err := c.dispatch(k, sub)
			if err != nil {
				// Attribute the failure to the item the replica
				// named, translated to the global grid; a chunk-level
				// failure (budget exhausted) pins to the chunk's
				// first item.
				at := chunk[0]
				var ce *serve.ChunkError
				if errors.As(err, &ce) && ce.Index >= 0 && ce.Index < len(chunk) {
					at = chunk[ce.Index]
				}
				return at, err
			}
			left := false
			for j, gi := range chunk {
				out[gi] = SweepResult{SweepResult: results[j], Owner: k, Replica: replicas[j]}
				if replicas[j] != k {
					left = true
				}
			}
			if left {
				c.redispatches.Add(1)
				c.router.failovers.Add(1)
			}
			if c.OnChunk != nil {
				// One announcement per contiguous replica segment; a
				// chunk answered whole by one replica is one segment.
				for lo := 0; lo < len(chunk); {
					hi := lo + 1
					for hi < len(chunk) && replicas[hi] == replicas[lo] {
						hi++
					}
					c.OnChunk(ChunkResult{Shard: k, Replica: replicas[lo], Indices: chunk[lo:hi], Results: results[lo:hi]})
					lo = hi
				}
			}
		}
		return 0, nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// offsetChunkError translates a chunk-local failure index past the items
// already salvaged from earlier partial completions, preserving the
// QueryError classification so retryability survives the rebuild.
func offsetChunkError(err error, base int) error {
	if base == 0 {
		return err
	}
	var ce *serve.ChunkError
	if !errors.As(err, &ce) {
		return err
	}
	translated := &serve.ChunkError{Index: base + ce.Index, Err: ce.Err}
	var qe *QueryError
	if errors.As(err, &qe) {
		return &QueryError{Status: qe.Status, Err: translated}
	}
	return translated
}

// dispatch sends one chunk, walking the failover ring from the owner until
// every item is answered or the attempt budget is spent. replicas[j] names
// the replica that answered results[j] — more than one after a
// partial-chunk completion, where a chunk failing at item i keeps
// results[0..i) and re-dispatches only the unanswered suffix. Replicas the
// health plane marks dead are skipped without paying a timeout; a failed
// attempt marks its replica dead for every later chunk and query.
// Deterministic rejections (non-retryable QueryErrors) return immediately.
// The error after an exhausted budget is the first attempt's failure — the
// most diagnostic one — with the budget noted.
func (c *Coordinator) dispatch(owner int, items []serve.SweepItem) ([]serve.SweepResult, []int, error) {
	n := len(c.router.clients)
	budget := c.attempts()
	done := make([]serve.SweepResult, 0, len(items))
	replicas := make([]int, 0, len(items))
	remaining := items
	var firstErr error
	firstErrAt := -1 // firstErr's chunk-local item index; -1 = chunk-level
	var credits []salvageCredit
	attempts, pos, skipped := 0, 0, 0
	for attempts < budget {
		replica := (owner + pos) % n
		pos++
		if !c.router.health.Allow(replica) {
			// Known dead within its cooldown: skip without burning a
			// timeout or an attempt.
			skipped++
			if skipped < n {
				continue
			}
			// A full ring of skips: no replica is admissible right now.
			// The default budget (<= one try per replica) fails fast,
			// as a dead fleet should — but not while another
			// goroutine's trial is in flight: that trial may re-admit
			// a replica this chunk can use milliseconds from now, and
			// a fleet that is genuinely dead has no suspects once its
			// trials resolve.
			if budget <= n {
				if !c.router.health.anySuspect() {
					break
				}
				// Wait for the in-flight trial to resolve, polling with
				// non-counting peeks (like the budget>n branch below)
				// so the wait neither claims slots nor inflates the
				// avoided-attempt counter.
				for c.router.health.anySuspect() && !c.router.health.anyDue() {
					time.Sleep(healthWaitStep(c.router.health.Cooldown()))
				}
				skipped = 0
				continue
			}
			// A larger budget is the operator opting into wrap-around
			// retries, and those wait out the cooldown — a trial slot
			// opens once per replica per window, and the prober may
			// re-admit a restarted replica sooner — instead of
			// aborting with budget unspent. Poll with a non-counting
			// peek: waiting must neither claim trial slots it may not
			// use nor inflate the avoided-attempt counter.
			for !c.router.health.anyDue() {
				time.Sleep(healthWaitStep(c.router.health.Cooldown()))
			}
			skipped = 0
			continue
		}
		skipped = 0
		attempts++
		results, err := c.router.clients[replica].Sweep(c.request(remaining))
		if err == nil {
			if len(results) != len(remaining) {
				// Malformed but answered: resolve the trial so the
				// replica is not parked in suspect with no probe in
				// flight.
				c.router.health.MarkHealthy(replica)
				return nil, nil, fmt.Errorf("shard: replica %d answered %d of %d chunk items", replica, len(results), len(remaining))
			}
			c.router.health.MarkHealthy(replica)
			done = append(done, results...)
			for range results {
				replicas = append(replicas, replica)
			}
			// Credit the counters only now that the chunk is whole: a
			// salvage a failed dispatch would have discarded must not
			// inflate PartialSalvages or the per-replica item counters.
			c.router.routedSweepItems[replica].Add(uint64(len(results)))
			for _, cr := range credits {
				c.router.routedSweepItems[cr.replica].Add(uint64(cr.items))
				c.salvaged.Add(uint64(cr.items))
			}
			return done, replicas, nil
		}
		err = offsetChunkError(err, len(done))
		if !retryable(err) {
			// A deterministic rejection is still an answer: the replica
			// is provably alive, so a suspect trial resolves healthy
			// instead of leaving the replica benched.
			c.router.health.MarkHealthy(replica)
			return nil, nil, err
		}
		// Bench only on transport-level failures (connection refused,
		// timeout, truncated body): those are the ones whose retry
		// would cost a timeout. An answered error — structured 5xx or
		// item-attributed ChunkError — is a live replica responding
		// quickly, and it resolves any in-flight trial; benching on it
		// would let a poison item that 5xxes identically everywhere
		// walk the ring marking the whole fleet dead and black out
		// unrelated /query traffic for a cooldown.
		if replicaAnswered(err) {
			c.router.health.MarkHealthy(replica)
		} else {
			c.router.health.MarkFailed(replica)
		}
		var ce *serve.ChunkError
		errors.As(err, &ce)
		// Partial-chunk completion: when the error names the failing item
		// and the replica answered exactly the prefix before it, keep
		// those results and re-dispatch only the suffix. (SweepChunk
		// processes in order, so the prefix is final.)
		if ce != nil && len(results) > 0 && ce.Index == len(done)+len(results) && len(results) < len(remaining) {
			done = append(done, results...)
			for range results {
				replicas = append(replicas, replica)
			}
			credits = append(credits, salvageCredit{replica: replica, items: len(results)})
			remaining = remaining[len(results):]
		}
		// Remember the failure an exhausted budget reports: the earliest
		// one still naming an unanswered item. A failure a later salvage
		// answered would misdirect the operator to a cell that is fine.
		// An index-less (chunk-level) failure pins to the chunk's first
		// item, so any salvage at all supersedes it.
		if firstErr != nil && max(firstErrAt, 0) < len(done) {
			firstErr, firstErrAt = nil, -1
		}
		if firstErr == nil {
			firstErr, firstErrAt = err, -1
			var fce *serve.ChunkError
			if errors.As(err, &fce) {
				firstErrAt = fce.Index
			}
		}
	}
	if attempts == 0 {
		return nil, nil, fmt.Errorf("shard: chunk found no admissible replica (all %d marked dead within the health cooldown; re-dispatch budget %d unspent)", n, budget)
	}
	return nil, nil, fmt.Errorf("shard: chunk exhausted its re-dispatch budget (%d of %d attempts): %w", attempts, budget, firstErr)
}

// salvageCredit defers counter updates for a salvaged prefix until its
// chunk completes: replica executed items results a failed dispatch would
// have thrown away.
type salvageCredit struct {
	replica, items int
}

// healthWaitStep bounds how often a dispatch waiting on a fully cooled-down
// ring rechecks it: responsive for test-scale cooldowns without
// busy-polling production ones.
func healthWaitStep(cooldown time.Duration) time.Duration {
	step := cooldown / 10
	if step < time.Millisecond {
		step = time.Millisecond
	}
	if step > 250*time.Millisecond {
		step = 250 * time.Millisecond
	}
	return step
}
