package shard

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/gemm"
	"repro/internal/hw"
	"repro/internal/serve"
)

// coordItems builds the sweep grid the coordinator tests drive: the quick
// Table 3 shapes as untuned AllReduce items, matching the testFleet
// configuration (RTX4090PCIe x2).
func coordItems() []serve.SweepItem {
	var items []serve.SweepItem
	for _, s := range quickGridShapes() {
		items = append(items, serve.SweepItem{M: s.M, N: s.N, K: s.K, Prim: "AR"})
	}
	return items
}

// coordReference runs the same grid through one in-process engine.Batch —
// the unsharded single-process path the distributed merge must reproduce.
func coordReference(t *testing.T, items []serve.SweepItem) []byte {
	t.Helper()
	runs := make([]core.Options, len(items))
	for i, it := range items {
		runs[i] = core.Options{Plat: hw.RTX4090PCIe(), NGPUs: 2, Shape: it.Shape(), Prim: hw.AllReduce}
	}
	ref, err := engine.New(0, 0).Batch(context.Background(), runs)
	if err != nil {
		t.Fatal(err)
	}
	refJSON, err := json.Marshal(ref)
	if err != nil {
		t.Fatal(err)
	}
	return refJSON
}

// mergedJSON serializes the execution results of a coordinator sweep in
// global order, the byte-comparison form.
func mergedJSON(t *testing.T, results []SweepResult) []byte {
	t.Helper()
	merged := make([]*core.Result, len(results))
	for i, r := range results {
		merged[i] = r.Result
	}
	got, err := json.Marshal(merged)
	if err != nil {
		t.Fatal(err)
	}
	return got
}

// The acceptance property of the distributed sweep: chunked dispatch to a
// remote HTTP fleet at any shard count merges back byte-identically to
// single-process engine.Batch over the same grid.
func TestCoordinatorSweepMatchesEngineBatchByteForByte(t *testing.T) {
	items := coordItems()
	refJSON := coordReference(t, items)
	for n := 1; n <= 3; n++ {
		r, _, _ := testFleet(t, n)
		co := NewCoordinator(r)
		co.Spec.Chunk = 2 // several chunks per shard, exercising the chunk loop
		results, err := co.Sweep(context.Background(), items)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if len(results) != len(items) {
			t.Fatalf("n=%d: %d results for %d items", n, len(results), len(items))
		}
		for i, res := range results {
			if res.Owner != r.Partitioner().Owner(items[i].Shape()) || res.Replica != res.Owner {
				t.Fatalf("n=%d: item %d executed by replica %d (owner %d) on a healthy fleet",
					n, i, res.Replica, res.Owner)
			}
		}
		if !bytes.Equal(mergedJSON(t, results), refJSON) {
			t.Fatalf("n=%d: merged sweep diverges from single-process engine.Batch", n)
		}
		if co.Redispatches() != 0 {
			t.Fatalf("n=%d: %d re-dispatches on a healthy fleet", n, co.Redispatches())
		}
	}
}

// Churn survival, the tentpole property: a replica killed mid-sweep (after
// answering its first chunk) must not fail the sweep — its remaining chunks
// re-dispatch through the failover ring, and the merged results stay
// byte-identical to the unsharded path.
func TestCoordinatorSweepSurvivesChurnMidSweep(t *testing.T) {
	items := coordItems()
	refJSON := coordReference(t, items)
	const n = 3
	r, servers, _ := testFleet(t, n)

	// Pick the victim: a shard owning at least two items, so killing it
	// after its first chunk leaves work to re-dispatch.
	counts := make([]int, n)
	for _, it := range items {
		counts[r.Partitioner().Owner(it.Shape())]++
	}
	victim := -1
	for k, c := range counts {
		if c >= 2 {
			victim = k
			break
		}
	}
	if victim < 0 {
		t.Fatal("no shard owns two quick-grid shapes; extend the grid")
	}

	co := NewCoordinator(r)
	co.Spec.Chunk = 1 // one item per chunk: the kill lands between chunks
	var kill sync.Once
	co.OnChunk = func(cr ChunkResult) {
		if cr.Shard == victim {
			kill.Do(func() { servers[victim].Close() })
		}
	}
	results, err := co.Sweep(context.Background(), items)
	if err != nil {
		t.Fatalf("sweep with replica %d killed mid-sweep: %v", victim, err)
	}
	if !bytes.Equal(mergedJSON(t, results), refJSON) {
		t.Fatal("merged results diverge from single-process engine.Batch after churn")
	}
	if co.Redispatches() == 0 {
		t.Fatal("victim's remaining chunks were not re-dispatched")
	}
	if got := int(co.Redispatches()); got != counts[victim]-1 {
		t.Fatalf("%d re-dispatches, want %d (victim owned %d items at chunk size 1)",
			got, counts[victim]-1, counts[victim])
	}
	redirected := 0
	for i, res := range results {
		if res.Owner == victim && res.Replica != victim {
			redirected++
			if res.Replica != (victim+1)%n {
				t.Fatalf("item %d re-dispatched to replica %d, want next-in-ring %d",
					i, res.Replica, (victim+1)%n)
			}
		}
	}
	if redirected != counts[victim]-1 {
		t.Fatalf("%d items attributed to a failover replica, want %d", redirected, counts[victim]-1)
	}
	if st := r.Stats(context.Background()); st.Failovers == 0 {
		t.Fatal("router stats did not record the re-dispatches")
	}
}

// The PR 5 extension of the churn story: kill -> failover (as above) ->
// restart -> mid-sweep re-admission. A replica that comes back while the
// sweep is still running must be re-admitted by the background /healthz
// prober and reclaim its owned shard before the sweep ends, with the merge
// still byte-identical to single-process engine.Batch.
func TestCoordinatorSweepReadmitsRestartedReplicaMidSweep(t *testing.T) {
	const n = 3
	items := coordItems()
	part := NewPartitioner(n)
	counts := make([]int, n)
	for _, it := range items {
		counts[part.Owner(it.Shape())]++
	}
	victim := 0
	for k, c := range counts {
		if c > counts[victim] {
			victim = k
		}
	}
	if counts[victim] < 2 {
		t.Fatal("no shard owns two quick-grid shapes; extend the grid")
	}
	// Guarantee work after the re-admission: the tail repeats a
	// victim-owned shape, so its chunks run once the victim is back.
	var tail serve.SweepItem
	for _, it := range items {
		if part.Owner(it.Shape()) == victim {
			tail = it
			break
		}
	}
	for i := 0; i < 4; i++ {
		items = append(items, tail)
	}
	refJSON := coordReference(t, items)

	// A restartable fleet: each replica listens on an address the test
	// owns, so the victim can be brought back on the same URL.
	services := make([]*serve.Service, n)
	addrs := make([]string, n)
	srvs := make([]*http.Server, n)
	listen := func(k, retries int) error {
		addr := addrs[k]
		if addr == "" {
			addr = "127.0.0.1:0"
		}
		var ln net.Listener
		var err error
		for try := 0; ; try++ {
			ln, err = net.Listen("tcp", addr)
			if err == nil {
				break
			}
			if try >= retries {
				return err
			}
			time.Sleep(20 * time.Millisecond)
		}
		addrs[k] = ln.Addr().String()
		srv := &http.Server{Handler: serve.Handler(services[k])}
		srvs[k] = srv
		go func() { _ = srv.Serve(ln) }()
		return nil
	}
	for k := 0; k < n; k++ {
		a := Assignment{Index: k, Count: n}
		svc, err := serve.New(serve.Config{
			Plat:           hw.RTX4090PCIe(),
			NGPUs:          2,
			CandidateLimit: 64,
			Owns:           a.Owns,
			Shard:          a.String(),
			Curves:         sharedCurves(t),
		})
		if err != nil {
			t.Fatal(err)
		}
		services[k] = svc
		if err := listen(k, 0); err != nil {
			t.Fatal(err)
		}
	}
	t.Cleanup(func() {
		for _, srv := range srvs {
			if srv != nil {
				_ = srv.Close()
			}
		}
	})
	httpClient := &http.Client{Timeout: 5 * time.Second}
	clients := make([]Client, n)
	for k := 0; k < n; k++ {
		clients[k] = &HTTPClient{Base: "http://" + addrs[k], HTTP: httpClient}
	}
	r, err := NewRouter(clients)
	if err != nil {
		t.Fatal(err)
	}
	r.Health().SetCooldown(200 * time.Millisecond)

	co := NewCoordinator(r)
	co.Spec.Chunk = 1                             // the kill and the restart land between chunks
	co.Spec.ProbeInterval = 10 * time.Millisecond // re-admit fast enough to matter mid-sweep

	var kill, restart sync.Once
	readmitted := make(chan struct{})
	co.OnChunk = func(cr ChunkResult) {
		if cr.Shard != victim {
			return
		}
		if cr.Replica == victim {
			kill.Do(func() { _ = srvs[victim].Close() })
			return
		}
		// Failover observed: bring the victim back on its old address and
		// block this shard's sweep goroutine until the prober re-admits
		// it, so the remaining chunks run against a healthy owner.
		restart.Do(func() {
			if err := listen(victim, 50); err != nil {
				t.Errorf("restarting victim: %v", err)
				return
			}
			// Drop any pooled connections to the dead incarnation so the
			// next dispatch dials the restarted one.
			httpClient.CloseIdleConnections()
			deadline := time.Now().Add(10 * time.Second)
			for r.Health().State(victim) != Healthy {
				if time.Now().After(deadline) {
					t.Error("victim not re-admitted within 10s of restarting")
					return
				}
				time.Sleep(5 * time.Millisecond)
			}
			close(readmitted)
		})
	}

	results, err := co.Sweep(context.Background(), items)
	if err != nil {
		t.Fatalf("sweep across kill+restart of replica %d: %v", victim, err)
	}
	select {
	case <-readmitted:
	default:
		t.Fatal("sweep finished without the victim being killed, failed over, and re-admitted")
	}
	if !bytes.Equal(mergedJSON(t, results), refJSON) {
		t.Fatal("merged results diverge from single-process engine.Batch across kill+restart")
	}
	// The tail chunks ran after the blocking re-admission wait, so the
	// recovered victim must have reclaimed them.
	last := results[len(results)-1]
	if last.Owner != victim || last.Replica != victim {
		t.Fatalf("final victim-owned item answered by replica %d, want the re-admitted owner %d", last.Replica, victim)
	}
	if co.Redispatches() == 0 {
		t.Fatal("no chunk left the victim while it was down")
	}
	st := r.Stats(context.Background())
	if st.Readmissions == 0 {
		t.Fatal("router stats recorded no re-admission")
	}
	if st.PerShard[victim].Health != "healthy" {
		t.Fatalf("victim health = %q after re-admission, want healthy", st.PerShard[victim].Health)
	}
}

// coordMixedReference runs the grid through one in-process engine.MixedBatch
// at the default knobs — the unsharded single-process mixed sweep the
// fleet-wide orchestration must reproduce byte for byte. Returns the
// serialized results plus the refined (DES-confirmed) index set.
func coordMixedReference(t *testing.T, items []serve.SweepItem) ([]byte, []int) {
	t.Helper()
	runs := make([]core.Options, len(items))
	for i, it := range items {
		runs[i] = core.Options{Plat: hw.RTX4090PCIe(), NGPUs: 2, Shape: it.Shape(), Prim: hw.AllReduce}
	}
	ref, refined, err := engine.New(0, 0).MixedBatch(context.Background(), runs, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	refJSON, err := json.Marshal(ref)
	if err != nil {
		t.Fatal(err)
	}
	return refJSON, refined
}

// checkMixedLabels asserts every result of a mixed sweep carries the
// fidelity tier the reference ranking assigned it: DES on the refined
// indices, analytic everywhere else — on both the wire envelope and the
// embedded execution result.
func checkMixedLabels(t *testing.T, results []SweepResult, refined []int) {
	t.Helper()
	isRefined := make(map[int]bool, len(refined))
	for _, gi := range refined {
		isRefined[gi] = true
	}
	for i, res := range results {
		want := serve.FidelityAnalytic
		if isRefined[i] {
			want = serve.FidelityDES
		}
		if res.Fidelity != want || string(res.Result.Fidelity) != want {
			t.Fatalf("item %d labeled (%q, %q), want %q", i, res.Fidelity, res.Result.Fidelity, want)
		}
	}
	if len(refined) == 0 || len(refined) == len(results) {
		t.Fatalf("%d of %d items refined; the mixed grid must exercise both tiers", len(refined), len(results))
	}
}

// The mixed-fidelity acceptance property at the fleet level: a coordinator
// sweeping at FidelityMixed merges byte-identically to single-process
// engine.MixedBatch at every shard count, every result carries its tier's
// label, and the replicas' /stats split the item counts by fidelity.
func TestCoordinatorMixedSweepMatchesMixedBatchByteForByte(t *testing.T) {
	items := coordItems()
	refJSON, refined := coordMixedReference(t, items)
	for n := 1; n <= 3; n++ {
		r, _, _ := testFleet(t, n)
		co := NewCoordinator(r)
		co.Spec.Chunk = 2
		co.Spec.Fidelity = serve.FidelityMixed
		results, err := co.Sweep(context.Background(), items)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if !bytes.Equal(mergedJSON(t, results), refJSON) {
			t.Fatalf("n=%d: mixed sweep diverges from single-process engine.MixedBatch", n)
		}
		checkMixedLabels(t, results, refined)
		st := r.Stats(context.Background())
		if got, want := int(st.Merged.SweptItemsAnalytic), len(items); got != want {
			t.Fatalf("n=%d: merged swept_items_analytic = %d, want %d", n, got, want)
		}
		if got, want := int(st.Merged.SweptItemsDES), len(refined); got != want {
			t.Fatalf("n=%d: merged swept_items_des = %d, want %d", n, got, want)
		}
	}
}

// The DES refine tier of a mixed sweep must be byte-identical to a full-DES
// sweep of the same fleet restricted to the refined candidates — mixed mode
// changes which items get simulator-grade answers, never the answers.
func TestCoordinatorMixedRefineTierMatchesFullDES(t *testing.T) {
	items := coordItems()
	_, refined := coordMixedReference(t, items)
	r, _, _ := testFleet(t, 2)
	co := NewCoordinator(r)
	co.Spec.Fidelity = serve.FidelityMixed
	mixed, err := co.Sweep(context.Background(), items)
	if err != nil {
		t.Fatal(err)
	}
	desItems := make([]serve.SweepItem, len(refined))
	for j, gi := range refined {
		desItems[j] = items[gi]
	}
	des := NewCoordinator(r)
	des.Spec.Fidelity = serve.FidelityDES
	full, err := des.Sweep(context.Background(), desItems)
	if err != nil {
		t.Fatal(err)
	}
	refinedMixed := make([]SweepResult, len(refined))
	for j, gi := range refined {
		refinedMixed[j] = mixed[gi]
	}
	if !bytes.Equal(mergedJSON(t, refinedMixed), mergedJSON(t, full)) {
		t.Fatal("mixed refine tier diverges from a full-DES sweep of the same candidates")
	}
}

// A pre-labeled item under a mixed sweep is a contradiction (the policy
// assigns tiers itself) and must be rejected deterministically with the
// item's global index, burning no failover budget.
func TestCoordinatorMixedSweepRejectsPreLabeledItems(t *testing.T) {
	items := coordItems()
	items[2].Fidelity = serve.FidelityDES
	r, _, _ := testFleet(t, 2)
	co := NewCoordinator(r)
	co.Spec.Fidelity = serve.FidelityMixed
	_, err := co.Sweep(context.Background(), items)
	if err == nil {
		t.Fatal("pre-labeled item accepted under a mixed sweep")
	}
	if want := "sweep item 2:"; !strings.Contains(err.Error(), want) {
		t.Fatalf("error %q does not name %q", err, want)
	}
	if retryable(err) {
		t.Fatalf("deterministic mixed rejection classified retryable: %v", err)
	}
	if co.Redispatches() != 0 {
		t.Fatal("mixed rejection burned failover retries")
	}
	bad := NewCoordinator(r)
	bad.Spec.Fidelity = "nope"
	if _, err := bad.Sweep(context.Background(), coordItems()); err == nil {
		t.Fatal("unknown coordinator fidelity accepted")
	} else if retryable(err) {
		t.Fatalf("unknown-fidelity failure classified retryable: %v", err)
	}
}

// Churn survival for the mixed pipeline: a replica killed after its first
// analytic chunk must not fail the sweep or scramble the tiers — both
// phases re-dispatch through the failover ring, the merge stays
// byte-identical to single-process engine.MixedBatch, and every result
// keeps its tier's fidelity label.
func TestCoordinatorMixedSweepSurvivesChurnMidSweep(t *testing.T) {
	items := coordItems()
	refJSON, refined := coordMixedReference(t, items)
	const n = 3
	r, servers, _ := testFleet(t, n)

	counts := make([]int, n)
	for _, it := range items {
		counts[r.Partitioner().Owner(it.Shape())]++
	}
	victim := -1
	for k, c := range counts {
		if c >= 2 {
			victim = k
			break
		}
	}
	if victim < 0 {
		t.Fatal("no shard owns two quick-grid shapes; extend the grid")
	}

	co := NewCoordinator(r)
	co.Spec.Chunk = 1 // one item per chunk: the kill lands between chunks
	co.Spec.Fidelity = serve.FidelityMixed
	var kill sync.Once
	co.OnChunk = func(cr ChunkResult) {
		if cr.Shard == victim {
			kill.Do(func() { servers[victim].Close() })
		}
	}
	results, err := co.Sweep(context.Background(), items)
	if err != nil {
		t.Fatalf("mixed sweep with replica %d killed mid-sweep: %v", victim, err)
	}
	if !bytes.Equal(mergedJSON(t, results), refJSON) {
		t.Fatal("merged mixed results diverge from single-process engine.MixedBatch after churn")
	}
	checkMixedLabels(t, results, refined)
	if co.Redispatches() == 0 {
		t.Fatal("victim's remaining chunks were not re-dispatched")
	}
	redirected := 0
	for _, res := range results {
		if res.Owner == victim && res.Replica != victim {
			redirected++
		}
	}
	if redirected == 0 {
		t.Fatal("no item attributed to a failover replica after the kill")
	}
}

// When every replica is gone the sweep must fail with the bounded budget
// exhausted — not hang — and name the first unreachable item globally.
func TestCoordinatorSweepExhaustsBudget(t *testing.T) {
	r, servers, _ := testFleet(t, 2)
	for _, srv := range servers {
		srv.Close()
	}
	co := NewCoordinator(r)
	_, err := co.Sweep(context.Background(), coordItems())
	if err == nil {
		t.Fatal("sweep over a dead fleet succeeded")
	}
	if !strings.Contains(err.Error(), "re-dispatch budget") {
		t.Fatalf("error %q does not name the exhausted budget", err)
	}
	if !strings.Contains(err.Error(), "sweep item ") {
		t.Fatalf("error %q does not attribute a global item", err)
	}
}

// A deterministic rejection must fail the sweep immediately with the
// failing item's global index — re-dispatching it would only repeat the
// rejection on every replica.
func TestCoordinatorSweepBadItemKeepsGlobalIndex(t *testing.T) {
	items := coordItems()
	bad := 3
	items[bad].M = 0
	r, _, _ := testFleet(t, 2)
	co := NewCoordinator(r)
	co.Spec.Chunk = 2
	_, err := co.Sweep(context.Background(), items)
	if err == nil {
		t.Fatal("invalid item accepted")
	}
	if want := "sweep item 3:"; !strings.Contains(err.Error(), want) {
		t.Fatalf("error %q does not name %q", err, want)
	}
	if retryable(err) {
		t.Fatalf("bad-item failure classified retryable: %v", err)
	}
	if co.Redispatches() != 0 || r.Stats(context.Background()).Failovers != 0 {
		t.Fatal("deterministic rejection burned failover retries")
	}
}

// The package default HTTP client must be bounded: with http.DefaultClient
// (no timeout) a black-holed replica stalled Router.Query's failover loop
// forever.
func TestDefaultHTTPClientIsBounded(t *testing.T) {
	if defaultClient.Timeout <= 0 {
		t.Fatal("package default HTTP client has no timeout")
	}
	if defaultClient.Timeout != DefaultTimeout {
		t.Fatalf("default client timeout %v, want DefaultTimeout %v", defaultClient.Timeout, DefaultTimeout)
	}
}

// A black-holed replica (accepts the request, never replies) must cost one
// bounded timeout and fail over, not hang the router.
func TestRouterFailsOverBlackHoledReplica(t *testing.T) {
	release := make(chan struct{})
	blackhole := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-release // never replies until teardown
	}))
	defer blackhole.Close()
	defer close(release) // LIFO: unblock the handler before Close waits on it

	healthy, err := serve.New(serve.Config{
		Plat:           hw.RTX4090PCIe(),
		NGPUs:          2,
		CandidateLimit: 64,
		Curves:         sharedCurves(t),
	})
	if err != nil {
		t.Fatal(err)
	}
	healthySrv := httptest.NewServer(serve.Handler(healthy))
	defer healthySrv.Close()

	// A short-timeout client stands in for the bounded default (60s would
	// stall the test suite, not the code under test).
	hc := &http.Client{Timeout: 200 * time.Millisecond}
	shape := gemm.Shape{M: 2048, N: 8192, K: 4096}
	clients := make([]Client, 2)
	owner := NewPartitioner(2).Owner(shape)
	clients[owner] = &HTTPClient{Base: blackhole.URL, HTTP: hc}
	clients[1-owner] = &HTTPClient{Base: healthySrv.URL, HTTP: hc}
	r, err := NewRouter(clients)
	if err != nil {
		t.Fatal(err)
	}

	start := time.Now()
	ans, err := r.Query(context.Background(), serve.Query{Shape: shape, Prim: hw.AllReduce})
	if err != nil {
		t.Fatalf("query with black-holed owner: %v", err)
	}
	if ans.Replica == owner {
		t.Fatal("answer attributed to the black-holed replica")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("failover took %v; timeout did not bound the black hole", elapsed)
	}
	if r.Stats(context.Background()).Failovers != 1 {
		t.Fatalf("failovers = %d, want 1", r.Stats(context.Background()).Failovers)
	}
}

// Replica-list parsing: normalization plus the duplicate check. A URL
// listed twice would silently occupy two shard slots and skew the ownership
// plane, so it must be rejected at startup.
func TestParseReplicas(t *testing.T) {
	urls, err := ParseReplicas(" host1:8080 , http://host2:8080/ ,https://host3")
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"http://host1:8080", "http://host2:8080", "https://host3"}
	if len(urls) != len(want) {
		t.Fatalf("parsed %v, want %v", urls, want)
	}
	for i := range want {
		if urls[i] != want[i] {
			t.Fatalf("url %d = %q, want %q", i, urls[i], want[i])
		}
	}
	for _, bad := range []string{
		"",
		"  ",
		"host1,",
		"host1,,host2",
		"host1:8080,host1:8080",
		"http://host1:8080,host1:8080/", // duplicates after normalization
	} {
		if _, err := ParseReplicas(bad); err == nil {
			t.Errorf("ParseReplicas(%q) accepted", bad)
		}
	}
}

// The router front-end must proxy /sweep across the fleet: a client posting
// a grid to the router gets the merged, attributed results — so a sweep
// driver pointed at a router as a one-replica "fleet" transparently fans
// out over the real one.
func TestRouterHandlerProxiesSweep(t *testing.T) {
	items := coordItems()
	refJSON := coordReference(t, items)
	r, _, _ := testFleet(t, 2)
	front := httptest.NewServer(r.Handler())
	defer front.Close()

	body, err := json.Marshal(serve.SweepRequest{Items: items})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(front.URL+"/sweep", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var rs RoutedSweepResponse
	if err := json.NewDecoder(resp.Body).Decode(&rs); err != nil {
		t.Fatal(err)
	}
	if len(rs.Results) != len(items) {
		t.Fatalf("%d results for %d items", len(rs.Results), len(items))
	}
	if !bytes.Equal(mergedJSON(t, rs.Results), refJSON) {
		t.Fatal("proxied sweep diverges from single-process engine.Batch")
	}
	for i, res := range rs.Results {
		if res.Owner != r.Partitioner().Owner(items[i].Shape()) {
			t.Fatalf("item %d attributed to owner %d, want %d", i, res.Owner, r.Partitioner().Owner(items[i].Shape()))
		}
	}

	// And the full composition: an outer coordinator treating the router
	// as a one-replica fleet still produces the identical merge.
	outer, err := NewRouter([]Client{&HTTPClient{Base: front.URL}})
	if err != nil {
		t.Fatal(err)
	}
	results, err := NewCoordinator(outer).Sweep(context.Background(), items)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(mergedJSON(t, results), refJSON) {
		t.Fatal("sweep through router-as-replica diverges from single-process engine.Batch")
	}

	// Failure attribution must survive the proxy hop too: the router's
	// error reply carries the failing item's index into the posted grid,
	// so the outer coordinator names the right global item.
	badItems := append([]serve.SweepItem(nil), items...)
	bad := 4
	badItems[bad].Prim = "NOPE"
	if _, err := NewCoordinator(outer).Sweep(context.Background(), badItems); err == nil {
		t.Fatal("bad item accepted through the router proxy")
	} else if want := fmt.Sprintf("sweep item %d:", bad); !strings.Contains(err.Error(), want) {
		t.Fatalf("proxied error %q does not name %q", err, want)
	}
}
