package shard

import (
	"sync"
	"time"
)

// HealthState classifies one replica in the fleet's shared health plane.
type HealthState int

const (
	// Healthy replicas take dispatches and routed queries freely.
	Healthy HealthState = iota
	// Suspect marks a cooled-down dead replica with exactly one trial
	// request in flight — the half-open circuit-breaker state. Everyone
	// else keeps skipping it until the trial reports an outcome (or its
	// own cooldown elapses, guarding against a trial that never returns).
	Suspect
	// Dead replicas failed recently and are skipped by dispatch and
	// routing until their cooldown elapses: the fleet pays at most one
	// probe timeout per replica per cooldown window instead of one per
	// chunk or query.
	Dead
)

func (s HealthState) String() string {
	switch s {
	case Healthy:
		return "healthy"
	case Suspect:
		return "suspect"
	case Dead:
		return "dead"
	}
	return "unknown"
}

// DefaultHealthCooldown is how long a failed replica is skipped before one
// trial request is allowed through again. Long enough that a sweep over a
// degraded fleet pays ~one probe timeout total rather than one per chunk,
// short enough that a replica recovering without a /healthz prober is not
// benched for long.
const DefaultHealthCooldown = 15 * time.Second

// DefaultEvictAfter is how many whole cooldown windows a replica must stay
// continuously dead before it is evicted from the ownership ring — its
// cells rebalance to the ring survivors until it comes back. More than one
// window so a crash-and-restart (the common churn) never moves ownership;
// few enough that a genuinely gone replica stops costing a failover hop on
// every one of its cells within a minute at the default cooldown.
const DefaultEvictAfter = 3

// Health is the per-replica health plane a Router and its Coordinators
// share: dispatch outcomes drive the healthy/suspect/dead state machine,
// and both query routing and sweep dispatch consult it to skip replicas
// known to be dead instead of burning a client timeout per chunk or query.
// All methods are safe for concurrent use.
type Health struct {
	mu         sync.Mutex
	cooldown   time.Duration
	evictAfter int              // cooldown windows continuously dead before eviction; <= 0 disables
	now        func() time.Time // injectable clock (tests)
	replicas   []replicaHealth

	readmissions uint64 // dead/suspect -> healthy transitions
	skips        uint64 // attempts avoided on replicas inside their cooldown
	evictions    uint64 // replicas that surrendered ring ownership
	handbacks    uint64 // evicted replicas re-admitted and handed their cells back
}

type replicaHealth struct {
	state HealthState
	since time.Time // when the replica entered its current state
	// deadSince is when the replica's current unbroken spell of failure
	// began. Unlike since it survives suspect trials (a failed trial does
	// not reset the eviction clock — only an actual recovery does), so it
	// measures "dead past N cooldowns" for the eviction predicate. Zero
	// while the replica is healthy.
	deadSince time.Time
	// evicted latches once deadSince ages past evictAfter cooldowns; only
	// MarkHealthy clears it. While set, the replica owns no cells — the
	// ring rebalances its slice of the plane onto the survivors.
	evicted bool
}

// NewHealth builds a health plane over n replicas, all initially healthy,
// with the default cooldown and eviction window. Router construction calls
// this; tests and CLIs adjust through SetCooldown and SetEvictAfter.
func NewHealth(n int) *Health {
	return &Health{
		cooldown:   DefaultHealthCooldown,
		evictAfter: DefaultEvictAfter,
		now:        time.Now,
		replicas:   make([]replicaHealth, n),
	}
}

// SetCooldown replaces the cooldown window; non-positive durations are
// ignored (the zero value must never mean "hammer dead replicas").
func (h *Health) SetCooldown(d time.Duration) {
	if d <= 0 {
		return
	}
	h.mu.Lock()
	h.cooldown = d
	h.mu.Unlock()
}

// Cooldown returns the current cooldown window.
func (h *Health) Cooldown() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.cooldown
}

// SetEvictAfter sets how many whole cooldown windows a replica must stay
// continuously dead before it is evicted from the ownership ring. 0 (or
// negative) disables eviction: dead replicas then ride the failover ring
// forever, the pre-rebalance behavior.
func (h *Health) SetEvictAfter(windows int) {
	h.mu.Lock()
	h.evictAfter = windows
	h.mu.Unlock()
}

// EvictAfter returns the eviction window in cooldown counts (<= 0 when
// eviction is disabled).
func (h *Health) EvictAfter() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.evictAfter
}

// Evicted reports whether replica i has been dead long enough (evictAfter
// whole cooldown windows, uninterrupted by any recovery) to surrender its
// ring ownership. The flag latches on the first observation past the
// window — counting one eviction — and only MarkHealthy clears it, counting
// a hand-back; suspect trials that fail neither reset the clock nor the
// flag, so a zombie cannot flap ownership once per probe.
func (h *Health) Evicted(i int) bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	r := &h.replicas[i]
	if !r.evicted && h.evictAfter > 0 && !r.deadSince.IsZero() &&
		h.now().Sub(r.deadSince) >= time.Duration(h.evictAfter)*h.cooldown {
		r.evicted = true
		h.evictions++
	}
	return r.evicted
}

// Allow reports whether an attempt on replica i is admissible right now.
// Healthy replicas always are. A dead (or stuck-suspect) replica becomes
// admissible once per cooldown window: the first caller after the window
// elapses claims the single trial slot (the replica turns Suspect) and
// everyone else keeps skipping, so a degraded fleet pays at most one probe
// timeout per replica per window. Callers must report the trial's outcome
// through MarkHealthy or MarkFailed.
func (h *Health) Allow(i int) bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	r := &h.replicas[i]
	if r.state == Healthy {
		return true
	}
	if h.now().Sub(r.since) >= h.cooldown {
		r.state = Suspect
		r.since = h.now()
		return true
	}
	h.skips++
	return false
}

// MarkHealthy records a successful attempt (or /healthz probe) on replica
// i, re-admitting it if it was suspect or dead.
func (h *Health) MarkHealthy(i int) {
	h.mu.Lock()
	defer h.mu.Unlock()
	r := &h.replicas[i]
	if r.state != Healthy {
		r.state = Healthy
		r.since = h.now()
		h.readmissions++
	}
	if r.evicted {
		// Re-admission hands the replica its owned cells back: the ring
		// never moved, so the same cells that rebalanced away return.
		r.evicted = false
		h.handbacks++
	}
	r.deadSince = time.Time{}
}

// claimTrial atomically claims replica i's per-window trial slot for the
// /healthz prober: true only when i is non-healthy and past its cooldown.
// Gating probe re-admission on the same window as in-band trials means a
// zombie replica (process up, /healthz 200, but every chunk failing)
// cannot oscillate dead -> healthy faster than once per cooldown — which
// would burn an attempt per probe interval instead of per window. Unlike
// Allow it never admits healthy replicas and counts no skips.
func (h *Health) claimTrial(i int) bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	r := &h.replicas[i]
	if r.state == Healthy || h.now().Sub(r.since) < h.cooldown {
		return false
	}
	r.state = Suspect
	r.since = h.now()
	return true
}

// anyDue reports whether any replica is currently admissible — healthy, or
// past its cooldown. The dispatch cooldown-wait loop polls this instead of
// Allow so waiting neither claims trial slots it may not use nor inflates
// the skip counter.
func (h *Health) anyDue() bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	for i := range h.replicas {
		r := &h.replicas[i]
		if r.state == Healthy || h.now().Sub(r.since) >= h.cooldown {
			return true
		}
	}
	return false
}

// anySuspect reports whether some replica has a trial in flight — another
// dispatcher's probe that may re-admit it momentarily. Dispatch checks it
// before declaring a fully cooled-down ring hopeless.
func (h *Health) anySuspect() bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	for i := range h.replicas {
		if h.replicas[i].state == Suspect {
			return true
		}
	}
	return false
}

// MarkFailed records a transport-level failure (connection refused,
// timeout, truncated reply) on replica i: the replica is dead and its
// cooldown window restarts. Answered errors — 4xx rejections and
// structured 5xx replies — must not be reported here: they prove the
// replica is alive (callers mark those healthy and merely fail over).
func (h *Health) MarkFailed(i int) {
	h.mu.Lock()
	defer h.mu.Unlock()
	r := &h.replicas[i]
	r.state = Dead
	r.since = h.now()
	if r.deadSince.IsZero() {
		// First failure of this spell starts the eviction clock; a failed
		// suspect trial later in the spell must not restart it.
		r.deadSince = h.now()
	}
}

// State returns replica i's current health state.
func (h *Health) State(i int) HealthState {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.replicas[i].state
}

// States snapshots every replica's state, indexed by replica.
func (h *Health) States() []HealthState {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]HealthState, len(h.replicas))
	for i, r := range h.replicas {
		out[i] = r.state
	}
	return out
}

// Readmissions counts dead/suspect -> healthy transitions: successful
// trial dispatches plus /healthz probe re-admissions.
func (h *Health) Readmissions() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.readmissions
}

// Skips counts attempts the health plane avoided because the replica was
// inside its cooldown — each one is a client timeout the degraded fleet
// did not pay.
func (h *Health) Skips() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.skips
}

// Evictions counts replicas that stayed dead past the eviction window and
// surrendered their ring ownership to the survivors.
func (h *Health) Evictions() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.evictions
}

// Handbacks counts evicted replicas that were re-admitted and handed their
// owned cells back.
func (h *Health) Handbacks() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.handbacks
}
