package shard

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/hw"
	"repro/internal/serve"
)

// stubClient is a scriptable Client for health/dispatch tests; nil hooks
// fall back to benign defaults.
type stubClient struct {
	query   func(serve.Query) (serve.Answer, error)
	sweep   func(serve.SweepRequest) ([]serve.SweepResult, error)
	healthz func() error
}

func (c *stubClient) Query(_ context.Context, q serve.Query) (serve.Answer, error) {
	if c.query == nil {
		return serve.Answer{}, errors.New("stub: no query hook")
	}
	return c.query(q)
}

// Sweep adapts the buffered scripting hook to the streaming interface:
// whatever prefix the hook returns is delivered through the sink before the
// hook's error — exactly the salvage semantics a real replica streams.
func (c *stubClient) Sweep(_ context.Context, req serve.SweepRequest, sink serve.SweepSink) error {
	if c.sweep == nil {
		return errors.New("stub: no sweep hook")
	}
	res, err := c.sweep(req)
	for i, r := range res {
		if serr := sink(i, r); serr != nil {
			return serr
		}
	}
	return err
}

func (c *stubClient) Stats(context.Context) (serve.Stats, error) { return serve.Stats{}, nil }

func (c *stubClient) Healthz(context.Context) error {
	if c.healthz == nil {
		return nil
	}
	return c.healthz()
}

// collectClient buffers a streaming client's sweep back into the slice form
// the scripting hooks speak. Flat chunks emit in ascending order, so the
// append preserves chunk-local indexing.
func collectClient(c Client, req serve.SweepRequest) ([]serve.SweepResult, error) {
	var res []serve.SweepResult
	err := c.Sweep(context.Background(), req, func(_ int, r serve.SweepResult) error {
		res = append(res, r)
		return nil
	})
	return res, err
}

// The health state machine: failures bench a replica for the cooldown, the
// first caller after the window claims a single trial slot (suspect), and
// only a reported success re-admits. This is what caps a degraded fleet's
// cost at one probe timeout per replica per cooldown window.
func TestHealthStateMachine(t *testing.T) {
	h := NewHealth(2)
	h.SetCooldown(time.Minute)
	now := time.Unix(1000, 0)
	h.now = func() time.Time { return now }

	if !h.Allow(0) || h.State(0) != Healthy {
		t.Fatal("fresh replica not admissible")
	}
	h.MarkFailed(0)
	if h.State(0) != Dead {
		t.Fatalf("state after failure = %v, want dead", h.State(0))
	}
	if h.Allow(0) {
		t.Fatal("dead replica admitted inside its cooldown")
	}
	if h.Skips() != 1 {
		t.Fatalf("skips = %d, want 1", h.Skips())
	}
	// Replica 1 is unaffected by replica 0's state.
	if !h.Allow(1) {
		t.Fatal("healthy neighbor of a dead replica not admissible")
	}

	// Cooldown elapses: exactly one trial slot per window.
	now = now.Add(time.Minute + time.Second)
	if !h.Allow(0) {
		t.Fatal("cooled-down replica not granted a trial")
	}
	if h.State(0) != Suspect {
		t.Fatalf("state during trial = %v, want suspect", h.State(0))
	}
	if h.Allow(0) {
		t.Fatal("second caller admitted while a trial is in flight")
	}

	// A failed trial benches it for a fresh window.
	h.MarkFailed(0)
	if h.Allow(0) {
		t.Fatal("replica admitted right after a failed trial")
	}
	now = now.Add(time.Minute + time.Second)
	if !h.Allow(0) {
		t.Fatal("replica not granted a trial after the refreshed cooldown")
	}
	h.MarkHealthy(0)
	if h.State(0) != Healthy || !h.Allow(0) {
		t.Fatal("successful trial did not re-admit the replica")
	}
	if h.Readmissions() != 1 {
		t.Fatalf("readmissions = %d, want 1", h.Readmissions())
	}
	// Repeated successes on a healthy replica are not re-admissions.
	h.MarkHealthy(0)
	if h.Readmissions() != 1 {
		t.Fatalf("readmissions after healthy no-op = %d, want 1", h.Readmissions())
	}
}

// The wall-clock regression the PR fixes: sweeping a fleet with one
// pre-dead replica must pay ~one probe timeout total, not one per chunk.
// The dead replica's stub instruments the cost — every call burns `delay`
// — so the call count is exactly the number of probe timeouts paid.
func TestSweepOverPreDeadReplicaPaysOneProbeTimeout(t *testing.T) {
	items := coordItems()
	refJSON := coordReference(t, items)
	part := NewPartitioner(2)
	counts := make([]int, 2)
	for _, it := range items {
		counts[part.Owner(it.Shape())]++
	}
	dead := 0
	if counts[1] > counts[0] {
		dead = 1 // kill the shard owning more items: more chunks at risk
	}
	if counts[dead] < 2 {
		t.Fatalf("shard %d owns %d quick-grid shapes; need >= 2 chunks", dead, counts[dead])
	}

	const delay = 150 * time.Millisecond
	var deadCalls atomic.Int64
	deadStub := &stubClient{
		sweep: func(serve.SweepRequest) ([]serve.SweepResult, error) {
			deadCalls.Add(1)
			time.Sleep(delay) // the instrumented "client timeout"
			return nil, errors.New("stub: replica is down")
		},
		healthz: func() error { return errors.New("stub: replica is down") },
	}
	healthy, err := serve.New(serve.Config{Plat: hw.RTX4090PCIe(), NGPUs: 2, CandidateLimit: 64, Curves: sharedCurves(t)})
	if err != nil {
		t.Fatal(err)
	}
	clients := make([]Client, 2)
	clients[dead] = deadStub
	clients[1-dead] = &LocalClient{Svc: healthy}
	r, err := NewRouter(clients)
	if err != nil {
		t.Fatal(err)
	}

	co := NewCoordinator(r)
	co.Spec.Chunk = 1 // one chunk per item: every owned item is a chance to stall
	results, err := co.Sweep(context.Background(), items)
	if err != nil {
		t.Fatalf("sweep with a pre-dead replica: %v", err)
	}
	if got := deadCalls.Load(); got != 1 {
		t.Fatalf("dead replica probed %d times (%v of stall), want exactly 1 probe timeout total", got, time.Duration(got)*delay)
	}
	if !bytes.Equal(mergedJSON(t, results), refJSON) {
		t.Fatal("degraded merge diverges from single-process engine.Batch")
	}
	if got := int(co.Redispatches()); got != counts[dead] {
		t.Fatalf("%d re-dispatches, want %d (every chunk the dead shard owned)", got, counts[dead])
	}
	if r.Health().State(dead) != Dead {
		t.Fatalf("dead replica state = %v after the sweep", r.Health().State(dead))
	}
	if r.Health().Skips() == 0 {
		t.Fatal("health plane recorded no skipped attempts; every chunk paid the probe")
	}
}

// Routed queries obey the same plane: after a dead replica burns its one
// probe, later queries for its shapes skip straight to the failover
// replica without another timeout.
func TestRouterQuerySkipsKnownDeadReplica(t *testing.T) {
	shape := quickGridShapes()[0]
	owner := NewPartitioner(2).Owner(shape)
	var deadCalls atomic.Int64
	deadStub := &stubClient{
		query: func(serve.Query) (serve.Answer, error) {
			deadCalls.Add(1)
			return serve.Answer{}, errors.New("stub: replica is down")
		},
	}
	healthy, err := serve.New(serve.Config{Plat: hw.RTX4090PCIe(), NGPUs: 2, CandidateLimit: 64, Curves: sharedCurves(t)})
	if err != nil {
		t.Fatal(err)
	}
	clients := make([]Client, 2)
	clients[owner] = deadStub
	clients[1-owner] = &LocalClient{Svc: healthy}
	r, err := NewRouter(clients)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		ans, err := r.Query(context.Background(), serve.Query{Shape: shape, Prim: hw.AllReduce})
		if err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
		if ans.Replica == owner {
			t.Fatalf("query %d attributed to the dead owner", i)
		}
	}
	if got := deadCalls.Load(); got != 1 {
		t.Fatalf("dead owner probed %d times across 5 queries, want 1", got)
	}
}

// Probe re-admission respects the cooldown: a zombie replica whose
// /healthz answers while its work path keeps failing must not oscillate
// dead -> healthy faster than once per window — that would burn one
// dispatch attempt per probe interval instead of per cooldown.
func TestProbeRespectsCooldownForZombies(t *testing.T) {
	zombie := &stubClient{} // nil healthz hook: /healthz always answers ok
	r, err := NewRouter([]Client{zombie, &stubClient{}})
	if err != nil {
		t.Fatal(err)
	}
	h := r.Health()
	h.SetCooldown(time.Minute)
	now := time.Unix(1000, 0)
	h.now = func() time.Time { return now }

	h.MarkFailed(0)
	if n := r.Probe(context.Background()); n != 0 {
		t.Fatalf("freshly dead zombie re-admitted (%d replicas) before its cooldown", n)
	}
	if h.State(0) != Dead {
		t.Fatalf("state after rejected probe = %v, want dead", h.State(0))
	}
	now = now.Add(time.Minute + time.Second)
	if n := r.Probe(context.Background()); n != 1 {
		t.Fatalf("cooled-down replica not re-admitted by the probe (%d replicas)", n)
	}
	if h.State(0) != Healthy {
		t.Fatalf("state after due probe = %v, want healthy", h.State(0))
	}
}

// The background prober is shared and refcounted: the first of two
// concurrent holders stopping must not strip the survivor of its mid-sweep
// re-admission probes; only the last stop ends the goroutine.
func TestProberSurvivesUntilLastHolderStops(t *testing.T) {
	var probes atomic.Int64
	dead := &stubClient{healthz: func() error {
		probes.Add(1)
		return errors.New("stub: replica is down")
	}}
	r, err := NewRouter([]Client{dead, &stubClient{}})
	if err != nil {
		t.Fatal(err)
	}
	r.Health().SetCooldown(time.Millisecond) // trial-due almost immediately
	r.Health().MarkFailed(0)                 // give the prober something to probe
	stop1 := r.StartProber(context.Background(), 5*time.Millisecond)
	stop2 := r.StartProber(context.Background(), 5*time.Millisecond)
	stop1()
	before := probes.Load()
	deadline := time.Now().Add(2 * time.Second)
	for probes.Load() == before {
		if time.Now().After(deadline) {
			t.Fatal("prober died with the first holder's stop; the second sweep lost re-admission")
		}
		time.Sleep(2 * time.Millisecond)
	}
	stop2()
	time.Sleep(30 * time.Millisecond) // drain any in-flight tick
	final := probes.Load()
	time.Sleep(50 * time.Millisecond)
	if got := probes.Load(); got != final {
		t.Fatalf("prober still probing after the last stop (%d -> %d)", final, got)
	}
}

// An attempt budget beyond the fleet size opts into wrap-around retries: a
// dispatch that finds the whole ring inside its cooldown (one replica dead,
// the other hit by a transient blip) must wait the cooldown out and retry
// instead of aborting with most of its budget unspent — the sweep survives
// the blip.
func TestDispatchWaitsOutCooldownWhenBudgetExceedsFleet(t *testing.T) {
	part := NewPartitioner(2)
	var owned []serve.SweepItem
	for _, s := range quickGridShapes() {
		if part.Owner(s) == 0 {
			owned = append(owned, serve.SweepItem{M: s.M, N: s.N, K: s.K, Prim: "AR"})
		}
	}
	if len(owned) == 0 {
		t.Fatal("shard 0 owns no quick-grid shapes")
	}
	refJSON := coordReference(t, owned)

	dead := &stubClient{
		sweep: func(serve.SweepRequest) ([]serve.SweepResult, error) {
			return nil, errors.New("stub: replica is down")
		},
		healthz: func() error { return errors.New("stub: replica is down") },
	}
	svc, err := serve.New(serve.Config{Plat: hw.RTX4090PCIe(), NGPUs: 2, CandidateLimit: 64, Curves: sharedCurves(t)})
	if err != nil {
		t.Fatal(err)
	}
	inner := &LocalClient{Svc: svc}
	var blipped atomic.Bool
	flaky := &stubClient{
		sweep: func(req serve.SweepRequest) ([]serve.SweepResult, error) {
			if blipped.CompareAndSwap(false, true) {
				return nil, errors.New("stub: transient failure")
			}
			return collectClient(inner, req)
		},
	}
	r, err := NewRouter([]Client{dead, flaky})
	if err != nil {
		t.Fatal(err)
	}
	r.Health().SetCooldown(30 * time.Millisecond)
	co := NewCoordinator(r)
	co.Spec.Chunk = len(owned) // a single chunk owned by the dead replica
	co.Spec.Attempts = 6       // > fleet size: opt into wrap-around retries

	results, err := co.Sweep(context.Background(), owned)
	if err != nil {
		t.Fatalf("sweep across a transient blip with budget > fleet size: %v", err)
	}
	if !bytes.Equal(mergedJSON(t, results), refJSON) {
		t.Fatal("merge diverges from single-process engine.Batch after the waited retry")
	}
	for i, res := range results {
		if res.Replica != 1 {
			t.Fatalf("item %d answered by replica %d, want the recovered flaky replica 1", i, res.Replica)
		}
	}
	if co.Redispatches() != 1 {
		t.Fatalf("redispatches = %d, want 1", co.Redispatches())
	}
}

// A deterministic structured 5xx (a "poison" query every replica fails
// identically) must not bench the fleet: the replicas answered, and
// marking them dead would black out all routed traffic for a cooldown.
func TestPoisonQueryDoesNotBenchFleet(t *testing.T) {
	shape := quickGridShapes()[0]
	poison := func() *stubClient {
		return &stubClient{query: func(serve.Query) (serve.Answer, error) {
			return serve.Answer{}, &ReplyError{Status: 500, Err: errors.New("stub: deterministic internal failure")}
		}}
	}
	r, err := NewRouter([]Client{poison(), poison()})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		_, err := r.Query(context.Background(), serve.Query{Shape: shape, Prim: hw.AllReduce})
		if err == nil {
			t.Fatal("poison query succeeded")
		}
		if strings.Contains(err.Error(), "marked dead") {
			t.Fatalf("query %d hit the benched-fleet fast-fail: %v (answered 5xx errors benched the fleet)", i, err)
		}
	}
	for k := 0; k < 2; k++ {
		if got := r.Health().State(k); got != Healthy {
			t.Fatalf("replica %d = %v after answered 5xx failures, want healthy", k, got)
		}
	}
}

// A trial request answered with a deterministic 4xx proves the replica is
// alive: the suspect trial must resolve healthy, not leave the replica
// benched for another cooldown (where a stream of malformed queries could
// keep a recovered replica out of rotation indefinitely).
func TestBadQueryTrialResolvesSuspectHealthy(t *testing.T) {
	shape := quickGridShapes()[0]
	owner := NewPartitioner(2).Owner(shape)
	rejecting := &stubClient{query: func(serve.Query) (serve.Answer, error) {
		return serve.Answer{}, &QueryError{Err: errors.New("stub: bad query")}
	}}
	clients := make([]Client, 2)
	clients[owner] = rejecting
	clients[1-owner] = &stubClient{}
	r, err := NewRouter(clients)
	if err != nil {
		t.Fatal(err)
	}
	r.Health().SetCooldown(20 * time.Millisecond)
	r.Health().MarkFailed(owner)
	time.Sleep(30 * time.Millisecond) // cooldown elapses: next request is the trial
	if _, err := r.Query(context.Background(), serve.Query{Shape: shape, Prim: hw.AllReduce}); err == nil {
		t.Fatal("rejected query accepted")
	}
	if got := r.Health().State(owner); got != Healthy {
		t.Fatalf("owner state after a 4xx trial = %v, want healthy (the replica answered)", got)
	}
}

// Partial-chunk completion: a chunk that fails at item i keeps the
// completed prefix results[0..i) and re-dispatches only the unanswered
// suffix — the failover replica must never re-execute salvaged work, and
// the merge must stay byte-identical to the single-process reference.
func TestCoordinatorSalvagesPartialChunk(t *testing.T) {
	part := NewPartitioner(2)
	var owned []serve.SweepItem
	for _, s := range quickGridShapes() {
		if part.Owner(s) == 0 {
			owned = append(owned, serve.SweepItem{M: s.M, N: s.N, K: s.K, Prim: "AR"})
		}
	}
	if len(owned) == 0 {
		t.Fatal("shard 0 owns no quick-grid shapes")
	}
	// One four-item chunk, all owned by shard 0.
	items := []serve.SweepItem{owned[0], owned[len(owned)-1], owned[0], owned[len(owned)-1]}
	refJSON := coordReference(t, items)

	newSvc := func() *serve.Service {
		svc, err := serve.New(serve.Config{Plat: hw.RTX4090PCIe(), NGPUs: 2, CandidateLimit: 64, Curves: sharedCurves(t)})
		if err != nil {
			t.Fatal(err)
		}
		return svc
	}
	// Replica 0 computes the whole chunk but "crashes" after item 2,
	// reporting the completed prefix alongside the ChunkError — the shape
	// of a 5xx /sweep reply naming the failing item.
	inner0 := &LocalClient{Svc: newSvc()}
	crashing := &stubClient{
		sweep: func(req serve.SweepRequest) ([]serve.SweepResult, error) {
			res, err := collectClient(inner0, req)
			if err != nil {
				return res, err
			}
			return res[:2], &serve.ChunkError{Index: 2, Err: errors.New("injected crash after item 2")}
		},
	}
	// Replica 1 records what it is asked to execute.
	inner1 := &LocalClient{Svc: newSvc()}
	var mu sync.Mutex
	var suffixCalls [][]int
	recording := &stubClient{
		sweep: func(req serve.SweepRequest) ([]serve.SweepResult, error) {
			mu.Lock()
			sizes := []int{len(req.Items)}
			suffixCalls = append(suffixCalls, sizes)
			mu.Unlock()
			return collectClient(inner1, req)
		},
	}
	r, err := NewRouter([]Client{crashing, recording})
	if err != nil {
		t.Fatal(err)
	}
	co := NewCoordinator(r)
	co.Spec.Chunk = len(items)
	var segments []ChunkResult
	co.OnChunk = func(cr ChunkResult) { segments = append(segments, cr) }

	results, err := co.Sweep(context.Background(), items)
	if err != nil {
		t.Fatalf("sweep with a partial chunk failure: %v", err)
	}
	if !bytes.Equal(mergedJSON(t, results), refJSON) {
		t.Fatal("salvaged merge diverges from single-process engine.Batch")
	}
	for i, res := range results {
		want := 0
		if i >= 2 {
			want = 1 // suffix re-dispatched to the failover replica
		}
		if res.Replica != want {
			t.Fatalf("item %d attributed to replica %d, want %d", i, res.Replica, want)
		}
	}
	if got := co.PartialSalvages(); got != 2 {
		t.Fatalf("salvaged %d items, want 2", got)
	}
	if co.Redispatches() != 1 {
		t.Fatalf("redispatches = %d, want 1 (one chunk left its owner)", co.Redispatches())
	}
	if len(suffixCalls) != 1 || suffixCalls[0][0] != 2 {
		t.Fatalf("failover replica saw calls %v, want exactly one 2-item suffix", suffixCalls)
	}
	if len(segments) != 2 || len(segments[0].Indices) != 2 || len(segments[1].Indices) != 2 ||
		segments[0].Replica != 0 || segments[1].Replica != 1 {
		t.Fatalf("OnChunk segments %+v, want a 2-item owner prefix then a 2-item failover suffix", segments)
	}
}

// An exhausted budget must attribute the failure to an item that is still
// unanswered: a failure index that a later partial salvage answered would
// send the operator to a cell that is fine.
func TestExhaustedBudgetNamesUnansweredItemAfterSalvage(t *testing.T) {
	part := NewPartitioner(2)
	var shape serve.SweepItem
	found := false
	for _, s := range quickGridShapes() {
		if part.Owner(s) == 0 {
			shape = serve.SweepItem{M: s.M, N: s.N, K: s.K, Prim: "AR"}
			found = true
			break
		}
	}
	if !found {
		t.Fatal("shard 0 owns no quick-grid shapes")
	}
	// Eight copies of one shard-0 shape: a single chunk, every salvage
	// boundary deterministic.
	items := make([]serve.SweepItem, 8)
	for i := range items {
		items[i] = shape
	}
	newSalvagingStub := func() *stubClient {
		svc, err := serve.New(serve.Config{Plat: hw.RTX4090PCIe(), NGPUs: 2, CandidateLimit: 64, Curves: sharedCurves(t)})
		if err != nil {
			t.Fatal(err)
		}
		inner := &LocalClient{Svc: svc}
		return &stubClient{sweep: func(req serve.SweepRequest) ([]serve.SweepResult, error) {
			res, err := collectClient(inner, req)
			if err != nil {
				return res, err
			}
			// Answer the first 3 items of whatever suffix arrives, then
			// "crash" at the fourth.
			return res[:3], &serve.ChunkError{Index: 3, Err: errors.New("injected crash after 3 items")}
		}}
	}
	r, err := NewRouter([]Client{newSalvagingStub(), newSalvagingStub()})
	if err != nil {
		t.Fatal(err)
	}
	co := NewCoordinator(r)
	co.Spec.Chunk = len(items) // budget 2 (fleet size): A salvages 0-2, B 3-5, exhausted at 6
	_, err = co.Sweep(context.Background(), items)
	if err == nil {
		t.Fatal("sweep succeeded with every attempt failing partway")
	}
	if !strings.Contains(err.Error(), "re-dispatch budget") {
		t.Fatalf("error %q does not name the exhausted budget", err)
	}
	if want := "sweep item 6:"; !strings.Contains(err.Error(), want) {
		t.Fatalf("error %q does not name %q, the first still-unanswered failing item", err, want)
	}
	if co.PartialSalvages() != 0 {
		t.Fatalf("failed sweep reported %d salvaged items; salvage was discarded", co.PartialSalvages())
	}
	// Structured ChunkErrors are live replicas answering quickly: a
	// poison item that 5xxes identically everywhere must not bench the
	// whole fleet and black out unrelated query traffic for a cooldown.
	for k := 0; k < 2; k++ {
		if got := r.Health().State(k); got != Healthy {
			t.Fatalf("replica %d = %v after structured chunk failures, want healthy (only transport failures bench)", k, got)
		}
	}

	// The index-less variant: a chunk-level transport failure pins to the
	// chunk's first item, so a later salvage must supersede it too — the
	// budget error names the first still-unanswered item, not item 0.
	transport := &stubClient{sweep: func(serve.SweepRequest) ([]serve.SweepResult, error) {
		return nil, errors.New("stub: connection refused")
	}}
	r2, err := NewRouter([]Client{transport, newSalvagingStub()})
	if err != nil {
		t.Fatal(err)
	}
	co2 := NewCoordinator(r2)
	co2.Spec.Chunk = len(items)
	_, err = co2.Sweep(context.Background(), items)
	if err == nil {
		t.Fatal("sweep succeeded with every attempt failing")
	}
	if want := "sweep item 3:"; !strings.Contains(err.Error(), want) {
		t.Fatalf("error %q does not name %q (the chunk-level failure was not superseded by the salvage)", err, want)
	}
	if got := r2.Health().State(0); got != Dead {
		t.Fatalf("transport-failing replica = %v, want dead", got)
	}
}

// The wire form of partial-chunk completion: a non-OK /sweep reply carrying
// the completed prefix under "results" must surface both the rebuilt
// *serve.ChunkError and the salvage.
func TestHTTPClientSweepRebuildsPartialResults(t *testing.T) {
	prefix := []serve.SweepResult{
		{Shape: "2048x8192x4096", Primitive: "AllReduce"},
		{Shape: "4096x8192x4096", Primitive: "AllReduce"},
	}
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		idx := 2
		serve.WriteErrorBody(w, http.StatusInternalServerError, serve.ErrorBody{
			Message:   "engine crashed mid-chunk",
			Retryable: true,
			Index:     &idx,
			Results:   prefix,
		})
	}))
	defer srv.Close()

	c := &HTTPClient{Base: srv.URL}
	got, err := collectClient(c, serve.SweepRequest{Items: make([]serve.SweepItem, 4)})
	if err == nil {
		t.Fatal("500 reply did not surface an error")
	}
	var ce *serve.ChunkError
	if !errors.As(err, &ce) || ce.Index != 2 {
		t.Fatalf("error %v does not carry chunk index 2", err)
	}
	if !retryable(err) {
		t.Fatalf("5xx partial failure classified non-retryable: %v", err)
	}
	if len(got) != 2 || got[0].Shape != prefix[0].Shape || got[1].Shape != prefix[1].Shape {
		t.Fatalf("salvaged prefix %+v, want the 2 completed results", got)
	}
}

// The router's /sweep proxy must honor the forwarded chunk size and attempt
// budget instead of silently rebuilding a coordinator with defaults.
func TestRouterSweepProxyHonorsForwardedKnobs(t *testing.T) {
	items := coordItems()

	// Chunk: every dispatch the proxy makes must respect the caller's
	// chunk size, splitting a shard's sub-grid into several calls.
	t.Run("chunk", func(t *testing.T) {
		var mu sync.Mutex
		var calls []int
		clients := make([]Client, 2)
		for k := range clients {
			svc, err := serve.New(serve.Config{Plat: hw.RTX4090PCIe(), NGPUs: 2, CandidateLimit: 64, Curves: sharedCurves(t)})
			if err != nil {
				t.Fatal(err)
			}
			inner := &LocalClient{Svc: svc}
			clients[k] = &stubClient{sweep: func(req serve.SweepRequest) ([]serve.SweepResult, error) {
				mu.Lock()
				calls = append(calls, len(req.Items))
				mu.Unlock()
				return collectClient(inner, req)
			}}
		}
		r, err := NewRouter(clients)
		if err != nil {
			t.Fatal(err)
		}
		front := httptest.NewServer(r.Handler())
		defer front.Close()

		body, err := json.Marshal(serve.SweepRequest{SweepSpec: serve.SweepSpec{Chunk: 2}, Items: items})
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.Post(front.URL+"/sweep", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status = %d", resp.StatusCode)
		}
		mu.Lock()
		defer mu.Unlock()
		if len(calls) <= 2 {
			t.Fatalf("proxy made %d dispatches for %d items at chunk 2; forwarded chunk size ignored", len(calls), len(items))
		}
		for _, n := range calls {
			if n > 2 {
				t.Fatalf("proxy dispatched a %d-item chunk, want <= 2 (forwarded chunk size)", n)
			}
		}
	})

	// A remote-supplied budget is clamped to twice the fleet size: an
	// absurd attempts value over a dead fleet must fail within a couple
	// of cooldown windows, not wedge the proxy goroutine indefinitely.
	t.Run("attempts-clamped", func(t *testing.T) {
		down := func() *stubClient {
			return &stubClient{
				sweep: func(serve.SweepRequest) ([]serve.SweepResult, error) {
					return nil, errors.New("stub: replica is down")
				},
				healthz: func() error { return errors.New("stub: replica is down") },
			}
		}
		r, err := NewRouter([]Client{down(), down()})
		if err != nil {
			t.Fatal(err)
		}
		r.Health().SetCooldown(30 * time.Millisecond)
		front := httptest.NewServer(r.Handler())
		defer front.Close()

		body, err := json.Marshal(serve.SweepRequest{SweepSpec: serve.SweepSpec{Attempts: 1 << 20}, Items: items})
		if err != nil {
			t.Fatal(err)
		}
		start := time.Now()
		resp, err := http.Post(front.URL+"/sweep", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode == http.StatusOK {
			t.Fatal("sweep over a dead fleet succeeded")
		}
		if elapsed := time.Since(start); elapsed > 5*time.Second {
			t.Fatalf("clamped budget took %v; the proxy goroutine was wedged by the remote attempts value", elapsed)
		}
	})

	// Attempts: a budget of 1 must fail the proxied sweep when the owner
	// is down (no failover budget), while 2 fails over and succeeds.
	for _, tc := range []struct {
		attempts int
		wantOK   bool
	}{{1, false}, {2, true}} {
		t.Run(fmt.Sprintf("attempts=%d", tc.attempts), func(t *testing.T) {
			part := NewPartitioner(2)
			var sub []serve.SweepItem
			for _, it := range items {
				if part.Owner(it.Shape()) == 0 {
					sub = append(sub, it)
				}
			}
			if len(sub) == 0 {
				t.Fatal("shard 0 owns no quick-grid items")
			}
			svc, err := serve.New(serve.Config{Plat: hw.RTX4090PCIe(), NGPUs: 2, CandidateLimit: 64, Curves: sharedCurves(t)})
			if err != nil {
				t.Fatal(err)
			}
			downOwner := &stubClient{sweep: func(serve.SweepRequest) ([]serve.SweepResult, error) {
				return nil, errors.New("stub: owner is down")
			}}
			r, err := NewRouter([]Client{downOwner, &LocalClient{Svc: svc}})
			if err != nil {
				t.Fatal(err)
			}
			front := httptest.NewServer(r.Handler())
			defer front.Close()

			body, err := json.Marshal(serve.SweepRequest{SweepSpec: serve.SweepSpec{Attempts: tc.attempts}, Items: sub})
			if err != nil {
				t.Fatal(err)
			}
			resp, err := http.Post(front.URL+"/sweep", "application/json", bytes.NewReader(body))
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			if tc.wantOK && resp.StatusCode != http.StatusOK {
				t.Fatalf("status = %d with failover budget, want 200", resp.StatusCode)
			}
			if !tc.wantOK {
				if resp.StatusCode == http.StatusOK {
					t.Fatal("sweep succeeded with attempts=1 and a dead owner; forwarded budget ignored")
				}
				var env serve.ErrorEnvelope
				if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
					t.Fatal(err)
				}
				if !strings.Contains(env.Error.Message, "re-dispatch budget") {
					t.Fatalf("error %q does not name the exhausted budget", env.Error.Message)
				}
				if !env.Error.Retryable {
					t.Fatal("exhausted budget not marked retryable in the envelope")
				}
			}
		})
	}
}
