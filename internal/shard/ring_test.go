package shard

import (
	"context"
	"testing"
	"time"

	"repro/internal/gemm"
)

// syntheticShapes spans a wide swath of the (log M·N, log K) plane — many
// more distinct cells than the quick Table 3 grid — so the remap tests see
// the ring's behavior across a population, not a handful of cells.
func syntheticShapes() []gemm.Shape {
	var out []gemm.Shape
	for m := 256; m <= 16384; m *= 2 {
		for n := 1024; n <= 16384; n *= 2 {
			for k := 512; k <= 32768; k *= 2 {
				out = append(out, gemm.Shape{M: m, N: n, K: k})
			}
		}
	}
	return out
}

// Evicting one member from the ring is a structural O(1/n) remap: cells the
// evicted member owned land on survivors, every other cell keeps its owner
// bit-for-bit, and readmission (alive admitting everyone again) restores the
// static mapping exactly — the hand-back is the same cells that left.
func TestRingEvictionRemapsOnlyEvictedCells(t *testing.T) {
	shapes := syntheticShapes()
	if len(shapes) < 100 {
		t.Fatalf("only %d synthetic shapes; population too small to be meaningful", len(shapes))
	}
	for n := 3; n <= 8; n++ {
		p := NewPartitioner(n)
		base := make([]int, len(shapes))
		for i, s := range shapes {
			base[i] = p.Owner(s)
		}
		for dead := 0; dead < n; dead++ {
			alive := func(m int) bool { return m != dead }
			moved := 0
			for i, s := range shapes {
				got := p.OwnerAmong(s, alive)
				if got == dead {
					t.Fatalf("n=%d: %v assigned to the evicted member %d", n, s, dead)
				}
				if base[i] != dead && got != base[i] {
					t.Fatalf("n=%d dead=%d: %v moved %d -> %d though its owner survived",
						n, dead, s, base[i], got)
				}
				if base[i] == dead {
					moved++
				}
			}
			if moved == 0 {
				t.Fatalf("n=%d: member %d owned no synthetic cells; remap test vacuous", n, dead)
			}
			// The O(1/n) bound: the moved set is exactly the evicted
			// member's share of the plane, which the ring keeps balanced.
			if moved > 2*len(shapes)/n {
				t.Fatalf("n=%d dead=%d: %d of %d cells moved, beyond 2/n — ring badly unbalanced",
					n, dead, moved, len(shapes))
			}
			for i, s := range shapes {
				if got := p.OwnerAmong(s, func(int) bool { return true }); got != base[i] {
					t.Fatalf("n=%d dead=%d: hand-back moved %v to %d, want its original owner %d",
						n, dead, s, got, base[i])
				}
			}
		}
	}
}

// Two simultaneous evictions compose: only cells owned by one of the two
// evicted members move, and each lands on one of the survivors.
func TestRingDoubleEvictionLandsOnSurvivors(t *testing.T) {
	shapes := syntheticShapes()
	const n = 5
	p := NewPartitioner(n)
	for a := 0; a < n; a++ {
		for b := a + 1; b < n; b++ {
			alive := func(m int) bool { return m != a && m != b }
			for _, s := range shapes {
				was := p.Owner(s)
				got := p.OwnerAmong(s, alive)
				if got == a || got == b {
					t.Fatalf("dead={%d,%d}: %v assigned to an evicted member (%d)", a, b, s, got)
				}
				if was != a && was != b && got != was {
					t.Fatalf("dead={%d,%d}: %v moved %d -> %d though its owner survived", a, b, s, was, got)
				}
			}
		}
	}
}

// The eviction latch, on an injected clock: a replica must stay continuously
// dead for evictAfter whole cooldowns before Evicted trips; failed suspect
// trials mid-spell do not reset the clock; the flag latches (counted once),
// only MarkHealthy clears it (counted as a hand-back), and a fresh death
// spell starts a fresh clock.
func TestHealthEvictionLatchAndHandback(t *testing.T) {
	h := NewHealth(2)
	h.SetCooldown(time.Second)
	h.SetEvictAfter(3)
	now := time.Unix(1_000_000, 0)
	h.now = func() time.Time { return now }

	if h.Evicted(0) {
		t.Fatal("healthy replica reads evicted")
	}
	h.MarkFailed(0)
	now = now.Add(2900 * time.Millisecond)
	if h.Evicted(0) {
		t.Fatal("evicted before three whole cooldowns elapsed")
	}
	// A suspect trial that fails restarts the cooldown but must not restart
	// the eviction clock — the spell has been unbroken since the first
	// failure.
	h.MarkFailed(0)
	now = now.Add(200 * time.Millisecond)
	if !h.Evicted(0) {
		t.Fatal("not evicted 3.1s into an unbroken death spell (3×1s window)")
	}
	if got := h.Evictions(); got != 1 {
		t.Fatalf("evictions = %d, want 1", got)
	}
	h.Evicted(0) // observing again must not recount
	if got := h.Evictions(); got != 1 {
		t.Fatalf("evictions recounted on re-observation: %d", got)
	}
	if h.Evicted(1) {
		t.Fatal("the healthy peer got evicted too")
	}

	h.MarkHealthy(0)
	if h.Evicted(0) {
		t.Fatal("re-admission did not clear the eviction latch")
	}
	if got := h.Handbacks(); got != 1 {
		t.Fatalf("handbacks = %d, want 1", got)
	}

	// The next death spell starts its own clock: two seconds dead is not
	// enough even though the replica was evicted minutes ago.
	h.MarkFailed(0)
	now = now.Add(2 * time.Second)
	if h.Evicted(0) {
		t.Fatal("previous spell's age leaked into the new one")
	}
	now = now.Add(1100 * time.Millisecond)
	if !h.Evicted(0) {
		t.Fatal("second spell did not evict past its own window")
	}
	h.MarkHealthy(0)

	// SetEvictAfter(0) disables eviction outright: dead forever, never
	// evicted — the pre-rebalance behavior.
	h.SetEvictAfter(0)
	h.MarkFailed(0)
	now = now.Add(24 * time.Hour)
	if h.Evicted(0) {
		t.Fatal("eviction disabled but the latch tripped anyway")
	}
	if h.Evictions() != 2 || h.Handbacks() != 2 {
		t.Fatalf("counters = (%d evictions, %d handbacks), want (2, 2)", h.Evictions(), h.Handbacks())
	}
}

// Router.Owner consults the eviction predicate: once a replica's death spell
// ages past the window, ownership of its cells moves to the survivors with
// no failover hop, and MarkHealthy hands the exact cells back.
func TestRouterOwnerRebalancesAroundEvictedReplica(t *testing.T) {
	r, _, _ := testFleet(t, 3)
	h := r.Health()
	h.SetCooldown(time.Second)
	h.SetEvictAfter(1)
	now := time.Unix(1_000_000, 0)
	h.now = func() time.Time { return now }

	shapes := quickGridShapes()
	part := r.Partitioner()
	base := make([]int, len(shapes))
	for i, s := range shapes {
		base[i] = part.Owner(s)
		if got := r.Owner(s); got != base[i] {
			t.Fatalf("healthy fleet: Router.Owner(%v) = %d, want static owner %d", s, got, base[i])
		}
	}

	const victim = 1
	h.MarkFailed(victim)
	now = now.Add(1100 * time.Millisecond)
	for i, s := range shapes {
		got := r.Owner(s)
		if got == victim {
			t.Fatalf("%v still owned by the evicted replica", s)
		}
		if base[i] != victim && got != base[i] {
			t.Fatalf("%v moved %d -> %d though its owner is alive", s, base[i], got)
		}
	}
	st := r.Stats(context.Background())
	if st.Evictions != 1 {
		t.Fatalf("stats evictions = %d, want 1", st.Evictions)
	}
	if !st.PerShard[victim].Evicted {
		t.Fatal("stats do not flag the victim as evicted")
	}

	h.MarkHealthy(victim)
	for i, s := range shapes {
		if got := r.Owner(s); got != base[i] {
			t.Fatalf("after hand-back %v owned by %d, want %d", s, got, base[i])
		}
	}
	if st := r.Stats(context.Background()); st.Handbacks != 1 {
		t.Fatalf("stats handbacks = %d, want 1", st.Handbacks)
	}
}
