package shard

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/url"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/gemm"
	"repro/internal/serve"
	"repro/internal/sim"
)

// Client is one replica endpoint a Router fans out to: either a remote
// cmd/serve process (HTTPClient) or an in-process service (LocalClient).
type Client interface {
	Query(q serve.Query) (serve.Answer, error)
	Sweep(req serve.SweepRequest) ([]serve.SweepResult, error)
	Stats() (serve.Stats, error)
}

// QueryError marks an error the query itself caused (a malformed request, an
// unsupported primitive): deterministic, so the Router does not fail over —
// every replica would reject it the same way.
type QueryError struct {
	Status int // HTTP status when the error came over the wire; 0 locally
	Err    error
}

func (e *QueryError) Error() string { return e.Err.Error() }
func (e *QueryError) Unwrap() error { return e.Err }

// retryable reports whether the error might be replica-specific (down,
// overloaded, mid-deploy) rather than inherent to the query.
func retryable(err error) bool {
	var qe *QueryError
	return !errors.As(err, &qe)
}

// DefaultTimeout bounds requests of the package-default HTTP client: long
// enough for a cold-shape tune or a full sweep chunk of simulations, short
// enough that a black-holed replica (SYN dropped, process wedged mid-write)
// costs one bounded hop of the failover ring instead of stalling the caller
// forever. Callers with tighter SLOs pass their own client (cmd/route's
// -timeout flag does).
const DefaultTimeout = 60 * time.Second

// defaultClient replaces http.DefaultClient as the fallback transport.
// http.DefaultClient has no timeout, so a single unresponsive replica used
// to hang Router.Query's failover loop — and every query behind it —
// unboundedly.
var defaultClient = &http.Client{Timeout: DefaultTimeout}

// HTTPClient speaks the cmd/serve HTTP/JSON protocol against a base URL like
// "http://10.0.0.7:8080". A nil HTTP field uses the package's bounded
// default client (DefaultTimeout per request).
type HTTPClient struct {
	Base string
	HTTP *http.Client
}

func (c *HTTPClient) client() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return defaultClient
}

// ParseReplicas parses a comma-separated replica URL list (the -replicas
// flag of cmd/route and cmd/sweep), trimming whitespace and trailing
// slashes and defaulting the scheme to http. Empty entries and duplicates
// are rejected: replica position is shard identity (entry i serves
// -shard i/n), so a URL listed twice would occupy two slots of the
// ownership plane while halving the fleet's real coverage — and the
// partitioner would silently skew instead of failing loudly at startup.
func ParseReplicas(raw string) ([]string, error) {
	if strings.TrimSpace(raw) == "" {
		return nil, fmt.Errorf("shard: empty replica list")
	}
	seen := make(map[string]bool)
	var urls []string
	for _, tok := range strings.Split(raw, ",") {
		u := strings.TrimRight(strings.TrimSpace(tok), "/")
		if u == "" {
			return nil, fmt.Errorf("shard: empty replica URL in %q", raw)
		}
		if !strings.Contains(u, "://") {
			u = "http://" + u
		}
		if seen[u] {
			return nil, fmt.Errorf("shard: duplicate replica URL %s (replica position is shard identity; list each replica once, in shard order)", u)
		}
		seen[u] = true
		urls = append(urls, u)
	}
	return urls, nil
}

func (c *HTTPClient) get(path string, out any) error {
	resp, err := c.client().Get(c.Base + path)
	if err != nil {
		return fmt.Errorf("shard: %s: %w", c.Base, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var body struct {
			Error string `json:"error"`
		}
		_ = json.NewDecoder(resp.Body).Decode(&body)
		if body.Error == "" {
			body.Error = resp.Status
		}
		err := fmt.Errorf("shard: %s%s: %s", c.Base, path, body.Error)
		if resp.StatusCode >= 400 && resp.StatusCode < 500 {
			// The replica understood the request and rejected it;
			// another replica would too.
			return &QueryError{Status: resp.StatusCode, Err: err}
		}
		return err
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return fmt.Errorf("shard: %s%s: decoding reply: %w", c.Base, path, err)
	}
	return nil
}

// Query forwards one query over /query.
func (c *HTTPClient) Query(q serve.Query) (serve.Answer, error) {
	v := url.Values{}
	v.Set("m", fmt.Sprint(q.Shape.M))
	v.Set("n", fmt.Sprint(q.Shape.N))
	v.Set("k", fmt.Sprint(q.Shape.K))
	v.Set("prim", q.Prim.Short())
	if q.Imbalance != 0 {
		v.Set("imbalance", fmt.Sprint(q.Imbalance))
	}
	var qr serve.QueryResponse
	if err := c.get("/query?"+v.Encode(), &qr); err != nil {
		return serve.Answer{}, err
	}
	return serve.Answer{
		Partition: gemm.Partition(qr.Partition),
		Waves:     qr.Waves,
		Predicted: sim.Time(qr.PredictedNs),
		Source:    qr.Source,
	}, nil
}

// Sweep posts one sweep chunk to the replica's /sweep endpoint. A non-OK
// reply carrying a chunk-local item index is rebuilt as a
// *serve.ChunkError, so coordinators attribute remote failures exactly like
// local ones.
func (c *HTTPClient) Sweep(req serve.SweepRequest) ([]serve.SweepResult, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, fmt.Errorf("shard: encoding sweep chunk: %w", err)
	}
	resp, err := c.client().Post(c.Base+"/sweep", "application/json", bytes.NewReader(body))
	if err != nil {
		return nil, fmt.Errorf("shard: %s: %w", c.Base, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var eb struct {
			Error string `json:"error"`
			Index *int   `json:"index"`
		}
		_ = json.NewDecoder(resp.Body).Decode(&eb)
		if eb.Error == "" {
			eb.Error = resp.Status
		}
		cause := fmt.Errorf("shard: %s/sweep: %s", c.Base, eb.Error)
		if eb.Index != nil && *eb.Index >= 0 {
			cause = &serve.ChunkError{Index: *eb.Index, Err: cause}
		}
		if resp.StatusCode >= 400 && resp.StatusCode < 500 {
			// The replica understood the chunk and rejected it;
			// another replica would too.
			return nil, &QueryError{Status: resp.StatusCode, Err: cause}
		}
		return nil, cause
	}
	var sr serve.SweepResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		return nil, fmt.Errorf("shard: %s/sweep: decoding reply: %w", c.Base, err)
	}
	return sr.Results, nil
}

// Stats fetches the replica's /stats snapshot.
func (c *HTTPClient) Stats() (serve.Stats, error) {
	var st serve.Stats
	if err := c.get("/stats", &st); err != nil {
		return serve.Stats{}, err
	}
	return st, nil
}

// LocalClient adapts an in-process *serve.Service to the Client interface
// (sharded sweeps inside one process, tests). Errors classify exactly like
// the HTTP path: deterministic query rejections (serve.IsBadQuery) become
// non-retryable QueryErrors, internal service failures pass through
// retryable — mirroring the 4xx/5xx split serve.Handler applies on the
// wire.
type LocalClient struct {
	Svc *serve.Service
}

func (c *LocalClient) Query(q serve.Query) (serve.Answer, error) {
	ans, err := c.Svc.Query(q)
	if err != nil {
		if serve.IsBadQuery(err) {
			return serve.Answer{}, &QueryError{Err: err}
		}
		return serve.Answer{}, err
	}
	return ans, nil
}

// Sweep processes one sweep chunk on the in-process service.
func (c *LocalClient) Sweep(req serve.SweepRequest) ([]serve.SweepResult, error) {
	res, err := c.Svc.SweepChunk(req)
	if err != nil {
		if serve.IsBadQuery(err) {
			return nil, &QueryError{Err: err}
		}
		return nil, err
	}
	return res, nil
}

func (c *LocalClient) Stats() (serve.Stats, error) { return c.Svc.Stats(), nil }

// Answer is a routed reply: the replica's answer plus where it came from.
type Answer struct {
	serve.Answer
	// Owner is the shard the partitioner assigned; Replica is the shard
	// that actually answered (different only after failover).
	Owner, Replica int
}

// Router fans queries out to a fleet of replicas by shape ownership, failing
// over to the next shard in ring order when the owner is unreachable. All
// methods are safe for concurrent use.
type Router struct {
	part    Partitioner
	clients []Client

	routed    []atomic.Uint64 // per-replica answered queries
	failovers atomic.Uint64
}

// NewRouter builds a router over the replica fleet; ownership follows
// NewPartitioner(len(clients)).
func NewRouter(clients []Client) (*Router, error) {
	if len(clients) == 0 {
		return nil, fmt.Errorf("shard: router needs at least one replica")
	}
	return &Router{
		part:    NewPartitioner(len(clients)),
		clients: clients,
		routed:  make([]atomic.Uint64, len(clients)),
	}, nil
}

// Partitioner exposes the ownership mapping the router fans out with.
func (r *Router) Partitioner() Partitioner { return r.part }

// Query forwards q to the owning replica. If the owner fails with a
// replica-level error (connection refused, 5xx), the query retries on the
// next shards in ring order until one answers; a query-level rejection (4xx)
// returns immediately. The error after exhausting the fleet is the owner's.
func (r *Router) Query(q serve.Query) (Answer, error) {
	owner := r.part.Owner(q.Shape)
	var firstErr error
	for hop := 0; hop < len(r.clients); hop++ {
		replica := (owner + hop) % len(r.clients)
		ans, err := r.clients[replica].Query(q)
		if err == nil {
			r.routed[replica].Add(1)
			if hop > 0 {
				r.failovers.Add(1)
			}
			return Answer{Answer: ans, Owner: owner, Replica: replica}, nil
		}
		if firstErr == nil {
			firstErr = err
		}
		if !retryable(err) {
			return Answer{}, err
		}
	}
	return Answer{}, fmt.Errorf("shard: all %d replicas failed: %w", len(r.clients), firstErr)
}

// ReplicaStats is one replica's slice of a router stats snapshot.
type ReplicaStats struct {
	Replica int `json:"replica"`
	// Routed counts queries this replica answered through the router.
	Routed uint64 `json:"routed"`
	// Error is set when the replica's /stats was unreachable; Stats is
	// then zero and excluded from the merge.
	Error string      `json:"error,omitempty"`
	Stats serve.Stats `json:"stats"`
}

// Stats is the router's merged fleet view plus the per-replica breakdown.
type RouterStats struct {
	Replicas  int            `json:"replicas"`
	Failovers uint64         `json:"failovers"`
	Merged    serve.Stats    `json:"merged"`
	PerShard  []ReplicaStats `json:"per_shard"`
}

// Stats polls every replica concurrently and merges the reachable
// snapshots. A down replica appears in PerShard with its error instead of
// failing the whole snapshot — a router must report on a degraded fleet, not
// mirror it — and the parallel poll means k unreachable replicas cost one
// client timeout, not k stacked ones.
func (r *Router) Stats() RouterStats {
	st := RouterStats{
		Replicas:  len(r.clients),
		Failovers: r.failovers.Load(),
		PerShard:  make([]ReplicaStats, len(r.clients)),
	}
	var wg sync.WaitGroup
	for i, c := range r.clients {
		wg.Add(1)
		go func(i int, c Client) {
			defer wg.Done()
			rs := ReplicaStats{Replica: i, Routed: r.routed[i].Load()}
			s, err := c.Stats()
			if err != nil {
				rs.Error = err.Error()
			} else {
				rs.Stats = s
			}
			st.PerShard[i] = rs
		}(i, c)
	}
	wg.Wait()
	for _, rs := range st.PerShard {
		if rs.Error == "" {
			st.Merged = st.Merged.Merge(rs.Stats)
		}
	}
	return st
}

// RoutedResponse is the JSON shape of the router's /query reply: the
// replica's response plus routing attribution.
type RoutedResponse struct {
	serve.QueryResponse
	Owner   int `json:"owner"`
	Replica int `json:"replica"`
}

// RoutedSweepResponse is the router's /sweep reply: per-item results with
// routing attribution, plus the number of chunks this sweep re-dispatched
// through the failover ring.
type RoutedSweepResponse struct {
	Results      []SweepResult `json:"results"`
	Redispatches uint64        `json:"redispatches"`
}

// Handler mounts the router on an HTTP mux with the same surface as a
// replica — /query, /sweep, and /stats — so clients cannot tell a router
// from a single serve process (except for the extra attribution fields).
// /sweep is proxied through a Coordinator over the fleet, which means a
// cmd/sweep pointed at a router as a one-replica "fleet" transparently fans
// out across the real one.
func (r *Router) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/query", func(w http.ResponseWriter, req *http.Request) {
		q, err := serve.ParseQuery(req)
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		ans, err := r.Query(q)
		if err != nil {
			status := http.StatusBadGateway
			var qe *QueryError
			if errors.As(err, &qe) {
				status = qe.Status
				if status == 0 {
					status = http.StatusUnprocessableEntity
				}
			}
			writeError(w, status, err)
			return
		}
		writeJSON(w, RoutedResponse{
			QueryResponse: serve.QueryResponse{
				Shape:       q.Shape.String(),
				Primitive:   q.Prim.String(),
				Partition:   ans.Partition,
				Waves:       ans.Waves,
				PredictedNs: int64(ans.Predicted),
				Source:      ans.Source,
			},
			Owner:   ans.Owner,
			Replica: ans.Replica,
		})
	})
	mux.HandleFunc("/sweep", func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodPost {
			w.Header().Set("Allow", http.MethodPost)
			writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("shard: /sweep takes POST, got %s", req.Method))
			return
		}
		var sr serve.SweepRequest
		if err := json.NewDecoder(req.Body).Decode(&sr); err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("shard: decoding sweep request: %w", err))
			return
		}
		if len(sr.Items) == 0 {
			writeError(w, http.StatusBadRequest, fmt.Errorf("shard: sweep request has no items"))
			return
		}
		co := NewCoordinator(r)
		co.Tune = sr.Tune
		results, err := co.Sweep(sr.Items)
		if err != nil {
			status := http.StatusBadGateway
			var qe *QueryError
			if errors.As(err, &qe) {
				status = qe.Status
				if status == 0 {
					status = http.StatusUnprocessableEntity
				}
			}
			// Forward the failing item's index (into the posted grid)
			// like a replica's /sweep does, so an outer coordinator
			// driving this router as a one-replica fleet re-attributes
			// the failure to its own global index instead of blaming
			// the chunk's first item.
			idx := -1
			var fe *fanError
			if errors.As(err, &fe) {
				idx = fe.At
			}
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(status)
			_ = json.NewEncoder(w).Encode(map[string]any{"error": err.Error(), "index": idx})
			return
		}
		writeJSON(w, RoutedSweepResponse{Results: results, Redispatches: co.Redispatches()})
	})
	mux.HandleFunc("/stats", func(w http.ResponseWriter, req *http.Request) {
		writeJSON(w, r.Stats())
	})
	return mux
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}
