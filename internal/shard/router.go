package shard

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/gemm"
	"repro/internal/metrics"
	"repro/internal/serve"
	"repro/internal/sim"
)

// Client is one replica endpoint a Router fans out to: either a remote
// cmd/serve process (HTTPClient) or an in-process service (LocalClient).
// Sweep streams each answered item into sink as it completes and returns
// only the chunk's fate: nil once every item was delivered, an error
// otherwise. Items already delivered before a failure are salvage — final
// results the caller may keep (deterministic on any replica) while
// re-dispatching the rest; a failed chunk never redelivers them.
//
// Every method takes the caller's request context: over HTTP the context
// rides the request, so cancelling a coordinator sweep tears down its
// in-flight chunk requests and the replicas abandon the unexecuted
// remainder.
type Client interface {
	Query(ctx context.Context, q serve.Query) (serve.Answer, error)
	Sweep(ctx context.Context, req serve.SweepRequest, sink serve.SweepSink) error
	Stats(ctx context.Context) (serve.Stats, error)
	// Healthz is the lightweight liveness probe behind dead-replica
	// re-admission: nil means the replica is up and serving.
	Healthz(ctx context.Context) error
}

// QueryError marks an error the query itself caused (a malformed request, an
// unsupported primitive): deterministic, so the Router does not fail over —
// every replica would reject it the same way.
type QueryError struct {
	Status int // HTTP status when the error came over the wire; 0 locally
	Err    error
}

func (e *QueryError) Error() string { return e.Err.Error() }
func (e *QueryError) Unwrap() error { return e.Err }

// retryable reports whether the error might be replica-specific (down,
// overloaded, mid-deploy) rather than inherent to the query.
func retryable(err error) bool {
	var qe *QueryError
	return !errors.As(err, &qe)
}

// ReplyError marks a failure the replica itself reported over a live
// connection — a structured 5xx reply or a v2 error frame. Retryable
// (another replica may succeed), but proof of liveness: the health plane
// must not bench the sender as if it had timed out.
type ReplyError struct {
	Status int // HTTP status when the error came over the wire; 0 locally
	Err    error
}

func (e *ReplyError) Error() string { return e.Err.Error() }
func (e *ReplyError) Unwrap() error { return e.Err }

// replicaAnswered reports whether err proves the replica is alive and
// answering — a structured reply (4xx rejection, 5xx reply body, an error
// frame, or an item-attributed chunk failure) as opposed to a
// transport-level failure (connection refused, timeout, truncated stream).
// Benching is reserved for the latter: those are the failures whose retry
// costs a timeout, and benching on answered errors would let one
// deterministic-5xx poison query/item walk the ring and mark the whole
// fleet dead.
func replicaAnswered(err error) bool {
	var re *ReplyError
	var qe *QueryError
	var ce *serve.ChunkError
	return errors.As(err, &re) || errors.As(err, &qe) || errors.As(err, &ce)
}

// DefaultTimeout bounds requests of the package-default HTTP client: long
// enough for a cold-shape tune or a full sweep chunk of simulations, short
// enough that a black-holed replica (SYN dropped, process wedged mid-write)
// costs one bounded hop of the failover ring instead of stalling the caller
// forever. Callers with tighter SLOs pass their own client (cmd/route's
// -timeout flag does).
const DefaultTimeout = 60 * time.Second

// defaultClient replaces http.DefaultClient as the fallback transport.
// http.DefaultClient has no timeout, so a single unresponsive replica used
// to hang Router.Query's failover loop — and every query behind it —
// unboundedly.
var defaultClient = &http.Client{Timeout: DefaultTimeout}

// HTTPClient speaks the cmd/serve HTTP/JSON protocol against a base URL like
// "http://10.0.0.7:8080". A nil HTTP field uses the package's bounded
// default client (DefaultTimeout per request). Per-request deadlines derive
// from the caller's context as well as the client-wide timeout: every
// request carries its ctx, and net/http applies whichever bound — the ctx
// deadline or the client's Timeout — expires sooner.
type HTTPClient struct {
	Base string
	HTTP *http.Client
}

func (c *HTTPClient) client() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return defaultClient
}

// ParseReplicas parses a comma-separated replica URL list (the -replicas
// flag of cmd/route and cmd/sweep), trimming whitespace and trailing
// slashes and defaulting the scheme to http. Empty entries and duplicates
// are rejected: replica position is shard identity (entry i serves
// -shard i/n), so a URL listed twice would occupy two slots of the
// ownership plane while halving the fleet's real coverage — and the
// partitioner would silently skew instead of failing loudly at startup.
func ParseReplicas(raw string) ([]string, error) {
	if strings.TrimSpace(raw) == "" {
		return nil, fmt.Errorf("shard: empty replica list")
	}
	seen := make(map[string]bool)
	var urls []string
	for _, tok := range strings.Split(raw, ",") {
		u := strings.TrimRight(strings.TrimSpace(tok), "/")
		if u == "" {
			return nil, fmt.Errorf("shard: empty replica URL in %q", raw)
		}
		if !strings.Contains(u, "://") {
			u = "http://" + u
		}
		if seen[u] {
			return nil, fmt.Errorf("shard: duplicate replica URL %s (replica position is shard identity; list each replica once, in shard order)", u)
		}
		seen[u] = true
		urls = append(urls, u)
	}
	return urls, nil
}

// decodeWireError parses a non-200 reply body: the unified error envelope
// {"error": {"message", "retryable", ...}}, with a fallback for the legacy
// bare-string form {"error": "..."} older replicas wrote. Garbage bodies
// yield a zero ErrorBody; callers default the message to the HTTP status.
func decodeWireError(r io.Reader) serve.ErrorBody {
	var raw struct {
		Error json.RawMessage `json:"error"`
	}
	_ = json.NewDecoder(r).Decode(&raw)
	var body serve.ErrorBody
	if len(raw.Error) > 0 {
		if raw.Error[0] == '"' {
			_ = json.Unmarshal(raw.Error, &body.Message)
		} else {
			_ = json.Unmarshal(raw.Error, &body)
		}
	}
	return body
}

func (c *HTTPClient) get(ctx context.Context, path string, out any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.Base+path, nil)
	if err != nil {
		return fmt.Errorf("shard: %s: %w", c.Base, err)
	}
	resp, err := c.client().Do(req)
	if err != nil {
		return fmt.Errorf("shard: %s: %w", c.Base, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		eb := decodeWireError(resp.Body)
		if eb.Message == "" {
			eb.Message = resp.Status
		}
		err := fmt.Errorf("shard: %s%s: %s", c.Base, path, eb.Message)
		if resp.StatusCode >= 400 && resp.StatusCode < 500 {
			// The replica understood the request and rejected it;
			// another replica would too.
			return &QueryError{Status: resp.StatusCode, Err: err}
		}
		// A structured 5xx is the replica answering, not dying.
		return &ReplyError{Status: resp.StatusCode, Err: err}
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return fmt.Errorf("shard: %s%s: decoding reply: %w", c.Base, path, err)
	}
	return nil
}

// Query forwards one query over /query.
func (c *HTTPClient) Query(ctx context.Context, q serve.Query) (serve.Answer, error) {
	v := url.Values{}
	v.Set("m", fmt.Sprint(q.Shape.M))
	v.Set("n", fmt.Sprint(q.Shape.N))
	v.Set("k", fmt.Sprint(q.Shape.K))
	v.Set("prim", q.Prim.Short())
	if q.Imbalance != 0 {
		v.Set("imbalance", fmt.Sprint(q.Imbalance))
	}
	if q.Tenant != "" {
		v.Set("tenant", q.Tenant)
	}
	var qr serve.QueryResponse
	if err := c.get(ctx, "/query?"+v.Encode(), &qr); err != nil {
		return serve.Answer{}, err
	}
	return serve.Answer{
		Partition: gemm.Partition(qr.Partition),
		Waves:     qr.Waves,
		Predicted: sim.Time(qr.PredictedNs),
		Source:    qr.Source,
	}, nil
}

// Sweep posts one sweep chunk to the replica's /sweep endpoint, negotiating
// the v2 NDJSON stream (Accept: application/x-ndjson) and feeding each
// result frame into sink as it arrives — the replica's completed items
// reach the coordinator even when the replica dies mid-chunk. A v1 replica
// that answers with a buffered JSON reply is detected by Content-Type and
// fed through the same sink, so the client speaks to either generation.
// Failures carrying a chunk-local item index are rebuilt as
// *serve.ChunkError, so coordinators attribute remote failures exactly like
// local ones.
func (c *HTTPClient) Sweep(ctx context.Context, req serve.SweepRequest, sink serve.SweepSink) error {
	body, err := json.Marshal(req)
	if err != nil {
		return fmt.Errorf("shard: encoding sweep chunk: %w", err)
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, c.Base+"/sweep", bytes.NewReader(body))
	if err != nil {
		return fmt.Errorf("shard: %s: %w", c.Base, err)
	}
	hreq.Header.Set("Content-Type", "application/json")
	hreq.Header.Set("Accept", serve.ContentTypeNDJSON)
	resp, err := c.client().Do(hreq)
	if err != nil {
		return fmt.Errorf("shard: %s: %w", c.Base, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		eb := decodeWireError(resp.Body)
		if eb.Message == "" {
			eb.Message = resp.Status
		}
		// Deliver the envelope's salvage prefix through the sink first —
		// the buffered-path equivalent of the result frames a v2 stream
		// would already have delivered before its error frame.
		for i, r := range eb.Results {
			if serr := sink(i, r); serr != nil {
				return serr
			}
		}
		cause := error(fmt.Errorf("shard: %s/sweep: %s", c.Base, eb.Message))
		if eb.Index != nil && *eb.Index >= 0 {
			cause = &serve.ChunkError{Index: *eb.Index, Err: cause}
		}
		if resp.StatusCode >= 400 && resp.StatusCode < 500 {
			// The replica understood the chunk and rejected it;
			// another replica would too.
			return &QueryError{Status: resp.StatusCode, Err: cause}
		}
		// The structured reply (indexed or not) marks the replica as
		// having answered, not died.
		if eb.Index == nil || *eb.Index < 0 {
			cause = &ReplyError{Status: resp.StatusCode, Err: cause}
		}
		return cause
	}
	if strings.HasPrefix(resp.Header.Get("Content-Type"), serve.ContentTypeNDJSON) {
		return c.sweepFrames(resp.Body, sink)
	}
	// A v1 replica ignored the Accept header and buffered: decode the
	// whole reply, then feed it through the sink in order.
	var sr serve.SweepResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		return fmt.Errorf("shard: %s/sweep: decoding reply: %w", c.Base, err)
	}
	for i, r := range sr.Results {
		if err := sink(i, r); err != nil {
			return err
		}
	}
	return nil
}

// sweepFrames consumes a v2 NDJSON sweep stream: result frames feed the
// sink as they arrive, a done frame completes the chunk, and an error frame
// is rebuilt into the same error taxonomy the status-coded path uses — the
// stream committed its 200 before executing, so the frame's retryable bit
// carries the 4xx/5xx split instead of the status line.
func (c *HTTPClient) sweepFrames(body io.Reader, sink serve.SweepSink) error {
	dec := json.NewDecoder(body)
	for {
		var fr serve.SweepFrame
		if err := dec.Decode(&fr); err != nil {
			// Truncation before the terminal frame is a transport
			// failure: the replica died mid-stream. Items already
			// delivered stand as salvage.
			return fmt.Errorf("shard: %s/sweep: stream ended before its terminal frame: %w", c.Base, err)
		}
		switch fr.Frame {
		case serve.FrameResult:
			if fr.Result == nil {
				return fmt.Errorf("shard: %s/sweep: result frame without a result", c.Base)
			}
			if err := sink(fr.Index, *fr.Result); err != nil {
				return err
			}
		case serve.FrameDone:
			return nil
		case serve.FrameError:
			eb := fr.Error
			if eb == nil {
				eb = &serve.ErrorBody{Message: "error frame without a body"}
			}
			cause := error(fmt.Errorf("shard: %s/sweep: %s", c.Base, eb.Message))
			if eb.Index != nil && *eb.Index >= 0 {
				cause = &serve.ChunkError{Index: *eb.Index, Err: cause}
			}
			if !eb.Retryable {
				return &QueryError{Err: cause}
			}
			if eb.Index == nil || *eb.Index < 0 {
				cause = &ReplyError{Err: cause}
			}
			return cause
		default:
			return fmt.Errorf("shard: %s/sweep: unknown frame %q", c.Base, fr.Frame)
		}
	}
}

// Stats fetches the replica's /stats snapshot.
func (c *HTTPClient) Stats(ctx context.Context) (serve.Stats, error) {
	var st serve.Stats
	if err := c.get(ctx, "/stats", &st); err != nil {
		return serve.Stats{}, err
	}
	return st, nil
}

// HealthzTimeout bounds a liveness probe independently of the heavyweight
// per-request client timeout (which must cover whole tuned sweep chunks).
// A replica that cannot answer /healthz in this window is not re-admittable
// anyway, and a black-holed corpse must not stall a probe round for the
// 30s-2m work timeout — that would starve other replicas' re-admission.
const HealthzTimeout = 2 * time.Second

// Healthz probes the replica's GET /healthz liveness endpoint. Any
// transport error, timeout (the sooner of HealthzTimeout and the caller's
// ctx deadline), or non-200 status means the replica is not (yet) ready to
// be re-admitted.
func (c *HTTPClient) Healthz(ctx context.Context) error {
	ctx, cancel := context.WithTimeout(ctx, HealthzTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.Base+"/healthz", nil)
	if err != nil {
		return fmt.Errorf("shard: %s: %w", c.Base, err)
	}
	resp, err := c.client().Do(req)
	if err != nil {
		return fmt.Errorf("shard: %s: %w", c.Base, err)
	}
	defer resp.Body.Close()
	_, _ = io.Copy(io.Discard, resp.Body)
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("shard: %s/healthz: %s", c.Base, resp.Status)
	}
	return nil
}

// LocalClient adapts an in-process *serve.Service to the Client interface
// (sharded sweeps inside one process, tests). Errors classify exactly like
// the HTTP path: deterministic query rejections (serve.IsBadQuery) become
// non-retryable QueryErrors, internal service failures pass through
// retryable — mirroring the 4xx/5xx split serve.Handler applies on the
// wire.
type LocalClient struct {
	Svc *serve.Service
}

func (c *LocalClient) Query(ctx context.Context, q serve.Query) (serve.Answer, error) {
	ans, err := c.Svc.Query(ctx, q)
	if err != nil {
		if serve.IsBadQuery(err) {
			return serve.Answer{}, &QueryError{Err: err}
		}
		// A cancelled caller surfaces its own ctx error unwrapped, like an
		// HTTP client whose request context ends mid-call.
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			return serve.Answer{}, err
		}
		// An in-process service cannot have transport failures: every
		// error is the replica answering, mirroring the HTTP 5xx path.
		return serve.Answer{}, &ReplyError{Err: err}
	}
	return ans, nil
}

// Sweep processes one sweep chunk on the in-process service, streaming each
// item into sink as it completes — items delivered before a failure are
// salvage, like the HTTP path's result frames.
func (c *LocalClient) Sweep(ctx context.Context, req serve.SweepRequest, sink serve.SweepSink) error {
	err := c.Svc.SweepChunk(ctx, req, sink)
	if err != nil && serve.IsBadQuery(err) {
		return &QueryError{Err: err}
	}
	return err
}

func (c *LocalClient) Stats(context.Context) (serve.Stats, error) { return c.Svc.Stats(), nil }

// Healthz reports an in-process service as always alive.
func (c *LocalClient) Healthz(context.Context) error { return nil }

// Answer is a routed reply: the replica's answer plus where it came from.
type Answer struct {
	serve.Answer
	// Owner is the shard the partitioner assigned; Replica is the shard
	// that actually answered (different only after failover).
	Owner, Replica int
}

// Router fans queries out to a fleet of replicas by shape ownership, failing
// over to the next shard in ring order when the owner is unreachable. All
// methods are safe for concurrent use.
type Router struct {
	part    Partitioner
	clients []Client
	health  *Health

	// reg names the router's own counters (the replica-side counters live
	// in each replica's serve registry); per-replica counters register as
	// replica/<i>/<name>, mirroring the per_shard JSON breakdown.
	reg              *metrics.Registry
	routedQueries    []*metrics.Counter // per-replica answered /query requests
	routedSweepItems []*metrics.Counter // per-replica answered sweep items
	failovers        *metrics.Counter

	proberMu   sync.Mutex // guards the shared prober's refcount lifecycle
	proberRefs int
	proberStop chan struct{}
}

// NewRouter builds a router over the replica fleet; ownership follows
// NewPartitioner(len(clients)). The router owns the fleet's health plane,
// shared with every Coordinator built over it.
func NewRouter(clients []Client) (*Router, error) {
	if len(clients) == 0 {
		return nil, fmt.Errorf("shard: router needs at least one replica")
	}
	reg := metrics.NewRegistry()
	r := &Router{
		part:             NewPartitioner(len(clients)),
		clients:          clients,
		health:           NewHealth(len(clients)),
		reg:              reg,
		routedQueries:    make([]*metrics.Counter, len(clients)),
		routedSweepItems: make([]*metrics.Counter, len(clients)),
		failovers:        reg.Counter("failovers"),
	}
	for i := range clients {
		r.routedQueries[i] = reg.Counter(fmt.Sprintf("replica/%d/routed_queries", i))
		r.routedSweepItems[i] = reg.Counter(fmt.Sprintf("replica/%d/routed_sweep_items", i))
	}
	return r, nil
}

// Partitioner exposes the ownership mapping the router fans out with.
func (r *Router) Partitioner() Partitioner { return r.part }

// Health exposes the fleet's shared health plane (cooldown tuning, state
// inspection). Coordinators built over this router share it, so a replica
// one sweep discovered dead is skipped by routed queries too.
func (r *Router) Health() *Health { return r.health }

// Owner returns the replica that currently owns the shape: the static ring
// owner unless the health plane has evicted it (dead past the eviction
// window), in which case ownership falls clockwise to the nearest surviving
// ring member. The consistent-hash ring makes the remap O(1/n): cells whose
// owner is alive never move, and re-admission hands the evicted cells back
// exactly.
func (r *Router) Owner(s gemm.Shape) int {
	return r.part.OwnerAmong(s, func(m int) bool { return !r.health.Evicted(m) })
}

// Query forwards q to the owning replica. If the owner fails with a
// replica-level error (connection refused, 5xx), the query retries on the
// next shards in ring order until one answers; a query-level rejection (4xx)
// returns immediately. Replicas the health plane marks dead are skipped
// without paying a timeout — at most one trial request per cooldown window
// probes a dead replica — and replicas dead past the eviction window stop
// being the owner at all: their cells route straight to the ring survivors,
// no failover hop, until re-admission hands them back. The error after
// exhausting the fleet is the owner's (or the first attempted replica's).
//
// ctx cancellation stops the ring walk: the in-flight hop's request is torn
// down, no further hops are attempted, and — critically — a transport error
// caused by the caller's own cancellation never benches the replica, so a
// client hanging up cannot mark a healthy fleet dead.
func (r *Router) Query(ctx context.Context, q serve.Query) (Answer, error) {
	owner := r.Owner(q.Shape)
	var firstErr error
	attempted := 0
	for hop := 0; hop < len(r.clients); hop++ {
		if err := ctx.Err(); err != nil {
			return Answer{}, err
		}
		replica := (owner + hop) % len(r.clients)
		if !r.health.Allow(replica) {
			continue
		}
		attempted++
		ans, err := r.clients[replica].Query(ctx, q)
		if err == nil {
			r.health.MarkHealthy(replica)
			r.routedQueries[replica].Add(1)
			if replica != owner {
				r.failovers.Add(1)
			}
			return Answer{Answer: ans, Owner: owner, Replica: replica}, nil
		}
		// A failure under a cancelled context is evidence about this
		// request, not the replica: return without touching the health
		// plane or walking further.
		if ctx.Err() != nil {
			return Answer{}, err
		}
		if firstErr == nil {
			firstErr = err
		}
		// Bench only on transport-level failures — the ones whose retry
		// costs a timeout. Any answered error (4xx rejection, structured
		// 5xx) proves liveness and resolves a suspect trial healthy;
		// benching on answered 5xx would let one deterministic-5xx
		// poison query walk the ring and mark the whole fleet dead.
		if replicaAnswered(err) {
			r.health.MarkHealthy(replica)
		} else {
			r.health.MarkFailed(replica)
		}
		if !retryable(err) {
			return Answer{}, err
		}
	}
	if attempted == 0 {
		return Answer{}, fmt.Errorf("shard: all %d replicas are marked dead within their health cooldown (%v)",
			len(r.clients), r.health.Cooldown())
	}
	return Answer{}, fmt.Errorf("shard: all %d replicas failed: %w", len(r.clients), firstErr)
}

// Probe checks trial-due dead replicas' /healthz once, concurrently, and
// re-admits the replicas that answer. The probe competes for the same
// single trial slot per cooldown window as in-band dispatch (an atomic
// claimTrial), so a zombie whose /healthz answers while its work path
// keeps failing re-enters rotation at most once per window and never
// right after failing a claimed in-band trial.
// A probe that fails resolves its claimed trial dead — that restamps the
// cooldown only once per window, so in-band trials and later probes keep
// getting their turn. It returns the number of replicas re-admitted. k
// dead replicas cost one bounded HealthzTimeout, not k stacked ones.
// Probes target only already-dead replicas, so a probe aborted by ctx can
// at worst restamp a dead replica's cooldown — never bench a healthy one.
func (r *Router) Probe(ctx context.Context) int {
	var wg sync.WaitGroup
	var readmitted atomic.Int64
	for i, c := range r.clients {
		if !r.health.claimTrial(i) {
			// Healthy, inside its cooldown, or the window's slot went
			// to an in-band dispatch: nothing to probe.
			continue
		}
		wg.Add(1)
		go func(i int, c Client) {
			defer wg.Done()
			if err := c.Healthz(ctx); err == nil {
				r.health.MarkHealthy(i)
				readmitted.Add(1)
			} else {
				r.health.MarkFailed(i)
			}
		}(i, c)
	}
	wg.Wait()
	return int(readmitted.Load())
}

// StartProber acquires the router's shared background prober and returns a
// stop function releasing it. The prober — a single goroutine no matter how
// many holders — probes dead replicas' /healthz every interval (<= 0
// selects the health cooldown; the interval of the holder that starts the
// goroutine wins) and runs until the last holder stops, so one sweep
// finishing cannot strip a concurrent sweep of its mid-sweep re-admission.
// cmd/route holds it for the process lifetime; Coordinator.Stream holds it
// per sweep, so a replica restarted mid-sweep is re-admitted and reclaims
// its owned shard before the sweep ends.
//
// ctx scopes the acquisition, not the goroutine: the prober outlives any
// one holder's request (it runs detached, under context.WithoutCancel of
// the first holder's ctx), but releasing the last hold — which every
// holder's defer does, cancelled or not — stops the goroutine and its
// in-flight probes. No timer or goroutine leaks when a sweep is cancelled
// mid-retry: the ticker dies with the goroutine.
func (r *Router) StartProber(ctx context.Context, interval time.Duration) (stop func()) {
	if interval <= 0 {
		interval = r.health.Cooldown()
	}
	r.proberMu.Lock()
	r.proberRefs++
	if r.proberRefs == 1 {
		done := make(chan struct{})
		r.proberStop = done
		// The shared goroutine must not die with whichever holder happened
		// to start it — later holders rely on it — so its probe context
		// detaches from the first holder's cancellation and ends only when
		// the last hold is released.
		pctx, pcancel := context.WithCancel(context.WithoutCancel(ctx))
		go func() {
			defer pcancel()
			t := time.NewTicker(interval)
			defer t.Stop()
			for {
				select {
				case <-done:
					return
				case <-t.C:
					r.Probe(pctx)
				}
			}
		}()
	}
	r.proberMu.Unlock()
	var once sync.Once
	return func() {
		once.Do(func() {
			r.proberMu.Lock()
			defer r.proberMu.Unlock()
			r.proberRefs--
			if r.proberRefs == 0 {
				close(r.proberStop)
				r.proberStop = nil
			}
		})
	}
}

// ReplicaStats is one replica's slice of a router stats snapshot.
type ReplicaStats struct {
	Replica int `json:"replica"`
	// Health is the replica's health-plane state: healthy, suspect, dead.
	Health string `json:"health"`
	// Evicted reports whether the replica is currently rebalanced out of
	// the ownership ring (dead past the eviction window).
	Evicted bool `json:"evicted,omitempty"`
	// RoutedQueries counts /query requests this replica answered through
	// the router; RoutedSweepItems counts sweep items it executed for a
	// coordinator. They are separate units — the old single "routed"
	// counter conflated one query with one sweep item.
	RoutedQueries    uint64 `json:"routed_queries"`
	RoutedSweepItems uint64 `json:"routed_sweep_items"`
	// Error is set when the replica's /stats was unreachable; Stats is
	// then zero and excluded from the merge.
	Error string      `json:"error,omitempty"`
	Stats serve.Stats `json:"stats"`
}

// Stats is the router's merged fleet view plus the per-replica breakdown.
type RouterStats struct {
	Replicas int `json:"replicas"`
	// Failovers counts ring departures: one per query answered off-owner
	// plus one per sweep chunk any of whose items left the owner
	// (chunk-granular, matching Coordinator.Redispatches) — a rate
	// signal for "how often is ownership being dodged", not an item
	// count; RoutedSweepItems carries the per-item accounting.
	Failovers uint64 `json:"failovers"`
	// Readmissions counts dead replicas brought back: successful trial
	// dispatches after a cooldown plus /healthz probe re-admissions.
	Readmissions uint64 `json:"readmissions"`
	// Evictions counts replicas that stayed dead past the eviction window
	// and surrendered their ring cells to the survivors; Handbacks counts
	// evicted replicas re-admitted and handed their cells back. Equal
	// counters mean the ring is currently whole.
	Evictions uint64         `json:"evictions"`
	Handbacks uint64         `json:"handbacks"`
	Merged    serve.Stats    `json:"merged"`
	PerShard  []ReplicaStats `json:"per_shard"`
}

// Stats polls every replica concurrently and merges the reachable
// snapshots. A down replica appears in PerShard with its error instead of
// failing the whole snapshot — a router must report on a degraded fleet, not
// mirror it — and the parallel poll means k unreachable replicas cost one
// client timeout, not k stacked ones. ctx bounds the poll.
func (r *Router) Stats(ctx context.Context) RouterStats {
	st := RouterStats{
		Replicas:     len(r.clients),
		Failovers:    r.failovers.Load(),
		Readmissions: r.health.Readmissions(),
		PerShard:     make([]ReplicaStats, len(r.clients)),
	}
	states := r.health.States()
	var wg sync.WaitGroup
	for i, c := range r.clients {
		wg.Add(1)
		go func(i int, c Client) {
			defer wg.Done()
			rs := ReplicaStats{
				Replica: i,
				Health:  states[i].String(),
				// Evicted consults the lazily-latching predicate, so a
				// stats poll observes an eviction even if no query or
				// sweep has looked at the ring since the window elapsed.
				Evicted:          r.health.Evicted(i),
				RoutedQueries:    r.routedQueries[i].Load(),
				RoutedSweepItems: r.routedSweepItems[i].Load(),
			}
			s, err := c.Stats(ctx)
			if err != nil {
				rs.Error = err.Error()
			} else {
				rs.Stats = s
			}
			st.PerShard[i] = rs
		}(i, c)
	}
	wg.Wait()
	// Read the counters after the per-replica Evicted calls above: a due
	// eviction latches (and counts) during the poll, so the totals and the
	// per-shard flags in one snapshot agree.
	st.Evictions = r.health.Evictions()
	st.Handbacks = r.health.Handbacks()
	for _, rs := range st.PerShard {
		if rs.Error == "" {
			st.Merged = st.Merged.Merge(rs.Stats)
		}
	}
	return st
}

// RoutedResponse is the JSON shape of the router's /query reply: the
// replica's response plus routing attribution.
type RoutedResponse struct {
	serve.QueryResponse
	Owner   int `json:"owner"`
	Replica int `json:"replica"`
}

// RoutedSweepResponse is the router's buffered (v1) /sweep reply: per-item
// results with routing attribution, plus the number of chunks this sweep
// re-dispatched through the failover ring.
type RoutedSweepResponse struct {
	Results      []SweepResult `json:"results"`
	Redispatches uint64        `json:"redispatches"`
}

// routedFrame mirrors serve.SweepFrame with the router's attributed result
// type: the same frame grammar on the wire, with owner/replica fields in
// every result. Clients decoding into serve.SweepFrame simply ignore the
// attribution, so a coordinator driving this router as a one-replica fleet
// consumes the stream unchanged.
type routedFrame struct {
	Frame    string           `json:"frame"`
	Index    int              `json:"index,omitempty"`
	Fidelity string           `json:"fidelity,omitempty"`
	Result   *SweepResult     `json:"result,omitempty"`
	Count    int              `json:"count,omitempty"`
	Salvaged int              `json:"salvaged,omitempty"`
	Error    *serve.ErrorBody `json:"error,omitempty"`
}

// Handler mounts the router on an HTTP mux with the same surface as a
// replica — /query, /sweep, /stats, and /healthz — so clients cannot tell a router
// from a single serve process (except for the extra attribution fields).
// /sweep is proxied through a Coordinator over the fleet, which means a
// cmd/sweep pointed at a router as a one-replica "fleet" transparently fans
// out across the real one — and a v2 client streaming from the router gets
// result frames as the fleet's chunks complete, proxied without buffering
// the grid.
//
// Every request executes under a context derived from the client's
// (req.Context()), so a client hanging up on the router tears down the
// router's in-flight requests to the fleet in turn. Handler applies no
// additional deadline; HandlerWithTimeout adds one.
func (r *Router) Handler() http.Handler { return r.HandlerWithTimeout(0) }

// HandlerWithTimeout is Handler with a per-request execution deadline
// (cmd/route's -request-timeout): each request's context is the client's
// plus, when timeout > 0, a deadline of that duration. The deadline rides
// the proxied fleet requests, so a timed-out sweep cancels every in-flight
// shard chunk.
func (r *Router) HandlerWithTimeout(timeout time.Duration) http.Handler {
	reqCtx := func(req *http.Request) (context.Context, context.CancelFunc) {
		if timeout <= 0 {
			return req.Context(), func() {}
		}
		return context.WithTimeout(req.Context(), timeout)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/query", func(w http.ResponseWriter, req *http.Request) {
		q, err := serve.ParseQuery(req)
		if err != nil {
			serve.WriteError(w, http.StatusBadRequest, err)
			return
		}
		ctx, cancel := reqCtx(req)
		defer cancel()
		ans, err := r.Query(ctx, q)
		if err != nil {
			status := http.StatusBadGateway
			var qe *QueryError
			if errors.As(err, &qe) {
				status = qe.Status
				if status == 0 {
					status = http.StatusUnprocessableEntity
				}
			}
			serve.WriteError(w, status, err)
			return
		}
		writeJSON(w, RoutedResponse{
			QueryResponse: serve.QueryResponse{
				Shape:       q.Shape.String(),
				Primitive:   q.Prim.String(),
				Partition:   ans.Partition,
				Waves:       ans.Waves,
				PredictedNs: int64(ans.Predicted),
				Source:      ans.Source,
			},
			Owner:   ans.Owner,
			Replica: ans.Replica,
		})
	})
	mux.HandleFunc("/sweep", func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodPost {
			w.Header().Set("Allow", http.MethodPost)
			serve.WriteError(w, http.StatusMethodNotAllowed, fmt.Errorf("shard: /sweep takes POST, got %s", req.Method))
			return
		}
		var sr serve.SweepRequest
		if err := json.NewDecoder(req.Body).Decode(&sr); err != nil {
			serve.WriteError(w, http.StatusBadRequest, fmt.Errorf("shard: decoding sweep request: %w", err))
			return
		}
		if len(sr.Items) == 0 {
			serve.WriteError(w, http.StatusBadRequest, fmt.Errorf("shard: sweep request has no items"))
			return
		}
		// Honor the caller's forwarded spec: a sweep driver pointed at
		// this router as a one-replica fleet chose its own chunk size and
		// attempt budget, and silently resetting them to defaults here
		// would change how much work one crash re-executes. The attempt
		// budget is remote-supplied, so it is clamped to twice the fleet
		// size: budgets beyond the fleet wait out health cooldowns
		// between ring wraps, and an absurd value would wedge this
		// handler goroutine for the cooldown-wait loop's duration. The
		// health windows (HealthCooldown, ProbeInterval) are fleet-owned
		// and never ride the wire — json:"-" on the spec — so a remote
		// caller cannot re-tune this router's failure detector.
		co := NewCoordinator(r)
		co.Spec = sr.SweepSpec
		co.Spec.Attempts = min(sr.Attempts, 2*len(r.clients))
		ctx, cancel := reqCtx(req)
		defer cancel()
		if serve.StreamRequested(req, sr) {
			r.streamSweep(ctx, w, co, sr.Items)
			return
		}
		results, err := co.Sweep(ctx, sr.Items)
		if err != nil {
			status := http.StatusBadGateway
			var qe *QueryError
			if errors.As(err, &qe) {
				status = qe.Status
				if status == 0 {
					status = http.StatusUnprocessableEntity
				}
			}
			// Forward the failing item's index (into the posted grid)
			// like a replica's /sweep does, so an outer coordinator
			// driving this router as a one-replica fleet re-attributes
			// the failure to its own global index instead of blaming
			// the chunk's first item. The buffered path carries no
			// salvage (Coordinator.Sweep returns no results on failure);
			// v2 streaming is what exposes the fleet's partial progress
			// to the outer caller.
			body := serve.ErrorBody{Message: err.Error(), Retryable: status >= 500}
			var fe *fanError
			if errors.As(err, &fe) {
				idx := fe.At
				body.Index = &idx
			}
			serve.WriteErrorBody(w, status, body)
			return
		}
		writeJSON(w, RoutedSweepResponse{Results: results, Redispatches: co.Redispatches()})
	})
	mux.HandleFunc("/stats", func(w http.ResponseWriter, req *http.Request) {
		writeJSON(w, r.Stats(req.Context()))
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, req *http.Request) {
		// The router's own liveness: an outer coordinator driving this
		// router as a one-replica fleet probes it for re-admission like
		// any replica.
		writeJSON(w, map[string]string{"status": "ok"})
	})
	return mux
}

// streamSweep proxies one v2 sweep over the fleet: Coordinator.Stream's
// merged emissions become result frames flushed as each chunk completes, so
// the router holds O(chunk) per shard — never the grid — between the
// client and the fleet. The 200 is committed before the sweep runs;
// failures surface as an error frame whose retryable bit carries the
// 4xx/5xx classification and whose salvaged count tells the client how many
// result frames preceded it.
func (r *Router) streamSweep(ctx context.Context, w http.ResponseWriter, co *Coordinator, items []serve.SweepItem) {
	w.Header().Set("Content-Type", serve.ContentTypeNDJSON)
	w.WriteHeader(http.StatusOK)
	enc := json.NewEncoder(w)
	flusher, _ := w.(http.Flusher)
	count := 0
	err := co.Stream(ctx, items, func(i int, res SweepResult) error {
		if err := enc.Encode(routedFrame{Frame: serve.FrameResult, Index: i, Fidelity: res.Fidelity, Result: &res}); err != nil {
			return err
		}
		if flusher != nil {
			flusher.Flush()
		}
		count++
		return nil
	})
	if err != nil {
		body := serve.ErrorBody{Message: err.Error(), Retryable: retryable(err)}
		var fe *fanError
		if errors.As(err, &fe) {
			idx := fe.At
			body.Index = &idx
		}
		_ = enc.Encode(routedFrame{Frame: serve.FrameError, Salvaged: count, Error: &body})
		if flusher != nil {
			flusher.Flush()
		}
		return
	}
	_ = enc.Encode(routedFrame{Frame: serve.FrameDone, Count: count})
	if flusher != nil {
		flusher.Flush()
	}
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}
