package shard

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/gemm"
	"repro/internal/hw"
	"repro/internal/serve"
	"repro/internal/stats"
	"repro/internal/tuner"
)

// testCurve samples the offline bandwidth curve once per test binary; every
// replica shares it (the new Config.Curves path), which both speeds the
// tests up and mirrors a production sharded rollout.
var testCurve *stats.Curve

func sharedCurves(t *testing.T) map[hw.Primitive]*stats.Curve {
	t.Helper()
	if testCurve == nil {
		testCurve = tuner.SampleBandwidthCurve(hw.RTX4090PCIe(), 2, hw.AllReduce, nil)
	}
	return map[hw.Primitive]*stats.Curve{hw.AllReduce: testCurve}
}

// testFleet builds n in-process replicas behind httptest servers, each
// owning its slice of the shape plane, and a router over their URLs.
func testFleet(t *testing.T, n int) (*Router, []*httptest.Server, []*serve.Service) {
	t.Helper()
	part := NewPartitioner(n)
	servers := make([]*httptest.Server, n)
	services := make([]*serve.Service, n)
	clients := make([]Client, n)
	for k := 0; k < n; k++ {
		a := Assignment{Index: k, Count: n}
		svc, err := serve.New(serve.Config{
			Plat:           hw.RTX4090PCIe(),
			NGPUs:          2,
			CandidateLimit: 64,
			Owns:           a.Owns,
			Shard:          a.String(),
			Curves:         sharedCurves(t),
		})
		if err != nil {
			t.Fatal(err)
		}
		services[k] = svc
		servers[k] = httptest.NewServer(serve.Handler(svc))
		t.Cleanup(servers[k].Close)
		clients[k] = &HTTPClient{Base: servers[k].URL}
	}
	r, err := NewRouter(clients)
	if err != nil {
		t.Fatal(err)
	}
	if r.Partitioner() != part {
		t.Fatalf("router partitioner %+v, want %+v", r.Partitioner(), part)
	}
	return r, servers, services
}

var routerShapes = []gemm.Shape{
	{M: 2048, N: 8192, K: 4096},
	{M: 4096, N: 8192, K: 4096},
	{M: 4096, N: 8192, K: 8192},
	{M: 8192, N: 8192, K: 4096},
}

// Queries must land on the owning replica, and only there: after a sweep of
// distinct shapes, each replica's counters account for exactly its slice.
func TestRouterRoutesToOwner(t *testing.T) {
	r, _, services := testFleet(t, 3)
	owned := make([]uint64, 3)
	for _, shape := range routerShapes {
		ans, err := r.Query(context.Background(), serve.Query{Shape: shape, Prim: hw.AllReduce})
		if err != nil {
			t.Fatal(err)
		}
		owner := r.Partitioner().Owner(shape)
		if ans.Owner != owner || ans.Replica != owner {
			t.Fatalf("shape %v: answered by replica %d (owner field %d), want %d",
				shape, ans.Replica, ans.Owner, owner)
		}
		owned[owner]++
	}
	st := r.Stats(context.Background())
	if st.Failovers != 0 {
		t.Fatalf("failovers = %d on a healthy fleet", st.Failovers)
	}
	var totalServed uint64
	for k, svc := range services {
		s := svc.Stats()
		served := s.Hits + s.Misses
		if served != owned[k] {
			t.Errorf("replica %d served %d queries, want %d (disjoint ownership)", k, served, owned[k])
		}
		if st.PerShard[k].RoutedQueries != owned[k] {
			t.Errorf("router counted %d routed queries for replica %d, want %d", st.PerShard[k].RoutedQueries, k, owned[k])
		}
		if st.PerShard[k].RoutedSweepItems != 0 {
			t.Errorf("replica %d counted %d sweep items on a query-only workload", k, st.PerShard[k].RoutedSweepItems)
		}
		if st.PerShard[k].Health != "healthy" {
			t.Errorf("replica %d health = %q on a healthy fleet", k, st.PerShard[k].Health)
		}
		totalServed += served
	}
	if totalServed != uint64(len(routerShapes)) {
		t.Fatalf("fleet served %d queries, want %d", totalServed, len(routerShapes))
	}
	if st.Merged.Hits+st.Merged.Misses != uint64(len(routerShapes)) {
		t.Fatalf("merged stats count %d queries, want %d", st.Merged.Hits+st.Merged.Misses, len(routerShapes))
	}
}

// With one replica down, its queries fail over to the next shard in ring
// order and still succeed; the merged stats report the hole instead of
// failing.
func TestRouterFailsOverWhenReplicaDown(t *testing.T) {
	r, servers, _ := testFleet(t, 3)
	// Find a shape owned by replica 1 and kill that replica.
	var victim gemm.Shape
	found := false
	for _, shape := range routerShapes {
		if r.Partitioner().Owner(shape) == 1 {
			victim, found = shape, true
			break
		}
	}
	if !found {
		t.Fatal("no test shape owned by replica 1; extend routerShapes")
	}
	servers[1].Close()

	ans, err := r.Query(context.Background(), serve.Query{Shape: victim, Prim: hw.AllReduce})
	if err != nil {
		t.Fatalf("query with one replica down: %v", err)
	}
	if ans.Owner != 1 {
		t.Fatalf("owner = %d, want 1", ans.Owner)
	}
	if ans.Replica != 2 {
		t.Fatalf("failover landed on replica %d, want next-in-ring 2", ans.Replica)
	}
	if ans.Waves != ans.Partition.TotalWaves() || ans.Predicted <= 0 {
		t.Fatalf("malformed failover answer %+v", ans)
	}
	st := r.Stats(context.Background())
	if st.Failovers != 1 {
		t.Fatalf("failovers = %d, want 1", st.Failovers)
	}
	if st.PerShard[1].Error == "" {
		t.Fatal("down replica's stats hole not reported")
	}
	if st.PerShard[2].Stats.Shard != "2/3" {
		t.Fatalf("replica 2 shard label = %q, want 2/3", st.PerShard[2].Stats.Shard)
	}
}

// A query-level rejection (4xx) must not fail over: the second replica would
// reject it identically, and burning a fleet-wide retry on garbage input is
// how routers melt down.
func TestRouterDoesNotFailOverBadQueries(t *testing.T) {
	r, _, services := testFleet(t, 2)
	_, err := r.Query(context.Background(), serve.Query{Shape: gemm.Shape{M: 2048, N: 8192, K: 4096}, Prim: hw.AllGather})
	if err == nil {
		t.Fatal("unsupported primitive accepted")
	}
	if retryable(err) {
		t.Fatalf("4xx classified retryable: %v", err)
	}
	for k, svc := range services {
		if st := svc.Stats(); st.Tunes != 0 {
			t.Fatalf("replica %d tuned %d times for a rejected query", k, st.Tunes)
		}
	}
}

// The router's own HTTP surface must look like a replica's: /query answers
// with routing attribution, /stats merges the fleet.
func TestRouterHandler(t *testing.T) {
	r, _, _ := testFleet(t, 2)
	front := httptest.NewServer(r.Handler())
	defer front.Close()

	resp, err := http.Get(front.URL + "/query?m=2048&n=8192&k=4096&prim=AR")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var rr RoutedResponse
	if err := json.NewDecoder(resp.Body).Decode(&rr); err != nil {
		t.Fatal(err)
	}
	want := r.Partitioner().Owner(gemm.Shape{M: 2048, N: 8192, K: 4096})
	if rr.Replica != want || rr.Owner != want {
		t.Fatalf("routed to %d (owner %d), want %d", rr.Replica, rr.Owner, want)
	}
	if len(rr.Partition) == 0 || rr.Waves <= 0 {
		t.Fatalf("malformed response %+v", rr)
	}

	bad, err := http.Get(front.URL + "/query?m=0&n=8192&k=4096")
	if err != nil {
		t.Fatal(err)
	}
	bad.Body.Close()
	if bad.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad query status = %d, want 400", bad.StatusCode)
	}

	sresp, err := http.Get(front.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	var st RouterStats
	if err := json.NewDecoder(sresp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Replicas != 2 || len(st.PerShard) != 2 {
		t.Fatalf("stats fleet size %d/%d, want 2", st.Replicas, len(st.PerShard))
	}
	if st.Merged.Hits+st.Merged.Misses != 1 {
		t.Fatalf("merged query count = %d, want 1", st.Merged.Hits+st.Merged.Misses)
	}
}

// Warm must respect ownership: warming the full representative list on every
// replica populates only the owned slice of each cache, keeping the fleet's
// caches disjoint while covering the whole list.
func TestShardedWarmKeepsCachesDisjoint(t *testing.T) {
	_, _, services := testFleet(t, 3)
	p := NewPartitioner(3)
	for _, svc := range services {
		if err := svc.Warm(context.Background(), []hw.Primitive{hw.AllReduce}, routerShapes, 0); err != nil {
			t.Fatal(err)
		}
	}
	total := 0
	for k, svc := range services {
		st := svc.Stats()
		wantOwned := 0
		for _, s := range routerShapes {
			if p.Owns(k, s) {
				wantOwned++
			}
		}
		if st.ShapesCached != wantOwned {
			t.Errorf("replica %d cached %d shapes, want owned %d", k, st.ShapesCached, wantOwned)
		}
		total += st.ShapesCached
	}
	if total != len(routerShapes) {
		t.Fatalf("fleet cached %d shapes, want full list %d", total, len(routerShapes))
	}
}

// Regression for the failover-blocking bug: serve.Handler used to reply 422
// to *every* Service error, so the router wrapped transient internal
// replica failures as non-retryable QueryErrors and never failed over. An
// owner replying 500 (what serve.Handler now sends for internal failures)
// must ring to the next shard; TestHandlerClassifiesInternalErrorsAs5xx in
// internal/serve pins the other half — that internal failures actually
// produce the 500.
func TestRouterFailsOverOnInternalServerError(t *testing.T) {
	shape := gemm.Shape{M: 2048, N: 8192, K: 4096}
	owner := NewPartitioner(2).Owner(shape)

	broken := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusInternalServerError)
		_, _ = w.Write([]byte(`{"error": "serve: tuning AllReduce: injected engine failure"}`))
	}))
	defer broken.Close()
	healthy, err := serve.New(serve.Config{
		Plat:           hw.RTX4090PCIe(),
		NGPUs:          2,
		CandidateLimit: 64,
		Curves:         sharedCurves(t),
	})
	if err != nil {
		t.Fatal(err)
	}
	healthySrv := httptest.NewServer(serve.Handler(healthy))
	defer healthySrv.Close()

	clients := make([]Client, 2)
	clients[owner] = &HTTPClient{Base: broken.URL}
	clients[1-owner] = &HTTPClient{Base: healthySrv.URL}
	r, err := NewRouter(clients)
	if err != nil {
		t.Fatal(err)
	}

	ans, err := r.Query(context.Background(), serve.Query{Shape: shape, Prim: hw.AllReduce})
	if err != nil {
		t.Fatalf("query with owner failing internally: %v", err)
	}
	if ans.Replica != 1-owner {
		t.Fatalf("answered by replica %d, want failover to %d", ans.Replica, 1-owner)
	}
	if r.Stats(context.Background()).Failovers != 1 {
		t.Fatalf("failovers = %d, want 1", r.Stats(context.Background()).Failovers)
	}

	// The same classification must hold for sweep chunks: a 500 from the
	// owner re-dispatches the chunk instead of failing the sweep.
	co := NewCoordinator(r)
	results, err := co.Sweep(context.Background(), []serve.SweepItem{{M: shape.M, N: shape.N, K: shape.K, Prim: "AR"}})
	if err != nil {
		t.Fatalf("sweep with owner failing internally: %v", err)
	}
	if results[0].Replica != 1-owner || co.Redispatches() != 1 {
		t.Fatalf("chunk answered by %d with %d re-dispatches, want replica %d after 1 re-dispatch",
			results[0].Replica, co.Redispatches(), 1-owner)
	}
}
