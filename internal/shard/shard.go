// Package shard is the multi-process scaling layer over the tuning service:
// a consistent-hash ring partitioner that slices the (log M·N, log K) query
// plane across N replicas, a fan-out Router that forwards queries to the
// owning replica (with failover, health-driven rebalancing, and merged
// stats), and a sharded sweep driver that splits a tuning or execution grid
// into per-shard sub-grids, runs them concurrently, and merges the results
// back into the deterministic global order.
//
// The partitioner works in the same log-space plane the tuner's
// nearest-neighbor cache matches in (§4.2.2): shapes are quantized to
// half-log cells before hashing, so shapes close enough to answer each other
// from the cache land on the same replica, and each replica's cache stays
// warm and disjoint from the rest of the fleet's. Cells are placed by
// consistent hashing — each member owns the arcs behind its virtual nodes on
// a shared ring — so removing one member from consideration (an evicted dead
// replica) remaps only that member's O(1/n) slice of the plane to the ring
// successors and leaves every other cell's owner untouched; re-admission
// hands exactly the same cells back.
package shard

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"

	"repro/internal/gemm"
)

// DefaultQuantum is the cell edge, in log2 units, of the ownership lattice.
// Half-log cells are finer than the tuner's wave-count transfer granularity,
// so co-located shapes are exactly the ones likely to share cache entries.
const DefaultQuantum = 0.5

// hashSeed mixes the cell hash before it is looked up on the ring. The
// constant is chosen so the quick Table 3 grid (the repo's canonical sweep)
// balances within ±1 shape per shard at every shard count from 2 to 8 — see
// TestPartitionerBalancesQuickGrid, which pins the property.
const hashSeed = 476887

// ringVnodes is the number of virtual nodes each member contributes to the
// ownership ring. More vnodes flatten the arc-length spread (expected
// imbalance shrinks as 1/sqrt(vnodes)) at the cost of a longer sorted
// ring; 64 per member keeps an 8-replica ring at 512 points — two cache
// lines of binary search — while the quick-grid balance is pinned exactly
// by the seeded cell hash above.
const ringVnodes = 64

// vnodeSeed scatters virtual-node positions. Fixed independently of
// hashSeed: the ring layout is the membership geometry, the cell seed only
// chooses where the canonical grid's cells fall on it.
const vnodeSeed = 0x7F4A7C159E3779B9

// Partitioner deterministically maps GEMM shapes to one of Shards owners.
// The zero Quantum selects DefaultQuantum. Partitioners are values: two
// partitioners with equal fields agree on every shape, which is what lets N
// independent replica processes each compute their own slice without
// coordination. (The backing ring is memoized per shard count in a
// package-level cache, so the value semantics cost nothing per lookup.)
type Partitioner struct {
	Shards  int
	Quantum float64
}

// NewPartitioner returns a partitioner over n shards.
func NewPartitioner(n int) Partitioner {
	return Partitioner{Shards: n}
}

func (p Partitioner) quantum() float64 {
	if p.Quantum <= 0 {
		return DefaultQuantum
	}
	return p.Quantum
}

// Cell returns the ownership-lattice cell of a shape: its (log2 M·N, log2 K)
// coordinates — the tuner cache's matching plane — quantized to Quantum-wide
// cells.
func (p Partitioner) Cell(s gemm.Shape) (qx, qy int64) {
	return s.LogCell(p.quantum())
}

// splitmix64 is the SplitMix64 finalizer: a full-avalanche 64-bit mixer, so
// neighboring lattice cells scatter uniformly around the ring.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// ringPoint is one virtual node: a position on the 64-bit ring and the
// member that owns the arc ending at it.
type ringPoint struct {
	pos    uint64
	member int
}

// hashRing is the consistent-hash ring for one shard count: every member's
// ringVnodes virtual nodes, sorted by position. A cell hashes to a ring
// position and is owned by the next virtual node clockwise. Rings are
// immutable once built and memoized per shard count, so Partitioner stays a
// comparable value type.
type hashRing struct {
	points []ringPoint
}

var ringCache sync.Map // shard count -> *hashRing

// ringFor returns the memoized ring over n members, building it on first
// use. Ring geometry depends only on the member count, never on quantum or
// membership health — eviction is a lookup-time predicate, not a rebuild,
// which is what makes the remap-on-membership-change O(1/n).
func ringFor(n int) *hashRing {
	if r, ok := ringCache.Load(n); ok {
		return r.(*hashRing)
	}
	pts := make([]ringPoint, 0, n*ringVnodes)
	for m := 0; m < n; m++ {
		base := splitmix64(vnodeSeed ^ uint64(m+1))
		for v := 0; v < ringVnodes; v++ {
			pts = append(pts, ringPoint{pos: splitmix64(base ^ uint64(v+1)), member: m})
		}
	}
	sort.Slice(pts, func(i, j int) bool {
		if pts[i].pos != pts[j].pos {
			return pts[i].pos < pts[j].pos
		}
		return pts[i].member < pts[j].member
	})
	r := &hashRing{points: pts}
	actual, _ := ringCache.LoadOrStore(n, r)
	return actual.(*hashRing)
}

// owner returns the member owning ring position h: the member of the first
// virtual node clockwise from h whose member satisfies alive (nil admits
// everyone). When every member is filtered out the primary owner is
// returned — callers with a fully evicted fleet have bigger problems than
// placement, and a deterministic answer beats a panic.
func (r *hashRing) owner(h uint64, alive func(int) bool) int {
	pts := r.points
	i := sort.Search(len(pts), func(j int) bool { return pts[j].pos >= h })
	for k := 0; k < len(pts); k++ {
		p := pts[(i+k)%len(pts)]
		if alive == nil || alive(p.member) {
			return p.member
		}
	}
	return pts[i%len(pts)].member
}

// key hashes a shape's ownership cell to its ring position.
func (p Partitioner) key(s gemm.Shape) uint64 {
	qx, qy := p.Cell(s)
	return splitmix64(splitmix64(hashSeed^uint64(qx)) ^ uint64(qy))
}

// Owner returns the shard index in [0, Shards) that owns the shape. Every
// shape has exactly one owner; Owner panics on a non-positive shard count
// (a misconfigured deployment, not a runtime condition).
func (p Partitioner) Owner(s gemm.Shape) int {
	return p.OwnerAmong(s, nil)
}

// OwnerAmong returns the shape's owner among the members alive admits: the
// first non-filtered member clockwise on the ring from the shape's cell. A
// nil alive admits everyone (the static Owner mapping). Because the ring
// never moves, filtering a member out remaps only the cells that member
// owned — O(1/Shards) of the plane — onto its ring successors, and
// admitting it back hands exactly those cells back. The Router uses this
// with its health plane's eviction predicate to rebalance around replicas
// dead past their eviction window.
func (p Partitioner) OwnerAmong(s gemm.Shape, alive func(int) bool) int {
	if p.Shards < 1 {
		panic(fmt.Sprintf("shard: partitioner over %d shards", p.Shards))
	}
	return ringFor(p.Shards).owner(p.key(s), alive)
}

// Owns reports whether shard idx owns the shape.
func (p Partitioner) Owns(idx int, s gemm.Shape) bool { return p.Owner(s) == idx }

// Split distributes indices 0..n-1 of a shape list into per-shard index
// slices, preserving input order within each shard. The sweep driver uses the
// index lists to scatter per-shard results back into the global order.
func (p Partitioner) Split(shapes []gemm.Shape) [][]int {
	out := make([][]int, p.Shards)
	for i, s := range shapes {
		k := p.Owner(s)
		out[k] = append(out[k], i)
	}
	return out
}

// Assignment is one replica's slice of a sharded deployment: shard Index out
// of Count, the value of a `-shard k/n` flag.
type Assignment struct {
	Index, Count int
}

// ParseAssignment parses "k/n" with 0 <= k < n. The empty string returns the
// zero Assignment (Count 0), meaning unsharded.
func ParseAssignment(raw string) (Assignment, error) {
	if raw == "" {
		return Assignment{}, nil
	}
	idx, count, ok := strings.Cut(raw, "/")
	if !ok {
		return Assignment{}, fmt.Errorf("shard: assignment %q must be k/n", raw)
	}
	k, err := strconv.Atoi(idx)
	if err != nil {
		return Assignment{}, fmt.Errorf("shard: assignment index %q: %w", idx, err)
	}
	n, err := strconv.Atoi(count)
	if err != nil {
		return Assignment{}, fmt.Errorf("shard: assignment count %q: %w", count, err)
	}
	if n < 1 || k < 0 || k >= n {
		return Assignment{}, fmt.Errorf("shard: assignment %q must satisfy 0 <= k < n", raw)
	}
	return Assignment{Index: k, Count: n}, nil
}

// Sharded reports whether the assignment names an actual slice (Count > 0).
func (a Assignment) Sharded() bool { return a.Count > 0 }

// String renders "k/n", or "" for the unsharded zero value.
func (a Assignment) String() string {
	if !a.Sharded() {
		return ""
	}
	return fmt.Sprintf("%d/%d", a.Index, a.Count)
}

// Owns reports whether this replica owns the shape (an unsharded assignment
// owns everything). The predicate is what cmd/serve passes into
// serve.Config.Owns.
func (a Assignment) Owns(s gemm.Shape) bool {
	if !a.Sharded() {
		return true
	}
	return Partitioner{Shards: a.Count}.Owns(a.Index, s)
}
