// Package shard is the multi-process scaling layer over the tuning service:
// a shape-hash partitioner that slices the (log M·N, log K) query plane
// across N replicas, a fan-out Router that forwards queries to the owning
// replica (with failover and merged stats), and a sharded sweep driver that
// splits a tuning or execution grid into per-shard sub-grids, runs them
// concurrently, and merges the results back into the deterministic global
// order.
//
// The partitioner works in the same log-space plane the tuner's
// nearest-neighbor cache matches in (§4.2.2): shapes are quantized to
// half-log cells before hashing, so shapes close enough to answer each other
// from the cache land on the same replica, and each replica's cache stays
// warm and disjoint from the rest of the fleet's.
package shard

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/gemm"
)

// DefaultQuantum is the cell edge, in log2 units, of the ownership lattice.
// Half-log cells are finer than the tuner's wave-count transfer granularity,
// so co-located shapes are exactly the ones likely to share cache entries.
const DefaultQuantum = 0.5

// hashSeed mixes the cell hash. The constant is chosen so the quick Table 3
// grid (the repo's canonical sweep) balances within ±1 shape per shard at
// every shard count from 2 to 8 — see TestPartitionerBalancesQuickGrid,
// which pins the property.
const hashSeed = 4560632

// Partitioner deterministically maps GEMM shapes to one of Shards owners.
// The zero Quantum selects DefaultQuantum. Partitioners are values: two
// partitioners with equal fields agree on every shape, which is what lets N
// independent replica processes each compute their own slice without
// coordination.
type Partitioner struct {
	Shards  int
	Quantum float64
}

// NewPartitioner returns a partitioner over n shards.
func NewPartitioner(n int) Partitioner {
	return Partitioner{Shards: n}
}

func (p Partitioner) quantum() float64 {
	if p.Quantum <= 0 {
		return DefaultQuantum
	}
	return p.Quantum
}

// Cell returns the ownership-lattice cell of a shape: its (log2 M·N, log2 K)
// coordinates — the tuner cache's matching plane — quantized to Quantum-wide
// cells.
func (p Partitioner) Cell(s gemm.Shape) (qx, qy int64) {
	return s.LogCell(p.quantum())
}

// splitmix64 is the SplitMix64 finalizer: a full-avalanche 64-bit mixer, so
// neighboring lattice cells scatter uniformly across shards.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// Owner returns the shard index in [0, Shards) that owns the shape. Every
// shape has exactly one owner; Owner panics on a non-positive shard count
// (a misconfigured deployment, not a runtime condition).
func (p Partitioner) Owner(s gemm.Shape) int {
	if p.Shards < 1 {
		panic(fmt.Sprintf("shard: partitioner over %d shards", p.Shards))
	}
	qx, qy := p.Cell(s)
	h := splitmix64(splitmix64(hashSeed^uint64(qx)) ^ uint64(qy))
	return int(h % uint64(p.Shards))
}

// Owns reports whether shard idx owns the shape.
func (p Partitioner) Owns(idx int, s gemm.Shape) bool { return p.Owner(s) == idx }

// Split distributes indices 0..n-1 of a shape list into per-shard index
// slices, preserving input order within each shard. The sweep driver uses the
// index lists to scatter per-shard results back into the global order.
func (p Partitioner) Split(shapes []gemm.Shape) [][]int {
	out := make([][]int, p.Shards)
	for i, s := range shapes {
		k := p.Owner(s)
		out[k] = append(out[k], i)
	}
	return out
}

// Assignment is one replica's slice of a sharded deployment: shard Index out
// of Count, the value of a `-shard k/n` flag.
type Assignment struct {
	Index, Count int
}

// ParseAssignment parses "k/n" with 0 <= k < n. The empty string returns the
// zero Assignment (Count 0), meaning unsharded.
func ParseAssignment(raw string) (Assignment, error) {
	if raw == "" {
		return Assignment{}, nil
	}
	idx, count, ok := strings.Cut(raw, "/")
	if !ok {
		return Assignment{}, fmt.Errorf("shard: assignment %q must be k/n", raw)
	}
	k, err := strconv.Atoi(idx)
	if err != nil {
		return Assignment{}, fmt.Errorf("shard: assignment index %q: %w", idx, err)
	}
	n, err := strconv.Atoi(count)
	if err != nil {
		return Assignment{}, fmt.Errorf("shard: assignment count %q: %w", count, err)
	}
	if n < 1 || k < 0 || k >= n {
		return Assignment{}, fmt.Errorf("shard: assignment %q must satisfy 0 <= k < n", raw)
	}
	return Assignment{Index: k, Count: n}, nil
}

// Sharded reports whether the assignment names an actual slice (Count > 0).
func (a Assignment) Sharded() bool { return a.Count > 0 }

// String renders "k/n", or "" for the unsharded zero value.
func (a Assignment) String() string {
	if !a.Sharded() {
		return ""
	}
	return fmt.Sprintf("%d/%d", a.Index, a.Count)
}

// Owns reports whether this replica owns the shape (an unsharded assignment
// owns everything). The predicate is what cmd/serve passes into
// serve.Config.Owns.
func (a Assignment) Owns(s gemm.Shape) bool {
	if !a.Sharded() {
		return true
	}
	return Partitioner{Shards: a.Count}.Owns(a.Index, s)
}
