package shard

import (
	"testing"

	"repro/internal/expt"
	"repro/internal/gemm"
)

// quickGridShapes returns the distinct shapes of the quick Table 3 grids —
// the canonical sweep key set the partitioner must spread well.
func quickGridShapes() []gemm.Shape {
	seen := map[gemm.Shape]bool{}
	var out []gemm.Shape
	for _, grid := range expt.Table3Grids(true) {
		for _, s := range grid.Shapes {
			if !seen[s] {
				seen[s] = true
				out = append(out, s)
			}
		}
	}
	return out
}

// Every key must have exactly one owner at every shard count, and the
// replica-side predicate (Assignment.Owns) must agree with the router-side
// mapping (Partitioner.Owner) — two processes computing ownership
// independently may never disagree.
func TestEveryKeyOwnedByExactlyOneShard(t *testing.T) {
	shapes := quickGridShapes()
	if len(shapes) == 0 {
		t.Fatal("no quick-grid shapes")
	}
	for n := 1; n <= 8; n++ {
		p := NewPartitioner(n)
		for _, s := range shapes {
			owner := p.Owner(s)
			if owner < 0 || owner >= n {
				t.Fatalf("n=%d: owner(%v) = %d out of range", n, s, owner)
			}
			owners := 0
			for k := 0; k < n; k++ {
				a := Assignment{Index: k, Count: n}
				if a.Owns(s) != p.Owns(k, s) {
					t.Fatalf("n=%d k=%d: Assignment.Owns and Partitioner.Owns disagree on %v", n, k, s)
				}
				if a.Owns(s) {
					owners++
				}
			}
			if owners != 1 {
				t.Fatalf("n=%d: shape %v owned by %d shards, want exactly 1", n, s, owners)
			}
		}
	}
}

// The quick Table 3 grid must balance within ±1 shape per shard at every
// fleet size up to 8 — the property that keeps replica caches equally warm.
// The hash seed is chosen for exactly this grid; a failure here means the
// seed must be re-searched (see hashSeed).
func TestPartitionerBalancesQuickGrid(t *testing.T) {
	shapes := quickGridShapes()
	for n := 2; n <= 8; n++ {
		counts := make([]int, n)
		p := NewPartitioner(n)
		for _, s := range shapes {
			counts[p.Owner(s)]++
		}
		min, max := counts[0], counts[0]
		for _, c := range counts {
			if c < min {
				min = c
			}
			if c > max {
				max = c
			}
		}
		if max-min > 1 {
			t.Errorf("n=%d: shard loads %v spread %d, want <= 1", n, counts, max-min)
		}
	}
}

// Ownership must be insensitive to which shape within a lattice cell is
// queried: shapes the tuner cache would match against each other land on the
// same shard, so the fleet's caches stay disjoint.
func TestNearbyShapesShareAShard(t *testing.T) {
	p := NewPartitioner(4)
	base := gemm.Shape{M: 4096, N: 8192, K: 8192}
	near := gemm.Shape{M: 4096, N: 8192, K: 8000} // same half-log cell
	if p.Owner(base) != p.Owner(near) {
		t.Errorf("cache-adjacent shapes %v and %v on different shards", base, near)
	}
	bx, by := p.Cell(base)
	nx, ny := p.Cell(near)
	if bx != nx || by != ny {
		t.Fatalf("cells differ: (%d,%d) vs (%d,%d)", bx, by, nx, ny)
	}
}

func TestSplitPartitionsIndicesInOrder(t *testing.T) {
	shapes := quickGridShapes()
	p := NewPartitioner(3)
	idxs := p.Split(shapes)
	if len(idxs) != 3 {
		t.Fatalf("got %d shards", len(idxs))
	}
	seen := make([]bool, len(shapes))
	for k, list := range idxs {
		prev := -1
		for _, i := range list {
			if i <= prev {
				t.Fatalf("shard %d indices out of order: %v", k, list)
			}
			prev = i
			if seen[i] {
				t.Fatalf("index %d in multiple shards", i)
			}
			seen[i] = true
			if p.Owner(shapes[i]) != k {
				t.Fatalf("index %d in shard %d but owned by %d", i, k, p.Owner(shapes[i]))
			}
		}
	}
	for i, s := range seen {
		if !s {
			t.Fatalf("index %d assigned to no shard", i)
		}
	}
}

func TestParseAssignment(t *testing.T) {
	good := map[string]Assignment{
		"":    {},
		"0/1": {Index: 0, Count: 1},
		"2/4": {Index: 2, Count: 4},
		"7/8": {Index: 7, Count: 8},
	}
	for raw, want := range good {
		got, err := ParseAssignment(raw)
		if err != nil || got != want {
			t.Errorf("ParseAssignment(%q) = %v, %v; want %v", raw, got, err, want)
		}
		if got.String() != raw && raw != "" {
			t.Errorf("Assignment(%q).String() = %q", raw, got.String())
		}
	}
	for _, raw := range []string{"3", "4/4", "-1/4", "1/0", "a/b", "1/4/2"} {
		if _, err := ParseAssignment(raw); err == nil {
			t.Errorf("ParseAssignment(%q) accepted", raw)
		}
	}
	if (Assignment{}).Sharded() {
		t.Error("zero assignment claims to be sharded")
	}
	if !(Assignment{}).Owns(gemm.Shape{M: 1, N: 1, K: 1}) {
		t.Error("unsharded assignment must own everything")
	}
}
