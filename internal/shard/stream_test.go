package shard

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/hw"
	"repro/internal/serve"
)

// Stream must emit each item as its chunk completes, not buffer the grid:
// with one item per chunk against a scripted single-shard fleet, the k-th
// emission may only happen after exactly k+1 dispatches — if the
// coordinator collected results before emitting, every emission would
// observe the full dispatch count.
func TestCoordinatorStreamEmitsIncrementally(t *testing.T) {
	var dispatches atomic.Int64
	stub := &stubClient{
		sweep: func(req serve.SweepRequest) ([]serve.SweepResult, error) {
			dispatches.Add(1)
			out := make([]serve.SweepResult, len(req.Items))
			for i, it := range req.Items {
				out[i] = serve.SweepResult{Fidelity: it.Fidelity, Result: &core.Result{}}
			}
			return out, nil
		},
	}
	r, err := NewRouter([]Client{stub})
	if err != nil {
		t.Fatal(err)
	}
	co := NewCoordinator(r)
	co.Spec.Chunk = 1
	items := coordItems()
	emitted := 0
	err = co.Stream(context.Background(), items, func(i int, res SweepResult) error {
		if i != emitted {
			t.Fatalf("emission %d carries index %d; single-shard chunks stream in order", emitted, i)
		}
		if got := dispatches.Load(); got != int64(emitted+1) {
			t.Fatalf("emission %d observed %d dispatches, want %d — the stream is buffering chunks",
				emitted, got, emitted+1)
		}
		emitted++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if emitted != len(items) {
		t.Fatalf("%d emissions for %d items", emitted, len(items))
	}
}

// A sink error aborts the stream: no further emissions, and the error
// surfaces to the caller.
func TestCoordinatorStreamSinkErrorAborts(t *testing.T) {
	r, _, _ := testFleet(t, 1)
	co := NewCoordinator(r)
	co.Spec.Chunk = 1
	calls := 0
	err := co.Stream(context.Background(), coordItems(), func(int, SweepResult) error {
		calls++
		return io.ErrClosedPipe
	})
	if err == nil {
		t.Fatal("sink error did not abort the stream")
	}
	if calls != 1 {
		t.Fatalf("sink called %d times after aborting on the first emission", calls)
	}
}

// postStream posts a v2 sweep to a router front-end, negotiating the stream
// either with the Accept header or the request's stream field, and returns
// the decoded frame sequence.
func postStream(t *testing.T, url string, viaHeader bool, req serve.SweepRequest) []routedFrame {
	t.Helper()
	req.Stream = !viaHeader
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	hreq, err := http.NewRequest(http.MethodPost, url+"/sweep", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	hreq.Header.Set("Content-Type", "application/json")
	if viaHeader {
		hreq.Header.Set("Accept", serve.ContentTypeNDJSON)
	}
	resp, err := http.DefaultClient.Do(hreq)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != serve.ContentTypeNDJSON {
		t.Fatalf("Content-Type = %q, want %q", ct, serve.ContentTypeNDJSON)
	}
	dec := json.NewDecoder(resp.Body)
	var frames []routedFrame
	for dec.More() {
		var fr routedFrame
		if err := dec.Decode(&fr); err != nil {
			t.Fatalf("decoding frame %d: %v", len(frames), err)
		}
		frames = append(frames, fr)
	}
	return frames
}

// streamResults asserts the frame sequence is result frames covering each
// item exactly once plus a terminal done frame, and scatters them into
// global order.
func streamResults(t *testing.T, frames []routedFrame, nItems int) []SweepResult {
	t.Helper()
	if len(frames) != nItems+1 {
		t.Fatalf("%d frames for %d items, want one per item plus done", len(frames), nItems)
	}
	last := frames[nItems]
	if last.Frame != serve.FrameDone || last.Count != nItems {
		t.Fatalf("terminal frame = %+v, want done counting %d", last, nItems)
	}
	results := make([]SweepResult, nItems)
	seen := make([]bool, nItems)
	for _, fr := range frames[:nItems] {
		if fr.Frame != serve.FrameResult || fr.Result == nil {
			t.Fatalf("frame %+v, want a result frame", fr)
		}
		if fr.Index < 0 || fr.Index >= nItems || seen[fr.Index] {
			t.Fatalf("frame index %d out of range or duplicated", fr.Index)
		}
		seen[fr.Index] = true
		if fr.Fidelity != fr.Result.Fidelity {
			t.Fatalf("frame fidelity %q disagrees with its result's %q", fr.Fidelity, fr.Result.Fidelity)
		}
		results[fr.Index] = *fr.Result
	}
	return results
}

// The full elastic-ownership story through the router's v2 /sweep proxy:
// a replica that dies mid-sweep (at its first DES refine chunk of a mixed
// sweep) fails over without corrupting the stream — per-item fidelity
// labels and global order survive, byte-identical to single-process
// engine.MixedBatch — then ages past the eviction window so its cells
// rebalance to the survivors (owned directly, no failover hop), and on
// restart the prober hands exactly those cells back.
func TestRouterStreamSweepAcrossKillRebalanceAndHandback(t *testing.T) {
	const n = 3
	items := coordItems()
	refJSON, refined := coordMixedReference(t, items)

	// The victim must own both tiers: an analytic keeper (proving it
	// participated before dying) and at least one refined item (work that
	// must fail over after it dies).
	part := NewPartitioner(n)
	isRefined := make(map[int]bool)
	for _, gi := range refined {
		isRefined[gi] = true
	}
	keeperOwned := make([]int, n)
	refinedOwned := make([]int, n)
	for i, it := range items {
		o := part.Owner(it.Shape())
		if isRefined[i] {
			refinedOwned[o]++
		} else {
			keeperOwned[o]++
		}
	}
	victim := -1
	for k := 0; k < n; k++ {
		if keeperOwned[k] > 0 && refinedOwned[k] > 0 {
			victim = k
			break
		}
	}
	if victim < 0 {
		t.Fatal("no shard owns items in both tiers; extend the grid")
	}

	// The fleet: the victim's handler simulates a crash at its first
	// DES-stamped chunk — from then until "restart" every request
	// (chunks and /healthz probes alike) aborts mid-response, the
	// transport failure a died process produces.
	var down atomic.Bool
	var die sync.Once
	servers := make([]*httptest.Server, n)
	clients := make([]Client, n)
	httpClient := &http.Client{Timeout: 5 * time.Second}
	for k := 0; k < n; k++ {
		a := Assignment{Index: k, Count: n}
		svc, err := serve.New(serve.Config{
			Plat:           hw.RTX4090PCIe(),
			NGPUs:          2,
			CandidateLimit: 64,
			Owns:           a.Owns,
			Shard:          a.String(),
			Curves:         sharedCurves(t),
		})
		if err != nil {
			t.Fatal(err)
		}
		inner := serve.Handler(svc)
		handler := inner
		if k == victim {
			handler = http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
				if req.Method == http.MethodPost && req.URL.Path == "/sweep" {
					body, err := io.ReadAll(req.Body)
					if err != nil {
						panic(http.ErrAbortHandler)
					}
					var sr serve.SweepRequest
					if json.Unmarshal(body, &sr) == nil && len(sr.Items) > 0 &&
						sr.Items[0].Fidelity == serve.FidelityDES {
						die.Do(func() { down.Store(true) })
					}
					req.Body = io.NopCloser(bytes.NewReader(body))
				}
				if down.Load() {
					panic(http.ErrAbortHandler)
				}
				inner.ServeHTTP(w, req)
			})
		}
		servers[k] = httptest.NewServer(handler)
		t.Cleanup(servers[k].Close)
		clients[k] = &HTTPClient{Base: servers[k].URL, HTTP: httpClient}
	}
	r, err := NewRouter(clients)
	if err != nil {
		t.Fatal(err)
	}
	r.Health().SetCooldown(150 * time.Millisecond)
	r.Health().SetEvictAfter(1)
	stopProber := r.StartProber(context.Background(), 10*time.Millisecond)
	defer stopProber()
	front := httptest.NewServer(r.Handler())
	defer front.Close()

	// Sweep A: mixed, one item per chunk, streamed via the Accept header.
	// The victim answers its analytic chunks, then dies at its first
	// refine chunk; its refined items fail over.
	frames := postStream(t, front.URL, true, serve.SweepRequest{
		SweepSpec: serve.SweepSpec{Fidelity: serve.FidelityMixed, Chunk: 1},
		Items:     items,
	})
	results := streamResults(t, frames, len(items))
	if !bytes.Equal(mergedJSON(t, results), refJSON) {
		t.Fatal("streamed mixed sweep diverges from single-process engine.MixedBatch across the kill")
	}
	checkMixedLabels(t, results, refined)
	sawVictimKeeper := false
	for i, res := range results {
		if !isRefined[i] && res.Replica == victim {
			sawVictimKeeper = true
		}
		if isRefined[i] && part.Owner(items[i].Shape()) == victim && res.Replica == victim {
			t.Fatalf("refined item %d answered by the victim after it died", i)
		}
	}
	if !sawVictimKeeper {
		t.Fatal("victim answered no analytic keeper; the kill preceded its participation")
	}
	if st := r.Stats(context.Background()); st.Failovers == 0 {
		t.Fatal("router stats recorded no failover for the victim's refine chunks")
	}

	// The victim stays dead past the eviction window: its cells rebalance.
	deadline := time.Now().Add(5 * time.Second)
	for r.Stats(context.Background()).Evictions == 0 {
		if time.Now().After(deadline) {
			t.Fatal("victim not evicted within 5s of dying (window = 1×150ms)")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if st := r.Stats(context.Background()); !st.PerShard[victim].Evicted {
		t.Fatal("stats do not flag the victim evicted")
	}

	// Sweep B: victim-owned items while the victim is evicted. Survivors
	// own them outright — dispatch goes straight there, no failover hop.
	var victimItems []serve.SweepItem
	for _, it := range items {
		if part.Owner(it.Shape()) == victim {
			victimItems = append(victimItems, it)
		}
	}
	failoversBefore := r.Stats(context.Background()).Failovers
	resultsB := streamResults(t,
		postStream(t, front.URL, false, serve.SweepRequest{Items: victimItems}),
		len(victimItems))
	for i, res := range resultsB {
		if res.Owner == victim || res.Replica == victim {
			t.Fatalf("evicted victim still involved in item %d: owner %d, replica %d", i, res.Owner, res.Replica)
		}
		if res.Replica != res.Owner {
			t.Fatalf("item %d took a failover hop (%d -> %d) though ownership rebalanced", i, res.Owner, res.Replica)
		}
	}
	if got := r.Stats(context.Background()).Failovers; got != failoversBefore {
		t.Fatalf("rebalanced sweep burned %d failovers; survivors own the cells directly", got-failoversBefore)
	}

	// Restart: the prober re-admits the victim and hands its cells back.
	down.Store(false)
	deadline = time.Now().Add(10 * time.Second)
	for r.Stats(context.Background()).Handbacks == 0 {
		if time.Now().After(deadline) {
			t.Fatal("victim not handed its cells back within 10s of restarting")
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Sweep C: the same items land back on the victim, and the answers are
	// byte-identical to sweep B's — rebalancing moved ownership, never the
	// results.
	resultsC := streamResults(t,
		postStream(t, front.URL, true, serve.SweepRequest{Items: victimItems}),
		len(victimItems))
	for i, res := range resultsC {
		if res.Owner != victim || res.Replica != victim {
			t.Fatalf("item %d after hand-back: owner %d, replica %d, want the victim %d both", i, res.Owner, res.Replica, victim)
		}
	}
	if !bytes.Equal(mergedJSON(t, resultsB), mergedJSON(t, resultsC)) {
		t.Fatal("results diverge between the rebalanced and handed-back sweeps")
	}
}
