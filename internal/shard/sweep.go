package shard

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/gemm"
	"repro/internal/serve"
	"repro/internal/sim"
)

// Engines builds one engine per shard, each with its own plan cache — the
// in-process analogue of N replica processes. workers bounds each engine's
// pool (<= 0 selects GOMAXPROCS); a sweep over n shards therefore fans up to
// n*workers executions, so callers typically pass GOMAXPROCS/n.
func Engines(n, workers, cacheSize int) []*engine.Engine {
	out := make([]*engine.Engine, n)
	for i := range out {
		out[i] = engine.New(workers, cacheSize)
	}
	return out
}

// SweepBatch is the sharded engine.Batch: it splits runs into per-shard
// sub-grids by shape ownership, executes every shard concurrently on its own
// engine (disjoint plan caches, like separate replica processes), and
// scatters the per-shard results back so results[i] answers runs[i] — the
// same deterministic global order the unsharded path returns. Each execution
// owns a private simulator, so the merged results are byte-identical to
// engine.Batch over the whole grid at any shard count.
//
// On failure the error with the lowest global run index is returned, like
// engine.Batch; len(engines) must equal p.Shards.
func SweepBatch(ctx context.Context, p Partitioner, engines []*engine.Engine, runs []core.Options) ([]*core.Result, error) {
	if len(engines) != p.Shards {
		return nil, fmt.Errorf("shard: %d engines for %d shards", len(engines), p.Shards)
	}
	shapes := make([]gemm.Shape, len(runs))
	for i, run := range runs {
		shapes[i] = run.Shape
	}
	idxs := p.Split(shapes)
	results := make([]*core.Result, len(runs))
	err := fanShards(idxs, func(k int, list []int) (int, error) {
		sub := make([]core.Options, len(list))
		for j, gi := range list {
			sub[j] = runs[gi]
		}
		res, err := engines[k].Batch(ctx, sub)
		if err != nil {
			// Batch reports the lowest failing local index; translate
			// it back to the global grid.
			at := list[0]
			var re *engine.RunError
			if errors.As(err, &re) {
				at = list[re.Index]
			}
			return at, err
		}
		for j, gi := range list {
			results[gi] = res[j]
		}
		return 0, nil
	})
	if err != nil {
		return nil, fmt.Errorf("shard: global run %w", err)
	}
	return results, nil
}

// SweepBatchMixed is the sharded engine.MixedBatch: the whole grid runs
// analytically across the shard engines, candidates are ranked per
// engine.RankTopK cell over the merged analytic latencies, and only the top
// k per cell re-run at DES fidelity — again sharded by ownership. results[i]
// answers runs[i] with its fidelity label; refined lists the DES-confirmed
// indices, ascending. Because analytic sampling is deterministic and the
// ranking runs over the merged global order, the output is byte-identical
// to the unsharded MixedBatch at any shard count, and the DES tier is
// byte-identical to a full-DES sweep restricted to the same candidates.
func SweepBatchMixed(ctx context.Context, p Partitioner, engines []*engine.Engine, runs []core.Options, topK int, quantum float64) (results []*core.Result, refined []int, err error) {
	for i, o := range runs {
		if o.Fidelity != "" {
			return nil, nil, fmt.Errorf("shard: global run %d: mixed sweep run carries fidelity %q; the mixed policy assigns fidelities itself", i, o.Fidelity)
		}
	}
	analytic := make([]core.Options, len(runs))
	for i, o := range runs {
		o.Fidelity = core.FidelityAnalytic
		analytic[i] = o
	}
	results, err = SweepBatch(ctx, p, engines, analytic)
	if err != nil {
		return nil, nil, err
	}
	shapes := make([]gemm.Shape, len(runs))
	latencies := make([]sim.Time, len(runs))
	for i, r := range results {
		shapes[i] = runs[i].Shape
		latencies[i] = r.Latency
	}
	refined = engine.RankTopK(shapes, latencies, topK, quantum)
	des := make([]core.Options, len(refined))
	for j, gi := range refined {
		o := runs[gi]
		o.Fidelity = core.FidelityDES
		des[j] = o
	}
	desResults, err := SweepBatch(ctx, p, engines, des)
	if err != nil {
		// SweepBatch named an index into the refined sub-grid; translate
		// it back to the caller's grid.
		var fe *fanError
		if errors.As(err, &fe) && fe.At >= 0 && fe.At < len(refined) {
			err = fmt.Errorf("shard: global run %w", &fanError{At: refined[fe.At], Err: fe.Err})
		}
		return nil, nil, err
	}
	for j, gi := range refined {
		results[gi] = desResults[j]
	}
	return results, refined, nil
}

// fanError is fanShards' failure: the winning (lowest) global index plus
// the cause, structured so callers that must forward the index over a
// protocol (the router's /sweep proxy) do not have to re-parse their own
// error strings.
type fanError struct {
	At  int
	Err error
}

func (e *fanError) Error() string { return fmt.Sprintf("%d: %v", e.At, e.Err) }
func (e *fanError) Unwrap() error { return e.Err }

// fanShards runs worker(k, idxs[k]) concurrently for every non-empty shard.
// A failing worker returns the global index its failure maps to; fanShards
// reports the failure with the lowest global index — deterministic no matter
// which shards finish first — as a *fanError rendering "<index>: <cause>".
func fanShards(idxs [][]int, worker func(k int, list []int) (int, error)) error {
	shardErrs := make([]error, len(idxs)) // per-shard failure
	shardErrAt := make([]int, len(idxs))  // global index of that failure
	var wg sync.WaitGroup
	for k := range idxs {
		if len(idxs[k]) == 0 {
			continue
		}
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			shardErrAt[k], shardErrs[k] = worker(k, idxs[k])
		}(k)
	}
	wg.Wait()
	first := -1
	for k, err := range shardErrs {
		if err != nil && (first == -1 || shardErrAt[k] < shardErrAt[first]) {
			first = k
		}
	}
	if first >= 0 {
		return &fanError{At: shardErrAt[first], Err: shardErrs[first]}
	}
	return nil
}

// SweepQueries is the sharded tune sweep: each query routes to its owning
// replica (failover included), shards run concurrently, and answers[i]
// replies to qs[i] — deterministic global order regardless of fleet size.
// Within one shard queries run serially in input order, preserving the
// cache-warming locality a single replica would see. On failure the error
// with the lowest global query index is returned.
func (r *Router) SweepQueries(ctx context.Context, qs []serve.Query) ([]Answer, error) {
	byOwner := make([][]int, len(r.clients))
	for i, q := range qs {
		k := r.part.Owner(q.Shape)
		byOwner[k] = append(byOwner[k], i)
	}
	answers := make([]Answer, len(qs))
	err := fanShards(byOwner, func(k int, list []int) (int, error) {
		for _, gi := range list {
			ans, err := r.Query(ctx, qs[gi])
			if err != nil {
				return gi, err
			}
			answers[gi] = ans
		}
		return 0, nil
	})
	if err != nil {
		return nil, fmt.Errorf("shard: query %w", err)
	}
	return answers, nil
}
