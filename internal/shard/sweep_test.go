package shard

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/expt"
	"repro/internal/gemm"
	"repro/internal/hw"
	"repro/internal/serve"
)

// quickGridRuns builds the full quick Table 3 sweep: every (platform,
// primitive, shape) cell as one engine run.
func quickGridRuns() []core.Options {
	var runs []core.Options
	for _, grid := range expt.Table3Grids(true) {
		for _, shape := range grid.Shapes {
			runs = append(runs, core.Options{
				Plat:  grid.Plat,
				NGPUs: 2,
				Shape: shape,
				Prim:  grid.Prim,
			})
		}
	}
	return runs
}

// The acceptance property of the sharded sweep: splitting the quick Table 3
// grid across any number of shard-local engines and merging the results
// reproduces the unsharded engine.Batch output byte for byte.
func TestSweepBatchMatchesUnshardedByteForByte(t *testing.T) {
	runs := quickGridRuns()
	reference, err := engine.New(0, 0).Batch(context.Background(), runs)
	if err != nil {
		t.Fatal(err)
	}
	refJSON, err := json.Marshal(reference)
	if err != nil {
		t.Fatal(err)
	}
	for n := 1; n <= 5; n++ {
		p := NewPartitioner(n)
		got, err := SweepBatch(context.Background(), p, Engines(n, 0, 0), runs)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if len(got) != len(reference) {
			t.Fatalf("n=%d: %d results, want %d", n, len(got), len(reference))
		}
		if !reflect.DeepEqual(got, reference) {
			for i := range got {
				if !reflect.DeepEqual(got[i], reference[i]) {
					t.Fatalf("n=%d: result %d (%v) diverges from unsharded run", n, i, runs[i].Shape)
				}
			}
		}
		gotJSON, err := json.Marshal(got)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(gotJSON, refJSON) {
			t.Fatalf("n=%d: serialized results differ from unsharded batch", n)
		}
	}
}

// Shard-local plan caches must stay disjoint and still compile each unique
// plan exactly once fleet-wide.
func TestSweepBatchCompilesEachPlanOncePerShard(t *testing.T) {
	runs := quickGridRuns()
	// Duplicate the grid so plan caching has hits to find.
	runs = append(runs, quickGridRuns()...)
	const n = 3
	engines := Engines(n, 0, 0)
	if _, err := SweepBatch(context.Background(), NewPartitioner(n), engines, runs); err != nil {
		t.Fatal(err)
	}
	var misses uint64
	for _, e := range engines {
		h, m, _ := e.CacheStats()
		if h == 0 && m == 0 {
			t.Error("idle engine: partitioner sent a shard nothing from the quick grid")
		}
		misses += m
	}
	unique := len(quickGridRuns())
	if misses != uint64(unique) {
		t.Fatalf("fleet compiled %d plans, want one per unique run (%d)", misses, unique)
	}
}

// A failing run must surface the same global index the unsharded path
// reports, no matter which shard it lands on.
func TestSweepBatchErrorKeepsGlobalIndex(t *testing.T) {
	runs := quickGridRuns()
	bad := 7
	runs[bad].Shape = gemm.Shape{M: 0, N: 8192, K: 4096}

	_, refErr := engine.New(0, 0).Batch(context.Background(), runs)
	if refErr == nil {
		t.Fatal("unsharded batch accepted the invalid run")
	}
	var re *engine.RunError
	if !errors.As(refErr, &re) || re.Index != bad {
		t.Fatalf("unsharded error %v, want RunError at %d", refErr, bad)
	}

	for n := 1; n <= 4; n++ {
		_, err := SweepBatch(context.Background(), NewPartitioner(n), Engines(n, 0, 0), runs)
		if err == nil {
			t.Fatalf("n=%d: sharded sweep accepted the invalid run", n)
		}
		if want := fmt.Sprintf("global run %d", bad); !contains(err.Error(), want) {
			t.Fatalf("n=%d: error %q does not name %q", n, err, want)
		}
	}
}

func contains(s, sub string) bool { return bytes.Contains([]byte(s), []byte(sub)) }

func TestSweepBatchRejectsEngineCountMismatch(t *testing.T) {
	if _, err := SweepBatch(context.Background(), NewPartitioner(3), Engines(2, 0, 0), quickGridRuns()); err == nil {
		t.Fatal("engine/shard count mismatch accepted")
	}
}

// localFleet builds n in-process replicas (no HTTP) behind a router.
func localFleet(t *testing.T, n int) *Router {
	t.Helper()
	clients := make([]Client, n)
	for k := 0; k < n; k++ {
		a := Assignment{Index: k, Count: n}
		svc, err := serve.New(serve.Config{
			Plat:           hw.RTX4090PCIe(),
			NGPUs:          2,
			CandidateLimit: 64,
			Owns:           a.Owns,
			Shard:          a.String(),
			Curves:         sharedCurves(t),
		})
		if err != nil {
			t.Fatal(err)
		}
		clients[k] = &LocalClient{Svc: svc}
	}
	r, err := NewRouter(clients)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// A sharded tune sweep must answer in deterministic global order: replaying
// the same sweep on a fresh identical fleet reproduces every answer, and
// each answer comes from the query's owner.
func TestSweepQueriesDeterministicAcrossFleets(t *testing.T) {
	var qs []serve.Query
	for _, s := range quickGridShapes() {
		qs = append(qs, serve.Query{Shape: s, Prim: hw.AllReduce})
	}
	first, err := localFleet(t, 3).SweepQueries(context.Background(), qs)
	if err != nil {
		t.Fatal(err)
	}
	second, err := localFleet(t, 3).SweepQueries(context.Background(), qs)
	if err != nil {
		t.Fatal(err)
	}
	p := NewPartitioner(3)
	for i := range qs {
		if first[i].Owner != p.Owner(qs[i].Shape) || first[i].Replica != first[i].Owner {
			t.Fatalf("query %d answered by replica %d, owner %d", i, first[i].Replica, first[i].Owner)
		}
		if !reflect.DeepEqual(first[i].Answer, second[i].Answer) {
			t.Fatalf("query %d: answers differ across identical fleets:\n%+v\n%+v",
				i, first[i].Answer, second[i].Answer)
		}
		if first[i].Waves != first[i].Partition.TotalWaves() {
			t.Fatalf("query %d: malformed answer %+v", i, first[i])
		}
	}
}

// A query-level failure in a sweep reports the lowest failing global index.
func TestSweepQueriesErrorKeepsGlobalIndex(t *testing.T) {
	qs := []serve.Query{
		{Shape: gemm.Shape{M: 2048, N: 8192, K: 4096}, Prim: hw.AllReduce},
		{Shape: gemm.Shape{M: 4096, N: 8192, K: 4096}, Prim: hw.AllGather}, // unsupported
		{Shape: gemm.Shape{M: 4096, N: 8192, K: 8192}, Prim: hw.AllReduce},
	}
	_, err := localFleet(t, 2).SweepQueries(context.Background(), qs)
	if err == nil {
		t.Fatal("unsupported primitive accepted")
	}
	if !contains(err.Error(), "query 1") {
		t.Fatalf("error %q does not name global query 1", err)
	}
}
