// Package sim provides a small deterministic discrete-event simulation
// kernel. All higher-level device, kernel, and communication models in this
// repository are driven by a single Simulator instance: they schedule
// closures at absolute or relative virtual times, and the simulator executes
// them in (time, insertion-order) order until the event queue drains.
//
// Times are virtual nanoseconds held in an int64, mirroring time.Duration.
// Determinism matters: experiment harnesses compare latencies across many
// configurations, and tests assert exact event orderings, so ties are broken
// by a monotonically increasing sequence number rather than map iteration or
// pointer order.
package sim

import (
	"container/heap"
	"context"
	"fmt"
)

// Time is a virtual timestamp in nanoseconds since the start of the
// simulation. It is deliberately not time.Duration so that accidental mixing
// of wall-clock and virtual time fails to compile.
type Time int64

// Common duration units, in virtual nanoseconds.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// Seconds reports t as floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Micros reports t as floating-point microseconds.
func (t Time) Micros() float64 { return float64(t) / float64(Microsecond) }

// Millis reports t as floating-point milliseconds.
func (t Time) Millis() float64 { return float64(t) / float64(Millisecond) }

// String formats the time with an adaptive unit, e.g. "12.34µs".
func (t Time) String() string {
	switch {
	case t < 0:
		return fmt.Sprintf("-%s", (-t).String())
	case t < Microsecond:
		return fmt.Sprintf("%dns", int64(t))
	case t < Millisecond:
		return fmt.Sprintf("%.3gµs", t.Micros())
	case t < Second:
		return fmt.Sprintf("%.4gms", t.Millis())
	default:
		return fmt.Sprintf("%.4gs", t.Seconds())
	}
}

// FromSeconds converts floating-point seconds to a Time, rounding to the
// nearest nanosecond.
func FromSeconds(s float64) Time { return Time(s*float64(Second) + 0.5) }

// FromMicros converts floating-point microseconds to a Time.
func FromMicros(us float64) Time { return Time(us*float64(Microsecond) + 0.5) }

// event is a scheduled closure.
type event struct {
	at  Time
	seq uint64
	fn  func()
}

// eventHeap orders events by (at, seq).
type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// Simulator executes scheduled events in virtual-time order.
type Simulator struct {
	now     Time
	seq     uint64
	queue   eventHeap
	running bool
	steps   uint64
	// MaxSteps bounds the number of events executed by Run; 0 means
	// unlimited. It exists as a safety net for tests exercising models
	// that could otherwise livelock (e.g. a signal that never fires).
	MaxSteps uint64
}

// New returns a simulator with the clock at zero.
func New() *Simulator {
	return &Simulator{}
}

// Now reports the current virtual time.
func (s *Simulator) Now() Time { return s.now }

// Steps reports how many events have been executed so far.
func (s *Simulator) Steps() uint64 { return s.steps }

// At schedules fn to run at absolute virtual time t. Scheduling in the past
// (t < Now) panics: models in this repository never rewind, and a silent
// clamp would hide bugs in duration arithmetic.
func (s *Simulator) At(t Time, fn func()) {
	if t < s.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, s.now))
	}
	if fn == nil {
		panic("sim: nil event function")
	}
	s.seq++
	heap.Push(&s.queue, event{at: t, seq: s.seq, fn: fn})
}

// After schedules fn to run d nanoseconds from now. Negative delays panic.
func (s *Simulator) After(d Time, fn func()) {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	s.At(s.now+d, fn)
}

// Run executes events until the queue is empty (or MaxSteps is exceeded, in
// which case it panics, since that always indicates a model bug).
func (s *Simulator) Run() {
	if s.running {
		panic("sim: Run called reentrantly")
	}
	s.running = true
	defer func() { s.running = false }()
	for len(s.queue) > 0 {
		e := heap.Pop(&s.queue).(event)
		s.now = e.at
		s.steps++
		if s.MaxSteps != 0 && s.steps > s.MaxSteps {
			panic(fmt.Sprintf("sim: exceeded MaxSteps=%d at t=%v", s.MaxSteps, s.now))
		}
		e.fn()
	}
}

// interruptStride is how many events RunCtx executes between context polls.
// Polling ctx.Err() takes a lock, so a per-event check would tax the hottest
// loop in the repository; a stride of 64 keeps the overhead unmeasurable
// while still stopping a cancelled simulation within a few kernel
// boundaries. The stride is phase-locked to the deterministic step counter,
// so whether a run is cancelled at step N never depends on scheduling.
const interruptStride = 64

// RunCtx executes events like Run but polls ctx every interruptStride
// events, stopping early with ctx.Err() when the context is cancelled or
// its deadline passes. Events execute at their scheduled boundaries — a
// closure mid-execution is never interrupted, so models observe
// cancellation only between events (for the GEMM models, between wave
// retirements and kernel completions, never mid-kernel). A cancelled run
// leaves the remaining queue intact; callers discard the simulator, as
// every execution in this repository builds a fresh one.
func (s *Simulator) RunCtx(ctx context.Context) error {
	if s.running {
		panic("sim: Run called reentrantly")
	}
	s.running = true
	defer func() { s.running = false }()
	for len(s.queue) > 0 {
		if s.steps%interruptStride == 0 {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		e := heap.Pop(&s.queue).(event)
		s.now = e.at
		s.steps++
		if s.MaxSteps != 0 && s.steps > s.MaxSteps {
			panic(fmt.Sprintf("sim: exceeded MaxSteps=%d at t=%v", s.MaxSteps, s.now))
		}
		e.fn()
	}
	return nil
}

// RunUntil executes events with timestamps <= deadline, leaving later events
// queued. It reports whether the queue drained completely.
func (s *Simulator) RunUntil(deadline Time) bool {
	for len(s.queue) > 0 {
		if s.queue[0].at > deadline {
			s.now = deadline
			return false
		}
		e := heap.Pop(&s.queue).(event)
		s.now = e.at
		s.steps++
		if s.MaxSteps != 0 && s.steps > s.MaxSteps {
			panic(fmt.Sprintf("sim: exceeded MaxSteps=%d at t=%v", s.MaxSteps, s.now))
		}
		e.fn()
	}
	return true
}

// Pending reports the number of queued events.
func (s *Simulator) Pending() int { return len(s.queue) }

// MaxTime is the largest representable virtual time.
const MaxTime = Time(1<<63 - 1)

// Max returns the later of a and b.
func Max(a, b Time) Time {
	if a > b {
		return a
	}
	return b
}

// Min returns the earlier of a and b.
func Min(a, b Time) Time {
	if a < b {
		return a
	}
	return b
}
