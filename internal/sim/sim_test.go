package sim

import (
	"testing"
	"testing/quick"
)

func TestTimeUnits(t *testing.T) {
	if Microsecond != 1000 {
		t.Fatalf("Microsecond = %d, want 1000", Microsecond)
	}
	if Millisecond != 1_000_000 {
		t.Fatalf("Millisecond = %d, want 1e6", Millisecond)
	}
	if Second != 1_000_000_000 {
		t.Fatalf("Second = %d, want 1e9", Second)
	}
}

func TestTimeConversions(t *testing.T) {
	cases := []struct {
		t       Time
		seconds float64
		micros  float64
		millis  float64
	}{
		{0, 0, 0, 0},
		{Second, 1, 1e6, 1e3},
		{1500 * Microsecond, 0.0015, 1500, 1.5},
	}
	for _, c := range cases {
		if got := c.t.Seconds(); got != c.seconds {
			t.Errorf("%d.Seconds() = %v, want %v", c.t, got, c.seconds)
		}
		if got := c.t.Micros(); got != c.micros {
			t.Errorf("%d.Micros() = %v, want %v", c.t, got, c.micros)
		}
		if got := c.t.Millis(); got != c.millis {
			t.Errorf("%d.Millis() = %v, want %v", c.t, got, c.millis)
		}
	}
}

func TestFromSecondsRoundTrip(t *testing.T) {
	for _, s := range []float64{0, 1e-9, 1e-6, 0.001, 1.5} {
		got := FromSeconds(s).Seconds()
		if diff := got - s; diff > 1e-9 || diff < -1e-9 {
			t.Errorf("FromSeconds(%v).Seconds() = %v", s, got)
		}
	}
}

func TestFromMicros(t *testing.T) {
	if got := FromMicros(2.5); got != 2500 {
		t.Fatalf("FromMicros(2.5) = %d, want 2500", got)
	}
}

func TestTimeString(t *testing.T) {
	cases := []struct {
		t    Time
		want string
	}{
		{500, "500ns"},
		{1500, "1.5µs"},
		{2 * Millisecond, "2ms"},
		{3 * Second, "3s"},
	}
	for _, c := range cases {
		if got := c.t.String(); got != c.want {
			t.Errorf("%d.String() = %q, want %q", int64(c.t), got, c.want)
		}
	}
}

func TestRunExecutesInTimeOrder(t *testing.T) {
	s := New()
	var order []int
	s.At(30, func() { order = append(order, 3) })
	s.At(10, func() { order = append(order, 1) })
	s.At(20, func() { order = append(order, 2) })
	s.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order = %v, want [1 2 3]", order)
	}
	if s.Now() != 30 {
		t.Fatalf("Now() = %v, want 30", s.Now())
	}
}

func TestRunBreaksTiesByInsertionOrder(t *testing.T) {
	s := New()
	var order []int
	for i := 0; i < 16; i++ {
		i := i
		s.At(100, func() { order = append(order, i) })
	}
	s.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("tie-break order %v, want ascending insertion order", order)
		}
	}
}

func TestNestedScheduling(t *testing.T) {
	s := New()
	var hits []Time
	s.At(5, func() {
		hits = append(hits, s.Now())
		s.After(10, func() { hits = append(hits, s.Now()) })
	})
	s.Run()
	if len(hits) != 2 || hits[0] != 5 || hits[1] != 15 {
		t.Fatalf("hits = %v, want [5 15]", hits)
	}
}

func TestScheduleInPastPanics(t *testing.T) {
	s := New()
	s.At(10, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		s.At(5, func() {})
	})
	s.Run()
}

func TestNegativeDelayPanics(t *testing.T) {
	s := New()
	defer func() {
		if recover() == nil {
			t.Error("negative delay did not panic")
		}
	}()
	s.After(-1, func() {})
}

func TestNilEventPanics(t *testing.T) {
	s := New()
	defer func() {
		if recover() == nil {
			t.Error("nil event did not panic")
		}
	}()
	s.At(0, nil)
}

func TestRunUntil(t *testing.T) {
	s := New()
	var hits []Time
	for _, at := range []Time{10, 20, 30} {
		at := at
		s.At(at, func() { hits = append(hits, at) })
	}
	drained := s.RunUntil(20)
	if drained {
		t.Fatal("RunUntil(20) reported drained with a pending event at 30")
	}
	if len(hits) != 2 {
		t.Fatalf("hits = %v, want events at 10 and 20", hits)
	}
	if s.Now() != 20 {
		t.Fatalf("Now() = %v, want 20", s.Now())
	}
	if !s.RunUntil(100) {
		t.Fatal("RunUntil(100) should drain the queue")
	}
	if len(hits) != 3 {
		t.Fatalf("hits = %v, want 3 events", hits)
	}
}

func TestMaxStepsPanics(t *testing.T) {
	s := New()
	s.MaxSteps = 10
	var loop func()
	loop = func() { s.After(1, loop) }
	s.After(1, loop)
	defer func() {
		if recover() == nil {
			t.Error("runaway event loop did not panic")
		}
	}()
	s.Run()
}

func TestPendingAndSteps(t *testing.T) {
	s := New()
	s.At(1, func() {})
	s.At(2, func() {})
	if s.Pending() != 2 {
		t.Fatalf("Pending() = %d, want 2", s.Pending())
	}
	s.Run()
	if s.Pending() != 0 {
		t.Fatalf("Pending() = %d after Run, want 0", s.Pending())
	}
	if s.Steps() != 2 {
		t.Fatalf("Steps() = %d, want 2", s.Steps())
	}
}

func TestMaxMin(t *testing.T) {
	if Max(3, 5) != 5 || Max(5, 3) != 5 {
		t.Error("Max broken")
	}
	if Min(3, 5) != 3 || Min(5, 3) != 3 {
		t.Error("Min broken")
	}
}

// Property: for any set of non-negative event offsets, Run visits them in
// non-decreasing time order and ends with the clock at the maximum offset.
func TestRunOrderProperty(t *testing.T) {
	f := func(offsets []uint16) bool {
		s := New()
		var visited []Time
		var maxT Time
		for _, o := range offsets {
			at := Time(o)
			if at > maxT {
				maxT = at
			}
			s.At(at, func() { visited = append(visited, s.Now()) })
		}
		s.Run()
		if len(visited) != len(offsets) {
			return false
		}
		for i := 1; i < len(visited); i++ {
			if visited[i] < visited[i-1] {
				return false
			}
		}
		return len(offsets) == 0 || s.Now() == maxT
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
