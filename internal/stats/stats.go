// Package stats holds the small numeric utilities shared by the cost models
// and the experiment harness: piecewise-linear interpolation (used for the
// offline-sampled bandwidth curves of Algorithm 1), summary statistics and
// empirical CDFs (used for the prediction-error study of Fig. 15), and a
// deterministic hash-based jitter source (used to perturb "measured" DES
// latencies without breaking reproducibility).
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Point is one sample of a piecewise-linear curve.
type Point struct {
	X, Y float64
}

// Curve is a piecewise-linear function defined by sorted sample points.
// Evaluation outside the sampled range clamps to the boundary values, which
// matches how the paper's tuner treats message sizes beyond the sampled
// bandwidth curve: bandwidth saturates at the last sampled value.
type Curve struct {
	pts []Point
}

// NewCurve builds a curve from points, sorting by X. It panics on fewer than
// one point or duplicate X values, both of which indicate a profiling bug.
func NewCurve(pts []Point) *Curve {
	if len(pts) == 0 {
		panic("stats: curve needs at least one point")
	}
	cp := make([]Point, len(pts))
	copy(cp, pts)
	sort.Slice(cp, func(i, j int) bool { return cp[i].X < cp[j].X })
	for i := 1; i < len(cp); i++ {
		if cp[i].X == cp[i-1].X {
			panic(fmt.Sprintf("stats: duplicate curve sample at x=%v", cp[i].X))
		}
	}
	return &Curve{pts: cp}
}

// Eval evaluates the curve at x with linear interpolation and boundary
// clamping.
func (c *Curve) Eval(x float64) float64 {
	pts := c.pts
	if x <= pts[0].X {
		return pts[0].Y
	}
	last := pts[len(pts)-1]
	if x >= last.X {
		return last.Y
	}
	// Hand-rolled binary search for the bracketing segment — sort.Search
	// would allocate its closure on this hot path (Eval is the inner loop
	// of analytic sweeps). Invariant: pts[i].X < x <= pts[j].X, so the
	// interpolated pair matches "first point with X >= x" exactly.
	i, j := 0, len(pts)-1
	for j-i > 1 {
		m := int(uint(i+j) >> 1)
		if pts[m].X < x {
			i = m
		} else {
			j = m
		}
	}
	lo, hi := pts[i], pts[j]
	frac := (x - lo.X) / (hi.X - lo.X)
	return lo.Y + frac*(hi.Y-lo.Y)
}

// Points returns a copy of the sample points in ascending X order.
func (c *Curve) Points() []Point {
	cp := make([]Point, len(c.pts))
	copy(cp, c.pts)
	return cp
}

// Len reports the number of sample points.
func (c *Curve) Len() int { return len(c.pts) }

// Summary holds the usual scalar statistics of a sample.
type Summary struct {
	N                   int
	Min, Max, Mean, Std float64
}

// Summarize computes summary statistics. An empty input yields a zero
// Summary with N=0.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{N: len(xs), Min: xs[0], Max: xs[0]}
	var sum float64
	for _, x := range xs {
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
		sum += x
	}
	s.Mean = sum / float64(len(xs))
	var sq float64
	for _, x := range xs {
		d := x - s.Mean
		sq += d * d
	}
	s.Std = math.Sqrt(sq / float64(len(xs)))
	return s
}

// GeoMean computes the geometric mean of strictly positive values; it panics
// otherwise, since a speedup of zero or below indicates a harness bug.
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		panic("stats: geomean of empty sample")
	}
	var logSum float64
	for _, x := range xs {
		if x <= 0 {
			panic(fmt.Sprintf("stats: geomean of non-positive value %v", x))
		}
		logSum += math.Log(x)
	}
	return math.Exp(logSum / float64(len(xs)))
}

// Percentile returns the p-th percentile (0..100) using linear interpolation
// between closest ranks. It panics on an empty sample or p outside [0,100].
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		panic("stats: percentile of empty sample")
	}
	if p < 0 || p > 100 {
		panic(fmt.Sprintf("stats: percentile %v out of range", p))
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	if len(sorted) == 1 {
		return sorted[0]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo] + frac*(sorted[hi]-sorted[lo])
}

// CDF returns the empirical cumulative distribution of xs evaluated at each
// of the sorted sample values: pairs (x_i, fraction of samples <= x_i).
func CDF(xs []float64) []Point {
	if len(xs) == 0 {
		return nil
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	out := make([]Point, len(sorted))
	for i, x := range sorted {
		out[i] = Point{X: x, Y: float64(i+1) / float64(len(sorted))}
	}
	return out
}

// Jitter is a deterministic pseudo-random source keyed by a stream of
// uint64 labels. It exists so that the DES can add realistic measurement
// noise (kernel launch variance, clock quantization) that is perfectly
// reproducible across runs: the same (seed, keys...) always yields the same
// factor. It is emphatically not a cryptographic or statistical-quality
// generator; splitmix64 is plenty for perturbing latencies by a few percent.
type Jitter struct {
	seed uint64
}

// NewJitter returns a jitter source with the given seed.
func NewJitter(seed uint64) Jitter { return Jitter{seed: seed} }

// splitmix64 advances and scrambles a 64-bit state.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Uniform returns a deterministic value in [0,1) for the given keys.
func (j Jitter) Uniform(keys ...uint64) float64 {
	h := j.seed
	for _, k := range keys {
		h = splitmix64(h ^ k)
	}
	h = splitmix64(h)
	return float64(h>>11) / float64(1<<53)
}

// Factor returns a deterministic multiplicative factor in
// [1, 1+amplitude) for the given keys. Models apply it to durations so that
// "measured" latencies sit slightly above idealized predictions, as the
// paper observes (§6.5: actual latency is always slightly higher than
// predicted).
func (j Jitter) Factor(amplitude float64, keys ...uint64) float64 {
	if amplitude < 0 {
		panic("stats: negative jitter amplitude")
	}
	return 1 + amplitude*j.Uniform(keys...)
}

// HashString folds a string into a uint64 key for Jitter (FNV-1a).
func HashString(s string) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime
	}
	return h
}
