package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestCurveInterpolation(t *testing.T) {
	c := NewCurve([]Point{{0, 0}, {10, 100}, {20, 100}})
	cases := []struct{ x, want float64 }{
		{-5, 0},   // clamp below
		{0, 0},    // boundary
		{5, 50},   // interior
		{10, 100}, // knot
		{15, 100}, // flat segment
		{25, 100}, // clamp above
	}
	for _, cse := range cases {
		if got := c.Eval(cse.x); math.Abs(got-cse.want) > 1e-12 {
			t.Errorf("Eval(%v) = %v, want %v", cse.x, got, cse.want)
		}
	}
}

func TestCurveSortsInput(t *testing.T) {
	c := NewCurve([]Point{{10, 1}, {0, 0}})
	if got := c.Eval(5); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("Eval(5) = %v, want 0.5", got)
	}
	pts := c.Points()
	if pts[0].X != 0 || pts[1].X != 10 {
		t.Fatalf("Points() = %v, want sorted", pts)
	}
	if c.Len() != 2 {
		t.Fatalf("Len() = %d, want 2", c.Len())
	}
}

func TestCurveSinglePoint(t *testing.T) {
	c := NewCurve([]Point{{5, 42}})
	for _, x := range []float64{-1, 5, 100} {
		if got := c.Eval(x); got != 42 {
			t.Errorf("Eval(%v) = %v, want 42", x, got)
		}
	}
}

func TestCurvePanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"empty":     func() { NewCurve(nil) },
		"duplicate": func() { NewCurve([]Point{{1, 1}, {1, 2}}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			fn()
		}()
	}
}

// Property: interpolated values are bounded by the Y-range of the samples.
func TestCurveBoundedProperty(t *testing.T) {
	f := func(ys [5]float64, x float64) bool {
		pts := make([]Point, len(ys))
		minY, maxY := math.Inf(1), math.Inf(-1)
		for i, y := range ys {
			y = math.Mod(y, 1e6) // keep finite and modest
			if math.IsNaN(y) {
				y = 0
			}
			pts[i] = Point{X: float64(i), Y: y}
			if y < minY {
				minY = y
			}
			if y > maxY {
				maxY = y
			}
		}
		v := NewCurve(pts).Eval(math.Mod(x, 10))
		return v >= minY-1e-9 && v <= maxY+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4})
	if s.N != 4 || s.Min != 1 || s.Max != 4 || s.Mean != 2.5 {
		t.Fatalf("Summarize = %+v", s)
	}
	wantStd := math.Sqrt(1.25)
	if math.Abs(s.Std-wantStd) > 1e-12 {
		t.Fatalf("Std = %v, want %v", s.Std, wantStd)
	}
	if z := Summarize(nil); z.N != 0 {
		t.Fatalf("Summarize(nil) = %+v", z)
	}
}

func TestGeoMean(t *testing.T) {
	if got := GeoMean([]float64{2, 8}); math.Abs(got-4) > 1e-12 {
		t.Fatalf("GeoMean(2,8) = %v, want 4", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("GeoMean of non-positive value did not panic")
		}
	}()
	GeoMean([]float64{1, 0})
}

func TestPercentile(t *testing.T) {
	xs := []float64{10, 20, 30, 40}
	cases := []struct{ p, want float64 }{
		{0, 10}, {100, 40}, {50, 25}, {25, 17.5},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	if got := Percentile([]float64{7}, 50); got != 7 {
		t.Errorf("Percentile single = %v, want 7", got)
	}
}

func TestPercentilePanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"empty":    func() { Percentile(nil, 50) },
		"negative": func() { Percentile([]float64{1}, -1) },
		"over100":  func() { Percentile([]float64{1}, 101) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestCDF(t *testing.T) {
	cdf := CDF([]float64{3, 1, 2})
	want := []Point{{1, 1.0 / 3}, {2, 2.0 / 3}, {3, 1}}
	if len(cdf) != len(want) {
		t.Fatalf("CDF len = %d, want %d", len(cdf), len(want))
	}
	for i := range want {
		if cdf[i] != want[i] {
			t.Errorf("CDF[%d] = %v, want %v", i, cdf[i], want[i])
		}
	}
	if CDF(nil) != nil {
		t.Error("CDF(nil) should be nil")
	}
}

func TestJitterDeterministic(t *testing.T) {
	j := NewJitter(42)
	a := j.Uniform(1, 2, 3)
	b := j.Uniform(1, 2, 3)
	if a != b {
		t.Fatalf("jitter not deterministic: %v != %v", a, b)
	}
	if c := j.Uniform(1, 2, 4); c == a {
		t.Fatalf("different keys produced identical jitter %v", c)
	}
	if d := NewJitter(43).Uniform(1, 2, 3); d == a {
		t.Fatalf("different seeds produced identical jitter %v", d)
	}
}

func TestJitterRange(t *testing.T) {
	j := NewJitter(7)
	for i := uint64(0); i < 1000; i++ {
		u := j.Uniform(i)
		if u < 0 || u >= 1 {
			t.Fatalf("Uniform out of range: %v", u)
		}
		f := j.Factor(0.05, i)
		if f < 1 || f >= 1.05 {
			t.Fatalf("Factor out of range: %v", f)
		}
	}
}

func TestJitterFactorZeroAmplitude(t *testing.T) {
	j := NewJitter(1)
	if f := j.Factor(0, 99); f != 1 {
		t.Fatalf("Factor(0) = %v, want 1", f)
	}
}

func TestJitterNegativeAmplitudePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("negative amplitude did not panic")
		}
	}()
	NewJitter(1).Factor(-0.1, 1)
}

func TestHashString(t *testing.T) {
	if HashString("a") == HashString("b") {
		t.Error("trivial hash collision")
	}
	if HashString("gemm") != HashString("gemm") {
		t.Error("hash not deterministic")
	}
}

// Property: CDF output is non-decreasing in both coordinates and ends at 1.
func TestCDFMonotoneProperty(t *testing.T) {
	f := func(xs []float64) bool {
		clean := xs[:0]
		for _, x := range xs {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				clean = append(clean, x)
			}
		}
		cdf := CDF(clean)
		if len(clean) == 0 {
			return cdf == nil
		}
		for i := 1; i < len(cdf); i++ {
			if cdf[i].X < cdf[i-1].X || cdf[i].Y < cdf[i-1].Y {
				return false
			}
		}
		return cdf[len(cdf)-1].Y == 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
