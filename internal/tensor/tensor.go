// Package tensor implements the dense row-major float32 matrices that flow
// through the functional layer of the simulator. The overlap runners do real
// arithmetic on these (blocked GEMM, tile scatter/gather, collective
// reductions), so correctness of FlashOverlap's reordering can be asserted
// against a sequential reference, mirroring the paper's artifact claim C1
// ("all close" with the non-overlap implementation).
//
// float32 stands in for the paper's half precision: it keeps reductions
// associative enough to compare overlapped and non-overlapped results
// bit-exactly when the reduction order is preserved, while still exposing
// order-sensitivity when it is not (which our AllReduce deliberately avoids
// by reducing in rank order).
package tensor

import (
	"fmt"
	"math"
)

// Matrix is a dense row-major float32 matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float32
}

// New allocates a zeroed Rows x Cols matrix.
func New(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("tensor: negative dimensions %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float32, rows*cols)}
}

// FromSlice wraps data as a rows x cols matrix without copying. It panics if
// the length does not match.
func FromSlice(rows, cols int, data []float32) *Matrix {
	if len(data) != rows*cols {
		panic(fmt.Sprintf("tensor: FromSlice %dx%d with %d elements", rows, cols, len(data)))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: data}
}

// At returns element (r, c).
func (m *Matrix) At(r, c int) float32 {
	m.check(r, c)
	return m.Data[r*m.Cols+c]
}

// Set writes element (r, c).
func (m *Matrix) Set(r, c int, v float32) {
	m.check(r, c)
	m.Data[r*m.Cols+c] = v
}

func (m *Matrix) check(r, c int) {
	if r < 0 || r >= m.Rows || c < 0 || c >= m.Cols {
		panic(fmt.Sprintf("tensor: index (%d,%d) out of %dx%d", r, c, m.Rows, m.Cols))
	}
}

// Row returns a view (not a copy) of row r.
func (m *Matrix) Row(r int) []float32 {
	if r < 0 || r >= m.Rows {
		panic(fmt.Sprintf("tensor: row %d out of %d", r, m.Rows))
	}
	return m.Data[r*m.Cols : (r+1)*m.Cols]
}

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	out := New(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// Zero resets every element to 0 in place.
func (m *Matrix) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// Size reports the number of elements.
func (m *Matrix) Size() int { return m.Rows * m.Cols }

// Bytes reports the storage footprint assuming the paper's half precision
// (2 bytes/element): timing models care about the paper's data volume, not
// Go's in-memory representation.
func (m *Matrix) Bytes() int64 { return int64(m.Rows) * int64(m.Cols) * 2 }

// FillSeq writes a deterministic, position-dependent pattern (useful for
// asserting exact data movement in reorder tests: every element value
// encodes its origin).
func (m *Matrix) FillSeq(offset float32) {
	for i := range m.Data {
		m.Data[i] = offset + float32(i)
	}
}

// FillRand fills with deterministic pseudo-random values in [-1, 1) derived
// from the seed and element index. No math/rand: reproducibility across
// machines and Go versions is required by the experiment harness.
func (m *Matrix) FillRand(seed uint64) {
	state := seed*0x9e3779b97f4a7c15 + 0x2545f4914f6cdd1d
	for i := range m.Data {
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		// Map the top 24 bits to [-1, 1).
		m.Data[i] = float32(int32(state>>40)-1<<23) / float32(1<<23)
	}
}

// Equal reports whether m and o have identical shape and bit-identical
// elements.
func (m *Matrix) Equal(o *Matrix) bool {
	if m.Rows != o.Rows || m.Cols != o.Cols {
		return false
	}
	for i, v := range m.Data {
		if v != o.Data[i] {
			return false
		}
	}
	return true
}

// AllClose reports whether m and o agree within absolute tolerance atol
// plus relative tolerance rtol (NumPy semantics: |a-b| <= atol + rtol*|b|).
func (m *Matrix) AllClose(o *Matrix, atol, rtol float64) bool {
	return m.MaxDiff(o) >= 0 && m.allClose(o, atol, rtol)
}

func (m *Matrix) allClose(o *Matrix, atol, rtol float64) bool {
	for i, v := range m.Data {
		diff := math.Abs(float64(v) - float64(o.Data[i]))
		if diff > atol+rtol*math.Abs(float64(o.Data[i])) {
			return false
		}
	}
	return true
}

// MaxDiff returns the maximum absolute element difference, or -1 if shapes
// differ.
func (m *Matrix) MaxDiff(o *Matrix) float64 {
	if m.Rows != o.Rows || m.Cols != o.Cols {
		return -1
	}
	var worst float64
	for i, v := range m.Data {
		d := math.Abs(float64(v) - float64(o.Data[i]))
		if d > worst {
			worst = d
		}
	}
	return worst
}

// AddInPlace accumulates o into m elementwise.
func (m *Matrix) AddInPlace(o *Matrix) {
	if m.Rows != o.Rows || m.Cols != o.Cols {
		panic(fmt.Sprintf("tensor: add shape mismatch %dx%d vs %dx%d", m.Rows, m.Cols, o.Rows, o.Cols))
	}
	for i, v := range o.Data {
		m.Data[i] += v
	}
}

// Scale multiplies every element by s in place.
func (m *Matrix) Scale(s float32) {
	for i := range m.Data {
		m.Data[i] *= s
	}
}

// CopyRect copies a src rectangle of (rows x cols) at (srcR, srcC) into m at
// (dstR, dstC). It is the primitive under tile scatter/gather.
func (m *Matrix) CopyRect(dstR, dstC int, src *Matrix, srcR, srcC, rows, cols int) {
	if dstR < 0 || dstC < 0 || dstR+rows > m.Rows || dstC+cols > m.Cols {
		panic(fmt.Sprintf("tensor: dst rect (%d,%d)+%dx%d out of %dx%d", dstR, dstC, rows, cols, m.Rows, m.Cols))
	}
	if srcR < 0 || srcC < 0 || srcR+rows > src.Rows || srcC+cols > src.Cols {
		panic(fmt.Sprintf("tensor: src rect (%d,%d)+%dx%d out of %dx%d", srcR, srcC, rows, cols, src.Rows, src.Cols))
	}
	for r := 0; r < rows; r++ {
		copy(m.Data[(dstR+r)*m.Cols+dstC:(dstR+r)*m.Cols+dstC+cols],
			src.Data[(srcR+r)*src.Cols+srcC:(srcR+r)*src.Cols+srcC+cols])
	}
}

// MatMul computes c = a*b with blocked float32 accumulation; c must be
// pre-allocated with matching shape and is overwritten. This is the
// reference ("cuBLAS") implementation every overlap path is checked against.
func MatMul(c, a, b *Matrix) {
	if a.Cols != b.Rows || c.Rows != a.Rows || c.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: matmul shape mismatch (%dx%d)*(%dx%d)->(%dx%d)",
			a.Rows, a.Cols, b.Rows, b.Cols, c.Rows, c.Cols))
	}
	c.Zero()
	// i-k-j loop order streams b rows, which is cache-friendly for
	// row-major layout and keeps test matrices fast enough in pure Go.
	for i := 0; i < a.Rows; i++ {
		ci := c.Data[i*c.Cols : (i+1)*c.Cols]
		for k := 0; k < a.Cols; k++ {
			aik := a.Data[i*a.Cols+k]
			if aik == 0 {
				continue
			}
			bk := b.Data[k*b.Cols : (k+1)*b.Cols]
			for j, bv := range bk {
				ci[j] += aik * bv
			}
		}
	}
}

// RMSNorm applies y_ij = x_ij / rms(x_i) * w_j row-wise into dst (which may
// alias src is NOT allowed; dst must be a distinct, same-shaped matrix).
// It is the element-wise operator the paper fuses the post-communication
// reordering into (Table 5).
func RMSNorm(dst, src *Matrix, weight []float32, eps float64) {
	if dst.Rows != src.Rows || dst.Cols != src.Cols {
		panic("tensor: rmsnorm shape mismatch")
	}
	if len(weight) != src.Cols {
		panic(fmt.Sprintf("tensor: rmsnorm weight len %d != cols %d", len(weight), src.Cols))
	}
	if &dst.Data[0] == &src.Data[0] {
		panic("tensor: rmsnorm dst aliases src")
	}
	for r := 0; r < src.Rows; r++ {
		row := src.Row(r)
		var sq float64
		for _, v := range row {
			sq += float64(v) * float64(v)
		}
		inv := 1 / math.Sqrt(sq/float64(len(row))+eps)
		out := dst.Row(r)
		for j, v := range row {
			out[j] = float32(float64(v)*inv) * weight[j]
		}
	}
}
