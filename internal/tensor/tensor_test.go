package tensor

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewAndIndexing(t *testing.T) {
	m := New(3, 4)
	if m.Size() != 12 {
		t.Fatalf("Size = %d, want 12", m.Size())
	}
	m.Set(2, 3, 7)
	if m.At(2, 3) != 7 {
		t.Fatalf("At(2,3) = %v, want 7", m.At(2, 3))
	}
	if m.Bytes() != 24 {
		t.Fatalf("Bytes = %d, want 24 (half precision)", m.Bytes())
	}
}

func TestIndexPanics(t *testing.T) {
	m := New(2, 2)
	for name, fn := range map[string]func(){
		"row-oob":  func() { m.At(2, 0) },
		"col-oob":  func() { m.At(0, 2) },
		"negative": func() { m.At(-1, 0) },
		"set-oob":  func() { m.Set(0, 5, 1) },
		"row-view": func() { m.Row(9) },
		"negdim":   func() { New(-1, 2) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestFromSlice(t *testing.T) {
	d := []float32{1, 2, 3, 4, 5, 6}
	m := FromSlice(2, 3, d)
	if m.At(1, 2) != 6 {
		t.Fatalf("At(1,2) = %v, want 6", m.At(1, 2))
	}
	m.Set(0, 0, 9)
	if d[0] != 9 {
		t.Fatal("FromSlice should not copy")
	}
	defer func() {
		if recover() == nil {
			t.Error("FromSlice with wrong length did not panic")
		}
	}()
	FromSlice(2, 2, d)
}

func TestRowIsView(t *testing.T) {
	m := New(2, 3)
	m.Row(1)[2] = 5
	if m.At(1, 2) != 5 {
		t.Fatal("Row must be a view")
	}
}

func TestCloneIndependent(t *testing.T) {
	m := New(2, 2)
	m.FillSeq(0)
	c := m.Clone()
	c.Set(0, 0, 99)
	if m.At(0, 0) == 99 {
		t.Fatal("Clone shares storage")
	}
	if !m.Equal(m.Clone()) {
		t.Fatal("Clone not equal to original")
	}
}

func TestZero(t *testing.T) {
	m := New(2, 2)
	m.FillSeq(1)
	m.Zero()
	for i, v := range m.Data {
		if v != 0 {
			t.Fatalf("Data[%d] = %v after Zero", i, v)
		}
	}
}

func TestFillSeq(t *testing.T) {
	m := New(2, 2)
	m.FillSeq(10)
	want := []float32{10, 11, 12, 13}
	for i, w := range want {
		if m.Data[i] != w {
			t.Fatalf("Data[%d] = %v, want %v", i, m.Data[i], w)
		}
	}
}

func TestFillRandDeterministicAndBounded(t *testing.T) {
	a, b := New(8, 8), New(8, 8)
	a.FillRand(42)
	b.FillRand(42)
	if !a.Equal(b) {
		t.Fatal("FillRand not deterministic")
	}
	b.FillRand(43)
	if a.Equal(b) {
		t.Fatal("FillRand ignores seed")
	}
	for _, v := range a.Data {
		if v < -1 || v >= 1 || math.IsNaN(float64(v)) {
			t.Fatalf("FillRand value out of range: %v", v)
		}
	}
	// Values should not be constant.
	if a.Data[0] == a.Data[1] && a.Data[1] == a.Data[2] {
		t.Fatal("FillRand produced constant data")
	}
}

func TestEqualAndAllClose(t *testing.T) {
	a := New(2, 2)
	a.FillSeq(0)
	b := a.Clone()
	if !a.Equal(b) || !a.AllClose(b, 0, 0) {
		t.Fatal("identical matrices should be equal")
	}
	b.Set(1, 1, b.At(1, 1)+0.5)
	if a.Equal(b) {
		t.Fatal("Equal missed a difference")
	}
	if !a.AllClose(b, 0.6, 0) {
		t.Fatal("AllClose should accept within atol")
	}
	if a.AllClose(b, 0.1, 0) {
		t.Fatal("AllClose should reject beyond atol")
	}
	if a.Equal(New(2, 3)) {
		t.Fatal("shape mismatch should not be equal")
	}
	if a.MaxDiff(New(3, 3)) != -1 {
		t.Fatal("MaxDiff shape mismatch should be -1")
	}
}

func TestMaxDiff(t *testing.T) {
	a, b := New(1, 3), New(1, 3)
	b.Data[1] = 2.5
	if got := a.MaxDiff(b); got != 2.5 {
		t.Fatalf("MaxDiff = %v, want 2.5", got)
	}
}

func TestAddInPlaceAndScale(t *testing.T) {
	a, b := New(2, 2), New(2, 2)
	a.FillSeq(0)
	b.FillSeq(10)
	a.AddInPlace(b)
	if a.At(1, 1) != 3+13 {
		t.Fatalf("AddInPlace: At(1,1) = %v", a.At(1, 1))
	}
	a.Scale(2)
	if a.At(0, 0) != 20 {
		t.Fatalf("Scale: At(0,0) = %v", a.At(0, 0))
	}
	defer func() {
		if recover() == nil {
			t.Error("AddInPlace shape mismatch did not panic")
		}
	}()
	a.AddInPlace(New(1, 1))
}

func TestCopyRect(t *testing.T) {
	src := New(4, 4)
	src.FillSeq(0)
	dst := New(4, 4)
	dst.CopyRect(1, 1, src, 2, 2, 2, 2)
	if dst.At(1, 1) != src.At(2, 2) || dst.At(2, 2) != src.At(3, 3) {
		t.Fatal("CopyRect moved wrong data")
	}
	if dst.At(0, 0) != 0 {
		t.Fatal("CopyRect touched data outside the rectangle")
	}
}

func TestCopyRectPanics(t *testing.T) {
	src, dst := New(2, 2), New(2, 2)
	for name, fn := range map[string]func(){
		"dst-oob": func() { dst.CopyRect(1, 1, src, 0, 0, 2, 2) },
		"src-oob": func() { dst.CopyRect(0, 0, src, 1, 1, 2, 2) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestMatMulSmall(t *testing.T) {
	a := FromSlice(2, 3, []float32{1, 2, 3, 4, 5, 6})
	b := FromSlice(3, 2, []float32{7, 8, 9, 10, 11, 12})
	c := New(2, 2)
	MatMul(c, a, b)
	want := []float32{58, 64, 139, 154}
	for i, w := range want {
		if c.Data[i] != w {
			t.Fatalf("c[%d] = %v, want %v", i, c.Data[i], w)
		}
	}
}

func TestMatMulIdentity(t *testing.T) {
	a := New(5, 5)
	a.FillRand(1)
	id := New(5, 5)
	for i := 0; i < 5; i++ {
		id.Set(i, i, 1)
	}
	c := New(5, 5)
	MatMul(c, a, id)
	if !c.Equal(a) {
		t.Fatal("A*I != A")
	}
	MatMul(c, id, a)
	if !c.Equal(a) {
		t.Fatal("I*A != A")
	}
}

func TestMatMulShapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("shape mismatch did not panic")
		}
	}()
	MatMul(New(2, 2), New(2, 3), New(4, 2))
}

func TestMatMulOverwritesC(t *testing.T) {
	a := FromSlice(1, 1, []float32{2})
	b := FromSlice(1, 1, []float32{3})
	c := FromSlice(1, 1, []float32{999})
	MatMul(c, a, b)
	if c.Data[0] != 6 {
		t.Fatalf("c = %v, want 6 (stale accumulation?)", c.Data[0])
	}
}

// Property: matmul distributes over addition, (A+A')B = AB + A'B, within
// float tolerance. This catches indexing bugs better than fixed examples.
func TestMatMulLinearityProperty(t *testing.T) {
	f := func(seed uint64) bool {
		const m, k, n = 4, 6, 5
		a1, a2 := New(m, k), New(m, k)
		a1.FillRand(seed)
		a2.FillRand(seed + 1)
		b := New(k, n)
		b.FillRand(seed + 2)
		sum := a1.Clone()
		sum.AddInPlace(a2)
		c1, c2, cs, want := New(m, n), New(m, n), New(m, n), New(m, n)
		MatMul(c1, a1, b)
		MatMul(c2, a2, b)
		MatMul(cs, sum, b)
		want.AddInPlace(c1)
		want.AddInPlace(c2)
		return cs.AllClose(want, 1e-4, 1e-4)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestRMSNorm(t *testing.T) {
	src := FromSlice(1, 4, []float32{1, 1, 1, 1})
	dst := New(1, 4)
	w := []float32{1, 2, 3, 4}
	RMSNorm(dst, src, w, 0)
	// rms of all-ones row is 1, so output is just the weights.
	for j, want := range w {
		if math.Abs(float64(dst.At(0, j)-want)) > 1e-6 {
			t.Fatalf("dst[0,%d] = %v, want %v", j, dst.At(0, j), want)
		}
	}
}

func TestRMSNormScalesRows(t *testing.T) {
	src := FromSlice(2, 2, []float32{3, 4, 30, 40})
	dst := New(2, 2)
	RMSNorm(dst, src, []float32{1, 1}, 0)
	// Rows are scalar multiples of each other, so normalized rows match.
	if math.Abs(float64(dst.At(0, 0)-dst.At(1, 0))) > 1e-6 {
		t.Fatalf("RMSNorm rows differ: %v vs %v", dst.At(0, 0), dst.At(1, 0))
	}
}

func TestRMSNormPanics(t *testing.T) {
	src := New(2, 2)
	for name, fn := range map[string]func(){
		"shape":  func() { RMSNorm(New(1, 2), src, []float32{1, 1}, 0) },
		"weight": func() { RMSNorm(New(2, 2), src, []float32{1}, 0) },
		"alias":  func() { RMSNorm(src, src, []float32{1, 1}, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			fn()
		}()
	}
}
