// Package trace post-processes the kernel spans recorded by the device
// model into human-readable timelines and Chrome trace-event JSON
// (chrome://tracing / Perfetto), the same way the paper inspects per-tile
// and per-stream behavior with the CUDA global timer (Fig. 3, Fig. 5).
package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/gpu"
	"repro/internal/sim"
)

// Timeline is an ordered set of spans with aggregate queries.
type Timeline struct {
	Spans []gpu.Span
}

// Collect gathers every device's trace from a cluster into one timeline,
// sorted by start time (ties: device, then stream).
func Collect(c *gpu.Cluster) *Timeline {
	var all []gpu.Span
	for _, d := range c.Devices {
		all = append(all, d.Trace...)
	}
	return FromSpans(all)
}

// FromSpans builds a timeline from raw spans (e.g. core.Result.Trace).
func FromSpans(spans []gpu.Span) *Timeline {
	all := make([]gpu.Span, len(spans))
	copy(all, spans)
	sort.Slice(all, func(i, j int) bool {
		a, b := all[i], all[j]
		if a.Start != b.Start {
			return a.Start < b.Start
		}
		if a.Device != b.Device {
			return a.Device < b.Device
		}
		return a.Stream < b.Stream
	})
	return &Timeline{Spans: all}
}

// Span count and horizon.
func (t *Timeline) Len() int { return len(t.Spans) }

// End reports the latest span end (the makespan).
func (t *Timeline) End() sim.Time {
	var end sim.Time
	for _, s := range t.Spans {
		if s.End > end {
			end = s.End
		}
	}
	return end
}

// BusyTime sums the span durations on one (device, stream) lane.
func (t *Timeline) BusyTime(device int, stream string) sim.Time {
	var busy sim.Time
	for _, s := range t.Spans {
		if s.Device == device && s.Stream == stream {
			busy += s.End - s.Start
		}
	}
	return busy
}

// Utilization reports busy time over the makespan for a lane in [0, 1].
func (t *Timeline) Utilization(device int, stream string) float64 {
	end := t.End()
	if end == 0 {
		return 0
	}
	return float64(t.BusyTime(device, stream)) / float64(end)
}

// OverlapTime reports how long two lanes on the same device run
// concurrently — the quantity the overlap designs maximize.
func (t *Timeline) OverlapTime(device int, streamA, streamB string) sim.Time {
	var a, b []gpu.Span
	for _, s := range t.Spans {
		if s.Device != device {
			continue
		}
		switch s.Stream {
		case streamA:
			a = append(a, s)
		case streamB:
			b = append(b, s)
		}
	}
	var total sim.Time
	for _, x := range a {
		for _, y := range b {
			lo := sim.Max(x.Start, y.Start)
			hi := sim.Min(x.End, y.End)
			if hi > lo {
				total += hi - lo
			}
		}
	}
	return total
}

// chromeEvent is one complete-event record of the Chrome trace format.
type chromeEvent struct {
	Name string            `json:"name"`
	Cat  string            `json:"cat"`
	Ph   string            `json:"ph"`
	TS   float64           `json:"ts"`  // microseconds
	Dur  float64           `json:"dur"` // microseconds
	PID  int               `json:"pid"`
	TID  string            `json:"tid"`
	Args map[string]string `json:"args,omitempty"`
}

// WriteChromeTrace emits the timeline as a Chrome trace-event JSON array:
// one process per device, one thread per stream.
func (t *Timeline) WriteChromeTrace(w io.Writer) error {
	events := make([]chromeEvent, 0, len(t.Spans))
	for _, s := range t.Spans {
		events = append(events, chromeEvent{
			Name: s.Name,
			Cat:  s.Stream,
			Ph:   "X",
			TS:   s.Start.Micros(),
			Dur:  (s.End - s.Start).Micros(),
			PID:  s.Device,
			TID:  s.Stream,
			Args: map[string]string{"sms": fmt.Sprint(s.SMs)},
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(events)
}

// Render draws an ASCII Gantt chart of the timeline, one row per
// (device, stream) lane, width columns wide.
func (t *Timeline) Render(width int) string {
	if width < 20 {
		width = 20
	}
	end := t.End()
	if end == 0 || len(t.Spans) == 0 {
		return "(empty timeline)\n"
	}
	type lane struct{ key, label string }
	seen := map[string]bool{}
	var lanes []lane
	for _, s := range t.Spans {
		key := fmt.Sprintf("dev%d/%s", s.Device, s.Stream)
		if !seen[key] {
			seen[key] = true
			lanes = append(lanes, lane{key: key, label: key})
		}
	}
	sort.Slice(lanes, func(i, j int) bool { return lanes[i].key < lanes[j].key })

	var b strings.Builder
	for _, l := range lanes {
		row := make([]byte, width)
		for i := range row {
			row[i] = '.'
		}
		for _, s := range t.Spans {
			if fmt.Sprintf("dev%d/%s", s.Device, s.Stream) != l.key {
				continue
			}
			lo := int(int64(s.Start) * int64(width) / int64(end))
			hi := int(int64(s.End) * int64(width) / int64(end))
			if hi <= lo {
				hi = lo + 1
			}
			mark := byte('#')
			if s.Stream == "comm" {
				mark = '='
			}
			for i := lo; i < hi && i < width; i++ {
				row[i] = mark
			}
		}
		fmt.Fprintf(&b, "%-14s |%s|\n", l.label, row)
	}
	fmt.Fprintf(&b, "%-14s  0%s%v\n", "", strings.Repeat(" ", width-len(end.String())), end)
	return b.String()
}
