package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/gpu"
	"repro/internal/hw"
	"repro/internal/sim"
)

// tracedCluster runs a small two-stream scenario with tracing on.
func tracedCluster(t *testing.T) *gpu.Cluster {
	t.Helper()
	c := gpu.NewCluster(hw.RTX4090PCIe(), 2)
	c.EnableTrace()
	for _, dev := range c.Devices {
		comp := gpu.NewStream(dev, "compute")
		comm := gpu.NewStream(dev, "comm")
		comp.Launch(gpu.KernelSpec{Name: "gemm", SMs: 120,
			Duration: func(*gpu.Device, sim.Time) sim.Time { return 100 }})
		comm.Launch(gpu.KernelSpec{Name: "nccl", SMs: 8,
			Duration: func(*gpu.Device, sim.Time) sim.Time { return 60 }})
	}
	c.Sim.Run()
	return c
}

func TestCollectSortsSpans(t *testing.T) {
	tl := Collect(tracedCluster(t))
	if tl.Len() != 4 {
		t.Fatalf("spans = %d, want 4", tl.Len())
	}
	for i := 1; i < tl.Len(); i++ {
		if tl.Spans[i].Start < tl.Spans[i-1].Start {
			t.Fatal("spans not sorted by start")
		}
	}
	if tl.End() != 100 {
		t.Fatalf("End = %v, want 100", tl.End())
	}
}

func TestBusyAndUtilization(t *testing.T) {
	tl := Collect(tracedCluster(t))
	if got := tl.BusyTime(0, "compute"); got != 100 {
		t.Fatalf("BusyTime = %v", got)
	}
	if got := tl.Utilization(0, "comm"); got != 0.6 {
		t.Fatalf("comm utilization = %v, want 0.6", got)
	}
	if got := tl.Utilization(0, "nosuch"); got != 0 {
		t.Fatalf("unknown lane utilization = %v", got)
	}
}

func TestOverlapTime(t *testing.T) {
	tl := Collect(tracedCluster(t))
	// compute [0,100), comm [0,60): overlap 60.
	if got := tl.OverlapTime(0, "compute", "comm"); got != 60 {
		t.Fatalf("OverlapTime = %v, want 60", got)
	}
	if got := tl.OverlapTime(1, "compute", "comm"); got != 60 {
		t.Fatalf("device 1 OverlapTime = %v, want 60", got)
	}
}

func TestWriteChromeTrace(t *testing.T) {
	tl := Collect(tracedCluster(t))
	var buf bytes.Buffer
	if err := tl.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("invalid trace JSON: %v", err)
	}
	if len(events) != 4 {
		t.Fatalf("events = %d", len(events))
	}
	e := events[0]
	for _, key := range []string{"name", "ph", "ts", "dur", "pid", "tid"} {
		if _, ok := e[key]; !ok {
			t.Fatalf("event missing %q: %v", key, e)
		}
	}
	if e["ph"] != "X" {
		t.Fatalf("ph = %v, want complete events", e["ph"])
	}
}

func TestRenderGantt(t *testing.T) {
	tl := Collect(tracedCluster(t))
	out := tl.Render(40)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // 4 lanes + axis
		t.Fatalf("render lines = %d:\n%s", len(lines), out)
	}
	if !strings.Contains(out, "#") || !strings.Contains(out, "=") {
		t.Fatalf("render missing compute/comm marks:\n%s", out)
	}
	if Collect(gpu.NewCluster(hw.RTX4090PCIe(), 1)).Render(40) != "(empty timeline)\n" {
		t.Fatal("empty timeline should render placeholder")
	}
}
