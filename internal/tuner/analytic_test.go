package tuner

import (
	"context"
	"testing"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/gemm"
	"repro/internal/hw"
)

// The analytic backend IS Algorithm 1: for every Fig. 15 shape, platform,
// and parallelism, an engine execution at FidelityAnalytic must return
// exactly the latency Predictor.Predict computes for the same partition —
// not approximately, since both run the same integer recurrence over the
// same offline bandwidth curve. This is the contract that lets the mixed
// sweep rank on analytic numbers and trust the predictor's Fig. 15 error
// envelope for the unrefined tier.
func TestAnalyticBackendAgreesWithPredictorExactly(t *testing.T) {
	shapes := []gemm.Shape{
		{M: 2048, N: 8192, K: 4096},
		{M: 4096, N: 8192, K: 8192},
		{M: 8192, N: 8192, K: 2048},
	}
	for _, plat := range []hw.Platform{hw.RTX4090PCIe(), hw.A800NVLink()} {
		for _, n := range []int{2, 4} {
			curve := SampleBandwidthCurve(plat, n, hw.AllReduce, nil)
			eng := engine.New(1, 0)
			eng.SeedCurve(plat, n, hw.AllReduce, curve)
			for _, shape := range shapes {
				pred, err := NewPredictor(plat, shape, gemm.Config{}, curve, 1)
				if err != nil {
					t.Fatal(err)
				}
				cands := Candidates(pred.Waves, DefaultS1, DefaultSP, 256)
				step := len(cands)/8 + 1
				for ci := 0; ci < len(cands); ci += step {
					part := cands[ci]
					want, err := pred.Predict(part)
					if err != nil {
						t.Fatal(err)
					}
					res, err := eng.Exec(context.Background(), core.Options{
						Plat:      plat,
						NGPUs:     n,
						Shape:     shape,
						Prim:      hw.AllReduce,
						Partition: part.Clone(),
						Fidelity:  core.FidelityAnalytic,
					})
					if err != nil {
						t.Fatal(err)
					}
					if res.Fidelity != core.FidelityAnalytic {
						t.Fatalf("analytic execution labeled %q", res.Fidelity)
					}
					if res.Latency != want {
						t.Fatalf("%s n=%d %v part %v: analytic backend %v, predictor %v",
							plat.Name, n, shape, part, res.Latency, want)
					}
				}
			}
		}
	}
}

// An engine with no seeded curve samples one itself; sampling is
// deterministic (jitter off), so the lazily sampled engine must agree with
// a seeded one bit for bit — the property that makes independently
// configured replicas byte-identical on the analytic tier.
func TestAnalyticLazyCurveMatchesSeeded(t *testing.T) {
	plat := hw.RTX4090PCIe()
	shape := gemm.Shape{M: 4096, N: 8192, K: 8192}
	opts := core.Options{Plat: plat, NGPUs: 2, Shape: shape, Prim: hw.AllReduce, Fidelity: core.FidelityAnalytic}

	seeded := engine.New(1, 0)
	seeded.SeedCurve(plat, 2, hw.AllReduce, SampleBandwidthCurve(plat, 2, hw.AllReduce, nil))
	want, err := seeded.Exec(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	lazy := engine.New(1, 0)
	got, err := lazy.Exec(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if got.Latency != want.Latency {
		t.Fatalf("lazily sampled engine %v, seeded engine %v", got.Latency, want.Latency)
	}
}
