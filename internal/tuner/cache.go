package tuner

import (
	"container/list"
	"math"
	"sync"

	"repro/internal/gemm"
)

// DefaultShapeCacheCapacity bounds a tuner's shape cache when the caller does
// not choose a capacity. The paper's dynamic-shape store (§4.2.2) holds a few
// dozen representative sizes; 256 leaves ample headroom for a long-lived
// service tuning misses on the fly without letting an adversarial shape
// stream grow the cache without bound.
const DefaultShapeCacheCapacity = 256

// shapeCache is the concurrency-safe nearest-neighbor store behind
// Tuner.Lookup: tuned (shape, imbalance) -> partition entries, matched in
// (log2 M·N, log2 K) space. Reads (the hot serving path) take only the read
// lock and scan precomputed log coordinates; writes maintain an LRU order so
// the capacity bound evicts the least-recently-matched entry first. A
// successful match bumps recency with a short exclusive section after the
// scan, so concurrent lookups never serialize on the scan itself.
type shapeCache struct {
	mu       sync.RWMutex
	capacity int
	order    *list.List // front = most recently used; values are *shapeEntry
	byKey    map[shapeKey]*list.Element
	// onEvict, when non-nil, observes every entry that stops being current:
	// capacity evictions and put-replacements alike. It runs while the cache
	// lock is held, so it must not call back into the cache; the serving
	// layer uses it to drop derived state (pre-encoded answers) the moment
	// the tuned entry behind it disappears.
	onEvict func(shape gemm.Shape, imbalance float64)
}

// shapeKey identifies one tuned entry: the same shape tuned under different
// imbalance factors yields different optimal partitions, so both dimensions
// key the cache.
type shapeKey struct {
	shape gemm.Shape
	imb   float64 // normalized: always >= 1
}

type shapeEntry struct {
	key      shapeKey
	lmn, lk  float64 // precomputed log2(M*N), log2(K)
	part     gemm.Partition
	partWave int // part.TotalWaves(), precomputed for the transfer check
}

// normImbalance maps the "balanced" encodings (0, or anything below 1) to 1,
// the same normalization NewPredictor applies.
func normImbalance(f float64) float64 {
	if f < 1 {
		return 1
	}
	return f
}

func newShapeCache(capacity int) *shapeCache {
	if capacity < 1 {
		capacity = 1
	}
	return &shapeCache{
		capacity: capacity,
		order:    list.New(),
		byKey:    make(map[shapeKey]*list.Element, capacity),
	}
}

func logCoords(shape gemm.Shape) (lmn, lk float64) {
	return math.Log2(float64(shape.M) * float64(shape.N)), math.Log2(float64(shape.K))
}

// put inserts or replaces the tuned partition for (shape, imbalance),
// bumping it to the front and evicting from the back past capacity. The
// partition is cloned so the cache never aliases caller-owned slices.
func (c *shapeCache) put(shape gemm.Shape, imbalance float64, part gemm.Partition) {
	k := shapeKey{shape: shape, imb: normImbalance(imbalance)}
	e := &shapeEntry{key: k, part: part.Clone(), partWave: part.TotalWaves()}
	e.lmn, e.lk = logCoords(shape)
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byKey[k]; ok {
		el.Value = e
		c.order.MoveToFront(el)
		// A replacement invalidates whatever was derived from the old
		// partition, even though the key survives.
		if c.onEvict != nil {
			c.onEvict(k.shape, k.imb)
		}
		return
	}
	c.byKey[k] = c.order.PushFront(e)
	for c.order.Len() > c.capacity {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		old := oldest.Value.(*shapeEntry).key
		delete(c.byKey, old)
		if c.onEvict != nil {
			c.onEvict(old.shape, old.imb)
		}
	}
}

// snapshot returns the cached entries in least-recently-used-first order, so
// replaying them through put reproduces both contents and recency. Partitions
// are cloned: the snapshot must not alias live cache state.
func (c *shapeCache) snapshot() []CacheEntry {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]CacheEntry, 0, c.order.Len())
	for el := c.order.Back(); el != nil; el = el.Prev() {
		e := el.Value.(*shapeEntry)
		out = append(out, CacheEntry{
			Shape:     e.key.shape,
			Imbalance: e.key.imb,
			Partition: e.part.Clone(),
		})
	}
	return out
}

// anyImbalance disables the imbalance filter in nearest (legacy Lookup
// matches across all tuned entries).
const anyImbalance = -1

// nearest returns the cached entry closest to shape in log space, scanning
// under the read lock only. imbalance >= 1 restricts the scan to entries
// tuned at that factor; anyImbalance matches all. ok is false when no entry
// qualifies.
func (c *shapeCache) nearest(shape gemm.Shape, imbalance float64) (shapeEntry, bool) {
	qx, qy := logCoords(shape)
	c.mu.RLock()
	bestDist := math.Inf(1)
	var best *shapeEntry
	for el := c.order.Front(); el != nil; el = el.Next() {
		e := el.Value.(*shapeEntry)
		if imbalance != anyImbalance && e.key.imb != imbalance {
			continue
		}
		dx, dy := e.lmn-qx, e.lk-qy
		if d := dx*dx + dy*dy; d < bestDist {
			bestDist = d
			best = e
		}
	}
	c.mu.RUnlock()
	if best == nil {
		return shapeEntry{}, false
	}
	return *best, true
}

// touch marks an entry as recently used. It tolerates the entry having been
// evicted between a lookup's read section and this call.
func (c *shapeCache) touch(k shapeKey) {
	c.mu.Lock()
	if el, ok := c.byKey[k]; ok {
		c.order.MoveToFront(el)
	}
	c.mu.Unlock()
}

func (c *shapeCache) len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.order.Len()
}
