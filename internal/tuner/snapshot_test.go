package tuner

import (
	"context"
	"reflect"
	"testing"

	"repro/internal/gemm"
	"repro/internal/hw"
)

// Round trip: CacheSnapshot -> SeedCache must reproduce contents, answers,
// and LRU order on a fresh tuner.
func TestCacheSnapshotSeedRoundTrip(t *testing.T) {
	tn := NewTuner(hw.RTX4090PCIe(), 2, hw.AllReduce)
	tn.CandidateLimit = 64
	shapes := []gemm.Shape{
		{M: 2048, N: 8192, K: 4096},
		{M: 4096, N: 8192, K: 4096},
		{M: 4096, N: 8192, K: 8192},
	}
	for _, s := range shapes {
		if _, err := tn.Tune(context.Background(), s, 0); err != nil {
			t.Fatal(err)
		}
	}
	snap := tn.CacheSnapshot()
	if len(snap) != len(shapes) {
		t.Fatalf("snapshot has %d entries, tuned %d shapes", len(snap), len(shapes))
	}
	// Oldest-first: the first tuned shape leads.
	if snap[0].Shape != shapes[0] || snap[len(snap)-1].Shape != shapes[len(shapes)-1] {
		t.Fatalf("snapshot order %v does not follow tune order %v", snap, shapes)
	}

	restored := NewTunerWithCurve(tn.Plat, tn.NGPUs, tn.Prim, tn.Curve)
	restored.CandidateLimit = tn.CandidateLimit
	if err := restored.SeedCache(snap); err != nil {
		t.Fatal(err)
	}
	if restored.CacheSize() != tn.CacheSize() {
		t.Fatalf("restored cache holds %d entries, want %d", restored.CacheSize(), tn.CacheSize())
	}
	for _, s := range shapes {
		want, ok := tn.LookupAt(s, 0)
		if !ok {
			t.Fatalf("original tuner lost shape %v", s)
		}
		got, ok := restored.LookupAt(s, 0)
		if !ok {
			t.Fatalf("restored tuner cannot answer shape %v", s)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("shape %v: restored partition %v, want %v", s, got, want)
		}
	}

	// LRU order survived: seeding a bounded tuner to capacity must evict
	// the entry that was least recent in the source, not an arbitrary one.
	bounded := NewTunerWithCurve(tn.Plat, tn.NGPUs, tn.Prim, tn.Curve)
	bounded.CacheCapacity = len(shapes) - 1
	if err := bounded.SeedCache(snap); err != nil {
		t.Fatal(err)
	}
	if _, ok := bounded.LookupAt(shapes[0], 0); ok {
		// shapes[0] was the least recently tuned; a capacity-1-short seed
		// must shed exactly it. (LookupAt may still nearest-match another
		// entry whose wave count transfers, so check the cache directly.)
		if got := bounded.CacheSnapshot(); len(got) == len(shapes)-1 {
			for _, e := range got {
				if e.Shape == shapes[0] {
					t.Fatalf("seeding past capacity kept the LRU entry %v", shapes[0])
				}
			}
		}
	}
}

// A snapshot whose partition cannot fit its shape's wave count must be
// rejected atomically: no entry of the batch lands.
func TestSeedCacheRejectsCorruptEntries(t *testing.T) {
	tn := NewTuner(hw.RTX4090PCIe(), 2, hw.AllReduce)
	good := CacheEntry{Shape: gemm.Shape{M: 2048, N: 8192, K: 4096}, Imbalance: 1, Partition: gemm.Partition{1}}
	if err := tn.SeedCache([]CacheEntry{good}); err == nil {
		// The single-group {1} partition only fits a 1-wave plan; this
		// shape has many waves, so the seed must fail.
		t.Fatal("corrupt partition accepted")
	}
	if tn.CacheSize() != 0 {
		t.Fatalf("rejected seed still landed %d entries", tn.CacheSize())
	}
}

// OnEvict must observe both capacity evictions and re-tune replacements.
func TestOnEvictObservesEvictionAndReplacement(t *testing.T) {
	tn := NewTuner(hw.RTX4090PCIe(), 2, hw.AllReduce)
	tn.CandidateLimit = 64
	tn.CacheCapacity = 2
	type evt struct {
		shape gemm.Shape
		imb   float64
	}
	var events []evt
	tn.OnEvict = func(s gemm.Shape, imb float64) { events = append(events, evt{s, imb}) }
	shapes := []gemm.Shape{
		{M: 2048, N: 8192, K: 4096},
		{M: 4096, N: 8192, K: 4096},
		{M: 4096, N: 8192, K: 8192},
	}
	for _, s := range shapes {
		if _, err := tn.Tune(context.Background(), s, 0); err != nil {
			t.Fatal(err)
		}
	}
	// Capacity 2, three tunes: the first shape was evicted.
	if len(events) != 1 || events[0] != (evt{shapes[0], 1}) {
		t.Fatalf("eviction events %v, want exactly one for %v", events, shapes[0])
	}
	// Re-tuning a cached shape replaces its entry and must notify too.
	if _, err := tn.Tune(context.Background(), shapes[2], 0); err != nil {
		t.Fatal(err)
	}
	if len(events) != 2 || events[1] != (evt{shapes[2], 1}) {
		t.Fatalf("replacement events %v, want a second one for %v", events, shapes[2])
	}
}
