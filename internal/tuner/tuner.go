// Package tuner implements the real-time tuning of §4: the offline stage
// (GEMM configuration profiling and bandwidth-curve sampling), the online
// stage (design-space generation with pruning, and the Algorithm 1 latency
// predictor that replaces online profiling), plus the exhaustive-search
// oracle used to validate the predictor (Fig. 15, claim C2) and a
// nearest-neighbor cache for dynamic workloads (§4.2.2).
package tuner

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/comm"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/gemm"
	"repro/internal/hw"
	"repro/internal/sim"
	"repro/internal/stats"
)

// SampleBandwidthCurve performs the offline stage's bandwidth sampling
// (Alg. 1 line 5). It is comm.SampleCurve, re-exported under the tuner's
// historical name: the sampling itself lives below the engine so the
// analytic execution backend can sample lazily without importing the tuner.
func SampleBandwidthCurve(plat hw.Platform, nGPUs int, prim hw.Primitive, sizes []int64) *stats.Curve {
	return comm.SampleCurve(plat, nGPUs, prim, sizes)
}

// DefaultSampleSizes returns log-spaced payload sizes from 16 KiB to 1 GiB,
// dense enough that interpolation error stays small across the Fig. 8 cliff.
func DefaultSampleSizes() []int64 { return comm.DefaultSampleSizes() }

// Predictor is the Algorithm 1 latency model for one (platform, GEMM,
// primitive, parallelism) point. It sees only offline-profiled quantities:
// the GEMM duration under the contended SM count and the sampled bandwidth
// curve — never the simulator's ground-truth link model.
type Predictor struct {
	Plan     *gemm.Plan
	WaveSize int      // SMs available to the GEMM (total - comm)
	Waves    int      // T
	GEMMTime sim.Time // profiled duration at WaveSize SMs
	PerWave  sim.Time // GEMMTime / T
	Curve    *stats.Curve
	// Imbalance scales group payloads for All-to-All (§4.2.2 extends the
	// prediction by the max across GPUs).
	Imbalance float64
	TileBytes int64
}

// NewPredictor assembles a predictor from the offline profile.
func NewPredictor(plat hw.Platform, shape gemm.Shape, cfg gemm.Config, curve *stats.Curve, imbalance float64) (*Predictor, error) {
	if cfg == (gemm.Config{}) {
		cfg = gemm.DefaultConfig(shape)
	}
	plan, err := gemm.NewPlan(shape, cfg)
	if err != nil {
		return nil, err
	}
	waveSize := plat.GPU.SMs - plat.CommSMs
	cm := gemm.NewCostModel(plat.GPU)
	t := plan.Waves(waveSize)
	dur := cm.Duration(plan, waveSize)
	if imbalance < 1 {
		imbalance = 1
	}
	return &Predictor{
		Plan:      plan,
		WaveSize:  waveSize,
		Waves:     t,
		GEMMTime:  dur,
		PerWave:   dur / sim.Time(int64(t)),
		Curve:     curve,
		Imbalance: imbalance,
		TileBytes: plan.TileBytes(),
	}, nil
}

// groupBytes is the per-rank payload of a group spanning the bound.
func (p *Predictor) groupBytes(b gemm.GroupBound) float64 {
	return float64(int64(b.Tiles())*p.TileBytes) * p.Imbalance
}

// Predict estimates the overlapped latency of a partition (Alg. 1 lines
// 10-22): computation accumulates per group; each group's communication
// starts at max(accumulated computation at its signal, accumulated
// communication) and the final group's communication is appended last.
//
// The group bounds arithmetic is inlined rather than materialized through
// part.Bounds: Predict is the per-item cost of analytic sweeps, and the
// bounds slice was its only allocation. The inlined positions are exactly
// Bounds' (PosLo = WaveLo*WaveSize, PosHi clamped to the tile count), so
// predictions are bit-identical to the slice-based path.
func (p *Predictor) Predict(part gemm.Partition) (sim.Time, error) {
	if err := part.Validate(p.Waves); err != nil {
		return 0, err
	}
	var accP, accM sim.Time
	wave := 0
	for _, g := range part {
		posLo := wave * p.WaveSize
		wave += g
		posHi := wave * p.WaveSize
		if posHi > p.Plan.Tiles {
			posHi = p.Plan.Tiles
		}
		accP += p.PerWave * sim.Time(int64(g)) // t_p of this group
		bytes := float64(int64(posHi-posLo)*p.TileBytes) * p.Imbalance
		accM = sim.Max(accP, accM) + sim.Time(p.Curve.Eval(bytes))
	}
	return accM, nil
}

// GroupPrediction details one group's contribution to a predicted timeline.
type GroupPrediction struct {
	Group int
	Waves int
	Bytes int64
	// ComputeReady is the accumulated computation time when the group's
	// signal fires; CommStart/CommEnd bracket its predicted collective.
	ComputeReady, CommStart, CommEnd sim.Time
}

// PredictBreakdown returns the per-group predicted timeline of a partition
// — the intermediate state of Alg. 1's accumulation, useful for inspecting
// why a partition wins (cmd/tune and the docs use it).
func (p *Predictor) PredictBreakdown(part gemm.Partition) ([]GroupPrediction, error) {
	if err := part.Validate(p.Waves); err != nil {
		return nil, err
	}
	bounds := part.Bounds(p.Plan, p.WaveSize)
	out := make([]GroupPrediction, 0, len(bounds))
	var accP, accM sim.Time
	for g, b := range bounds {
		accP += p.PerWave * sim.Time(int64(b.WaveHi-b.WaveLo))
		start := sim.Max(accP, accM)
		tm := sim.Time(p.Curve.Eval(p.groupBytes(b)))
		accM = start + tm
		out = append(out, GroupPrediction{
			Group:        g,
			Waves:        b.WaveHi - b.WaveLo,
			Bytes:        int64(p.groupBytes(b)),
			ComputeReady: accP,
			CommStart:    start,
			CommEnd:      accM,
		})
	}
	return out, nil
}

// Candidates enumerates the pruned design space (§4.1.4): all binary
// communicate/hold decisions after each wave, constrained to |G1| <= s1 and
// |GP| <= sp. When the constrained space still exceeds limit, it falls back
// to a structured family — head in 1..s1, tail in 1..sp, equal-sized
// interior — keeping tuning real-time for very large T (an engineering
// extension the paper's shapes did not need; see DESIGN.md).
func Candidates(t, s1, sp, limit int) []gemm.Partition {
	if t < 1 {
		panic(fmt.Sprintf("tuner: invalid wave count %d", t))
	}
	if s1 < 1 || sp < 1 {
		panic(fmt.Sprintf("tuner: invalid prune bounds S1=%d SP=%d", s1, sp))
	}
	if limit <= 0 {
		limit = 4096
	}
	if t == 1 {
		return []gemm.Partition{{1}}
	}
	// Exhaustive enumeration when the pruned space is small enough:
	// 2^(T-1) binary decisions, filtered by the head/tail constraint.
	if t-1 <= 20 && 1<<(t-1) <= limit*8 {
		var out []gemm.Partition
		for mask := 0; mask < 1<<(t-1); mask++ {
			part := partitionFromMask(mask, t)
			if part[0] <= s1 && part[len(part)-1] <= sp {
				out = append(out, part)
			}
			if len(out) > limit {
				break
			}
		}
		if len(out) <= limit {
			return out
		}
	}
	// Structured fallback.
	seen := map[string]bool{}
	var out []gemm.Partition
	add := func(p gemm.Partition) {
		if p.Validate(t) != nil {
			return
		}
		if p[0] > s1 || p[len(p)-1] > sp {
			return
		}
		key := p.String()
		if !seen[key] {
			seen[key] = true
			out = append(out, p)
		}
	}
	add(gemm.SingleGroup(t))
	for head := 1; head <= s1; head++ {
		for tail := 1; tail <= sp; tail++ {
			mid := t - head - tail
			if mid < 0 {
				continue
			}
			if mid == 0 {
				add(gemm.Partition{head, tail})
				continue
			}
			for g := 1; g <= mid; g++ {
				p := gemm.Partition{head}
				p = append(p, gemm.EqualSized(mid, g)...)
				p = append(p, tail)
				add(p)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].String() < out[j].String() })
	return out
}

// partitionFromMask decodes a binary decision vector: bit i set means
// "communicate after wave i" (the last wave always communicates).
func partitionFromMask(mask, t int) gemm.Partition {
	var part gemm.Partition
	size := 0
	for w := 0; w < t; w++ {
		size++
		if w == t-1 || mask&(1<<w) != 0 {
			part = append(part, size)
			size = 0
		}
	}
	return part
}

// SearchResult reports a search outcome.
type SearchResult struct {
	Partition gemm.Partition
	// Predicted is the Alg. 1 estimate (predictive search) or the
	// measured latency (exhaustive search).
	Latency    sim.Time
	Candidates int
}

// PredictiveSearch returns the candidate with the minimum predicted latency.
// ctx cancellation stops the scan between candidates (checked every 256, as
// one prediction is sub-microsecond arithmetic) and returns ctx.Err().
func PredictiveSearch(ctx context.Context, p *Predictor, cands []gemm.Partition) (SearchResult, error) {
	if len(cands) == 0 {
		return SearchResult{}, fmt.Errorf("tuner: no candidates")
	}
	best := SearchResult{Latency: sim.MaxTime, Candidates: len(cands)}
	for i, c := range cands {
		if i&255 == 0 {
			if err := ctx.Err(); err != nil {
				return SearchResult{}, err
			}
		}
		t, err := p.Predict(c)
		if err != nil {
			return SearchResult{}, err
		}
		if t < best.Latency {
			best.Latency = t
			best.Partition = c.Clone()
		}
	}
	return best, nil
}

// ExhaustiveSearch runs every candidate on the simulator (the paper's
// online-profiling oracle, >100x slower than prediction) and returns the
// measured optimum. Candidates execute through the batch engine: one run per
// partition, fanned across the worker pool, with the same winner a serial
// scan would pick (ties break toward the earlier candidate). ctx
// cancellation stops the batch between candidate runs.
func ExhaustiveSearch(ctx context.Context, o core.Options, cands []gemm.Partition) (SearchResult, error) {
	if len(cands) == 0 {
		return SearchResult{}, fmt.Errorf("tuner: no candidates")
	}
	runs := make([]core.Options, len(cands))
	for i, c := range cands {
		run := o
		run.Partition = c.Clone()
		runs[i] = run
	}
	results, err := engine.Default().Batch(ctx, runs)
	if err != nil {
		return SearchResult{}, err
	}
	best := SearchResult{Latency: sim.MaxTime, Candidates: len(cands)}
	for i, res := range results {
		if res.Latency < best.Latency {
			best.Latency = res.Latency
			best.Partition = cands[i].Clone()
		}
	}
	return best, nil
}

// PruneBounds are the paper's evaluation settings (§4.1.4).
const (
	DefaultS1 = 2
	DefaultSP = 4
)

// Tuner bundles the offline profile and the online search with a
// nearest-neighbor cache for dynamic shapes (§4.2.2: pre-search
// representative sizes, match unseen ones at runtime). All methods are safe
// for concurrent use: the predictor path is pure, and the shape cache is
// RWMutex-guarded, so whole grids can tune in parallel and a long-lived
// service can serve Lookup while background goroutines Tune misses.
type Tuner struct {
	Plat  hw.Platform
	NGPUs int
	Prim  hw.Primitive
	Curve *stats.Curve

	// CandidateLimit bounds the search space per shape.
	CandidateLimit int
	// CacheCapacity bounds the shape cache (<= 0 selects
	// DefaultShapeCacheCapacity). It must be set before the first Tune or
	// Lookup; later changes have no effect.
	CacheCapacity int
	// Workers bounds TuneGrid's fan-out (<= 0 selects the default
	// engine's worker width). A serving layer sets this to its own
	// engine's width so one Config.Workers knob bounds all CPU use.
	Workers int
	// OnEvict, when set before the first Tune or Lookup, observes every
	// tuned entry that stops being current — capacity evictions and
	// re-tune replacements alike — so a layer caching state derived from
	// an entry (the serving layer's pre-encoded answers) can invalidate in
	// lockstep. It runs under the cache lock: it must be fast and must not
	// call back into this tuner.
	OnEvict func(shape gemm.Shape, imbalance float64)

	cacheOnce sync.Once
	cache     *shapeCache
}

// NewTuner runs the offline stage (bandwidth sampling) and returns a ready
// tuner.
func NewTuner(plat hw.Platform, nGPUs int, prim hw.Primitive) *Tuner {
	return NewTunerWithCurve(plat, nGPUs, prim, SampleBandwidthCurve(plat, nGPUs, prim, nil))
}

// NewTunerWithCurve builds a tuner around an already-sampled bandwidth curve,
// skipping the offline stage. Sharded deployments use it to run the sampling
// once per (platform, primitive) and hand the same immutable curve to every
// replica; the curve must have been sampled on the same platform, GPU count,
// and primitive, or predictions will be silently wrong.
func NewTunerWithCurve(plat hw.Platform, nGPUs int, prim hw.Primitive, curve *stats.Curve) *Tuner {
	return &Tuner{
		Plat:           plat,
		NGPUs:          nGPUs,
		Prim:           prim,
		Curve:          curve,
		CandidateLimit: 4096,
	}
}

// shapes returns the lazily built shape cache, so a zero-constructed Tuner
// (tests build them literally) still gets a bounded, concurrency-safe store.
func (t *Tuner) shapes() *shapeCache {
	t.cacheOnce.Do(func() {
		capacity := t.CacheCapacity
		if capacity <= 0 {
			capacity = DefaultShapeCacheCapacity
		}
		t.cache = newShapeCache(capacity)
		t.cache.onEvict = t.OnEvict
	})
	return t.cache
}

// CacheEntry is one tuned shape-cache row in portable form: the key the
// entry answers and the partition it holds. Imbalance is stored normalized
// (>= 1), exactly as the cache keys it.
type CacheEntry struct {
	Shape     gemm.Shape
	Imbalance float64
	Partition gemm.Partition
}

// CacheSnapshot exports the tuned entries in least-recently-used-first
// order, so replaying them through SeedCache reproduces both the contents
// and the LRU recency of this cache. The snapshot aliases nothing: it stays
// valid however the tuner evolves afterwards.
func (t *Tuner) CacheSnapshot() []CacheEntry {
	return t.shapes().snapshot()
}

// SeedCache replays previously exported entries (least recently used first)
// into the cache — the warm-restore half of CacheSnapshot. Every entry is
// validated the way Lookup's transfer check would: the partition must total
// exactly the wave count of the entry's shape on this tuner's platform, so a
// corrupt or foreign snapshot is rejected before any entry lands. Entries
// beyond the cache capacity evict in the usual LRU order.
func (t *Tuner) SeedCache(entries []CacheEntry) error {
	waveSize := t.Plat.GPU.SMs - t.Plat.CommSMs
	for _, e := range entries {
		plan, err := gemm.NewPlan(e.Shape, gemm.DefaultConfig(e.Shape))
		if err != nil {
			return fmt.Errorf("tuner: seeding shape %v: %w", e.Shape, err)
		}
		waves := plan.Waves(waveSize)
		if err := e.Partition.Validate(waves); err != nil {
			return fmt.Errorf("tuner: seeding shape %v: partition %v does not fit %d waves: %w", e.Shape, e.Partition, waves, err)
		}
	}
	for _, e := range entries {
		t.shapes().put(e.Shape, e.Imbalance, e.Partition)
	}
	return nil
}

// Tune runs the online stage for one GEMM size and caches the result.
// Re-tuning a shape replaces its cache entry rather than growing the cache.
// A cancelled ctx aborts the search before any cache write, so a cancelled
// Tune never installs a partial result.
func (t *Tuner) Tune(ctx context.Context, shape gemm.Shape, imbalance float64) (gemm.Partition, error) {
	pred, err := NewPredictor(t.Plat, shape, gemm.Config{}, t.Curve, imbalance)
	if err != nil {
		return nil, err
	}
	cands := Candidates(pred.Waves, DefaultS1, DefaultSP, t.CandidateLimit)
	res, err := PredictiveSearch(ctx, pred, cands)
	if err != nil {
		return nil, err
	}
	t.shapes().put(shape, imbalance, res.Partition)
	return res.Partition, nil
}

// TuneGrid tunes every shape, fanning the predictive searches across a
// bounded worker pool sized like engine.Batch's (the engine's worker width).
// results[i] answers shapes[i] regardless of scheduling; the lowest-index
// error is returned, matching a serial loop that stops at the first failure.
// ctx cancellation stops the grid between shapes (workers check before each
// claim) and returns the bare ctx.Err(); shapes already tuned stay cached.
func (t *Tuner) TuneGrid(ctx context.Context, shapes []gemm.Shape, imbalance float64) ([]gemm.Partition, error) {
	results := make([]gemm.Partition, len(shapes))
	errs := make([]error, len(shapes))
	workers := t.Workers
	if workers <= 0 {
		workers = engine.Default().Workers()
	}
	if workers > len(shapes) {
		workers = len(shapes)
	}
	if workers <= 1 {
		for i, s := range shapes {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			if results[i], errs[i] = t.Tune(ctx, s, imbalance); errs[i] != nil {
				if ctxErr := ctx.Err(); ctxErr != nil {
					return nil, ctxErr
				}
				return nil, fmt.Errorf("tuner: shape %v: %w", s, errs[i])
			}
		}
		return results, nil
	}
	var next atomic.Int64
	next.Store(-1)
	var failed atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				// Fail fast, like engine.Batch: once any shape errors
				// (or the context is done), stop claiming new indices. A
				// claimed index always executes, and claims are issued
				// in increasing order, so every index below a failing
				// one records its result — the lowest-index error stays
				// deterministic and the cache does not keep filling.
				if failed.Load() || ctx.Err() != nil {
					return
				}
				i := int(next.Add(1))
				if i >= len(shapes) {
					return
				}
				if results[i], errs[i] = t.Tune(ctx, shapes[i], imbalance); errs[i] != nil {
					failed.Store(true)
				}
			}
		}()
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("tuner: shape %v: %w", shapes[i], err)
		}
	}
	return results, nil
}

// Lookup performs nearest-neighbor matching against previously tuned shapes
// in (log M·N, log K) space, ignoring the imbalance the entries were tuned
// at; ok is false when the cache is empty or the nearest neighbor's wave
// count is incompatible with the query shape. Imbalance-sensitive callers
// (the serving layer) use LookupAt.
func (t *Tuner) Lookup(shape gemm.Shape) (gemm.Partition, bool) {
	return t.lookup(shape, anyImbalance)
}

// LookupAt is Lookup restricted to entries tuned at the given imbalance
// factor (0 and anything below 1 normalize to 1, like Tune): a partition
// tuned for balanced traffic must not answer a heavily skewed query, whose
// optimum can differ.
func (t *Tuner) LookupAt(shape gemm.Shape, imbalance float64) (gemm.Partition, bool) {
	return t.lookup(shape, normImbalance(imbalance))
}

func (t *Tuner) lookup(shape gemm.Shape, imbalance float64) (gemm.Partition, bool) {
	best, ok := t.shapes().nearest(shape, imbalance)
	if !ok {
		return nil, false
	}
	// The cached partition only transfers if the wave counts agree.
	plan, err := gemm.NewPlan(shape, gemm.DefaultConfig(shape))
	if err != nil {
		return nil, false
	}
	waveSize := t.Plat.GPU.SMs - t.Plat.CommSMs
	if best.partWave != plan.Waves(waveSize) {
		return nil, false
	}
	t.shapes().touch(best.key)
	return best.part.Clone(), true
}

// CacheSize reports the number of tuned shapes held.
func (t *Tuner) CacheSize() int { return t.shapes().len() }
