package tuner

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/gemm"
	"repro/internal/hw"
)

func TestSampleBandwidthCurveMonotone(t *testing.T) {
	c := SampleBandwidthCurve(hw.RTX4090PCIe(), 4, hw.AllReduce, nil)
	pts := c.Points()
	if len(pts) < 10 {
		t.Fatalf("only %d sample points", len(pts))
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].Y <= pts[i-1].Y {
			t.Fatalf("sampled latency not increasing at %v", pts[i].X)
		}
	}
}

func TestPartitionFromMask(t *testing.T) {
	cases := []struct {
		mask, t int
		want    string
	}{
		{0, 5, "(5)"},
		{0b0101, 5, "(1, 2, 2)"},
		{0b0010, 5, "(2, 3)"},
		{0b1111, 5, "(1, 1, 1, 1, 1)"},
	}
	for _, c := range cases {
		if got := partitionFromMask(c.mask, c.t).String(); got != c.want {
			t.Errorf("mask %b: got %s, want %s", c.mask, got, c.want)
		}
	}
}

func TestCandidatesExhaustiveSmallT(t *testing.T) {
	// T=5, S1=2, SP=4: of the 16 binary choices, those with |G1|<=2 and
	// |GP|<=4 survive.
	cands := Candidates(5, 2, 4, 4096)
	if len(cands) == 0 {
		t.Fatal("no candidates")
	}
	seen := map[string]bool{}
	for _, c := range cands {
		if err := c.Validate(5); err != nil {
			t.Fatalf("invalid candidate %v: %v", c, err)
		}
		if c[0] > 2 || c[len(c)-1] > 4 {
			t.Fatalf("candidate %v violates pruning", c)
		}
		if seen[c.String()] {
			t.Fatalf("duplicate candidate %v", c)
		}
		seen[c.String()] = true
	}
	// The paper's example partitions must be present.
	for _, want := range []string{"(1, 2, 2)", "(2, 3)"} {
		if !seen[want] {
			t.Errorf("missing paper partition %s", want)
		}
	}
	// And the all-up-front (5) must be pruned (|G1|=5 > 2).
	if seen["(5)"] {
		t.Error("unpruned |G1|=5 candidate")
	}
}

func TestCandidatesLargeTBounded(t *testing.T) {
	cands := Candidates(80, DefaultS1, DefaultSP, 512)
	if len(cands) == 0 || len(cands) > 512 {
		t.Fatalf("large-T candidates = %d, want (0, 512]", len(cands))
	}
	for _, c := range cands {
		if err := c.Validate(80); err != nil {
			t.Fatalf("invalid candidate %v: %v", c, err)
		}
	}
}

func TestCandidatesPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"t":  func() { Candidates(0, 1, 1, 0) },
		"s1": func() { Candidates(4, 0, 1, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestPredictorAgainstSimulator(t *testing.T) {
	plat := hw.RTX4090PCIe()
	shape := gemm.Shape{M: 4096, N: 8192, K: 8192}
	curve := SampleBandwidthCurve(plat, 2, hw.AllReduce, nil)
	pred, err := NewPredictor(plat, shape, gemm.Config{}, curve, 1)
	if err != nil {
		t.Fatal(err)
	}
	cands := Candidates(pred.Waves, DefaultS1, DefaultSP, 256)
	var errs []float64
	for _, c := range cands[:min(len(cands), 24)] {
		want, err := pred.Predict(c)
		if err != nil {
			t.Fatal(err)
		}
		res, err := core.Run(core.Options{Plat: plat, NGPUs: 2, Shape: shape, Prim: hw.AllReduce, Partition: c})
		if err != nil {
			t.Fatal(err)
		}
		// Paper §6.5: actual is always slightly above predicted.
		if res.Latency < want {
			t.Fatalf("partition %v: measured %v below prediction %v", c, res.Latency, want)
		}
		e := float64(res.Latency-want) / float64(res.Latency)
		errs = append(errs, e)
		if e > 0.15 {
			t.Fatalf("partition %v: prediction error %.1f%% too large", c, e*100)
		}
	}
	var mean float64
	for _, e := range errs {
		mean += e
	}
	mean /= float64(len(errs))
	// Paper reports 3.41%/3.44% average error; accept anything under 8%.
	if mean > 0.08 {
		t.Fatalf("mean prediction error %.2f%%, want < 8%%", mean*100)
	}
}

// Claim C2: the predictively searched partition achieves >99% of the
// exhaustively searched optimum.
func TestPredictiveSearchNearOptimal(t *testing.T) {
	plat := hw.RTX4090PCIe()
	shapes := []gemm.Shape{
		{M: 2048, N: 8192, K: 8192},
		{M: 4096, N: 8192, K: 4096},
	}
	for _, shape := range shapes {
		curve := SampleBandwidthCurve(plat, 4, hw.AllReduce, nil)
		pred, err := NewPredictor(plat, shape, gemm.Config{}, curve, 1)
		if err != nil {
			t.Fatal(err)
		}
		cands := Candidates(pred.Waves, DefaultS1, DefaultSP, 256)
		opts := core.Options{Plat: plat, NGPUs: 4, Shape: shape, Prim: hw.AllReduce}

		predRes, err := PredictiveSearch(pred, cands)
		if err != nil {
			t.Fatal(err)
		}
		oracle, err := ExhaustiveSearch(opts, cands)
		if err != nil {
			t.Fatal(err)
		}
		run := opts
		run.Partition = predRes.Partition
		actual, err := core.Run(run)
		if err != nil {
			t.Fatal(err)
		}
		quality := float64(oracle.Latency) / float64(actual.Latency)
		if quality < 0.97 {
			t.Fatalf("%v: searched partition %v reaches %.1f%% of optimum %v, want > 97%%",
				shape, predRes.Partition, quality*100, oracle.Partition)
		}
	}
}

func TestPredictorRejectsBadPartition(t *testing.T) {
	plat := hw.A800NVLink()
	curve := SampleBandwidthCurve(plat, 2, hw.AllReduce, nil)
	pred, err := NewPredictor(plat, gemm.Shape{M: 2048, N: 8192, K: 4096}, gemm.Config{}, curve, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pred.Predict(gemm.Partition{1}); err == nil {
		t.Fatal("wrong wave total accepted")
	}
}

func TestTunerCacheAndLookup(t *testing.T) {
	tn := NewTuner(hw.RTX4090PCIe(), 2, hw.AllReduce)
	tn.CandidateLimit = 128
	shape := gemm.Shape{M: 2048, N: 8192, K: 8192}
	part, err := tn.Tune(shape, 1)
	if err != nil {
		t.Fatal(err)
	}
	if tn.CacheSize() != 1 {
		t.Fatalf("cache size = %d", tn.CacheSize())
	}
	// Same M*N and K: exact hit.
	got, ok := tn.Lookup(shape)
	if !ok || got.String() != part.String() {
		t.Fatalf("Lookup(%v) = %v, %v", shape, got, ok)
	}
	// A nearby shape with the same wave count matches too.
	near := gemm.Shape{M: 2048, N: 8192, K: 6144}
	if _, ok := tn.Lookup(near); !ok {
		t.Fatal("nearest-neighbor lookup failed for same-wave-count shape")
	}
	// A much larger shape has a different wave count: no transfer.
	if _, ok := tn.Lookup(gemm.Shape{M: 16384, N: 8192, K: 8192}); ok {
		t.Fatal("lookup transferred a partition across incompatible wave counts")
	}
}

func TestLookupEmptyCache(t *testing.T) {
	tn := &Tuner{Plat: hw.RTX4090PCIe(), NGPUs: 2, Prim: hw.AllReduce}
	if _, ok := tn.Lookup(gemm.Shape{M: 128, N: 128, K: 128}); ok {
		t.Fatal("empty cache returned a hit")
	}
}

// The tuned partition must beat both the per-wave baseline and the single
// group in most cases — §4.1.1 reports 17.34% average degradation for the
// untuned per-wave baseline.
func TestTunedBeatsPerWaveBaseline(t *testing.T) {
	plat := hw.RTX4090PCIe()
	shape := gemm.Shape{M: 4096, N: 8192, K: 4096}
	tn := NewTuner(plat, 4, hw.AllReduce)
	tn.CandidateLimit = 256
	part, err := tn.Tune(shape, 1)
	if err != nil {
		t.Fatal(err)
	}
	opts := core.Options{Plat: plat, NGPUs: 4, Shape: shape, Prim: hw.AllReduce}
	tuned := opts
	tuned.Partition = part
	tunedRes, err := core.Run(tuned)
	if err != nil {
		t.Fatal(err)
	}
	base, err := core.Run(opts) // nil partition = per-wave
	if err != nil {
		t.Fatal(err)
	}
	if tunedRes.Latency > base.Latency {
		t.Fatalf("tuned %v (%v) lost to per-wave baseline (%v)", part, tunedRes.Latency, base.Latency)
	}
}

func TestPredictionErrorDistribution(t *testing.T) {
	// A reduced version of Fig. 15: prediction errors across shapes and
	// partitions must average in the single digits with a tight CDF.
	plat := hw.A800NVLink()
	var errsPct []float64
	for _, shape := range []gemm.Shape{
		{M: 2048, N: 8192, K: 4096},
		{M: 4096, N: 8192, K: 8192},
	} {
		curve := SampleBandwidthCurve(plat, 4, hw.ReduceScatter, nil)
		pred, err := NewPredictor(plat, shape, gemm.Config{}, curve, 1)
		if err != nil {
			t.Fatal(err)
		}
		for _, c := range Candidates(pred.Waves, DefaultS1, DefaultSP, 64)[:8] {
			want, err := pred.Predict(c)
			if err != nil {
				t.Fatal(err)
			}
			res, err := core.Run(core.Options{Plat: plat, NGPUs: 4, Shape: shape, Prim: hw.ReduceScatter, Partition: c})
			if err != nil {
				t.Fatal(err)
			}
			errsPct = append(errsPct, 100*math.Abs(float64(res.Latency-want))/float64(res.Latency))
		}
	}
	var mean float64
	for _, e := range errsPct {
		mean += e
	}
	mean /= float64(len(errsPct))
	if mean > 8 {
		t.Fatalf("mean |error| = %.2f%%, want single digits (paper: 3.4%%)", mean)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func TestPredictBreakdownConsistent(t *testing.T) {
	plat := hw.RTX4090PCIe()
	curve := SampleBandwidthCurve(plat, 2, hw.AllReduce, nil)
	pred, err := NewPredictor(plat, gemm.Shape{M: 4096, N: 8192, K: 8192}, gemm.Config{}, curve, 1)
	if err != nil {
		t.Fatal(err)
	}
	part := gemm.EqualSized(pred.Waves, 3)
	groups, err := pred.PredictBreakdown(part)
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) != part.Groups() {
		t.Fatalf("groups = %d, want %d", len(groups), part.Groups())
	}
	total, err := pred.Predict(part)
	if err != nil {
		t.Fatal(err)
	}
	last := groups[len(groups)-1]
	if last.CommEnd != total {
		t.Fatalf("breakdown end %v != Predict %v", last.CommEnd, total)
	}
	for i, g := range groups {
		if g.CommStart < g.ComputeReady {
			t.Fatalf("group %d comm starts before its data is ready", i)
		}
		if i > 0 && g.CommStart < groups[i-1].CommEnd {
			t.Fatalf("group %d comm overlaps group %d on the comm stream", i, i-1)
		}
	}
	if _, err := pred.PredictBreakdown(gemm.Partition{1}); err == nil {
		t.Fatal("bad partition accepted")
	}
}
