package tuner

import (
	"context"
	"math"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/gemm"
	"repro/internal/hw"
)

func TestSampleBandwidthCurveMonotone(t *testing.T) {
	c := SampleBandwidthCurve(hw.RTX4090PCIe(), 4, hw.AllReduce, nil)
	pts := c.Points()
	if len(pts) < 10 {
		t.Fatalf("only %d sample points", len(pts))
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].Y <= pts[i-1].Y {
			t.Fatalf("sampled latency not increasing at %v", pts[i].X)
		}
	}
}

func TestPartitionFromMask(t *testing.T) {
	cases := []struct {
		mask, t int
		want    string
	}{
		{0, 5, "(5)"},
		{0b0101, 5, "(1, 2, 2)"},
		{0b0010, 5, "(2, 3)"},
		{0b1111, 5, "(1, 1, 1, 1, 1)"},
	}
	for _, c := range cases {
		if got := partitionFromMask(c.mask, c.t).String(); got != c.want {
			t.Errorf("mask %b: got %s, want %s", c.mask, got, c.want)
		}
	}
}

func TestCandidatesExhaustiveSmallT(t *testing.T) {
	// T=5, S1=2, SP=4: of the 16 binary choices, those with |G1|<=2 and
	// |GP|<=4 survive.
	cands := Candidates(5, 2, 4, 4096)
	if len(cands) == 0 {
		t.Fatal("no candidates")
	}
	seen := map[string]bool{}
	for _, c := range cands {
		if err := c.Validate(5); err != nil {
			t.Fatalf("invalid candidate %v: %v", c, err)
		}
		if c[0] > 2 || c[len(c)-1] > 4 {
			t.Fatalf("candidate %v violates pruning", c)
		}
		if seen[c.String()] {
			t.Fatalf("duplicate candidate %v", c)
		}
		seen[c.String()] = true
	}
	// The paper's example partitions must be present.
	for _, want := range []string{"(1, 2, 2)", "(2, 3)"} {
		if !seen[want] {
			t.Errorf("missing paper partition %s", want)
		}
	}
	// And the all-up-front (5) must be pruned (|G1|=5 > 2).
	if seen["(5)"] {
		t.Error("unpruned |G1|=5 candidate")
	}
}

func TestCandidatesLargeTBounded(t *testing.T) {
	cands := Candidates(80, DefaultS1, DefaultSP, 512)
	if len(cands) == 0 || len(cands) > 512 {
		t.Fatalf("large-T candidates = %d, want (0, 512]", len(cands))
	}
	for _, c := range cands {
		if err := c.Validate(80); err != nil {
			t.Fatalf("invalid candidate %v: %v", c, err)
		}
	}
}

func TestCandidatesPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"t":  func() { Candidates(0, 1, 1, 0) },
		"s1": func() { Candidates(4, 0, 1, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestPredictorAgainstSimulator(t *testing.T) {
	plat := hw.RTX4090PCIe()
	shape := gemm.Shape{M: 4096, N: 8192, K: 8192}
	curve := SampleBandwidthCurve(plat, 2, hw.AllReduce, nil)
	pred, err := NewPredictor(plat, shape, gemm.Config{}, curve, 1)
	if err != nil {
		t.Fatal(err)
	}
	cands := Candidates(pred.Waves, DefaultS1, DefaultSP, 256)
	var errs []float64
	for _, c := range cands[:min(len(cands), 24)] {
		want, err := pred.Predict(c)
		if err != nil {
			t.Fatal(err)
		}
		res, err := core.Run(context.Background(), core.Options{Plat: plat, NGPUs: 2, Shape: shape, Prim: hw.AllReduce, Partition: c})
		if err != nil {
			t.Fatal(err)
		}
		// Paper §6.5: actual is always slightly above predicted.
		if res.Latency < want {
			t.Fatalf("partition %v: measured %v below prediction %v", c, res.Latency, want)
		}
		e := float64(res.Latency-want) / float64(res.Latency)
		errs = append(errs, e)
		if e > 0.15 {
			t.Fatalf("partition %v: prediction error %.1f%% too large", c, e*100)
		}
	}
	var mean float64
	for _, e := range errs {
		mean += e
	}
	mean /= float64(len(errs))
	// Paper reports 3.41%/3.44% average error; accept anything under 8%.
	if mean > 0.08 {
		t.Fatalf("mean prediction error %.2f%%, want < 8%%", mean*100)
	}
}

// Claim C2: the predictively searched partition achieves >99% of the
// exhaustively searched optimum.
func TestPredictiveSearchNearOptimal(t *testing.T) {
	plat := hw.RTX4090PCIe()
	shapes := []gemm.Shape{
		{M: 2048, N: 8192, K: 8192},
		{M: 4096, N: 8192, K: 4096},
	}
	for _, shape := range shapes {
		curve := SampleBandwidthCurve(plat, 4, hw.AllReduce, nil)
		pred, err := NewPredictor(plat, shape, gemm.Config{}, curve, 1)
		if err != nil {
			t.Fatal(err)
		}
		cands := Candidates(pred.Waves, DefaultS1, DefaultSP, 256)
		opts := core.Options{Plat: plat, NGPUs: 4, Shape: shape, Prim: hw.AllReduce}

		predRes, err := PredictiveSearch(context.Background(), pred, cands)
		if err != nil {
			t.Fatal(err)
		}
		oracle, err := ExhaustiveSearch(context.Background(), opts, cands)
		if err != nil {
			t.Fatal(err)
		}
		run := opts
		run.Partition = predRes.Partition
		actual, err := core.Run(context.Background(), run)
		if err != nil {
			t.Fatal(err)
		}
		quality := float64(oracle.Latency) / float64(actual.Latency)
		if quality < 0.97 {
			t.Fatalf("%v: searched partition %v reaches %.1f%% of optimum %v, want > 97%%",
				shape, predRes.Partition, quality*100, oracle.Partition)
		}
	}
}

func TestPredictorRejectsBadPartition(t *testing.T) {
	plat := hw.A800NVLink()
	curve := SampleBandwidthCurve(plat, 2, hw.AllReduce, nil)
	pred, err := NewPredictor(plat, gemm.Shape{M: 2048, N: 8192, K: 4096}, gemm.Config{}, curve, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pred.Predict(gemm.Partition{1}); err == nil {
		t.Fatal("wrong wave total accepted")
	}
}

func TestTunerCacheAndLookup(t *testing.T) {
	tn := NewTuner(hw.RTX4090PCIe(), 2, hw.AllReduce)
	tn.CandidateLimit = 128
	shape := gemm.Shape{M: 2048, N: 8192, K: 8192}
	part, err := tn.Tune(context.Background(), shape, 1)
	if err != nil {
		t.Fatal(err)
	}
	if tn.CacheSize() != 1 {
		t.Fatalf("cache size = %d", tn.CacheSize())
	}
	// Same M*N and K: exact hit.
	got, ok := tn.Lookup(shape)
	if !ok || got.String() != part.String() {
		t.Fatalf("Lookup(%v) = %v, %v", shape, got, ok)
	}
	// A nearby shape with the same wave count matches too.
	near := gemm.Shape{M: 2048, N: 8192, K: 6144}
	if _, ok := tn.Lookup(near); !ok {
		t.Fatal("nearest-neighbor lookup failed for same-wave-count shape")
	}
	// A much larger shape has a different wave count: no transfer.
	if _, ok := tn.Lookup(gemm.Shape{M: 16384, N: 8192, K: 8192}); ok {
		t.Fatal("lookup transferred a partition across incompatible wave counts")
	}
}

// Regression for the pre-serve cache: Tune used t.cache = append(t.cache,
// ...), which races (and corrupts the slice) under concurrent use. The
// RWMutex-guarded cache must let whole grids tune in parallel; run under
// -race this test fails on the old code.
func TestTunerConcurrentTune(t *testing.T) {
	tn := NewTuner(hw.RTX4090PCIe(), 2, hw.AllReduce)
	tn.CandidateLimit = 64
	shapes := make([]gemm.Shape, 16)
	for i := range shapes {
		shapes[i] = gemm.Shape{M: 1024 * (i + 1), N: 8192, K: 4096}
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < len(shapes); i += 8 {
				if _, err := tn.Tune(context.Background(), shapes[i], 1); err != nil {
					t.Error(err)
					return
				}
				// Interleave lookups with tunes: the serving path reads
				// while background tuning writes.
				tn.Lookup(shapes[i])
			}
		}(w)
	}
	wg.Wait()
	if got := tn.CacheSize(); got != len(shapes) {
		t.Fatalf("cache size = %d, want %d", got, len(shapes))
	}
}

// TuneGrid must agree with a serial Tune loop: same partitions, same cache.
func TestTuneGridMatchesSerial(t *testing.T) {
	plat := hw.RTX4090PCIe()
	shapes := []gemm.Shape{
		{M: 2048, N: 8192, K: 4096},
		{M: 4096, N: 8192, K: 4096},
		{M: 4096, N: 8192, K: 8192},
		{M: 8192, N: 8192, K: 4096},
	}
	serial := NewTuner(plat, 2, hw.AllReduce)
	serial.CandidateLimit = 64
	want := make([]gemm.Partition, len(shapes))
	for i, s := range shapes {
		p, err := serial.Tune(context.Background(), s, 1)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = p
	}
	grid := &Tuner{Plat: plat, NGPUs: 2, Prim: hw.AllReduce, Curve: serial.Curve, CandidateLimit: 64}
	got, err := grid.TuneGrid(context.Background(), shapes, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := range shapes {
		if got[i].String() != want[i].String() {
			t.Errorf("shape %v: grid tuned %v, serial %v", shapes[i], got[i], want[i])
		}
	}
	if grid.CacheSize() != len(shapes) {
		t.Fatalf("grid cache size = %d, want %d", grid.CacheSize(), len(shapes))
	}
}

// The shape cache is capacity-bounded with least-recently-used eviction, and
// re-tuning a shape replaces its entry instead of growing the cache.
func TestTunerCacheBounded(t *testing.T) {
	tn := NewTuner(hw.RTX4090PCIe(), 2, hw.AllReduce)
	tn.CandidateLimit = 64
	shape := gemm.Shape{M: 2048, N: 8192, K: 8192}
	for i := 0; i < 3; i++ {
		if _, err := tn.Tune(context.Background(), shape, 1); err != nil {
			t.Fatal(err)
		}
	}
	if got := tn.CacheSize(); got != 1 {
		t.Fatalf("re-tuning one shape grew the cache to %d entries", got)
	}

	bounded := &Tuner{Plat: tn.Plat, NGPUs: 2, Prim: hw.AllReduce, Curve: tn.Curve,
		CandidateLimit: 64, CacheCapacity: 2}
	a := gemm.Shape{M: 2048, N: 8192, K: 4096}
	b := gemm.Shape{M: 4096, N: 8192, K: 4096}
	c := gemm.Shape{M: 8192, N: 8192, K: 4096}
	for _, s := range []gemm.Shape{a, b} {
		if _, err := bounded.Tune(context.Background(), s, 1); err != nil {
			t.Fatal(err)
		}
	}
	// Touch a so that b is the LRU entry when c evicts.
	if _, ok := bounded.Lookup(a); !ok {
		t.Fatal("lookup of tuned shape a missed")
	}
	if _, err := bounded.Tune(context.Background(), c, 1); err != nil {
		t.Fatal(err)
	}
	if got := bounded.CacheSize(); got != 2 {
		t.Fatalf("cache size = %d, want capacity 2", got)
	}
	// b was evicted: its nearest neighbor is now a different shape, and the
	// exact entries for a and c must survive.
	for _, s := range []gemm.Shape{a, c} {
		if _, ok := bounded.Lookup(s); !ok {
			t.Errorf("lookup of retained shape %v missed", s)
		}
	}
}

// One shape tuned under different imbalance factors holds one cache entry
// per factor, and LookupAt only transfers within a factor — a partition
// tuned for balanced traffic must not answer a heavily skewed query.
func TestLookupAtSeparatesImbalance(t *testing.T) {
	tn := NewTuner(hw.RTX4090PCIe(), 4, hw.AllToAll)
	tn.CandidateLimit = 128
	shape := gemm.Shape{M: 4096, N: 8192, K: 4096}
	balanced, err := tn.Tune(context.Background(), shape, 1)
	if err != nil {
		t.Fatal(err)
	}
	skewed, err := tn.Tune(context.Background(), shape, 8)
	if err != nil {
		t.Fatal(err)
	}
	if tn.CacheSize() != 2 {
		t.Fatalf("cache size = %d, want one entry per imbalance", tn.CacheSize())
	}
	got, ok := tn.LookupAt(shape, 1)
	if !ok || got.String() != balanced.String() {
		t.Fatalf("LookupAt(1) = %v, %v; want %v", got, ok, balanced)
	}
	got, ok = tn.LookupAt(shape, 8)
	if !ok || got.String() != skewed.String() {
		t.Fatalf("LookupAt(8) = %v, %v; want %v", got, ok, skewed)
	}
	if _, ok := tn.LookupAt(shape, 3); ok {
		t.Fatal("LookupAt(3) transferred a partition tuned at a different imbalance")
	}
	// 0 and 1 both mean balanced, matching Tune's normalization.
	if got, ok := tn.LookupAt(shape, 0); !ok || got.String() != balanced.String() {
		t.Fatalf("LookupAt(0) = %v, %v; want the balanced entry", got, ok)
	}
	// The legacy imbalance-agnostic Lookup still matches something.
	if _, ok := tn.Lookup(shape); !ok {
		t.Fatal("imbalance-agnostic Lookup missed")
	}
}

func TestLookupEmptyCache(t *testing.T) {
	tn := &Tuner{Plat: hw.RTX4090PCIe(), NGPUs: 2, Prim: hw.AllReduce}
	if _, ok := tn.Lookup(gemm.Shape{M: 128, N: 128, K: 128}); ok {
		t.Fatal("empty cache returned a hit")
	}
}

// The tuned partition must beat both the per-wave baseline and the single
// group in most cases — §4.1.1 reports 17.34% average degradation for the
// untuned per-wave baseline.
func TestTunedBeatsPerWaveBaseline(t *testing.T) {
	plat := hw.RTX4090PCIe()
	shape := gemm.Shape{M: 4096, N: 8192, K: 4096}
	tn := NewTuner(plat, 4, hw.AllReduce)
	tn.CandidateLimit = 256
	part, err := tn.Tune(context.Background(), shape, 1)
	if err != nil {
		t.Fatal(err)
	}
	opts := core.Options{Plat: plat, NGPUs: 4, Shape: shape, Prim: hw.AllReduce}
	tuned := opts
	tuned.Partition = part
	tunedRes, err := core.Run(context.Background(), tuned)
	if err != nil {
		t.Fatal(err)
	}
	base, err := core.Run(context.Background(), opts) // nil partition = per-wave
	if err != nil {
		t.Fatal(err)
	}
	if tunedRes.Latency > base.Latency {
		t.Fatalf("tuned %v (%v) lost to per-wave baseline (%v)", part, tunedRes.Latency, base.Latency)
	}
}

func TestPredictionErrorDistribution(t *testing.T) {
	// A reduced version of Fig. 15: prediction errors across shapes and
	// partitions must average in the single digits with a tight CDF.
	plat := hw.A800NVLink()
	var errsPct []float64
	for _, shape := range []gemm.Shape{
		{M: 2048, N: 8192, K: 4096},
		{M: 4096, N: 8192, K: 8192},
	} {
		curve := SampleBandwidthCurve(plat, 4, hw.ReduceScatter, nil)
		pred, err := NewPredictor(plat, shape, gemm.Config{}, curve, 1)
		if err != nil {
			t.Fatal(err)
		}
		for _, c := range Candidates(pred.Waves, DefaultS1, DefaultSP, 64)[:8] {
			want, err := pred.Predict(c)
			if err != nil {
				t.Fatal(err)
			}
			res, err := core.Run(context.Background(), core.Options{Plat: plat, NGPUs: 4, Shape: shape, Prim: hw.ReduceScatter, Partition: c})
			if err != nil {
				t.Fatal(err)
			}
			errsPct = append(errsPct, 100*math.Abs(float64(res.Latency-want))/float64(res.Latency))
		}
	}
	var mean float64
	for _, e := range errsPct {
		mean += e
	}
	mean /= float64(len(errsPct))
	if mean > 8 {
		t.Fatalf("mean |error| = %.2f%%, want single digits (paper: 3.4%%)", mean)
	}
}

func TestPredictBreakdownConsistent(t *testing.T) {
	plat := hw.RTX4090PCIe()
	curve := SampleBandwidthCurve(plat, 2, hw.AllReduce, nil)
	pred, err := NewPredictor(plat, gemm.Shape{M: 4096, N: 8192, K: 8192}, gemm.Config{}, curve, 1)
	if err != nil {
		t.Fatal(err)
	}
	part := gemm.EqualSized(pred.Waves, 3)
	groups, err := pred.PredictBreakdown(part)
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) != part.Groups() {
		t.Fatalf("groups = %d, want %d", len(groups), part.Groups())
	}
	total, err := pred.Predict(part)
	if err != nil {
		t.Fatal(err)
	}
	last := groups[len(groups)-1]
	if last.CommEnd != total {
		t.Fatalf("breakdown end %v != Predict %v", last.CommEnd, total)
	}
	for i, g := range groups {
		if g.CommStart < g.ComputeReady {
			t.Fatalf("group %d comm starts before its data is ready", i)
		}
		if i > 0 && g.CommStart < groups[i-1].CommEnd {
			t.Fatalf("group %d comm overlaps group %d on the comm stream", i, i-1)
		}
	}
	if _, err := pred.PredictBreakdown(gemm.Partition{1}); err == nil {
		t.Fatal("bad partition accepted")
	}
}
