package workload

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/gemm"
	"repro/internal/hw"
	"repro/internal/sim"
	"repro/internal/tuner"
)

// OpSpeedup reports one overlappable operator's gain — the "size 1"/"size 2"
// bars of Fig. 12.
type OpSpeedup struct {
	Name     string
	Shape    gemm.Shape
	Prim     hw.Primitive
	Baseline sim.Time // sequential GEMM + collective
	Overlap  sim.Time // FlashOverlap with the tuned partition
	Speedup  float64
}

// E2EResult is one Fig. 12 data point.
type E2EResult struct {
	Model    string
	Setting  string
	Baseline sim.Time
	Overlap  sim.Time
	Speedup  float64
	Ops      []OpSpeedup
}

// EndToEnd evaluates the model with every GEMM+collective pair replaced by
// the tuned FlashOverlap operator (the paper swaps the linear layer and the
// subsequent primitive in vLLM/Megatron-LM/xDiT, §6.1.3); all other ops are
// unchanged. candLimit bounds the tuner's search space. Cancelling ctx
// aborts between tunes or engine waves with ctx.Err().
func EndToEnd(ctx context.Context, m Model, plat hw.Platform, candLimit int) (E2EResult, error) {
	if err := m.Validate(); err != nil {
		return E2EResult{}, err
	}
	if candLimit <= 0 {
		candLimit = 512
	}
	tuners := map[hw.Primitive]*tuner.Tuner{}
	getTuner := func(p hw.Primitive) *tuner.Tuner {
		if t, ok := tuners[p]; ok {
			return t
		}
		t := tuner.NewTuner(plat, m.NGPUs, p)
		t.CandidateLimit = candLimit
		tuners[p] = t
		return t
	}

	// First pass: cost every op sequentially and tune the overlappable
	// ones (the per-primitive tuner caches are stateful, so tuning stays
	// serial); the tuned runs then execute as one engine batch.
	type overlapOp struct {
		op    Op
		seq   sim.Time
		scale int64
	}
	res := E2EResult{Model: m.Name, Setting: m.Setting}
	var (
		pending []overlapOp
		runs    []core.Options
	)
	for _, op := range m.Ops {
		compute, comm, err := opTimes(plat, m.NGPUs, op)
		if err != nil {
			return E2EResult{}, err
		}
		seq := compute + comm
		scale := int64(op.repeat()) * int64(m.Layers)
		res.Baseline += sim.Time(int64(seq) * scale)

		if op.Kind != GEMMComm {
			res.Overlap += sim.Time(int64(seq) * scale)
			continue
		}
		part, err := getTuner(op.Prim).Tune(ctx, op.Shape, op.Imbalance)
		if err != nil {
			return E2EResult{}, fmt.Errorf("tuning %s/%s: %w", m.Name, op.Name, err)
		}
		pending = append(pending, overlapOp{op: op, seq: seq, scale: scale})
		runs = append(runs, core.Options{
			Plat:      plat,
			NGPUs:     m.NGPUs,
			Shape:     op.Shape,
			Prim:      op.Prim,
			Partition: part,
			Imbalance: op.Imbalance,
		})
	}
	results, err := engine.Default().Batch(ctx, runs)
	if err != nil {
		return E2EResult{}, fmt.Errorf("overlapping %s: %w", m.Name, err)
	}
	for i, p := range pending {
		// Overlap never loses: the deployment falls back to the
		// sequential pair when tuning predicts no gain (the paper's
		// integration replaces the operator only where profitable).
		over := results[i].Latency
		if over > p.seq {
			over = p.seq
		}
		res.Overlap += sim.Time(int64(over) * p.scale)
		res.Ops = append(res.Ops, OpSpeedup{
			Name:     p.op.Name,
			Shape:    p.op.Shape,
			Prim:     p.op.Prim,
			Baseline: p.seq,
			Overlap:  over,
			Speedup:  float64(p.seq) / float64(over),
		})
	}
	res.Speedup = float64(res.Baseline) / float64(res.Overlap)
	return res, nil
}
